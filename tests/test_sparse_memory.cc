/**
 * @file
 * Unit tests for the sparse functional memory.
 */

#include <gtest/gtest.h>

#include "mem/sparse_memory.hh"

using namespace nbl::mem;

TEST(SparseMemory, ReadsZeroWhenUntouched)
{
    SparseMemory m;
    EXPECT_EQ(m.read(0, 8), 0u);
    EXPECT_EQ(m.read(0xdeadbeef, 4), 0u);
    EXPECT_EQ(m.numPages(), 0u);
}

class SparseMemorySizes : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SparseMemorySizes, RoundTrip)
{
    unsigned size = GetParam();
    SparseMemory m;
    uint64_t value = 0x1122334455667788ULL;
    uint64_t mask = size == 8 ? ~uint64_t{0}
                              : ((uint64_t{1} << (8 * size)) - 1);
    m.write(0x1000, size, value);
    EXPECT_EQ(m.read(0x1000, size), value & mask);
}

TEST_P(SparseMemorySizes, RoundTripAcrossPageBoundary)
{
    unsigned size = GetParam();
    SparseMemory m;
    uint64_t addr = SparseMemory::pageBytes - size / 2 - 1;
    uint64_t value = 0xa1b2c3d4e5f60718ULL;
    uint64_t mask = size == 8 ? ~uint64_t{0}
                              : ((uint64_t{1} << (8 * size)) - 1);
    m.write(addr, size, value);
    EXPECT_EQ(m.read(addr, size), value & mask);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, SparseMemorySizes,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(SparseMemory, LittleEndianLayout)
{
    SparseMemory m;
    m.write(0x2000, 8, 0x0807060504030201ULL);
    EXPECT_EQ(m.read(0x2000, 1), 0x01u);
    EXPECT_EQ(m.read(0x2001, 1), 0x02u);
    EXPECT_EQ(m.read(0x2000, 4), 0x04030201u);
    EXPECT_EQ(m.read(0x2004, 4), 0x08070605u);
}

TEST(SparseMemory, PartialOverwrite)
{
    SparseMemory m;
    m.write(0x3000, 8, ~uint64_t{0});
    m.write(0x3002, 2, 0);
    EXPECT_EQ(m.read(0x3000, 8), 0xffffffff0000ffffULL);
}

TEST(SparseMemory, DoubleRoundTrip)
{
    SparseMemory m;
    m.writeF64(0x4000, 3.14159);
    EXPECT_DOUBLE_EQ(m.readF64(0x4000), 3.14159);
    m.writeF64(0x4000, -0.0);
    EXPECT_DOUBLE_EQ(m.readF64(0x4000), -0.0);
}

TEST(SparseMemory, PagesAllocatedLazily)
{
    SparseMemory m;
    m.write(0, 1, 1);
    m.write(10 * SparseMemory::pageBytes, 1, 1);
    EXPECT_EQ(m.numPages(), 2u);
}

TEST(SparseMemory, ChecksumDetectsChanges)
{
    SparseMemory a, b;
    a.write(0x1000, 8, 42);
    b.write(0x1000, 8, 42);
    EXPECT_EQ(a.checksum(), b.checksum());
    b.write(0x1000, 1, 43);
    EXPECT_NE(a.checksum(), b.checksum());
}

TEST(SparseMemory, ChecksumOrderIndependent)
{
    SparseMemory a, b;
    a.write(0x1000, 8, 1);
    a.write(0x9000, 8, 2);
    b.write(0x9000, 8, 2);
    b.write(0x1000, 8, 1);
    EXPECT_EQ(a.checksum(), b.checksum());
}

TEST(SparseMemory, ChecksumRangeIgnoresOutside)
{
    SparseMemory a, b;
    a.write(0x1000, 8, 7);
    b.write(0x1000, 8, 7);
    b.write(0x5000, 8, 99); // outside the range
    EXPECT_EQ(a.checksumRange(0x1000, 0x1100),
              b.checksumRange(0x1000, 0x1100));
    b.write(0x1008, 8, 1);
    EXPECT_NE(a.checksumRange(0x1000, 0x1100),
              b.checksumRange(0x1000, 0x1100));
}
