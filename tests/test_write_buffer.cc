/**
 * @file
 * Unit tests for the write buffer. The paper's baseline retires
 * writes for free (never stalls); the finite configuration is an
 * extension used to study write-buffer pressure.
 */

#include <gtest/gtest.h>

#include "mem/write_buffer.hh"

using namespace nbl::mem;

TEST(WriteBuffer, FreeRetirementNeverStalls)
{
    WriteBuffer wb; // paper configuration
    for (uint64_t i = 0; i < 1000; ++i)
        EXPECT_EQ(wb.push(i * 32, i), i);
    EXPECT_EQ(wb.stats().writes, 1000u);
    EXPECT_EQ(wb.stats().fullStallCycles, 0u);
    EXPECT_EQ(wb.occupancy(1000), 0u);
}

TEST(WriteBuffer, FiniteBufferTracksOccupancy)
{
    WriteBuffer wb(4, 10); // 4 entries, 10 cycles to retire each
    wb.push(0x000, 0);
    wb.push(0x020, 1);
    EXPECT_EQ(wb.occupancy(2), 2u);
    // After both retire (10 and 20 cycles of bandwidth), empty.
    EXPECT_EQ(wb.occupancy(25), 0u);
}

TEST(WriteBuffer, MergesSameBlock)
{
    WriteBuffer wb(4, 10);
    wb.push(0x100, 0);
    wb.push(0x100, 1); // same block: merged, no new entry
    EXPECT_EQ(wb.stats().merges, 1u);
    EXPECT_EQ(wb.occupancy(2), 1u);
}

TEST(WriteBuffer, FullBufferStalls)
{
    WriteBuffer wb(2, 10);
    EXPECT_EQ(wb.push(0x000, 0), 0u);
    EXPECT_EQ(wb.push(0x020, 0), 0u);
    // Buffer full; the oldest entry retires at cycle 10.
    uint64_t start = wb.push(0x040, 1);
    EXPECT_EQ(start, 10u);
    EXPECT_EQ(wb.stats().fullStallCycles, 9u);
}

TEST(WriteBuffer, RetirementIsSerial)
{
    WriteBuffer wb(8, 10);
    wb.push(0x000, 0);
    wb.push(0x020, 0);
    // Second entry retires at 20, not 10 (one retirement port).
    EXPECT_EQ(wb.occupancy(15), 1u);
    EXPECT_EQ(wb.occupancy(21), 0u);
}

TEST(WriteBuffer, HighWaterMark)
{
    WriteBuffer wb(8, 100);
    for (int i = 0; i < 5; ++i)
        wb.push(0x1000 + i * 32, 0);
    EXPECT_EQ(wb.stats().maxOccupancy, 5u);
}

TEST(WriteBuffer, MergeIntoFullBufferBypassesTheStall)
{
    // Merging takes priority over the capacity check: a write to a
    // block already buffered must not pay the full-buffer stall even
    // when every entry slot is occupied.
    WriteBuffer wb(2, 10);
    EXPECT_EQ(wb.push(0x000, 0), 0u);
    EXPECT_EQ(wb.push(0x020, 0), 0u); // buffer now full
    EXPECT_EQ(wb.push(0x020, 1), 1u); // merge: no stall
    EXPECT_EQ(wb.stats().merges, 1u);
    EXPECT_EQ(wb.stats().fullStallCycles, 0u);
    // A write to a *new* block still stalls for the oldest entry.
    EXPECT_EQ(wb.push(0x040, 2), 10u);
    EXPECT_EQ(wb.stats().fullStallCycles, 8u);
}

TEST(WriteBuffer, OverlappingPartialWritesRetireOnce)
{
    // Two stores whose byte ranges overlap inside one block (the
    // cache block-aligns before pushing, so both arrive as the same
    // block address) coalesce into a single entry and a single
    // retirement -- the memory system sees one write, not two.
    WriteBuffer wb(4, 10);
    wb.push(0x100, 0); // e.g. 8-byte store at +0
    wb.push(0x100, 1); // overlapping 4-byte store at +4
    EXPECT_EQ(wb.stats().writes, 2u);
    EXPECT_EQ(wb.stats().merges, 1u);
    EXPECT_EQ(wb.occupancy(5), 1u);
    // The merge neither extends the entry's retirement nor consumes
    // retirement bandwidth: the single entry is gone at 10, and a
    // later entry still begins retiring at 10.
    EXPECT_EQ(wb.occupancy(10), 0u);
    wb.push(0x200, 5);
    EXPECT_EQ(wb.occupancy(19), 1u);
    EXPECT_EQ(wb.occupancy(20), 0u);
    // Retirement is observed lazily, at the next push's drain: both
    // completed entries count once each -- the merge never retires.
    wb.push(0x300, 30);
    EXPECT_EQ(wb.stats().retired, 2u);
}
