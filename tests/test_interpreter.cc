/**
 * @file
 * Unit tests for the functional interpreter: opcode semantics,
 * branches, effective addresses, and the hard-wired zero register.
 */

#include <gtest/gtest.h>

#include <bit>

#include "exec/interpreter.hh"

using namespace nbl;
using namespace nbl::exec;
using isa::Instr;
using isa::Op;
using isa::Program;

namespace
{

Instr
make(Op op, unsigned dst, unsigned s1, unsigned s2, int64_t imm = 0)
{
    Instr in;
    in.op = op;
    in.dst = isa::intReg(dst);
    in.src1 = isa::intReg(s1);
    in.src2 = isa::intReg(s2);
    in.imm = imm;
    return in;
}

/** Run a single op with r1 = a, r2 = b; return r3. */
uint64_t
evalInt(Op op, uint64_t a, uint64_t b, int64_t imm = 0)
{
    Program p("t");
    Instr in = make(op, 3, 1, 2, imm);
    p.push(in);
    Instr halt;
    halt.op = Op::Halt;
    p.push(halt);
    mem::SparseMemory m;
    Interpreter interp(p, m);
    interp.setIntReg(1, a);
    interp.setIntReg(2, b);
    interp.step(0);
    return interp.intReg(3);
}

} // namespace

TEST(Interpreter, IntegerAlu)
{
    EXPECT_EQ(evalInt(Op::Add, 5, 7), 12u);
    EXPECT_EQ(evalInt(Op::Sub, 5, 7), uint64_t(-2));
    EXPECT_EQ(evalInt(Op::Mul, 6, 7), 42u);
    EXPECT_EQ(evalInt(Op::And, 0b1100, 0b1010), 0b1000u);
    EXPECT_EQ(evalInt(Op::Or, 0b1100, 0b1010), 0b1110u);
    EXPECT_EQ(evalInt(Op::Xor, 0b1100, 0b1010), 0b0110u);
    EXPECT_EQ(evalInt(Op::Shl, 1, 4), 16u);
    EXPECT_EQ(evalInt(Op::Shr, 16, 4), 1u);
    // Shift amounts are taken modulo 64.
    EXPECT_EQ(evalInt(Op::Shl, 1, 64), 1u);
}

TEST(Interpreter, ImmediateAlu)
{
    EXPECT_EQ(evalInt(Op::AddI, 5, 0, 10), 15u);
    EXPECT_EQ(evalInt(Op::AddI, 5, 0, -3), 2u);
    EXPECT_EQ(evalInt(Op::MulI, 5, 0, 3), 15u);
    EXPECT_EQ(evalInt(Op::AndI, 0xff, 0, 0x0f), 0x0fu);
    EXPECT_EQ(evalInt(Op::ShlI, 3, 0, 2), 12u);
    EXPECT_EQ(evalInt(Op::ShrI, 12, 0, 2), 3u);
    EXPECT_EQ(evalInt(Op::LImm, 0, 0, -42), uint64_t(-42));
}

TEST(Interpreter, FloatingPoint)
{
    Program p("fp");
    Instr in;
    in.op = Op::FAdd;
    in.dst = isa::fpReg(2);
    in.src1 = isa::fpReg(0);
    in.src2 = isa::fpReg(1);
    p.push(in);
    in.op = Op::FMul;
    in.dst = isa::fpReg(3);
    p.push(in);
    in.op = Op::FSub;
    in.dst = isa::fpReg(4);
    p.push(in);
    in.op = Op::FDiv;
    in.dst = isa::fpReg(5);
    p.push(in);
    Instr halt;
    halt.op = Op::Halt;
    p.push(halt);

    mem::SparseMemory m;
    Interpreter interp(p, m);
    interp.setFpRegBits(0, std::bit_cast<uint64_t>(6.0));
    interp.setFpRegBits(1, std::bit_cast<uint64_t>(1.5));
    for (size_t pc = 0; pc < 4; ++pc)
        interp.step(pc);
    EXPECT_DOUBLE_EQ(interp.fpReg(2), 7.5);
    EXPECT_DOUBLE_EQ(interp.fpReg(3), 9.0);
    EXPECT_DOUBLE_EQ(interp.fpReg(4), 4.5);
    EXPECT_DOUBLE_EQ(interp.fpReg(5), 4.0);
}

TEST(Interpreter, DivByZeroYieldsZero)
{
    Program p("div0");
    Instr in;
    in.op = Op::FDiv;
    in.dst = isa::fpReg(2);
    in.src1 = isa::fpReg(0);
    in.src2 = isa::fpReg(1);
    p.push(in);
    Instr halt;
    halt.op = Op::Halt;
    p.push(halt);
    mem::SparseMemory m;
    Interpreter interp(p, m);
    interp.setFpRegBits(0, std::bit_cast<uint64_t>(3.0));
    interp.setFpRegBits(1, 0);
    interp.step(0);
    EXPECT_DOUBLE_EQ(interp.fpReg(2), 0.0);
}

TEST(Interpreter, LoadStoreRoundTrip)
{
    Program p("mem");
    Instr st = make(Op::St, 0, 1, 2, 16);
    st.size = 8;
    p.push(st);
    Instr ld = make(Op::Ld, 3, 1, 0, 16);
    ld.size = 8;
    p.push(ld);
    Instr halt;
    halt.op = Op::Halt;
    p.push(halt);

    mem::SparseMemory m;
    Interpreter interp(p, m);
    interp.setIntReg(1, 0x5000);
    interp.setIntReg(2, 0xfeedface);
    StepResult s0 = interp.step(0);
    EXPECT_EQ(s0.effAddr, 0x5010u);
    EXPECT_EQ(m.read(0x5010, 8), 0xfeedfaceu);
    StepResult s1 = interp.step(1);
    EXPECT_EQ(s1.effAddr, 0x5010u);
    EXPECT_EQ(interp.intReg(3), 0xfeedfaceu);
}

TEST(Interpreter, RegZeroIsHardwired)
{
    EXPECT_EQ(evalInt(Op::Add, 1, 1), 2u); // sanity
    Program p("r0");
    p.push(make(Op::LImm, 0, 0, 0, 999)); // write r0
    p.push(make(Op::Add, 3, 0, 0));       // r3 = r0 + r0
    Instr halt;
    halt.op = Op::Halt;
    p.push(halt);
    mem::SparseMemory m;
    Interpreter interp(p, m);
    interp.step(0);
    interp.step(1);
    EXPECT_EQ(interp.intReg(3), 0u);
}

struct BranchCase
{
    Op op;
    int64_t a, b;
    bool taken;
};

class InterpreterBranches : public ::testing::TestWithParam<BranchCase>
{
};

TEST_P(InterpreterBranches, Semantics)
{
    auto c = GetParam();
    Program p("br");
    Instr br = make(c.op, 0, 1, 2, 5);
    p.push(br);
    Instr halt;
    halt.op = Op::Halt;
    p.push(halt);
    mem::SparseMemory m;
    Interpreter interp(p, m);
    interp.setIntReg(1, uint64_t(c.a));
    interp.setIntReg(2, uint64_t(c.b));
    StepResult s = interp.step(0);
    EXPECT_EQ(s.nextPc, c.taken ? 5u : 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, InterpreterBranches,
    ::testing::Values(BranchCase{Op::BEq, 3, 3, true},
                      BranchCase{Op::BEq, 3, 4, false},
                      BranchCase{Op::BNe, 3, 4, true},
                      BranchCase{Op::BNe, 3, 3, false},
                      BranchCase{Op::BLt, -5, 0, true},
                      BranchCase{Op::BLt, 0, -5, false},
                      BranchCase{Op::BLt, 3, 3, false},
                      BranchCase{Op::BGe, 3, 3, true},
                      BranchCase{Op::BGe, -1, 0, false}));

TEST(Interpreter, JumpAndHalt)
{
    Program p("j");
    Instr j;
    j.op = Op::Jmp;
    j.imm = 2;
    p.push(j);
    Instr halt;
    halt.op = Op::Halt;
    p.push(halt);
    p.push(halt);
    mem::SparseMemory m;
    Interpreter interp(p, m);
    StepResult s = interp.step(0);
    EXPECT_EQ(s.nextPc, 2u);
    EXPECT_FALSE(s.halted);
    EXPECT_TRUE(interp.step(2).halted);
}

TEST(Program, ValidateCatchesBadBranchTarget)
{
    Program p("bad");
    Instr br = make(Op::BEq, 0, 1, 2, 99);
    p.push(br);
    Instr halt;
    halt.op = Op::Halt;
    p.push(halt);
    EXPECT_FALSE(p.validate(/*fail_fatal=*/false));
}

TEST(Program, ValidateCatchesMissingHalt)
{
    Program p("nohalt");
    p.push(make(Op::Add, 1, 2, 3));
    EXPECT_FALSE(p.validate(false));
}

TEST(Program, ValidateAcceptsWellFormed)
{
    Program p("ok");
    p.push(make(Op::Add, 1, 2, 3));
    Instr halt;
    halt.op = Op::Halt;
    p.push(halt);
    EXPECT_TRUE(p.validate(false));
}

TEST(Program, DisassemblyMentionsEveryInstruction)
{
    Program p("dis");
    p.push(make(Op::AddI, 1, 2, 0, 42));
    Instr halt;
    halt.op = Op::Halt;
    p.push(halt);
    std::string s = p.str();
    EXPECT_NE(s.find("addi"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("halt"), std::string::npos);
}
