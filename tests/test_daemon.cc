/**
 * @file
 * Tests for the sweep service (src/service/): framing, the request
 * schema, the persistent content-addressed store, the Lab cache caps,
 * the in-flight dedup path, and the socket server end to end.
 *
 * The load-bearing properties:
 *  - any byte sequence a client sends maps to a clean error, never a
 *    crash (framing + non-fatal JSON + config pre-validation);
 *  - a config that round-trips through the protocol produces the
 *    same experimentKey, so cache identity is preserved across the
 *    wire;
 *  - concurrent identical requests compute once and every caller
 *    gets bit-identical counters;
 *  - the on-disk store survives restarts, ignores unknown format
 *    versions, and quarantines (never trusts) corrupt entries.
 */

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "harness/experiment.hh"
#include "harness/stats_export.hh"
#include "service/cache_store.hh"
#include "service/framing.hh"
#include "service/protocol.hh"
#include "service/server.hh"
#include "service/service.hh"
#include "stats/json.hh"
#include "stats/registry.hh"
#include "stats/run_stats.hh"

using namespace nbl;
using service::CacheStore;
using service::FrameDecoder;
using service::LabService;
using service::Request;
using stats::Json;

namespace
{

constexpr double kScale = 0.02;
namespace fs = std::filesystem;

/** A fresh temp dir, removed on destruction. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
    {
        path = fs::temp_directory_path() /
               strfmt("nbl-test-daemon-%s-%d", tag.c_str(),
                      int(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

std::string
readFileOrEmpty(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Feed bytes into a decoder in chunks of `step`. */
std::vector<std::string>
decodeAll(FrameDecoder &dec, const std::string &bytes, size_t step)
{
    std::vector<std::string> frames;
    for (size_t pos = 0; pos < bytes.size(); pos += step) {
        dec.feed(bytes.data() + pos,
                 std::min(step, bytes.size() - pos));
        std::string payload;
        while (dec.next(&payload) == FrameDecoder::Status::Frame)
            frames.push_back(payload);
    }
    std::string payload;
    while (dec.next(&payload) == FrameDecoder::Status::Frame)
        frames.push_back(payload);
    return frames;
}

// ---------------------------------------------------------------
// Framing
// ---------------------------------------------------------------

TEST(Framing, RoundTripWholeAndByteAtATime)
{
    std::vector<std::string> payloads = {"", "x", "{\"v\":1}",
                                         std::string(100000, 'q')};
    std::string stream;
    for (const auto &p : payloads)
        stream += service::encodeFrame(p);

    for (size_t step : {size_t(1), size_t(7), stream.size()}) {
        FrameDecoder dec;
        auto frames = decodeAll(dec, stream, step);
        ASSERT_EQ(frames.size(), payloads.size()) << "step " << step;
        for (size_t i = 0; i < payloads.size(); ++i)
            EXPECT_EQ(frames[i], payloads[i]);
        EXPECT_EQ(dec.buffered(), 0u);
    }
}

TEST(Framing, GarbageMagicIsBadImmediately)
{
    FrameDecoder dec;
    dec.feed("GET / HTTP/1.1\r\n", 16);
    std::string payload;
    EXPECT_EQ(dec.next(&payload), FrameDecoder::Status::Bad);
    EXPECT_FALSE(dec.error().empty());
    // Bad is sticky: no resync even if valid bytes follow.
    std::string good = service::encodeFrame("ok");
    dec.feed(good.data(), good.size());
    EXPECT_EQ(dec.next(&payload), FrameDecoder::Status::Bad);
}

TEST(Framing, OversizedLengthRejectedWithoutAllocating)
{
    // Header claims a 3 GiB payload; must be rejected from the
    // 8 header bytes alone.
    std::string hdr(service::kFrameMagic,
                    sizeof(service::kFrameMagic));
    uint32_t len = 3u << 30;
    for (int i = 0; i < 4; ++i)
        hdr.push_back(char((len >> (8 * i)) & 0xff));
    FrameDecoder dec;
    dec.feed(hdr.data(), hdr.size());
    std::string payload;
    EXPECT_EQ(dec.next(&payload), FrameDecoder::Status::Bad);
}

TEST(Framing, TruncatedFrameNeedsMoreThenEofIsError)
{
    std::string frame = service::encodeFrame("hello world");
    // Decoder: a prefix is NeedMore, never Bad.
    for (size_t cut = 0; cut < frame.size(); ++cut) {
        FrameDecoder dec;
        dec.feed(frame.data(), cut);
        std::string payload;
        EXPECT_EQ(dec.next(&payload), FrameDecoder::Status::NeedMore)
            << "cut " << cut;
    }

    // fd path: EOF mid-frame is Error, EOF at a boundary is Eof.
    for (size_t cut : {size_t(0), size_t(3), frame.size() - 1}) {
        int p[2];
        ASSERT_EQ(::pipe(p), 0);
        ASSERT_EQ(::write(p[1], frame.data(), cut), ssize_t(cut));
        ::close(p[1]);
        std::string payload, err;
        service::ReadStatus st = service::readFrame(p[0], &payload, &err);
        if (cut == 0)
            EXPECT_EQ(st, service::ReadStatus::Eof);
        else
            EXPECT_EQ(st, service::ReadStatus::Error) << "cut " << cut;
        ::close(p[0]);
    }
}

/**
 * Partial-write resume: a non-blocking socket with a tiny send
 * buffer forces ::write to accept the frame in many short chunks
 * with EAGAIN between them. writeFrame must resume at the offset it
 * reached -- the historical bug dropped the already-written prefix
 * and restarted, corrupting the stream -- so the reader must get the
 * payload back byte-exact.
 */
TEST(Framing, PartialWriteResumesAtOffset)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    int sndbuf = 1; // Kernel clamps to its minimum; still tiny.
    ASSERT_EQ(::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &sndbuf,
                           sizeof(sndbuf)), 0);
    int flags = ::fcntl(sv[0], F_GETFL, 0);
    ASSERT_GE(flags, 0);
    ASSERT_EQ(::fcntl(sv[0], F_SETFL, flags | O_NONBLOCK), 0);

    // Much larger than any socket buffer, patterned so a resumed
    // write at the wrong offset cannot accidentally match.
    std::string payload;
    payload.reserve(1 << 20);
    for (size_t i = 0; payload.size() < (1 << 20); ++i)
        payload += strfmt("frame-%zu|", i);

    std::string got, err;
    std::thread reader([&] {
        EXPECT_EQ(service::readFrame(sv[1], &got, &err),
                  service::ReadStatus::Ok)
            << err;
    });
    EXPECT_TRUE(service::writeFrame(sv[0], payload));
    reader.join();
    EXPECT_EQ(got, payload);
    ::close(sv[0]);
    ::close(sv[1]);
}

// ---------------------------------------------------------------
// Non-fatal JSON
// ---------------------------------------------------------------

TEST(JsonTryParse, MalformedReturnsErrorNotDeath)
{
    for (const char *bad :
         {"", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated",
          "{\"a\":1} trailing", "\x00\xff\x7f"}) {
        std::string err;
        EXPECT_FALSE(Json::tryParse(bad, &err).has_value()) << bad;
        EXPECT_FALSE(err.empty());
    }
    auto ok = Json::tryParse("{\"a\": [1, 2.5, \"s\", null, true]}");
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->at("a").array().size(), 5u);
}

// ---------------------------------------------------------------
// Protocol: config round-trip and validation
// ---------------------------------------------------------------

harness::ExperimentConfig
parseConfigOrDie(const std::string &json)
{
    auto doc = Json::tryParse(json);
    EXPECT_TRUE(doc.has_value()) << json;
    harness::ExperimentConfig cfg;
    std::string err;
    EXPECT_TRUE(service::configFromJson(*doc, &cfg, &err))
        << json << ": " << err;
    return cfg;
}

TEST(Protocol, ConfigJsonRoundTripPreservesExperimentKey)
{
    // Every named config plus geometry/width variants: serializing
    // with configJson and parsing back through the service schema
    // must land on the identical experiment key -- the cache identity
    // is preserved across the wire.
    std::vector<harness::ExperimentConfig> cfgs;
    for (core::ConfigName name : core::allConfigNames) {
        harness::ExperimentConfig c;
        c.config = name;
        cfgs.push_back(c);
    }
    {
        harness::ExperimentConfig c;
        c.cacheBytes = 64 * 1024;
        c.lineBytes = 16;
        c.ways = 4;
        c.loadLatency = 3;
        c.missPenalty = 50;
        c.issueWidth = 2;
        c.fillWritePorts = 1;
        c.perfectCache = true;
        cfgs.push_back(c);
        c.perfectCache = false;
        c.ways = 0; // fully associative
        cfgs.push_back(c);
        c.customPolicy = core::makePolicy(core::ConfigName::Fs2);
        c.customPolicy->label = "custom";
        cfgs.push_back(c);
    }
    for (const auto &cfg : cfgs) {
        std::string json = harness::configJson(cfg);
        harness::ExperimentConfig back = parseConfigOrDie(json);
        EXPECT_EQ(harness::experimentKey("w", cfg),
                  harness::experimentKey("w", back))
            << json;
    }
}

TEST(Protocol, PolicyKeyRoundTrip)
{
    for (core::ConfigName name : core::allConfigNames) {
        core::MshrPolicy p = core::makePolicy(name);
        std::string key = harness::policyKey(p);
        core::MshrPolicy back;
        ASSERT_TRUE(service::parsePolicyKey(key, &back)) << key;
        back.label = p.label; // label is not part of the key
        EXPECT_EQ(harness::policyKey(back), key);
    }
    core::MshrPolicy out;
    EXPECT_FALSE(service::parsePolicyKey("", &out));
    EXPECT_FALSE(service::parsePolicyKey("P1.2.3", &out));
    EXPECT_FALSE(service::parsePolicyKey("P9.1.1.1.1.1.0.0.0", &out));
    EXPECT_FALSE(
        service::parsePolicyKey("P0.1.1.1.1.1.0.0.0xyz", &out));
}

TEST(Protocol, InvalidConfigsRejectedNotFatal)
{
    // Everything the simulator would fatal() on must come back as a
    // parse error -- the daemon cannot die on client input.
    const char *bad[] = {
        "{\"cache_bytes\": 5000}",                // not a power of two
        "{\"line_bytes\": 48}",                   // not a power of two
        "{\"cache_bytes\": 64, \"line_bytes\": 128}", // line > cache
        "{\"ways\": 3}",                          // sets not pow2
        "{\"issue_width\": 5}",
        "{\"issue_width\": 0}",
        "{\"load_latency\": 0}",
        "{\"max_instructions\": 0}",
        "{\"label\": \"not a config\"}",
        "{\"label\": \"custom\"}",                // custom needs policy
        "{\"policy\": \"P1.2\"}",                 // malformed key
        "{\"label\": \"mc=1\", \"policy\": \"P0.1.1.1.1.1.0.0.0\"}",
        "{\"typo_field\": 1}",                    // unknown field
        "{\"cache_bytes\": -8192}",               // negative
        "{\"cache_bytes\": 1.5}",                 // non-integer
        "{\"perfect_cache\": 1}",                 // non-boolean
        "{\"hierarchy\": [{}]}",                  // unsupported in v1
    };
    for (const char *json : bad) {
        auto doc = Json::tryParse(json);
        ASSERT_TRUE(doc.has_value()) << json;
        harness::ExperimentConfig cfg;
        std::string err;
        EXPECT_FALSE(service::configFromJson(*doc, &cfg, &err))
            << json;
        EXPECT_FALSE(err.empty()) << json;
    }
}

TEST(Protocol, ParseRequestKindsAndErrors)
{
    Request req;
    std::string code, msg;
    uint64_t id = 0;

    EXPECT_TRUE(service::parseRequest(
        "{\"v\": 1, \"id\": 7, \"kind\": \"ping\"}", &req, &code,
        &msg, &id));
    EXPECT_EQ(req.kind, Request::Kind::Ping);
    EXPECT_EQ(req.id, 7u);

    EXPECT_TRUE(service::parseRequest(
        "{\"kind\": \"run\", \"points\": [{\"workload\": \"doduc\"}]}",
        &req, &code, &msg, &id));
    EXPECT_EQ(req.kind, Request::Kind::Run);
    ASSERT_EQ(req.points.size(), 1u);
    EXPECT_EQ(req.points[0].workload, "doduc");

    // The id is recovered even from rejected requests so error
    // responses stay correlatable.
    EXPECT_FALSE(service::parseRequest(
        "{\"id\": 42, \"kind\": \"nope\"}", &req, &code, &msg, &id));
    EXPECT_EQ(id, 42u);
    EXPECT_EQ(code, service::kErrBadRequest);

    EXPECT_FALSE(service::parseRequest("not json{", &req, &code, &msg,
                                       &id));
    EXPECT_EQ(code, service::kErrBadJson);

    EXPECT_FALSE(service::parseRequest(
        "{\"v\": 99, \"kind\": \"ping\"}", &req, &code, &msg, &id));
    EXPECT_EQ(code, service::kErrBadRequest);

    EXPECT_FALSE(service::parseRequest(
        "{\"kind\": \"run\", \"points\": []}", &req, &code, &msg,
        &id));
    EXPECT_EQ(code, service::kErrBadRequest);

    EXPECT_FALSE(service::parseRequest(
        "{\"kind\": \"run\", \"points\": [{\"workload\": "
        "\"nonesuch\"}]}",
        &req, &code, &msg, &id));
    EXPECT_EQ(code, service::kErrUnknownWorkload);
}

// ---------------------------------------------------------------
// CacheStore
// ---------------------------------------------------------------

TEST(CacheStoreTest, ResultRoundTripAndMiss)
{
    TempDir tmp("store");
    CacheStore store(tmp.path.string());
    EXPECT_FALSE(store.loadResult("k1").has_value());
    store.storeResult("k1", "payload-1");
    auto back = store.loadResult("k1");
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, "payload-1");
    // Overwrite: last writer wins.
    store.storeResult("k1", "payload-2");
    EXPECT_EQ(*store.loadResult("k1"), "payload-2");

    auto c = store.counters();
    EXPECT_EQ(c.resultHits, 2u);
    EXPECT_EQ(c.resultMisses, 1u);
    EXPECT_EQ(c.resultStores, 2u);
    EXPECT_EQ(c.quarantined, 0u);
}

TEST(CacheStoreTest, DisabledStoreIsInert)
{
    CacheStore store; // no directory
    EXPECT_FALSE(store.enabled());
    store.storeResult("k", "v");
    EXPECT_FALSE(store.loadResult("k").has_value());
    EXPECT_EQ(store.loadTrace("k"), nullptr);
}

TEST(CacheStoreTest, TraceRoundTripExact)
{
    TempDir tmp("trace");
    CacheStore store(tmp.path.string());
    exec::EventTrace t;
    t.segStart = {0, 40, 8};
    t.segLen = {10, 2, 30};
    t.effAddrs = {0x1000, 0x2008, 0xffffffffffull};
    t.instructions = 42;
    t.recordCap = 1000;
    t.hitInstructionCap = false;
    store.storeTrace("wl|abc", t);

    auto back = store.loadTrace("wl|abc");
    ASSERT_NE(back, nullptr);
    EXPECT_EQ(back->segStart, t.segStart);
    EXPECT_EQ(back->segLen, t.segLen);
    EXPECT_EQ(back->effAddrs, t.effAddrs);
    EXPECT_EQ(back->instructions, t.instructions);
    EXPECT_EQ(back->recordCap, t.recordCap);
    EXPECT_EQ(back->hitInstructionCap, t.hitInstructionCap);
    EXPECT_EQ(store.loadTrace("wl|other"), nullptr);
}

TEST(CacheStoreTest, KeyMismatchIsMissNotPayload)
{
    // A hash collision shares a file name; the embedded key must make
    // the store refuse to serve the other key's payload. Simulate by
    // copying key A's file onto key B's path.
    TempDir tmp("collide");
    CacheStore store(tmp.path.string());
    store.storeResult("keyA", "A-payload");
    fs::path results = tmp.path / "results";
    fs::path aPath, bPath;
    for (const auto &e : fs::directory_iterator(results))
        aPath = e.path();
    ASSERT_FALSE(aPath.empty());
    // Find B's would-be path by storing then deleting.
    store.storeResult("keyB", "B-payload");
    for (const auto &e : fs::directory_iterator(results))
        if (e.path() != aPath)
            bPath = e.path();
    ASSERT_FALSE(bPath.empty());
    fs::copy_file(aPath, bPath,
                  fs::copy_options::overwrite_existing);
    EXPECT_FALSE(store.loadResult("keyB").has_value());
    // Not corruption: the file is valid, just someone else's.
    EXPECT_EQ(store.counters().quarantined, 0u);
}

TEST(CacheStoreTest, UnknownVersionIgnoredNotMisread)
{
    TempDir tmp("vers");
    CacheStore store(tmp.path.string());
    store.storeResult("k", "payload");
    fs::path file;
    for (const auto &e : fs::directory_iterator(tmp.path / "results"))
        file = e.path();
    std::string bytes = readFileOrEmpty(file);
    size_t vpos = bytes.find(" 1 ");
    ASSERT_NE(vpos, std::string::npos);
    bytes.replace(vpos, 3, " 2 ");
    {
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        out << bytes;
    }
    EXPECT_FALSE(store.loadResult("k").has_value());
    auto c = store.counters();
    EXPECT_EQ(c.versionIgnored, 1u);
    EXPECT_EQ(c.quarantined, 0u);
    EXPECT_TRUE(fs::exists(file)); // ignored, not destroyed
}

TEST(CacheStoreTest, CorruptionQuarantined)
{
    TempDir tmp("corrupt");
    CacheStore store(tmp.path.string());
    store.storeResult("k", "payload-payload-payload");
    fs::path file;
    for (const auto &e : fs::directory_iterator(tmp.path / "results"))
        file = e.path();
    std::string bytes = readFileOrEmpty(file);
    bytes[bytes.size() - 3] ^= 0x40; // flip a payload bit
    {
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        out << bytes;
    }
    EXPECT_FALSE(store.loadResult("k").has_value());
    EXPECT_EQ(store.counters().quarantined, 1u);
    EXPECT_FALSE(fs::exists(file)); // moved aside...
    size_t quarantined = 0;
    for (const auto &e :
         fs::directory_iterator(tmp.path / "quarantine")) {
        (void)e;
        ++quarantined;
    }
    EXPECT_EQ(quarantined, 1u); // ...into quarantine/, for diagnosis.

    // The slot recovers: a fresh store() then load() works.
    store.storeResult("k", "fresh");
    EXPECT_EQ(*store.loadResult("k"), "fresh");
}

TEST(CacheStoreTest, CorruptTraceQuarantined)
{
    TempDir tmp("tcorrupt");
    CacheStore store(tmp.path.string());
    exec::EventTrace t;
    t.segStart = {0};
    t.segLen = {5};
    t.effAddrs = {1, 2, 3};
    t.instructions = 5;
    store.storeTrace("k", t);
    fs::path file;
    for (const auto &e : fs::directory_iterator(tmp.path / "traces"))
        file = e.path();
    std::string bytes = readFileOrEmpty(file);
    bytes[bytes.size() / 2] ^= 0x01;
    {
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        out << bytes;
    }
    EXPECT_EQ(store.loadTrace("k"), nullptr);
    EXPECT_EQ(store.counters().quarantined, 1u);
}

// ---------------------------------------------------------------
// Lab cache caps (satellite 4)
// ---------------------------------------------------------------

TEST(LabCacheCaps, ResultFifoEvictionBoundsEntries)
{
    harness::Lab lab(kScale);
    lab.setResultCacheCap(4);
    harness::ExperimentConfig cfg;
    for (int lat : {1, 2, 3, 6, 10, 20}) {
        cfg.loadLatency = lat;
        lab.run("doduc", cfg);
    }
    auto c = lab.cacheCounters();
    EXPECT_LE(c.results, 4u);
    EXPECT_EQ(c.resultEvictions, 2u);

    // An evicted point re-simulates to the same counters.
    cfg.loadLatency = 1;
    stats::Snapshot again =
        stats::snapshotOfRun(lab.run("doduc", cfg).run);
    harness::Lab fresh(kScale);
    stats::Snapshot ref =
        stats::snapshotOfRun(fresh.run("doduc", cfg).run);
    EXPECT_TRUE(ref.countersEqual(again));
}

TEST(LabCacheCaps, CapAppliedToPreexistingEntries)
{
    harness::Lab lab(kScale);
    harness::ExperimentConfig cfg;
    for (int lat : {1, 2, 3, 6}) {
        cfg.loadLatency = lat;
        lab.run("doduc", cfg);
    }
    EXPECT_EQ(lab.cacheCounters().results, 4u);
    lab.setResultCacheCap(2); // shrink below current size
    EXPECT_LE(lab.cacheCounters().results, 2u);
}

TEST(LabCacheCaps, TraceFifoEviction)
{
    harness::Lab lab(kScale);
    lab.setTraceCacheCap(2);
    // Distinct workloads have distinct programs -> distinct traces.
    for (const char *wl : {"doduc", "xlisp", "eqntott", "tomcatv"})
        lab.eventTrace(wl, 10);
    auto c = lab.cacheCounters();
    EXPECT_LE(c.traces, 2u);
    EXPECT_EQ(c.traceEvictions, 2u);
    // An evicted trace re-records transparently.
    EXPECT_NE(lab.eventTrace("doduc", 10), nullptr);
}

// ---------------------------------------------------------------
// LabService
// ---------------------------------------------------------------

std::string
singlePointRequest(int id, const char *workload, int latency)
{
    return strfmt("{\"v\": 1, \"id\": %d, \"kind\": \"run\", "
                  "\"points\": [{\"workload\": \"%s\", \"config\": "
                  "{\"load_latency\": %d}}]}",
                  id, workload, latency);
}

/** Parse the single result of a run response. */
Json
soleResult(const std::string &response)
{
    Json doc = Json::parse(response);
    EXPECT_TRUE(doc.at("ok").boolean()) << response;
    EXPECT_EQ(doc.at("results").array().size(), 1u);
    return doc.at("results").array()[0];
}

TEST(Service, ErrorsAreResponsesNotDeaths)
{
    harness::Lab lab(kScale);
    CacheStore store;
    LabService svc(lab, store);
    bool shutdown = false;
    for (const char *payload :
         {"garbage", "{\"kind\": \"run\", \"points\": "
                     "[{\"workload\": \"doduc\", \"config\": "
                     "{\"cache_bytes\": 5000}}]}",
          "{\"kind\": \"nope\"}", "{}"}) {
        std::string resp = svc.handle(payload, &shutdown);
        Json doc = Json::parse(resp);
        EXPECT_FALSE(doc.at("ok").boolean()) << payload;
        EXPECT_FALSE(shutdown);
    }
    EXPECT_EQ(svc.counters().errors, 4u);
}

TEST(Service, ConcurrentIdenticalRequestsComputeOnce)
{
    harness::Lab lab(kScale);
    CacheStore store;
    LabService svc(lab, store);

    const int kThreads = 8;
    std::vector<std::string> responses(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            bool shutdown = false;
            responses[size_t(t)] = svc.handle(
                singlePointRequest(t, "doduc", 10), &shutdown);
        });
    }
    for (auto &th : threads)
        th.join();

    // Exactly one thread simulated; everyone's counters identical.
    auto c = svc.counters();
    EXPECT_EQ(c.computed, 1u);
    EXPECT_EQ(c.memoryHits + c.inflightHits, uint64_t(kThreads - 1));
    stats::Snapshot first = stats::snapshotFromJson(
        soleResult(responses[0]).at("stats"));
    for (int t = 1; t < kThreads; ++t) {
        stats::Snapshot s = stats::snapshotFromJson(
            soleResult(responses[size_t(t)]).at("stats"));
        EXPECT_TRUE(first.countersEqual(s)) << "thread " << t;
    }
    // And identical to a direct Lab run.
    harness::ExperimentConfig cfg;
    cfg.loadLatency = 10;
    harness::Lab fresh(kScale);
    stats::Snapshot direct =
        stats::snapshotOfRun(fresh.run("doduc", cfg).run);
    EXPECT_TRUE(direct.countersEqual(first));
}

TEST(Service, PersistedCacheSurvivesRestart)
{
    TempDir tmp("svc-persist");
    stats::Snapshot before;
    {
        harness::Lab lab(kScale);
        CacheStore store(tmp.path.string());
        LabService svc(lab, store);
        bool shutdown = false;
        std::string resp =
            svc.handle(singlePointRequest(1, "doduc", 10), &shutdown);
        Json r = soleResult(resp);
        EXPECT_EQ(r.at("cached").str(), "computed");
        before = stats::snapshotFromJson(r.at("stats"));
        EXPECT_GE(store.counters().resultStores, 1u);
        EXPECT_GE(store.counters().traceStores, 1u);
    }
    {
        // New Lab, new service: only the directory survives.
        harness::Lab lab(kScale);
        CacheStore store(tmp.path.string());
        LabService svc(lab, store);
        bool shutdown = false;
        std::string resp =
            svc.handle(singlePointRequest(2, "doduc", 10), &shutdown);
        Json r = soleResult(resp);
        EXPECT_EQ(r.at("cached").str(), "disk");
        stats::Snapshot after =
            stats::snapshotFromJson(r.at("stats"));
        EXPECT_TRUE(before.countersEqual(after));
        // The persisted event trace is adopted too: a *different*
        // point of the same compiled program (same latency, new miss
        // penalty) replays without re-recording.
        std::string resp2 = svc.handle(
            "{\"v\": 1, \"id\": 3, \"kind\": \"run\", \"points\": "
            "[{\"workload\": \"doduc\", \"config\": "
            "{\"load_latency\": 10, \"miss_penalty\": 100}}]}",
            &shutdown);
        EXPECT_EQ(soleResult(resp2).at("cached").str(), "computed");
        EXPECT_GE(store.counters().traceHits, 1u);
    }
}

TEST(Service, CorruptedPersistedResultRecomputed)
{
    TempDir tmp("svc-corrupt");
    stats::Snapshot before;
    {
        harness::Lab lab(kScale);
        CacheStore store(tmp.path.string());
        LabService svc(lab, store);
        bool shutdown = false;
        before = stats::snapshotFromJson(
            soleResult(svc.handle(singlePointRequest(1, "doduc", 10),
                                  &shutdown))
                .at("stats"));
    }
    // Flip a byte in every persisted result.
    for (const auto &e :
         fs::directory_iterator(tmp.path / "results")) {
        std::string bytes = readFileOrEmpty(e.path());
        bytes[bytes.size() - 2] ^= 0x20;
        std::ofstream out(e.path(),
                          std::ios::binary | std::ios::trunc);
        out << bytes;
    }
    {
        harness::Lab lab(kScale);
        CacheStore store(tmp.path.string());
        LabService svc(lab, store);
        bool shutdown = false;
        Json r = soleResult(
            svc.handle(singlePointRequest(2, "doduc", 10), &shutdown));
        EXPECT_EQ(r.at("cached").str(), "computed");
        stats::Snapshot after = stats::snapshotFromJson(r.at("stats"));
        EXPECT_TRUE(before.countersEqual(after));
        EXPECT_EQ(store.counters().quarantined, 1u);
    }
}

TEST(Service, MemoCapBoundsServiceMemo)
{
    harness::Lab lab(kScale);
    CacheStore store;
    LabService svc(lab, store);
    bool shutdown = false;
    // The cap comes from NBL_LAB_RESULT_CAP at construction (unset in
    // tests -> unbounded); exercise the response path over several
    // distinct points and re-request the first: still served.
    for (int lat : {1, 2, 3, 6, 10, 20})
        svc.handle(singlePointRequest(lat, "doduc", lat), &shutdown);
    Json r = soleResult(
        svc.handle(singlePointRequest(99, "doduc", 1), &shutdown));
    EXPECT_EQ(r.at("cached").str(), "memory");
}

// ---------------------------------------------------------------
// Socket server end to end
// ---------------------------------------------------------------

int
connectUnix(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    EXPECT_EQ(::connect(fd, (const sockaddr *)&addr, sizeof(addr)), 0)
        << path;
    return fd;
}

std::string
roundTrip(int fd, const std::string &request)
{
    EXPECT_TRUE(service::writeFrame(fd, request));
    std::string response, err;
    EXPECT_EQ(service::readFrame(fd, &response, &err),
              service::ReadStatus::Ok)
        << err;
    return response;
}

TEST(SocketServerTest, EndToEndOverUnixSocket)
{
    TempDir tmp("sock");
    std::string sock = (tmp.path / "d.sock").string();
    harness::Lab lab(kScale);
    CacheStore store;
    LabService svc(lab, store);
    service::SocketServer server(svc, {sock, false, 0});
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    int fd = connectUnix(sock);
    Json pong = Json::parse(roundTrip(
        fd, "{\"v\": 1, \"id\": 5, \"kind\": \"ping\"}"));
    EXPECT_TRUE(pong.at("ok").boolean());
    EXPECT_EQ(pong.at("id").u64(), 5u);
    EXPECT_EQ(pong.at("kind").str(), "pong");

    Json run =
        Json::parse(roundTrip(fd, singlePointRequest(6, "doduc", 2)));
    EXPECT_TRUE(run.at("ok").boolean());
    EXPECT_EQ(run.at("results").array().size(), 1u);

    // Same connection, repeated point: served from memory.
    Json again =
        Json::parse(roundTrip(fd, singlePointRequest(7, "doduc", 2)));
    EXPECT_EQ(
        again.at("results").array()[0].at("cached").str(), "memory");
    ::close(fd);

    // A garbage (non-frame) byte stream gets a final bad-frame error
    // response; the server survives.
    int bad = connectUnix(sock);
    std::string junk = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_EQ(::write(bad, junk.data(), junk.size()),
              ssize_t(junk.size()));
    std::string payload, rerr;
    EXPECT_EQ(service::readFrame(bad, &payload, &rerr),
              service::ReadStatus::Ok);
    Json errDoc = Json::parse(payload);
    EXPECT_FALSE(errDoc.at("ok").boolean());
    EXPECT_EQ(errDoc.at("error").at("code").str(), "bad-frame");
    ::close(bad);

    // And a fresh connection still works.
    int fd2 = connectUnix(sock);
    Json pong2 = Json::parse(roundTrip(
        fd2, "{\"v\": 1, \"id\": 8, \"kind\": \"ping\"}"));
    EXPECT_TRUE(pong2.at("ok").boolean());

    // Shutdown request: acknowledged, then the server stops.
    Json bye = Json::parse(roundTrip(
        fd2, "{\"v\": 1, \"id\": 9, \"kind\": \"shutdown\"}"));
    EXPECT_EQ(bye.at("kind").str(), "shutdown");
    ::close(fd2);
    server.wait();
    EXPECT_FALSE(server.running());
}

TEST(SocketServerTest, TcpListenerServesEphemeralPort)
{
    TempDir tmp("tcp");
    std::string sock = (tmp.path / "d.sock").string();
    harness::Lab lab(kScale);
    CacheStore store;
    LabService svc(lab, store);
    service::SocketServer server(svc, {sock, true, 0});
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    ASSERT_NE(server.tcpPort(), 0);

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in in{};
    in.sin_family = AF_INET;
    in.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    in.sin_port = htons(server.tcpPort());
    ASSERT_EQ(::connect(fd, (const sockaddr *)&in, sizeof(in)), 0);
    Json pong = Json::parse(roundTrip(
        fd, "{\"v\": 1, \"id\": 1, \"kind\": \"ping\"}"));
    EXPECT_TRUE(pong.at("ok").boolean());
    ::close(fd);
    server.stop();
    server.wait();
}

TEST(SocketServerTest, ConcurrentConnectionsBitIdentical)
{
    TempDir tmp("conc");
    std::string sock = (tmp.path / "d.sock").string();
    harness::Lab lab(kScale);
    CacheStore store;
    LabService svc(lab, store);
    service::SocketServer server(svc, {sock, false, 0});
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    const int kThreads = 6;
    std::vector<std::string> responses(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            int fd = connectUnix(sock);
            responses[size_t(t)] =
                roundTrip(fd, singlePointRequest(t, "xlisp", 6));
            ::close(fd);
        });
    }
    for (auto &th : threads)
        th.join();
    stats::Snapshot first = stats::snapshotFromJson(
        soleResult(responses[0]).at("stats"));
    for (int t = 1; t < kThreads; ++t) {
        stats::Snapshot s = stats::snapshotFromJson(
            soleResult(responses[size_t(t)]).at("stats"));
        EXPECT_TRUE(first.countersEqual(s)) << "thread " << t;
    }
    EXPECT_EQ(svc.counters().computed, 1u);
    server.stop();
    server.wait();
}

} // namespace
