/**
 * @file
 * Tests for the memory hierarchy below L1 (core/memory_level.hh and
 * core/hierarchy.hh): channel queueing, per-level timing arithmetic,
 * back-pressure from exhausted lower-level resources, out-of-order
 * completion, degenerate equivalence, and the cross-engine exactness
 * property (exec == exact replay == lane replay) over hierarchy
 * configurations.
 */

#include <gtest/gtest.h>

#include "core/hierarchy.hh"
#include "core/memory_level.hh"
#include "exec/event_trace.hh"
#include "exec/lane_replay.hh"
#include "exec/machine.hh"
#include "harness/sweep.hh"
#include "workloads/workload.hh"

using namespace nbl;
using core::CacheLevel;
using core::Channel;
using core::HierarchyConfig;
using core::LevelConfig;
using core::MainMemoryLevel;
using core::MemoryLevel;

namespace
{

/** An L2 MshrFile policy with the given MSHR count (-1 = unlimited). */
core::MshrPolicy
l2Policy(int num_mshrs)
{
    core::MshrPolicy p;
    p.mode = core::CacheMode::MshrFile;
    p.numMshrs = num_mshrs;
    p.maxMisses = -1;
    p.fetchesPerSet = -1;
    return p;
}

LevelConfig
l2Config(int num_mshrs = -1)
{
    LevelConfig l2;
    l2.cacheBytes = 1024;
    l2.lineBytes = 32;
    l2.ways = 2;
    l2.policy = l2Policy(num_mshrs);
    l2.hitLatency = 4;
    l2.channelInterval = 0;
    return l2;
}

} // namespace

TEST(Channel, IntervalZeroIsIdentity)
{
    Channel c(0);
    EXPECT_EQ(c.send(5), 5u);
    EXPECT_EQ(c.send(5), 5u);
    EXPECT_EQ(c.send(3), 3u); // No ordering state at all.
    EXPECT_EQ(c.stats().sends, 3u);
    EXPECT_EQ(c.stats().delayedSends, 0u);
    EXPECT_EQ(c.stats().queueCycles, 0u);
}

TEST(Channel, FiniteIntervalQueues)
{
    Channel c(4);
    EXPECT_EQ(c.send(10), 10u); // Empty channel: passes through.
    EXPECT_EQ(c.send(11), 14u); // Slot busy until 14.
    EXPECT_EQ(c.send(12), 18u); // Queued behind the second send.
    EXPECT_EQ(c.send(30), 30u); // Long idle gap: no carry-over.
    EXPECT_EQ(c.stats().sends, 4u);
    EXPECT_EQ(c.stats().delayedSends, 2u);
    EXPECT_EQ(c.stats().queueCycles, (14u - 11u) + (18u - 12u));
}

TEST(MainMemoryLevel, ConstantPenaltyAndFetchCounting)
{
    mem::MainMemory mem;
    MainMemoryLevel level(mem);
    // 32 bytes = 2 chunks: 14 + 2 cycles in the pipelined-bus model.
    EXPECT_EQ(level.fetchLine(0x1000, 32, 100, true), 116u);
    EXPECT_EQ(mem.fetches(), 1u);
    // Uncounted fetches (L1 blocking modes) still get the timing.
    EXPECT_EQ(level.fetchLine(0x2000, 32, 200, false), 216u);
    EXPECT_EQ(mem.fetches(), 1u);
}

TEST(BuildHierarchy, DegenerateIsConstantPenalty)
{
    mem::MainMemory mem;
    std::vector<CacheLevel *> levels;
    auto top = core::buildHierarchy(HierarchyConfig{}, mem, levels);
    EXPECT_TRUE(levels.empty());
    EXPECT_EQ(top->fetchLine(0x40, 32, 7, true),
              7 + mem.penalty(32));
}

TEST(CacheLevel, MissThenHitTiming)
{
    mem::MainMemory mem;
    HierarchyConfig hier;
    hier.levels.push_back(l2Config());
    std::vector<CacheLevel *> levels;
    auto top = core::buildHierarchy(hier, mem, levels);
    ASSERT_EQ(levels.size(), 1u);

    // Cold miss: probe latency + memory penalty for the L2 line.
    const uint64_t miss = top->fetchLine(0x1000, 32, 10, true);
    EXPECT_EQ(miss, 10 + 4 + mem.penalty(32));
    // Same line once resident: just the probe latency.
    const uint64_t hit = top->fetchLine(0x1000, 32, miss + 1, true);
    EXPECT_EQ(hit, miss + 1 + 4);

    core::LevelStats s = levels[0]->stats();
    EXPECT_EQ(s.requests, 2u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.primaryMisses, 1u);
    EXPECT_EQ(mem.fetches(), 1u);
}

TEST(CacheLevel, RequestSpanningTwoBlocksReturnsMax)
{
    // L1 line 64B over an L2 with 32B lines: one L1 fetch becomes two
    // L2 block requests; the fill completes when the last one lands.
    mem::MainMemory mem;
    HierarchyConfig hier;
    hier.levels.push_back(l2Config());
    std::vector<CacheLevel *> levels;
    auto top = core::buildHierarchy(hier, mem, levels);

    const uint64_t t = top->fetchLine(0x1000, 64, 10, true);
    core::LevelStats s = levels[0]->stats();
    EXPECT_EQ(s.requests, 2u);
    EXPECT_EQ(s.primaryMisses, 2u);
    EXPECT_EQ(mem.fetches(), 2u);
    // Both blocks miss; the second block's probe can only start after
    // the first probe's port is free, so arrival >= the single-block
    // miss time.
    EXPECT_GE(t, 10u + 4u + mem.penalty(32));
}

TEST(CacheLevel, MshrExhaustionDelaysRequests)
{
    // One L2 MSHR: a second distinct-line miss must wait for the
    // first fetch to complete before it can even start.
    mem::MainMemory mem;
    HierarchyConfig hier;
    hier.levels.push_back(l2Config(/*num_mshrs=*/1));
    std::vector<CacheLevel *> levels;
    auto top = core::buildHierarchy(hier, mem, levels);

    const uint64_t first = top->fetchLine(0x1000, 32, 10, true);
    const uint64_t second = top->fetchLine(0x2000, 32, 11, true);
    // The second fetch could not overlap the first.
    EXPECT_GE(second, first + mem.penalty(32));

    core::LevelStats s = levels[0]->stats();
    EXPECT_EQ(s.structWaits, 1u);
    EXPECT_GT(s.structWaitCycles, 0u);
    EXPECT_EQ(s.maxInflightFetches, 1u);

    // With unlimited MSHRs the same pair overlaps fully.
    mem::MainMemory mem2;
    HierarchyConfig hier2;
    hier2.levels.push_back(l2Config());
    std::vector<CacheLevel *> levels2;
    auto top2 = core::buildHierarchy(hier2, mem2, levels2);
    top2->fetchLine(0x1000, 32, 10, true);
    EXPECT_EQ(top2->fetchLine(0x2000, 32, 11, true),
              11 + 4 + mem2.penalty(32));
    EXPECT_EQ(levels2[0]->stats().structWaits, 0u);
}

TEST(CacheLevel, NarrowDownChannelSerializesFetches)
{
    // The channel below L2 admits one fetch every 20 cycles: two
    // back-to-back misses serialize even with plenty of MSHRs.
    mem::MainMemory mem;
    HierarchyConfig hier;
    hier.levels.push_back(l2Config());
    hier.memChannelInterval = 20;
    std::vector<CacheLevel *> levels;
    auto top = core::buildHierarchy(hier, mem, levels);

    const uint64_t first = top->fetchLine(0x1000, 32, 10, true);
    const uint64_t second = top->fetchLine(0x2000, 32, 11, true);
    // First enters the channel at 14 (after its probe); the second's
    // probe ends at 15 but the channel slot is busy until 34.
    EXPECT_EQ(first, 10 + 4 + mem.penalty(32));
    EXPECT_EQ(second, 34 + mem.penalty(32));

    const core::ChannelStats &ch = levels[0]->downChannelStats();
    EXPECT_EQ(ch.sends, 2u);
    EXPECT_EQ(ch.delayedSends, 1u);
    EXPECT_EQ(ch.queueCycles, 34u - 15u);
}

TEST(CacheLevel, CompletionsAreNotMonotone)
{
    // A miss followed by a hit: the younger request's data arrives
    // first. This is the property that forced the completion-sorted
    // MshrFile above.
    mem::MainMemory mem;
    HierarchyConfig hier;
    hier.levels.push_back(l2Config());
    std::vector<CacheLevel *> levels;
    auto top = core::buildHierarchy(hier, mem, levels);

    // Warm 0x1000, then issue a cold miss and a hit right behind it.
    const uint64_t warm = top->fetchLine(0x1000, 32, 0, true);
    const uint64_t miss = top->fetchLine(0x2000, 32, warm + 1, true);
    const uint64_t hit = top->fetchLine(0x1000, 32, warm + 2, true);
    EXPECT_LT(hit, miss);
}

TEST(Hierarchy, KeyDistinguishesConfigs)
{
    EXPECT_EQ(core::hierarchyKey(HierarchyConfig{}), "");

    HierarchyConfig chan;
    chan.memChannelInterval = 4;
    HierarchyConfig l2;
    l2.levels.push_back(l2Config());
    HierarchyConfig l2b = l2;
    l2b.levels[0].cacheBytes *= 2;

    EXPECT_NE(core::hierarchyKey(chan), "");
    EXPECT_NE(core::hierarchyKey(l2), core::hierarchyKey(chan));
    EXPECT_NE(core::hierarchyKey(l2), core::hierarchyKey(l2b));
    EXPECT_EQ(core::hierarchyKey(l2), core::hierarchyKey(l2));
}

TEST(HierarchyDeathTest, RejectsBlockingLevelPolicy)
{
    HierarchyConfig hier;
    LevelConfig lc = l2Config();
    lc.policy = core::makePolicy(core::ConfigName::Mc0);
    hier.levels.push_back(lc);
    EXPECT_EXIT(core::validateHierarchy(hier),
                ::testing::ExitedWithCode(1), "");
}

/**
 * Degenerate configurations must take the exact single-level code
 * path: a run with an explicitly degenerate hierarchy equals a run
 * with the default config field for field, and exposes no hierarchy
 * counters.
 */
TEST(Hierarchy, DegenerateRunMatchesFlat)
{
    workloads::Workload w = workloads::makeWorkload("doduc", 0.05);
    harness::Lab lab(0.05);
    const isa::Program &prog = lab.program("doduc", 10);

    exec::MachineConfig flat;
    flat.policy = core::makePolicy(core::ConfigName::Fc2);
    exec::MachineConfig degen = flat;
    degen.hierarchy.memChannelInterval = 0; // Still degenerate.

    mem::SparseMemory m1 = w.makeMemory();
    exec::RunOutput a = exec::run(prog, m1, flat);
    mem::SparseMemory m2 = w.makeMemory();
    exec::RunOutput b = exec::run(prog, m2, degen);

    EXPECT_EQ(a.cpu.cycles, b.cpu.cycles);
    EXPECT_EQ(a.cache.fetches, b.cache.fetches);
    EXPECT_EQ(a.cache.structStallCycles, b.cache.structStallCycles);
    EXPECT_FALSE(a.hier.active);
    EXPECT_FALSE(b.hier.active);
    EXPECT_TRUE(b.hier.levels.empty());
}

/**
 * The cross-engine exactness property over hierarchy configurations:
 * execution-driven, exact replay, and lane replay agree field for
 * field when the memory side is multi-level.
 */
TEST(Hierarchy, EnginesAgreeOnHierarchyConfigs)
{
    constexpr double kScale = 0.05;

    std::vector<HierarchyConfig> hiers;
    {
        HierarchyConfig chan;
        chan.memChannelInterval = 6;
        hiers.push_back(chan);
        HierarchyConfig l2;
        l2.levels.push_back(l2Config(/*num_mshrs=*/2));
        hiers.push_back(l2);
        HierarchyConfig both = l2;
        both.levels[0].channelInterval = 2;
        both.memChannelInterval = 8;
        hiers.push_back(both);
    }

    for (const char *name : {"doduc", "eqntott"}) {
        workloads::Workload w = workloads::makeWorkload(name, kScale);
        harness::Lab lab(kScale);
        const isa::Program &prog = lab.program(name, 10);
        mem::SparseMemory rec_mem = w.makeMemory();
        exec::EventTrace trace =
            exec::recordEventTrace(prog, rec_mem);

        for (const HierarchyConfig &hier : hiers) {
            for (core::ConfigName cfg :
                 {core::ConfigName::Mc0, core::ConfigName::Mc1,
                  core::ConfigName::Fs2,
                  core::ConfigName::NoRestrict}) {
                exec::MachineConfig mc;
                mc.policy = core::makePolicy(cfg);
                mc.hierarchy = hier;

                mem::SparseMemory run_mem = w.makeMemory();
                exec::RunOutput ref = exec::run(prog, run_mem, mc);
                exec::RunOutput rep =
                    exec::replayExact(prog, trace, mc);
                ASSERT_TRUE(exec::laneReplayable(mc));
                std::vector<exec::RunOutput> lanes =
                    exec::replayLanes(prog, trace, {mc});

                for (const exec::RunOutput *o : {&rep, &lanes[0]}) {
                    EXPECT_EQ(ref.cpu.cycles, o->cpu.cycles);
                    EXPECT_EQ(ref.cpu.depStallCycles,
                              o->cpu.depStallCycles);
                    EXPECT_EQ(ref.cpu.structStallCycles,
                              o->cpu.structStallCycles);
                    EXPECT_EQ(ref.cpu.blockStallCycles,
                              o->cpu.blockStallCycles);
                    EXPECT_EQ(ref.cache.fetches, o->cache.fetches);
                    EXPECT_EQ(ref.maxInflightFetches,
                              o->maxInflightFetches);
                    ASSERT_EQ(ref.hier.levels.size(),
                              o->hier.levels.size());
                    for (size_t l = 0; l < ref.hier.levels.size();
                         ++l) {
                        EXPECT_EQ(ref.hier.levels[l].hits,
                                  o->hier.levels[l].hits);
                        EXPECT_EQ(
                            ref.hier.levels[l].structWaitCycles,
                            o->hier.levels[l].structWaitCycles);
                    }
                    EXPECT_EQ(ref.hier.memChannel.queueCycles,
                              o->hier.memChannel.queueCycles);
                }
                // The hierarchy must actually have been exercised.
                EXPECT_TRUE(ref.hier.active);
                EXPECT_GT(ref.hier.memChannel.sends, 0u);
            }
        }
    }
}
