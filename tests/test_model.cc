/**
 * @file
 * Tests for the analytical MCPI model (src/model/) and the
 * predict-then-simulate sweep planner (harness/sweep_planner.hh):
 * the bound-bracketing property across every MSHR organization,
 * exactness on the blocking organizations, planner back-substitution
 * identity, the simulate budget, and the Lab profile cache.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "harness/sweep_planner.hh"
#include "model/predict.hh"
#include "workloads/workload.hh"

using namespace nbl;
using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::Lab;
using harness::PlanOptions;
using harness::PlanOutcome;
using harness::SweepPoint;

namespace
{

/** Scale small enough to keep the multi-workload sweeps quick. */
constexpr double kScale = 0.05;

/** Every named organization: the two blocking ones and the eight
 *  non-blocking MSHR organizations of the paper's figures. */
constexpr core::ConfigName kAllConfigs[] = {
    core::ConfigName::Mc0Wma, core::ConfigName::Mc0,
    core::ConfigName::Mc1,    core::ConfigName::Mc2,
    core::ConfigName::Fc1,    core::ConfigName::Fc2,
    core::ConfigName::Fs1,    core::ConfigName::Fs2,
    core::ConfigName::InCache, core::ConfigName::NoRestrict,
};

} // namespace

/**
 * The exactness contract: bounds bracket the simulated stall cycles
 * for every organization, and are exact (bounds and estimate all
 * equal) on the blocking organizations. Runs all 10 named
 * organizations against all 18 workloads at two latencies, plus a
 * full latency sweep on three representative workloads.
 */
TEST(ModelBounds, BracketSimulationAcrossOrganizations)
{
    Lab lab(kScale);
    std::vector<SweepPoint> points;
    auto add = [&](const std::string &wl, int latency) {
        for (core::ConfigName cn : kAllConfigs) {
            ExperimentConfig cfg;
            cfg.config = cn;
            cfg.loadLatency = latency;
            points.push_back({wl, cfg});
        }
    };
    for (const std::string &wl : workloads::workloadNames()) {
        add(wl, 1);
        add(wl, 20);
    }
    for (const char *wl : {"doduc", "tomcatv", "espresso"}) {
        for (int lat : harness::paperLatencies)
            add(wl, lat);
    }

    // prune=false: simulate everything, still attach predictions.
    PlanOutcome outcome = harness::planAndRun(lab, points, {});

    size_t exact = 0;
    for (const harness::PlannedPoint &p : outcome.points) {
        const model::Prediction &pred = p.prediction;
        ASSERT_TRUE(p.simulated);
        ASSERT_TRUE(pred.supported)
            << harness::experimentKey(p.point.workload, p.point.cfg);
        const cpu::CpuStats &cpu = p.result.run.cpu;
        uint64_t stalls = cpu.missStallCycles();
        EXPECT_LE(pred.stallLower, stalls)
            << harness::experimentKey(p.point.workload, p.point.cfg);
        EXPECT_GE(pred.stallUpper, stalls)
            << harness::experimentKey(p.point.workload, p.point.cfg);
        EXPECT_EQ(pred.instructions, cpu.instructions);
        core::MshrPolicy pol =
            harness::predictQueryFor(p.point.cfg).policy;
        if (pol.blocking()) {
            EXPECT_TRUE(pred.exact);
            EXPECT_EQ(pred.stallEstimate, stalls)
                << harness::experimentKey(p.point.workload,
                                          p.point.cfg);
            EXPECT_EQ(pred.stallLower, pred.stallUpper);
            ++exact;
        }
    }
    EXPECT_GT(exact, 0u);
    EXPECT_GT(outcome.exactCount, 0u);
}

/** The model declines configurations it does not cover. */
TEST(ModelBounds, UnsupportedConfigurations)
{
    Lab lab(kScale);
    ExperimentConfig base;
    auto prof = lab.profile("espresso", base.loadLatency,
                            harness::profileConfigFor(base));

    model::PredictQuery q = harness::predictQueryFor(base);
    EXPECT_TRUE(model::predict(*prof, q).supported);

    model::PredictQuery wide = q;
    wide.issueWidth = 2;
    EXPECT_FALSE(model::predict(*prof, wide).supported);

    model::PredictQuery perfect = q;
    perfect.perfectCache = true;
    EXPECT_FALSE(model::predict(*prof, perfect).supported);

    model::PredictQuery ports = q;
    ports.fillWritePorts = 1;
    EXPECT_FALSE(model::predict(*prof, ports).supported);

    model::PredictQuery hier = q;
    hier.degenerateHierarchy = false;
    EXPECT_FALSE(model::predict(*prof, hier).supported);
}

/**
 * Planner with pruning on: simulated points are bit-identical to the
 * full sweep, bounds hold everywhere, the budget caps the simulated
 * fraction, and every point gets a result.
 */
TEST(SweepPlanner, PruneBackSubstitutionAndBudget)
{
    std::vector<SweepPoint> points;
    for (uint64_t bytes : {2048u, 8192u}) {
        for (core::ConfigName cn : kAllConfigs) {
            for (int lat : {1, 10, 20}) {
                ExperimentConfig cfg;
                cfg.cacheBytes = bytes;
                cfg.config = cn;
                cfg.loadLatency = lat;
                points.push_back({"doduc", cfg});
            }
        }
    }

    Lab planned(kScale);
    PlanOptions opts;
    opts.prune = true;
    PlanOutcome outcome = harness::planAndRun(planned, points, opts);
    EXPECT_EQ(outcome.distinctPoints, points.size());
    EXPECT_EQ(outcome.simulatedCount + outcome.prunedCount,
              outcome.distinctPoints);
    EXPECT_EQ(outcome.unsupportedCount, 0u);
    // The budget bounds the simulated fraction of supported points.
    EXPECT_LE(outcome.simulatedCount,
              size_t(double(points.size()) * opts.simulateBudget) +
                  outcome.unsupportedCount);
    EXPECT_GT(outcome.prunedCount, 0u);
    EXPECT_GT(outcome.profileCount, 0u);

    Lab fullLab(kScale);
    std::vector<ExperimentResult> full =
        harness::runPointsParallel(fullLab, points);
    harness::PlanError err = harness::compareWithFull(outcome, full);
    EXPECT_EQ(err.boundViolations, 0u);
    EXPECT_EQ(err.substitutionMismatches, 0u);
    EXPECT_GE(err.maxAbsErr, err.meanAbsErr);

    // Pruned results carry the model provenance and a consistent
    // stall partition; simulated ones carry an engine provenance.
    for (const harness::PlannedPoint &p : outcome.points) {
        const cpu::CpuStats &c = p.result.run.cpu;
        EXPECT_EQ(c.cycles, c.instructions + c.missStallCycles());
        if (p.simulated)
            EXPECT_NE(p.result.run.provenance,
                      exec::Provenance::Model);
        else
            EXPECT_EQ(p.result.run.provenance,
                      exec::Provenance::Model);
    }
}

/** prune=false must behave exactly like runPointsParallel. */
TEST(SweepPlanner, NoPruneIsFullSimulation)
{
    std::vector<SweepPoint> points;
    for (core::ConfigName cn :
         {core::ConfigName::Mc0, core::ConfigName::Fc2}) {
        ExperimentConfig cfg;
        cfg.config = cn;
        points.push_back({"espresso", cfg});
    }
    Lab a(kScale), b(kScale);
    PlanOutcome outcome = harness::planAndRun(a, points, {});
    std::vector<ExperimentResult> full =
        harness::runPointsParallel(b, points);
    ASSERT_EQ(outcome.points.size(), full.size());
    EXPECT_EQ(outcome.simulatedCount, points.size());
    EXPECT_EQ(outcome.prunedCount, 0u);
    harness::PlanError err = harness::compareWithFull(outcome, full);
    EXPECT_EQ(err.substitutionMismatches, 0u);
    EXPECT_EQ(err.boundViolations, 0u);
    EXPECT_EQ(err.maxAbsErr, 0.0);
}

/** Lab::profile caches by (workload, fingerprint, geometry). */
TEST(SweepPlanner, LabProfileCache)
{
    Lab lab(kScale);
    model::ProfileConfig cfg;
    auto a = lab.profile("espresso", 10, cfg);
    EXPECT_EQ(lab.cachedProfiles(), 1u);
    EXPECT_EQ(lab.profileCacheHits(), 0u);
    auto b = lab.profile("espresso", 10, cfg);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(lab.profileCacheHits(), 1u);

    model::ProfileConfig other = cfg;
    other.cacheBytes = 2048;
    auto c = lab.profile("espresso", 10, other);
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(lab.cachedProfiles(), 2u);

    EXPECT_GT(a->instructions, 0u);
    EXPECT_GE(a->instructions, a->loads + a->stores);
    EXPECT_GT(a->loads, 0u);
    EXPECT_GT(a->penalty, 0u);
}

/**
 * The batching contract: one multi-geometry trace pass produces
 * profiles element-for-element identical to per-config passes --
 * every counter, bound, and miss event. Duplicated configs resolve to
 * the same cached characterization.
 */
TEST(SweepPlanner, BatchedCharacterizationMatchesSerial)
{
    std::vector<model::ProfileConfig> cfgs;
    for (uint64_t bytes : {2048u, 8192u}) {
        for (unsigned ways : {1u, 2u, 0u}) {
            model::ProfileConfig c;
            c.cacheBytes = bytes;
            c.ways = ways;
            cfgs.push_back(c);
        }
    }
    cfgs.push_back(cfgs.front()); // A duplicate geometry.

    Lab batch_lab(kScale);
    auto batched = batch_lab.profileBatch("xlisp", 10, cfgs);
    ASSERT_EQ(batched.size(), cfgs.size());
    EXPECT_EQ(batch_lab.cachedProfiles(), cfgs.size() - 1);
    EXPECT_EQ(batched.front().get(), batched.back().get());

    Lab serial_lab(kScale);
    for (size_t i = 0; i < cfgs.size(); ++i) {
        auto want = serial_lab.profile("xlisp", 10, cfgs[i]);
        const model::TraceProfile &got = *batched[i];
        EXPECT_EQ(got.instructions, want->instructions);
        EXPECT_EQ(got.loads, want->loads);
        EXPECT_EQ(got.stores, want->stores);
        EXPECT_EQ(got.branches, want->branches);
        EXPECT_EQ(got.penalty, want->penalty);
        EXPECT_EQ(got.sets, want->sets);
        for (auto [g, w] :
             {std::make_pair(&got.writeAround, &want->writeAround),
              std::make_pair(&got.allocate, &want->allocate)}) {
            EXPECT_EQ(g->loadHits, w->loadHits);
            EXPECT_EQ(g->loadMisses, w->loadMisses);
            EXPECT_EQ(g->storeHits, w->storeHits);
            EXPECT_EQ(g->storeMisses, w->storeMisses);
            EXPECT_EQ(g->storeFills, w->storeFills);
            EXPECT_EQ(g->fetches, w->fetches);
            EXPECT_EQ(g->evictions, w->evictions);
            EXPECT_EQ(g->blockStall, w->blockStall);
            EXPECT_EQ(g->chainStall, w->chainStall);
            EXPECT_EQ(g->coldChainStall, w->coldChainStall);
            ASSERT_EQ(g->events.size(), w->events.size());
            for (size_t e = 0; e < g->events.size(); ++e) {
                const model::MissEvent &a = g->events[e];
                const model::MissEvent &b = w->events[e];
                EXPECT_EQ(a.index, b.index);
                EXPECT_EQ(a.line, b.line);
                EXPECT_EQ(a.set, b.set);
                EXPECT_EQ(a.useDist, b.useDist);
                EXPECT_EQ(a.fetchRef, b.fetchRef);
                EXPECT_EQ(a.lineOffset, b.lineOffset);
                EXPECT_EQ(a.kind, b.kind);
                EXPECT_EQ(a.cold, b.cold);
            }
        }
    }
}
