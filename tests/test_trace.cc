/**
 * @file
 * Tests for trace recording and trace-driven replay, including the
 * two methodological properties the module documents: replay is
 * exact for a blocking cache and an optimistic bound for
 * non-blocking ones.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "exec/machine.hh"
#include "exec/trace.hh"
#include "workloads/workload.hh"

using namespace nbl;
using namespace nbl::exec;

namespace
{

MemTrace
traceOf(const std::string &wl, int latency = 10)
{
    workloads::Workload w = workloads::makeWorkload(wl, 0.05);
    compiler::CompileParams cp;
    cp.loadLatency = latency;
    isa::Program prog = compiler::compile(w.program, cp);
    mem::SparseMemory m = w.makeMemory();
    return recordTrace(prog, m);
}

exec::RunOutput
execRun(const std::string &wl, core::ConfigName cfg, int latency = 10)
{
    workloads::Workload w = workloads::makeWorkload(wl, 0.05);
    compiler::CompileParams cp;
    cp.loadLatency = latency;
    isa::Program prog = compiler::compile(w.program, cp);
    mem::SparseMemory m = w.makeMemory();
    exec::MachineConfig mc;
    mc.policy = core::makePolicy(cfg);
    return exec::run(prog, m, mc);
}

const mem::CacheGeometry kBaseline{8 * 1024, 32, 1};

} // namespace

TEST(Trace, RecordsEveryMemoryReference)
{
    MemTrace t = traceOf("eqntott");
    auto run = execRun("eqntott", core::ConfigName::NoRestrict);
    EXPECT_EQ(t.records.size(), run.cpu.loads + run.cpu.stores);
    EXPECT_EQ(t.instructions, run.cpu.instructions);
    EXPECT_GT(t.referencesPerInstruction(), 0.0);
}

TEST(Trace, GapsSumToInstructionsUpToTail)
{
    MemTrace t = traceOf("doduc");
    uint64_t sum = 0;
    for (const auto &r : t.records) {
        EXPECT_GE(r.gap, 1u);
        sum += r.gap;
    }
    EXPECT_LE(sum, t.instructions);
}

TEST(Trace, RecordFieldsAreSane)
{
    MemTrace t = traceOf("tomcatv");
    size_t loads = 0;
    for (const auto &r : t.records) {
        EXPECT_TRUE(r.size == 1 || r.size == 2 || r.size == 4 ||
                    r.size == 8);
        if (r.isLoad) {
            ++loads;
            EXPECT_LT(r.destLinear, isa::numIntRegs + isa::numFpRegs);
        }
    }
    EXPECT_GT(loads, 0u);
}

TEST(Trace, DeterministicRecording)
{
    MemTrace a = traceOf("xlisp");
    MemTrace b = traceOf("xlisp");
    ASSERT_EQ(a.records.size(), b.records.size());
    for (size_t i = 0; i < a.records.size(); i += 97)
        EXPECT_EQ(a.records[i].addr, b.records[i].addr) << i;
}

class ReplayExactForBlocking
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ReplayExactForBlocking, MatchesExecutionDriven)
{
    // For a blocking cache the access stream, the miss stream, and
    // the stall cost are all timing-independent: trace-driven replay
    // must agree with the execution-driven simulator exactly.
    const char *wl = GetParam();
    MemTrace t = traceOf(wl);
    ReplayResult rep = replayTrace(t, kBaseline,
                                   core::makePolicy(core::ConfigName::Mc0),
                                   mem::MainMemory());
    auto run = execRun(wl, core::ConfigName::Mc0);
    EXPECT_EQ(rep.cache.primaryMisses, run.cache.primaryMisses);
    EXPECT_EQ(rep.stallCycles, run.cpu.missStallCycles());
    EXPECT_DOUBLE_EQ(rep.mcpi(), run.cpu.mcpi());
}

INSTANTIATE_TEST_SUITE_P(Workloads, ReplayExactForBlocking,
                         ::testing::Values("doduc", "tomcatv",
                                           "eqntott", "ora", "xlisp"));

class ReplayBoundsNonBlocking
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ReplayBoundsNonBlocking, ReplayIsOptimistic)
{
    // Without register dependences, the replayer only charges
    // structural stalls: its MCPI is a lower bound on the
    // execution-driven value for every organization.
    const char *wl = GetParam();
    MemTrace t = traceOf(wl);
    for (auto cfg : {core::ConfigName::Mc1, core::ConfigName::Fc2,
                     core::ConfigName::NoRestrict}) {
        ReplayResult rep = replayTrace(t, kBaseline,
                                       core::makePolicy(cfg),
                                       mem::MainMemory());
        auto run = execRun(wl, cfg);
        EXPECT_LE(rep.mcpi(), run.cpu.mcpi() + 1e-9)
            << core::configLabel(cfg);
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, ReplayBoundsNonBlocking,
                         ::testing::Values("doduc", "tomcatv",
                                           "su2cor", "ora"));

TEST(Replay, UnrestrictedReplayHasNoStalls)
{
    // With no dependences and no resource limits there is nothing to
    // stall on: unrestricted replay MCPI is exactly zero.
    MemTrace t = traceOf("tomcatv");
    ReplayResult rep =
        replayTrace(t, kBaseline,
                    core::makePolicy(core::ConfigName::NoRestrict),
                    mem::MainMemory());
    EXPECT_DOUBLE_EQ(rep.mcpi(), 0.0);
}

TEST(Replay, SameMissClassificationAsExecutionForSerialCode)
{
    // ora's accesses are so far apart that timing feedback does not
    // change classification: replay and execution agree on all
    // counters even for non-blocking organizations.
    MemTrace t = traceOf("ora");
    ReplayResult rep = replayTrace(t, kBaseline,
                                   core::makePolicy(core::ConfigName::Fc2),
                                   mem::MainMemory());
    auto run = execRun("ora", core::ConfigName::Fc2);
    EXPECT_EQ(rep.cache.primaryMisses, run.cache.primaryMisses);
    EXPECT_EQ(rep.cache.secondaryMisses, run.cache.secondaryMisses);
}
