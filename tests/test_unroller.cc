/**
 * @file
 * Unit tests for the loop unroller, including semantic equivalence of
 * unrolled and rolled kernels checked by execution.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "compiler/kernel.hh"
#include "compiler/unroller.hh"
#include "exec/machine.hh"

using namespace nbl;
using namespace nbl::compiler;

namespace
{

/** out[i] = in[i] * 2 + i for i in [0, trips), via counter indexing. */
KernelProgram
scaleProgram(unsigned unroll_factor)
{
    KernelProgram kp;
    kp.name = "scale";
    KernelBuilder b("scale", kp.nextVRegId);
    b.countedLoop(0, 16);
    VReg in = b.constI(0x10000);
    VReg out = b.constI(0x20000);
    VReg idx = b.shli(b.counter(), 3);
    VReg src = b.add(in, idx);
    VReg dst = b.add(out, idx);
    VReg v = b.load(src, 0, 0);
    VReg doubled = b.shli(v, 1);
    VReg plus = b.add(doubled, b.counter());
    b.store(dst, 0, plus, 1);
    Kernel k = b.take();
    if (unroll_factor > 1)
        k = unroll(k, unroll_factor, kp.nextVRegId);
    kp.kernels.push_back(k);
    return kp;
}

uint64_t
runAndChecksum(const KernelProgram &kp)
{
    CompileParams cp;
    cp.loadLatency = 1;
    isa::Program prog = compile(kp, cp);
    mem::SparseMemory m;
    for (uint64_t i = 0; i < 16; ++i)
        m.write(0x10000 + i * 8, 8, i * 3 + 1);
    exec::MachineConfig mc;
    mc.policy = core::makePolicy(core::ConfigName::NoRestrict);
    exec::run(prog, m, mc);
    return m.checksumRange(0x20000, 0x20000 + 16 * 8);
}

} // namespace

TEST(Unroller, FactorOneIsIdentity)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 8);
    VReg p = b.constI(0x1000);
    b.load(p, 0, 0);
    Kernel k = b.take();
    Kernel u = unroll(k, 1, id);
    EXPECT_EQ(u.body.size(), k.body.size());
    EXPECT_EQ(u.trips, k.trips);
}

TEST(Unroller, AdjustsTripsAndStep)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 12, 2);
    VReg p = b.constI(0x1000);
    b.load(p, 0, 0);
    Kernel k = b.take();
    Kernel u = unroll(k, 4, id);
    EXPECT_EQ(u.trips, 3);
    EXPECT_EQ(u.step, 8);
    // Iteration space unchanged: start + trips*step.
    EXPECT_EQ(u.start + u.trips * u.step, k.start + k.trips * k.step);
}

TEST(Unroller, RenamesTemporariesPerCopy)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 8);
    VReg p = b.constI(0x1000);
    VReg v = b.load(p, 0, 0);
    b.addi(v, 1);
    Kernel k = b.take();
    Kernel u = unroll(k, 2, id);
    // Two loads with different destination vregs.
    std::vector<uint32_t> load_dsts;
    for (const VOp &op : u.body) {
        if (op.isLoad())
            load_dsts.push_back(op.dst.id);
    }
    ASSERT_EQ(load_dsts.size(), 2u);
    EXPECT_NE(load_dsts[0], load_dsts[1]);
}

TEST(Unroller, CounterReadsGetPerCopyOffsets)
{
    KernelProgram rolled = scaleProgram(1);
    Kernel u = rolled.kernels[0];
    uint32_t id = rolled.nextVRegId;
    Kernel un = unroll(u, 4, id);
    // Copies 1..3 read counter + i*step through inserted AddIs.
    unsigned addi_on_counter = 0;
    for (const VOp &op : un.body) {
        if (op.op == isa::Op::AddI && op.src1 == u.counter &&
            op.dst != u.counter) {
            ++addi_on_counter;
        }
    }
    EXPECT_EQ(addi_on_counter, 3u);
}

TEST(Unroller, ChainsPinnedRedefinitions)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 8);
    VReg p = b.constI(0x1000);
    b.load(p, 0, 0);
    b.bump(p, 8);
    Kernel k = b.take();
    Kernel u = unroll(k, 2, id);
    // Both copies bump the same pinned vreg (sequentially chained).
    unsigned bumps = 0;
    for (const VOp &op : u.body)
        bumps += op.op == isa::Op::AddI && op.dst == p && op.src1 == p;
    EXPECT_EQ(bumps, 2u);
}

class UnrollEquivalence : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(UnrollEquivalence, SameResultsAsRolledLoop)
{
    // Property: unrolling must not change the program's output.
    uint64_t rolled = runAndChecksum(scaleProgram(1));
    uint64_t unrolled = runAndChecksum(scaleProgram(GetParam()));
    EXPECT_EQ(rolled, unrolled);
}

INSTANTIATE_TEST_SUITE_P(Factors, UnrollEquivalence,
                         ::testing::Values(2u, 4u, 8u, 16u));

TEST(UnrollerDeathTest, RejectsWhileLoops)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    VReg p = b.constI(0x1000);
    b.whileNonZero(p, 4);
    VReg n = b.load(p, 0, 0);
    b.assign(p, n);
    Kernel k = b.take();
    EXPECT_EXIT(unroll(k, 2, id), ::testing::ExitedWithCode(1), "");
}

TEST(UnrollerDeathTest, RejectsIndivisibleTrips)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 10);
    VReg p = b.constI(0x1000);
    b.load(p, 0, 0);
    Kernel k = b.take();
    EXPECT_EXIT(unroll(k, 3, id), ::testing::ExitedWithCode(1), "");
}
