/**
 * @file
 * Tests for the stall-reduction policy layer (src/policy/) and the
 * strict CLI/protocol parsing that rides along with it.
 *
 * The load-bearing properties:
 *  - a defaulted policy is BIT-identical to the paper's model on
 *    every MSHR organization (the figures' stdout depends on it);
 *  - the oracle predictor never changes timing (zero mispredictions,
 *    penalty is the only effect);
 *  - prefetches are admitted only through spare MSHR capacity, and
 *    the denial accounting is exact;
 *  - SSR forwarding only removes dependence bubbles, never adds
 *    cycles;
 *  - all engines (exec::run, replayExact, replayLanes) agree with
 *    the policy active;
 *  - config labels and numeric CLI arguments parse strictly.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/event_trace.hh"
#include "exec/lane_replay.hh"
#include "exec/machine.hh"
#include "harness/experiment.hh"
#include "policy/stall_policy.hh"
#include "stats/run_stats.hh"
#include "util/parse.hh"
#include "workloads/workload.hh"

using namespace nbl;
using exec::EventTrace;
using exec::MachineConfig;
using exec::RunOutput;
using harness::Lab;
using nbl::policy::PredictorMode;
using nbl::policy::PrefetchMode;
using nbl::policy::StallPolicyConfig;

namespace
{

constexpr double kScale = 0.02;

/** Every named MSHR organization. */
std::vector<core::ConfigName>
allOrgs()
{
    return std::vector<core::ConfigName>(std::begin(core::allConfigNames),
                                         std::end(core::allConfigNames));
}

RunOutput
runWith(const std::string &workload, core::ConfigName org,
        const StallPolicyConfig &sp, int latency = 10)
{
    workloads::Workload w = workloads::makeWorkload(workload, kScale);
    Lab lab(kScale);
    const isa::Program &prog = lab.program(workload, latency);
    mem::SparseMemory mem = w.makeMemory();
    MachineConfig mc;
    mc.policy = core::makePolicy(org);
    mc.stallPolicy = sp;
    return exec::run(prog, mem, mc);
}

void
expectSameCounters(const RunOutput &a, const RunOutput &b)
{
    stats::Snapshot sa = stats::snapshotOfRun(a);
    stats::Snapshot sb = stats::snapshotOfRun(b);
    EXPECT_TRUE(sa.countersEqual(sb));
}

} // namespace

/**
 * An explicitly-constructed default StallPolicyConfig is inert: no
 * policy counters, no pred.* registration, and (the property every
 * committed figure depends on) counters bit-identical to a config
 * that never mentions the policy -- on every MSHR organization.
 */
TEST(PolicyOff, BitIdenticalOnEveryOrganization)
{
    for (core::ConfigName org : allOrgs()) {
        RunOutput off = runWith("doduc", org, StallPolicyConfig{});
        EXPECT_FALSE(off.policyActive);
        EXPECT_EQ(off.cpu.predStallCycles, 0u);
        EXPECT_EQ(off.cpu.predLoads, 0u);
        EXPECT_EQ(off.cpu.ssrForwarded, 0u);
        EXPECT_EQ(off.pf.issued, 0u);
        EXPECT_EQ(off.pf.mshrDenied, 0u);

        // With width 1 the partition stays exact including the new
        // class: cycles == instrs + dep + struct + block + pred.
        EXPECT_EQ(off.cpu.cycles,
                  off.cpu.instructions + off.cpu.depStallCycles +
                      off.cpu.structStallCycles +
                      off.cpu.blockStallCycles +
                      off.cpu.predStallCycles);
    }
}

/**
 * The oracle predictor is always right, so it charges no penalties
 * and the run is bit-identical to policy-off -- but the run is marked
 * policy-active and counts every load it predicted.
 */
TEST(Predictor, OracleNeverChangesTiming)
{
    for (core::ConfigName org :
         {core::ConfigName::Mc0, core::ConfigName::Mc1,
          core::ConfigName::Fc2, core::ConfigName::NoRestrict}) {
        RunOutput off = runWith("doduc", org, StallPolicyConfig{});
        StallPolicyConfig sp;
        sp.predictor.mode = PredictorMode::Oracle;
        RunOutput oracle = runWith("doduc", org, sp);
        EXPECT_TRUE(oracle.policyActive);
        EXPECT_EQ(oracle.cpu.cycles, off.cpu.cycles);
        EXPECT_EQ(oracle.cpu.predStallCycles, 0u);
        EXPECT_EQ(oracle.cpu.predUnder, 0u);
        EXPECT_EQ(oracle.cpu.predOver, 0u);
        EXPECT_GT(oracle.cpu.predLoads, 0u);
        EXPECT_EQ(oracle.cpu.predHits, oracle.cpu.predLoads);
    }
}

/**
 * The synthetic predictor's nested correct-sets: raising accuracy
 * only converts wrong predictions into right ones, so underprediction
 * penalties (and cycles) are monotone non-increasing in accuracy.
 */
TEST(Predictor, SyntheticMonotoneInAccuracy)
{
    uint64_t prev_cycles = 0;
    bool first = true;
    for (double acc : {0.25, 0.50, 0.75, 1.00}) {
        StallPolicyConfig sp;
        sp.predictor.mode = PredictorMode::Synthetic;
        sp.predictor.accuracy = acc;
        RunOutput r =
            runWith("doduc", core::ConfigName::NoRestrict, sp);
        if (!first)
            EXPECT_LE(r.cpu.cycles, prev_cycles) << "acc=" << acc;
        prev_cycles = r.cpu.cycles;
        first = false;
    }
}

/** Every mispredicted-hit load charges exactly the penalty knob. */
TEST(Predictor, PenaltyArithmeticExact)
{
    StallPolicyConfig sp;
    sp.predictor.mode = PredictorMode::Synthetic;
    sp.predictor.accuracy = 0.5;
    sp.predictor.penalty = 7;
    RunOutput r = runWith("doduc", core::ConfigName::Mc2, sp);
    EXPECT_GT(r.cpu.predUnder, 0u);
    EXPECT_EQ(r.cpu.predStallCycles, 7 * r.cpu.predUnder);
    EXPECT_EQ(r.cpu.predLoads, r.cpu.predHits + r.cpu.predUnder +
                                   r.cpu.predOver);
}

/**
 * Spare-MSHR admission: mc=1's one register is demand-owned whenever
 * the trigger fires, so every prefetch is denied; and no organization
 * ever exceeds its register count (mc= expresses registers as the
 * miss cap, fc= as the fetch cap).
 */
TEST(Prefetch, SpareMshrAdmissionOnly)
{
    StallPolicyConfig sp;
    sp.prefetch.mode = PrefetchMode::NextLine;
    sp.prefetch.degree = 4;

    RunOutput mc1 = runWith("tomcatv", core::ConfigName::Mc1, sp);
    EXPECT_EQ(mc1.pf.issued, 0u);
    EXPECT_GT(mc1.pf.mshrDenied, 0u);
    EXPECT_LE(mc1.maxInflightFetches, 1u);
    // Every prefetch denied means the timing is untouched: the mc=1
    // curve with prefetch "on" equals policy-off exactly.
    RunOutput mc1_off =
        runWith("tomcatv", core::ConfigName::Mc1, StallPolicyConfig{});
    EXPECT_EQ(mc1.cpu.cycles, mc1_off.cpu.cycles);
    EXPECT_EQ(mc1.cache.fetches, mc1_off.cache.fetches);

    RunOutput mc2 = runWith("tomcatv", core::ConfigName::Mc2, sp);
    EXPECT_GT(mc2.pf.issued, 0u);
    EXPECT_GT(mc2.pf.mshrDenied, 0u);
    EXPECT_LE(mc2.maxInflightFetches, 2u);

    RunOutput fc2 = runWith("tomcatv", core::ConfigName::Fc2, sp);
    EXPECT_LE(fc2.maxInflightFetches, 2u);

    RunOutput inf =
        runWith("tomcatv", core::ConfigName::NoRestrict, sp);
    EXPECT_GT(inf.pf.issued, 0u);
    EXPECT_EQ(inf.pf.mshrDenied, 0u);
    EXPECT_LE(inf.pf.useful, inf.pf.issued);
}

/**
 * SSR forwarding converts load-use interlock bubbles into issues: it
 * forwards a positive number of times, saves exactly the cycles it
 * claims, and never makes a run slower.
 */
TEST(Ssr, ForwardingOnlyRemovesBubbles)
{
    StallPolicyConfig sp;
    sp.ssr.window = 2;

    // A blocking cache has no load-use bubbles to forward: the block
    // stall at the load itself already waited out the miss, so every
    // result is ready by its scheduled use.
    {
        RunOutput off = runWith("doduc", core::ConfigName::Mc0,
                                StallPolicyConfig{});
        RunOutput ssr = runWith("doduc", core::ConfigName::Mc0, sp);
        EXPECT_EQ(ssr.cpu.ssrForwarded, 0u);
        EXPECT_EQ(ssr.cpu.cycles, off.cpu.cycles);
    }

    // Non-blocking: misses overrun the schedule by a few cycles and
    // the window catches the short bubbles. No struct/block stalls on
    // the unrestricted cache, so the cycle savings ARE the dep-stall
    // savings, exactly.
    {
        RunOutput off = runWith("doduc", core::ConfigName::NoRestrict,
                                StallPolicyConfig{});
        RunOutput ssr =
            runWith("doduc", core::ConfigName::NoRestrict, sp);
        EXPECT_GT(ssr.cpu.ssrForwarded, 0u);
        EXPECT_GT(ssr.cpu.ssrSavedCycles, 0u);
        EXPECT_LE(ssr.cpu.cycles, off.cpu.cycles);
        EXPECT_EQ(off.cpu.cycles - ssr.cpu.cycles,
                  off.cpu.depStallCycles - ssr.cpu.depStallCycles);
    }
}

/**
 * Engine agreement with the policy ACTIVE: replayExact and
 * replayLanes must reproduce exec::run's counters bit for bit under
 * a mixed predictor + prefetch + SSR policy.
 */
TEST(PolicyEngines, AllEnginesAgreeWithPolicyOn)
{
    const std::string name = "su2cor";
    workloads::Workload w = workloads::makeWorkload(name, kScale);
    Lab lab(kScale);
    const isa::Program &prog = lab.program(name, 10);
    mem::SparseMemory rec_mem = w.makeMemory();
    EventTrace trace = exec::recordEventTrace(prog, rec_mem);

    StallPolicyConfig sp;
    sp.predictor.mode = PredictorMode::Table;
    sp.predictor.tableBits = 6;
    sp.predictor.penalty = 4;
    sp.prefetch.mode = PrefetchMode::Stride;
    sp.prefetch.degree = 2;
    sp.ssr.window = 3;

    std::vector<MachineConfig> mcs;
    for (core::ConfigName org :
         {core::ConfigName::Mc1, core::ConfigName::Fc2,
          core::ConfigName::Fs2, core::ConfigName::NoRestrict}) {
        MachineConfig mc;
        mc.policy = core::makePolicy(org);
        mc.stallPolicy = sp;
        mcs.push_back(mc);
    }
    std::vector<RunOutput> lanes = exec::replayLanes(prog, trace, mcs);
    ASSERT_EQ(lanes.size(), mcs.size());
    for (size_t i = 0; i < mcs.size(); ++i) {
        mem::SparseMemory run_mem = w.makeMemory();
        RunOutput ref = exec::run(prog, run_mem, mcs[i]);
        EXPECT_TRUE(ref.policyActive);
        RunOutput rep = exec::replayExact(prog, trace, mcs[i]);
        expectSameCounters(ref, rep);
        expectSameCounters(ref, lanes[i]);
    }
}

/** stallPolicyKey: "" iff defaulted, distinct per knob setting. */
TEST(PolicyKey, EmptyIffDefaulted)
{
    EXPECT_EQ(nbl::policy::stallPolicyKey(StallPolicyConfig{}), "");
    StallPolicyConfig a, b;
    a.predictor.mode = PredictorMode::Oracle;
    b.predictor.mode = PredictorMode::Synthetic;
    b.predictor.accuracy = 0.75;
    EXPECT_NE(nbl::policy::stallPolicyKey(a), "");
    EXPECT_NE(nbl::policy::stallPolicyKey(a),
              nbl::policy::stallPolicyKey(b));
    StallPolicyConfig c;
    c.ssr.window = 1;
    EXPECT_NE(nbl::policy::stallPolicyKey(c), "");
}

/**
 * Config labels parse strictly: the exact vocabulary round-trips,
 * and any mutated suffix is rejected unless the mutation happens to
 * BE another exact label (none of the suffixes below can).
 */
TEST(StrictParsing, ConfigLabelVocabulary)
{
    for (core::ConfigName name : core::allConfigNames) {
        std::string label = core::configLabel(name);
        core::ConfigName parsed;
        ASSERT_TRUE(core::parseConfigLabel(label, &parsed)) << label;
        EXPECT_EQ(parsed, name) << label;

        for (const char *suffix : {"x", " ", "0", "=1", " +wma2"}) {
            std::string mutated = label + suffix;
            core::ConfigName dummy;
            EXPECT_FALSE(core::parseConfigLabel(mutated, &dummy))
                << "accepted '" << mutated << "'";
        }
        // Truncations fail too -- except "mc=0 +wma" whose prefix
        // "mc=0" is itself a vocabulary word.
        if (!label.empty()) {
            std::string trunc = label.substr(0, label.size() - 1);
            core::ConfigName t;
            bool ok = core::parseConfigLabel(trunc, &t);
            bool is_word = false;
            for (core::ConfigName other : core::allConfigNames)
                is_word |= trunc == core::configLabel(other);
            EXPECT_EQ(ok, is_word) << "'" << trunc << "'";
        }
    }
    core::ConfigName dummy;
    EXPECT_FALSE(core::parseConfigLabel("", &dummy));
    EXPECT_FALSE(core::parseConfigLabel("mc=3", &dummy));
}

/** util/parse.hh: whole-string-or-nothing numeric conversions. */
TEST(StrictParsing, NumericHelpers)
{
    int64_t i = 0;
    EXPECT_TRUE(parseInt64("42", &i));
    EXPECT_EQ(i, 42);
    EXPECT_TRUE(parseInt64("-7", &i));
    EXPECT_EQ(i, -7);
    EXPECT_TRUE(parseInt64("0x10", &i));
    EXPECT_EQ(i, 16);
    EXPECT_FALSE(parseInt64("", &i));
    EXPECT_FALSE(parseInt64("12x", &i));
    EXPECT_FALSE(parseInt64("4 2", &i));
    EXPECT_FALSE(parseInt64("99999999999999999999", &i));

    uint64_t u = 0;
    EXPECT_TRUE(parseUint64("8192", &u));
    EXPECT_EQ(u, 8192u);
    EXPECT_FALSE(parseUint64("-1", &u));
    EXPECT_FALSE(parseUint64("  -1", &u));
    EXPECT_FALSE(parseUint64("8k", &u));
    EXPECT_FALSE(parseUint64("", &u));

    double d = 0.0;
    EXPECT_TRUE(parseDouble("0.5", &d));
    EXPECT_EQ(d, 0.5);
    EXPECT_TRUE(parseDouble("1e-3", &d));
    EXPECT_FALSE(parseDouble("nan", &d));
    EXPECT_FALSE(parseDouble("inf", &d));
    EXPECT_FALSE(parseDouble("1.5x", &d));
    EXPECT_FALSE(parseDouble("", &d));
}

/** The env-knob reader panics on malformed values and is defaulted
 *  over an empty environment (the daemon and --dry-run rely on it). */
TEST(PolicyEnv, DefaultedWhenUnset)
{
    unsetenv("NBL_PRED_MODE");
    unsetenv("NBL_PRED_BITS");
    unsetenv("NBL_PRED_PENALTY");
    unsetenv("NBL_PRED_ACC");
    unsetenv("NBL_PF_MODE");
    unsetenv("NBL_PF_DEGREE");
    unsetenv("NBL_SSR_WINDOW");
    EXPECT_TRUE(nbl::policy::stallPolicyFromEnv().defaulted());

    setenv("NBL_PRED_MODE", "oracle", 1);
    setenv("NBL_SSR_WINDOW", "2", 1);
    StallPolicyConfig sp = nbl::policy::stallPolicyFromEnv();
    EXPECT_FALSE(sp.defaulted());
    EXPECT_EQ(sp.predictor.mode, PredictorMode::Oracle);
    EXPECT_EQ(sp.ssr.window, 2u);
    unsetenv("NBL_PRED_MODE");
    unsetenv("NBL_SSR_WINDOW");
}
