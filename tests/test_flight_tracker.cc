/**
 * @file
 * Unit tests for the time-weighted in-flight histograms (Figure 6's
 * measurement machinery).
 */

#include <gtest/gtest.h>

#include "core/flight_tracker.hh"

using namespace nbl::core;

TEST(LevelHistogram, ChargesIntervalsToLevels)
{
    LevelHistogram h;
    h.set(1, 10);  // level 0 during [0, 10)
    h.set(2, 15);  // level 1 during [10, 15)
    h.set(0, 25);  // level 2 during [15, 25)
    h.finalize(100); // level 0 during [25, 100)
    EXPECT_EQ(h.cyclesAt(0), 85u);
    EXPECT_EQ(h.cyclesAt(1), 5u);
    EXPECT_EQ(h.cyclesAt(2), 10u);
    EXPECT_EQ(h.totalCycles(), 100u);
    EXPECT_EQ(h.maxSeen(), 2u);
}

TEST(LevelHistogram, IncrementDecrement)
{
    LevelHistogram h;
    h.increment(5);
    h.increment(7);
    h.decrement(12);
    h.decrement(20);
    h.finalize(20);
    EXPECT_EQ(h.cyclesAt(0), 5u);
    EXPECT_EQ(h.cyclesAt(1), 2u + 8u);
    EXPECT_EQ(h.cyclesAt(2), 5u);
}

TEST(LevelHistogram, Fractions)
{
    LevelHistogram h;
    h.set(1, 50);   // busy from 50
    h.set(2, 75);
    h.set(0, 100);
    h.finalize(100);
    EXPECT_DOUBLE_EQ(h.fractionAbove0(), 0.5);
    // Of the 50 busy cycles: 25 at level 1, 25 at level 2.
    EXPECT_DOUBLE_EQ(h.fractionOfBusyAt(1), 0.5);
    EXPECT_DOUBLE_EQ(h.fractionOfBusyAt(2), 0.5);
    EXPECT_DOUBLE_EQ(h.fractionOfBusyAt(3), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionOfBusyAtLeast(2), 0.5);
    EXPECT_DOUBLE_EQ(h.fractionOfBusyAtLeast(1), 1.0);
}

TEST(LevelHistogram, EmptyHistogramHasZeroFractions)
{
    LevelHistogram h;
    h.finalize(0);
    EXPECT_DOUBLE_EQ(h.fractionAbove0(), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionOfBusyAt(1), 0.0);
}

TEST(LevelHistogram, DeepLevelsShareTopBucket)
{
    LevelHistogram h;
    h.set(LevelHistogram::maxLevel + 10, 0);
    h.set(0, 5);
    h.finalize(5);
    EXPECT_EQ(h.cyclesAt(LevelHistogram::maxLevel), 5u);
    EXPECT_EQ(h.maxSeen(), LevelHistogram::maxLevel + 10);
}

TEST(LevelHistogram, SameTimeEventsAreFine)
{
    LevelHistogram h;
    h.increment(10);
    h.increment(10);
    h.increment(10);
    h.decrement(10);
    h.finalize(20);
    EXPECT_EQ(h.cyclesAt(2), 10u);
}

TEST(LevelHistogramDeathTest, TimeMovingBackwardsPanics)
{
    LevelHistogram h;
    h.set(1, 10);
    EXPECT_DEATH(h.set(2, 9), "monotone");
}

TEST(LevelHistogramDeathTest, DecrementBelowZeroPanics)
{
    LevelHistogram h;
    EXPECT_DEATH(h.decrement(5), "below zero");
}

TEST(FlightTracker, TracksTwoSeries)
{
    FlightTracker t;
    t.misses.increment(0);
    t.fetches.increment(0);
    t.misses.increment(5);
    t.misses.decrement(10);
    t.misses.decrement(10);
    t.fetches.decrement(10);
    t.finalize(20);
    EXPECT_EQ(t.misses.cyclesAbove0(), 10u);
    EXPECT_EQ(t.fetches.cyclesAbove0(), 10u);
    EXPECT_EQ(t.misses.maxSeen(), 2u);
    EXPECT_EQ(t.fetches.maxSeen(), 1u);
}
