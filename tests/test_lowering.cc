/**
 * @file
 * Tests for the lowering stage: overall program shape, loop control,
 * register conventions, and the spill-area bound.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "compiler/kernel.hh"
#include "compiler/lower.hh"
#include "compiler/regalloc.hh"

using namespace nbl;
using namespace nbl::compiler;
using isa::Op;

namespace
{

KernelProgram
simpleProgram(uint64_t outer_reps = 1)
{
    KernelProgram kp;
    kp.name = "simple";
    KernelBuilder b("k", kp.nextVRegId);
    b.countedLoop(0, 4);
    VReg base = b.constI(0x10000);
    VReg v = b.load(base, 0, 0);
    b.store(base, 8, v, 0);
    kp.kernels.push_back(b.take());
    kp.outerReps = outer_reps;
    return kp;
}

} // namespace

TEST(Lowering, ProgramShape)
{
    KernelProgram kp = simpleProgram(3);
    isa::Program prog = compile(kp, CompileParams{});
    const auto &code = prog.code();

    // Prologue: spill base, outer counter, outer limit.
    EXPECT_EQ(code[0].op, Op::LImm);
    EXPECT_EQ(code[0].dst, reg_conv::spillBase);
    EXPECT_EQ(uint64_t(code[0].imm), spillAreaBase);
    EXPECT_EQ(code[1].dst, reg_conv::outerCounter);
    EXPECT_EQ(code[2].dst, reg_conv::outerLimit);
    EXPECT_EQ(code[2].imm, 3);

    // Ends with outer bump, outer branch, halt.
    ASSERT_GE(code.size(), 3u);
    EXPECT_EQ(code[code.size() - 1].op, Op::Halt);
    EXPECT_EQ(code[code.size() - 2].op, Op::BLt);
    EXPECT_EQ(code[code.size() - 2].src1, reg_conv::outerCounter);
    EXPECT_EQ(code[code.size() - 3].op, Op::AddI);
    EXPECT_EQ(code[code.size() - 3].dst, reg_conv::outerCounter);
}

TEST(Lowering, CountedLoopBackEdge)
{
    isa::Program prog = compile(simpleProgram(), CompileParams{});
    // Exactly one inner BLt whose target is the loop head (after the
    // kernel preamble), plus the outer BLt.
    unsigned inner_branches = 0;
    for (size_t pc = 0; pc < prog.size(); ++pc) {
        const isa::Instr &in = prog.at(pc);
        if (in.op == Op::BLt && in.src1 != reg_conv::outerCounter) {
            ++inner_branches;
            EXPECT_LT(size_t(in.imm), pc); // backward branch
        }
    }
    EXPECT_EQ(inner_branches, 1u);
}

TEST(Lowering, WhileLoopBranchesOnCondRegister)
{
    KernelProgram kp;
    kp.name = "while";
    KernelBuilder b("k", kp.nextVRegId);
    VReg ptr = b.constI(0x10000);
    b.whileNonZero(ptr, 2);
    VReg next = b.load(ptr, 0, 0);
    b.assign(ptr, next);
    kp.kernels.push_back(b.take());

    isa::Program prog = compile(kp, CompileParams{});
    bool found = false;
    for (size_t pc = 0; pc < prog.size(); ++pc) {
        const isa::Instr &in = prog.at(pc);
        if (in.op == Op::BNe) {
            EXPECT_EQ(in.src2, isa::regZero);
            EXPECT_LT(size_t(in.imm), pc);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Lowering, KernelsConcatenateInOrder)
{
    KernelProgram kp;
    kp.name = "multi";
    for (int k = 0; k < 3; ++k) {
        KernelBuilder b("k" + std::to_string(k), kp.nextVRegId);
        b.countedLoop(0, 2);
        VReg base = b.constI(0x10000 + k * 0x1000);
        b.load(base, 0, k);
        kp.kernels.push_back(b.take());
    }
    isa::Program prog = compile(kp, CompileParams{});
    // The three base-address constants appear in kernel order.
    std::vector<int64_t> bases;
    for (const isa::Instr &in : prog.code()) {
        if (in.op == Op::LImm && in.imm >= 0x10000 &&
            in.imm < 0x14000) {
            bases.push_back(in.imm);
        }
    }
    ASSERT_EQ(bases.size(), 3u);
    EXPECT_LT(bases[0], bases[1]);
    EXPECT_LT(bases[1], bases[2]);
}

TEST(Lowering, ValidatesOutput)
{
    // compile() runs Program::validate(); a well-formed kernel
    // program must produce a well-formed binary at every latency.
    for (int lat : {1, 6, 20}) {
        CompileParams cp;
        cp.loadLatency = lat;
        isa::Program prog = compile(simpleProgram(5), cp);
        EXPECT_TRUE(prog.validate(false)) << lat;
    }
}

TEST(LoweringDeathTest, SpillAreaOverflowIsFatal)
{
    // A kernel needing more spill slots than the spill area holds
    // must die with a diagnostic, not write past the area.
    KernelProgram kp;
    kp.name = "huge";
    KernelBuilder b("k", kp.nextVRegId);
    b.countedLoop(0, 1);
    VReg base = b.constI(0x10000);
    std::vector<VReg> vals;
    // ~600 simultaneously-live temporaries >> 512 spill slots.
    for (int i = 0; i < 600; ++i)
        vals.push_back(b.load(base, i * 8, 0));
    VReg acc = vals[0];
    for (size_t i = 1; i < vals.size(); ++i)
        acc = b.add(acc, vals[i]);
    b.store(base, 0, acc, 0);
    kp.kernels.push_back(b.take());

    CompileParams cp;
    cp.schedule = false; // keep all 600 live at once
    EXPECT_EXIT(compile(kp, cp), ::testing::ExitedWithCode(1), "");
}

TEST(Lowering, SpillBaseIsNeverClobbered)
{
    // Even under heavy pressure nothing may write r29-r31 or r0.
    KernelProgram kp;
    kp.name = "pressure";
    KernelBuilder b("k", kp.nextVRegId);
    b.countedLoop(0, 2);
    VReg base = b.constI(0x10000);
    std::vector<VReg> vals;
    for (int i = 0; i < 40; ++i)
        vals.push_back(b.load(base, i * 8, 0));
    VReg acc = vals[0];
    for (size_t i = 1; i < vals.size(); ++i)
        acc = b.add(acc, vals[i]);
    b.store(base, 0, acc, 0);
    kp.kernels.push_back(b.take());

    CompileParams cp;
    cp.schedule = false;
    isa::Program prog = compile(kp, cp);
    for (size_t pc = 3; pc + 3 < prog.size(); ++pc) {
        const isa::Instr &in = prog.at(pc);
        if (in.hasDst() && in.dst.cls == isa::RegClass::Int) {
            EXPECT_NE(in.dst.idx, 31u) << pc;
            EXPECT_NE(in.dst.idx, 0u) << pc;
        }
    }
}
