/**
 * @file
 * Tests for batched lockstep replay (exec/lane_replay.hh).
 *
 * The heart is a property test: for every workload, replayLanes()
 * over a config grid spanning all the MSHR organizations the paper
 * sweeps must produce, lane for lane, counters bit-identical
 * (stats::Snapshot::countersEqual) to per-config replayExact() --
 * which test_event_trace.cc in turn pins to execution-driven
 * exec::run. Around it: odd batch shapes (1, N, N+1), lanes with
 * mixed memory latencies, instruction-cap truncation, the
 * NBL_LANE_REPLAY escape hatch through the Lab, fallback of
 * non-lane-replayable points, and a TSan-able concurrent-batches
 * sweep.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/event_trace.hh"
#include "exec/lane_replay.hh"
#include "exec/machine.hh"
#include "harness/parallel.hh"
#include "stats/run_stats.hh"
#include "workloads/workload.hh"

using namespace nbl;
using exec::EventTrace;
using exec::MachineConfig;
using exec::RunOutput;
using harness::ExperimentConfig;
using harness::Lab;

namespace
{

/** Small scale, as in test_event_trace.cc. */
constexpr double kScale = 0.02;

/**
 * The 18 MSHR configurations of the property sweep (the same grid as
 * test_event_trace.cc): all ten named configurations plus eight
 * Figure-14 field organizations.
 */
std::vector<core::MshrPolicy>
propertyPolicies()
{
    std::vector<core::MshrPolicy> out;
    for (core::ConfigName name :
         {core::ConfigName::Mc0Wma, core::ConfigName::Mc0,
          core::ConfigName::Mc1, core::ConfigName::Mc2,
          core::ConfigName::Fc1, core::ConfigName::Fc2,
          core::ConfigName::Fs1, core::ConfigName::Fs2,
          core::ConfigName::InCache, core::ConfigName::NoRestrict})
        out.push_back(core::makePolicy(name));
    constexpr int kFields[][2] = {{1, 1}, {1, 2}, {1, 4}, {2, 1},
                                  {4, 1}, {8, 1}, {2, 2}, {4, 4}};
    for (auto [sb, mps] : kFields)
        out.push_back(core::makeFieldPolicy(sb, mps));
    return out;
}

/** Lane output must carry exact counters and the lane provenance. */
void
expectLaneMatchesExact(const RunOutput &lane, const RunOutput &exact)
{
    stats::Snapshot ls = stats::snapshotOfRun(lane);
    stats::Snapshot es = stats::snapshotOfRun(exact);
    EXPECT_TRUE(ls.countersEqual(es));
    EXPECT_EQ(lane.hitInstructionCap, exact.hitInstructionCap);
    EXPECT_STREQ(exec::provenanceName(lane.provenance), "lane");
}

class LaneReplay : public ::testing::TestWithParam<std::string>
{
};

} // namespace

/**
 * The core lockstep property: one batch holding every configuration
 * of the grid replays to the same counters as per-config exact
 * replay, lane for lane.
 */
TEST_P(LaneReplay, MatchesReplayExactEverywhere)
{
    const std::string name = GetParam();
    Lab lab(kScale);
    const std::vector<core::MshrPolicy> policies = propertyPolicies();

    for (int latency : {1, 20}) {
        const isa::Program &prog = lab.program(name, latency);
        auto trace = lab.eventTrace(name, latency);
        ASSERT_GT(trace->instructions, 0u);

        std::vector<MachineConfig> mcs;
        for (const core::MshrPolicy &policy : policies) {
            MachineConfig mc;
            mc.policy = policy;
            ASSERT_TRUE(exec::laneReplayable(mc));
            mcs.push_back(mc);
        }
        std::vector<RunOutput> lanes =
            exec::replayLanes(prog, *trace, mcs);
        ASSERT_EQ(lanes.size(), mcs.size());
        for (size_t i = 0; i < mcs.size(); ++i) {
            RunOutput exact = exec::replayExact(prog, *trace, mcs[i]);
            expectLaneMatchesExact(lanes[i], exact);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, LaneReplay,
    ::testing::ValuesIn(workloads::workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

/** Odd batch shapes: single lane, the full grid, and grid + 1 (a
 *  duplicated config -- both lanes must come back identical). */
TEST(LaneReplayShapes, OddBatchSizes)
{
    Lab lab(kScale);
    const isa::Program &prog = lab.program("doduc", 10);
    auto trace = lab.eventTrace("doduc", 10);
    const std::vector<core::MshrPolicy> policies = propertyPolicies();

    std::vector<MachineConfig> grid;
    for (const core::MshrPolicy &policy : policies) {
        MachineConfig mc;
        mc.policy = policy;
        grid.push_back(mc);
    }

    const std::vector<MachineConfig> single{grid.front()};
    std::vector<MachineConfig> plus_one = grid;
    plus_one.push_back(grid.front());

    const std::vector<MachineConfig> *batches[] = {&single, &grid,
                                                   &plus_one};
    for (const std::vector<MachineConfig> *batch : batches) {
        std::vector<RunOutput> lanes =
            exec::replayLanes(prog, *trace, *batch);
        ASSERT_EQ(lanes.size(), batch->size());
        for (size_t i = 0; i < batch->size(); ++i) {
            RunOutput exact =
                exec::replayExact(prog, *trace, (*batch)[i]);
            expectLaneMatchesExact(lanes[i], exact);
        }
    }
}

/** Lanes whose memory systems disagree (the Figure 5/13 sweep axis):
 *  per-lane cache state must not bleed across lanes. */
TEST(LaneReplayShapes, MixedMemoryLatencyLanes)
{
    Lab lab(kScale);
    const isa::Program &prog = lab.program("compress", 10);
    auto trace = lab.eventTrace("compress", 10);

    std::vector<MachineConfig> mcs;
    for (unsigned penalty : {4u, 16u, 128u}) {
        for (core::ConfigName c :
             {core::ConfigName::Mc0, core::ConfigName::Mc1,
              core::ConfigName::NoRestrict}) {
            MachineConfig mc;
            mc.policy = core::makePolicy(c);
            mc.memory = mem::MainMemory(penalty);
            mcs.push_back(mc);
        }
    }
    std::vector<RunOutput> lanes = exec::replayLanes(prog, *trace, mcs);
    for (size_t i = 0; i < mcs.size(); ++i) {
        RunOutput exact = exec::replayExact(prog, *trace, mcs[i]);
        expectLaneMatchesExact(lanes[i], exact);
    }
}

/** The shared instruction budget truncates every lane exactly as the
 *  per-config engines truncate. */
TEST(LaneReplayShapes, CapTruncatesExactlyAsExact)
{
    Lab lab(kScale);
    const isa::Program &prog = lab.program("compress", 10);
    auto trace = lab.eventTrace("compress", 10);
    ASSERT_GT(trace->instructions, 1000u);

    std::vector<MachineConfig> mcs;
    for (core::ConfigName c :
         {core::ConfigName::Mc0, core::ConfigName::Fc2,
          core::ConfigName::NoRestrict}) {
        MachineConfig mc;
        mc.policy = core::makePolicy(c);
        mc.maxInstructions = trace->instructions / 2;
        mcs.push_back(mc);
    }
    std::vector<RunOutput> lanes = exec::replayLanes(prog, *trace, mcs);
    for (size_t i = 0; i < mcs.size(); ++i) {
        EXPECT_TRUE(lanes[i].hitInstructionCap);
        RunOutput exact = exec::replayExact(prog, *trace, mcs[i]);
        expectLaneMatchesExact(lanes[i], exact);
    }
}

/** Lanes disagreeing on the effective budget are a harness bug. */
TEST(LaneReplayShapes, MismatchedBudgetsAreFatal)
{
    Lab lab(kScale);
    const isa::Program &prog = lab.program("compress", 10);
    auto trace = lab.eventTrace("compress", 10);

    MachineConfig a, b;
    a.policy = b.policy = core::makePolicy(core::ConfigName::Mc1);
    a.maxInstructions = trace->instructions / 2;
    EXPECT_DEATH(exec::replayLanes(prog, *trace, {a, b}),
                 "effective");
}

/** The Lab batches through runLanes(); the NBL_LANE_REPLAY escape
 *  hatch must produce the same counters via per-point exact replay
 *  (provenance is the only difference). */
TEST(LaneReplayLab, EscapeHatchBitIdentical)
{
    std::vector<ExperimentConfig> cfgs;
    for (core::ConfigName c :
         {core::ConfigName::Mc0, core::ConfigName::Mc2,
          core::ConfigName::Fc1, core::ConfigName::NoRestrict}) {
        for (int lat : {1, 10}) {
            ExperimentConfig e;
            e.config = c;
            e.loadLatency = lat;
            cfgs.push_back(e);
        }
    }

    Lab lane_lab(kScale);
    lane_lab.setLaneReplayEnabled(true);
    ASSERT_TRUE(lane_lab.laneReplayActive());
    Lab exact_lab(kScale);
    exact_lab.setLaneReplayEnabled(false);
    ASSERT_FALSE(exact_lab.laneReplayActive());

    auto lanes = lane_lab.runLanes("xlisp", cfgs);
    auto exact = exact_lab.runLanes("xlisp", cfgs);
    ASSERT_EQ(lanes.size(), cfgs.size());
    for (size_t i = 0; i < cfgs.size(); ++i) {
        stats::Snapshot ls = stats::snapshotOfRun(lanes[i].run);
        stats::Snapshot es = stats::snapshotOfRun(exact[i].run);
        EXPECT_TRUE(ls.countersEqual(es));
        EXPECT_STREQ(exec::provenanceName(lanes[i].run.provenance),
                     "lane");
        EXPECT_STREQ(exec::provenanceName(exact[i].run.provenance),
                     "replay");
    }
    // Batched points are memoized exactly as run() memoizes.
    EXPECT_EQ(lane_lab.cachedResults(), cfgs.size());
    uint64_t hits = lane_lab.resultCacheHits();
    lane_lab.runLanes("xlisp", cfgs);
    EXPECT_EQ(lane_lab.resultCacheHits(), hits + cfgs.size());
}

/** Multi-issue and perfect-cache points ride along via per-point
 *  fallback inside one runLanes() call. */
TEST(LaneReplayLab, NonReplayablePointsFallBack)
{
    std::vector<ExperimentConfig> cfgs;
    ExperimentConfig lane_cfg;
    lane_cfg.config = core::ConfigName::Mc1;
    cfgs.push_back(lane_cfg);
    ExperimentConfig wide = lane_cfg;
    wide.issueWidth = 2;
    cfgs.push_back(wide);
    ExperimentConfig perfect = lane_cfg;
    perfect.perfectCache = true;
    cfgs.push_back(perfect);

    Lab lab(kScale);
    // The lane engine is the subject here: pin it on so the test
    // still covers it when the environment (the CI NBL_LANE_REPLAY=0
    // matrix leg) defaults it off.
    lab.setLaneReplayEnabled(true);
    auto got = lab.runLanes("ear", cfgs);
    Lab ref(kScale);
    for (size_t i = 0; i < cfgs.size(); ++i) {
        stats::Snapshot gs = stats::snapshotOfRun(got[i].run);
        stats::Snapshot rs =
            stats::snapshotOfRun(ref.run("ear", cfgs[i]).run);
        EXPECT_TRUE(gs.countersEqual(rs));
    }
    EXPECT_STREQ(exec::provenanceName(got[0].run.provenance), "lane");
    EXPECT_STREQ(exec::provenanceName(got[1].run.provenance),
                 "replay");
}

/** Concurrent lane batches over one shared Lab: run under TSan by
 *  tools/check.sh, and bit-identity checked against the
 *  execution-driven engine. */
TEST(LaneReplayConcurrency, ConcurrentBatchesBitIdentical)
{
    setenv("NBL_JOBS", "4", 1);
    std::vector<harness::SweepPoint> points;
    for (const char *w : {"eqntott", "swm256"}) {
        for (int lat : {1, 10}) {
            for (core::ConfigName c :
                 {core::ConfigName::Mc0, core::ConfigName::Mc1,
                  core::ConfigName::Fc2,
                  core::ConfigName::NoRestrict}) {
                ExperimentConfig e;
                e.config = c;
                e.loadLatency = lat;
                points.push_back({w, e});
            }
        }
    }

    Lab lab(kScale);
    // Pin the subject engine on regardless of the NBL_LANE_REPLAY
    // environment default (see NonReplayablePointsFallBack).
    lab.setLaneReplayEnabled(true);
    ASSERT_TRUE(lab.laneReplayActive());
    auto results = harness::runPointsParallel(lab, points, 4);
    ASSERT_EQ(results.size(), points.size());

    Lab ref(kScale);
    ref.setReplayEnabled(false); // Execution-driven reference.
    for (size_t i = 0; i < points.size(); ++i) {
        stats::Snapshot gs = stats::snapshotOfRun(results[i].run);
        stats::Snapshot rs = stats::snapshotOfRun(
            ref.run(points[i].workload, points[i].cfg).run);
        EXPECT_TRUE(gs.countersEqual(rs));
    }
    unsetenv("NBL_JOBS");
}
