/**
 * @file
 * Tests for the output back ends: the ASCII chart renderer and the
 * CSV exporter that feed the figure binaries and nbl-sim.
 */

#include <gtest/gtest.h>

#include "harness/sweep.hh"
#include "util/chart.hh"

using namespace nbl;

TEST(AsciiChart, EmptyChartDoesNotCrash)
{
    AsciiChart c;
    EXPECT_NE(c.str().find("empty"), std::string::npos);
}

TEST(AsciiChart, RendersAxesAndLegend)
{
    AsciiChart c(40, 10, "x", "y");
    c.addSeries("alpha", {{1, 0.5}, {10, 1.5}});
    c.addSeries("beta", {{1, 1.0}, {10, 0.2}});
    std::string s = c.str();
    EXPECT_NE(s.find("a=alpha"), std::string::npos);
    EXPECT_NE(s.find("b=beta"), std::string::npos);
    EXPECT_NE(s.find('x'), std::string::npos);
    EXPECT_NE(s.find('y'), std::string::npos);
    EXPECT_NE(s.find('|'), std::string::npos);  // y axis
    EXPECT_NE(s.find("+--"), std::string::npos); // x axis
    // Both markers appear in the plot body.
    EXPECT_NE(s.find('a'), std::string::npos);
    EXPECT_NE(s.find('b'), std::string::npos);
}

TEST(AsciiChart, HigherValuesPlotHigher)
{
    AsciiChart c(40, 10);
    c.addSeries("hi", {{0, 10.0}, {1, 10.0}});
    c.addSeries("lo", {{0, 1.0}, {1, 1.0}});
    std::string s = c.str();
    size_t hi_pos = s.find('a');
    size_t lo_pos = s.find('b');
    ASSERT_NE(hi_pos, std::string::npos);
    ASSERT_NE(lo_pos, std::string::npos);
    EXPECT_LT(hi_pos, lo_pos); // earlier in the string = higher row
}

TEST(AsciiChart, OverlappingSeriesMarkedWithStar)
{
    AsciiChart c(40, 10);
    c.addSeries("one", {{0, 1.0}, {1, 1.0}});
    c.addSeries("two", {{0, 1.0}, {1, 1.0}});
    EXPECT_NE(c.str().find('*'), std::string::npos);
}

TEST(CurvesCsv, HeaderAndRows)
{
    harness::Lab lab(0.05);
    harness::ExperimentConfig base;
    auto curves = harness::sweepCurves(lab, "eqntott", base,
                                       {core::ConfigName::Mc0,
                                        core::ConfigName::NoRestrict});
    std::string csv = harness::curvesCsv(curves);
    // Header with sanitized labels, then one row per latency.
    EXPECT_EQ(csv.find("load_latency,mc_0,no_restrict"), 0u);
    size_t rows = std::count(csv.begin(), csv.end(), '\n');
    EXPECT_EQ(rows, 1u + 6u); // header + 6 latencies
    EXPECT_NE(csv.find("\n1,"), std::string::npos);
    EXPECT_NE(csv.find("\n20,"), std::string::npos);
    // No spaces anywhere (machine-readable).
    EXPECT_EQ(csv.find(' '), std::string::npos);
}

TEST(CurvesCsv, EmptyCurves)
{
    EXPECT_EQ(harness::curvesCsv({}), "load_latency\n");
}
