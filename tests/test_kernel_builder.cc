/**
 * @file
 * Unit tests for the kernel builder and the virtual IR.
 */

#include <gtest/gtest.h>

#include "compiler/kernel.hh"

using namespace nbl::compiler;

TEST(KernelBuilder, CountedLoopShape)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 10, 2);
    VReg base = b.constI(0x1000);
    VReg v = b.load(base, 0, 0);
    b.store(base, 8, v, 0);
    Kernel k = b.take();

    EXPECT_EQ(k.kind, LoopKind::Counted);
    EXPECT_EQ(k.trips, 10);
    EXPECT_EQ(k.step, 2);
    EXPECT_EQ(k.body.size(), 2u);
    // Preamble: counter, limit, base constants.
    EXPECT_EQ(k.preamble.size(), 3u);
    EXPECT_TRUE(k.pinned.count(k.counter.id));
    EXPECT_TRUE(k.pinned.count(k.limit.id));
    EXPECT_TRUE(k.pinned.count(base.id));
    EXPECT_FALSE(k.pinned.count(v.id)); // body temp
}

TEST(KernelBuilder, FreshVRegsAreUnique)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 1);
    VReg a = b.limm(1);
    VReg c = b.limm(2);
    VReg d = b.add(a, c);
    EXPECT_NE(a.id, c.id);
    EXPECT_NE(c.id, d.id);
    EXPECT_EQ(id, 5u); // counter, limit, a, c, d
}

TEST(KernelBuilder, SharedIdCounterAcrossKernels)
{
    uint32_t id = 0;
    KernelBuilder b1("k1", id);
    b1.countedLoop(0, 1);
    b1.addi(b1.counter(), 1);
    Kernel k1 = b1.take();
    KernelBuilder b2("k2", id);
    b2.countedLoop(0, 1);
    VReg t = b2.addi(b2.counter(), 1);
    Kernel k2 = b2.take();
    EXPECT_GT(t.id, k1.counter.id); // no reuse across kernels
}

TEST(KernelBuilder, FpOpsProduceFpRegs)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 1);
    VReg base = b.constI(0x1000);
    VReg f = b.fload(base, 0, 0);
    VReg g = b.fmul(f, b.constF(2.0));
    EXPECT_EQ(f.cls, nbl::isa::RegClass::Fp);
    EXPECT_EQ(g.cls, nbl::isa::RegClass::Fp);
}

TEST(KernelBuilder, WhileLoopRequiresPinnedCond)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    VReg ptr = b.constI(0x1000); // pinned (preamble)
    b.whileNonZero(ptr, 100);
    VReg next = b.load(ptr, 0, 0);
    b.assign(ptr, next);
    Kernel k = b.take();
    EXPECT_EQ(k.kind, LoopKind::WhileNonZero);
    EXPECT_EQ(k.cond, ptr);
    EXPECT_EQ(k.expectedTrips, 100u);
}

TEST(KernelBuilder, BumpEmitsRedefinition)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 4);
    VReg p = b.constI(0x1000);
    b.load(p, 0, 0);
    b.bump(p, 32);
    Kernel k = b.take();
    const VOp &bump = k.body.back();
    EXPECT_EQ(bump.op, nbl::isa::Op::AddI);
    EXPECT_EQ(bump.dst, p);
    EXPECT_EQ(bump.src1, p);
    EXPECT_EQ(bump.imm, 32);
}

TEST(KernelBuilder, MemOpsCarrySpaceAndSize)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 1);
    VReg base = b.constI(0x1000);
    b.load(base, 24, 7, 4);
    Kernel k = b.take();
    EXPECT_EQ(k.body[0].space, 7);
    EXPECT_EQ(k.body[0].size, 4u);
    EXPECT_EQ(k.body[0].imm, 24);
}

TEST(KernelBuilderDeathTest, TypeMismatchPanics)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 1);
    VReg i = b.limm(1);
    VReg base = b.constI(0x1000);
    VReg f = b.fload(base, 0, 0);
    EXPECT_DEATH(b.add(i, f), "class");
    EXPECT_DEATH(b.fmul(f, i), "class");
}

TEST(KernelBuilderDeathTest, BumpOfTempPanics)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 1);
    VReg t = b.limm(5);
    EXPECT_DEATH(b.bump(t, 8), "pinned");
}

TEST(KernelBuilderDeathTest, TakeWithoutLoopPanics)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.constI(1);
    EXPECT_DEATH(b.take(), "loop");
}

TEST(KernelBuilderDeathTest, DoubleLoopPanics)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 1);
    EXPECT_DEATH(b.countedLoop(0, 2), "already");
}

TEST(Vir, BodyCostPerIteration)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 10);
    VReg base = b.constI(0x1000);
    b.load(base, 0, 0);
    b.load(base, 8, 0);
    Kernel k = b.take();
    // 2 body ops + counter update + branch.
    EXPECT_EQ(bodyCostPerIteration(k), 4u);
}

TEST(Vir, EstimateDynamicSize)
{
    uint32_t id = 0;
    KernelProgram kp;
    KernelBuilder b("k", id);
    b.countedLoop(0, 10);
    VReg base = b.constI(0x1000);
    b.load(base, 0, 0);
    kp.kernels.push_back(b.take());
    kp.outerReps = 3;
    // (preamble 3 + 10 * (1 + 2)) * 3 + epilogue 4.
    EXPECT_EQ(estimateDynamicSize(kp), (3 + 30) * 3 + 4u);
}
