/**
 * @file
 * Unit tests for the pipelined main-memory timing model (paper
 * sections 3.1 and 5.2).
 */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"

using namespace nbl::mem;

TEST(MainMemory, PaperLineSizePenalties)
{
    MainMemory m;
    // Section 5.2: 14 cycles for the first 16 bytes, 2 per additional
    // 16 bytes.
    EXPECT_EQ(m.penalty(16), 14u);
    EXPECT_EQ(m.penalty(32), 16u);
    EXPECT_EQ(m.penalty(64), 20u);
    EXPECT_EQ(m.penalty(128), 28u);
}

TEST(MainMemory, TinyLineRoundsUpToOneChunk)
{
    MainMemory m;
    EXPECT_EQ(m.penalty(8), 14u);
}

TEST(MainMemory, FixedPenaltyOverride)
{
    for (unsigned p : {4u, 8u, 16u, 32u, 64u, 128u}) {
        MainMemory m(p);
        EXPECT_EQ(m.penalty(32), p);
        EXPECT_EQ(m.penalty(16), p);
    }
}

TEST(MainMemory, FullyPipelinedCompletion)
{
    MainMemory m;
    // Completion depends only on issue time: back-to-back fetches
    // complete back-to-back (the paper's fully pipelined assumption).
    EXPECT_EQ(m.completeAt(100, 32), 116u);
    EXPECT_EQ(m.completeAt(101, 32), 117u);
    EXPECT_EQ(m.completeAt(102, 32), 118u);
}

TEST(MainMemory, FetchCounter)
{
    MainMemory m;
    EXPECT_EQ(m.fetches(), 0u);
    m.countFetch();
    m.countFetch();
    EXPECT_EQ(m.fetches(), 2u);
}
