/**
 * @file
 * Tests for the parallel sweep engine (harness/parallel.hh): the
 * thread pool itself, bit-identity of parallel sweeps against the
 * serial reference, and the Lab result cache the engine prewarms.
 */

#include <atomic>
#include <cstdlib>

#include <gtest/gtest.h>

#include "harness/parallel.hh"
#include "harness/sweep.hh"

using namespace nbl;
using harness::Curve;
using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::Lab;

namespace
{

/** Scale small enough to keep the multi-workload sweeps quick. */
constexpr double kScale = 0.05;

void
expectSameStats(const ExperimentResult &a, const ExperimentResult &b)
{
    const auto &ca = a.run.cpu, &cb = b.run.cpu;
    EXPECT_EQ(ca.instructions, cb.instructions);
    EXPECT_EQ(ca.loads, cb.loads);
    EXPECT_EQ(ca.stores, cb.stores);
    EXPECT_EQ(ca.branches, cb.branches);
    EXPECT_EQ(ca.cycles, cb.cycles);
    EXPECT_EQ(ca.depStallCycles, cb.depStallCycles);
    EXPECT_EQ(ca.structStallCycles, cb.structStallCycles);
    EXPECT_EQ(ca.blockStallCycles, cb.blockStallCycles);
    EXPECT_EQ(ca.pairLostSlots, cb.pairLostSlots);

    const auto &ka = a.run.cache, &kb = b.run.cache;
    EXPECT_EQ(ka.loads, kb.loads);
    EXPECT_EQ(ka.stores, kb.stores);
    EXPECT_EQ(ka.loadHits, kb.loadHits);
    EXPECT_EQ(ka.storeHits, kb.storeHits);
    EXPECT_EQ(ka.primaryMisses, kb.primaryMisses);
    EXPECT_EQ(ka.secondaryMisses, kb.secondaryMisses);
    EXPECT_EQ(ka.structStallMisses, kb.structStallMisses);
    EXPECT_EQ(ka.structStallCycles, kb.structStallCycles);
    EXPECT_EQ(ka.storeMisses, kb.storeMisses);
    EXPECT_EQ(ka.storePrimaryMisses, kb.storePrimaryMisses);
    EXPECT_EQ(ka.storeSecondaryMisses, kb.storeSecondaryMisses);
    EXPECT_EQ(ka.storeStructStalls, kb.storeStructStalls);
    EXPECT_EQ(ka.fetches, kb.fetches);
    EXPECT_EQ(ka.evictions, kb.evictions);

    EXPECT_EQ(a.run.maxInflightMisses, b.run.maxInflightMisses);
    EXPECT_EQ(a.run.maxInflightFetches, b.run.maxInflightFetches);
    EXPECT_EQ(a.run.missPenalty, b.run.missPenalty);
    EXPECT_EQ(a.run.hitInstructionCap, b.run.hitInstructionCap);
    EXPECT_EQ(a.compileInfo.spillSlots, b.compileInfo.spillSlots);
}

} // namespace

TEST(ThreadPool, RunsEveryJobOnce)
{
    harness::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; ++i)
        pool.submit([&sum, i] { sum += i; });
    pool.wait();
    EXPECT_EQ(sum.load(), 5050);

    // The pool is reusable after wait().
    pool.submit([&sum] { sum += 1; });
    pool.wait();
    EXPECT_EQ(sum.load(), 5051);
}

TEST(ThreadPool, ParallelForCoversRange)
{
    std::vector<std::atomic<int>> hits(257);
    harness::parallelFor(hits.size(),
                         [&](size_t i) { hits[i].fetch_add(1); }, 3);
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, SweepBitIdenticalToSerial)
{
    // NBL_JOBS=4 exercises real fan-out even on a 1-core host.
    setenv("NBL_JOBS", "4", 1);

    ExperimentConfig base;
    const std::vector<core::ConfigName> cfgs = {
        core::ConfigName::Mc0, core::ConfigName::Mc1,
        core::ConfigName::Fc2, core::ConfigName::NoRestrict};

    for (const char *wl : {"doduc", "compress"}) {
        Lab serial_lab(kScale);
        Lab parallel_lab(kScale);
        auto serial = harness::sweepCurvesSerial(serial_lab, wl, base,
                                                 cfgs);
        auto par = harness::runSweepParallel(parallel_lab, wl, base,
                                             cfgs);

        ASSERT_EQ(serial.size(), par.size());
        for (size_t c = 0; c < serial.size(); ++c) {
            EXPECT_EQ(serial[c].label, par[c].label);
            ASSERT_EQ(serial[c].latencies, par[c].latencies);
            ASSERT_EQ(serial[c].results.size(), par[c].results.size());
            for (size_t i = 0; i < serial[c].results.size(); ++i)
                expectSameStats(serial[c].results[i], par[c].results[i]);
        }
    }
    unsetenv("NBL_JOBS");
}

TEST(Parallel, SweepCurvesDelegatesIdentically)
{
    // The public sweepCurves() is the parallel engine; its output must
    // match the serial reference exactly.
    ExperimentConfig base;
    const std::vector<core::ConfigName> cfgs = {
        core::ConfigName::Mc1, core::ConfigName::NoRestrict};
    Lab a(kScale), b(kScale);
    auto serial = harness::sweepCurvesSerial(a, "eqntott", base, cfgs);
    auto pub = harness::sweepCurves(b, "eqntott", base, cfgs);
    ASSERT_EQ(serial.size(), pub.size());
    for (size_t c = 0; c < serial.size(); ++c) {
        for (size_t i = 0; i < serial[c].results.size(); ++i)
            expectSameStats(serial[c].results[i], pub[c].results[i]);
    }
}

TEST(Parallel, ResultCacheServesRepeatsIdentically)
{
    Lab lab(kScale);
    ExperimentConfig cfg;
    cfg.config = core::ConfigName::Mc2;
    cfg.loadLatency = 6;

    auto first = lab.run("xlisp", cfg);
    size_t cached = lab.cachedResults();
    uint64_t hits = lab.resultCacheHits();
    EXPECT_GE(cached, 1u);

    auto second = lab.run("xlisp", cfg);
    EXPECT_EQ(lab.cachedResults(), cached);     // No new entry.
    EXPECT_EQ(lab.resultCacheHits(), hits + 1); // Served from cache.
    expectSameStats(first, second);

    lab.clearResultCache();
    EXPECT_EQ(lab.cachedResults(), 0u);
    auto third = lab.run("xlisp", cfg); // Re-simulated, still equal.
    expectSameStats(first, third);
}

TEST(Parallel, RunPointsParallelPrewarmsCache)
{
    Lab lab(kScale);
    std::vector<harness::SweepPoint> points;
    for (int lat : {1, 10}) {
        for (core::ConfigName c :
             {core::ConfigName::Mc1, core::ConfigName::NoRestrict}) {
            ExperimentConfig e;
            e.config = c;
            e.loadLatency = lat;
            points.push_back({"compress", e});
        }
    }

    auto results = harness::runPointsParallel(lab, points, 4);
    ASSERT_EQ(results.size(), points.size());
    EXPECT_EQ(lab.cachedResults(), points.size());

    // Re-running any point is now a cache hit with identical stats.
    uint64_t hits = lab.resultCacheHits();
    for (size_t i = 0; i < points.size(); ++i) {
        auto again = lab.run(points[i].workload, points[i].cfg);
        expectSameStats(results[i], again);
    }
    EXPECT_EQ(lab.resultCacheHits(), hits + points.size());
}

TEST(Parallel, ExperimentKeyDistinguishesConfigs)
{
    ExperimentConfig a, b;
    EXPECT_EQ(harness::experimentKey("doduc", a),
              harness::experimentKey("doduc", b));
    EXPECT_NE(harness::experimentKey("doduc", a),
              harness::experimentKey("tomcatv", a));

    b.loadLatency = 2;
    EXPECT_NE(harness::experimentKey("doduc", a),
              harness::experimentKey("doduc", b));

    // A custom policy equal to the named config still keys differently
    // from... nothing: resolved fields are serialized either way.
    ExperimentConfig c;
    c.customPolicy = core::makePolicy(core::ConfigName::NoRestrict);
    EXPECT_NE(harness::experimentKey("doduc", a),
              harness::experimentKey("doduc", c));
}

TEST(Parallel, RunPointsParallelDedupesIdenticalKeys)
{
    // Representative-index mapping: first occurrence wins.
    ExperimentConfig a, b;
    b.loadLatency = 2;
    std::vector<harness::SweepPoint> points = {
        {"compress", a}, {"compress", b}, {"compress", a},
        {"eqntott", a},  {"compress", b},
    };
    std::vector<size_t> rep = harness::dedupePointIndices(points);
    ASSERT_EQ(rep.size(), points.size());
    EXPECT_EQ(rep[0], 0u);
    EXPECT_EQ(rep[1], 1u);
    EXPECT_EQ(rep[2], 0u);
    EXPECT_EQ(rep[3], 3u);
    EXPECT_EQ(rep[4], 1u);

    // Duplicates never reach the Lab: only the three distinct keys
    // simulate, no run is ever served from the result cache (a
    // post-hoc cache hit would mean a duplicate burned a slot first),
    // and every copy of a point gets its representative's stats.
    Lab lab(kScale);
    auto results = harness::runPointsParallel(lab, points, 4);
    ASSERT_EQ(results.size(), points.size());
    EXPECT_EQ(lab.cachedResults(), 3u);
    EXPECT_EQ(lab.resultCacheHits(), 0u);
    expectSameStats(results[0], results[2]);
    expectSameStats(results[1], results[4]);
    EXPECT_NE(results[0].run.cpu.cycles, 0u);
}
