/**
 * @file
 * Unit tests for a single MSHR's destination-field organizations
 * (implicit / explicit / hybrid, paper sections 2.1-2.2).
 */

#include <gtest/gtest.h>

#include "core/mshr.hh"

using namespace nbl::core;

namespace
{

MshrPolicy
fieldPolicy(int sub_blocks, int misses_per_sub)
{
    MshrPolicy p;
    p.subBlocks = sub_blocks;
    p.missesPerSubBlock = misses_per_sub;
    return p;
}

} // namespace

TEST(Mshr, BasicProperties)
{
    Mshr m(0x1000, 3, 117, 32, fieldPolicy(1, -1));
    EXPECT_EQ(m.blockAddr(), 0x1000u);
    EXPECT_EQ(m.setIndex(), 3u);
    EXPECT_EQ(m.completeCycle(), 117u);
    EXPECT_EQ(m.numDests(), 0u);
}

TEST(Mshr, UnlimitedFieldsAcceptEverything)
{
    Mshr m(0x1000, 0, 17, 32, fieldPolicy(1, -1));
    for (unsigned i = 0; i < 100; ++i) {
        ASSERT_TRUE(m.canAccept(0, 8)); // even the exact same word
        m.addDest(i % 64, 0, 8);
    }
    EXPECT_EQ(m.numDests(), 100u);
}

TEST(Mshr, SingleFieldTracksOneMiss)
{
    // mc=1's MSHR: one destination field.
    Mshr m(0x1000, 0, 17, 32, fieldPolicy(1, 1));
    EXPECT_TRUE(m.canAccept(8, 8));
    m.addDest(5, 8, 8);
    EXPECT_FALSE(m.canAccept(16, 8)); // different word: still full
    EXPECT_FALSE(m.canAccept(8, 8));
}

TEST(Mshr, ImplicitOneMissPerWord)
{
    // Kroft-style: 4 sub-blocks of 8 bytes, one miss each.
    Mshr m(0x1000, 0, 17, 32, fieldPolicy(4, 1));
    EXPECT_TRUE(m.canAccept(0, 8));
    m.addDest(1, 0, 8);
    // A second miss to the same word stalls (the paper's key
    // implicit-MSHR limitation)...
    EXPECT_FALSE(m.canAccept(0, 8));
    EXPECT_FALSE(m.canAccept(4, 4)); // ...even a byte of that word
    // ...but other words are free.
    EXPECT_TRUE(m.canAccept(8, 8));
    m.addDest(2, 8, 8);
    m.addDest(3, 16, 8);
    m.addDest(4, 24, 8);
    EXPECT_FALSE(m.canAccept(24, 8));
    EXPECT_EQ(m.numDests(), 4u);
}

TEST(Mshr, ExplicitFieldsAllowSameWord)
{
    // Explicitly addressed MSHR with 4 generic fields: "four misses
    // to the exact same address without stalling" (section 2.2).
    Mshr m(0x1000, 0, 17, 32, fieldPolicy(1, 4));
    for (unsigned i = 0; i < 4; ++i) {
        ASSERT_TRUE(m.canAccept(0, 8));
        m.addDest(i, 0, 8);
    }
    EXPECT_FALSE(m.canAccept(0, 8));
    EXPECT_FALSE(m.canAccept(24, 8)); // fields are shared by the block
}

TEST(Mshr, HybridTwoByTwo)
{
    // 2 sub-blocks of 16 bytes, 2 misses each (the paper's 106-bit
    // organization).
    Mshr m(0x1000, 0, 17, 32, fieldPolicy(2, 2));
    EXPECT_TRUE(m.canAccept(0, 8));
    m.addDest(1, 0, 8);
    m.addDest(2, 8, 8); // same sub-block, second field
    EXPECT_FALSE(m.canAccept(0, 8)); // lower sub-block now full
    EXPECT_TRUE(m.canAccept(16, 8)); // upper sub-block free
    m.addDest(3, 16, 8);
    m.addDest(4, 24, 8);
    EXPECT_FALSE(m.canAccept(16, 8));
}

TEST(Mshr, ByteAccessesShareAWordSlot)
{
    Mshr m(0x1000, 0, 17, 32, fieldPolicy(4, 1));
    m.addDest(1, 3, 1); // byte load in word 0
    EXPECT_FALSE(m.canAccept(5, 1)); // another byte of word 0: stall
    EXPECT_TRUE(m.canAccept(11, 1));
}

TEST(Mshr, AccessSpanningSubBlocksNeedsBoth)
{
    // 8 sub-blocks of 4 bytes; an 8-byte access covers two.
    Mshr m(0x1000, 0, 17, 32, fieldPolicy(8, 1));
    m.addDest(1, 0, 8);
    EXPECT_FALSE(m.canAccept(0, 4));
    EXPECT_FALSE(m.canAccept(4, 4));
    EXPECT_TRUE(m.canAccept(8, 4));
    m.addDest(2, 12, 4);
    EXPECT_FALSE(m.canAccept(8, 8)); // spans an occupied sub-block
}

TEST(Mshr, DestRecordsKeepFormatInfo)
{
    Mshr m(0x1000, 0, 17, 32, fieldPolicy(1, -1));
    m.addDest(42, 24, 4);
    ASSERT_EQ(m.dests().size(), 1u);
    EXPECT_EQ(m.dests()[0].destLinear, 42u);
    EXPECT_EQ(m.dests()[0].offsetInBlock, 24u);
    EXPECT_EQ(m.dests()[0].size, 4u);
}
