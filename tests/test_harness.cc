/**
 * @file
 * Tests for the experiment harness: configuration plumbing, the Lab
 * cache, sweeps, and the transcribed paper data.
 */

#include <gtest/gtest.h>

#include "harness/paper_data.hh"
#include "harness/sweep.hh"

using namespace nbl;
using namespace nbl::harness;

TEST(Harness, MachineConfigMapsFields)
{
    ExperimentConfig e;
    e.cacheBytes = 64 * 1024;
    e.lineBytes = 16;
    e.ways = 0;
    e.config = core::ConfigName::Fc2;
    e.missPenalty = 32;
    e.issueWidth = 2;
    exec::MachineConfig mc = makeMachineConfig(e);
    EXPECT_EQ(mc.geometry.sizeBytes(), 64u * 1024);
    EXPECT_EQ(mc.geometry.lineBytes(), 16u);
    EXPECT_TRUE(mc.geometry.fullyAssociative());
    EXPECT_EQ(mc.policy.numMshrs, 2);
    EXPECT_EQ(mc.memory.penalty(16), 32u);
    EXPECT_EQ(mc.issueWidth, 2u);
}

TEST(Harness, DefaultIsThePaperBaseline)
{
    ExperimentConfig e;
    exec::MachineConfig mc = makeMachineConfig(e);
    EXPECT_EQ(mc.geometry.sizeBytes(), 8u * 1024);
    EXPECT_EQ(mc.geometry.lineBytes(), 32u);
    EXPECT_EQ(mc.geometry.ways(), 1u);
    EXPECT_EQ(mc.memory.penalty(32), 16u);
    EXPECT_EQ(mc.issueWidth, 1u);
}

TEST(Harness, CustomPolicyOverridesNamedConfig)
{
    ExperimentConfig e;
    e.config = core::ConfigName::Mc0; // would be blocking...
    e.customPolicy = core::makeFieldPolicy(2, 2);
    exec::MachineConfig mc = makeMachineConfig(e);
    EXPECT_EQ(mc.policy.subBlocks, 2);
    EXPECT_EQ(mc.policy.missesPerSubBlock, 2);
    EXPECT_FALSE(mc.policy.blocking());
}

TEST(Harness, LabCachesCompiledPrograms)
{
    Lab lab(0.05);
    const isa::Program &a = lab.program("eqntott", 10);
    const isa::Program &b = lab.program("eqntott", 10);
    EXPECT_EQ(&a, &b); // same object: compiled once
    const isa::Program &c = lab.program("eqntott", 20);
    EXPECT_NE(&a, &c); // new schedule per latency
}

TEST(Harness, LabRunMatchesStandaloneExperiment)
{
    Lab lab(0.05);
    ExperimentConfig e;
    e.config = core::ConfigName::Mc1;
    e.loadLatency = 6;
    auto via_lab = lab.run("espresso", e);
    auto standalone =
        runExperiment(workloads::makeWorkload("espresso", 0.05), e);
    EXPECT_EQ(via_lab.run.cpu.cycles, standalone.run.cpu.cycles);
    EXPECT_EQ(via_lab.run.cache.primaryMisses,
              standalone.run.cache.primaryMisses);
}

TEST(Harness, SweepCoversAllLatenciesAndConfigs)
{
    Lab lab(0.05);
    ExperimentConfig base;
    auto curves = sweepCurves(lab, "eqntott", base,
                              {core::ConfigName::Mc0,
                               core::ConfigName::NoRestrict});
    ASSERT_EQ(curves.size(), 2u);
    EXPECT_EQ(curves[0].label, "mc=0");
    ASSERT_EQ(curves[0].latencies.size(), 6u);
    EXPECT_EQ(curves[0].latencies.front(), 1);
    EXPECT_EQ(curves[0].latencies.back(), 20);
    EXPECT_GE(curves[0].mcpiAt(10), curves[1].mcpiAt(10));
    EXPECT_EQ(curves[0].mcpiAt(99), -1.0); // unknown latency
}

TEST(Harness, ConfigListsMatchTheFigures)
{
    auto base = baselineConfigList();
    ASSERT_EQ(base.size(), 7u);
    EXPECT_EQ(base.front(), core::ConfigName::Mc0Wma);
    EXPECT_EQ(base.back(), core::ConfigName::NoRestrict);
    auto per_set = perSetConfigList();
    ASSERT_EQ(per_set.size(), 9u);
}

TEST(Harness, ConfigLabelsMatchThePaper)
{
    EXPECT_STREQ(core::configLabel(core::ConfigName::Mc0Wma),
                 "mc=0 +wma");
    EXPECT_STREQ(core::configLabel(core::ConfigName::Fc1), "fc=1");
    EXPECT_STREQ(core::configLabel(core::ConfigName::NoRestrict),
                 "no restrict");
}

TEST(PaperData, Figure13HasAll18Rows)
{
    const auto &rows = paper::fig13();
    ASSERT_EQ(rows.size(), 18u);
    // Spot checks against the table.
    auto doduc = paper::fig13Row("doduc");
    ASSERT_TRUE(doduc.has_value());
    EXPECT_DOUBLE_EQ(doduc->mc0, 0.346);
    EXPECT_DOUBLE_EQ(doduc->unrestricted, 0.084);
    auto ora = paper::fig13Row("ora");
    ASSERT_TRUE(ora.has_value());
    EXPECT_DOUBLE_EQ(ora->mc1, 1.000);
    EXPECT_FALSE(paper::fig13Row("dhrystone").has_value());
}

TEST(PaperData, Figure13RatiosAreConsistent)
{
    // Every row's MCPIs must be weakly decreasing left to right in
    // capability order mc0 >= mc1 >= {mc2, fc1} >= fc2 >= inf.
    for (const auto &r : paper::fig13()) {
        EXPECT_GE(r.mc0, r.mc1) << r.name;
        EXPECT_GE(r.mc1, r.mc2) << r.name;
        EXPECT_GE(r.mc1, r.fc1) << r.name;
        EXPECT_GE(r.fc1, r.fc2) << r.name;
        EXPECT_GE(r.fc2 + 1e-9, r.unrestricted) << r.name;
    }
}

TEST(PaperData, Figure18BlockingRowIsLinear)
{
    for (const auto &row : paper::fig18()) {
        if (std::string(row.config) == "mc=0") {
            for (size_t i = 1; i < row.mcpi.size(); ++i) {
                EXPECT_NEAR(row.mcpi[i] / row.mcpi[i - 1], 2.0, 0.02);
            }
        }
    }
    EXPECT_EQ(paper::fig18().size(), 7u);
}

TEST(PaperData, Figure19IpcRange)
{
    for (const auto &r : paper::fig19()) {
        EXPECT_GE(r.ipc, 1.0);
        EXPECT_LE(r.ipc, 2.0);
        EXPECT_NEAR(r.scaledPen, 16.0 * r.ipc, 0.2);
    }
}

TEST(PaperData, Figure6RowsSumToRoughly100)
{
    for (const auto &r : paper::fig6()) {
        int sum = 0;
        for (int v : r.missPct)
            sum += v;
        EXPECT_GE(sum, 97);
        EXPECT_LE(sum, 103);
    }
}

TEST(PaperData, Figure14GridMatchesCostModel)
{
    // Every restricted cell's ratio must be >= 1 and decreasing as
    // fields are added along each axis.
    const auto &grid = paper::fig14();
    for (const auto &c : grid)
        EXPECT_GE(c.ratio, 0.99);
}
