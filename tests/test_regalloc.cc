/**
 * @file
 * Unit tests for register allocation: pinned assignments, reserved
 * registers, spilling under pressure, and spill-code correctness
 * (verified by executing high-pressure programs).
 */

#include <gtest/gtest.h>

#include <set>

#include "compiler/compile.hh"
#include "compiler/kernel.hh"
#include "compiler/regalloc.hh"
#include "exec/machine.hh"

using namespace nbl;
using namespace nbl::compiler;

namespace
{

/**
 * A kernel that keeps `live` integer temporaries alive at once:
 * load `live` values, then consume them in definition order.
 */
KernelProgram
pressureProgram(unsigned live)
{
    KernelProgram kp;
    kp.name = "pressure";
    KernelBuilder b("pressure", kp.nextVRegId);
    b.countedLoop(0, 4);
    VReg in = b.constI(0x10000);
    VReg out = b.constI(0x20000);
    std::vector<VReg> vals;
    for (unsigned i = 0; i < live; ++i)
        vals.push_back(b.load(in, int64_t(i) * 8, 0));
    VReg acc = vals[0];
    for (unsigned i = 1; i < live; ++i)
        acc = b.add(acc, vals[i]);
    b.store(out, 0, acc, 1);
    b.bump(out, 8);
    kp.kernels.push_back(b.take());
    return kp;
}

} // namespace

TEST(RegAlloc, PinnedValuesGetDistinctRegisters)
{
    KernelProgram kp = pressureProgram(4);
    const Kernel &k = kp.kernels[0];
    RegAllocResult r = allocate(k, k.body, 0);
    std::set<unsigned> used;
    for (const isa::Instr &in : r.preamble) {
        EXPECT_EQ(in.op, isa::Op::LImm);
        used.insert(in.dst.idx);
    }
    EXPECT_EQ(used.size(), r.preamble.size()); // all distinct
    EXPECT_EQ(r.counter.cls, isa::RegClass::Int);
    EXPECT_NE(r.counter.idx, r.limit.idx);
}

TEST(RegAlloc, ReservedRegistersNeverAllocated)
{
    KernelProgram kp = pressureProgram(30); // heavy pressure
    const Kernel &k = kp.kernels[0];
    RegAllocResult r = allocate(k, k.body, 0);
    for (const isa::Instr &in : r.body) {
        if (in.hasDst() && in.dst.cls == isa::RegClass::Int) {
            // r29/r30/r31 are the lowerer's; r0 is zero. The spill
            // scratch registers r27/r28 appear only in spill code.
            EXPECT_NE(in.dst.idx, 0u);
            EXPECT_NE(in.dst.idx, 29u);
            EXPECT_NE(in.dst.idx, 30u);
            EXPECT_NE(in.dst.idx, 31u);
        }
    }
}

TEST(RegAlloc, NoSpillsUnderLowPressure)
{
    KernelProgram kp = pressureProgram(8);
    const Kernel &k = kp.kernels[0];
    RegAllocResult r = allocate(k, k.body, 0);
    EXPECT_EQ(r.spillSlots, 0u);
    EXPECT_EQ(r.spillLoads, 0u);
    EXPECT_EQ(r.body.size(), k.body.size());
}

TEST(RegAlloc, SpillsUnderHighPressure)
{
    KernelProgram kp = pressureProgram(32); // > 26 allocatable
    const Kernel &k = kp.kernels[0];
    RegAllocResult r = allocate(k, k.body, 0);
    EXPECT_GT(r.spillSlots, 0u);
    EXPECT_GT(r.spillStores, 0u);
    EXPECT_GT(r.spillLoads, 0u);
    // Spill code grows the body.
    EXPECT_GT(r.body.size(), k.body.size());
    // Spill slots are addressed off the spill base register.
    bool spill_ld = false;
    for (const isa::Instr &in : r.body) {
        if (in.op == isa::Op::Ld && in.src1 == reg_conv::spillBase)
            spill_ld = true;
    }
    EXPECT_TRUE(spill_ld);
}

TEST(RegAlloc, SpillSlotsStackAcrossKernels)
{
    KernelProgram kp = pressureProgram(32);
    const Kernel &k = kp.kernels[0];
    RegAllocResult a = allocate(k, k.body, 0);
    RegAllocResult b2 = allocate(k, k.body, a.spillSlots);
    // Second kernel's spill offsets start above the first's.
    int64_t max_a = -1, min_b = INT64_MAX;
    auto scan = [](const RegAllocResult &r, int64_t &mn, int64_t &mx) {
        for (const isa::Instr &in : r.body) {
            if ((in.op == isa::Op::St || in.op == isa::Op::Ld) &&
                in.src1 == reg_conv::spillBase) {
                mn = std::min(mn, in.imm);
                mx = std::max(mx, in.imm);
            }
        }
    };
    int64_t dummy_min = INT64_MAX;
    scan(a, dummy_min, max_a);
    int64_t dummy_max = -1;
    scan(b2, min_b, dummy_max);
    EXPECT_LT(max_a, min_b);
}

class SpillCorrectness : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SpillCorrectness, SpilledProgramsComputeTheSameSum)
{
    // Property: the architectural result must not depend on register
    // pressure (spill code is semantically transparent).
    unsigned live = GetParam();
    KernelProgram kp = pressureProgram(live);
    CompileParams cp;
    cp.loadLatency = 1;
    isa::Program prog = compile(kp, cp);

    mem::SparseMemory m;
    uint64_t expect = 0;
    for (unsigned i = 0; i < live; ++i) {
        m.write(0x10000 + i * 8, 8, i * 7 + 3);
        expect += i * 7 + 3;
    }
    exec::MachineConfig mc;
    mc.policy = core::makePolicy(core::ConfigName::NoRestrict);
    exec::run(prog, m, mc);
    EXPECT_EQ(m.read(0x20000, 8), expect) << "live=" << live;
}

INSTANTIATE_TEST_SUITE_P(Pressure, SpillCorrectness,
                         ::testing::Values(4u, 20u, 26u, 27u, 32u, 40u,
                                           60u));

TEST(RegAlloc, PressureGrowsWithScheduledLatency)
{
    // The paper's Figure 4 effect: scheduling for longer latencies
    // lengthens live ranges and can only increase spills.
    KernelProgram kp = pressureProgram(30);
    CompileParams lo, hi;
    lo.loadLatency = 1;
    hi.loadLatency = 20;
    CompileInfo li, hi_info;
    compile(kp, lo, &li);
    compile(kp, hi, &hi_info);
    EXPECT_LE(li.spillSlots, hi_info.spillSlots);
}

TEST(RegAllocDeathTest, UseBeforeDefIsFatal)
{
    // Hand-build a kernel whose body reads an undefined temporary.
    Kernel k;
    k.name = "bad";
    k.kind = LoopKind::Counted;
    k.counter = VReg{0, isa::RegClass::Int};
    k.limit = VReg{1, isa::RegClass::Int};
    k.trips = 1;
    k.pinned = {0, 1};
    k.preamble.push_back(VOp{isa::Op::LImm, k.counter, {}, {}, 0, 8, -1});
    k.preamble.push_back(VOp{isa::Op::LImm, k.limit, {}, {}, 1, 8, -1});
    VReg ghost{7, isa::RegClass::Int};
    VReg t{8, isa::RegClass::Int};
    k.body.push_back(VOp{isa::Op::AddI, t, ghost, {}, 1, 8, -1});
    EXPECT_EXIT(allocate(k, k.body, 0), ::testing::ExitedWithCode(1),
                "");
}
