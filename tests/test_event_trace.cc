/**
 * @file
 * Tests for the exact replay engine (exec/event_trace.hh) and the Lab
 * trace cache built on it.
 *
 * The heart is a property test: for every workload, replayExact() over
 * a recorded event trace must produce a RunOutput equal field-by-field
 * (including the flight-tracker histograms) to execution-driven
 * exec::run, across the full spread of MSHR configurations and
 * scheduled load latencies the paper sweeps.
 */

#include <cstdlib>
#include <memory>
#include <thread>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/event_trace.hh"
#include "exec/machine.hh"
#include "harness/parallel.hh"
#include "harness/sweep.hh"
#include "workloads/workload.hh"

using namespace nbl;
using exec::EventTrace;
using exec::MachineConfig;
using exec::RunOutput;
using harness::ExperimentConfig;
using harness::Lab;

namespace
{

/** Small scale: the full property sweep covers ~2000 simulations. */
constexpr double kScale = 0.02;

/** The latencies exercised per workload (ends + paper default). */
constexpr int kLatencies[] = {1, 6, 20};

void
expectSameHistogram(const core::LevelHistogram &a,
                    const core::LevelHistogram &b, const char *which)
{
    EXPECT_EQ(a.maxSeen(), b.maxSeen()) << which;
    EXPECT_EQ(a.totalCycles(), b.totalCycles()) << which;
    for (unsigned l = 0; l <= core::LevelHistogram::maxLevel; ++l)
        EXPECT_EQ(a.cyclesAt(l), b.cyclesAt(l)) << which << " level " << l;
}

/** Every RunOutput field must match bit for bit. */
void
expectSameRun(const RunOutput &a, const RunOutput &b)
{
    EXPECT_EQ(a.cpu.instructions, b.cpu.instructions);
    EXPECT_EQ(a.cpu.loads, b.cpu.loads);
    EXPECT_EQ(a.cpu.stores, b.cpu.stores);
    EXPECT_EQ(a.cpu.branches, b.cpu.branches);
    EXPECT_EQ(a.cpu.cycles, b.cpu.cycles);
    EXPECT_EQ(a.cpu.depStallCycles, b.cpu.depStallCycles);
    EXPECT_EQ(a.cpu.structStallCycles, b.cpu.structStallCycles);
    EXPECT_EQ(a.cpu.blockStallCycles, b.cpu.blockStallCycles);
    EXPECT_EQ(a.cpu.pairLostSlots, b.cpu.pairLostSlots);

    EXPECT_EQ(a.cache.loads, b.cache.loads);
    EXPECT_EQ(a.cache.stores, b.cache.stores);
    EXPECT_EQ(a.cache.loadHits, b.cache.loadHits);
    EXPECT_EQ(a.cache.storeHits, b.cache.storeHits);
    EXPECT_EQ(a.cache.primaryMisses, b.cache.primaryMisses);
    EXPECT_EQ(a.cache.secondaryMisses, b.cache.secondaryMisses);
    EXPECT_EQ(a.cache.structStallMisses, b.cache.structStallMisses);
    EXPECT_EQ(a.cache.structStallCycles, b.cache.structStallCycles);
    EXPECT_EQ(a.cache.storeMisses, b.cache.storeMisses);
    EXPECT_EQ(a.cache.storePrimaryMisses, b.cache.storePrimaryMisses);
    EXPECT_EQ(a.cache.storeSecondaryMisses, b.cache.storeSecondaryMisses);
    EXPECT_EQ(a.cache.storeStructStalls, b.cache.storeStructStalls);
    EXPECT_EQ(a.cache.fetches, b.cache.fetches);
    EXPECT_EQ(a.cache.evictions, b.cache.evictions);

    expectSameHistogram(a.tracker.misses, b.tracker.misses, "misses");
    expectSameHistogram(a.tracker.fetches, b.tracker.fetches, "fetches");

    EXPECT_EQ(a.maxInflightMisses, b.maxInflightMisses);
    EXPECT_EQ(a.maxInflightFetches, b.maxInflightFetches);
    EXPECT_EQ(a.missPenalty, b.missPenalty);
    EXPECT_EQ(a.hitInstructionCap, b.hitInstructionCap);
}

/**
 * The 18 MSHR configurations of the property sweep: all ten named
 * configurations plus eight Figure-14 field organizations (explicit,
 * implicit, and hybrid).
 */
std::vector<core::MshrPolicy>
propertyPolicies()
{
    std::vector<core::MshrPolicy> out;
    for (core::ConfigName name :
         {core::ConfigName::Mc0Wma, core::ConfigName::Mc0,
          core::ConfigName::Mc1, core::ConfigName::Mc2,
          core::ConfigName::Fc1, core::ConfigName::Fc2,
          core::ConfigName::Fs1, core::ConfigName::Fs2,
          core::ConfigName::InCache, core::ConfigName::NoRestrict})
        out.push_back(core::makePolicy(name));
    constexpr int kFields[][2] = {{1, 1}, {1, 2}, {1, 4}, {2, 1},
                                  {4, 1}, {8, 1}, {2, 2}, {4, 4}};
    for (auto [sb, mps] : kFields)
        out.push_back(core::makeFieldPolicy(sb, mps));
    return out;
}

class ReplayExact : public ::testing::TestWithParam<std::string>
{
};

} // namespace

/**
 * The core exactness property: one recording per (workload, latency)
 * drives every cache configuration to the same RunOutput as a fresh
 * execution-driven run.
 */
TEST_P(ReplayExact, MatchesExecutionDrivenEverywhere)
{
    const std::string name = GetParam();
    workloads::Workload w = workloads::makeWorkload(name, kScale);
    const std::vector<core::MshrPolicy> policies = propertyPolicies();

    Lab lab(kScale);
    for (int latency : kLatencies) {
        const isa::Program &prog = lab.program(name, latency);
        mem::SparseMemory rec_mem = w.makeMemory();
        EventTrace trace = exec::recordEventTrace(prog, rec_mem);
        ASSERT_FALSE(trace.hitInstructionCap);
        ASSERT_GT(trace.instructions, 0u);

        for (const core::MshrPolicy &policy : policies) {
            MachineConfig mc;
            mc.policy = policy;
            mem::SparseMemory run_mem = w.makeMemory();
            RunOutput ref = exec::run(prog, run_mem, mc);
            RunOutput rep = exec::replayExact(prog, trace, mc);
            expectSameRun(ref, rep);
        }
    }
}

/**
 * The multi-issue and perfect-cache variants use the generic replay
 * path (no pre-decoded fast path); they must be exact too.
 */
TEST_P(ReplayExact, MatchesExecutionDrivenWideAndPerfect)
{
    const std::string name = GetParam();
    workloads::Workload w = workloads::makeWorkload(name, kScale);

    Lab lab(kScale);
    const isa::Program &prog = lab.program(name, 10);
    mem::SparseMemory rec_mem = w.makeMemory();
    EventTrace trace = exec::recordEventTrace(prog, rec_mem);

    for (unsigned width : {1u, 2u, 4u}) {
        for (bool perfect : {false, true}) {
            MachineConfig mc;
            mc.policy = core::makePolicy(core::ConfigName::NoRestrict);
            mc.issueWidth = width;
            mc.perfectCache = perfect;
            mem::SparseMemory run_mem = w.makeMemory();
            RunOutput ref = exec::run(prog, run_mem, mc);
            RunOutput rep = exec::replayExact(prog, trace, mc);
            expectSameRun(ref, rep);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ReplayExact,
    ::testing::ValuesIn(workloads::workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(EventTrace, EncodingIsCompact)
{
    workloads::Workload w = workloads::makeWorkload("doduc", kScale);
    Lab lab(kScale);
    const isa::Program &prog = lab.program("doduc", 10);
    mem::SparseMemory m = w.makeMemory();
    EventTrace trace = exec::recordEventTrace(prog, m);

    EXPECT_EQ(trace.segStart.size(), trace.segLen.size());
    uint64_t seg_sum = 0;
    for (size_t s = 0; s < trace.segLen.size(); ++s) {
        EXPECT_GT(trace.segLen[s], 0u);
        EXPECT_LT(trace.segStart[s], prog.size());
        seg_sum += trace.segLen[s];
    }
    EXPECT_EQ(seg_sum, trace.instructions);
    EXPECT_GT(trace.memoryRefs(), 0u);
    EXPECT_LT(trace.memoryRefs(), trace.instructions);
    // Delta encoding: far fewer segments than dynamic instructions.
    EXPECT_LT(trace.segLen.size(), trace.instructions / 2);
}

TEST(EventTrace, InstructionCapTruncatesExactlyAsRun)
{
    workloads::Workload w = workloads::makeWorkload("compress", kScale);
    Lab lab(kScale);
    const isa::Program &prog = lab.program("compress", 10);

    mem::SparseMemory full_mem = w.makeMemory();
    EventTrace full = exec::recordEventTrace(prog, full_mem);
    ASSERT_GT(full.instructions, 1000u);
    const uint64_t cap = full.instructions / 2;

    MachineConfig mc;
    mc.policy = core::makePolicy(core::ConfigName::Mc1);
    mc.maxInstructions = cap;

    // Replaying a full trace under a smaller budget truncates exactly
    // as execution does.
    mem::SparseMemory run_mem = w.makeMemory();
    RunOutput ref = exec::run(prog, run_mem, mc);
    EXPECT_TRUE(ref.hitInstructionCap);
    RunOutput rep = exec::replayExact(prog, full, mc);
    expectSameRun(ref, rep);

    // A trace recorded under the same cap replays identically too.
    mem::SparseMemory capped_mem = w.makeMemory();
    EventTrace capped = exec::recordEventTrace(prog, capped_mem, cap);
    EXPECT_TRUE(capped.hitInstructionCap);
    EXPECT_EQ(capped.instructions, cap);
    RunOutput rep2 = exec::replayExact(prog, capped, mc);
    expectSameRun(ref, rep2);
}

TEST(EventTrace, CappedTraceRefusesLargerBudget)
{
    workloads::Workload w = workloads::makeWorkload("compress", kScale);
    Lab lab(kScale);
    const isa::Program &prog = lab.program("compress", 10);

    mem::SparseMemory m = w.makeMemory();
    EventTrace capped = exec::recordEventTrace(prog, m, 500);
    ASSERT_TRUE(capped.hitInstructionCap);

    MachineConfig mc;
    mc.policy = core::makePolicy(core::ConfigName::NoRestrict);
    mc.maxInstructions = 1000; // More than the trace holds.
    EXPECT_DEATH(exec::replayExact(prog, capped, mc), "re-record");
}

TEST(Fingerprint, IdentifiesProgramContent)
{
    Lab a(kScale), b(kScale);
    // Deterministic compilation: equal content across Lab instances.
    EXPECT_EQ(a.program("doduc", 10).fingerprint(),
              b.program("doduc", 10).fingerprint());
    // Different workloads (and usually different schedules) differ.
    EXPECT_NE(a.program("doduc", 10).fingerprint(),
              a.program("compress", 10).fingerprint());
}

TEST(TraceCache, ReplayMatchesExecutionDrivenLab)
{
    Lab replay_lab(kScale);
    Lab exec_lab(kScale);
    replay_lab.setReplayEnabled(true);
    exec_lab.setReplayEnabled(false);

    ExperimentConfig cfg;
    for (core::ConfigName c :
         {core::ConfigName::Mc0, core::ConfigName::Fc2,
          core::ConfigName::NoRestrict}) {
        for (int lat : {1, 10}) {
            cfg.config = c;
            cfg.loadLatency = lat;
            auto rep = replay_lab.run("xlisp", cfg);
            auto ref = exec_lab.run("xlisp", cfg);
            expectSameRun(ref.run, rep.run);
        }
    }
    EXPECT_GT(replay_lab.recordedTraces(), 0u);
    EXPECT_EQ(exec_lab.recordedTraces(), 0u);
}

TEST(TraceCache, RecordsOncePerProgramIdentity)
{
    Lab lab(kScale);
    ExperimentConfig cfg;
    cfg.loadLatency = 10;

    // Many configurations at one latency: one recording, many hits.
    for (core::ConfigName c :
         {core::ConfigName::Mc0, core::ConfigName::Mc1,
          core::ConfigName::Mc2, core::ConfigName::Fc1,
          core::ConfigName::Fc2, core::ConfigName::NoRestrict}) {
        cfg.config = c;
        lab.run("ear", cfg);
    }
    EXPECT_EQ(lab.recordedTraces(), 1u);
    EXPECT_EQ(lab.traceCacheHits(), 5u);

    // Traces are keyed by program fingerprint, so distinct latencies
    // add at most one recording each (fewer if schedules coincide).
    for (int lat : {1, 6, 20}) {
        cfg.loadLatency = lat;
        lab.run("ear", cfg);
    }
    EXPECT_LE(lab.recordedTraces(), 4u);
}

TEST(TraceCache, ConcurrentSweepBitIdenticalToSerial)
{
    // NBL_JOBS=4 exercises concurrent recording/lookup even on a
    // 1-core host; run under TSan by tools/check.sh.
    setenv("NBL_JOBS", "4", 1);

    ExperimentConfig base;
    const std::vector<core::ConfigName> cfgs = {
        core::ConfigName::Mc0, core::ConfigName::Mc2,
        core::ConfigName::Fc1, core::ConfigName::NoRestrict};

    Lab serial_lab(kScale);
    serial_lab.setReplayEnabled(false); // Execution-driven reference.
    Lab parallel_lab(kScale);
    auto serial =
        harness::sweepCurvesSerial(serial_lab, "swm256", base, cfgs);
    auto par =
        harness::runSweepParallel(parallel_lab, "swm256", base, cfgs);

    ASSERT_EQ(serial.size(), par.size());
    for (size_t c = 0; c < serial.size(); ++c) {
        ASSERT_EQ(serial[c].results.size(), par[c].results.size());
        for (size_t i = 0; i < serial[c].results.size(); ++i)
            expectSameRun(serial[c].results[i].run,
                          par[c].results[i].run);
    }
    EXPECT_GT(parallel_lab.recordedTraces(), 0u);
    unsetenv("NBL_JOBS");
}

TEST(TraceCache, ConcurrentPointFanOutSharesTraces)
{
    setenv("NBL_JOBS", "4", 1);
    Lab lab(kScale);
    std::vector<harness::SweepPoint> points;
    for (int lat : {1, 10}) {
        for (core::ConfigName c :
             {core::ConfigName::Mc1, core::ConfigName::Fc2,
              core::ConfigName::NoRestrict}) {
            ExperimentConfig e;
            e.config = c;
            e.loadLatency = lat;
            points.push_back({"eqntott", e});
        }
    }
    auto results = harness::runPointsParallel(lab, points, 4);
    ASSERT_EQ(results.size(), points.size());
    // At most one recording per distinct latency.
    EXPECT_LE(lab.recordedTraces(), 2u);

    Lab ref(kScale);
    ref.setReplayEnabled(false);
    for (size_t i = 0; i < points.size(); ++i) {
        auto again = ref.run(points[i].workload, points[i].cfg);
        expectSameRun(again.run, results[i].run);
    }
    unsetenv("NBL_JOBS");
}

/**
 * FIFO trace-cache eviction regression: at cap=1 every new workload's
 * recording evicts the previous one. Two bugs hid here: eventTrace()
 * read the just-inserted map entry through an iterator AFTER eviction
 * had run (eviction of another entry invalidates deque iterators but
 * rehashing invalidates map iterators too), and runLanes() re-fetched
 * the trace per group without holding the shared_ptr, so a concurrent
 * eviction could drop the recording between grouping and replay. Both
 * must serve bit-exact results at cap=1.
 */
TEST(TraceCache, CapOneEvictionStaysExact)
{
    Lab lab(kScale);
    lab.setTraceCacheCap(1);

    // Alternate workloads so every eventTrace() insert evicts.
    for (int round = 0; round < 2; ++round) {
        for (const char *name : {"doduc", "eqntott", "doduc"}) {
            auto trace = lab.eventTrace(name, 10);
            ASSERT_TRUE(trace);
            EXPECT_GT(trace->instructions, 0u);
        }
        EXPECT_EQ(lab.cacheCounters().traces, 1u);
    }

    // A runLanes batch spanning two programs (two latencies): the
    // second group's recording evicts the first's cache entry at
    // cap=1, but the batch holds its fetched traces and must still
    // produce run()-exact lanes for BOTH groups.
    std::vector<ExperimentConfig> cfgs;
    for (int lat : {1, 10}) {
        for (core::ConfigName c :
             {core::ConfigName::Mc1, core::ConfigName::NoRestrict}) {
            ExperimentConfig e;
            e.config = c;
            e.loadLatency = lat;
            cfgs.push_back(e);
        }
    }
    auto results = lab.runLanes("su2cor", cfgs);
    ASSERT_EQ(results.size(), cfgs.size());

    Lab ref(kScale);
    ref.setReplayEnabled(false);
    for (size_t i = 0; i < cfgs.size(); ++i)
        expectSameRun(ref.run("su2cor", cfgs[i]).run, results[i].run);
}

/**
 * injectTrace/forEachTrace racing a capped cache and live batches
 * (TSan-able; tools/check.sh runs this under ThreadSanitizer). The
 * injected trace is adopted or rejected under the trace lock, and
 * forEachTrace's snapshot must never observe a dangling entry while
 * runLanes batches evict around it.
 */
TEST(TraceCache, ConcurrentInjectAndEvictionAtCap)
{
    workloads::Workload w = workloads::makeWorkload("doduc", kScale);
    Lab donor(kScale);
    auto donor_trace = donor.eventTrace("doduc", 10);
    uint64_t fp = donor.programFingerprint("doduc", 10);

    Lab lab(kScale);
    lab.setTraceCacheCap(1);

    ExperimentConfig mc1, inf;
    mc1.config = core::ConfigName::Mc1;
    inf.config = core::ConfigName::NoRestrict;

    // Seed the cache before spawning so every forEachTrace snapshot
    // observes at least one live entry regardless of scheduling.
    lab.injectTrace("doduc", fp, donor_trace);

    std::thread batches([&] {
        for (int i = 0; i < 4; ++i) {
            lab.runLanes("doduc", {mc1, inf});
            lab.runLanes("eqntott", {mc1, inf}); // Evicts doduc's.
        }
    });
    std::thread injector([&] {
        for (int i = 0; i < 50; ++i)
            lab.injectTrace("doduc", fp, donor_trace);
    });
    size_t visits = 0;
    for (int i = 0; i < 50; ++i) {
        lab.forEachTrace([&](const std::string &, uint64_t,
                             const std::shared_ptr<
                                 const EventTrace> &t) {
            ASSERT_TRUE(t);
            visits += t->instructions > 0;
        });
    }
    batches.join();
    injector.join();
    EXPECT_LE(lab.cacheCounters().traces, 1u);
    EXPECT_GT(visits, 0u);

    // The injected trace still serves exact results afterwards.
    Lab ref(kScale);
    ref.setReplayEnabled(false);
    expectSameRun(ref.run("doduc", mc1).run,
                  lab.run("doduc", mc1).run);
}
