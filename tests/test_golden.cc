/**
 * @file
 * Golden regression suite: the calibrated Figure-13 surface, pinned.
 *
 * The ordering/identity properties in test_machine_properties.cc
 * guarantee the model is *sane*; this suite guarantees it stays
 * *calibrated*. The numbers below are the measured MCPIs of every
 * workload under the six Figure-13 configurations at scheduled load
 * latency 10, workload scale 0.25 (deterministic). If a change to
 * the cache model, compiler, or workloads moves any value by more
 * than the tolerance, this test fails -- on purpose: recalibrate
 * deliberately and regenerate the table, or fix the regression.
 *
 * Regenerate with:
 *   Lab lab(0.25); lab.run(<wl>, {config, loadLatency=10}).mcpi()
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

using namespace nbl;
using namespace nbl::harness;

namespace
{

struct GoldenRow
{
    const char *name;
    double mc0, mc1, mc2, fc1, fc2, inf;
};

// Scale 0.25, load latency 10, baseline cache. Regenerated 2026-07.
const GoldenRow kGolden[] = {
    {"alvinn", 0.3637, 0.2500, 0.2500, 0.2500, 0.2500, 0.2500},
    {"doduc", 0.2313, 0.1835, 0.1032, 0.1459, 0.0751, 0.0575},
    {"ear", 0.1148, 0.0794, 0.0794, 0.0794, 0.0794, 0.0794},
    {"fpppp", 0.5240, 0.3957, 0.1880, 0.3692, 0.1356, 0.0771},
    {"hydro2d", 0.9189, 0.6140, 0.2920, 0.6140, 0.2920, 0.1594},
    {"mdljdp2", 0.4268, 0.3468, 0.1892, 0.1892, 0.1892, 0.1892},
    {"mdljsp2", 0.1688, 0.0809, 0.0400, 0.0809, 0.0400, 0.0400},
    {"nasa7", 2.2066, 1.8446, 0.8877, 1.6895, 0.6637, 0.3792},
    {"ora", 0.9999, 0.9999, 0.9999, 0.9999, 0.9999, 0.9999},
    {"su2cor", 1.1142, 0.8649, 0.2992, 0.8302, 0.2819, 0.1260},
    {"swm256", 0.4212, 0.1729, 0.0948, 0.1729, 0.0948, 0.0948},
    {"spice2g6", 0.9795, 0.9767, 0.9164, 0.8561, 0.8561, 0.8561},
    {"tomcatv", 1.3795, 0.8795, 0.4139, 0.8795, 0.2932, 0.0345},
    {"wave5", 0.4284, 0.3613, 0.1504, 0.2953, 0.1109, 0.1109},
    {"compress", 0.4924, 0.3712, 0.3712, 0.3712, 0.3712, 0.3712},
    {"eqntott", 0.1200, 0.0856, 0.0856, 0.0856, 0.0856, 0.0856},
    {"espresso", 0.2565, 0.1945, 0.1945, 0.1945, 0.1945, 0.1945},
    {"xlisp", 0.3123, 0.2758, 0.2529, 0.2711, 0.2529, 0.2529},
};

/** 2% relative + small absolute slack: room for harmless refactors,
 *  failure on real calibration drift. */
void
expectClose(double measured, double golden, const char *what)
{
    EXPECT_NEAR(measured, golden, 0.02 * golden + 0.002) << what;
}

} // namespace

class GoldenFig13 : public ::testing::TestWithParam<GoldenRow>
{
};

TEST_P(GoldenFig13, McpiSurfaceUnchanged)
{
    const GoldenRow &g = GetParam();
    Lab lab(0.25);
    auto run = [&](core::ConfigName cfg) {
        ExperimentConfig e;
        e.config = cfg;
        e.loadLatency = 10;
        return lab.run(g.name, e).mcpi();
    };
    expectClose(run(core::ConfigName::Mc0), g.mc0, "mc0");
    expectClose(run(core::ConfigName::Mc1), g.mc1, "mc1");
    expectClose(run(core::ConfigName::Mc2), g.mc2, "mc2");
    expectClose(run(core::ConfigName::Fc1), g.fc1, "fc1");
    expectClose(run(core::ConfigName::Fc2), g.fc2, "fc2");
    expectClose(run(core::ConfigName::NoRestrict), g.inf, "inf");
}

INSTANTIATE_TEST_SUITE_P(All18, GoldenFig13,
                         ::testing::ValuesIn(kGolden),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });
