/**
 * @file
 * Unit tests for the inverted MSHR organization (paper section 2.4).
 */

#include <gtest/gtest.h>

#include "core/inverted_mshr.hh"

using namespace nbl::core;

TEST(InvertedMshr, StartsEmpty)
{
    InvertedMshr im;
    EXPECT_EQ(im.activeMisses(), 0u);
    for (unsigned d = 0; d < nbl::isa::numDests; ++d)
        EXPECT_FALSE(im.busy(d));
}

TEST(InvertedMshr, AllocateAndFill)
{
    InvertedMshr im;
    im.allocate(3, 0x1000, 8, 8);
    im.allocate(7, 0x1000, 16, 8);
    im.allocate(9, 0x2000, 0, 4);
    EXPECT_TRUE(im.busy(3));
    EXPECT_TRUE(im.busy(7));
    EXPECT_EQ(im.activeMisses(), 3u);

    // The associative probe finds exactly the destinations waiting on
    // the returning block (the match encoder of Figure 3).
    auto filled = im.fill(0x1000);
    ASSERT_EQ(filled.size(), 2u);
    EXPECT_EQ(filled[0], 3u);
    EXPECT_EQ(filled[1], 7u);
    EXPECT_FALSE(im.busy(3));
    EXPECT_TRUE(im.busy(9));
    EXPECT_EQ(im.activeMisses(), 1u);
}

TEST(InvertedMshr, FillOfUnknownBlockIsEmpty)
{
    InvertedMshr im;
    im.allocate(1, 0x1000, 0, 8);
    EXPECT_TRUE(im.fill(0x9999000).empty());
    EXPECT_EQ(im.activeMisses(), 1u);
}

TEST(InvertedMshr, NoLimitOnBlocksOrMissesPerBlock)
{
    InvertedMshr im;
    // One miss per destination: every register can wait at once
    // ("no restrictions ... other than the number of possible
    // destinations of fetch data in the machine").
    for (unsigned d = 0; d < 64; ++d)
        im.allocate(d, 0x1000 + (d % 16) * 0x100, (d % 4) * 8, 8);
    EXPECT_EQ(im.activeMisses(), 64u);
    EXPECT_EQ(im.maxMisses(), 64u);
}

TEST(InvertedMshr, ReuseAfterFill)
{
    InvertedMshr im;
    im.allocate(5, 0x1000, 0, 8);
    im.fill(0x1000);
    im.allocate(5, 0x2000, 8, 8); // same destination, new miss
    EXPECT_TRUE(im.busy(5));
    auto filled = im.fill(0x2000);
    ASSERT_EQ(filled.size(), 1u);
    EXPECT_EQ(filled[0], 5u);
}

TEST(InvertedMshrDeathTest, DoubleAllocatePanics)
{
    InvertedMshr im;
    im.allocate(4, 0x1000, 0, 8);
    // A second load to a still-waiting destination means the WAW
    // interlock failed upstream.
    EXPECT_DEATH(im.allocate(4, 0x2000, 0, 8), "WAW");
}

TEST(InvertedMshrDeathTest, DestinationOutOfRangePanics)
{
    InvertedMshr im;
    EXPECT_DEATH(im.allocate(nbl::isa::numDests, 0x1000, 0, 8),
                 "out of range");
}
