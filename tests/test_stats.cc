/**
 * @file
 * Tests for the stats registry (stats/registry.hh) and the run-level
 * counter bridge (stats/run_stats.hh).
 *
 * The heart is the stall-attribution property of docs/MODEL.md: on a
 * single-issue machine every cycle beyond one-per-instruction is
 * charged to exactly one stall bucket, so the snapshot scalars must
 * satisfy cycles == instructions + dep + struct + block exactly, for
 * every workload under every MSHR restriction. Around it: histogram
 * conservation laws, JSON round-tripping, and the provenance metadata
 * carried by exec-vs-replay snapshots.
 */

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/policy.hh"
#include "exec/event_trace.hh"
#include "exec/machine.hh"
#include "harness/sweep.hh"
#include "stats/json.hh"
#include "stats/registry.hh"
#include "stats/run_stats.hh"
#include "workloads/workload.hh"

using namespace nbl;
using harness::ExperimentConfig;
using harness::Lab;
using stats::Snapshot;

namespace
{

constexpr double kScale = 0.02;

/** The ten named cache configurations of the paper's sweeps. */
const std::vector<core::ConfigName> kConfigs = {
    core::ConfigName::Mc0Wma, core::ConfigName::Mc0,
    core::ConfigName::Mc1,    core::ConfigName::Mc2,
    core::ConfigName::Fc1,    core::ConfigName::Fc2,
    core::ConfigName::Fs1,    core::ConfigName::Fs2,
    core::ConfigName::InCache, core::ConfigName::NoRestrict};

bool
isBlocking(core::ConfigName c)
{
    return c == core::ConfigName::Mc0Wma || c == core::ConfigName::Mc0;
}

class StatsProperty : public ::testing::TestWithParam<std::string>
{
};

} // namespace

/**
 * Stall attribution (docs/MODEL.md): dep + struct + block stalls
 * exactly partition the non-issue cycles of a single-issue run, and
 * the conservation laws every histogram promises hold: the flight
 * histograms integrate to total cycles, cache.dests_per_fetch and
 * mshr.per_set_occupancy count every fetch once, and wbuf.depth_on_push
 * counts every buffered write once.
 */
TEST_P(StatsProperty, StallPartitionAndHistogramSums)
{
    const std::string name = GetParam();
    Lab lab(kScale);
    ExperimentConfig cfg;

    for (core::ConfigName c : kConfigs) {
        for (int lat : {1, 10}) {
            cfg.config = c;
            cfg.loadLatency = lat;
            Snapshot s = stats::snapshotOfRun(lab.run(name, cfg).run);

            const uint64_t cycles = s.value("cpu.cycles");
            const uint64_t insts = s.value("cpu.instructions");
            EXPECT_EQ(cycles, insts + s.value("cpu.dep_stall_cycles") +
                                  s.value("cpu.struct_stall_cycles") +
                                  s.value("cpu.block_stall_cycles"))
                << name << " " << core::configLabel(c) << " lat " << lat;

            EXPECT_EQ(s.histogram("flight.misses").total(), cycles);
            EXPECT_EQ(s.histogram("flight.fetches").total(), cycles);
            EXPECT_EQ(s.histogram("cache.dests_per_fetch").total(),
                      s.value("cache.fetches"));
            EXPECT_EQ(s.histogram("wbuf.depth_on_push").total(),
                      s.value("wbuf.writes"));
            // Blocking configurations fetch without allocating an
            // MSHR, so the per-set occupancy histogram is empty there.
            EXPECT_EQ(s.histogram("mshr.per_set_occupancy").total(),
                      isBlocking(c) ? 0 : s.value("cache.fetches"))
                << name << " " << core::configLabel(c);
        }
    }
}

/** Snapshots survive a JSON round trip exactly, provenance included. */
TEST_P(StatsProperty, JsonRoundTrip)
{
    const std::string name = GetParam();
    Lab lab(kScale);
    ExperimentConfig cfg;
    cfg.config = core::ConfigName::Fc2;

    Snapshot s = stats::snapshotOfRun(lab.run(name, cfg).run);
    Snapshot back = stats::parseSnapshot(s.toJson(2));
    EXPECT_TRUE(s.countersEqual(back));
    EXPECT_EQ(s.provenance, back.provenance);

    // And unindented output parses to the same thing.
    EXPECT_TRUE(s.countersEqual(stats::parseSnapshot(s.toJson())));
}

INSTANTIATE_TEST_SUITE_P(
    SomeWorkloads, StatsProperty,
    ::testing::Values("doduc", "compress", "eqntott"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

/**
 * Exact replay (PR 3) must agree with execution-driven runs on every
 * counter; the snapshots differ only in their provenance metadata,
 * which countersEqual deliberately ignores.
 */
TEST(RunStats, ReplayAndExecSnapshotsAgreeModuloProvenance)
{
    workloads::Workload w = workloads::makeWorkload("xlisp", kScale);
    Lab lab(kScale);
    const isa::Program &prog = lab.program("xlisp", 10);

    mem::SparseMemory rec_mem = w.makeMemory();
    exec::EventTrace trace = exec::recordEventTrace(prog, rec_mem);

    exec::MachineConfig mc;
    mc.policy = core::makePolicy(core::ConfigName::Fs1);
    mem::SparseMemory run_mem = w.makeMemory();
    Snapshot ex = stats::snapshotOfRun(exec::run(prog, run_mem, mc));
    Snapshot rep =
        stats::snapshotOfRun(exec::replayExact(prog, trace, mc));

    EXPECT_EQ(ex.provenance, "exec");
    EXPECT_EQ(rep.provenance, "replay");
    EXPECT_TRUE(ex.countersEqual(rep));
}

/** Derived metrics recompute from the integer counters they summarize. */
TEST(RunStats, DerivedMetricsMatchCounters)
{
    Lab lab(kScale);
    ExperimentConfig cfg;
    cfg.config = core::ConfigName::Mc1;
    Snapshot s = stats::snapshotOfRun(lab.run("su2cor", cfg).run);

    const double insts = double(s.value("cpu.instructions"));
    ASSERT_GT(insts, 0.0);
    EXPECT_DOUBLE_EQ(s.derivedValue("cpu.mcpi"),
                     double(s.value("cpu.cycles") -
                            s.value("cpu.instructions")) /
                         insts);
    // Miss rate counts primary + secondary misses (not structural
    // retries, which re-present the same load).
    EXPECT_DOUBLE_EQ(s.derivedValue("cache.load_miss_rate"),
                     double(s.value("cache.primary_misses") +
                            s.value("cache.secondary_misses")) /
                         double(s.value("cache.loads")));

    const stats::Histogram &fm = s.histogram("flight.misses");
    EXPECT_DOUBLE_EQ(s.derivedValue("flight.misses.busy_fraction"),
                     double(fm.total() - fm.at("0")) /
                         double(fm.total()));
}

/** The registry snapshots live counters at snapshot() time. */
TEST(Registry, LiveScalarsReadAtSnapshotTime)
{
    uint64_t counter = 1;
    stats::Registry r;
    r.scalar("live", &counter, "events", "test");
    r.scalarValue("fixed", 7, "events", "test");
    counter = 42; // After registration, before snapshot.

    Snapshot s = r.snapshot();
    EXPECT_EQ(s.value("live"), 42u);
    EXPECT_EQ(s.value("fixed"), 7u);

    counter = 99; // Snapshots are self-contained copies.
    EXPECT_EQ(s.value("live"), 42u);
    EXPECT_EQ(r.snapshot().value("live"), 99u);
}

TEST(Registry, HistogramAndCsvShape)
{
    stats::Registry r;
    r.scalarValue("a", 3, "widgets", "test");
    r.histogram("h", "cycles", "test");
    r.bucket("0", 10);
    r.bucket("1", 20);
    r.bucket("8+", 5);
    r.derived("d", 0.25, "test");

    Snapshot s = r.snapshot();
    EXPECT_EQ(s.histogram("h").total(), 35u);
    EXPECT_EQ(s.histogram("h").at("8+"), 5u);
    EXPECT_EQ(s.histogram("h").at("absent"), 0u);
    EXPECT_EQ(s.findScalar("missing"), nullptr);
    EXPECT_EQ(s.findHistogram("missing"), nullptr);

    // One CSV row per scalar, bucket, and derived metric.
    std::string csv = s.toCsv();
    size_t rows = 0;
    for (char c : csv)
        rows += c == '\n';
    EXPECT_EQ(rows, 1u + 3u + 1u);

    Snapshot back = stats::parseSnapshot(s.toJson());
    EXPECT_TRUE(s.countersEqual(back));
    back.histograms[0].buckets[1].count += 1;
    EXPECT_FALSE(s.countersEqual(back));
}

/**
 * Non-finite derived values (zero-denominator ratios) must serialize
 * as JSON null -- a bare `nan` token would make the whole document
 * unparseable -- and come back as NaN, which countersEqual() treats
 * as equal to itself.
 */
TEST(SnapshotJson, NonFiniteDerivedRoundTripsAsNull)
{
    stats::Registry r;
    r.setProvenance("exec");
    r.scalarValue("cpu.cycles", 0, "cycles", "s3");
    r.derived("cpu.mcpi", std::numeric_limits<double>::quiet_NaN(),
              "s3");
    r.derived("cpu.ipc", std::numeric_limits<double>::infinity(), "s3");
    stats::Snapshot s = r.snapshot();

    // Anchor on the value position: "provenance" itself contains
    // the substring "nan".
    std::string json = s.toJson();
    EXPECT_EQ(json.find(": nan"), std::string::npos);
    EXPECT_EQ(json.find(": inf"), std::string::npos);
    EXPECT_EQ(json.find(": -inf"), std::string::npos);
    EXPECT_NE(json.find(": null"), std::string::npos);

    stats::Snapshot back = stats::parseSnapshot(json);
    EXPECT_TRUE(std::isnan(back.derivedValue("cpu.mcpi")));
    EXPECT_TRUE(std::isnan(back.derivedValue("cpu.ipc")));
    EXPECT_TRUE(s.countersEqual(back));
    EXPECT_TRUE(back.countersEqual(s));
}

TEST(SnapshotJson, JsonDoubleEmitsNullForEveryNonFiniteValue)
{
    EXPECT_EQ(stats::jsonDouble(std::nan("")), "null");
    EXPECT_EQ(stats::jsonDouble(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(stats::jsonDouble(-std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(stats::jsonDouble(0.25), "0.25");
}

/** RFC 4180: quoting kicks in exactly for comma, quote, CR, or LF. */
TEST(SnapshotCsv, FieldsAreEscapedPerRfc4180)
{
    EXPECT_EQ(stats::csvField("plain"), "plain");
    EXPECT_EQ(stats::csvField(""), "");
    EXPECT_EQ(stats::csvField("a,b"), "\"a,b\"");
    EXPECT_EQ(stats::csvField("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(stats::csvField("line\nbreak"), "\"line\nbreak\"");
    EXPECT_EQ(stats::csvField("cr\rhere"), "\"cr\rhere\"");
}

/** A counter name with a comma cannot shift CSV columns. */
TEST(SnapshotCsv, CommaInNameStaysInOneColumn)
{
    stats::Registry r;
    r.scalarValue("odd,name", 7, "count", "s3, table 2");
    stats::Snapshot s = r.snapshot();
    std::string csv = s.toCsv();
    // kind,name,label,value,unit,section => exactly five separating
    // commas outside quotes on the single row.
    unsigned commas = 0;
    bool quoted = false;
    for (char ch : csv) {
        if (ch == '"')
            quoted = !quoted;
        else if (ch == ',' && !quoted)
            ++commas;
    }
    EXPECT_EQ(commas, 5u);
    EXPECT_NE(csv.find("\"odd,name\""), std::string::npos);
    EXPECT_NE(csv.find("\"s3, table 2\""), std::string::npos);
}
