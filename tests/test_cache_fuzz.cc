/**
 * @file
 * Differential fuzz test of the non-blocking cache.
 *
 * A deliberately naive oracle re-implements the timing contract of
 * docs/MODEL.md from scratch (direct-mapped tags as a plain array, a
 * list of in-flight fetches, no shared code with core/), and random
 * access streams are driven through both. Outcome kind, issue cycle,
 * data-ready cycle and the aggregate counters must match exactly for
 * the unrestricted and hit-under-miss configurations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "core/nonblocking_cache.hh"
#include "util/rng.hh"

using namespace nbl;
using namespace nbl::core;

namespace
{

constexpr unsigned kPenalty = 16;
constexpr uint64_t kCacheBytes = 1024; // 32 sets: conflicts likely
constexpr uint64_t kLine = 32;
constexpr uint64_t kSets = kCacheBytes / kLine;

/** Independent re-implementation of the model for one configuration. */
class Oracle
{
  public:
    explicit Oracle(int max_misses) : max_misses_(max_misses)
    {
        tags_.assign(kSets, 0);
        valid_.assign(kSets, false);
    }

    struct Out
    {
        uint64_t issue;
        uint64_t ready;
        int kind; // 0 hit, 1 primary, 2 secondary
        bool stalled;
    };

    Out
    load(uint64_t addr, uint64_t now)
    {
        drain(now);
        uint64_t t = now;
        bool stalled = false;
        uint64_t blk = addr & ~(kLine - 1);
        uint64_t set = (addr / kLine) % kSets;
        for (;;) {
            if (valid_[set] && tags_[set] == blk)
                return {t, t + 1, 0, stalled};

            // The whole-cache miss cap applies to merges and new
            // fetches alike: wait for the oldest fetch.
            if (max_misses_ >= 0 && misses_ >= unsigned(max_misses_)) {
                stalled = true;
                t = fetches_.front().done;
                drain(t);
                continue;
            }

            // Outstanding fetch for this block: merge.
            Fetch *open = nullptr;
            for (Fetch &f : fetches_) {
                if (f.blk == blk)
                    open = &f;
            }
            if (open) {
                ++open->dests;
                ++misses_;
                ++sec_;
                return {t, open->done, 2, stalled};
            }

            Fetch f;
            f.blk = blk;
            f.set = set;
            f.done = t + 1 + kPenalty;
            f.dests = 1;
            fetches_.push_back(f);
            ++misses_;
            ++prim_;
            return {t, f.done, 1, stalled};
        }
    }

    uint64_t primaries() const { return prim_; }
    uint64_t secondaries() const { return sec_; }

  private:
    struct Fetch
    {
        uint64_t blk, set, done;
        unsigned dests;
    };

    void
    drain(uint64_t now)
    {
        while (!fetches_.empty() && fetches_.front().done <= now) {
            const Fetch &f = fetches_.front();
            tags_[f.set] = f.blk;
            valid_[f.set] = true;
            misses_ -= f.dests;
            fetches_.pop_front();
        }
    }

    int max_misses_;
    std::vector<uint64_t> tags_;
    std::vector<bool> valid_;
    std::deque<Fetch> fetches_;
    unsigned misses_ = 0;
    uint64_t prim_ = 0, sec_ = 0;
};

} // namespace

class CacheFuzz
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheFuzz, MatchesOracle)
{
    auto [seed, max_misses] = GetParam();

    MshrPolicy policy;
    if (max_misses < 0) {
        policy = makePolicy(ConfigName::NoRestrict);
    } else {
        policy = makePolicy(ConfigName::Mc1);
        policy.maxMisses = max_misses;
    }
    NonblockingCache cache(mem::CacheGeometry(kCacheBytes, kLine, 1),
                           policy, mem::MainMemory());
    Oracle oracle(max_misses);

    Rng rng(uint64_t(seed) * 2654435761u + 7);
    uint64_t now = 0;
    unsigned dest = 1;
    for (int i = 0; i < 4000; ++i) {
        // Small footprint so hits, conflicts, merges and stalls all
        // occur; bursty timing so fetches overlap.
        uint64_t addr = 0x100000 + rng.below(64) * kLine / 2 +
                        rng.below(4) * 8;
        now += rng.below(3); // 0-2 cycles between accesses

        auto got = cache.load(addr, 8, now, dest);
        auto want = oracle.load(addr, now);
        dest = 1 + (dest % 50);

        ASSERT_EQ(got.issueCycle, want.issue)
            << "access " << i << " seed " << seed;
        ASSERT_EQ(got.dataReady, want.ready)
            << "access " << i << " seed " << seed;
        ASSERT_EQ(int(got.kind), want.kind)
            << "access " << i << " seed " << seed;
        ASSERT_EQ(got.structStalled, want.stalled)
            << "access " << i << " seed " << seed;

        // The CPU would never issue before the previous access's
        // issue resolved; keep time monotone like the real machine.
        now = std::max(now, got.issueCycle);
    }

    EXPECT_EQ(cache.stats().primaryMisses, oracle.primaries());
    EXPECT_EQ(cache.stats().secondaryMisses, oracle.secondaries());
}

INSTANTIATE_TEST_SUITE_P(
    Streams, CacheFuzz,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values(-1, 1, 2, 4)),
    [](const auto &info) {
        int mm = std::get<1>(info.param);
        return "seed" + std::to_string(std::get<0>(info.param)) +
               (mm < 0 ? "_unrestricted" : "_mc" + std::to_string(mm));
    });
