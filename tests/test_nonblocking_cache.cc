/**
 * @file
 * Unit tests for the lockup-free cache: hit/miss timing, miss
 * classification (primary / secondary / structural stall), the named
 * restriction policies, blocking modes, and store handling.
 *
 * The baseline system throughout: 8 KB direct-mapped, 32 B lines,
 * pipelined memory (16-cycle penalty), matching the paper. A load at
 * cycle t hits at t+1; a primary miss's data arrives at t+1+16.
 */

#include <gtest/gtest.h>

#include "core/nonblocking_cache.hh"

using namespace nbl::core;
using nbl::mem::CacheGeometry;
using nbl::mem::MainMemory;

namespace
{

NonblockingCache
makeCache(ConfigName cfg)
{
    return NonblockingCache(CacheGeometry(8 * 1024, 32, 1),
                            makePolicy(cfg), MainMemory());
}

constexpr uint64_t kA = 0x100000; // set 0
constexpr uint64_t kB = 0x200040; // a different set
constexpr uint64_t kC = 0x300080;
constexpr uint64_t kConflictA = 0x100000 + 8 * 1024; // same set as kA

} // namespace

TEST(Cache, PrimaryMissThenHitTiming)
{
    auto c = makeCache(ConfigName::NoRestrict);
    auto miss = c.load(kA, 8, 100, 1);
    EXPECT_EQ(miss.kind, AccessKind::Primary);
    EXPECT_EQ(miss.issueCycle, 100u);
    EXPECT_EQ(miss.dataReady, 117u); // t + 1 + 16
    EXPECT_EQ(miss.procFreeAt, 101u); // lockup-free: continue at once
    EXPECT_FALSE(miss.structStalled);

    // Before the fill the line is not present, after it is.
    auto hit = c.load(kA + 8, 8, 200, 2);
    EXPECT_EQ(hit.kind, AccessKind::Hit);
    EXPECT_EQ(hit.dataReady, 201u);
    EXPECT_EQ(c.stats().loadHits, 1u);
    EXPECT_EQ(c.stats().primaryMisses, 1u);
}

TEST(Cache, SecondaryMissMergesIntoFetch)
{
    auto c = makeCache(ConfigName::NoRestrict);
    auto first = c.load(kA, 8, 100, 1);
    auto second = c.load(kA + 8, 8, 103, 2);
    EXPECT_EQ(second.kind, AccessKind::Secondary);
    EXPECT_EQ(second.issueCycle, 103u);
    // Both destinations fill when the block arrives.
    EXPECT_EQ(second.dataReady, first.dataReady);
    EXPECT_EQ(c.stats().fetches, 1u); // one fetch served both
    EXPECT_EQ(c.stats().secondaryMisses, 1u);
}

TEST(Cache, Mc1SecondMissStallsUntilFill)
{
    auto c = makeCache(ConfigName::Mc1);
    c.load(kA, 8, 100, 1); // miss in flight, fills at 117
    // A miss to a *different* block stalls (structural), then retries
    // and becomes a primary miss.
    auto out = c.load(kB, 8, 102, 2);
    EXPECT_TRUE(out.structStalled);
    EXPECT_EQ(out.issueCycle, 117u);
    EXPECT_EQ(out.kind, AccessKind::Primary);
    EXPECT_EQ(out.dataReady, 117u + 17u);
    EXPECT_EQ(c.stats().structStallMisses, 1u);
    EXPECT_EQ(c.stats().structStallCycles, 15u);
}

TEST(Cache, Mc1SameBlockSecondMissRetriesToHit)
{
    auto c = makeCache(ConfigName::Mc1);
    c.load(kA, 8, 100, 1);
    // Same block: after the stall the line is present -> hit.
    auto out = c.load(kA + 16, 8, 101, 2);
    EXPECT_TRUE(out.structStalled);
    EXPECT_EQ(out.issueCycle, 117u);
    EXPECT_EQ(out.kind, AccessKind::Hit);
    EXPECT_EQ(out.dataReady, 118u);
    // Counted as a structural-stall miss, not a hit.
    EXPECT_EQ(c.stats().loadHits, 0u);
}

TEST(Cache, Mc2AllowsTwoMissesAnywhere)
{
    auto c = makeCache(ConfigName::Mc2);
    c.load(kA, 8, 100, 1);
    auto two = c.load(kB, 8, 101, 2); // second primary: fine
    EXPECT_FALSE(two.structStalled);
    EXPECT_EQ(two.kind, AccessKind::Primary);
    auto three = c.load(kC, 8, 102, 3); // third stalls
    EXPECT_TRUE(three.structStalled);
    EXPECT_EQ(three.issueCycle, 117u); // oldest miss freed
}

TEST(Cache, Mc2MergesSecondMissIntoSameBlock)
{
    // "two in-flight misses, one or both of which can be primary".
    auto c = makeCache(ConfigName::Mc2);
    c.load(kA, 8, 100, 1);
    auto sec = c.load(kA + 8, 8, 101, 2);
    EXPECT_EQ(sec.kind, AccessKind::Secondary);
    EXPECT_FALSE(sec.structStalled);
    EXPECT_EQ(c.stats().fetches, 1u);
    // But a third miss stalls even though only one fetch is out.
    auto third = c.load(kB, 8, 102, 3);
    EXPECT_TRUE(third.structStalled);
}

TEST(Cache, Fc1UnlimitedSecondariesOneFetch)
{
    auto c = makeCache(ConfigName::Fc1);
    c.load(kA, 8, 100, 1);
    for (unsigned i = 1; i < 4; ++i) {
        auto out = c.load(kA + 8 * i, 8, 100 + i, 10 + i);
        EXPECT_EQ(out.kind, AccessKind::Secondary) << i;
        EXPECT_FALSE(out.structStalled);
    }
    // A second *fetch* stalls.
    auto other = c.load(kB, 8, 110, 2);
    EXPECT_TRUE(other.structStalled);
    EXPECT_EQ(other.issueCycle, 117u);
}

TEST(Cache, Fs1OneFetchPerSet)
{
    auto c = makeCache(ConfigName::Fs1);
    c.load(kA, 8, 100, 1);
    // Different set: no restriction.
    auto other_set = c.load(kB, 8, 101, 2);
    EXPECT_FALSE(other_set.structStalled);
    // Same set, different block: must wait for the in-flight fetch.
    auto conflict = c.load(kConflictA, 8, 102, 3);
    EXPECT_TRUE(conflict.structStalled);
    EXPECT_EQ(conflict.issueCycle, 117u);
    EXPECT_EQ(conflict.kind, AccessKind::Primary);
}

TEST(Cache, Fs2TwoFetchesPerSet)
{
    auto c = makeCache(ConfigName::Fs2);
    c.load(kA, 8, 100, 1);
    auto second = c.load(kConflictA, 8, 101, 2);
    EXPECT_FALSE(second.structStalled);
    auto third = c.load(kA + 16 * 1024, 8, 102, 3); // same set again
    EXPECT_TRUE(third.structStalled);
}

TEST(Cache, OverlappingFetchesToSameSetEvictEachOther)
{
    auto c = makeCache(ConfigName::NoRestrict);
    c.load(kA, 8, 100, 1);          // fills at 117
    c.load(kConflictA, 8, 101, 2);  // fills at 118, evicts kA's line
    c.expireUpTo(120);
    EXPECT_TRUE(c.tags().present(kConflictA));
    EXPECT_FALSE(c.tags().present(kA));
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, BlockingLoadStallsProcessor)
{
    auto c = makeCache(ConfigName::Mc0);
    auto out = c.load(kA, 8, 100, 1);
    EXPECT_EQ(out.kind, AccessKind::Primary);
    EXPECT_EQ(out.dataReady, 117u);
    EXPECT_EQ(out.procFreeAt, 117u); // lockup: processor waits
    // The line is filled: an immediate re-access hits.
    auto hit = c.load(kA + 8, 8, 117, 2);
    EXPECT_EQ(hit.kind, AccessKind::Hit);
}

TEST(Cache, WriteAroundStoreNeverStallsOrAllocates)
{
    for (auto cfg : {ConfigName::Mc0, ConfigName::Mc1,
                     ConfigName::NoRestrict}) {
        auto c = makeCache(cfg);
        auto out = c.store(kA, 8, 100);
        EXPECT_EQ(out.procFreeAt, 101u) << configLabel(cfg);
        EXPECT_FALSE(c.tags().present(kA)) << configLabel(cfg);
        EXPECT_EQ(c.stats().storeMisses, 1u) << configLabel(cfg);
        EXPECT_EQ(c.stats().fetches, 0u) << configLabel(cfg);
    }
}

TEST(Cache, WriteMissAllocateStallsAndFills)
{
    auto c = makeCache(ConfigName::Mc0Wma);
    auto out = c.store(kA, 8, 100);
    EXPECT_EQ(out.procFreeAt, 117u); // fetch-on-write stall
    EXPECT_TRUE(c.tags().present(kA));
    auto hit = c.store(kA + 8, 8, 120);
    EXPECT_EQ(hit.procFreeAt, 121u);
    EXPECT_EQ(c.stats().storeHits, 1u);
}

TEST(Cache, StoreHitIsOneCycleEverywhere)
{
    auto c = makeCache(ConfigName::Mc1);
    c.load(kA, 8, 100, 1);
    c.expireUpTo(200);
    auto out = c.store(kA + 8, 8, 200);
    EXPECT_EQ(out.kind, AccessKind::Hit);
    EXPECT_EQ(out.procFreeAt, 201u);
    EXPECT_EQ(c.writeBuffer().stats().writes, 1u);
}

TEST(Cache, StoreToInflightBlockWritesAround)
{
    auto c = makeCache(ConfigName::Fc1);
    c.load(kA, 8, 100, 1);
    auto out = c.store(kA + 8, 8, 105); // block in transit
    EXPECT_EQ(out.procFreeAt, 106u);    // no interaction, no stall
    EXPECT_EQ(c.stats().secondaryMisses, 0u);
}

TEST(Cache, InvertedTracksDestinations)
{
    auto c = makeCache(ConfigName::NoRestrict);
    for (unsigned d = 0; d < 8; ++d)
        c.load(kA + 0x1000 * d, 8, 100 + d, d);
    EXPECT_EQ(c.maxInflightMisses(), 8u);
    EXPECT_EQ(c.maxInflightFetches(), 8u);
    uint64_t last = c.drainAll();
    EXPECT_EQ(last, 107u + 17u);
}

TEST(Cache, FlightTrackerSeesMergedMisses)
{
    auto c = makeCache(ConfigName::NoRestrict);
    c.load(kA, 8, 100, 1);
    c.load(kA + 8, 8, 101, 2); // secondary
    c.drainAll();
    c.finalizeTracker(200);
    EXPECT_EQ(c.tracker().misses.maxSeen(), 2u);
    EXPECT_EQ(c.tracker().fetches.maxSeen(), 1u);
    // Fetch in flight from 100 to 117.
    EXPECT_EQ(c.tracker().fetches.cyclesAbove0(), 17u);
}

TEST(Cache, MissRateAccounting)
{
    auto c = makeCache(ConfigName::NoRestrict);
    c.load(kA, 8, 100, 1);      // primary
    c.load(kA + 8, 8, 101, 2);  // secondary
    c.load(kB, 8, 200, 1);      // primary (kA long since filled)
    c.expireUpTo(300);
    c.load(kB, 8, 300, 2);      // hit
    EXPECT_DOUBLE_EQ(c.stats().loadMissRate(), 3.0 / 4.0);
    EXPECT_DOUBLE_EQ(c.stats().secondaryMissRate(), 1.0 / 4.0);
}

TEST(Cache, SixteenByteLinesUseFourteenCyclePenalty)
{
    NonblockingCache c(CacheGeometry(8 * 1024, 16, 1),
                       makePolicy(ConfigName::NoRestrict),
                       MainMemory());
    EXPECT_EQ(c.missPenalty(), 14u);
    auto out = c.load(kA, 8, 100, 1);
    EXPECT_EQ(out.dataReady, 100u + 1 + 14);
}

TEST(CacheDeathTest, NonBlockingZeroMshrsIsFatal)
{
    MshrPolicy p;
    p.numMshrs = 0;
    EXPECT_EXIT(NonblockingCache(CacheGeometry(8192, 32, 1), p,
                                 MainMemory()),
                ::testing::ExitedWithCode(1), "");
}

TEST(Cache, FsLimitFreesAtExactlyTheCompletionCycle)
{
    // fs=2 boundary: with two same-set fetches in flight (completing
    // at 117 and 118), a third same-set miss at 116 stalls to exactly
    // 117 -- and an identical miss arriving at 117 allocates with no
    // stall at all, because the per-set slot frees on the completion
    // cycle itself, not one cycle later.
    {
        auto c = makeCache(ConfigName::Fs2);
        c.load(kA, 8, 100, 1);            // completes at 117
        c.load(kConflictA, 8, 101, 2);    // completes at 118
        auto third = c.load(kA + 16 * 1024, 8, 116, 3);
        EXPECT_TRUE(third.structStalled);
        EXPECT_EQ(third.issueCycle, 117u);
        EXPECT_EQ(third.kind, AccessKind::Primary);
    }
    {
        auto c = makeCache(ConfigName::Fs2);
        c.load(kA, 8, 100, 1);
        c.load(kConflictA, 8, 101, 2);
        auto third = c.load(kA + 16 * 1024, 8, 117, 3);
        EXPECT_FALSE(third.structStalled);
        EXPECT_EQ(third.issueCycle, 117u);
    }
}

TEST(Cache, SameLineArrivalOnTheCompletionCycleIsAHit)
{
    // A fetch completing at cycle C is visible to an access *at* C:
    // one cycle earlier the access still merges as a secondary miss.
    {
        auto c = makeCache(ConfigName::NoRestrict);
        c.load(kA, 8, 100, 1); // completes at 117
        auto late = c.load(kA + 8, 8, 116, 2);
        EXPECT_EQ(late.kind, AccessKind::Secondary);
        EXPECT_EQ(late.dataReady, 117u);
    }
    {
        auto c = makeCache(ConfigName::NoRestrict);
        c.load(kA, 8, 100, 1);
        auto at = c.load(kA + 8, 8, 117, 2);
        EXPECT_EQ(at.kind, AccessKind::Hit);
        EXPECT_EQ(at.dataReady, 118u);
        EXPECT_EQ(c.stats().secondaryMisses, 0u);
    }
}
