/**
 * @file
 * Unit tests for the section-2 hardware cost model. The expected
 * numbers are the paper's own arithmetic. (Note: the paper prints the
 * 2x2 hybrid as "44+(4x16)=106"; 44 + 64 is 108 -- the formula is
 * reproduced, the paper's addition slip is not.)
 */

#include <gtest/gtest.h>

#include "core/mshr_cost.hh"

using namespace nbl::core;

namespace
{
const CostParams params; // 48-bit PA, 32 B lines, 6+5 bit fields
}

TEST(MshrCost, AddressFieldWidths)
{
    EXPECT_EQ(addrInBlockBits(params), 5u);        // 32-byte line
    EXPECT_EQ(blockRequestAddrBits(params), 43u);  // 48 - 5
    EXPECT_EQ(implicitFieldBits(params), 12u);     // 1 + 6 + 5
}

TEST(MshrCost, PaperBasicImplicitMshr92Bits)
{
    // Section 2.1: (4 x 12) + 44 = 92 bits for four 8-byte words.
    MshrCost c = implicitMshrCost(params, 4);
    EXPECT_EQ(c.storageBits, 92u);
    EXPECT_EQ(c.comparators, 1u);
    EXPECT_EQ(c.comparatorBits, 43u);
}

TEST(MshrCost, PaperImplicit8SubBlocks140Bits)
{
    // Section 2.2: doubling the word records to 32-bit granularity:
    // 8 x 12 = 96, total 140 bits.
    EXPECT_EQ(implicitMshrCost(params, 8).storageBits, 140u);
}

TEST(MshrCost, PaperExplicit4Fields112Bits)
{
    // Section 2.2: (4 x 17) + 44 = 112 bits.
    EXPECT_EQ(hybridFieldBits(params, 1, 4), 17u);
    EXPECT_EQ(explicitMshrCost(params, 4).storageBits, 112u);
}

TEST(MshrCost, PaperHybrid2x2)
{
    // Section 4.1: per-field cost drops to 16 bits because one
    // address bit is implied by the sub-block position.
    EXPECT_EQ(hybridFieldBits(params, 2, 2), 16u);
    EXPECT_EQ(hybridMshrCost(params, 2, 2).storageBits, 44u + 4 * 16);
}

TEST(MshrCost, PositionalFieldsCarryNoAddress)
{
    // A hybrid with one miss per sub-block is purely implicit.
    EXPECT_EQ(hybridFieldBits(params, 4, 1), 12u);
    EXPECT_EQ(hybridMshrCost(params, 4, 1).storageBits,
              implicitMshrCost(params, 4).storageBits);
}

TEST(MshrCost, InvertedMshrScalesWithDestinations)
{
    MshrCost c = invertedMshrCost(params);
    // Per entry: 1 valid + 43 address + 5 format + 5 addr-in-block.
    EXPECT_EQ(c.storageBits, 65u * 54u);
    EXPECT_EQ(c.comparators, 65u); // one comparator per entry
    CostParams wide = params;
    wide.numDests = 75; // "between 65 and 75 entries"
    EXPECT_EQ(invertedMshrCost(wide).storageBits, 75u * 54u);
}

TEST(MshrCost, InCacheStorageIsOneTransitBitPerLine)
{
    MshrCost c = inCacheMshrCost(params, 256); // 8KB / 32B lines
    EXPECT_EQ(c.extraCacheBits, 256u);
    EXPECT_EQ(c.storageBits, 0u);
    EXPECT_EQ(c.totalBits(), 256u);
    // Section 2.3: for very large caches the transit bits may exceed
    // a discrete MSHR file.
    MshrCost big = inCacheMshrCost(params, 4 * 1024 * 1024 / 32);
    EXPECT_GT(big.totalBits(), implicitMshrCost(params, 8).storageBits);
}

TEST(MshrCost, BlockingCacheCostsNothing)
{
    MshrPolicy p = makePolicy(ConfigName::Mc0);
    EXPECT_EQ(policyCost(params, p).totalBits(), 0u);
    EXPECT_EQ(policyCost(params, makePolicy(ConfigName::Mc0Wma))
                  .totalBits(),
              0u);
}

TEST(MshrCost, PolicyCostOrdering)
{
    // More capability must never cost fewer bits.
    auto bits = [&](ConfigName c) {
        return policyCost(params, makePolicy(c)).totalBits();
    };
    EXPECT_LT(bits(ConfigName::Mc0), bits(ConfigName::Mc1));
    EXPECT_LE(bits(ConfigName::Mc1), bits(ConfigName::Mc2));
    EXPECT_LE(bits(ConfigName::Fc1), bits(ConfigName::Fc2));
    EXPECT_GT(bits(ConfigName::NoRestrict), bits(ConfigName::Mc2));
}

TEST(MshrCost, LineSizeChangesAddressSplit)
{
    CostParams p16 = params;
    p16.lineBytes = 16;
    EXPECT_EQ(addrInBlockBits(p16), 4u);
    EXPECT_EQ(blockRequestAddrBits(p16), 44u);
    // Figure 17's system: fewer words per line, smaller MSHRs.
    EXPECT_LT(implicitMshrCost(p16, 2).storageBits,
              implicitMshrCost(params, 4).storageBits);
}
