/**
 * @file
 * Unit tests for the MSHR file: whole-cache restrictions (number of
 * fetches, misses, fetches per set) and completion ordering.
 */

#include <gtest/gtest.h>

#include "core/mshr_file.hh"

using namespace nbl::core;

namespace
{

MshrPolicy
filePolicy(int num_mshrs, int max_misses = -1, int per_set = -1)
{
    MshrPolicy p;
    p.numMshrs = num_mshrs;
    p.maxMisses = max_misses;
    p.fetchesPerSet = per_set;
    p.missesPerSubBlock = -1;
    return p;
}

} // namespace

TEST(MshrFile, FindBlock)
{
    MshrFile f(filePolicy(-1), 32);
    f.allocate(0x1000, 1, 17);
    f.allocate(0x2000, 2, 18);
    EXPECT_NE(f.findBlock(0x1000), nullptr);
    EXPECT_NE(f.findBlock(0x2000), nullptr);
    EXPECT_EQ(f.findBlock(0x3000), nullptr);
    EXPECT_EQ(f.findBlock(0x1000)->setIndex(), 1u);
}

TEST(MshrFile, FetchCountLimit)
{
    MshrFile f(filePolicy(2), 32);
    EXPECT_TRUE(f.canAllocate(0));
    f.allocate(0x1000, 0, 17);
    EXPECT_TRUE(f.canAllocate(1));
    f.allocate(0x2000, 1, 18);
    EXPECT_FALSE(f.canAllocate(2));
    // The oldest fetch frees the slot.
    EXPECT_EQ(f.allocFreeCycle(2), 17u);
}

TEST(MshrFile, PerSetLimit)
{
    MshrFile f(filePolicy(-1, -1, 1), 32); // fs=1
    f.allocate(0x1000, 5, 17);
    EXPECT_FALSE(f.canAllocate(5));
    EXPECT_TRUE(f.canAllocate(6));
    f.allocate(0x2000, 6, 18);
    // The blocking fetch for set 5 completes at 17.
    EXPECT_EQ(f.allocFreeCycle(5), 17u);
}

TEST(MshrFile, PerSetLimitOfTwo)
{
    MshrFile f(filePolicy(-1, -1, 2), 32); // fs=2
    f.allocate(0x1000, 5, 17);
    EXPECT_TRUE(f.canAllocate(5));
    f.allocate(0x3000, 5, 18);
    EXPECT_FALSE(f.canAllocate(5));
    EXPECT_EQ(f.allocFreeCycle(5), 17u); // oldest in the set
}

TEST(MshrFile, MissCapIndependentOfFetches)
{
    // mc=2: two misses total, however they spread over blocks.
    MshrFile f(filePolicy(-1, 2), 32);
    EXPECT_TRUE(f.canAddMiss());
    Mshr &a = f.allocate(0x1000, 0, 17);
    a.addDest(1, 0, 8);
    f.noteMissAdded();
    EXPECT_TRUE(f.canAddMiss());
    a.addDest(2, 8, 8); // second miss merged into the same fetch
    f.noteMissAdded();
    EXPECT_FALSE(f.canAddMiss());
    EXPECT_EQ(f.missFreeCycle(), 17u);
    EXPECT_EQ(f.activeMisses(), 2u);
}

TEST(MshrFile, PopCompletedInOrder)
{
    MshrFile f(filePolicy(-1), 32);
    f.allocate(0x1000, 0, 17);
    f.allocate(0x2000, 1, 18);
    f.allocate(0x3000, 2, 19);
    EXPECT_FALSE(f.popCompleted(16).has_value());
    auto first = f.popCompleted(18);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->blockAddr(), 0x1000u);
    auto second = f.popCompleted(18);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->blockAddr(), 0x2000u);
    EXPECT_FALSE(f.popCompleted(18).has_value());
    EXPECT_EQ(f.activeFetches(), 1u);
}

TEST(MshrFile, PopReleasesPerSetSlot)
{
    MshrFile f(filePolicy(-1, -1, 1), 32);
    f.allocate(0x1000, 5, 17);
    EXPECT_FALSE(f.canAllocate(5));
    (void)f.popCompleted(17);
    EXPECT_TRUE(f.canAllocate(5));
}

TEST(MshrFile, PopReleasesMissSlots)
{
    MshrFile f(filePolicy(-1, 1), 32); // mc=1
    Mshr &a = f.allocate(0x1000, 0, 17);
    a.addDest(1, 0, 8);
    f.noteMissAdded();
    EXPECT_FALSE(f.canAddMiss());
    (void)f.popCompleted(17);
    EXPECT_TRUE(f.canAddMiss());
    EXPECT_EQ(f.activeMisses(), 0u);
}

TEST(MshrFile, PeaksTracked)
{
    MshrFile f(filePolicy(-1), 32);
    f.allocate(0x1000, 0, 17);
    f.allocate(0x2000, 1, 18);
    f.updatePeaks();
    (void)f.popCompleted(18);
    (void)f.popCompleted(18);
    f.updatePeaks();
    EXPECT_EQ(f.maxFetches(), 2u);
}

TEST(MshrFile, NonMonotoneCompletionSortsIntoPlace)
{
    // Hierarchy fills can return out of order (an L2 hit lands before
    // an older L2 miss); the pool keeps completion order.
    MshrFile f(filePolicy(-1), 32);
    f.allocate(0x1000, 0, 20);
    f.allocate(0x2000, 1, 19);
    EXPECT_EQ(f.missFreeCycle(), 19u);
    auto first = f.popCompleted(20);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->blockAddr(), 0x2000u);
    auto second = f.popCompleted(20);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->blockAddr(), 0x1000u);
}

TEST(MshrFile, EqualCompletionKeepsAllocationOrder)
{
    // Insertion is stable: ties (and the all-monotone degenerate
    // chain) pop in allocation order, the historical FIFO.
    MshrFile f(filePolicy(-1), 32);
    f.allocate(0x1000, 0, 17);
    f.allocate(0x2000, 1, 17);
    f.allocate(0x3000, 2, 17);
    auto a = f.popCompleted(17);
    auto b = f.popCompleted(17);
    auto c = f.popCompleted(17);
    ASSERT_TRUE(a && b && c);
    EXPECT_EQ(a->blockAddr(), 0x1000u);
    EXPECT_EQ(b->blockAddr(), 0x2000u);
    EXPECT_EQ(c->blockAddr(), 0x3000u);
}

TEST(MshrFileDeathTest, AllocateWithoutCapacityPanics)
{
    MshrFile f(filePolicy(1), 32);
    f.allocate(0x1000, 0, 17);
    EXPECT_DEATH(f.allocate(0x2000, 1, 18), "capacity");
}
