/**
 * @file
 * Tests for the differential oracle subsystem (src/check/): the
 * seeded program/config generator, the independent blocking reference
 * model, the differential runner itself, and the shrinker with its
 * self-contained repro format.
 */

#include <gtest/gtest.h>

#include "check/differential.hh"
#include "check/generator.hh"
#include "check/reference.hh"
#include "check/shrink.hh"
#include "core/policy.hh"
#include "exec/machine.hh"
#include "harness/experiment.hh"
#include "mem/sparse_memory.hh"
#include "util/rng.hh"

using namespace nbl;
using namespace nbl::check;

namespace
{

/** Policy an ExperimentConfig resolves to (named or custom). */
core::MshrPolicy
resolvedPolicy(const harness::ExperimentConfig &cfg)
{
    return cfg.customPolicy ? *cfg.customPolicy
                            : core::makePolicy(cfg.config);
}

isa::Instr
limm(unsigned reg, int64_t value)
{
    isa::Instr in;
    in.op = isa::Op::LImm;
    in.dst = isa::intReg(reg);
    in.imm = value;
    return in;
}

isa::Instr
load(unsigned dst, unsigned base, int64_t disp)
{
    isa::Instr in;
    in.op = isa::Op::Ld;
    in.dst = isa::intReg(dst);
    in.src1 = isa::intReg(base);
    in.imm = disp;
    in.size = 8;
    return in;
}

isa::Instr
halt()
{
    isa::Instr in;
    in.op = isa::Op::Halt;
    return in;
}

} // namespace

TEST(Generator, ProgramsValidateAndTerminate)
{
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        Rng rng(seed);
        isa::Program prog = generateProgram(rng);
        ASSERT_TRUE(prog.validate(false)) << "seed " << seed;
        ASSERT_GT(prog.size(), 0u);
        EXPECT_EQ(prog.at(prog.size() - 1).op, isa::Op::Halt);

        mem::SparseMemory data;
        exec::MachineConfig mc;
        mc.maxInstructions = 1'000'000;
        exec::RunOutput out = exec::run(prog, data, mc);
        EXPECT_FALSE(out.hitInstructionCap) << "seed " << seed;
        EXPECT_GT(out.cpu.instructions, 0u);
    }
}

TEST(Generator, ProgramsAreDeterministicInTheSeed)
{
    Rng a(77), b(77);
    isa::Program pa = generateProgram(a);
    isa::Program pb = generateProgram(b);
    ASSERT_EQ(pa.size(), pb.size());
    EXPECT_EQ(pa.fingerprint(), pb.fingerprint());
}

TEST(Generator, ConfigSetCoversTheOrganizationSpace)
{
    Rng rng(3);
    std::vector<harness::ExperimentConfig> cfgs = generateConfigs(rng);
    ASSERT_GE(cfgs.size(), 20u);

    unsigned blocking = 0, wma = 0, inverted = 0, file = 0, wa = 0;
    for (const harness::ExperimentConfig &c : cfgs) {
        core::MshrPolicy pol = resolvedPolicy(c);
        switch (pol.mode) {
        case core::CacheMode::Blocking: ++blocking; break;
        case core::CacheMode::BlockingWMA: ++wma; break;
        case core::CacheMode::Inverted: ++inverted; break;
        case core::CacheMode::MshrFile: ++file; break;
        }
        if (pol.storeMode == core::StoreMode::WriteAllocate)
            ++wa;
        // Geometry is shared across the whole set so cross-config
        // monotonicity compares like with like.
        EXPECT_EQ(c.cacheBytes, cfgs[0].cacheBytes);
        EXPECT_EQ(c.lineBytes, cfgs[0].lineBytes);
        EXPECT_EQ(c.missPenalty, cfgs[0].missPenalty);
    }
    EXPECT_GE(blocking, 1u);
    EXPECT_GE(wma, 1u);
    EXPECT_GE(inverted, 1u);
    EXPECT_GE(file, 8u); // mc=/fc=/fs= named + Figure-14 fields.
    EXPECT_GE(wa, 3u);   // The buffered write-allocate variants.
}

/**
 * The independent reference model agrees with the full simulator,
 * counter for counter, on both blocking organizations -- across
 * associativities (including eviction-heavy tiny caches) and both
 * miss-penalty models.
 */
TEST(Reference, ExactOnBlockingConfigsOverManySeeds)
{
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        Rng rng(seed);
        isa::Program prog = generateProgram(rng);
        for (bool wma : {false, true}) {
            harness::ExperimentConfig cfg;
            cfg.cacheBytes = 512;
            cfg.lineBytes = 16;
            cfg.ways = (seed % 3 == 0) ? 0 : unsigned(seed % 3);
            cfg.missPenalty = (seed % 2) ? 0 : 5;
            cfg.config = wma ? core::ConfigName::Mc0Wma
                             : core::ConfigName::Mc0;
            cfg.maxInstructions = 1'000'000;

            mem::SparseMemory data;
            exec::RunOutput out =
                exec::run(prog, data, harness::makeMachineConfig(cfg));

            ReferenceConfig rc;
            rc.cacheBytes = cfg.cacheBytes;
            rc.lineBytes = cfg.lineBytes;
            rc.ways = cfg.ways;
            rc.missPenalty = cfg.missPenalty;
            rc.writeMissAllocate = wma;
            rc.maxInstructions = cfg.maxInstructions;
            mem::SparseMemory rdata;
            ReferenceResult ref = referenceRun(prog, rdata, rc);

            EXPECT_EQ(ref.instructions, out.cpu.instructions);
            EXPECT_EQ(ref.cycles, out.cpu.cycles);
            EXPECT_EQ(ref.depStallCycles, out.cpu.depStallCycles);
            EXPECT_EQ(ref.blockStallCycles, out.cpu.blockStallCycles);
            EXPECT_EQ(ref.loads, out.cache.loads);
            EXPECT_EQ(ref.stores, out.cache.stores);
            EXPECT_EQ(ref.loadHits, out.cache.loadHits);
            EXPECT_EQ(ref.storeHits, out.cache.storeHits);
            EXPECT_EQ(ref.loadPrimaryMisses, out.cache.primaryMisses);
            EXPECT_EQ(ref.storePrimaryMisses,
                      out.cache.storePrimaryMisses);
            EXPECT_EQ(ref.storeMisses, out.cache.storeMisses);
            EXPECT_EQ(ref.fetches, out.cache.fetches);
            EXPECT_EQ(ref.evictions, out.cache.evictions);
            EXPECT_EQ(out.cpu.structStallCycles, 0u);
        }
    }
}

/**
 * End-to-end oracle: a handful of seeds run through every engine and
 * invariant without a divergence. The sample includes the seeds that
 * historically exposed real bugs (9/24/28: the WAW interlock hole;
 * 150: the over-strong trace-replay bound) so a regression in either
 * fix trips this test, not just the long fuzz run.
 */
TEST(Differential, SampledSeedsAreClean)
{
    for (uint64_t seed : {1, 9, 24, 28, 150}) {
        std::vector<Divergence> divs = checkSeed(seed);
        EXPECT_TRUE(divs.empty())
            << "seed " << seed << ": " << divs.front().str();
    }
}

TEST(Shrink, MinimizesProgramAndConfigSet)
{
    // A synthetic failure: the point "fails" iff the program still
    // contains a Mul and some config still has 64-byte lines.
    isa::Program prog("big");
    prog.push(limm(1, 0x1000));
    prog.push(load(8, 1, 0));
    {
        isa::Instr mul;
        mul.op = isa::Op::Mul;
        mul.dst = isa::intReg(9);
        mul.src1 = isa::intReg(8);
        mul.src2 = isa::intReg(8);
        prog.push(mul);
    }
    prog.push(load(10, 1, 64));
    prog.push(limm(11, 3));
    prog.push(halt());

    std::vector<harness::ExperimentConfig> cfgs(3);
    cfgs[0].lineBytes = 16;
    cfgs[1].lineBytes = 64;
    cfgs[2].lineBytes = 32;

    FailPredicate fails =
        [](const isa::Program &p,
           const std::vector<harness::ExperimentConfig> &cs) {
            bool mul = false;
            for (size_t i = 0; i < p.size(); ++i)
                mul |= p.at(i).op == isa::Op::Mul;
            bool wide = false;
            for (const harness::ExperimentConfig &c : cs)
                wide |= c.lineBytes == 64;
            return mul && wide;
        };

    ShrunkCase c = shrinkCase(prog, cfgs, fails);
    ASSERT_EQ(c.cfgs.size(), 1u);
    EXPECT_EQ(c.cfgs[0].lineBytes, 64u);
    // Local minimum: the Mul plus the mandatory trailing Halt.
    ASSERT_EQ(c.program.size(), 2u);
    EXPECT_EQ(c.program.at(0).op, isa::Op::Mul);
    EXPECT_EQ(c.program.at(1).op, isa::Op::Halt);
    EXPECT_TRUE(fails(c.program, c.cfgs));
}

TEST(Shrink, DeletionRemapsBranchTargets)
{
    // fails := "program still loops" (executes > 10 instructions).
    // The shrinker must delete the filler instruction inside the loop
    // and remap the backward branch across the cut, keeping the loop
    // alive.
    isa::Program prog("loop");
    prog.push(limm(5, 1000));      // 0: counter
    prog.push(limm(8, 0));         // 1: filler (deletable)
    {
        isa::Instr dec;            // 2: loop head
        dec.op = isa::Op::AddI;
        dec.dst = dec.src1 = isa::intReg(5);
        dec.imm = -1;
        prog.push(dec);
    }
    {
        isa::Instr bne;            // 3: backward branch to 2
        bne.op = isa::Op::BNe;
        bne.src1 = isa::intReg(5);
        bne.src2 = isa::regZero;
        bne.imm = 2;
        prog.push(bne);
    }
    prog.push(halt());

    FailPredicate fails =
        [](const isa::Program &p,
           const std::vector<harness::ExperimentConfig> &) {
            mem::SparseMemory data;
            exec::MachineConfig mc;
            mc.maxInstructions = 100'000;
            return exec::run(p, data, mc).cpu.instructions > 10;
        };

    ShrunkCase c = shrinkCase(prog, {harness::ExperimentConfig{}},
                              fails);
    EXPECT_TRUE(fails(c.program, c.cfgs));
    EXPECT_LT(c.program.size(), prog.size());
}

TEST(Shrink, ReproFormatRoundTrips)
{
    Rng rng(42);
    ShrunkCase c;
    c.program = generateProgram(rng);
    c.cfgs = generateConfigs(rng);

    std::string text = formatRepro(c);
    ShrunkCase back;
    ASSERT_TRUE(parseRepro(text, back));

    ASSERT_EQ(back.program.size(), c.program.size());
    for (size_t i = 0; i < c.program.size(); ++i) {
        const isa::Instr &a = c.program.at(i);
        const isa::Instr &b = back.program.at(i);
        EXPECT_EQ(a.op, b.op) << "pc " << i;
        EXPECT_EQ(a.dst.destLinear(), b.dst.destLinear());
        EXPECT_EQ(a.src1.destLinear(), b.src1.destLinear());
        EXPECT_EQ(a.src2.destLinear(), b.src2.destLinear());
        EXPECT_EQ(a.imm, b.imm);
        EXPECT_EQ(a.size, b.size);
    }

    ASSERT_EQ(back.cfgs.size(), c.cfgs.size());
    for (size_t i = 0; i < c.cfgs.size(); ++i) {
        const harness::ExperimentConfig &a = c.cfgs[i];
        const harness::ExperimentConfig &b = back.cfgs[i];
        EXPECT_EQ(a.cacheBytes, b.cacheBytes);
        EXPECT_EQ(a.lineBytes, b.lineBytes);
        EXPECT_EQ(a.ways, b.ways);
        EXPECT_EQ(a.missPenalty, b.missPenalty);
        EXPECT_EQ(a.issueWidth, b.issueWidth);
        EXPECT_EQ(a.fillWritePorts, b.fillWritePorts);
        core::MshrPolicy pa = resolvedPolicy(a);
        core::MshrPolicy pb = resolvedPolicy(b);
        EXPECT_EQ(pa.mode, pb.mode) << "cfg " << i;
        EXPECT_EQ(pa.numMshrs, pb.numMshrs);
        EXPECT_EQ(pa.maxMisses, pb.maxMisses);
        EXPECT_EQ(pa.subBlocks, pb.subBlocks);
        EXPECT_EQ(pa.missesPerSubBlock, pb.missesPerSubBlock);
        EXPECT_EQ(pa.fetchesPerSet, pb.fetchesPerSet);
        EXPECT_EQ(pa.fetchesPerSetTracksWays,
                  pb.fetchesPerSetTracksWays);
        EXPECT_EQ(pa.storeMode, pb.storeMode);
        EXPECT_EQ(pa.fillExtraCycles, pb.fillExtraCycles);
    }
}

TEST(Shrink, ParseRejectsMalformedInput)
{
    ShrunkCase out;
    EXPECT_FALSE(parseRepro("", out));
    EXPECT_FALSE(parseRepro("not-a-repro\n", out));
    EXPECT_FALSE(parseRepro("nbl-fuzz-repro v1\ninstr bogus\n", out));
}
