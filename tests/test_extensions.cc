/**
 * @file
 * Tests for the modeled extensions beyond the paper's baseline:
 * non-blocking write-allocate stores (section 1's buffered
 * fetch-on-write), finite register write ports for fills (the
 * section-6 correction), and the in-cache MSHR fill penalty
 * (section 2.3's read-port observation).
 */

#include <gtest/gtest.h>

#include "core/nonblocking_cache.hh"
#include "harness/experiment.hh"

using namespace nbl;
using namespace nbl::core;
using nbl::mem::CacheGeometry;
using nbl::mem::MainMemory;

namespace
{

constexpr uint64_t kA = 0x100000;
constexpr uint64_t kB = 0x200040;

MshrPolicy
allocStores(ConfigName cfg)
{
    MshrPolicy p = makePolicy(cfg);
    p.storeMode = StoreMode::WriteAllocate;
    return p;
}

} // namespace

TEST(StoreAllocate, StoreMissFetchesWithoutStalling)
{
    NonblockingCache c(CacheGeometry(8192, 32, 1),
                       allocStores(ConfigName::Fc2), MainMemory());
    auto out = c.store(kA, 8, 100);
    EXPECT_EQ(out.kind, AccessKind::Primary);
    EXPECT_EQ(out.procFreeAt, 101u); // processor does not wait
    EXPECT_EQ(c.stats().storePrimaryMisses, 1u);
    EXPECT_EQ(c.stats().fetches, 1u);
    // The line arrives and subsequent accesses hit.
    auto hit = c.load(kA + 8, 8, 200, 1);
    EXPECT_EQ(hit.kind, AccessKind::Hit);
}

TEST(StoreAllocate, StoreMergesIntoInflightLoadFetch)
{
    NonblockingCache c(CacheGeometry(8192, 32, 1),
                       allocStores(ConfigName::Fc2), MainMemory());
    c.load(kA, 8, 100, 1);
    auto out = c.store(kA + 8, 8, 103);
    EXPECT_EQ(out.kind, AccessKind::Secondary);
    EXPECT_EQ(c.stats().storeSecondaryMisses, 1u);
    EXPECT_EQ(c.stats().fetches, 1u); // merged
}

TEST(StoreAllocate, StoresConsumeMissResources)
{
    // Under mc=1 with write-allocate stores, a store miss occupies
    // the single MSHR: a following load miss structurally stalls.
    NonblockingCache c(CacheGeometry(8192, 32, 1),
                       allocStores(ConfigName::Mc1), MainMemory());
    c.store(kA, 8, 100);
    auto out = c.load(kB, 8, 102, 1);
    EXPECT_TRUE(out.structStalled);
    EXPECT_EQ(out.issueCycle, 117u);
}

TEST(StoreAllocate, WriteBufferEntriesAreFinite)
{
    // Nine outstanding store misses need nine write-buffer entries;
    // only eight exist, so the ninth stalls until the first fill.
    NonblockingCache c(CacheGeometry(8192, 32, 1),
                       allocStores(ConfigName::NoRestrict),
                       MainMemory());
    for (unsigned i = 0; i < isa::numWriteBufferDests; ++i) {
        auto out = c.store(kA + 0x1000 * i, 8, 100 + i);
        EXPECT_FALSE(out.structStalled) << i;
    }
    auto ninth = c.store(kA + 0x9000, 8, 110);
    EXPECT_TRUE(ninth.structStalled);
    EXPECT_EQ(ninth.issueCycle, 117u); // first store's fill time
    EXPECT_GE(c.stats().storeStructStalls, 1u);
}

TEST(StoreAllocate, BlockingModesIgnoreStoreMode)
{
    MshrPolicy p = makePolicy(ConfigName::Mc0);
    p.storeMode = StoreMode::WriteAllocate;
    NonblockingCache c(CacheGeometry(8192, 32, 1), p, MainMemory());
    auto out = c.store(kA, 8, 100);
    EXPECT_EQ(out.procFreeAt, 101u); // plain write-around
    EXPECT_FALSE(c.tags().present(kA));
}

TEST(StoreAllocate, EndToEndOrderingPreserved)
{
    // Write-allocate stores must not break the capability ordering.
    harness::Lab lab(0.08);
    double prev = 1e9;
    for (auto cfg : {ConfigName::Mc1, ConfigName::Fc2,
                     ConfigName::NoRestrict}) {
        harness::ExperimentConfig e;
        e.loadLatency = 10;
        e.customPolicy = allocStores(cfg);
        double m = lab.run("tomcatv", e).mcpi();
        EXPECT_LE(m, prev + 1e-9) << configLabel(cfg);
        prev = m;
    }
}

TEST(FillPorts, UnlimitedPortsFillSimultaneously)
{
    NonblockingCache c(CacheGeometry(8192, 32, 1),
                       makePolicy(ConfigName::NoRestrict),
                       MainMemory(), /*fill_write_ports=*/0);
    auto a = c.load(kA, 8, 100, 1);
    auto b = c.load(kA + 8, 8, 101, 2);
    EXPECT_EQ(a.dataReady, b.dataReady); // paper baseline
}

TEST(FillPorts, OnePortStaggersDestinations)
{
    NonblockingCache c(CacheGeometry(8192, 32, 1),
                       makePolicy(ConfigName::NoRestrict),
                       MainMemory(), /*fill_write_ports=*/1);
    auto a = c.load(kA, 8, 100, 1);
    auto b = c.load(kA + 8, 8, 101, 2);
    auto d = c.load(kA + 16, 8, 102, 3);
    EXPECT_EQ(a.dataReady, 117u);
    EXPECT_EQ(b.dataReady, 118u); // second register fills a cycle later
    EXPECT_EQ(d.dataReady, 119u);
}

TEST(FillPorts, TwoPortsFillPairsPerCycle)
{
    NonblockingCache c(CacheGeometry(8192, 32, 1),
                       makePolicy(ConfigName::NoRestrict),
                       MainMemory(), /*fill_write_ports=*/2);
    uint64_t ready[4];
    for (unsigned i = 0; i < 4; ++i)
        ready[i] = c.load(kA + 8 * i, 8, 100 + i, i + 1).dataReady;
    EXPECT_EQ(ready[0], ready[1]);
    EXPECT_EQ(ready[2], ready[3]);
    EXPECT_EQ(ready[2], ready[0] + 1);
}

TEST(FillPorts, FewerPortsNeverFaster)
{
    harness::Lab lab(0.08);
    harness::ExperimentConfig e;
    e.loadLatency = 10;
    e.config = ConfigName::Fc2;
    double unlimited = lab.run("tomcatv", e).mcpi();
    e.fillWritePorts = 1;
    double one = lab.run("tomcatv", e).mcpi();
    EXPECT_GE(one, unlimited);
}

TEST(PerSetLimits, FullyAssociativeCacheHasNoPerSetBinding)
{
    // In-cache MSHR storage allows one pending fetch per cache line;
    // with full associativity any line can be in transit, so fs=1
    // must not serialize independent fetches.
    NonblockingCache c(CacheGeometry(8192, 32, 0),
                       makePolicy(ConfigName::Fs1), MainMemory());
    auto a = c.load(kA, 8, 100, 1);
    auto b = c.load(kB, 8, 101, 2);
    EXPECT_FALSE(a.structStalled);
    EXPECT_FALSE(b.structStalled);
    EXPECT_EQ(c.stats().fetches, 2u);
}

TEST(InCachePenalty, ExtraFillCyclesLengthenMisses)
{
    MshrPolicy p = makePolicy(ConfigName::Fs1);
    p.fillExtraCycles = 3; // e.g. reading a 32B line 8B at a time
    NonblockingCache c(CacheGeometry(8192, 32, 1), p, MainMemory());
    auto out = c.load(kA, 8, 100, 1);
    EXPECT_EQ(out.dataReady, 100u + 1 + 16 + 3);
}

TEST(InCachePenalty, NamedInCacheConfig)
{
    // The named configuration combines one-fetch-per-set with the
    // fill read penalty.
    MshrPolicy p = makePolicy(ConfigName::InCache);
    EXPECT_EQ(p.fetchesPerSet, 1);
    EXPECT_GT(p.fillExtraCycles, 0u);
    EXPECT_STREQ(configLabel(ConfigName::InCache), "in-cache");

    NonblockingCache c(CacheGeometry(8192, 32, 1), p, MainMemory());
    auto out = c.load(kA, 8, 100, 1);
    EXPECT_EQ(out.dataReady, 100u + 1 + 16 + p.fillExtraCycles);
    // And it must never beat plain fs=1.
    harness::Lab lab(0.08);
    harness::ExperimentConfig e;
    e.loadLatency = 10;
    e.config = ConfigName::InCache;
    double incache = lab.run("su2cor", e).mcpi();
    e.config = ConfigName::Fs1;
    double fs1 = lab.run("su2cor", e).mcpi();
    EXPECT_GE(incache, fs1);
}

TEST(InCachePenalty, PerSetCapacityTracksAssociativity)
{
    // Section 4.2: in-cache storage in a set-associative cache can
    // keep one fetch per way in flight.
    NonblockingCache two(CacheGeometry(8192, 32, 2),
                         makePolicy(ConfigName::InCache), MainMemory());
    EXPECT_EQ(two.policy().fetchesPerSet, 2);
    // Two conflicting blocks (same set) fetch concurrently...
    auto a = two.load(kA, 8, 100, 1);
    auto b = two.load(kA + 4096, 8, 101, 2); // same set in 2-way 8KB
    EXPECT_FALSE(a.structStalled);
    EXPECT_FALSE(b.structStalled);
    // ...but a third stalls.
    auto c3 = two.load(kA + 3 * 4096, 8, 102, 3);
    EXPECT_TRUE(c3.structStalled);
}

TEST(InCachePenalty, EndToEndCostOfInCacheStorage)
{
    // fs=1 with the read penalty must be at least as slow as fs=1
    // without it.
    harness::Lab lab(0.08);
    harness::ExperimentConfig e;
    e.loadLatency = 10;
    e.config = ConfigName::Fs1;
    double plain = lab.run("su2cor", e).mcpi();
    MshrPolicy p = makePolicy(ConfigName::Fs1);
    p.fillExtraCycles = 3;
    e.customPolicy = p;
    double taxed = lab.run("su2cor", e).mcpi();
    EXPECT_GE(taxed, plain);
}
