/**
 * @file
 * Property tests over whole-machine simulations: the orderings and
 * identities the paper's results rest on must hold for every workload
 * and latency.
 *
 *  - More miss-handling capability never hurts:
 *    mc0+wma >= mc0 >= mc1 >= mc2 >= inf, mc1 >= fc1 >= fc2 >= inf,
 *    fs1 >= fs2 >= inf (MCPI, within measurement noise of 0).
 *  - The blocking cache's MCPI is exactly (load misses x penalty +
 *    wma store misses x penalty) / instructions and therefore exactly
 *    linear in the penalty (Figure 18's mc=0 row).
 *  - Single-issue cycles decompose exactly into instructions + stall
 *    categories.
 *  - Instruction counts depend on the schedule, never on the cache.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

using namespace nbl;
using namespace nbl::harness;

namespace
{

constexpr double kSmallWorkloadScale = 0.08;

ExperimentResult
runCfg(Lab &lab, const std::string &wl, core::ConfigName cfg, int lat,
       unsigned penalty = 0)
{
    ExperimentConfig e;
    e.config = cfg;
    e.loadLatency = lat;
    e.missPenalty = penalty;
    return lab.run(wl, e);
}

} // namespace

class OrderingProperty
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
  protected:
    static Lab &
    lab()
    {
        static Lab l(kSmallWorkloadScale);
        return l;
    }
};

TEST_P(OrderingProperty, CapabilityNeverHurts)
{
    auto [wl, lat] = GetParam();
    auto mcpi = [&](core::ConfigName c) {
        return runCfg(lab(), wl, c, lat).mcpi();
    };
    double wma = mcpi(core::ConfigName::Mc0Wma);
    double mc0 = mcpi(core::ConfigName::Mc0);
    double mc1 = mcpi(core::ConfigName::Mc1);
    double mc2 = mcpi(core::ConfigName::Mc2);
    double fc1 = mcpi(core::ConfigName::Fc1);
    double fc2 = mcpi(core::ConfigName::Fc2);
    double fs1 = mcpi(core::ConfigName::Fs1);
    double fs2 = mcpi(core::ConfigName::Fs2);
    double inf = mcpi(core::ConfigName::NoRestrict);

    const double eps = 1e-9;
    EXPECT_GE(wma, mc0 - eps);
    EXPECT_GE(mc0, mc1 - eps);
    EXPECT_GE(mc1, mc2 - eps);
    EXPECT_GE(mc2, inf - eps);
    EXPECT_GE(mc1, fc1 - eps);
    EXPECT_GE(fc1, fc2 - eps);
    EXPECT_GE(fc2, inf - eps);
    EXPECT_GE(fs1, fs2 - eps);
    EXPECT_GE(fs2, inf - eps);
}

TEST_P(OrderingProperty, SingleIssueCycleIdentity)
{
    auto [wl, lat] = GetParam();
    for (auto cfg : {core::ConfigName::Mc0, core::ConfigName::Mc1,
                     core::ConfigName::NoRestrict}) {
        auto r = runCfg(lab(), wl, cfg, lat);
        const auto &s = r.run.cpu;
        EXPECT_EQ(s.cycles, s.instructions + s.missStallCycles())
            << wl << " " << core::configLabel(cfg);
    }
}

TEST_P(OrderingProperty, InstructionCountsIndependentOfCache)
{
    auto [wl, lat] = GetParam();
    auto a = runCfg(lab(), wl, core::ConfigName::Mc0, lat);
    auto b = runCfg(lab(), wl, core::ConfigName::NoRestrict, lat);
    EXPECT_EQ(a.run.cpu.instructions, b.run.cpu.instructions);
    EXPECT_EQ(a.run.cpu.loads, b.run.cpu.loads);
    EXPECT_EQ(a.run.cpu.stores, b.run.cpu.stores);
}

TEST_P(OrderingProperty, BlockingMcpiIsMissesTimesPenalty)
{
    auto [wl, lat] = GetParam();
    auto r = runCfg(lab(), wl, core::ConfigName::Mc0, lat);
    const auto &cs = r.run.cache;
    uint64_t expected = (cs.primaryMisses) * r.run.missPenalty;
    EXPECT_EQ(r.run.cpu.missStallCycles(), expected);
}

TEST_P(OrderingProperty, BlockingMcpiLinearInPenalty)
{
    auto [wl, lat] = GetParam();
    auto m8 = runCfg(lab(), wl, core::ConfigName::Mc0, lat, 8);
    auto m32 = runCfg(lab(), wl, core::ConfigName::Mc0, lat, 32);
    // Exactly 4x (identical miss stream: a blocking cache's contents
    // do not depend on the penalty).
    EXPECT_DOUBLE_EQ(m32.mcpi(), 4.0 * m8.mcpi());
}

TEST_P(OrderingProperty, NonBlockingSuperLinearInPenalty)
{
    auto [wl, lat] = GetParam();
    auto m8 = runCfg(lab(), wl, core::ConfigName::NoRestrict, lat, 8);
    auto m64 = runCfg(lab(), wl, core::ConfigName::NoRestrict, lat, 64);
    // Growing the penalty 8x grows non-blocking MCPI by at least 8x
    // (overlap is exhausted; Figure 18), modulo zero-MCPI cases.
    if (m8.mcpi() > 1e-6) {
        EXPECT_GE(m64.mcpi() / m8.mcpi(), 7.0);
    }
}

TEST_P(OrderingProperty, DualIssueNeverSlowerInCycles)
{
    auto [wl, lat] = GetParam();
    ExperimentConfig e;
    e.config = core::ConfigName::Fc2;
    e.loadLatency = lat;
    auto single = lab().run(wl, e);
    e.issueWidth = 2;
    auto dual = lab().run(wl, e);
    EXPECT_LE(dual.run.cpu.cycles, single.run.cpu.cycles);
}

TEST_P(OrderingProperty, PerfectCacheIsALowerBound)
{
    auto [wl, lat] = GetParam();
    ExperimentConfig e;
    e.loadLatency = lat;
    e.perfectCache = true;
    auto ideal = lab().run(wl, e);
    EXPECT_EQ(ideal.run.cpu.cycles, ideal.run.cpu.instructions);
    auto real = runCfg(lab(), wl, core::ConfigName::NoRestrict, lat);
    EXPECT_GE(real.run.cpu.cycles, ideal.run.cpu.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OrderingProperty,
    ::testing::Combine(::testing::Values("doduc", "tomcatv", "su2cor",
                                         "xlisp", "eqntott", "ora",
                                         "compress", "nasa7"),
                       ::testing::Values(1, 10)),
    [](const auto &info) {
        return std::string(std::get<0>(info.param)) + "_lat" +
               std::to_string(std::get<1>(info.param));
    });

TEST(MachineProperties, DeterministicAcrossRuns)
{
    Lab lab(kSmallWorkloadScale);
    auto a = runCfg(lab, "doduc", core::ConfigName::Fc2, 10);
    auto b = runCfg(lab, "doduc", core::ConfigName::Fc2, 10);
    EXPECT_EQ(a.run.cpu.cycles, b.run.cpu.cycles);
    EXPECT_EQ(a.run.cache.primaryMisses, b.run.cache.primaryMisses);
}

TEST(MachineProperties, FullyAssociativeNeverMoreConflicts)
{
    // For xlisp (conflict-dominated), a fully associative cache of
    // the same size must not have more misses (Figures 9 vs 10).
    Lab lab(kSmallWorkloadScale);
    ExperimentConfig dm;
    dm.loadLatency = 10;
    dm.config = core::ConfigName::Mc1;
    auto a = lab.run("xlisp", dm);
    ExperimentConfig fa = dm;
    fa.ways = 0;
    auto b = lab.run("xlisp", fa);
    EXPECT_LT(b.run.cache.primaryMisses, a.run.cache.primaryMisses);
    EXPECT_LT(b.mcpi(), a.mcpi());
}

TEST(MachineProperties, BiggerCacheNeverWorseForStreams)
{
    // Full-size run: cross-repetition reuse is what the bigger cache
    // captures (a single cold sweep looks identical in both).
    Lab lab(1.0);
    ExperimentConfig small;
    small.loadLatency = 10;
    small.config = core::ConfigName::Fc2;
    auto s = lab.run("doduc", small);
    ExperimentConfig big = small;
    big.cacheBytes = 64 * 1024;
    auto b = lab.run("doduc", big);
    EXPECT_LT(b.mcpi(), s.mcpi());
}

TEST(MachineProperties, SecondaryMissesOnlyWithMerging)
{
    Lab lab(kSmallWorkloadScale);
    // mc0 and mc1 cannot merge secondaries by construction.
    for (auto cfg : {core::ConfigName::Mc0, core::ConfigName::Mc1}) {
        auto r = runCfg(lab, "tomcatv", cfg, 10);
        EXPECT_EQ(r.run.cache.secondaryMisses, 0u)
            << core::configLabel(cfg);
    }
    auto inf =
        runCfg(lab, "tomcatv", core::ConfigName::NoRestrict, 10);
    EXPECT_GT(inf.run.cache.secondaryMisses, 0u);
}

TEST(MachineProperties, MaxInflightRespectsPolicy)
{
    Lab lab(kSmallWorkloadScale);
    EXPECT_LE(runCfg(lab, "tomcatv", core::ConfigName::Mc1, 10)
                  .run.maxInflightMisses,
              1u);
    EXPECT_LE(runCfg(lab, "tomcatv", core::ConfigName::Mc2, 10)
                  .run.maxInflightMisses,
              2u);
    EXPECT_LE(runCfg(lab, "tomcatv", core::ConfigName::Fc2, 10)
                  .run.maxInflightFetches,
              2u);
    // Unrestricted tomcatv overlaps deeply.
    EXPECT_GT(runCfg(lab, "tomcatv", core::ConfigName::NoRestrict, 10)
                  .run.maxInflightMisses,
              4u);
}

TEST(MachineProperties, MaxFetchesBoundedByPenalty)
{
    // One load per cycle and a 16-cycle penalty bound the number of
    // concurrent fetches to 16 (the paper notes exactly this).
    Lab lab(kSmallWorkloadScale);
    auto r = runCfg(lab, "tomcatv", core::ConfigName::NoRestrict, 20);
    EXPECT_LE(r.run.maxInflightFetches, 17u);
}
