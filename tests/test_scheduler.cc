/**
 * @file
 * Unit tests for the dependence analysis and the list scheduler --
 * including the property that every schedule respects the dependence
 * graph, checked over randomized bodies.
 */

#include <gtest/gtest.h>

#include "compiler/kernel.hh"
#include "compiler/list_scheduler.hh"
#include "util/rng.hh"

using namespace nbl;
using namespace nbl::compiler;

namespace
{

/** Body: load a; use a; load b; use b  (two independent pairs). */
std::vector<VOp>
twoPairs(uint32_t &id)
{
    KernelBuilder b("k", id);
    b.countedLoop(0, 1);
    VReg p = b.constI(0x1000);
    VReg q = b.constI(0x2000);
    VReg a = b.load(p, 0, 0);
    b.addi(a, 1);
    VReg c = b.load(q, 0, 1);
    b.addi(c, 1);
    return b.take().body;
}

} // namespace

TEST(Deps, RawEdgeCarriesLoadLatency)
{
    uint32_t id = 0;
    auto body = twoPairs(id);
    auto edges = buildDeps(body, 10);
    bool found = false;
    for (const DepEdge &e : edges) {
        if (e.kind == DepKind::Raw && body[e.from].isLoad()) {
            EXPECT_EQ(e.latency, 10u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Deps, WarAndWawOnRedefinition)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 1);
    VReg p = b.constI(0x1000);
    b.load(p, 0, 0);   // reads p
    b.bump(p, 32);     // redefines p: WAR with the load
    b.bump(p, 32);     // WAW+RAW with the first bump
    auto body = b.take().body;
    auto edges = buildDeps(body, 1);
    unsigned war = 0, waw = 0;
    for (const DepEdge &e : edges) {
        war += e.kind == DepKind::War;
        waw += e.kind == DepKind::Waw;
    }
    EXPECT_GE(war, 1u);
    EXPECT_GE(waw, 1u);
}

TEST(Deps, MemoryOrderingWithinSpace)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 1);
    VReg p = b.constI(0x1000);
    VReg v = b.load(p, 0, /*space=*/3);
    b.store(p, 0, v, 3);   // store after load: Mem edge
    b.load(p, 0, 3);       // load after store: Mem edge
    auto body = b.take().body;
    auto edges = buildDeps(body, 1);
    unsigned mem = 0;
    for (const DepEdge &e : edges)
        mem += e.kind == DepKind::Mem;
    EXPECT_GE(mem, 2u);
}

TEST(Deps, DifferentSpacesDoNotOrder)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 1);
    VReg p = b.constI(0x1000);
    VReg q = b.constI(0x2000);
    VReg v = b.load(p, 0, 0);
    b.store(q, 0, v, 1); // different space
    b.load(p, 8, 0);
    auto body = b.take().body;
    for (const DepEdge &e : buildDeps(body, 1)) {
        if (e.kind == DepKind::Mem) {
            // Only the same-space pair may be ordered; here the load
            // at index 2 must not depend on the store at index 1.
            EXPECT_FALSE(body[e.from].isStore() && e.to == 2);
        }
    }
}

TEST(Scheduler, LatencyOneKeepsSourceOrder)
{
    uint32_t id = 0;
    auto body = twoPairs(id);
    auto sched = scheduleBody(body, 1);
    ASSERT_EQ(sched.size(), body.size());
    for (size_t i = 0; i < body.size(); ++i) {
        EXPECT_EQ(sched[i].op, body[i].op) << i;
        EXPECT_EQ(sched[i].dst.id, body[i].dst.id) << i;
    }
}

TEST(Scheduler, LongLatencyHoistsSecondLoadIntoShadow)
{
    uint32_t id = 0;
    auto body = twoPairs(id);
    // Source: ld a, use a, ld b, use b. At latency 10 the use of a is
    // not ready, so ld b fills the shadow.
    auto sched = scheduleBody(body, 10);
    EXPECT_TRUE(sched[0].isLoad());
    EXPECT_TRUE(sched[1].isLoad());
    EXPECT_FALSE(sched[2].isLoad());
}

TEST(Scheduler, LoadUseDistanceGrowsWithLatency)
{
    // A body with one load, its use, and independent filler.
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 1);
    VReg p = b.constI(0x1000);
    VReg a = b.load(p, 0, 0);
    VReg u = b.addi(a, 1); // the use
    for (int i = 0; i < 30; ++i)
        b.addi(b.counter(), i); // independent filler
    auto body = b.take().body;

    auto dist = [&](int lat) {
        auto sched = scheduleBody(body, lat);
        size_t load_at = 0, use_at = 0;
        for (size_t i = 0; i < sched.size(); ++i) {
            if (sched[i].isLoad())
                load_at = i;
            if (sched[i].hasDst() && sched[i].dst.id == u.id)
                use_at = i;
        }
        return use_at - load_at;
    };
    EXPECT_EQ(dist(1), 1u);
    EXPECT_GE(dist(6), 6u);
    EXPECT_GE(dist(20), 20u);
    (void)a;
}

TEST(Scheduler, AggressiveHoistPullsLoadsForward)
{
    uint32_t id = 0;
    KernelBuilder b("k", id);
    b.countedLoop(0, 1);
    VReg p = b.constI(0x1000);
    for (int i = 0; i < 10; ++i)
        b.addi(b.counter(), i); // leading filler
    b.load(p, 0, 0);
    auto body = b.take().body;

    auto plain = scheduleBody(body, 10, false);
    auto hoisted = scheduleBody(body, 10, true);
    auto load_pos = [](const std::vector<VOp> &v) {
        for (size_t i = 0; i < v.size(); ++i)
            if (v[i].isLoad())
                return i;
        return size_t(-1);
    };
    EXPECT_EQ(load_pos(plain), 10u);   // stays behind the filler
    EXPECT_EQ(load_pos(hoisted), 0u);  // jumps to the front
}

TEST(Scheduler, PreservesOpMultiset)
{
    uint32_t id = 0;
    auto body = twoPairs(id);
    auto sched = scheduleBody(body, 20);
    ASSERT_EQ(sched.size(), body.size());
    std::multiset<uint32_t> a, b2;
    for (const VOp &op : body)
        a.insert(op.hasDst() ? op.dst.id : 9999);
    for (const VOp &op : sched)
        b2.insert(op.hasDst() ? op.dst.id : 9999);
    EXPECT_EQ(a, b2);
}

class SchedulerProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(SchedulerProperty, RandomBodiesRespectDependences)
{
    auto [seed, lat] = GetParam();
    Rng rng(uint64_t(seed) * 7919 + 13);

    // Build a random body over a handful of values and two memory
    // spaces; then check every dependence edge points forward in the
    // schedule.
    uint32_t id = 0;
    KernelBuilder b("rand", id);
    b.countedLoop(0, 1);
    VReg base0 = b.constI(0x1000);
    VReg base1 = b.constI(0x2000);
    std::vector<VReg> vals = {b.limm(1), b.limm(2)};
    for (int i = 0; i < 40; ++i) {
        switch (rng.below(5)) {
          case 0:
            vals.push_back(
                b.load(rng.chance(0.5) ? base0 : base1,
                       int64_t(rng.below(8)) * 8, int(rng.below(2))));
            break;
          case 1: {
            VReg a = vals[rng.below(vals.size())];
            VReg c = vals[rng.below(vals.size())];
            if (a.cls == isa::RegClass::Int &&
                c.cls == isa::RegClass::Int)
                vals.push_back(b.add(a, c));
            break;
          }
          case 2: {
            VReg a = vals[rng.below(vals.size())];
            if (a.cls == isa::RegClass::Int)
                vals.push_back(b.addi(a, int64_t(rng.below(100))));
            break;
          }
          case 3: {
            VReg a = vals[rng.below(vals.size())];
            if (a.cls == isa::RegClass::Int) {
                b.store(rng.chance(0.5) ? base0 : base1,
                        int64_t(rng.below(8)) * 8, a,
                        int(rng.below(2)));
            }
            break;
          }
          default:
            b.bump(rng.chance(0.5) ? base0 : base1, 8);
        }
    }
    auto body = b.take().body;

    auto edges = buildDeps(body, lat);
    auto sched = scheduleBody(body, lat);
    ASSERT_EQ(sched.size(), body.size());

    // Identify each source op by pointer-equal fields; map source
    // index -> schedule position via a stable matching.
    std::vector<int> pos(body.size(), -1);
    std::vector<bool> used(sched.size(), false);
    for (size_t i = 0; i < body.size(); ++i) {
        for (size_t j = 0; j < sched.size(); ++j) {
            if (used[j])
                continue;
            const VOp &x = body[i], &y = sched[j];
            if (x.op == y.op && x.dst == y.dst && x.src1 == y.src1 &&
                x.src2 == y.src2 && x.imm == y.imm &&
                x.space == y.space) {
                pos[i] = int(j);
                used[j] = true;
                break;
            }
        }
        ASSERT_GE(pos[i], 0) << "op lost by the scheduler";
    }
    for (const DepEdge &e : edges) {
        EXPECT_LT(pos[e.from], pos[e.to])
            << "dependence violated (seed " << seed << ", lat " << lat
            << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Random, SchedulerProperty,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(1, 6, 20)));
