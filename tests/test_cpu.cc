/**
 * @file
 * Unit tests for the scoreboard and the in-order CPU timing model,
 * including the dual-issue pairing rules of the Figure 19 machine.
 */

#include <gtest/gtest.h>

#include "cpu/cpu.hh"

using namespace nbl;
using namespace nbl::cpu;
using isa::Instr;
using isa::Op;

namespace
{

Instr
alu(unsigned dst, unsigned s1, unsigned s2)
{
    Instr in;
    in.op = Op::Add;
    in.dst = isa::intReg(dst);
    in.src1 = isa::intReg(s1);
    in.src2 = isa::intReg(s2);
    return in;
}

Instr
load(unsigned dst, unsigned base)
{
    Instr in;
    in.op = Op::Ld;
    in.dst = isa::intReg(dst);
    in.src1 = isa::intReg(base);
    in.size = 8;
    return in;
}

Instr
store(unsigned base, unsigned val)
{
    Instr in;
    in.op = Op::St;
    in.src1 = isa::intReg(base);
    in.src2 = isa::intReg(val);
    in.size = 8;
    return in;
}

core::NonblockingCache
baselineCache(core::ConfigName cfg = core::ConfigName::NoRestrict)
{
    return core::NonblockingCache(mem::CacheGeometry(8 * 1024, 32, 1),
                                  core::makePolicy(cfg),
                                  mem::MainMemory());
}

} // namespace

TEST(Scoreboard, RegZeroAlwaysReady)
{
    Scoreboard sb;
    sb.setReady(isa::regZero, 1000);
    EXPECT_EQ(sb.readyAt(isa::regZero), 0u);
}

TEST(Scoreboard, TracksPerRegister)
{
    Scoreboard sb;
    sb.setReady(isa::intReg(5), 42);
    sb.setReady(isa::fpReg(5), 99);
    EXPECT_EQ(sb.readyAt(isa::intReg(5)), 42u);
    EXPECT_EQ(sb.readyAt(isa::fpReg(5)), 99u);
    EXPECT_TRUE(sb.pending(isa::intReg(5), 41));
    EXPECT_FALSE(sb.pending(isa::intReg(5), 42));
}

TEST(Cpu, OneInstructionPerCycle)
{
    Cpu cpu(nullptr, 1, /*perfect=*/true);
    for (int i = 0; i < 10; ++i)
        cpu.onInstr(alu(1, 2, 3), 0, 0);
    cpu.finish();
    EXPECT_EQ(cpu.stats().cycles, 10u);
    EXPECT_EQ(cpu.stats().instructions, 10u);
    EXPECT_DOUBLE_EQ(cpu.stats().mcpi(), 0.0);
}

TEST(Cpu, DependencyStallOnLoadUse)
{
    auto cache = baselineCache();
    Cpu cpu(&cache, 1);
    cpu.onInstr(load(1, 2), 0x100000, 0); // miss: r1 ready at 17
    cpu.onInstr(alu(3, 1, 0), 0, 0);      // uses r1 immediately
    cpu.finish();
    // Load at 0, use stalls from 1 to 17, issues at 17, done 18.
    EXPECT_EQ(cpu.stats().depStallCycles, 16u);
    EXPECT_EQ(cpu.stats().cycles, 18u);
    EXPECT_EQ(cpu.stats().missStallCycles(), 16u);
}

TEST(Cpu, IndependentWorkHidesMissLatency)
{
    auto cache = baselineCache();
    Cpu cpu(&cache, 1);
    cpu.onInstr(load(1, 2), 0x100000, 0);
    for (int i = 0; i < 16; ++i)
        cpu.onInstr(alu(3, 4, 5), 0, 0);
    cpu.onInstr(alu(6, 1, 0), 0, 0); // r1 ready at 17, issues at 17
    cpu.finish();
    EXPECT_EQ(cpu.stats().depStallCycles, 0u);
    EXPECT_EQ(cpu.stats().cycles, 18u);
}

TEST(Cpu, BlockingCacheChargesBlockStall)
{
    auto cache = baselineCache(core::ConfigName::Mc0);
    Cpu cpu(&cache, 1);
    cpu.onInstr(load(1, 2), 0x100000, 0);
    cpu.onInstr(alu(3, 1, 0), 0, 0); // data already there: no dep stall
    cpu.finish();
    EXPECT_EQ(cpu.stats().blockStallCycles, 16u);
    EXPECT_EQ(cpu.stats().depStallCycles, 0u);
    EXPECT_EQ(cpu.stats().cycles, 18u);
}

TEST(Cpu, StructuralStallAccounting)
{
    auto cache = baselineCache(core::ConfigName::Mc1);
    Cpu cpu(&cache, 1);
    cpu.onInstr(load(1, 2), 0x100000, 0);
    cpu.onInstr(load(3, 4), 0x200040, 0); // different line: stalls to 17
    cpu.finish();
    EXPECT_EQ(cpu.stats().structStallCycles, 16u);
}

TEST(Cpu, WawInterlockOnLoads)
{
    auto cache = baselineCache();
    Cpu cpu(&cache, 1);
    cpu.onInstr(load(1, 2), 0x100000, 0); // r1 pending until 17
    cpu.onInstr(load(1, 4), 0x200040, 0); // same dest: must wait
    cpu.finish();
    EXPECT_EQ(cpu.stats().depStallCycles, 16u);
}

TEST(Cpu, StoreWaitsForItsDataRegister)
{
    auto cache = baselineCache();
    Cpu cpu(&cache, 1);
    cpu.onInstr(load(1, 2), 0x100000, 0);
    cpu.onInstr(store(5, 1), 0x300000, 0); // store r1: waits until 17
    cpu.finish();
    EXPECT_EQ(cpu.stats().depStallCycles, 16u);
}

TEST(Cpu, SingleIssueStallIdentity)
{
    // cycles == instructions + all stall categories (single issue).
    auto cache = baselineCache(core::ConfigName::Mc1);
    Cpu cpu(&cache, 1);
    for (int i = 0; i < 50; ++i) {
        cpu.onInstr(load(1 + (i % 8), 2), 0x100000 + i * 4096, 0);
        cpu.onInstr(alu(10, 1 + (i % 8), 0), 0, 0);
        cpu.onInstr(alu(11, 12, 13), 0, 0);
    }
    cpu.finish();
    const auto &s = cpu.stats();
    EXPECT_EQ(s.cycles, s.instructions + s.missStallCycles());
}

TEST(CpuDualIssue, TwoIndependentPerCycle)
{
    Cpu cpu(nullptr, 2, true);
    for (int i = 0; i < 10; ++i)
        cpu.onInstr(alu(1 + (i % 2), 3, 4), 0, 0);
    cpu.finish();
    EXPECT_EQ(cpu.stats().cycles, 5u);
    EXPECT_DOUBLE_EQ(cpu.ipc(), 2.0);
}

TEST(CpuDualIssue, DependentPairSplits)
{
    Cpu cpu(nullptr, 2, true);
    for (int i = 0; i < 10; ++i)
        cpu.onInstr(alu(1, 1, 2), 0, 0); // chain on r1
    cpu.finish();
    EXPECT_EQ(cpu.stats().cycles, 10u);
}

TEST(CpuDualIssue, OneMemoryOpPerCycle)
{
    auto cache = baselineCache();
    Cpu cpu(&cache, 2);
    // Warm two lines so everything hits.
    cpu.onInstr(load(1, 0), 0x100000, 0);
    cpu.onInstr(load(2, 0), 0x200040, 0);
    cpu.finish();
    // Two loads cannot pair: 2 cycles even though independent.
    EXPECT_GE(cpu.stats().cycles, 2u);
    EXPECT_GT(cpu.stats().pairLostSlots, 0u);
}

TEST(CpuDualIssue, MixedPairsBeatSingleIssue)
{
    auto cache = baselineCache();
    Cpu cpu(&cache, 2);
    // One cold miss up front; afterwards load+ALU pairs (rotating
    // destinations so the WAW interlock stays out of the way) should
    // sustain nearly 2 IPC.
    for (int i = 0; i < 40; ++i) {
        cpu.onInstr(load(1 + (i % 8), 0), 0x100000, 0);
        cpu.onInstr(alu(10, 11, 12), 0, 0);
    }
    cpu.finish();
    // 80 instructions; single issue would need >= 80 cycles plus the
    // miss; pairing must do clearly better.
    EXPECT_LT(cpu.stats().cycles, 70u);
    EXPECT_GT(cpu.ipc(), 1.3);
}

TEST(CpuQuadIssue, FourIndependentPerCycle)
{
    Cpu cpu(nullptr, 4, true);
    for (int i = 0; i < 16; ++i)
        cpu.onInstr(alu(1 + (i % 4), 5, 6), 0, 0);
    cpu.finish();
    EXPECT_EQ(cpu.stats().cycles, 4u);
    EXPECT_DOUBLE_EQ(cpu.ipc(), 4.0);
}

TEST(CpuQuadIssue, StillOneMemoryOpPerCycle)
{
    auto cache = baselineCache();
    Cpu cpu(&cache, 4);
    cpu.onInstr(load(1, 0), 0x100000, 0);
    cpu.onInstr(load(2, 0), 0x100008, 0); // same line, but a second mem op
    cpu.finish();
    EXPECT_GE(cpu.stats().cycles, 2u);
}

TEST(CpuDeathTest, BadIssueWidth)
{
    EXPECT_EXIT(Cpu(nullptr, 5, true), ::testing::ExitedWithCode(1),
                "");
}

TEST(CpuDeathTest, RealModeNeedsCache)
{
    EXPECT_EXIT(Cpu(nullptr, 1, false), ::testing::ExitedWithCode(1),
                "");
}
