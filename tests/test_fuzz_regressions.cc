/**
 * @file
 * Shrunk regression tests for bugs found by the differential fuzzer
 * (tools/nbl-fuzz, docs/TESTING.md). Each test is the minimized form
 * of a real fuzz failure, kept here so the bug class stays covered by
 * tier-1 even when no fuzz budget is spent.
 */

#include <gtest/gtest.h>

#include "check/differential.hh"
#include "core/policy.hh"
#include "exec/machine.hh"
#include "exec/trace.hh"
#include "harness/experiment.hh"
#include "isa/program.hh"
#include "mem/sparse_memory.hh"

using namespace nbl;

namespace
{

isa::Instr
limm(unsigned reg, int64_t value)
{
    isa::Instr in;
    in.op = isa::Op::LImm;
    in.dst = isa::intReg(reg);
    in.imm = value;
    return in;
}

isa::Instr
load(isa::RegId dst, unsigned base, int64_t disp)
{
    isa::Instr in;
    in.op = isa::Op::Ld;
    in.dst = dst;
    in.src1 = isa::intReg(base);
    in.imm = disp;
    in.size = 8;
    return in;
}

isa::Instr
halt()
{
    isa::Instr in;
    in.op = isa::Op::Halt;
    return in;
}

exec::RunOutput
runOn(const isa::Program &prog, core::ConfigName name,
      unsigned missPenalty)
{
    mem::SparseMemory data;
    exec::MachineConfig mc;
    mc.policy = core::makePolicy(name);
    mc.memory = mem::MainMemory(missPenalty);
    return exec::run(prog, data, mc);
}

} // namespace

/**
 * Fuzz find #1 (shrunk from a lone-Halt program): replayTrace()
 * started its clock one cycle late -- the initial `now = 0` was
 * treated as "an access issued at cycle 0" even before any
 * instruction ran -- so every replay overshot execution-driven
 * cycles by exactly one. Stalls and miss classification are
 * shift-invariant, which is why no mcpi-based test ever noticed.
 */
TEST(FuzzRegression, TraceReplayCycleCountMatchesExecForBlocking)
{
    isa::Program trivial("halt-only");
    trivial.push(halt());

    isa::Program small("small");
    small.push(limm(1, 0x1000));
    small.push(load(isa::intReg(8), 1, 0));
    small.push(load(isa::intReg(9), 1, 8));
    small.push(halt());

    for (const isa::Program *prog : {&trivial, &small}) {
        for (unsigned penalty : {0u, 5u, 16u}) {
            exec::RunOutput out = runOn(*prog, core::ConfigName::Mc0,
                                        penalty);
            mem::SparseMemory tdata;
            exec::MemTrace trace = exec::recordTrace(*prog, tdata);
            exec::MachineConfig mc;
            exec::ReplayResult tr = exec::replayTrace(
                trace, mc.geometry, core::makePolicy(core::ConfigName::Mc0),
                mem::MainMemory(penalty));
            EXPECT_EQ(tr.cycles, out.cpu.cycles)
                << prog->name() << " penalty " << penalty;
        }
    }
}

/**
 * Fuzz find #2 (shrunk from seed 9): the WAW interlock only guarded
 * *load* destinations via the scoreboard, so a non-load write to a
 * register with a fill in flight erased the recorded fill time; a
 * later load to the same register then sailed past the interlock and
 * double-allocated the destination-indexed inverted-MSHR entry
 * (panic: "destination already waiting"). The fill time now lives
 * outside the scoreboard, so the overwrite costs nothing but the
 * later load still waits.
 */
TEST(FuzzRegression, NonLoadOverwriteOfInflightDestThenReload)
{
    isa::Program prog("waw-overwrite");
    prog.push(limm(1, 0x1000));
    prog.push(load(isa::intReg(8), 1, 0));  // Miss; fill in flight.
    prog.push(limm(8, 7));                  // Overwrites the scoreboard.
    prog.push(load(isa::intReg(8), 1, 64)); // Same dest, new line.
    prog.push(halt());

    exec::RunOutput out = runOn(prog, core::ConfigName::NoRestrict, 40);
    EXPECT_EQ(out.cache.primaryMisses, 2u);
    // The second load must have served the full WAW wait.
    EXPECT_GT(out.cpu.depStallCycles, 30u);
    EXPECT_FALSE(out.hitInstructionCap);
}

/**
 * Fuzz find #2, r0 variant: loads targeting hard-wired r0 bypassed
 * the scoreboard entirely (its entry is pinned at 0), so two
 * back-to-back r0 misses double-booked inverted-MSHR entry 0.
 */
TEST(FuzzRegression, BackToBackR0LoadsSerializeOnTheFill)
{
    isa::Program prog("r0-loads");
    prog.push(limm(1, 0x1000));
    prog.push(load(isa::regZero, 1, 0));
    prog.push(load(isa::regZero, 1, 64));
    prog.push(halt());

    exec::RunOutput out = runOn(prog, core::ConfigName::NoRestrict, 40);
    EXPECT_EQ(out.cache.primaryMisses, 2u);
    EXPECT_GT(out.cpu.depStallCycles, 30u);
}

/**
 * The full differential oracle stays clean on both WAW repro shapes:
 * exec, exact replay, trace replay, reference bounds, and the
 * conservation laws all agree -- i.e. the fix kept the engines
 * bit-identical rather than patching one of them.
 */
TEST(FuzzRegression, WawReprosPassTheFullOracle)
{
    isa::Program prog("waw-overwrite");
    prog.push(limm(1, 0x1000));
    prog.push(load(isa::intReg(8), 1, 0));
    prog.push(limm(8, 7));
    prog.push(load(isa::intReg(8), 1, 64));
    prog.push(load(isa::regZero, 1, 128));
    prog.push(load(isa::regZero, 1, 192));
    prog.push(halt());

    std::vector<harness::ExperimentConfig> cfgs;
    for (core::ConfigName name :
         {core::ConfigName::NoRestrict, core::ConfigName::Mc1,
          core::ConfigName::Mc0}) {
        harness::ExperimentConfig cfg;
        cfg.config = name;
        cfg.missPenalty = 40;
        cfgs.push_back(cfg);
    }
    std::vector<check::Divergence> divs =
        check::checkProgram(prog, cfgs);
    EXPECT_TRUE(divs.empty()) << divs.front().str();
}
