/**
 * @file
 * Unit tests for cache geometry arithmetic, including the baseline
 * configurations the paper uses.
 */

#include <gtest/gtest.h>

#include "mem/cache_geometry.hh"

using namespace nbl::mem;

TEST(CacheGeometry, Baseline8KDirectMapped)
{
    CacheGeometry g(8 * 1024, 32, 1);
    EXPECT_EQ(g.numSets(), 256u);
    EXPECT_EQ(g.numLines(), 256u);
    EXPECT_FALSE(g.fullyAssociative());
}

TEST(CacheGeometry, AddressDecomposition)
{
    CacheGeometry g(8 * 1024, 32, 1);
    uint64_t addr = 0x12345678;
    EXPECT_EQ(g.blockAddr(addr), 0x12345660u);
    EXPECT_EQ(g.offset(addr), 0x18u);
    EXPECT_EQ(g.setIndex(addr), (addr / 32) % 256);
    EXPECT_EQ(g.tag(addr), addr / 32 / 256);
    // Reassembly is lossless.
    EXPECT_EQ(g.tag(addr) * 256 * 32 + g.setIndex(addr) * 32 +
                  g.offset(addr),
              addr);
}

TEST(CacheGeometry, SameSetDifferentTag)
{
    CacheGeometry g(8 * 1024, 32, 1);
    // Addresses 8KB apart map to the same set (su2cor's conflicts).
    EXPECT_EQ(g.setIndex(0x100000), g.setIndex(0x100000 + 8 * 1024));
    EXPECT_NE(g.tag(0x100000), g.tag(0x100000 + 8 * 1024));
}

TEST(CacheGeometry, FullyAssociative)
{
    CacheGeometry g(8 * 1024, 32, 0);
    EXPECT_TRUE(g.fullyAssociative());
    EXPECT_EQ(g.numSets(), 1u);
    EXPECT_EQ(g.setIndex(0xabcdef), 0u);
    EXPECT_EQ(g.tag(0xabcdef), 0xabcdefu / 32);
}

TEST(CacheGeometry, SetAssociative)
{
    CacheGeometry g(8 * 1024, 32, 4);
    EXPECT_EQ(g.numSets(), 64u);
    EXPECT_EQ(g.ways(), 4u);
}

TEST(CacheGeometry, SubBlockIndex)
{
    CacheGeometry g(8 * 1024, 32, 1);
    // 4 sub-blocks of 8 bytes.
    EXPECT_EQ(g.subBlock(0x1000, 4), 0u);
    EXPECT_EQ(g.subBlock(0x1008, 4), 1u);
    EXPECT_EQ(g.subBlock(0x101f, 4), 3u);
    // 8 sub-blocks of 4 bytes (the paper's 140-bit implicit MSHR).
    EXPECT_EQ(g.subBlock(0x1004, 8), 1u);
    EXPECT_EQ(g.subBlock(0x101c, 8), 7u);
}

class GeometryParams
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>>
{
};

TEST_P(GeometryParams, InvariantsHold)
{
    auto [size, line] = GetParam();
    CacheGeometry g(size, line, 1);
    EXPECT_EQ(g.numSets() * line, size);
    for (uint64_t addr : {uint64_t{0}, uint64_t{0x7fff}, uint64_t{1} << 40,
                          (uint64_t{1} << 47) - 1}) {
        EXPECT_EQ(g.blockAddr(addr) % line, 0u);
        EXPECT_LT(g.offset(addr), line);
        EXPECT_LT(g.setIndex(addr), g.numSets());
        EXPECT_EQ(g.blockAddr(addr) + g.offset(addr), addr);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeometryParams,
    ::testing::Combine(::testing::Values(uint64_t{8192}, uint64_t{65536}),
                       ::testing::Values(uint64_t{16}, uint64_t{32},
                                         uint64_t{64})));

// Edge geometries the hierarchy config can now reach: 1-way caches of
// extreme shapes and line sizes approaching the cache size.

TEST(CacheGeometry, OneWaySingleSet)
{
    // Line size == cache size: one line, one set, direct mapped.
    CacheGeometry g(64, 64, 1);
    EXPECT_EQ(g.numSets(), 1u);
    EXPECT_EQ(g.numLines(), 1u);
    EXPECT_FALSE(g.fullyAssociative());
    // Every address maps to set 0 and tag == addr / line.
    for (uint64_t addr : {uint64_t{0}, uint64_t{0x3f}, uint64_t{0x40},
                          uint64_t{0x12345678}}) {
        EXPECT_EQ(g.setIndex(addr), 0u);
        EXPECT_EQ(g.tag(addr), addr / 64);
        EXPECT_EQ(g.blockAddr(addr) + g.offset(addr), addr);
    }
}

TEST(CacheGeometry, LineNearCacheSize)
{
    // Two lines, two sets: the smallest direct-mapped cache with a
    // nontrivial set index. The single index bit sits directly above
    // the offset bits.
    CacheGeometry g(128, 64, 1);
    EXPECT_EQ(g.numSets(), 2u);
    EXPECT_EQ(g.setIndex(0x00), 0u);
    EXPECT_EQ(g.setIndex(0x40), 1u);
    EXPECT_EQ(g.setIndex(0x80), 0u);
    EXPECT_EQ(g.tag(0x80), 1u);
}

TEST(CacheGeometry, AllWaysOneSet)
{
    // ways == numLines: set-associative geometry that behaves like a
    // fully associative cache but keeps ways() nonzero.
    CacheGeometry g(256, 64, 4);
    EXPECT_EQ(g.numSets(), 1u);
    EXPECT_EQ(g.ways(), 4u);
    EXPECT_FALSE(g.fullyAssociative());
    EXPECT_EQ(g.setIndex(0xdeadbeef), 0u);
}

using CacheGeometryDeath = CacheGeometry;

TEST(CacheGeometryDeathTest, RejectsNonPow2Size)
{
    EXPECT_EXIT(CacheGeometry(8000, 32, 1),
                ::testing::ExitedWithCode(1), "");
}

TEST(CacheGeometryDeathTest, RejectsNonPow2Line)
{
    EXPECT_EXIT(CacheGeometry(8192, 24, 1),
                ::testing::ExitedWithCode(1), "");
}

TEST(CacheGeometryDeathTest, RejectsLineBiggerThanCache)
{
    EXPECT_EXIT(CacheGeometry(32, 64, 1), ::testing::ExitedWithCode(1),
                "");
}

TEST(CacheGeometryDeathTest, RejectsNonPow2SetCount)
{
    // 8KB / (32B * 3 ways) is not an integer number of sets.
    EXPECT_EXIT(CacheGeometry(8 * 1024, 32, 3),
                ::testing::ExitedWithCode(1), "");
}

TEST(CacheGeometryDeathTest, RejectsWaysExceedingLines)
{
    // More ways than lines: 64B cache, 32B lines, 4 ways.
    EXPECT_EXIT(CacheGeometry(64, 32, 4), ::testing::ExitedWithCode(1),
                "");
}
