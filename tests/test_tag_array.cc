/**
 * @file
 * Unit tests for the tag array: hits, fills, evictions, and LRU.
 */

#include <gtest/gtest.h>

#include "mem/tag_array.hh"

using namespace nbl::mem;

namespace
{

TagArray
smallDirect()
{
    return TagArray(CacheGeometry(256, 32, 1)); // 8 sets
}

} // namespace

TEST(TagArray, MissThenFillThenHit)
{
    TagArray t = smallDirect();
    EXPECT_FALSE(t.lookup(0x1000));
    EXPECT_FALSE(t.fill(0x1000).has_value());
    EXPECT_TRUE(t.lookup(0x1000));
    EXPECT_TRUE(t.lookup(0x101f)); // same line
    EXPECT_FALSE(t.lookup(0x1020)); // next line
    EXPECT_EQ(t.numValid(), 1u);
}

TEST(TagArray, DirectMappedConflictEvicts)
{
    TagArray t = smallDirect();
    t.fill(0x1000);
    // 0x1000 + 256 maps to the same set with a different tag.
    auto evicted = t.fill(0x1100);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 0x1000u);
    EXPECT_FALSE(t.present(0x1000));
    EXPECT_TRUE(t.present(0x1100));
}

TEST(TagArray, RefillingPresentLineEvictsNothing)
{
    TagArray t = smallDirect();
    t.fill(0x1000);
    EXPECT_FALSE(t.fill(0x1000).has_value());
    EXPECT_EQ(t.numValid(), 1u);
}

TEST(TagArray, DifferentSetsDoNotConflict)
{
    TagArray t = smallDirect();
    for (uint64_t i = 0; i < 8; ++i)
        EXPECT_FALSE(t.fill(0x1000 + i * 32).has_value());
    EXPECT_EQ(t.numValid(), 8u);
}

TEST(TagArray, FullyAssociativeLru)
{
    TagArray t(TagArray(CacheGeometry(128, 32, 0))); // 4 lines
    t.fill(0x000);
    t.fill(0x100);
    t.fill(0x200);
    t.fill(0x300);
    EXPECT_EQ(t.numValid(), 4u);
    // Touch the oldest so 0x100 becomes LRU.
    EXPECT_TRUE(t.lookup(0x000));
    auto evicted = t.fill(0x400);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 0x100u);
    EXPECT_TRUE(t.present(0x000));
}

TEST(TagArray, LookupWithoutTouchDoesNotRefreshLru)
{
    TagArray t(TagArray(CacheGeometry(64, 32, 0))); // 2 lines
    t.fill(0xa00);
    t.fill(0xb00);
    EXPECT_TRUE(t.lookup(0xa00, /*touch=*/false));
    auto evicted = t.fill(0xc00);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 0xa00u); // untouched lookup kept it oldest
}

TEST(TagArray, SetAssociativeLruWithinSet)
{
    TagArray t(TagArray(CacheGeometry(128, 32, 2))); // 2 sets, 2 ways
    // Set 0: lines at 0x000 and 0x080.
    t.fill(0x000);
    t.fill(0x080);
    t.lookup(0x000); // refresh
    auto evicted = t.fill(0x100); // same set, third line
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 0x080u);
}

TEST(TagArray, Invalidate)
{
    TagArray t = smallDirect();
    t.fill(0x1000);
    t.invalidate(0x1008); // same line
    EXPECT_FALSE(t.present(0x1000));
    EXPECT_EQ(t.numValid(), 0u);
    t.invalidate(0x2000); // not present: no-op
}

TEST(TagArray, Reset)
{
    TagArray t = smallDirect();
    t.fill(0x1000);
    t.fill(0x2000);
    t.reset();
    EXPECT_EQ(t.numValid(), 0u);
    EXPECT_FALSE(t.present(0x1000));
}
