/**
 * @file
 * Tests of the 18 synthetic SPEC92 stand-ins: construction, validity,
 * determinism, and the per-benchmark structural signatures the
 * substitution argument rests on (DESIGN.md section 2).
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "harness/experiment.hh"
#include "workloads/workload.hh"

using namespace nbl;
using namespace nbl::workloads;

TEST(Workloads, EighteenBenchmarksInFigure13Order)
{
    const auto &names = workloadNames();
    ASSERT_EQ(names.size(), 18u);
    EXPECT_EQ(names.front(), "alvinn");
    EXPECT_EQ(names[8], "ora");
    EXPECT_EQ(names.back(), "xlisp");
}

TEST(Workloads, DetailedFiveArePresent)
{
    const auto &d = detailedWorkloadNames();
    ASSERT_EQ(d.size(), 5u);
    for (const std::string &n : d) {
        EXPECT_NE(std::find(workloadNames().begin(),
                            workloadNames().end(), n),
                  workloadNames().end());
    }
}

TEST(Workloads, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeWorkload("spec95"), ::testing::ExitedWithCode(1),
                "");
}

TEST(Workloads, BadScaleIsFatal)
{
    EXPECT_EXIT(makeWorkload("doduc", 0.0), ::testing::ExitedWithCode(1),
                "");
}

class EveryWorkload : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryWorkload, CompilesValidatesAndRuns)
{
    Workload w = makeWorkload(GetParam(), 0.05);
    EXPECT_EQ(w.name, GetParam());
    compiler::CompileParams cp;
    cp.loadLatency = 10;
    isa::Program prog = compiler::compile(w.program, cp);
    EXPECT_TRUE(prog.validate(false));

    mem::SparseMemory m = w.makeMemory();
    exec::MachineConfig mc;
    mc.policy = core::makePolicy(core::ConfigName::Fc2);
    auto res = exec::run(prog, m, mc);
    EXPECT_FALSE(res.hitInstructionCap);
    EXPECT_GT(res.cpu.instructions, 1000u);
    EXPECT_GT(res.cpu.loads, 0u);
    EXPECT_GT(res.cache.primaryMisses, 0u) << "a benchmark with no "
                                              "misses tests nothing";
}

TEST_P(EveryWorkload, DeterministicMemoryImage)
{
    Workload a = makeWorkload(GetParam(), 0.05);
    Workload b = makeWorkload(GetParam(), 0.05);
    EXPECT_EQ(a.makeMemory().checksum(), b.makeMemory().checksum());
}

TEST_P(EveryWorkload, ScaleGrowsDynamicSize)
{
    // One outer repetition is the floor, so compare scales large
    // enough that both are above it.
    Workload small = makeWorkload(GetParam(), 0.5);
    Workload big = makeWorkload(GetParam(), 8.0);
    EXPECT_GT(compiler::estimateDynamicSize(big.program),
              2 * compiler::estimateDynamicSize(small.program));
}

INSTANTIATE_TEST_SUITE_P(All18, EveryWorkload,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

TEST(WorkloadSignatures, OraIsFullySerial)
{
    // Figure 13's striking row: every configuration at MCPI 1.000.
    harness::Lab lab(0.1);
    harness::ExperimentConfig e;
    e.loadLatency = 10;
    double mc0, inf;
    e.config = core::ConfigName::Mc0;
    mc0 = lab.run("ora", e).mcpi();
    e.config = core::ConfigName::NoRestrict;
    inf = lab.run("ora", e).mcpi();
    EXPECT_NEAR(mc0, 1.0, 0.08);
    EXPECT_NEAR(inf, mc0, 0.02); // no overlap possible
}

TEST(WorkloadSignatures, IntegerCodesNearOptimalWithHitUnderMiss)
{
    // Section 7: "for integer benchmarks, a simple hit-under-miss
    // organization is the most cost effective".
    harness::Lab lab(0.1);
    for (const char *wl : {"compress", "eqntott", "espresso", "xlisp"}) {
        harness::ExperimentConfig e;
        e.loadLatency = 10;
        e.config = core::ConfigName::Mc1;
        double mc1 = lab.run(wl, e).mcpi();
        e.config = core::ConfigName::NoRestrict;
        double inf = lab.run(wl, e).mcpi();
        EXPECT_LT(mc1 / inf, 1.25) << wl;
    }
}

TEST(WorkloadSignatures, NumericCodesNeedMoreMshrs)
{
    // Section 7: numeric codes gain a factor ~4-10 from non-blocking
    // support beyond hit-under-miss.
    harness::Lab lab(0.1);
    for (const char *wl : {"tomcatv", "su2cor"}) {
        harness::ExperimentConfig e;
        e.loadLatency = 10;
        e.config = core::ConfigName::Mc1;
        double mc1 = lab.run(wl, e).mcpi();
        e.config = core::ConfigName::NoRestrict;
        double inf = lab.run(wl, e).mcpi();
        EXPECT_GT(mc1 / inf, 3.0) << wl;
    }
}

TEST(WorkloadSignatures, DoducPrefersPrimariesOverSecondaries)
{
    // Figure 5: mc=2 beats fc=1 for doduc.
    harness::Lab lab(0.2);
    harness::ExperimentConfig e;
    e.loadLatency = 10;
    e.config = core::ConfigName::Mc2;
    double mc2 = lab.run("doduc", e).mcpi();
    e.config = core::ConfigName::Fc1;
    double fc1 = lab.run("doduc", e).mcpi();
    EXPECT_LT(mc2, fc1);
}

TEST(WorkloadSignatures, Su2corHurtByOneFetchPerSet)
{
    // Figure 15: fs=1 is distinctly worse than fs=2 for su2cor.
    harness::Lab lab(0.1);
    harness::ExperimentConfig e;
    e.loadLatency = 10;
    e.config = core::ConfigName::Fs1;
    double fs1 = lab.run("su2cor", e).mcpi();
    e.config = core::ConfigName::Fs2;
    double fs2 = lab.run("su2cor", e).mcpi();
    EXPECT_GT(fs1 / fs2, 1.5);
}

TEST(WorkloadSignatures, XlispLoadsAreASmallFraction)
{
    // Figure 4: xlisp executes few loads relative to instructions.
    harness::Lab lab(0.1);
    harness::ExperimentConfig e;
    e.loadLatency = 10;
    e.config = core::ConfigName::Mc1;
    auto r = lab.run("xlisp", e);
    double frac = double(r.run.cpu.loads) /
                  double(r.run.cpu.instructions);
    EXPECT_LT(frac, 0.15);
}

TEST(WorkloadSignatures, TomcatvMcpiFallsWithLatency)
{
    // Figure 12: monotone decrease, flattening at long latencies.
    harness::Lab lab(0.1);
    harness::ExperimentConfig e;
    e.config = core::ConfigName::NoRestrict;
    double prev = 1e9;
    for (int lat : {1, 2, 3, 6, 10}) {
        e.loadLatency = lat;
        double m = lab.run("tomcatv", e).mcpi();
        EXPECT_LE(m, prev + 1e-9) << "latency " << lat;
        prev = m;
    }
}

TEST(WorkloadSignatures, ConfigsConvergeAtLatencyOne)
{
    // Figure 5: "all the lockup-free implementations achieve very
    // similar MCPIs for a load latency of 1."
    harness::Lab lab(0.1);
    for (const char *wl : {"doduc", "tomcatv"}) {
        harness::ExperimentConfig e;
        e.loadLatency = 1;
        e.config = core::ConfigName::Mc1;
        double mc1 = lab.run(wl, e).mcpi();
        e.config = core::ConfigName::NoRestrict;
        double inf = lab.run(wl, e).mcpi();
        EXPECT_LT(mc1 / inf, 1.35) << wl;
    }
}
