/**
 * @file
 * Tests for the machine run loop and its outputs: halting, stats
 * plumbing, tracker finalization, and perfect-cache mode.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "compiler/kernel.hh"
#include "exec/machine.hh"

using namespace nbl;
using namespace nbl::compiler;

namespace
{

KernelProgram
countedProgram(int64_t trips)
{
    KernelProgram kp;
    kp.name = "m";
    KernelBuilder b("k", kp.nextVRegId);
    b.countedLoop(0, trips);
    VReg base = b.constI(0x10000);
    VReg v = b.load(base, 0, 0);
    b.store(base, 8, v, 0);
    b.bump(base, 32);
    kp.kernels.push_back(b.take());
    return kp;
}

} // namespace

TEST(Machine, InstructionCountIsExact)
{
    KernelProgram kp = countedProgram(10);
    isa::Program prog = compile(kp, CompileParams{});
    mem::SparseMemory m;
    exec::MachineConfig mc;
    mc.policy = core::makePolicy(core::ConfigName::NoRestrict);
    auto out = exec::run(prog, m, mc);
    // prologue 3 + preamble 3 + 10*(load+store+bump+update+branch)
    // + outer bump + outer branch + halt.
    EXPECT_EQ(out.cpu.instructions, 3u + 3u + 10u * 5u + 3u);
    EXPECT_EQ(out.cpu.loads, 10u);
    EXPECT_EQ(out.cpu.stores, 10u);
    EXPECT_EQ(out.cpu.branches, 10u + 1u); // inner + outer
}

TEST(Machine, PerfectCacheMeansNoCacheStats)
{
    KernelProgram kp = countedProgram(10);
    isa::Program prog = compile(kp, CompileParams{});
    mem::SparseMemory m;
    exec::MachineConfig mc;
    mc.perfectCache = true;
    auto out = exec::run(prog, m, mc);
    EXPECT_EQ(out.cpu.cycles, out.cpu.instructions);
    EXPECT_EQ(out.cache.loads, 0u); // cache never consulted
    EXPECT_EQ(out.missPenalty, 0u);
}

TEST(Machine, TrackerIsFinalized)
{
    KernelProgram kp = countedProgram(40);
    isa::Program prog = compile(kp, CompileParams{});
    mem::SparseMemory m;
    exec::MachineConfig mc;
    mc.policy = core::makePolicy(core::ConfigName::NoRestrict);
    auto out = exec::run(prog, m, mc);
    // The histograms cover the whole run.
    EXPECT_GE(out.tracker.fetches.totalCycles(), out.cpu.cycles);
    EXPECT_EQ(out.tracker.fetches.totalCycles(),
              out.tracker.misses.totalCycles());
    // This program misses (stride 32): some busy time must exist.
    EXPECT_GT(out.tracker.fetches.cyclesAbove0(), 0u);
}

TEST(Machine, RunsAreIndependent)
{
    KernelProgram kp = countedProgram(10);
    isa::Program prog = compile(kp, CompileParams{});
    exec::MachineConfig mc;
    mc.policy = core::makePolicy(core::ConfigName::Mc1);
    mem::SparseMemory m1, m2;
    auto a = exec::run(prog, m1, mc);
    auto b = exec::run(prog, m2, mc);
    EXPECT_EQ(a.cpu.cycles, b.cpu.cycles);
    EXPECT_EQ(a.cache.primaryMisses, b.cache.primaryMisses);
}

TEST(Machine, MissPenaltyReported)
{
    KernelProgram kp = countedProgram(4);
    isa::Program prog = compile(kp, CompileParams{});
    mem::SparseMemory m;
    exec::MachineConfig mc;
    mc.policy = core::makePolicy(core::ConfigName::Mc0);
    mc.memory = mem::MainMemory(42);
    auto out = exec::run(prog, m, mc);
    EXPECT_EQ(out.missPenalty, 42u);
}

TEST(MachineDeathTest, InvalidProgramIsFatal)
{
    isa::Program prog("broken");
    isa::Instr in;
    in.op = isa::Op::Add; // no halt
    prog.push(in);
    mem::SparseMemory m;
    exec::MachineConfig mc;
    mc.perfectCache = true;
    EXPECT_EXIT(exec::run(prog, m, mc), ::testing::ExitedWithCode(1),
                "");
}
