/**
 * @file
 * Unit tests for util: bit operations, the deterministic RNG, the
 * ASCII table printer, string formatting, and environment-variable
 * parsing.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "util/bitops.hh"
#include "util/env.hh"
#include "util/log.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace nbl;

TEST(BitOps, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(4097));
    EXPECT_TRUE(isPow2(uint64_t{1} << 63));
    EXPECT_FALSE(isPow2((uint64_t{1} << 63) + 1));
}

TEST(BitOps, Log2i)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(3), 1u);
    EXPECT_EQ(log2i(4), 2u);
    EXPECT_EQ(log2i(32), 5u);
    EXPECT_EQ(log2i(uint64_t{1} << 48), 48u);
}

TEST(BitOps, BitsFor)
{
    EXPECT_EQ(bitsFor(0), 0u);
    EXPECT_EQ(bitsFor(1), 0u);
    EXPECT_EQ(bitsFor(2), 1u);
    EXPECT_EQ(bitsFor(3), 2u);
    EXPECT_EQ(bitsFor(4), 2u);
    EXPECT_EQ(bitsFor(5), 3u);
    EXPECT_EQ(bitsFor(32), 5u);   // address within a 32-byte line
    EXPECT_EQ(bitsFor(256), 8u);
}

TEST(BitOps, Align)
{
    EXPECT_EQ(alignDown(0x1234, 0x100), 0x1200u);
    EXPECT_EQ(alignUp(0x1234, 0x100), 0x1300u);
    EXPECT_EQ(alignDown(0x1200, 0x100), 0x1200u);
    EXPECT_EQ(alignUp(0x1200, 0x100), 0x1200u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all values reachable
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 1000; ++i) {
        double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 1000.0, 0.5, 0.05); // roughly uniform
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(Table, RendersAlignedColumns)
{
    Table t("title");
    t.header({"name", "v"});
    t.row({"a", "1"});
    t.row({"long-name", "22"});
    std::string s = t.str();
    EXPECT_NE(s.find("title"), std::string::npos);
    EXPECT_NE(s.find("long-name"), std::string::npos);
    // Data columns are right-aligned: "22" ends where " 1" ends.
    EXPECT_NE(s.find(" 1\n"), std::string::npos);
    EXPECT_NE(s.find("22\n"), std::string::npos);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(0.1234, 3), "0.123");
    EXPECT_EQ(Table::num(1.0, 1), "1.0");
    EXPECT_EQ(Table::num(-2.5, 2), "-2.50");
}

TEST(Table, RatioFormatsLikeThePaper)
{
    EXPECT_EQ(Table::ratio(1.4), "1.4");
    EXPECT_EQ(Table::ratio(2.94), "2.9");
    EXPECT_EQ(Table::ratio(14.2), "14");
    EXPECT_EQ(Table::ratio(9.96), "10");
    EXPECT_EQ(Table::ratio(1.0), "1.0");
}

TEST(Table, SeparatorAndMissingCells)
{
    Table t;
    t.header({"a", "b", "c"});
    t.row({"x"});
    t.separator();
    t.row({"y", "2", "3"});
    std::string s = t.str();
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Log, Strfmt)
{
    EXPECT_EQ(strfmt("%d-%s", 5, "x"), "5-x");
    EXPECT_EQ(strfmt("%.2f", 1.005), "1.00");
    // Long strings are not truncated.
    std::string long_arg(500, 'a');
    EXPECT_EQ(strfmt("%s", long_arg.c_str()).size(), 500u);
}

namespace
{

/** RAII environment-variable setter (tests only; not thread-safe). */
struct ScopedEnv
{
    const char *name;
    ScopedEnv(const char *n, const char *value) : name(n)
    {
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv() { unsetenv(name); }
};

} // namespace

TEST(Env, FlagConsistentFalsiness)
{
    const char *k = "NBL_TEST_ENV_FLAG";
    {
        ScopedEnv e(k, nullptr);
        EXPECT_FALSE(envFlag(k));
        EXPECT_TRUE(envFlag(k, true)); // unset -> default
    }
    for (const char *off : {"", "0", "false", "FALSE", "no", "off", "Off"}) {
        ScopedEnv e(k, off);
        EXPECT_FALSE(envFlag(k)) << '"' << off << '"';
        // Set-but-falsy beats the default: VAR=0 means off everywhere.
        EXPECT_FALSE(envFlag(k, true)) << '"' << off << '"';
    }
    for (const char *on : {"1", "2", "true", "yes", "on", "x"}) {
        ScopedEnv e(k, on);
        EXPECT_TRUE(envFlag(k)) << '"' << on << '"';
    }
}

TEST(Env, IntParsesOrFallsBack)
{
    const char *k = "NBL_TEST_ENV_INT";
    {
        ScopedEnv e(k, nullptr);
        EXPECT_EQ(envInt(k, 7), 7);
    }
    {
        ScopedEnv e(k, "42");
        EXPECT_EQ(envInt(k, 7), 42);
    }
    {
        ScopedEnv e(k, "0");
        EXPECT_EQ(envInt(k, 7), 0); // 0 is a value, not "unset"
    }
    {
        ScopedEnv e(k, "-3");
        EXPECT_EQ(envInt(k, 7), -3);
    }
    for (const char *bad : {"", "zebra", "12abc"}) {
        ScopedEnv e(k, bad);
        EXPECT_EQ(envInt(k, 7), 7) << '"' << bad << '"';
    }
}

TEST(Env, DoubleParsesOrFallsBack)
{
    const char *k = "NBL_TEST_ENV_DOUBLE";
    {
        ScopedEnv e(k, "0.05");
        EXPECT_DOUBLE_EQ(envDouble(k, 1.0), 0.05);
    }
    {
        ScopedEnv e(k, "junk");
        EXPECT_DOUBLE_EQ(envDouble(k, 1.0), 1.0);
    }
}

TEST(Env, StringEmptyMeansDefault)
{
    const char *k = "NBL_TEST_ENV_STRING";
    {
        ScopedEnv e(k, nullptr);
        EXPECT_EQ(envString(k, "dflt"), "dflt");
    }
    {
        ScopedEnv e(k, "");
        EXPECT_EQ(envString(k, "dflt"), "dflt");
    }
    {
        ScopedEnv e(k, "path/to/x");
        EXPECT_EQ(envString(k, "dflt"), "path/to/x");
    }
}
