/**
 * @file
 * Integration tests of the whole compiler pipeline + interpreter:
 * loop trip counts, while-loops, outer repetitions, and the central
 * property that the scheduled load latency never changes a program's
 * architectural results -- only its timing.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "compiler/kernel.hh"
#include "exec/machine.hh"
#include "workloads/workload.hh"

using namespace nbl;
using namespace nbl::compiler;

namespace
{

exec::MachineConfig
baseline(core::ConfigName cfg = core::ConfigName::NoRestrict)
{
    exec::MachineConfig mc;
    mc.policy = core::makePolicy(cfg);
    return mc;
}

} // namespace

TEST(CompileExecute, CountedLoopRunsExactTripCount)
{
    KernelProgram kp;
    kp.name = "count";
    KernelBuilder b("count", kp.nextVRegId);
    b.countedLoop(0, 37);
    VReg out = b.constI(0x10000);
    VReg v = b.load(out, 0, 0);
    VReg v2 = b.addi(v, 1);
    b.store(out, 0, v2, 0);
    kp.kernels.push_back(b.take());

    isa::Program prog = compile(kp, CompileParams{});
    mem::SparseMemory m;
    auto res = exec::run(prog, m, baseline());
    EXPECT_EQ(m.read(0x10000, 8), 37u); // incremented once per trip
    EXPECT_FALSE(res.hitInstructionCap);
}

TEST(CompileExecute, OuterRepsMultiplyWork)
{
    KernelProgram kp;
    kp.name = "reps";
    KernelBuilder b("reps", kp.nextVRegId);
    b.countedLoop(0, 5);
    VReg out = b.constI(0x10000);
    VReg v = b.load(out, 0, 0);
    b.store(out, 0, b.addi(v, 1), 0);
    kp.kernels.push_back(b.take());
    kp.outerReps = 7;

    isa::Program prog = compile(kp, CompileParams{});
    mem::SparseMemory m;
    exec::run(prog, m, baseline());
    EXPECT_EQ(m.read(0x10000, 8), 35u);
}

TEST(CompileExecute, WhileLoopTerminatesOnNullPointer)
{
    KernelProgram kp;
    kp.name = "chase";
    KernelBuilder b("chase", kp.nextVRegId);
    VReg ptr = b.constI(0x10000);
    b.whileNonZero(ptr, 3);
    VReg next = b.load(ptr, 0, 0);
    VReg cnt_ptr = b.constI(0x20000);
    VReg c = b.load(cnt_ptr, 0, 1);
    b.store(cnt_ptr, 0, b.addi(c, 1), 1);
    b.assign(ptr, next);
    kp.kernels.push_back(b.take());

    isa::Program prog = compile(kp, CompileParams{});
    mem::SparseMemory m;
    // 3-node chain: 0x10000 -> 0x11000 -> 0x12000 -> null.
    m.write(0x10000, 8, 0x11000);
    m.write(0x11000, 8, 0x12000);
    m.write(0x12000, 8, 0);
    exec::run(prog, m, baseline());
    EXPECT_EQ(m.read(0x20000, 8), 3u); // visited every node once
}

TEST(CompileExecute, MultipleKernelsRunInOrder)
{
    KernelProgram kp;
    kp.name = "two";
    {
        KernelBuilder b("first", kp.nextVRegId);
        b.countedLoop(0, 1);
        VReg out = b.constI(0x10000);
        b.store(out, 0, b.limm(11), 0);
        kp.kernels.push_back(b.take());
    }
    {
        KernelBuilder b("second", kp.nextVRegId);
        b.countedLoop(0, 1);
        VReg out = b.constI(0x10000);
        VReg v = b.load(out, 0, 0);
        b.store(out, 8, b.muli(v, 3), 0);
        kp.kernels.push_back(b.take());
    }
    isa::Program prog = compile(kp, CompileParams{});
    mem::SparseMemory m;
    exec::run(prog, m, baseline());
    EXPECT_EQ(m.read(0x10008, 8), 33u);
}

TEST(CompileExecute, InstructionCapIsReported)
{
    KernelProgram kp;
    kp.name = "cap";
    KernelBuilder b("cap", kp.nextVRegId);
    b.countedLoop(0, 1000000);
    VReg out = b.constI(0x10000);
    b.load(out, 0, 0);
    kp.kernels.push_back(b.take());
    isa::Program prog = compile(kp, CompileParams{});
    mem::SparseMemory m;
    exec::MachineConfig mc = baseline();
    mc.maxInstructions = 1000;
    auto res = exec::run(prog, m, mc);
    EXPECT_TRUE(res.hitInstructionCap);
    EXPECT_LE(res.cpu.instructions, 1000u);
}

class ScheduleTransparency
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
};

TEST_P(ScheduleTransparency, LatencyNeverChangesResults)
{
    // The paper's methodology requires that the load-latency parameter
    // affects only scheduling. We verify the stronger architectural
    // property on the synthetic workloads themselves: every scheduled
    // latency leaves the same workload data behind (spill slots are
    // excluded -- they legitimately differ between schedules).
    auto [name, lat] = GetParam();
    workloads::Workload w = workloads::makeWorkload(name, 0.05);

    auto run_mem = [&](int latency, bool schedule) {
        CompileParams cp;
        cp.loadLatency = latency;
        cp.schedule = schedule;
        isa::Program prog = compile(w.program, cp);
        mem::SparseMemory m = w.makeMemory();
        exec::run(prog, m, baseline());
        // Skip the spill area (first 64 KB of address space).
        return m.checksumRange(0x100000, 0x500000);
    };

    uint64_t reference = run_mem(1, /*schedule=*/false);
    EXPECT_EQ(run_mem(lat, true), reference)
        << name << " at latency " << lat;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ScheduleTransparency,
    ::testing::Combine(::testing::Values("doduc", "tomcatv", "eqntott",
                                         "xlisp", "su2cor", "ora"),
                       ::testing::Values(1, 6, 20)));

TEST(CompileExecute, TimingConfigsShareFunctionalResults)
{
    // Cache policy must never change architectural state either.
    workloads::Workload w = workloads::makeWorkload("compress", 0.05);
    isa::Program prog = compile(w.program, CompileParams{});
    uint64_t ref = 0;
    bool first = true;
    for (auto cfg : {core::ConfigName::Mc0Wma, core::ConfigName::Mc1,
                     core::ConfigName::Fs1,
                     core::ConfigName::NoRestrict}) {
        mem::SparseMemory m = w.makeMemory();
        exec::run(prog, m, baseline(cfg));
        uint64_t sum = m.checksumRange(0x100000, 0x500000);
        if (first) {
            ref = sum;
            first = false;
        } else {
            EXPECT_EQ(sum, ref) << core::configLabel(cfg);
        }
    }
}

TEST(CompileExecute, SpilledScheduleStillCorrect)
{
    // fpppp's big block spills at long latencies; its results must
    // still match the unscheduled build.
    workloads::Workload w = workloads::makeWorkload("fpppp", 0.05);
    CompileParams sched;
    sched.loadLatency = 20;
    CompileInfo info;
    isa::Program p1 = compile(w.program, sched, &info);
    CompileParams plain;
    plain.schedule = false;
    isa::Program p0 = compile(w.program, plain);

    mem::SparseMemory m1 = w.makeMemory();
    mem::SparseMemory m0 = w.makeMemory();
    exec::run(p1, m1, baseline());
    exec::run(p0, m0, baseline());
    EXPECT_EQ(m1.checksumRange(0x100000, 0x500000),
              m0.checksumRange(0x100000, 0x500000));
}
