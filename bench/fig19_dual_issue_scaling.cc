/**
 * @file
 * Figure 19: dual-issue versus scaled single-issue MCPI.
 *
 * Method (paper section 6): simulate each benchmark on the dual-issue
 * machine (load latency 10, penalty 16); compute its ideal-cache IPC;
 * then rerun the single-issue machine with the load latency and miss
 * penalty multiplied by that IPC (latency snapped to the simulated
 * set {1,2,3,6,10,20}, penalty rounded) and compare MCPIs. The
 * dual-issue MCPI here is (cycles - ideal cycles) / instructions.
 *
 * Expected shape (paper): the scaled single-issue run is a good
 * first-order approximation of the dual-issue MCPI (differences
 * mostly within ~15%, larger for the unrestricted configurations of
 * su2cor/tomcatv).
 */

#include <cmath>

#include "bench_common.hh"
#include "util/table.hh"

using namespace nbl;

namespace
{

int
snapLatency(double want)
{
    int best = harness::paperLatencies[0];
    for (int lat : harness::paperLatencies) {
        if (std::abs(lat - want) < std::abs(best - want))
            best = lat;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    harness::Lab &lab = nbl_bench::benchLab();

    harness::ExperimentConfig base;
    base.loadLatency = 10;
    harness::printHeader("Figure 19",
                         "dual-issue vs scaled single-issue MCPI",
                         base);

    const std::vector<core::ConfigName> cfgs = {
        core::ConfigName::Mc0, core::ConfigName::Mc1,
        core::ConfigName::Fc2, core::ConfigName::NoRestrict};

    // The scaled single-issue points depend on each benchmark's
    // measured IPC, so only the directly enumerable dual/quad-issue
    // points are prewarmed; the rest run (and memoize) on demand.
    {
        std::vector<harness::SweepPoint> points;
        auto widthPoints = [&](const std::string &wl, unsigned width,
                               const std::vector<core::ConfigName> &cs) {
            harness::ExperimentConfig ideal = base;
            ideal.issueWidth = width;
            ideal.perfectCache = true;
            points.push_back({wl, ideal});
            for (core::ConfigName cfg : cs) {
                harness::ExperimentConfig e = base;
                e.issueWidth = width;
                e.config = cfg;
                points.push_back({wl, e});
            }
        };
        for (const auto &p : harness::paper::fig19())
            widthPoints(p.name, 2, cfgs);
        for (const char *wl : {"doduc", "tomcatv", "eqntott"}) {
            widthPoints(wl, 4, {core::ConfigName::Mc1,
                                core::ConfigName::NoRestrict});
        }
        nbl_bench::prewarm(points);
    }

    Table t("dual-issue MCPI and scaled single-issue prediction");
    t.header({"benchmark", "IPC", "lat*", "pen*", "config", "dual",
              "scaled-1w", "diff%"});

    for (const auto &p : harness::paper::fig19()) {
        // Ideal-cache dual-issue run: IPC.
        harness::ExperimentConfig ideal = base;
        ideal.issueWidth = 2;
        ideal.perfectCache = true;
        auto ir = lab.run(p.name, ideal);
        double ipc = double(ir.run.cpu.instructions) /
                     double(ir.run.cpu.cycles);

        int slat = snapLatency(10.0 * ipc);
        unsigned spen = unsigned(std::lround(16.0 * ipc));

        for (core::ConfigName cfg : cfgs) {
            // Real dual-issue run.
            harness::ExperimentConfig dual = base;
            dual.issueWidth = 2;
            dual.config = cfg;
            auto dr = lab.run(p.name, dual);
            // Miss stall cycles per *ideal cycle* (instruction issue
            // opportunity), the normalization under which the paper's
            // scaled single-issue MCPI is directly comparable.
            double dual_mcpi =
                double(dr.run.cpu.cycles - ir.run.cpu.cycles) /
                double(ir.run.cpu.cycles);

            // Scaled single-issue run predicts it directly.
            harness::ExperimentConfig single = base;
            single.config = cfg;
            single.loadLatency = slat;
            single.missPenalty = spen;
            double pred = lab.run(p.name, single).mcpi();

            double diff = dual_mcpi > 0
                              ? 100.0 * (pred - dual_mcpi) / dual_mcpi
                              : 0.0;
            t.row({p.name, Table::num(ipc, 2), std::to_string(slat),
                   std::to_string(spen),
                   core::configLabel(cfg), Table::num(dual_mcpi, 3),
                   Table::num(pred, 3), Table::num(diff, 0)});
        }
        t.separator();
    }
    t.print();

    std::printf("\npaper (Figure 19): IPC 1.16-1.82; scaling errors "
                "mostly within +/-15%% (up to ~28%% for the "
                "unrestricted tomcatv/su2cor cases).\n");

    // Superscalar generalization (section 6 says the IPC-scaling rule
    // applies to wider machines too): repeat the comparison on a
    // quad-issue core.
    Table q("extension: quad-issue vs scaled single-issue");
    q.header({"benchmark", "IPC", "lat*", "pen*", "config", "quad",
              "scaled-1w", "diff%"});
    for (const char *wl : {"doduc", "tomcatv", "eqntott"}) {
        harness::ExperimentConfig ideal = base;
        ideal.issueWidth = 4;
        ideal.perfectCache = true;
        auto ir = lab.run(wl, ideal);
        double ipc = double(ir.run.cpu.instructions) /
                     double(ir.run.cpu.cycles);
        int slat = snapLatency(10.0 * ipc);
        unsigned spen = unsigned(std::lround(16.0 * ipc));
        for (core::ConfigName cfg :
             {core::ConfigName::Mc1, core::ConfigName::NoRestrict}) {
            harness::ExperimentConfig quad = base;
            quad.issueWidth = 4;
            quad.config = cfg;
            auto qr = lab.run(wl, quad);
            double quad_mcpi =
                double(qr.run.cpu.cycles - ir.run.cpu.cycles) /
                double(ir.run.cpu.cycles);
            harness::ExperimentConfig single = base;
            single.config = cfg;
            single.loadLatency = slat;
            single.missPenalty = spen;
            double pred = lab.run(wl, single).mcpi();
            double diff = quad_mcpi > 0
                              ? 100.0 * (pred - quad_mcpi) / quad_mcpi
                              : 0.0;
            q.row({wl, Table::num(ipc, 2), std::to_string(slat),
                   std::to_string(spen), core::configLabel(cfg),
                   Table::num(quad_mcpi, 3), Table::num(pred, 3),
                   Table::num(diff, 0)});
        }
        q.separator();
    }
    q.print();
    return 0;
}
