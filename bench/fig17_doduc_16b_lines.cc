/**
 * @file
 * Figure 17: miss CPI for doduc with 16-byte cache lines. The
 * pipelined memory model gives a 14-cycle penalty for 16 B lines
 * (14 + 2 per extra 16 B chunk), as in section 5.2.
 *
 * Expected shape (paper): with smaller lines, supporting unlimited
 * secondary misses to one line is worth less: the fc=1 curve moves
 * toward mc=1 (at 32 B lines it sits midway between mc=1 and mc=2).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::ExperimentConfig cfg;
    cfg.lineBytes = 16; // pipelined-bus model -> 14-cycle penalty
    auto curves = nbl_bench::runCurveFigure(
        "Figure 17", "miss CPI for doduc, 16B lines", "doduc", cfg,
        harness::baselineConfigList());

    // Where does fc=1 sit between mc=1 and mc=2? (0 = at mc=1,
    // 1 = at mc=2; paper: < 0.5 for 16B lines, ~0.5 for 32B.)
    double mc1 = curves[2].mcpiAt(10);
    double mc2 = curves[3].mcpiAt(10);
    double fc1 = curves[4].mcpiAt(10);
    std::printf("\nfc=1 position between mc=1 and mc=2 at latency 10: "
                "%.2f (16B lines; smaller = closer to mc=1)\n",
                mc1 != mc2 ? (mc1 - fc1) / (mc1 - mc2) : 0.0);
    return 0;
}
