/**
 * @file
 * Workload characterization: the structural properties behind every
 * Figure 13 row, in one table per benchmark -- instruction mix, load
 * miss rate versus cache size, and miss clustering (peak in-flight
 * misses under the unrestricted cache). This is the evidence for the
 * DESIGN.md substitution argument: the synthetic stand-ins are
 * defined by exactly these numbers.
 */

#include "bench_common.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::Lab &lab = nbl_bench::benchLab();

    harness::ExperimentConfig base;
    base.loadLatency = 10;
    base.config = core::ConfigName::NoRestrict;
    harness::printHeader("Characterization",
                         "workload structure (latency 10)", base);

    {
        std::vector<harness::ExperimentConfig> cfgs = {base};
        for (uint64_t kb : {2u, 8u, 32u, 128u}) {
            harness::ExperimentConfig es = base;
            es.cacheBytes = kb * 1024;
            cfgs.push_back(es);
        }
        nbl_bench::prewarm(workloads::workloadNames(), cfgs);
    }

    Table t("instruction mix, miss rate vs cache size, clustering");
    t.header({"benchmark", "ld%", "st%", "br%", "miss%@2K", "@8K",
              "@32K", "@128K", "sec%@8K", "peak mshr"});

    for (const std::string &wl : workloads::workloadNames()) {
        std::vector<std::string> row = {wl};

        harness::ExperimentConfig e = base;
        auto r8 = lab.run(wl, e);
        const auto &cs = r8.run.cpu;
        double n = double(cs.instructions);
        row.push_back(Table::num(100.0 * double(cs.loads) / n, 1));
        row.push_back(Table::num(100.0 * double(cs.stores) / n, 1));
        row.push_back(Table::num(100.0 * double(cs.branches) / n, 1));

        for (uint64_t kb : {2u, 8u, 32u, 128u}) {
            harness::ExperimentConfig es = base;
            es.cacheBytes = kb * 1024;
            auto r = lab.run(wl, es);
            // Primary misses only: the size-dependent component.
            row.push_back(Table::num(
                100.0 * double(r.run.cache.primaryMisses) /
                    double(r.run.cache.loads), 1));
        }
        row.push_back(Table::num(
            100.0 * r8.run.cache.secondaryMissRate(), 1));
        row.push_back(std::to_string(r8.run.maxInflightMisses));
        t.row(std::move(row));
    }
    t.print();

    std::printf(
        "\nreading: serial-miss codes (ora, spice2g6, compress, "
        "xlisp) peak at 1-2 in-flight misses no matter what the "
        "hardware allows; vector codes (tomcatv, su2cor, nasa7) peak "
        "at 10+ -- the clustering column *is* Figure 13's ratio "
        "column, before any timing is simulated.\n");
    return 0;
}
