/**
 * @file
 * Ablation: associativity vs miss-handling aggressiveness.
 *
 * Section 4.2 closes with the observation that implementing a
 * set-associative cache "might eliminate most of these concurrent
 * conflict misses in the first place" -- i.e., associativity and
 * per-set fetch capacity are partially interchangeable. This
 * ablation quantifies that: su2cor (same-set conflicts) and xlisp
 * (heap/symbol conflicts) across 1/2/4-way and fully associative
 * caches, for a restricted and an unrestricted organization.
 */

#include "bench_common.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::Lab &lab = nbl_bench::benchLab();

    harness::ExperimentConfig base;
    base.loadLatency = 10;
    harness::printHeader("Ablation",
                         "associativity vs per-set fetch limits",
                         base);

    {
        std::vector<harness::ExperimentConfig> cfgs;
        for (auto cfg : {core::ConfigName::Fs1,
                         core::ConfigName::InCache,
                         core::ConfigName::Mc1,
                         core::ConfigName::NoRestrict}) {
            for (unsigned ways : {1u, 2u, 4u, 0u}) {
                harness::ExperimentConfig e = base;
                e.config = cfg;
                e.ways = ways;
                cfgs.push_back(e);
            }
        }
        nbl_bench::prewarm({"su2cor", "xlisp", "doduc"}, cfgs);
    }

    Table t("MCPI by associativity (8KB cache)");
    t.header({"benchmark", "config", "1-way", "2-way", "4-way",
              "fully assoc"});

    for (const char *wl : {"su2cor", "xlisp", "doduc"}) {
        for (auto cfg : {core::ConfigName::Fs1,
                         core::ConfigName::InCache,
                         core::ConfigName::Mc1,
                         core::ConfigName::NoRestrict}) {
            std::vector<std::string> row = {wl,
                                            core::configLabel(cfg)};
            for (unsigned ways : {1u, 2u, 4u, 0u}) {
                harness::ExperimentConfig e = base;
                e.config = cfg;
                e.ways = ways;
                row.push_back(Table::num(lab.run(wl, e).mcpi(), 3));
            }
            t.row(std::move(row));
        }
        t.separator();
    }
    t.print();

    std::printf("\nreading: for su2cor, two ways buy what fs=2 buys "
                "-- the conflicting streams stop evicting each other, "
                "so one fetch per set stops hurting: associativity "
                "and per-set fetch capacity attack the same misses. "
                "The in-cache rows additionally gain per-set capacity "
                "with each added way (one pending line per way, "
                "section 4.2), at the price of the fill-read "
                "penalty.\n");
    return 0;
}
