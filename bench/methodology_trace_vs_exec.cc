/**
 * @file
 * Methodology study: why the paper simulates execution-driven, and
 * what exact replay adds.
 *
 * Section 3.2 builds an object-code instrumentation system so that
 * "both the functional behavior and the memory behavior of the
 * application are simulated" -- i.e., access *timing* responds to
 * stalls. This study compares three methodologies per configuration:
 *
 *  - exec: execution-driven simulation (ground truth here);
 *  - replay: exact event-trace replay (exec/event_trace.hh) -- the
 *    recorded instruction + address streams drive the same timing
 *    models and must agree with exec bit for bit;
 *  - trace: classic optimistic trace replay (exec/trace.hh), which
 *    drops register identities and so charges no dependence stalls.
 *
 * Expected shape: exec and replay agree exactly everywhere (checked).
 * The optimistic trace agrees for blocking caches (timing-independent)
 * but under-charges restricted organizations and loses everything on
 * unrestricted ones -- the "missing (dep) %" column is exactly the
 * true-data-dependency component a memory-only trace cannot express.
 */

#include <cstdlib>

#include "bench_common.hh"
#include "compiler/compile.hh"
#include "exec/event_trace.hh"
#include "exec/trace.hh"
#include "util/log.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    double scale = nbl_bench::benchScale() * 0.5;

    harness::ExperimentConfig base;
    base.loadLatency = 10;
    harness::printHeader("Methodology",
                         "exact replay and trace-driven replay vs "
                         "execution-driven",
                         base);

    mem::CacheGeometry geom(8 * 1024, 32, 1);
    Table t("MCPI: execution-driven (exec) vs exact replay (replay) "
            "vs optimistic trace (trace)");
    t.header({"benchmark", "config", "exec", "replay", "trace",
              "missing (dep) %"});

    for (const char *wl : {"doduc", "tomcatv", "ora", "eqntott"}) {
        workloads::Workload w = workloads::makeWorkload(wl, scale);
        compiler::CompileParams cp;
        cp.loadLatency = 10;
        isa::Program prog = compiler::compile(w.program, cp);
        mem::SparseMemory tm = w.makeMemory();
        exec::MemTrace trace = exec::recordTrace(prog, tm);
        mem::SparseMemory em = w.makeMemory();
        exec::EventTrace events = exec::recordEventTrace(prog, em);

        for (auto cfg : {core::ConfigName::Mc0, core::ConfigName::Mc1,
                         core::ConfigName::Fc2,
                         core::ConfigName::NoRestrict}) {
            mem::SparseMemory m = w.makeMemory();
            exec::MachineConfig mc;
            mc.policy = core::makePolicy(cfg);
            auto run = exec::run(prog, m, mc);
            auto exact = exec::replayExact(prog, events, mc);
            if (exact.cpu.cycles != run.cpu.cycles ||
                exact.cpu.depStallCycles != run.cpu.depStallCycles) {
                fatal("exact replay diverged from execution-driven "
                      "simulation on %s/%s", wl, core::configLabel(cfg));
            }
            auto rep = exec::replayTrace(trace, geom,
                                         core::makePolicy(cfg),
                                         mem::MainMemory());
            double err = run.cpu.mcpi() > 0
                             ? 100.0 * (run.cpu.mcpi() - rep.mcpi()) /
                                   run.cpu.mcpi()
                             : 0.0;
            t.row({wl, core::configLabel(cfg),
                   Table::num(run.cpu.mcpi(), 3),
                   Table::num(exact.cpu.mcpi(), 3),
                   Table::num(rep.mcpi(), 3), Table::num(err, 1)});
        }
        t.separator();
    }
    t.print();

    std::printf("\nreading: exec and replay agree exactly on every row "
                "-- an event trace carrying the instruction stream and "
                "effective addresses is a lossless stand-in for "
                "functional execution, which is what lets the harness "
                "record once and replay per sweep point. The optimistic "
                "trace's blocking rows agree too, but its unrestricted "
                "rows lose everything to the missing dependences: "
                "non-blocking load studies need the full instruction "
                "stream -- the methodological point behind the paper's "
                "section 3.2 infrastructure.\n");
    return 0;
}
