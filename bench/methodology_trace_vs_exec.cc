/**
 * @file
 * Methodology study: why the paper simulates execution-driven.
 *
 * Section 3.2 builds an object-code instrumentation system so that
 * "both the functional behavior and the memory behavior of the
 * application are simulated" -- i.e., access *timing* responds to
 * stalls. The cheap alternative, trace-driven replay, cannot see
 * register dependences. This study measures the error that choice
 * would introduce: per configuration, the execution-driven MCPI
 * (ground truth here) against the trace-replay MCPI (structural
 * stalls only).
 *
 * Expected shape: identical for blocking caches (timing-independent),
 * a modest gap for heavily restricted organizations (structural
 * stalls dominate), and a huge gap for unrestricted ones (all that is
 * left is exactly the dependency component a trace cannot express).
 */

#include "bench_common.hh"
#include "compiler/compile.hh"
#include "exec/trace.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace nbl;
    double scale = nbl_bench::benchScale() * 0.5;

    harness::ExperimentConfig base;
    base.loadLatency = 10;
    harness::printHeader("Methodology",
                         "trace-driven replay vs execution-driven",
                         base);

    mem::CacheGeometry geom(8 * 1024, 32, 1);
    Table t("MCPI: execution-driven (exec) vs trace replay (trace)");
    t.header({"benchmark", "config", "exec", "trace",
              "missing (dep) %"});

    for (const char *wl : {"doduc", "tomcatv", "ora", "eqntott"}) {
        workloads::Workload w = workloads::makeWorkload(wl, scale);
        compiler::CompileParams cp;
        cp.loadLatency = 10;
        isa::Program prog = compiler::compile(w.program, cp);
        mem::SparseMemory tm = w.makeMemory();
        exec::MemTrace trace = exec::recordTrace(prog, tm);

        for (auto cfg : {core::ConfigName::Mc0, core::ConfigName::Mc1,
                         core::ConfigName::Fc2,
                         core::ConfigName::NoRestrict}) {
            mem::SparseMemory m = w.makeMemory();
            exec::MachineConfig mc;
            mc.policy = core::makePolicy(cfg);
            auto run = exec::run(prog, m, mc);
            auto rep = exec::replayTrace(trace, geom,
                                         core::makePolicy(cfg),
                                         mem::MainMemory());
            double err = run.cpu.mcpi() > 0
                             ? 100.0 * (run.cpu.mcpi() - rep.mcpi()) /
                                   run.cpu.mcpi()
                             : 0.0;
            t.row({wl, core::configLabel(cfg),
                   Table::num(run.cpu.mcpi(), 3),
                   Table::num(rep.mcpi(), 3), Table::num(err, 1)});
        }
        t.separator();
    }
    t.print();

    std::printf("\nreading: the blocking rows agree exactly; the "
                "unrestricted rows lose everything to the trace's "
                "missing dependences. Non-blocking load studies need "
                "execution-driven simulation -- the methodological "
                "point behind the paper's section 3.2 "
                "infrastructure.\n");
    return 0;
}
