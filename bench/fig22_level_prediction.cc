/**
 * @file
 * Stall-policy extension (beyond the paper): doduc MCPI as a
 * cache-level predictor's accuracy rises, per MSHR organization.
 *
 * The predictor guesses hit/miss per load (policy/stall_policy.hh);
 * a load predicted to hit that actually misses pays a fixed recovery
 * penalty on top of the organization's own stalls, while correct
 * miss predictions record the cycles a level-directed scheduler
 * could have recovered. The synthetic mode draws correctness from a
 * seeded hash with nested correct-sets, so raising the accuracy knob
 * only ever converts wrong predictions into right ones -- MCPI is
 * monotone in accuracy by construction, and the oracle (accuracy 1.0
 * by definition) is its floor.
 *
 * Expected shape: every organization's MCPI falls monotonically as
 * accuracy rises; the blocking cache carries the same penalty stream
 * (prediction is per-load, not per-overlap), and the oracle column
 * matches the policy-off baseline exactly because a perfect
 * predictor never mispredicts and the penalty is the only timing
 * effect.
 */

#include "bench_common.hh"
#include "util/table.hh"

namespace
{

/** One predictor setting of the sweep. */
struct PredPoint
{
    const char *label;
    nbl::policy::PredictorConfig pred;
};

std::vector<PredPoint>
predPoints()
{
    using nbl::policy::PredictorMode;
    std::vector<PredPoint> pts;
    pts.push_back({"off", {}});
    for (double acc : {0.50, 0.75, 0.90, 1.00}) {
        nbl::policy::PredictorConfig p;
        p.mode = PredictorMode::Synthetic;
        p.accuracy = acc;
        PredPoint pt{"", p};
        pt.label = acc == 0.50   ? "acc=0.50"
                   : acc == 0.75 ? "acc=0.75"
                   : acc == 0.90 ? "acc=0.90"
                                 : "acc=1.00";
        pts.push_back(pt);
    }
    {
        nbl::policy::PredictorConfig p;
        p.mode = PredictorMode::Oracle;
        pts.push_back({"oracle", p});
    }
    return pts;
}

} // namespace

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::Lab &lab = nbl_bench::benchLab();

    harness::ExperimentConfig base;
    base.loadLatency = 10;
    harness::printHeader("Level prediction sweep",
                         "doduc MCPI vs cache-level predictor "
                         "accuracy (penalty 3), latency 10",
                         base);

    const std::vector<core::ConfigName> cfgs = {
        core::ConfigName::Mc0, core::ConfigName::Mc1,
        core::ConfigName::Mc2, core::ConfigName::NoRestrict};
    const std::vector<PredPoint> pts = predPoints();

    auto pointOf = [&](core::ConfigName c, const PredPoint &p) {
        harness::ExperimentConfig e = base;
        e.config = c;
        e.stallPolicy.predictor = p.pred;
        return e;
    };
    {
        std::vector<harness::ExperimentConfig> pcfgs;
        for (core::ConfigName c : cfgs)
            for (const PredPoint &p : pts)
                pcfgs.push_back(pointOf(c, p));
        nbl_bench::prewarm({"doduc"}, pcfgs);
    }

    Table t("MCPI by predictor accuracy (synthetic mode; off = no "
            "predictor, oracle = perfect)");
    std::vector<std::string> head = {"config"};
    for (const PredPoint &p : pts)
        head.push_back(p.label);
    t.header(std::move(head));

    bool monotone_nonblocking = false;
    bool oracle_matches_off = true;
    for (core::ConfigName c : cfgs) {
        std::vector<std::string> row = {core::configLabel(c)};
        std::vector<double> curve;
        double off_mcpi = 0.0, oracle_mcpi = 0.0;
        for (const PredPoint &p : pts) {
            double m = lab.run("doduc", pointOf(c, p)).mcpi();
            row.push_back(Table::num(m, 3));
            if (p.pred.mode == policy::PredictorMode::Off)
                off_mcpi = m;
            else if (p.pred.mode == policy::PredictorMode::Oracle)
                oracle_mcpi = m;
            else
                curve.push_back(m);
        }
        t.row(std::move(row));
        bool mono = true;
        for (size_t k = 1; k < curve.size(); ++k)
            mono = mono && curve[k] <= curve[k - 1];
        if (mono && c != core::ConfigName::Mc0)
            monotone_nonblocking = true;
        oracle_matches_off =
            oracle_matches_off && oracle_mcpi == off_mcpi;
    }
    t.print();

    // Predictor diagnostics at the table-predictor design point: the
    // PC-indexed counters the synthetic sweep abstracts away.
    {
        harness::ExperimentConfig e = base;
        e.config = core::ConfigName::NoRestrict;
        e.stallPolicy.predictor.mode = policy::PredictorMode::Table;
        const exec::RunOutput &out = lab.run("doduc", e).run;
        const cpu::CpuStats &c = out.cpu;
        double acc = c.predLoads
                         ? double(c.predHits) / double(c.predLoads)
                         : 0.0;
        std::printf("\nno-restrict, table predictor (256 entries): "
                    "accuracy %.3f over %llu loads, %llu "
                    "underpredictions (%llu penalty cycles), %llu "
                    "overpredictions, %llu cycles recoverable by a "
                    "level-directed scheduler\n",
                    acc, (unsigned long long)c.predLoads,
                    (unsigned long long)c.predUnder,
                    (unsigned long long)c.predStallCycles,
                    (unsigned long long)c.predOver,
                    (unsigned long long)c.predRecovered);
    }

    std::printf("\ncheck: MCPI falls monotonically with accuracy for "
                "a non-blocking organization (%s) and the oracle "
                "column equals the policy-off baseline (%s).\n",
                monotone_nonblocking ? "holds" : "VIOLATED",
                oracle_matches_off ? "holds" : "VIOLATED");
    return 0;
}
