/**
 * @file
 * Figure 15: baseline miss CPI for su2cor, including the per-set
 * fetch restrictions fs=1 (the in-cache MSHR storage limit of a
 * direct-mapped cache) and fs=2.
 *
 * Expected shape (paper): su2cor's misses are conflict misses to
 * different addresses in the same set, so fs=1 hurts badly (2.3x the
 * unrestricted MCPI at latency 10) while fs=2 recovers most of it
 * (1.3x); the ordinary configurations bracket them.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::ExperimentConfig base;
    auto curves = nbl_bench::runCurveFigure(
        "Figure 15", "baseline miss CPI for su2cor (with fs= curves)",
        "su2cor", base, harness::perSetConfigList());

    double inf = curves.back().mcpiAt(10);
    std::printf("\nratios to 'no restrict' at latency 10 "
                "(paper: fs=1 2.3, fs=2 1.3, mc=1 11, fc=2 4.2):\n");
    for (const auto &c : curves) {
        std::printf("  %-10s %.2f\n", c.label.c_str(),
                    c.mcpiAt(10) / inf);
    }
    return 0;
}
