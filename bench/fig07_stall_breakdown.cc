/**
 * @file
 * Figure 7: stall-cycle breakdown for doduc -- the percentage of MCPI
 * attributable to structural-hazard stalls, per configuration and
 * scheduled load latency.
 *
 * Expected shape (paper): the structural share grows with the load
 * latency (the compiler trades true-dependency stalls for structural
 * ones as it overlaps more misses) and is larger for the more
 * restricted lockup-free configurations.
 */

#include "bench_common.hh"
#include "stats/run_stats.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::Lab &lab = nbl_bench::benchLab();

    harness::ExperimentConfig base;
    harness::printHeader("Figure 7",
                         "% of doduc MCPI due to structural stalls",
                         base);

    auto cfgs = harness::baselineConfigList();
    auto curves = harness::sweepCurves(lab, "doduc", base, cfgs);

    Table t("% of miss CPI due to structural-hazard stalls");
    std::vector<std::string> head = {"load latency"};
    for (const auto &c : curves)
        head.push_back(c.label);
    t.header(std::move(head));
    for (size_t i = 0; i < curves[0].latencies.size(); ++i) {
        std::vector<std::string> row = {
            std::to_string(curves[0].latencies[i])};
        for (const auto &c : curves) {
            row.push_back(Table::num(
                100.0 * stats::snapshotOfRun(c.results[i].run)
                            .derivedValue("cpu.structural_share"),
                1));
        }
        t.row(std::move(row));
    }
    t.print();

    std::printf("\npaper (Figure 7): structural share rises with "
                "latency, up to ~14-16%% for the restricted "
                "configurations; blocking caches (mc=0) have no "
                "structural component.\n");
    return 0;
}
