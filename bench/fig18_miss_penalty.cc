/**
 * @file
 * Figure 18: tomcatv MCPI as a function of the miss penalty (4 to 128
 * cycles) at scheduled load latency 10.
 *
 * Expected shape (paper): the blocking cache's MCPI is *strictly
 * linear* in the penalty; non-blocking MCPI is strongly super-linear
 * (the unrestricted cache grows ~5x from penalty 16 to 32) because
 * the overlappable computation is exhausted as the penalty grows.
 */

#include "bench_common.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::Lab &lab = nbl_bench::benchLab();

    harness::ExperimentConfig base;
    base.loadLatency = 10;
    harness::printHeader("Figure 18",
                         "tomcatv MCPI vs miss penalty, latency 10",
                         base);

    auto cfgs = harness::baselineConfigList();
    {
        std::vector<harness::ExperimentConfig> pcfgs;
        for (core::ConfigName c : cfgs) {
            for (unsigned pen : harness::paper::fig18Penalties) {
                harness::ExperimentConfig e = base;
                e.config = c;
                e.missPenalty = pen;
                pcfgs.push_back(e);
            }
        }
        nbl_bench::prewarm({"tomcatv"}, pcfgs);
    }
    Table t("MCPI by miss penalty (paper values in parentheses row)");
    std::vector<std::string> head = {"config"};
    for (unsigned p : harness::paper::fig18Penalties)
        head.push_back(std::to_string(p));
    t.header(std::move(head));

    for (size_t ci = 0; ci < cfgs.size(); ++ci) {
        std::vector<std::string> row = {core::configLabel(cfgs[ci])};
        for (unsigned pen : harness::paper::fig18Penalties) {
            harness::ExperimentConfig e = base;
            e.config = cfgs[ci];
            e.missPenalty = pen;
            row.push_back(Table::num(lab.run("tomcatv", e).mcpi(), 3));
        }
        t.row(std::move(row));
        // Paper reference row.
        const auto &paper_rows = harness::paper::fig18();
        for (const auto &pr : paper_rows) {
            if (pr.config == std::string(core::configLabel(cfgs[ci]))) {
                std::vector<std::string> ref = {" (paper)"};
                for (double v : pr.mcpi)
                    ref.push_back(Table::num(v, 3));
                t.row(std::move(ref));
            }
        }
    }
    t.print();

    std::printf("\ncheck: blocking (mc=0) MCPI must scale exactly "
                "with the penalty; unrestricted MCPI grows "
                "super-linearly (paper: ~4.5x from 16 to 32).\n");
    return 0;
}
