/**
 * @file
 * Figure 14: explicitly addressed, implicitly addressed, and hybrid
 * MSHR field organizations for doduc at load latency 10 (unlimited
 * MSHRs; the grid is sub-blocks x misses-per-sub-block), with the
 * section-2 storage cost of each organization.
 *
 * Expected shape (paper): an explicitly addressed MSHR with 4 fields
 * (112 bits) or an implicitly addressed MSHR with 8 sub-blocks (140
 * bits) both come within ~1% of the unrestricted cache; the 2x2
 * hybrid (106 bits) is nearly as good; a single field per MSHR is
 * ~1.8x worse.
 */

#include "bench_common.hh"
#include "core/mshr_cost.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::Lab &lab = nbl_bench::benchLab();

    harness::ExperimentConfig base;
    base.loadLatency = 10;
    harness::printHeader("Figure 14",
                         "MSHR field organizations for doduc, "
                         "latency 10", base);

    // Unrestricted reference.
    harness::ExperimentConfig uncfg = base;
    uncfg.config = core::ConfigName::NoRestrict;

    {
        std::vector<harness::SweepPoint> points;
        points.push_back({"doduc", uncfg});
        for (const auto &cell : harness::paper::fig14()) {
            if (cell.subBlocks < 0)
                continue;
            harness::ExperimentConfig e = base;
            e.customPolicy = core::makeFieldPolicy(cell.subBlocks,
                                                   cell.missesPerSub);
            points.push_back({"doduc", e});
        }
        nbl_bench::prewarm(points);
    }

    double inf = lab.run("doduc", uncfg).mcpi();

    core::CostParams cp;
    Table t("sub-blocks x misses-per-sub-block grid");
    t.header({"organization", "sb", "mps", "MCPI", "ratio",
              "bits/MSHR", "paper MCPI", "paper ratio"});

    for (const auto &cell : harness::paper::fig14()) {
        double mcpi;
        std::string bits;
        std::string label;
        if (cell.subBlocks < 0) {
            mcpi = inf;
            label = "unrestricted";
            bits = "-";
        } else {
            harness::ExperimentConfig e = base;
            e.customPolicy = core::makeFieldPolicy(cell.subBlocks,
                                                   cell.missesPerSub);
            mcpi = lab.run("doduc", e).mcpi();
            auto cost = core::hybridMshrCost(
                cp, unsigned(cell.subBlocks),
                unsigned(cell.missesPerSub));
            bits = std::to_string(cost.storageBits);
            label = cell.subBlocks == 1
                        ? "explicit"
                        : (cell.missesPerSub == 1 ? "implicit"
                                                  : "hybrid");
        }
        t.row({label,
               cell.subBlocks < 0 ? "-" : std::to_string(cell.subBlocks),
               cell.missesPerSub < 0 ? "-"
                                     : std::to_string(cell.missesPerSub),
               Table::num(mcpi, 3), Table::num(mcpi / inf, 2), bits,
               Table::num(cell.mcpi, 3), Table::num(cell.ratio, 2)});
    }
    t.print();

    std::printf("\nsection-2 storage arithmetic: basic implicit 4x8B "
                "= %llu bits, implicit 8 sub-blocks = %llu, explicit "
                "4 fields = %llu, hybrid 2x2 = %llu (paper: 92, 140, "
                "112, 106).\n",
                (unsigned long long)core::implicitMshrCost(cp, 4)
                    .storageBits,
                (unsigned long long)core::implicitMshrCost(cp, 8)
                    .storageBits,
                (unsigned long long)core::explicitMshrCost(cp, 4)
                    .storageBits,
                (unsigned long long)core::hybridMshrCost(cp, 2, 2)
                    .storageBits);
    return 0;
}
