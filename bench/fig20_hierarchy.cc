/**
 * @file
 * Hierarchy extension (beyond the paper): doduc MCPI when the memory
 * side below L1 is no longer the paper's fully pipelined constant-
 * penalty memory -- a finite-bandwidth miss channel, an L2, and both
 * together.
 *
 * Expected shape: the blocking cache (mc=0) is almost insensitive to
 * channel bandwidth (it never has two fetches in flight), while the
 * lockup-free organizations lose their overlap as the channel
 * serializes their fetch streams -- MSHR-count restrictions and
 * channel restrictions cap the same concurrency, so a narrow channel
 * flattens the mc=1 vs no-restrict gap. An L2 that captures the reuse
 * the small L1 misses pulls every organization down; combining it
 * with a narrow memory channel shows back-pressure arriving from two
 * levels below the processor.
 */

#include "bench_common.hh"
#include "util/table.hh"

namespace
{

/** One memory-side variant of the sweep. */
struct MemSide
{
    const char *label;
    nbl::core::HierarchyConfig hier;
};

nbl::core::LevelConfig
l2Config()
{
    nbl::core::LevelConfig l2;
    l2.cacheBytes = 64 * 1024;
    l2.lineBytes = 32;
    l2.ways = 4;
    l2.policy.mode = nbl::core::CacheMode::MshrFile;
    l2.policy.numMshrs = 4;
    l2.policy.maxMisses = -1;
    l2.policy.fetchesPerSet = -1;
    l2.hitLatency = 4;
    l2.channelInterval = 0;
    return l2;
}

std::vector<MemSide>
memSides()
{
    std::vector<MemSide> sides;
    sides.push_back({"flat", {}});
    for (unsigned iv : {2u, 6u}) {
        MemSide s{iv == 2 ? "chan=2" : "chan=6", {}};
        s.hier.memChannelInterval = iv;
        sides.push_back(s);
    }
    {
        MemSide s{"L2", {}};
        s.hier.levels.push_back(l2Config());
        sides.push_back(s);
    }
    {
        MemSide s{"L2+chan=6", {}};
        s.hier.levels.push_back(l2Config());
        s.hier.memChannelInterval = 6;
        sides.push_back(s);
    }
    return sides;
}

} // namespace

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::Lab &lab = nbl_bench::benchLab();

    harness::ExperimentConfig base;
    base.loadLatency = 10;
    harness::printHeader("Hierarchy sweep",
                         "doduc MCPI vs memory side below L1, "
                         "latency 10",
                         base);

    auto cfgs = harness::baselineConfigList();
    const std::vector<MemSide> sides = memSides();
    {
        std::vector<harness::ExperimentConfig> pcfgs;
        for (core::ConfigName c : cfgs) {
            for (const MemSide &s : sides) {
                harness::ExperimentConfig e = base;
                e.config = c;
                e.hierarchy = s.hier;
                pcfgs.push_back(e);
            }
        }
        nbl_bench::prewarm({"doduc"}, pcfgs);
    }

    Table t("MCPI by memory side (flat = the paper's pipelined "
            "memory)");
    std::vector<std::string> head = {"config"};
    for (const MemSide &s : sides)
        head.push_back(s.label);
    t.header(std::move(head));

    for (core::ConfigName c : cfgs) {
        std::vector<std::string> row = {core::configLabel(c)};
        for (const MemSide &s : sides) {
            harness::ExperimentConfig e = base;
            e.config = c;
            e.hierarchy = s.hier;
            row.push_back(Table::num(lab.run("doduc", e).mcpi(), 3));
        }
        t.row(std::move(row));
    }
    t.print();

    // Channel pressure diagnostics for the most concurrent
    // organization: how much of its fetch stream the narrow channel
    // actually serialized.
    {
        harness::ExperimentConfig e = base;
        e.config = core::ConfigName::NoRestrict;
        e.hierarchy = sides.back().hier; // L2+chan=6.
        const exec::RunOutput &out = lab.run("doduc", e).run;
        std::printf("\nno-restrict over L2+chan=6: ");
        if (out.hier.active && !out.hier.levels.empty()) {
            const core::LevelStats &l2 = out.hier.levels.front();
            std::printf("L2 %llu requests, %llu hits, %llu struct "
                        "waits; mem channel delayed %llu/%llu sends "
                        "(%llu queue cycles)\n",
                        (unsigned long long)l2.requests,
                        (unsigned long long)l2.hits,
                        (unsigned long long)l2.structWaits,
                        (unsigned long long)out.hier.memChannel
                            .delayedSends,
                        (unsigned long long)out.hier.memChannel.sends,
                        (unsigned long long)out.hier.memChannel
                            .queueCycles);
        } else {
            std::printf("hierarchy counters missing\n");
        }
    }

    std::printf("\ncheck: mc=0 is nearly flat across channel widths; "
                "lockup-free MCPI rises toward mc=0 as the channel "
                "narrows, and the L2 lowers every curve.\n");
    return 0;
}
