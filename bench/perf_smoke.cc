/**
 * @file
 * Perf smoke test for the sweep engine: run a fixed set of experiment
 * points through every engine tier -- execution-driven, per-point
 * exact replay, single-thread lane-batched replay, and the parallel
 * engine -- then emit one JSON line (point count, wall times,
 * per-engine speedups, simulation throughput) so BENCH_*.json
 * snapshots can track performance across revisions, plus a one-line
 * per-engine table for CI logs.
 *
 * Trace recording happens outside every timed region (reported
 * separately as record_wall_s), so the per-engine walls compare
 * timing-model work only. A final model_prune section times the dense
 * fig21 sweep (bench/model_points.hh) fully simulated vs through the
 * predict-then-simulate planner and cross-checks the two.
 *
 * Unlike the figure binaries this output is diagnostic, not
 * byte-stable; NBL_SCALE and NBL_JOBS apply as usual.
 */

#include <chrono>
#include <cstdio>
#include <set>
#include <thread>

#include "bench_common.hh"
#include "model_points.hh"

using namespace nbl;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** The fixed sweep: two workloads x baseline configs x latencies. */
std::vector<harness::SweepPoint>
smokePoints()
{
    std::vector<harness::SweepPoint> points;
    for (const char *wl : {"doduc", "tomcatv"}) {
        for (core::ConfigName cfg : harness::baselineConfigList()) {
            for (int lat : harness::paperLatencies) {
                harness::ExperimentConfig e;
                e.config = cfg;
                e.loadLatency = lat;
                points.push_back({wl, e});
            }
        }
    }
    return points;
}

uint64_t
totalInstructions(const std::vector<harness::ExperimentResult> &rs)
{
    uint64_t n = 0;
    for (const auto &r : rs)
        n += r.run.cpu.instructions;
    return n;
}

/**
 * The hierarchy sweep: the fig20 memory sides (finite-bandwidth miss
 * channel, an L2, both) under every baseline config, so the perf
 * trajectory covers multi-level points whose lower-level state the
 * lane engine must also carry per lane.
 */
std::vector<harness::SweepPoint>
hierarchyPoints()
{
    core::LevelConfig l2;
    l2.cacheBytes = 64 * 1024;
    l2.lineBytes = 32;
    l2.ways = 4;
    l2.policy.mode = core::CacheMode::MshrFile;
    l2.policy.numMshrs = 4;
    l2.policy.maxMisses = -1;
    l2.policy.fetchesPerSet = -1;
    l2.hitLatency = 4;

    std::vector<core::HierarchyConfig> sides(3);
    sides[0].memChannelInterval = 6;
    sides[1].levels.push_back(l2);
    sides[2].levels.push_back(l2);
    sides[2].memChannelInterval = 6;

    std::vector<harness::SweepPoint> points;
    for (core::ConfigName cfg : harness::baselineConfigList()) {
        for (const core::HierarchyConfig &h : sides) {
            harness::ExperimentConfig e;
            e.config = cfg;
            e.loadLatency = 10;
            e.hierarchy = h;
            points.push_back({"doduc", e});
        }
    }
    return points;
}

} // namespace

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    harness::Lab exec_lab(nbl_bench::benchScale());
    exec_lab.setReplayEnabled(false); // Classic execution-driven.
    harness::Lab serial_lab(nbl_bench::benchScale());
    serial_lab.setLaneReplayEnabled(false); // Per-point exact replay.
    harness::Lab lane_lab(nbl_bench::benchScale());
    harness::Lab parallel_lab(nbl_bench::benchScale());
    auto points = smokePoints();

    // Lane batches group points sharing a (workload, latency) trace.
    std::set<std::pair<std::string, int>> batch_keys;
    for (const auto &p : points)
        batch_keys.insert({p.workload, p.cfg.loadLatency});

    // Compile outside the timed region for every lab so the timings
    // compare simulation only.
    for (const auto &p : points) {
        exec_lab.program(p.workload, p.cfg.loadLatency);
        serial_lab.program(p.workload, p.cfg.loadLatency);
        lane_lab.program(p.workload, p.cfg.loadLatency);
        parallel_lab.program(p.workload, p.cfg.loadLatency);
    }

    // Record event traces outside the timed regions too, so the
    // replay/lane/parallel walls below are pure timing-model work.
    // The recording cost is reported once (the labs record identical
    // traces; timing one stands for all).
    auto t0 = std::chrono::steady_clock::now();
    for (const auto &[wl, lat] : batch_keys)
        serial_lab.prewarmTrace(wl, lat);
    const double record_s = secondsSince(t0);
    for (const auto &[wl, lat] : batch_keys) {
        lane_lab.prewarmTrace(wl, lat);
        parallel_lab.prewarmTrace(wl, lat);
    }

    t0 = std::chrono::steady_clock::now();
    std::vector<harness::ExperimentResult> exec_driven;
    exec_driven.reserve(points.size());
    for (const auto &p : points)
        exec_driven.push_back(exec_lab.run(p.workload, p.cfg));
    double exec_s = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    std::vector<harness::ExperimentResult> serial;
    serial.reserve(points.size());
    for (const auto &p : points)
        serial.push_back(serial_lab.run(p.workload, p.cfg));
    double serial_s = secondsSince(t0);

    // Single-thread lane-batched replay: jobs=1 runs the batches
    // inline, so this isolates the lockstep win from thread scaling.
    t0 = std::chrono::steady_clock::now();
    auto lanes = harness::runPointsParallel(lane_lab, points, 1);
    double lane_s = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    auto par = harness::runPointsParallel(parallel_lab, points);
    double parallel_s = secondsSince(t0);

    uint64_t instrs = totalInstructions(par);
    if (instrs != totalInstructions(serial) ||
        instrs != totalInstructions(exec_driven) ||
        instrs != totalInstructions(lanes)) {
        std::fprintf(stderr, "methodology instruction mismatch\n");
        return 1;
    }

    // Hierarchy sweep wall-clock: multi-level memory sides through
    // the default engine path (lane replay where eligible).
    auto hier_points = hierarchyPoints();
    for (const auto &p : hier_points)
        parallel_lab.program(p.workload, p.cfg.loadLatency);
    t0 = std::chrono::steady_clock::now();
    auto hier = harness::runPointsParallel(parallel_lab, hier_points);
    double hier_s = secondsSince(t0);
    uint64_t hier_instrs = totalInstructions(hier);

    // Model pruning: the dense fig21 sweep, fully simulated vs
    // through the predict-then-simulate planner (fresh Labs, traces
    // prewarmed outside both walls). The planner wall includes its
    // characterization and prediction work, so the speedup is
    // end-to-end, not just saved simulations.
    auto dense = nbl_bench::modelSweepPoints();
    harness::Lab model_full_lab(nbl_bench::benchScale());
    harness::Lab model_plan_lab(nbl_bench::benchScale());
    for (const auto &p : dense) {
        model_full_lab.prewarmTrace(p.workload, p.cfg.loadLatency);
        model_plan_lab.prewarmTrace(p.workload, p.cfg.loadLatency);
    }
    t0 = std::chrono::steady_clock::now();
    auto model_full = harness::runPointsParallel(model_full_lab, dense);
    double model_full_s = secondsSince(t0);
    t0 = std::chrono::steady_clock::now();
    harness::PlanOptions plan_opts;
    plan_opts.prune = true;
    harness::PlanOutcome planned =
        harness::planAndRun(model_plan_lab, dense, plan_opts);
    double model_plan_s = secondsSince(t0);
    harness::PlanError plan_err =
        harness::compareWithFull(planned, model_full);
    if (plan_err.boundViolations || plan_err.substitutionMismatches) {
        std::fprintf(stderr,
                     "model_prune cross-check failed: %zu bound "
                     "violations, %zu substitution mismatches\n",
                     plan_err.boundViolations,
                     plan_err.substitutionMismatches);
        return 1;
    }
    const double model_speedup =
        model_plan_s > 0 ? model_full_s / model_plan_s : 0.0;

    const unsigned host_cores = std::thread::hardware_concurrency();
    const double lane_speedup = lane_s > 0 ? serial_s / lane_s : 0.0;
    std::printf(
        "{\"sweep_points\": %zu, \"jobs\": %u, \"host_cores\": %u, "
        "\"record_wall_s\": %.3f, "
        "\"wall_s\": %.3f, \"serial_wall_s\": %.3f, "
        "\"exec_wall_s\": %.3f, "
        "\"speedup\": %.2f, \"replay_speedup\": %.2f, "
        "\"lane_speedup\": %.2f, "
        "\"lane_replay\": {\"points\": %zu, \"batches\": %zu, "
        "\"wall_s\": %.3f, \"speedup_vs_replay\": %.2f}, "
        "\"instructions\": %llu, "
        "\"sim_minstr_per_s\": %.1f, "
        "\"hierarchy_sweep\": {\"points\": %zu, \"wall_s\": %.3f, "
        "\"instructions\": %llu, \"sim_minstr_per_s\": %.1f}, "
        "\"model_prune\": {\"points\": %zu, \"simulated\": %zu, "
        "\"pruned\": %zu, \"profiles\": %zu, "
        "\"full_wall_s\": %.3f, \"planned_wall_s\": %.3f, "
        "\"speedup\": %.2f, \"max_abs_err\": %.4f, "
        "\"mean_abs_err\": %.4f, \"bound_violations\": %zu, "
        "\"substitution_mismatches\": %zu}}\n",
        points.size(), harness::ThreadPool::defaultJobs(), host_cores,
        record_s, parallel_s, serial_s, exec_s,
        parallel_s > 0 ? serial_s / parallel_s : 0.0,
        serial_s > 0 ? exec_s / serial_s : 0.0, lane_speedup,
        points.size(), batch_keys.size(), lane_s, lane_speedup,
        (unsigned long long)instrs,
        parallel_s > 0 ? double(instrs) / 1e6 / parallel_s : 0.0,
        hier_points.size(), hier_s, (unsigned long long)hier_instrs,
        hier_s > 0 ? double(hier_instrs) / 1e6 / hier_s : 0.0,
        dense.size(), planned.simulatedCount, planned.prunedCount,
        planned.profileCount, model_full_s, model_plan_s,
        model_speedup, plan_err.maxAbsErr, plan_err.meanAbsErr,
        plan_err.boundViolations, plan_err.substitutionMismatches);

    // One line per engine so CI logs surface regressions at a glance.
    std::printf("# engine    wall_s  speedup_vs_exec\n");
    struct Row
    {
        const char *name;
        double wall;
    };
    const Row rows[] = {{"record", record_s},
                        {"exec", exec_s},
                        {"replay", serial_s},
                        {"lane", lane_s},
                        {"parallel", parallel_s},
                        {"hier", hier_s},
                        {"model-full", model_full_s},
                        {"model-plan", model_plan_s}};
    for (const Row &r : rows) {
        std::printf("# %-9s %6.3f  %.2fx\n", r.name, r.wall,
                    r.wall > 0 ? exec_s / r.wall : 0.0);
    }
    return 0;
}
