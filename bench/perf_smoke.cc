/**
 * @file
 * Perf smoke test for the sweep engine: run a fixed set of experiment
 * points serially and in parallel, then emit one JSON line with the
 * point count, wall time, and simulation throughput so BENCH_*.json
 * snapshots can track performance across revisions.
 *
 * Unlike the figure binaries this prints machine-readable output only;
 * NBL_SCALE and NBL_JOBS apply as usual.
 */

#include <chrono>
#include <cstdio>

#include "bench_common.hh"

using namespace nbl;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** The fixed sweep: two workloads x baseline configs x latencies. */
std::vector<harness::SweepPoint>
smokePoints()
{
    std::vector<harness::SweepPoint> points;
    for (const char *wl : {"doduc", "tomcatv"}) {
        for (core::ConfigName cfg : harness::baselineConfigList()) {
            for (int lat : harness::paperLatencies) {
                harness::ExperimentConfig e;
                e.config = cfg;
                e.loadLatency = lat;
                points.push_back({wl, e});
            }
        }
    }
    return points;
}

uint64_t
totalInstructions(const std::vector<harness::ExperimentResult> &rs)
{
    uint64_t n = 0;
    for (const auto &r : rs)
        n += r.run.cpu.instructions;
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    harness::Lab serial_lab(nbl_bench::benchScale());
    harness::Lab parallel_lab(nbl_bench::benchScale());
    harness::Lab exec_lab(nbl_bench::benchScale());
    exec_lab.setReplayEnabled(false); // Classic execution-driven.
    auto points = smokePoints();

    // Compile outside the timed region for every lab so the timings
    // compare simulation only.
    for (const auto &p : points) {
        serial_lab.program(p.workload, p.cfg.loadLatency);
        parallel_lab.program(p.workload, p.cfg.loadLatency);
        exec_lab.program(p.workload, p.cfg.loadLatency);
    }

    auto t0 = std::chrono::steady_clock::now();
    std::vector<harness::ExperimentResult> exec_driven;
    exec_driven.reserve(points.size());
    for (const auto &p : points)
        exec_driven.push_back(exec_lab.run(p.workload, p.cfg));
    double exec_s = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    std::vector<harness::ExperimentResult> serial;
    serial.reserve(points.size());
    for (const auto &p : points)
        serial.push_back(serial_lab.run(p.workload, p.cfg));
    double serial_s = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    auto par = harness::runPointsParallel(parallel_lab, points);
    double parallel_s = secondsSince(t0);

    uint64_t instrs = totalInstructions(par);
    if (instrs != totalInstructions(serial) ||
        instrs != totalInstructions(exec_driven)) {
        std::fprintf(stderr, "methodology instruction mismatch\n");
        return 1;
    }

    std::printf("{\"sweep_points\": %zu, \"jobs\": %u, "
                "\"wall_s\": %.3f, \"serial_wall_s\": %.3f, "
                "\"exec_wall_s\": %.3f, "
                "\"speedup\": %.2f, \"replay_speedup\": %.2f, "
                "\"instructions\": %llu, "
                "\"sim_minstr_per_s\": %.1f}\n",
                points.size(), harness::ThreadPool::defaultJobs(),
                parallel_s, serial_s, exec_s,
                parallel_s > 0 ? serial_s / parallel_s : 0.0,
                serial_s > 0 ? exec_s / serial_s : 0.0,
                (unsigned long long)instrs,
                parallel_s > 0 ? double(instrs) / 1e6 / parallel_s
                               : 0.0);
    return 0;
}
