/**
 * @file
 * bench_daemon: end-to-end benchmark of nbl-labd (docs/SERVICE.md).
 *
 * Starts the real daemon stack in-process (Lab + CacheStore +
 * LabService + SocketServer on a temp unix socket) and talks to it
 * over the socket like any client, so every measured number includes
 * framing, syscalls, and request parsing. Four phases:
 *
 *   cold        one fig05-shaped 42-point sweep against an empty
 *               daemon (all points simulate);
 *   warm        the same request repeated; per-request p50/p99 and
 *               the cache hit rate -- the ISSUE 9 gates (>= 95% hits,
 *               p50 < 1 ms) are checked here;
 *   concurrent  thousands of mixed requests (single-point runs,
 *               pings, stats) from many client threads;
 *   restart     a fresh daemon over the same cache dir re-answers the
 *               sweep from disk.
 *
 * Every daemon-served snapshot is compared countersEqual against a
 * direct Lab run of the same point; any mismatch is exit 1 (cache
 * layers must be invisible in the counters). Results are written to
 * --json=FILE (default BENCH_daemon.json in the working directory).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "harness/experiment.hh"
#include "harness/stats_export.hh"
#include "harness/sweep.hh"
#include "service/framing.hh"
#include "service/server.hh"
#include "service/service.hh"
#include "stats/json.hh"
#include "stats/registry.hh"
#include "stats/run_stats.hh"
#include "util/env.hh"
#include "util/log.hh"

using namespace nbl;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace
{

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

int
connectUnix(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("socket(): %s", std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, (const sockaddr *)&addr, sizeof(addr)) < 0)
        fatal("connect '%s': %s", path.c_str(), std::strerror(errno));
    return fd;
}

std::string
roundTrip(int fd, const std::string &request)
{
    if (!service::writeFrame(fd, request))
        fatal("writeFrame failed");
    std::string response, err;
    if (service::readFrame(fd, &response, &err) !=
        service::ReadStatus::Ok)
        fatal("readFrame failed: %s", err.c_str());
    return response;
}

/** The fig05 shape: doduc, 7 baseline configs x 6 latencies. */
std::vector<std::pair<std::string, harness::ExperimentConfig>>
fig05Points()
{
    std::vector<std::pair<std::string, harness::ExperimentConfig>> pts;
    for (core::ConfigName cfg : harness::baselineConfigList()) {
        for (int lat : harness::paperLatencies) {
            harness::ExperimentConfig e;
            e.config = cfg;
            e.loadLatency = lat;
            pts.emplace_back("doduc", e);
        }
    }
    return pts;
}

std::string
runRequestOf(
    const std::vector<std::pair<std::string,
                                harness::ExperimentConfig>> &pts,
    uint64_t id)
{
    std::string out = strfmt(
        "{\"v\": 1, \"id\": %llu, \"kind\": \"run\", \"points\": [",
        (unsigned long long)id);
    for (size_t i = 0; i < pts.size(); ++i) {
        out += strfmt("%s{\"workload\": %s, \"config\": %s}",
                      i ? "," : "",
                      stats::jsonQuote(pts[i].first).c_str(),
                      harness::configJson(pts[i].second).c_str());
    }
    out += "]}";
    return out;
}

/** Per-point cache-origin tally of one run response. */
struct OriginTally
{
    size_t memory = 0, disk = 0, inflight = 0, computed = 0;
    size_t total() const { return memory + disk + inflight + computed; }
    double hitRate() const
    {
        return total()
                   ? double(memory + disk + inflight) / double(total())
                   : 0.0;
    }
};

OriginTally
tallyResponse(const std::string &payload)
{
    stats::Json doc = stats::Json::parse(payload);
    OriginTally t;
    for (const stats::Json &r : doc.at("results").array()) {
        const std::string &c = r.at("cached").str();
        if (c == "memory")
            ++t.memory;
        else if (c == "disk")
            ++t.disk;
        else if (c == "inflight")
            ++t.inflight;
        else
            ++t.computed;
    }
    return t;
}

double
percentileMs(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    size_t idx = size_t(p * double(samples.size() - 1) + 0.5);
    return samples[std::min(idx, samples.size() - 1)] * 1e3;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath = "BENCH_daemon.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            jsonPath = argv[i] + 7;
    }
    double scale = envDouble("NBL_SCALE", 1.0);
    if (scale <= 0.0)
        scale = 1.0;

    fs::path tmp =
        fs::temp_directory_path() /
        strfmt("nbl-bench-daemon-%d", int(::getpid()));
    fs::remove_all(tmp);
    fs::create_directories(tmp);
    std::string sock = (tmp / "labd.sock").string();
    std::string cacheDir = (tmp / "cache").string();

    auto pts = fig05Points();
    std::string sweepReq = runRequestOf(pts, 1);

    // ---- cold + warm + concurrent: one daemon lifetime ----
    double coldWall = 0, warmWall = 0;
    OriginTally coldTally, warmTally;
    std::vector<double> warmLat;
    const int kWarmReps = 50;
    double concWall = 0;
    std::vector<double> concLat;
    const int kThreads = 8, kReqsPerThread = 250;
    std::vector<std::string> sweepResponses;

    {
        harness::Lab lab(scale);
        service::CacheStore store(cacheDir);
        service::LabService svc(lab, store);
        service::SocketServer server(svc, {sock, false, 0});
        std::string err;
        if (!server.start(&err))
            fatal("bench_daemon: %s", err.c_str());

        int fd = connectUnix(sock);
        Clock::time_point t0 = Clock::now();
        std::string cold = roundTrip(fd, sweepReq);
        coldWall = secondsSince(t0);
        coldTally = tallyResponse(cold);
        sweepResponses.push_back(cold);

        t0 = Clock::now();
        for (int r = 0; r < kWarmReps; ++r) {
            Clock::time_point s = Clock::now();
            std::string resp = roundTrip(fd, sweepReq);
            warmLat.push_back(secondsSince(s));
            OriginTally t = tallyResponse(resp);
            warmTally.memory += t.memory;
            warmTally.disk += t.disk;
            warmTally.inflight += t.inflight;
            warmTally.computed += t.computed;
        }
        warmWall = secondsSince(t0);
        ::close(fd);

        // Concurrent mixed load: every thread its own connection,
        // deterministic request mix (no RNG -- reproducible shape).
        std::vector<std::vector<double>> lat(kThreads);
        Clock::time_point c0 = Clock::now();
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&, t] {
                int cfd = connectUnix(sock);
                for (int i = 0; i < kReqsPerThread; ++i) {
                    int kind = (t + i) % 10;
                    std::string req;
                    if (kind == 0) {
                        req = strfmt("{\"v\": 1, \"id\": %d, "
                                     "\"kind\": \"ping\"}",
                                     i);
                    } else if (kind == 1) {
                        req = strfmt("{\"v\": 1, \"id\": %d, "
                                     "\"kind\": \"stats\"}",
                                     i);
                    } else {
                        size_t p = size_t(t * 31 + i) % pts.size();
                        req = runRequestOf({pts[p]}, uint64_t(i));
                    }
                    Clock::time_point s = Clock::now();
                    roundTrip(cfd, req);
                    lat[size_t(t)].push_back(secondsSince(s));
                }
                ::close(cfd);
            });
        }
        for (std::thread &th : threads)
            th.join();
        concWall = secondsSince(c0);
        for (const auto &v : lat)
            concLat.insert(concLat.end(), v.begin(), v.end());

        server.stop();
        server.wait();
    }

    // ---- restart: a fresh daemon over the same cache dir ----
    double restartWall = 0;
    OriginTally restartTally;
    {
        harness::Lab lab(scale);
        service::CacheStore store(cacheDir);
        service::LabService svc(lab, store);
        service::SocketServer server(svc, {sock, false, 0});
        std::string err;
        if (!server.start(&err))
            fatal("bench_daemon: restart: %s", err.c_str());
        int fd = connectUnix(sock);
        Clock::time_point t0 = Clock::now();
        std::string resp = roundTrip(fd, sweepReq);
        restartWall = secondsSince(t0);
        restartTally = tallyResponse(resp);
        sweepResponses.push_back(resp);
        ::close(fd);
        server.stop();
        server.wait();
    }

    // ---- bit-identity: every daemon answer vs a direct Lab run ----
    size_t mismatches = 0, compared = 0;
    {
        harness::Lab lab(scale);
        for (const std::string &payload : sweepResponses) {
            stats::Json doc = stats::Json::parse(payload);
            const auto &results = doc.at("results").array();
            if (results.size() != pts.size())
                fatal("bench_daemon: %zu results for %zu points",
                      results.size(), pts.size());
            for (size_t i = 0; i < results.size(); ++i) {
                stats::Snapshot remote =
                    stats::snapshotFromJson(results[i].at("stats"));
                stats::Snapshot local = stats::snapshotOfRun(
                    lab.run(pts[i].first, pts[i].second).run);
                ++compared;
                if (!local.countersEqual(remote))
                    ++mismatches;
            }
        }
    }

    double warmP50 = percentileMs(warmLat, 0.50);
    double warmP99 = percentileMs(warmLat, 0.99);
    double concP50 = percentileMs(concLat, 0.50);
    double concP99 = percentileMs(concLat, 0.99);
    double warmHitRate = warmTally.hitRate();
    bool gateHits = warmHitRate >= 0.95;
    bool gateP50 = warmP50 < 1.0;
    bool gateEqual = mismatches == 0;

    std::printf("bench_daemon (scale %.2f, socket %s)\n", scale,
                sock.c_str());
    std::printf(
        "  cold    %2zu points  %7.3f s  (%zu computed)\n",
        coldTally.total(), coldWall, coldTally.computed);
    std::printf("  warm    %d x %zu points  p50 %.3f ms  p99 %.3f ms  "
                "hit rate %.1f%%  (%.0f req/s)\n",
                kWarmReps, pts.size(), warmP50, warmP99,
                100.0 * warmHitRate, double(kWarmReps) / warmWall);
    std::printf("  conc    %d threads x %d reqs  p50 %.3f ms  "
                "p99 %.3f ms  %.3f s  (%.0f req/s)\n",
                kThreads, kReqsPerThread, concP50, concP99, concWall,
                double(kThreads * kReqsPerThread) / concWall);
    std::printf("  restart %2zu points  %7.3f s  (%zu disk, "
                "%zu computed)\n",
                restartTally.total(), restartWall, restartTally.disk,
                restartTally.computed);
    std::printf("  verify  %zu/%zu daemon snapshots bit-identical to "
                "direct Lab runs\n",
                compared - mismatches, compared);
    std::printf("  gates   hit-rate>=95%%: %s   p50<1ms: %s   "
                "countersEqual: %s\n",
                gateHits ? "ok" : "FAIL", gateP50 ? "ok" : "FAIL",
                gateEqual ? "ok" : "FAIL");

    std::string json = strfmt(
        "{\n"
        "  \"benchmark\": \"bench/bench_daemon (fig05 doduc 42-point "
        "sweep + %d-thread mixed load over a unix socket; the daemon "
        "stack is in-process but every request crosses the real "
        "framing + socket path)\",\n"
        "  \"scale\": %.3g,\n"
        "  \"cold\": {\"points\": %zu, \"wall_s\": %.4f, "
        "\"computed\": %zu},\n"
        "  \"warm\": {\"repetitions\": %d, \"points_per_request\": "
        "%zu, \"request_p50_ms\": %.4f, \"request_p99_ms\": %.4f, "
        "\"cache_hit_rate\": %.4f, \"req_per_s\": %.1f, "
        "\"points_per_s\": %.0f},\n"
        "  \"concurrent\": {\"threads\": %d, \"requests\": %d, "
        "\"mix\": \"80%% single-point run, 10%% ping, 10%% stats\", "
        "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"wall_s\": %.4f, "
        "\"req_per_s\": %.1f},\n"
        "  \"restart\": {\"points\": %zu, \"wall_s\": %.4f, "
        "\"disk_hits\": %zu, \"computed\": %zu},\n"
        "  \"verify\": {\"snapshots_compared\": %zu, "
        "\"mismatches\": %zu},\n"
        "  \"gates\": {\"warm_hit_rate_ge_95pct\": %s, "
        "\"warm_p50_lt_1ms\": %s, \"counters_equal\": %s},\n"
        "  \"notes\": \"warm requests are answered from the service "
        "memo (no simulation); restart answers come from the on-disk "
        "content-addressed store. countersEqual compares every "
        "daemon-served snapshot against a direct in-process Lab run "
        "of the same point, so cache layers are proven invisible in "
        "the counters. Timing gates reflect a shared CI container; "
        "hit-rate and bit-identity gates are deterministic.\"\n"
        "}\n",
        kThreads, scale, coldTally.total(), coldWall,
        coldTally.computed, kWarmReps, pts.size(), warmP50, warmP99,
        warmHitRate, double(kWarmReps) / warmWall,
        double(kWarmReps) * double(pts.size()) / warmWall, kThreads,
        kThreads * kReqsPerThread, concP50, concP99, concWall,
        double(kThreads * kReqsPerThread) / concWall,
        restartTally.total(), restartWall, restartTally.disk,
        restartTally.computed, compared, mismatches,
        gateHits ? "true" : "false", gateP50 ? "true" : "false",
        gateEqual ? "true" : "false");
    harness::writeFileOrDie(jsonPath, json);
    std::printf("  wrote %s\n", jsonPath.c_str());

    fs::remove_all(tmp);
    // Bit-identity is the hard gate; timing gates are reported in the
    // artifact but a noisy container must not turn them into flakes.
    return gateEqual && gateHits ? 0 : 1;
}
