/**
 * @file
 * Figure 4: benchmark characteristics -- instruction, load, and store
 * reference counts as a function of the scheduled load latency, for
 * the five benchmarks the paper discusses in detail.
 *
 * Expected shape (paper): counts vary slightly with the load latency
 * because register allocation happens after scheduling: longer
 * assumed latencies stretch live ranges and change the number of
 * register spills to memory.
 */

#include "bench_common.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::Lab &lab = nbl_bench::benchLab();

    harness::ExperimentConfig cfg;
    cfg.config = core::ConfigName::NoRestrict;
    harness::printHeader("Figure 4",
                         "benchmark characteristics vs load latency",
                         cfg);

    Table t("dynamic references (thousands) by scheduled load latency");
    t.header({"benchmark", "lat", "instrs", "loads", "stores",
              "spill slots"});
    std::vector<std::string> names = workloads::detailedWorkloadNames();
    names.push_back("fpppp"); // the register-pressure benchmark
    {
        std::vector<harness::ExperimentConfig> cfgs;
        for (int lat : harness::paperLatencies) {
            cfg.loadLatency = lat;
            cfgs.push_back(cfg);
        }
        nbl_bench::prewarm(names, cfgs);
    }
    for (const std::string &name : names) {
        uint64_t imin = UINT64_MAX, imax = 0;
        for (int lat : harness::paperLatencies) {
            cfg.loadLatency = lat;
            auto r = lab.run(name, cfg);
            const auto &cs = r.run.cpu;
            imin = std::min(imin, cs.instructions);
            imax = std::max(imax, cs.instructions);
            t.row({name, std::to_string(lat),
                   Table::num(double(cs.instructions) / 1000.0, 1),
                   Table::num(double(cs.loads) / 1000.0, 1),
                   Table::num(double(cs.stores) / 1000.0, 1),
                   std::to_string(r.compileInfo.spillSlots)});
        }
        t.row({name + " spread",
               "", Table::num(100.0 * double(imax - imin) /
                              double(imin), 2) + "%", "", "", ""});
        t.separator();
    }
    t.print();

    std::printf("\npaper (Figure 4): references change <2%% with "
                "latency, e.g. doduc 1025M..1035M instructions, "
                "tomcatv loads 297M..318M.\n");
    return 0;
}
