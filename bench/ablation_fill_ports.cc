/**
 * @file
 * Ablation: register-file write ports for fills (paper section 6).
 *
 * The baseline fills every destination waiting on a returning block
 * simultaneously, which assumes a multi-ported register file. The
 * paper argues the correction for a limited number of write ports is
 * "probably not significant enough to be included" because there are
 * usually only a few misses outstanding; this ablation measures that
 * claim on the most merge-heavy workloads.
 */

#include "bench_common.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::Lab &lab = nbl_bench::benchLab();

    harness::ExperimentConfig base;
    base.loadLatency = 10;
    base.config = core::ConfigName::NoRestrict;
    harness::printHeader("Ablation",
                         "fill write ports (section 6 correction)",
                         base);

    {
        std::vector<harness::ExperimentConfig> cfgs;
        for (unsigned ports : {1u, 2u, 4u, 0u}) {
            harness::ExperimentConfig e = base;
            e.fillWritePorts = ports;
            cfgs.push_back(e);
        }
        nbl_bench::prewarm({"tomcatv", "su2cor", "nasa7", "doduc",
                            "eqntott"}, cfgs);
    }

    Table t("MCPI by number of register write ports serving fills");
    t.header({"benchmark", "1 port", "2 ports", "4 ports",
              "unlimited", "1-port overhead"});

    for (const char *wl : {"tomcatv", "su2cor", "nasa7", "doduc",
                           "eqntott"}) {
        double m[4];
        int i = 0;
        for (unsigned ports : {1u, 2u, 4u, 0u}) {
            harness::ExperimentConfig e = base;
            e.fillWritePorts = ports;
            m[i++] = lab.run(wl, e).mcpi();
        }
        double overhead =
            m[3] > 0 ? 100.0 * (m[0] - m[3]) / m[3] : 0.0;
        t.row({wl, Table::num(m[0], 3), Table::num(m[1], 3),
               Table::num(m[2], 3), Table::num(m[3], 3),
               Table::num(overhead, 1) + "%"});
    }
    t.print();

    std::printf("\nreading: even one fill port costs only a few "
                "percent on merge-heavy codes -- the paper's claim "
                "that the write-port correction is a second-order "
                "effect (section 6) holds on this substrate.\n");
    return 0;
}
