/**
 * @file
 * Stall-policy extension (beyond the paper): MSHR pressure from a
 * next-line prefetcher, per MSHR organization.
 *
 * The prefetcher (policy/stall_policy.hh) rides along on demand
 * misses and issues up to `degree` next-line fetches, but only
 * through MSHRs the organization has to spare: a prefetch that would
 * need the last free register -- or any register, on mc=1 where the
 * demand miss holds the only one -- is counted in pf.mshr_denied and
 * dropped. That makes this sweep a direct probe of the paper's
 * central resource: organizations sized "just enough" for demand
 * overlap have nothing left for prefetch, while the unrestricted
 * inverted MSHR absorbs the extra fetches and converts later demand
 * misses into hits (pf.useful).
 *
 * Expected shape: mc=1 denies every prefetch (MCPI column flat);
 * small-MSHR organizations deny most and gain little; no-restrict
 * issues the full stream and shows both the benefit (useful hits)
 * and the cost (pf.evict_harm -- prefetched lines that displaced
 * live data).
 */

#include "bench_common.hh"
#include "util/table.hh"

namespace
{

/** One prefetcher setting of the sweep. */
struct PfPoint
{
    const char *label;
    nbl::policy::PrefetchConfig pf;
};

std::vector<PfPoint>
pfPoints()
{
    using nbl::policy::PrefetchMode;
    std::vector<PfPoint> pts;
    pts.push_back({"off", {}});
    for (unsigned d : {1u, 2u, 4u}) {
        nbl::policy::PrefetchConfig p;
        p.mode = PrefetchMode::NextLine;
        p.degree = d;
        pts.push_back(
            {d == 1 ? "deg=1" : d == 2 ? "deg=2" : "deg=4", p});
    }
    return pts;
}

} // namespace

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::Lab &lab = nbl_bench::benchLab();

    harness::ExperimentConfig base;
    base.loadLatency = 10;
    harness::printHeader("Prefetch pressure sweep",
                         "tomcatv MCPI and MSHR occupancy vs "
                         "next-line prefetch degree, latency 10",
                         base);

    const std::vector<core::ConfigName> cfgs = {
        core::ConfigName::Mc1, core::ConfigName::Mc2,
        core::ConfigName::Fs1, core::ConfigName::NoRestrict};
    const std::vector<PfPoint> pts = pfPoints();

    auto pointOf = [&](core::ConfigName c, const PfPoint &p) {
        harness::ExperimentConfig e = base;
        e.config = c;
        e.stallPolicy.prefetch = p.pf;
        return e;
    };
    {
        std::vector<harness::ExperimentConfig> pcfgs;
        for (core::ConfigName c : cfgs)
            for (const PfPoint &p : pts)
                pcfgs.push_back(pointOf(c, p));
        nbl_bench::prewarm({"tomcatv"}, pcfgs);
    }

    Table t("tomcatv MCPI by next-line prefetch degree");
    {
        std::vector<std::string> head = {"config"};
        for (const PfPoint &p : pts)
            head.push_back(p.label);
        head.push_back("peak fetches (deg=4)");
        t.header(std::move(head));
    }

    Table t2("prefetch accounting at degree 4 (issued through spare "
             "MSHRs only)");
    t2.header({"config", "issued", "useful", "denied", "evict harm"});

    bool smallest_denied = false;
    for (core::ConfigName c : cfgs) {
        std::vector<std::string> row = {core::configLabel(c)};
        unsigned peak = 0;
        for (const PfPoint &p : pts) {
            const harness::ExperimentResult &r =
                lab.run("tomcatv", pointOf(c, p));
            row.push_back(Table::num(r.mcpi(), 3));
            if (p.pf.degree == 4 &&
                p.pf.mode != policy::PrefetchMode::Off) {
                peak = r.run.maxInflightFetches;
                const policy::PrefetchStats &s = r.run.pf;
                t2.row({core::configLabel(c),
                        std::to_string(s.issued),
                        std::to_string(s.useful),
                        std::to_string(s.mshrDenied),
                        std::to_string(s.evictHarm)});
                if (c == core::ConfigName::Mc1 && s.mshrDenied > 0)
                    smallest_denied = true;
            }
        }
        row.push_back(std::to_string(peak));
        t.row(std::move(row));
    }
    t.print();
    t2.print();

    // Stride-mode comparison at the unrestricted point: the stride
    // detector follows tomcatv's column walks where next-line cannot.
    {
        harness::ExperimentConfig nl =
            pointOf(core::ConfigName::NoRestrict, pts[2]);
        harness::ExperimentConfig st = nl;
        st.stallPolicy.prefetch.mode = policy::PrefetchMode::Stride;
        const harness::ExperimentResult &a = lab.run("tomcatv", nl);
        const harness::ExperimentResult &b = lab.run("tomcatv", st);
        std::printf("\nno restrict, degree 2: next-line MCPI %.3f "
                    "(%llu useful of %llu issued) vs stride MCPI "
                    "%.3f (%llu useful of %llu issued)\n",
                    a.mcpi(), (unsigned long long)a.run.pf.useful,
                    (unsigned long long)a.run.pf.issued, b.mcpi(),
                    (unsigned long long)b.run.pf.useful,
                    (unsigned long long)b.run.pf.issued);
    }

    std::printf("\ncheck: prefetches are admitted only through spare "
                "MSHRs -- the smallest organization (mc=1) reports "
                "mshr_denied > 0 (%s) and peak in-flight fetches "
                "never exceed the organization's MSHR count.\n",
                smallest_denied ? "holds" : "VIOLATED");
    return 0;
}
