/**
 * @file
 * Figure 5: baseline miss CPI for doduc -- MCPI vs scheduled load
 * latency for the seven configurations, 8 KB direct-mapped cache,
 * 32 B lines, 16-cycle miss penalty.
 *
 * Expected shape (paper): all lockup-free configurations nearly
 * coincide at load latency 1; at latency 10, mc=1 is ~2.9x the
 * unrestricted MCPI, mc=2 ~1.7x, fc=2 ~1.3x; mc=2 beats fc=1 (two
 * primary misses are worth more to doduc than unlimited secondaries).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::ExperimentConfig base;
    auto curves = nbl_bench::runCurveFigure(
        "Figure 5", "baseline miss CPI for doduc", "doduc", base,
        harness::baselineConfigList());

    // Paper's latency-10 ratio check.
    double inf = curves.back().mcpiAt(10);
    std::printf("\nratios to 'no restrict' at load latency 10 "
                "(paper: mc=1 2.9, mc=2 1.7, fc=1 2.4, fc=2 1.3):\n");
    for (const auto &c : curves) {
        std::printf("  %-10s %.2f\n", c.label.c_str(),
                    c.mcpiAt(10) / inf);
    }
    return 0;
}
