/**
 * @file
 * Figure 8: baseline load miss rate for doduc -- combined primary +
 * secondary rate and the secondary-only rate, per configuration and
 * scheduled load latency.
 *
 * Expected shape (paper): the combined rate is roughly flat-with-dips
 * in the latency (schedule-induced conflict-miss changes, e.g. the
 * latency-6 dip); the secondary-miss rate grows with latency as more
 * loads to an in-flight line overlap, and is zero for configurations
 * that cannot merge secondaries (mc=0, mc=1).
 */

#include "bench_common.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::Lab &lab = nbl_bench::benchLab();

    harness::ExperimentConfig base;
    harness::printHeader("Figure 8", "baseline miss rate for doduc",
                         base);

    auto cfgs = harness::baselineConfigList();
    auto curves = harness::sweepCurves(lab, "doduc", base, cfgs);

    for (int pass = 0; pass < 2; ++pass) {
        Table t(pass == 0 ? "primary + secondary load miss rate (%)"
                          : "secondary load miss rate (%)");
        std::vector<std::string> head = {"load latency"};
        for (const auto &c : curves)
            head.push_back(c.label);
        t.header(std::move(head));
        for (size_t i = 0; i < curves[0].latencies.size(); ++i) {
            std::vector<std::string> row = {
                std::to_string(curves[0].latencies[i])};
            for (const auto &c : curves) {
                const auto &cs = c.results[i].run.cache;
                double rate = pass == 0 ? cs.loadMissRate()
                                        : cs.secondaryMissRate();
                row.push_back(Table::num(100.0 * rate, 2));
            }
            t.row(std::move(row));
        }
        t.print();
        std::printf("\n");
    }

    std::printf("paper (Figure 8): combined rate ~8-16%% with a dip "
                "at latency 6; secondary rate grows with latency for "
                "fc/no-restrict configurations.\n");
    return 0;
}
