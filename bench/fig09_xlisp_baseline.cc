/**
 * @file
 * Figure 9: baseline miss CPI for xlisp.
 *
 * Expected shape (paper): the lockup-free configurations are all
 * close together -- hit-under-miss achieves near-optimal performance
 * (1.06x unrestricted at latency 10). MCPI drifts up at long
 * latencies as grouped loads create extra conflict misses.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::ExperimentConfig base;
    auto curves = nbl_bench::runCurveFigure(
        "Figure 9", "baseline miss CPI for xlisp", "xlisp", base,
        harness::baselineConfigList());

    double inf = curves.back().mcpiAt(10);
    std::printf("\nmc=1 / unrestricted at latency 10: %.2f "
                "(paper: 1.06)\n",
                curves[2].mcpiAt(10) / inf);
    return 0;
}
