/**
 * @file
 * The dense organization sweep shared by bench/fig21_model_prune.cc
 * (the model-pruning figure and its committed artifact) and
 * bench/perf_smoke.cc (the model_prune wall-clock section), so the
 * error numbers in EXPERIMENTS.md and the speedup in
 * BENCH_parallel_sweep.json describe the same point set.
 */

#ifndef NBL_BENCH_MODEL_POINTS_HH
#define NBL_BENCH_MODEL_POINTS_HH

#include <vector>

#include "harness/experiment.hh"
#include "harness/sweep.hh"

namespace nbl_bench
{

/** The ten named organizations: two blocking, eight non-blocking. */
inline const std::vector<nbl::core::ConfigName> &
modelSweepConfigs()
{
    static const std::vector<nbl::core::ConfigName> configs = {
        nbl::core::ConfigName::Mc0Wma, nbl::core::ConfigName::Mc0,
        nbl::core::ConfigName::Mc1,    nbl::core::ConfigName::Mc2,
        nbl::core::ConfigName::Fc1,    nbl::core::ConfigName::Fc2,
        nbl::core::ConfigName::Fs1,    nbl::core::ConfigName::Fs2,
        nbl::core::ConfigName::InCache,
        nbl::core::ConfigName::NoRestrict,
    };
    return configs;
}

/** The Figure-14 destination-field shapes swept alongside them. */
inline const std::vector<std::pair<int, int>> &
modelSweepFieldShapes()
{
    static const std::vector<std::pair<int, int>> shapes = {
        {1, 1}, {1, 2}, {1, 4}, {2, 1}, {4, 1},
        {8, 1}, {2, 2}, {4, 4},
    };
    return shapes;
}

/**
 * doduc x 18 organizations (10 named + 8 Figure-14 field policies) x
 * 4 cache sizes x 3 associativities x the 6 paper latencies: 1296
 * points, 72 distinct (geometry, schedule) characterization slices.
 * Dense on purpose -- the planner's value is proportional to the
 * points per characterization profile, and the batched
 * characterization pass amortizes one trace walk over all 12
 * geometries of a latency.
 */
inline std::vector<nbl::harness::SweepPoint>
modelSweepPoints()
{
    std::vector<nbl::harness::SweepPoint> points;
    for (uint64_t kb : {2u, 4u, 8u, 16u}) {
        for (unsigned ways : {1u, 2u, 4u}) {
            std::vector<nbl::harness::ExperimentConfig> orgs;
            for (nbl::core::ConfigName cn : modelSweepConfigs()) {
                nbl::harness::ExperimentConfig cfg;
                cfg.config = cn;
                orgs.push_back(cfg);
            }
            for (auto [sub, per] : modelSweepFieldShapes()) {
                nbl::harness::ExperimentConfig cfg;
                cfg.customPolicy =
                    nbl::core::makeFieldPolicy(sub, per);
                orgs.push_back(cfg);
            }
            for (nbl::harness::ExperimentConfig cfg : orgs) {
                cfg.cacheBytes = kb * 1024;
                cfg.ways = ways;
                for (int lat : nbl::harness::paperLatencies) {
                    cfg.loadLatency = lat;
                    points.push_back({"doduc", cfg});
                }
            }
        }
    }
    return points;
}

} // namespace nbl_bench

#endif // NBL_BENCH_MODEL_POINTS_HH
