/**
 * @file
 * Figure 12: baseline miss CPI for tomcatv.
 *
 * Expected shape (paper): MCPI an order of magnitude above eqntott's;
 * monotone decrease with scheduled load latency, flattening past
 * latency 6; large spread between restricted and unrestricted
 * configurations (mc=1 is ~11x unrestricted at latency 10).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::ExperimentConfig base;
    auto curves = nbl_bench::runCurveFigure(
        "Figure 12", "baseline miss CPI for tomcatv", "tomcatv", base,
        harness::baselineConfigList());

    double inf = curves.back().mcpiAt(10);
    std::printf("\nratios to 'no restrict' at latency 10 "
                "(paper: mc=1 11, mc=2 4.7, fc=2 3.3):\n");
    for (const auto &c : curves) {
        std::printf("  %-10s %.2f\n", c.label.c_str(),
                    c.mcpiAt(10) / inf);
    }
    return 0;
}
