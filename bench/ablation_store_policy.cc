/**
 * @file
 * Ablation: non-blocking store policies (paper section 1).
 *
 * The paper's baseline uses write-around (no-write-allocate) stores
 * and shows the cost of *blocking* fetch-on-write as the "mc=0 +wma"
 * curve. This ablation completes the picture with the other common
 * method the introduction describes: buffered write-allocate, where
 * store-miss data waits in a write-buffer entry while the line is
 * fetched through the normal MSHR machinery. Store misses then
 * compete with load misses for MSHRs -- the tradeoff a designer of a
 * write-allocate non-blocking cache faces.
 */

#include "bench_common.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::Lab &lab = nbl_bench::benchLab();

    harness::ExperimentConfig base;
    base.loadLatency = 10;
    harness::printHeader("Ablation", "store policies, latency 10",
                         base);

    {
        std::vector<harness::ExperimentConfig> cfgs;
        for (auto cfg : {core::ConfigName::Mc1, core::ConfigName::Fc2,
                         core::ConfigName::NoRestrict}) {
            harness::ExperimentConfig e = base;
            e.config = cfg;
            cfgs.push_back(e);
            core::MshrPolicy p = core::makePolicy(cfg);
            p.storeMode = core::StoreMode::WriteAllocate;
            e.customPolicy = p;
            cfgs.push_back(e);
        }
        nbl_bench::prewarm({"tomcatv", "doduc", "compress", "xlisp",
                            "su2cor"}, cfgs);
    }

    Table t("MCPI by store policy (wa = write-around, alloc = "
            "buffered write-allocate)");
    t.header({"benchmark", "config", "wa", "alloc", "store miss/k",
              "merged/k"});

    for (const char *wl : {"tomcatv", "doduc", "compress", "xlisp",
                           "su2cor"}) {
        for (auto cfg : {core::ConfigName::Mc1, core::ConfigName::Fc2,
                         core::ConfigName::NoRestrict}) {
            harness::ExperimentConfig e = base;
            e.config = cfg;
            double wa = lab.run(wl, e).mcpi();

            core::MshrPolicy p = core::makePolicy(cfg);
            p.storeMode = core::StoreMode::WriteAllocate;
            e.customPolicy = p;
            auto r = lab.run(wl, e);
            t.row({wl, core::configLabel(cfg), Table::num(wa, 3),
                   Table::num(r.mcpi(), 3),
                   Table::num(double(r.run.cache.storePrimaryMisses) /
                                  1000.0, 1),
                   Table::num(double(r.run.cache.storeSecondaryMisses) /
                                  1000.0, 1)});
        }
        t.separator();
    }
    t.print();

    std::printf("\nreading: write-allocate turns store misses into "
                "fetches. With few MSHRs (mc=1) they steal miss slots "
                "from loads and can cost MCPI; with enough MSHRs the "
                "extra fetches are absorbed, and stores that hit "
                "previously fetched lines help write-through traffic. "
                "The paper's write-around baseline avoids the whole "
                "issue, which is why it calls the method cheap "
                "(section 1).\n");
    return 0;
}
