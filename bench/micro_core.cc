/**
 * @file
 * Microbenchmarks (google-benchmark) of the simulator's hot paths:
 * cache access classification, MSHR file search/allocate, inverted
 * MSHR probe, and end-to-end simulation throughput. These guard
 * against performance regressions in the library itself (they say
 * nothing about the paper's results).
 */

#include <benchmark/benchmark.h>

#include "compiler/compile.hh"
#include "core/nonblocking_cache.hh"
#include "exec/machine.hh"
#include "harness/experiment.hh"
#include "workloads/workload.hh"

using namespace nbl;

namespace
{

void
BM_CacheHit(benchmark::State &state)
{
    mem::CacheGeometry geom(8192, 32, 1);
    core::MshrPolicy policy = core::makePolicy(core::ConfigName::Fc2);
    core::NonblockingCache cache(geom, policy, mem::MainMemory());
    uint64_t now = 0;
    // Warm one line.
    cache.load(0x1000, 8, now, 1);
    now += 100;
    for (auto _ : state) {
        auto out = cache.load(0x1000, 8, now, 1);
        benchmark::DoNotOptimize(out);
        now += 2;
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_CacheHit);

void
BM_CacheMissStream(benchmark::State &state)
{
    mem::CacheGeometry geom(8192, 32, 1);
    core::MshrPolicy policy =
        core::makePolicy(core::ConfigName::NoRestrict);
    core::NonblockingCache cache(geom, policy, mem::MainMemory());
    uint64_t now = 0;
    uint64_t addr = 0x100000;
    unsigned dest = 1;
    for (auto _ : state) {
        auto out = cache.load(addr, 8, now, dest);
        benchmark::DoNotOptimize(out);
        addr += 32;
        now += 4;
        dest = (dest + 1) % 60;
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_CacheMissStream);

void
BM_InvertedMshrFill(benchmark::State &state)
{
    core::InvertedMshr inv;
    uint64_t block = 0x2000;
    for (auto _ : state) {
        for (unsigned d = 0; d < 8; ++d)
            inv.allocate(d, block, 8 * d, 8);
        auto filled = inv.fill(block);
        benchmark::DoNotOptimize(filled);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 8);
}
BENCHMARK(BM_InvertedMshrFill);

void
BM_SimulationThroughput(benchmark::State &state)
{
    workloads::Workload w = workloads::makeWorkload("tomcatv", 0.05);
    compiler::CompileParams cp;
    cp.loadLatency = 10;
    isa::Program prog = compiler::compile(w.program, cp);
    exec::MachineConfig mc;
    mc.policy = core::makePolicy(core::ConfigName::Fc2);

    uint64_t instrs = 0;
    for (auto _ : state) {
        mem::SparseMemory data = w.makeMemory();
        auto out = exec::run(prog, data, mc);
        instrs += out.cpu.instructions;
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(int64_t(instrs));
}
BENCHMARK(BM_SimulationThroughput);

void
BM_Compile(benchmark::State &state)
{
    workloads::Workload w = workloads::makeWorkload("doduc", 0.1);
    compiler::CompileParams cp;
    cp.loadLatency = int(state.range(0));
    for (auto _ : state) {
        isa::Program prog = compiler::compile(w.program, cp);
        benchmark::DoNotOptimize(prog);
    }
}
BENCHMARK(BM_Compile)->Arg(1)->Arg(20);

} // namespace

BENCHMARK_MAIN();
