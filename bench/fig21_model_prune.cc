/**
 * @file
 * Figure 21 (extension; no paper counterpart): predict-then-simulate
 * sweep pruning measured against full simulation.
 *
 * Runs the dense 1296-point organization sweep (bench/model_points.hh)
 * twice from fresh Labs: once fully simulated, once through the sweep
 * planner with pruning forced on. Prints the plan (how many points
 * the model served), the model's MCPI error on the pruned points, and
 * a representative slice with per-organization bounds -- then fails
 * (exit 1) if any provable bound is violated, any back-substituted
 * simulated point differs from the full sweep, or the simulate budget
 * is exceeded. tools/check.sh runs this as the model gate.
 *
 * stdout is deterministic (counts, errors, and MCPI only); wall
 * clocks go to stderr and to the JSON artifact, which also carries
 * the model.* summary (stats/model_stats.hh) for nbl-report.
 */

#include <chrono>
#include <cstdio>

#include "bench_common.hh"
#include "model_points.hh"
#include "stats/model_stats.hh"

using namespace nbl;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Record every point's event trace so the timed walls below compare
 *  pure simulation/planning work, not trace recording. */
void
prewarmTraces(harness::Lab &lab,
              const std::vector<harness::SweepPoint> &points)
{
    for (const auto &p : points)
        lab.prewarmTrace(p.workload, p.cfg.loadLatency,
                         p.cfg.maxInstructions);
}

} // namespace

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    const double scale = nbl_bench::benchScale();
    const auto points = nbl_bench::modelSweepPoints();

    // Arm 1: every point simulated (the ground truth).
    harness::Lab full_lab(scale);
    prewarmTraces(full_lab, points);
    auto t0 = std::chrono::steady_clock::now();
    auto full = harness::runPointsParallel(full_lab, points);
    const double full_s = secondsSince(t0);

    // Arm 2: the planner with pruning forced on (a fresh Lab, so no
    // cached results leak between the arms).
    harness::Lab plan_lab(scale);
    prewarmTraces(plan_lab, points);
    harness::PlanOptions opts;
    opts.prune = true;
    t0 = std::chrono::steady_clock::now();
    harness::PlanOutcome outcome =
        harness::planAndRun(plan_lab, points, opts);
    const double plan_s = secondsSince(t0);

    harness::PlanError err = harness::compareWithFull(outcome, full);

    std::printf("# fig21: predict-then-simulate sweep pruning "
                "(extension; no paper counterpart)\n");
    std::printf("# doduc x 18 organizations (10 named + 8 fig14 "
                "field shapes) x {2,4,8,16}KB x {1,2,4}-way x "
                "latencies {1,2,3,6,10,20}\n\n");

    std::printf("## plan\n");
    std::printf("points                   %zu\n", points.size());
    std::printf("distinct                 %zu\n",
                outcome.distinctPoints);
    std::printf("simulated                %zu (%.1f%%)\n",
                outcome.simulatedCount,
                100.0 * double(outcome.simulatedCount) /
                    double(outcome.distinctPoints));
    std::printf("pruned (model-served)    %zu\n", outcome.prunedCount);
    std::printf("unsupported              %zu\n",
                outcome.unsupportedCount);
    std::printf("exact predictions        %zu\n", outcome.exactCount);
    std::printf("characterizations        %zu\n",
                outcome.profileCount);

    std::printf("\n## model error (pruned points vs full "
                "simulation)\n");
    std::printf("max |MCPI error|         %.4f\n", err.maxAbsErr);
    std::printf("mean |MCPI error|        %.4f\n", err.meanAbsErr);
    std::printf("bound violations         %zu\n", err.boundViolations);
    std::printf("substitution mismatches  %zu\n",
                err.substitutionMismatches);

    // One representative slice: the paper's baseline geometry at the
    // longest scheduled latency, where organizations separate most.
    std::printf("\n## slice: 8KB direct-mapped, latency 20 "
                "(MCPI; how = sim|model)\n");
    std::printf("%-12s %-6s %9s %9s %9s %9s\n", "config", "how",
                "full-sim", "estimate", "lower", "upper");
    for (size_t i = 0; i < outcome.points.size(); ++i) {
        const harness::PlannedPoint &p = outcome.points[i];
        const harness::ExperimentConfig &c = p.point.cfg;
        if (c.cacheBytes != 8 * 1024 || c.ways != 1 ||
            c.loadLatency != 20)
            continue;
        const model::Prediction &pred = p.prediction;
        const char *label = c.customPolicy
                                ? c.customPolicy->label.c_str()
                                : core::configLabel(c.config);
        std::printf("%-12s %-6s %9.4f %9.4f %9.4f %9.4f\n", label,
                    p.simulated ? "sim" : "model", full[i].mcpi(),
                    pred.mcpiEstimate(), pred.mcpiLower(),
                    pred.mcpiUpper());
    }

    // Publish the summary for nbl-report / BENCH snapshots.
    stats::ModelSummary summary;
    summary.points = outcome.distinctPoints;
    summary.simulated = outcome.simulatedCount;
    summary.pruned = outcome.prunedCount;
    summary.unsupported = outcome.unsupportedCount;
    summary.exactPoints = outcome.exactCount;
    summary.profiles = outcome.profileCount;
    summary.boundViolations = err.boundViolations;
    summary.substitutionMismatches = err.substitutionMismatches;
    summary.maxAbsErr = err.maxAbsErr;
    summary.meanAbsErr = err.meanAbsErr;
    nbl_bench::setExportExtras(
        "\"model\": " + stats::modelSnapshot(summary).toJson(2));

    std::fprintf(stderr,
                 "# fig21 walls: full=%.3fs planned=%.3fs "
                 "(%.2fx fewer seconds, %.1f%% of points simulated)\n",
                 full_s, plan_s, plan_s > 0 ? full_s / plan_s : 0.0,
                 100.0 * summary.simFraction());

    // The gate: provable properties must hold unconditionally.
    bool ok = true;
    if (err.boundViolations != 0) {
        std::fprintf(stderr, "fig21: %zu model bound violations\n",
                     err.boundViolations);
        ok = false;
    }
    if (err.substitutionMismatches != 0) {
        std::fprintf(stderr,
                     "fig21: %zu back-substitution mismatches\n",
                     err.substitutionMismatches);
        ok = false;
    }
    if (outcome.unsupportedCount != 0) {
        std::fprintf(stderr,
                     "fig21: %zu points fell outside the model\n",
                     outcome.unsupportedCount);
        ok = false;
    }
    if (summary.simFraction() > opts.simulateBudget + 1e-9) {
        std::fprintf(stderr,
                     "fig21: simulated fraction %.3f exceeds the "
                     "%.3f budget\n",
                     summary.simFraction(), opts.simulateBudget);
        ok = false;
    }
    return ok ? 0 : 1;
}
