/**
 * @file
 * Figure 11: baseline miss CPI for eqntott.
 *
 * Expected shape (paper): MCPI dominated by true data dependency
 * stalls; structural hazards are under 1% of MCPI, so all lockup-free
 * configurations nearly coincide (mc=1 within ~7% of unrestricted).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::ExperimentConfig base;
    auto curves = nbl_bench::runCurveFigure(
        "Figure 11", "baseline miss CPI for eqntott", "eqntott", base,
        harness::baselineConfigList());

    // Structural-stall share at latency 10 (paper: < 1%).
    const auto &mc1 = curves[2];
    for (size_t i = 0; i < mc1.latencies.size(); ++i) {
        if (mc1.latencies[i] == 10) {
            std::printf("\nstructural share of mc=1 MCPI at latency "
                        "10: %.1f%% (paper: <1%%)\n",
                        100.0 *
                            mc1.results[i].run.cpu.structuralFraction());
        }
    }
    return 0;
}
