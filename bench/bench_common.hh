/**
 * @file
 * Shared scaffolding for the per-figure bench binaries.
 *
 * Every binary regenerates one table or figure of the paper on the
 * synthetic workloads and prints it next to the paper's published
 * values where available. Absolute numbers are not expected to match
 * (the workloads are synthetic stand-ins for SPEC92); the *shape* --
 * configuration ordering, improvement factors, crossovers -- is the
 * reproduction target (see EXPERIMENTS.md).
 */

#ifndef NBL_BENCH_COMMON_HH
#define NBL_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.hh"
#include "harness/paper_data.hh"
#include "harness/parallel.hh"
#include "harness/report.hh"
#include "harness/stats_export.hh"
#include "harness/sweep.hh"
#include "harness/sweep_planner.hh"
#include "util/env.hh"

namespace nbl_bench
{

/** Workload scale; override with NBL_SCALE for quicker smoke runs. */
inline double
benchScale()
{
    double v = nbl::envDouble("NBL_SCALE", 1.0);
    return v > 0.0 ? v : 1.0;
}

/**
 * The process-wide Lab shared by every figure a binary prints.
 * Sharing one Lab means one result cache: a point repeated across
 * figures (or between a sweep and a follow-up ratio check) is
 * simulated once.
 */
inline nbl::harness::Lab &
benchLab()
{
    static nbl::harness::Lab lab(benchScale());
    return lab;
}

namespace detail
{

/** Export destinations (set by init, read by the atexit flusher). */
struct ExportTargets
{
    std::string binary;   ///< argv[0] basename, labels artifacts.
    std::string jsonPath; ///< --json=FILE or NBL_STATS_DIR/<bin>.json.
    std::string csvPath;  ///< --csv=FILE.
    std::string extras;   ///< Extra top-level JSON members (statsJson).
};

inline ExportTargets &
exportTargets()
{
    static ExportTargets t;
    return t;
}

/**
 * atexit handler: serialize every point benchLab() simulated. Runs
 * after main returns, so it sees the final result cache; init()
 * constructs the Lab before registering it, so the Lab is destroyed
 * after the handler runs. Writes only to the requested files --
 * stdout stays byte-identical with or without export.
 */
inline void
flushExports()
{
    const ExportTargets &t = exportTargets();
    if (!t.jsonPath.empty()) {
        nbl::harness::writeFileOrDie(
            t.jsonPath,
            nbl::harness::statsJson(benchLab(), t.binary, t.extras));
    }
    if (!t.csvPath.empty()) {
        nbl::harness::writeFileOrDie(
            t.csvPath, nbl::harness::statsCsv(benchLab(), t.binary));
    }
}

} // namespace detail

/**
 * Parse export destinations and arm the atexit emitter. Every bench
 * main calls this first. Recognized:
 *   --json=FILE     write the nbl-stats-v1 JSON document to FILE;
 *   --csv=FILE      write the per-counter CSV to FILE;
 *   NBL_STATS_DIR   (env) write <dir>/<binary>.json.
 * Unknown arguments are ignored (benches take none of their own).
 * With no destination configured this is a no-op, and in all cases
 * stdout is untouched.
 */
inline void
init(int argc, char **argv)
{
    detail::ExportTargets &t = detail::exportTargets();

    std::string prog = argc > 0 && argv[0] ? argv[0] : "bench";
    size_t slash = prog.find_last_of('/');
    t.binary = slash == std::string::npos ? prog
                                          : prog.substr(slash + 1);

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--json=", 7) == 0)
            t.jsonPath = a + 7;
        else if (std::strncmp(a, "--csv=", 6) == 0)
            t.csvPath = a + 6;
    }
    if (t.jsonPath.empty()) {
        std::string dir = nbl::envString("NBL_STATS_DIR");
        if (!dir.empty())
            t.jsonPath = dir + "/" + t.binary + ".json";
    }
    if (t.jsonPath.empty() && t.csvPath.empty())
        return;

    // Construct the Lab before registering the handler: atexit
    // handlers and static destructors interleave in reverse order of
    // registration, so this ordering keeps the Lab alive when the
    // flusher reads it.
    benchLab();
    std::atexit(detail::flushExports);
}

/**
 * Attach extra top-level JSON members to this binary's --json/
 * NBL_STATS_DIR artifact (a pre-rendered `"key": value` fragment; see
 * statsJson). A no-op on stdout and on binaries with no JSON export
 * configured. fig21 publishes its model-pruning summary this way.
 */
inline void
setExportExtras(const std::string &extrasJson)
{
    detail::exportTargets().extras = extrasJson;
}

/**
 * Fan a set of experiment points out over the parallel engine into
 * benchLab()'s result cache. A binary whose reporting loops call
 * lab.run() point by point stays exactly as written -- prewarming the
 * full point set up front turns those calls into cache hits, so the
 * simulations use every core while the printed output is unchanged.
 */
inline void
prewarm(const std::vector<nbl::harness::SweepPoint> &points)
{
    nbl::harness::runPointsParallel(benchLab(), points);
}

/** prewarm() for the common workloads-crossed-with-configs shape. */
inline void
prewarm(const std::vector<std::string> &workloads,
        const std::vector<nbl::harness::ExperimentConfig> &cfgs)
{
    std::vector<nbl::harness::SweepPoint> points;
    points.reserve(workloads.size() * cfgs.size());
    for (const std::string &wl : workloads) {
        for (const nbl::harness::ExperimentConfig &cfg : cfgs)
            points.push_back({wl, cfg});
    }
    prewarm(points);
}

/**
 * Run and print one baseline-style MCPI-vs-latency figure. The sweep
 * fans out over the parallel engine (NBL_JOBS workers). Returns the
 * curves so callers can print figure-specific extras.
 *
 * With NBL_MODEL_PRUNE set (strictly opt-in; docs/MODEL.md) the sweep
 * routes through the predict-then-simulate planner: points the
 * analytical model can call confidently print model-estimated MCPI
 * instead of being simulated. Unset (or =0), output is byte-identical
 * to the plain parallel sweep.
 */
inline std::vector<nbl::harness::Curve>
runCurveFigure(const std::string &figure, const std::string &what,
               const std::string &workload,
               const nbl::harness::ExperimentConfig &base,
               const std::vector<nbl::core::ConfigName> &configs)
{
    nbl::harness::printHeader(figure, what, base);
    nbl::harness::PlanOptions plan = nbl::harness::planOptionsFromEnv();
    auto curves =
        plan.prune
            ? nbl::harness::runSweepPlanned(benchLab(), workload, base,
                                            configs, plan)
            : nbl::harness::runSweepParallel(benchLab(), workload,
                                             base, configs);
    nbl::harness::printCurves("miss CPI vs scheduled load latency",
                              curves);
    std::printf("\n");
    nbl::harness::plotCurves(curves);
    if (nbl::envFlag("NBL_CSV")) {
        std::printf("\n# CSV\n%s",
                    nbl::harness::curvesCsv(curves).c_str());
    }
    return curves;
}

} // namespace nbl_bench

#endif // NBL_BENCH_COMMON_HH
