/**
 * @file
 * Figure 6: histogram of in-flight misses and fetches for doduc with
 * the unrestricted cache, per scheduled load latency.
 *
 * Expected shape (paper): at latency 1 there is >0 in-flight ~27% of
 * the time and 92% of that time only one miss; longer latencies shift
 * weight to 2+ in flight (12% of busy time beyond one miss at
 * latency 20 vs 8% at latency 1); the max number of fetches never
 * exceeds the miss penalty (16).
 */

#include "bench_common.hh"
#include "stats/run_stats.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::Lab &lab = nbl_bench::benchLab();

    harness::ExperimentConfig cfg;
    cfg.config = core::ConfigName::NoRestrict;
    harness::printHeader("Figure 6",
                         "in-flight misses/fetches for doduc "
                         "(unrestricted cache)", cfg);

    {
        std::vector<harness::ExperimentConfig> cfgs;
        for (int lat : harness::paperLatencies) {
            cfg.loadLatency = lat;
            cfgs.push_back(cfg);
        }
        nbl_bench::prewarm({"doduc"}, cfgs);
    }
    for (int lat : harness::paperLatencies) {
        cfg.loadLatency = lat;
        auto r = lab.run("doduc", cfg);
        harness::printFlightHistogram(
            lat == 1 ? "% of busy time at each in-flight level" : "",
            lat, stats::snapshotOfRun(r.run));
    }

    std::printf("\npaper (Figure 6, doduc): lat 1: 27%% busy, 92%% of "
                "busy time at 1 miss; lat 20: 26%% busy, 53%% at 1 "
                "miss; max fetches <= 16 (the miss penalty).\n");
    return 0;
}
