/**
 * @file
 * Figure 10: miss CPI for xlisp with a fully associative cache.
 *
 * Expected shape (paper): removing conflict misses flattens the
 * curves and cuts the absolute MCPI by 2-3x versus the direct-mapped
 * cache of Figure 9, while preserving the configuration ordering.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;

    harness::ExperimentConfig dm;
    harness::ExperimentConfig fa;
    fa.ways = 0; // fully associative

    auto fa_curves = nbl_bench::runCurveFigure(
        "Figure 10", "miss CPI for xlisp, fully associative cache",
        "xlisp", fa, harness::baselineConfigList());

    // Compare against the direct-mapped baseline at latency 10.
    auto dm_curves = harness::sweepCurves(nbl_bench::benchLab(),
                                          "xlisp", dm,
                                          {core::ConfigName::Mc1});
    double dm10 = dm_curves[0].mcpiAt(10);
    double fa10 = fa_curves[2].mcpiAt(10);
    std::printf("\nmc=1 direct-mapped MCPI / fully-associative MCPI "
                "at latency 10: %.2f (paper: ~2-3x)\n",
                fa10 > 0 ? dm10 / fa10 : 0.0);
    return 0;
}
