/**
 * @file
 * Ablation: the complexity/performance Pareto frontier the paper's
 * title refers to, made explicit. For each named configuration and a
 * grid of field organizations, print the section-2 hardware cost
 * (storage bits + comparators) against measured MCPI on doduc and
 * tomcatv at load latency 10. This ties the cost model (core/
 * mshr_cost) to the timing results in one table; the paper presents
 * the same tradeoff across its Figures 5/13/14 but never tabulates
 * cost and MCPI together.
 */

#include "bench_common.hh"
#include "core/mshr_cost.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::Lab &lab = nbl_bench::benchLab();

    harness::ExperimentConfig base;
    base.loadLatency = 10;
    harness::printHeader("Ablation",
                         "hardware cost vs MCPI (doduc, tomcatv)",
                         base);

    core::CostParams cp;
    Table t("storage cost vs miss CPI at load latency 10");
    t.header({"organization", "bits", "cmps", "doduc", "tomcatv"});

    struct Entry
    {
        std::string label;
        core::MshrPolicy policy;
        core::MshrCost cost;
    };
    std::vector<Entry> entries;

    for (core::ConfigName c :
         {core::ConfigName::Mc0, core::ConfigName::Mc1,
          core::ConfigName::Mc2, core::ConfigName::Fc1,
          core::ConfigName::Fc2, core::ConfigName::Fs1,
          core::ConfigName::Fs2, core::ConfigName::InCache,
          core::ConfigName::NoRestrict}) {
        core::MshrPolicy p = core::makePolicy(c);
        core::MshrCost cost =
            c == core::ConfigName::InCache
                ? core::inCacheMshrCost(cp, 256) // 8KB / 32B lines
                : core::policyCost(cp, p);
        entries.push_back({core::configLabel(c), p, cost});
    }
    for (auto [sb, mps] : {std::pair{1, 4}, {2, 2}, {8, 1}}) {
        core::MshrPolicy p = core::makeFieldPolicy(sb, mps);
        p.numMshrs = 4; // a practical four-MSHR file
        entries.push_back({"4x " + p.label, p, core::policyCost(cp, p)});
    }

    {
        std::vector<harness::SweepPoint> points;
        for (const Entry &e : entries) {
            harness::ExperimentConfig cfg = base;
            cfg.customPolicy = e.policy;
            points.push_back({"doduc", cfg});
            points.push_back({"tomcatv", cfg});
        }
        nbl_bench::prewarm(points);
    }

    for (const Entry &e : entries) {
        harness::ExperimentConfig cfg = base;
        cfg.customPolicy = e.policy;
        double d = lab.run("doduc", cfg).mcpi();
        double m = lab.run("tomcatv", cfg).mcpi();
        t.row({e.label, std::to_string(e.cost.totalBits()),
               std::to_string(e.cost.comparators), Table::num(d, 3),
               Table::num(m, 3)});
    }
    t.print();

    std::printf("\nreading: each step down in MCPI costs bits and "
                "comparators; the knee (paper's conclusion) is at "
                "mc=2/fc=2 for numeric codes and mc=1 for integer "
                "codes.\n");
    return 0;
}
