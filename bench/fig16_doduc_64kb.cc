/**
 * @file
 * Figure 16: miss CPI for doduc with a 64 KB data cache (32 B lines,
 * 16-cycle penalty).
 *
 * Expected shape (paper): absolute MCPI drops ~5x versus the 8 KB
 * baseline, but the curves look remarkably similar -- the remaining
 * misses are still clustered, so aggressive organizations keep their
 * relative advantage.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::ExperimentConfig big;
    big.cacheBytes = 64 * 1024;
    auto curves = nbl_bench::runCurveFigure(
        "Figure 16", "miss CPI for doduc, 64KB cache", "doduc", big,
        harness::baselineConfigList());

    harness::ExperimentConfig base;
    base.loadLatency = 10;
    base.config = core::ConfigName::Mc1;
    double small = nbl_bench::benchLab().run("doduc", base).mcpi();
    double inf64 = curves.back().mcpiAt(10);
    std::printf("\nmc=1 8KB/64KB MCPI at latency 10: %.1fx (paper: "
                "~5x); mc=1/unrestricted at 64KB: %.2f (paper "
                "ordering preserved)\n",
                small / curves[2].mcpiAt(10),
                curves[2].mcpiAt(10) / inf64);
    return 0;
}
