/**
 * @file
 * Figure 13: baseline MCPI for all 18 SPEC92 stand-ins at scheduled
 * load latency 10, for mc=0, mc=1, mc=2, fc=1, fc=2 and the
 * unrestricted cache, with the ratio of each MCPI to the unrestricted
 * one -- printed next to the paper's published row for comparison.
 *
 * Expected shape (paper): integer codes and serial-miss codes
 * (compress, eqntott, espresso, xlisp, ora, spice2g6, alvinn) are
 * within ~10% of unrestricted already at mc=1; numeric codes with
 * clustered misses (doduc, fpppp, hydro2d, nasa7, su2cor, tomcatv)
 * need mc=2/fc=2 or more.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    nbl_bench::init(argc, argv);
    using namespace nbl;
    harness::Lab &lab = nbl_bench::benchLab();

    harness::ExperimentConfig base;
    base.loadLatency = 10;
    harness::printHeader("Figure 13",
                         "baseline MCPI, 18 benchmarks, latency 10",
                         base);

    std::vector<std::string> labels = {"mc=0", "mc=1", "mc=2",
                                       "fc=1", "fc=2", "inf"};
    std::vector<harness::ConfigRow> measured, reference;

    {
        std::vector<std::string> names;
        for (const auto &p : harness::paper::fig13())
            names.push_back(p.name);
        std::vector<harness::ExperimentConfig> cfgs;
        for (core::ConfigName cfg :
             {core::ConfigName::Mc0, core::ConfigName::Mc1,
              core::ConfigName::Mc2, core::ConfigName::Fc1,
              core::ConfigName::Fc2, core::ConfigName::NoRestrict}) {
            harness::ExperimentConfig e = base;
            e.config = cfg;
            cfgs.push_back(e);
        }
        nbl_bench::prewarm(names, cfgs);
    }

    for (const harness::paper::Fig13Row &p : harness::paper::fig13()) {
        harness::ConfigRow m{p.name, {}};
        for (core::ConfigName cfg :
             {core::ConfigName::Mc0, core::ConfigName::Mc1,
              core::ConfigName::Mc2, core::ConfigName::Fc1,
              core::ConfigName::Fc2, core::ConfigName::NoRestrict}) {
            harness::ExperimentConfig e = base;
            e.config = cfg;
            m.mcpi.push_back(lab.run(p.name, e).mcpi());
        }
        measured.push_back(std::move(m));
        reference.push_back(harness::ConfigRow{
            p.name, {p.mc0, p.mc1, p.mc2, p.fc1, p.fc2,
                     p.unrestricted}});
    }

    harness::printConfigTable(
        "MCPI and ratio to the unrestricted cache", labels, measured,
        reference);
    return 0;
}
