/**
 * @file
 * Register scoreboard: tracks the cycle at which each architectural
 * register's value becomes available.
 *
 * The paper's processor stalls when an instruction uses the target
 * register of a load before the register is filled; the scoreboard is
 * the mechanism that detects this (the simulator's "scoreboard
 * procedure" of section 3.2).
 */

#ifndef NBL_CPU_SCOREBOARD_HH
#define NBL_CPU_SCOREBOARD_HH

#include <array>
#include <cstdint>

#include "isa/reg.hh"

namespace nbl::cpu
{

/** Per-register ready cycles; integer r0 is always ready. */
class Scoreboard
{
  public:
    Scoreboard() { reset(); }

    void
    reset()
    {
        ready_.fill(0);
    }

    /** Cycle at which reg's value is available (0 = since reset). */
    uint64_t
    readyAt(isa::RegId reg) const
    {
        return ready_[reg.destLinear()];
    }

    /** Record that reg's value becomes available at cycle. */
    void
    setReady(isa::RegId reg, uint64_t cycle)
    {
        if (reg == isa::regZero)
            return; // r0 is hard-wired.
        ready_[reg.destLinear()] = cycle;
    }

    /** readyAt() by destLinear() number (replay fast path). */
    uint64_t
    readyAtLinear(unsigned lin) const
    {
        return ready_[lin];
    }

    /** setReady() by destLinear() number; linear 0 is integer r0. */
    void
    setReadyLinear(unsigned lin, uint64_t cycle)
    {
        if (lin == 0)
            return; // r0 is hard-wired.
        ready_[lin] = cycle;
    }

    /** True if reg is still waiting at cycle now. */
    bool
    pending(isa::RegId reg, uint64_t now) const
    {
        return readyAt(reg) > now;
    }

  private:
    std::array<uint64_t, isa::numIntRegs + isa::numFpRegs> ready_;
};

} // namespace nbl::cpu

#endif // NBL_CPU_SCOREBOARD_HH
