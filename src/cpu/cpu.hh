/**
 * @file
 * In-order CPU timing model (paper section 3.1).
 *
 * Single-cycle instruction latencies, perfect branch prediction, no
 * branch delay slots, instruction fetch always hits: the only stalls
 * are (a) using a register before a pending load fills it and (b)
 * miss-handling structural hazards reported by the data cache.
 *
 * The model is execution-driven: the interpreter (src/exec) feeds one
 * dynamic instruction at a time together with its effective address;
 * the Cpu advances its cycle counter and the register scoreboard.
 *
 * A multi-issue variant (issue width 2..4) supports the Figure 19
 * scaling study and its superscalar generalization (section 6): up to
 * `width` instructions issue per cycle, later slots must be
 * independent of earlier ones in the same cycle, and only one memory
 * operation may issue per cycle. A "perfect cache" mode treats every
 * access as a hit and yields the ideal cycle count used to compute
 * multi-issue MCPI and IPC.
 */

#ifndef NBL_CPU_CPU_HH
#define NBL_CPU_CPU_HH

#include <array>
#include <cstdint>
#include <vector>

#include "cpu/scoreboard.hh"
#include "cpu/stats.hh"
#include "core/nonblocking_cache.hh"
#include "isa/instr.hh"
#include "isa/program.hh"
#include "policy/stall_policy.hh"

namespace nbl::cpu
{

/**
 * One statically pre-decoded instruction for the single-issue replay
 * fast path (exec/event_trace.hh): the few fields the width-1 timing
 * model reads, packed into 16 bytes, plus a bitmask of the registers
 * whose scoreboard entries could stall this instruction. The replay
 * loop tests that mask against a conservative "possibly pending"
 * mask, so the common no-stall instruction never touches the
 * scoreboard at all.
 */
struct ReplayDecoded
{
    /** src1/src2; r0 excluded. The load-destination WAW check is
     *  unconditional (Cpu::fillReady_), never mask-gated. */
    uint64_t useMask = 0;
    uint8_t flags = 0;    ///< Or of the Replay* bits below.
    uint8_t dstLin = 0;   ///< RegId::destLinear() of dst.
    uint8_t size = 0;     ///< Access size (memory ops).
    uint8_t ns = 0;       ///< numSrcs().
    uint8_t src1Lin = 0;
    uint8_t src2Lin = 0;
};

inline constexpr uint8_t kReplayLoad = 1;
inline constexpr uint8_t kReplayStore = 2;
inline constexpr uint8_t kReplayMem = 4;
inline constexpr uint8_t kReplayBranch = 8;
inline constexpr uint8_t kReplayHasDst = 16;

/** Pre-decode every static instruction of program for replayRunDecoded. */
std::vector<ReplayDecoded> decodeForReplay(const isa::Program &program);

/** Execution-driven in-order timing model. */
class Cpu
{
  public:
    /**
     * @param cache Data cache; may be nullptr only in perfect mode.
     * @param issue_width 1 (baseline) to 4 (superscalar scaling).
     * @param perfect Treat all data accesses as cache hits.
     */
    explicit Cpu(core::NonblockingCache *cache, unsigned issue_width = 1,
                 bool perfect = false);

    /**
     * Attach the stall-reduction policy (docs/MODEL.md,
     * "Stall-reduction policies"): the cache-level predictor and its
     * misprediction penalty, and the SSR forwarding window. The
     * prefetcher is cache-side (NonblockingCache::configurePrefetch).
     * A defaulted policy leaves the timing model bit-identical. SSR
     * models a scalar pipeline's forwarding network and is a no-op at
     * issue widths above 1.
     */
    void configureStallPolicy(const policy::StallPolicyConfig &p);

    /**
     * Account one dynamic instruction.
     * @param in The instruction.
     * @param eff_addr Effective address for memory operations.
     * @param pc Static program counter (index into the program), the
     *           cache-level predictor's table index.
     */
    void onInstr(const isa::Instr &in, uint64_t eff_addr, uint64_t pc);

    /**
     * Replay entry for the scoreboard path (exec/event_trace.hh):
     * account a straight-line run of n instructions starting at
     * code[0] == program[base_pc], consuming one recorded effective
     * address per memory operation. Behaviorally identical to calling
     * onInstr() once per instruction; living beside onInstr lets the
     * compiler inline the per-instruction call in the replay hot loop.
     * @return The advanced effective-address cursor.
     */
    const uint64_t *replayRun(const isa::Instr *code, size_t n,
                              const uint64_t *eff_addrs,
                              uint64_t base_pc);

    /**
     * Single-issue replay fast path over pre-decoded instructions
     * (decodeForReplay()). Cycle-for-cycle and stat-for-stat identical
     * to replayRun(); the decoded form carries a per-instruction
     * register-use mask so the scoreboard is consulted only when a use
     * might actually be pending. Only valid at issue width 1.
     * @return The advanced effective-address cursor.
     */
    const uint64_t *replayRunDecoded(const ReplayDecoded *code, size_t n,
                                     const uint64_t *eff_addrs,
                                     uint64_t base_pc);

    /** Close out the run; stats().cycles becomes valid. */
    void finish();

    const CpuStats &stats() const { return stats_; }
    uint64_t cycle() const { return cycle_; }

    /** Instructions per cycle (valid after finish()). */
    double
    ipc() const
    {
        return stats_.cycles
                   ? double(stats_.instructions) / double(stats_.cycles)
                   : 0.0;
    }

  private:
    /** Move to cycle c, clearing the per-cycle issue state. */
    void advanceTo(uint64_t c);

    /** True if reg was written by an instruction in this cycle. */
    bool writtenThisCycle(isa::RegId reg) const;

    core::NonblockingCache *cache_;
    unsigned issue_width_;
    bool perfect_;

    Scoreboard sb_;
    CpuStats stats_;

    policy::LevelPredictor pred_;
    bool pred_active_ = false;   ///< Level predictor consulted.
    unsigned pred_penalty_ = 0;  ///< Cycles per underprediction.
    unsigned ssr_window_ = 0;    ///< SSR forwarding window; 0 = off.

    uint64_t cycle_ = 0;        ///< Cycle currently being filled.
    unsigned slots_used_ = 0;   ///< Instructions issued this cycle.
    bool mem_used_ = false;     ///< A memory op issued this cycle.
    /** Dests written this cycle (bitmap over destLinear numbers). */
    uint64_t written_mask_ = 0;
    /**
     * Conservative superset of the registers whose scoreboard entry
     * may still lie in the future (bitmap over destLinear numbers);
     * maintained only by replayRunDecoded(), lazily cleared when a
     * flagged register turns out to be ready.
     */
    uint64_t replay_pending_ = 0;
    /**
     * Per-register completion cycle of the last load fill (destLinear
     * numbering). Distinct from the scoreboard: a later ALU write
     * takes ownership of the register value without stalling (the
     * stale fill is squashed on arrival) and overwrites the
     * scoreboard's ready time, but the fill's destination-indexed
     * miss-handling state -- most concretely an inverted MSHR entry
     * -- stays busy until the fill returns. A later *load* targeting
     * the same register must therefore stall on this fill time (the
     * WAW interlock), even when the scoreboard says the register is
     * ready, and even for hard-wired r0 whose scoreboard entry never
     * moves.
     */
    std::array<uint64_t, isa::numIntRegs + isa::numFpRegs> fillReady_{};
    bool finished_ = false;
};

} // namespace nbl::cpu

#endif // NBL_CPU_CPU_HH
