#include "cpu/cpu.hh"

#include <algorithm>

#include "util/log.hh"

namespace nbl::cpu
{

Cpu::Cpu(core::NonblockingCache *cache, unsigned issue_width,
         bool perfect)
    : cache_(cache), issue_width_(issue_width), perfect_(perfect)
{
    if (issue_width_ < 1 || issue_width_ > 4)
        fatal("issue width must be between 1 and 4");
    if (!perfect_ && !cache_)
        fatal("non-perfect CPU requires a data cache");
}

void
Cpu::advanceTo(uint64_t c)
{
    if (c == cycle_)
        return;
    if (c < cycle_)
        panic("CPU time moved backwards");
    cycle_ = c;
    slots_used_ = 0;
    mem_used_ = false;
    written_mask_ = 0;
}

bool
Cpu::writtenThisCycle(isa::RegId reg) const
{
    return (written_mask_ >> reg.destLinear()) & 1;
}

void
Cpu::onInstr(const isa::Instr &in, uint64_t eff_addr)
{
    if (finished_)
        panic("instruction after finish()");

    ++stats_.instructions;
    if (in.isLoad())
        ++stats_.loads;
    else if (in.isStore())
        ++stats_.stores;
    else if (in.isBranch())
        ++stats_.branches;

    // An issue slot must be free.
    if (slots_used_ >= issue_width_)
        advanceTo(cycle_ + 1);

    // True-data-dependency interlock: all sources (and, for loads, the
    // destination -- the WAW interlock) must be valid.
    uint64_t earliest = cycle_;
    unsigned ns = in.numSrcs();
    if (ns >= 1)
        earliest = std::max(earliest, sb_.readyAt(in.src1));
    if (ns >= 2)
        earliest = std::max(earliest, sb_.readyAt(in.src2));
    if (in.isLoad())
        earliest = std::max(earliest, sb_.readyAt(in.dst));
    if (earliest > cycle_) {
        stats_.depStallCycles += earliest - cycle_;
        advanceTo(earliest);
    }

    // Dual-issue pairing constraints within the current cycle: at most
    // one memory op, and no intra-cycle register dependence.
    if (slots_used_ > 0) {
        bool conflict = (in.isMem() && mem_used_) ||
                        (ns >= 1 && writtenThisCycle(in.src1)) ||
                        (ns >= 2 && writtenThisCycle(in.src2)) ||
                        (in.hasDst() && writtenThisCycle(in.dst));
        if (conflict) {
            stats_.pairLostSlots += issue_width_ - slots_used_;
            advanceTo(cycle_ + 1);
        }
    }

    auto mark_issued = [&] {
        ++slots_used_;
        if (in.isMem())
            mem_used_ = true;
        if (in.hasDst())
            written_mask_ |= uint64_t{1} << in.dst.destLinear();
    };

    if (in.isMem() && !perfect_) {
        core::AccessOutcome out =
            in.isLoad()
                ? cache_->load(eff_addr, in.size, cycle_,
                               in.dst.destLinear())
                : cache_->store(eff_addr, in.size, cycle_);
        if (out.issueCycle > cycle_) {
            stats_.structStallCycles += out.issueCycle - cycle_;
            advanceTo(out.issueCycle);
        }
        if (in.isLoad())
            sb_.setReady(in.dst, out.dataReady);
        mark_issued();
        if (out.procFreeAt > cycle_ + 1) {
            // Lockup cache: the processor is stalled for the rest of
            // the miss service.
            stats_.blockStallCycles += out.procFreeAt - (cycle_ + 1);
            advanceTo(out.procFreeAt);
        }
    } else {
        if (in.hasDst())
            sb_.setReady(in.dst, cycle_ + 1);
        mark_issued();
    }
}

void
Cpu::finish()
{
    if (finished_)
        return;
    stats_.cycles = cycle_ + (slots_used_ > 0 ? 1 : 0);
    finished_ = true;
}

} // namespace nbl::cpu
