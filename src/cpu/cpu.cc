#include "cpu/cpu.hh"

#include <algorithm>

#include "util/log.hh"

namespace nbl::cpu
{

Cpu::Cpu(core::NonblockingCache *cache, unsigned issue_width,
         bool perfect)
    : cache_(cache), issue_width_(issue_width), perfect_(perfect)
{
    if (issue_width_ < 1 || issue_width_ > 4)
        fatal("issue width must be between 1 and 4");
    if (!perfect_ && !cache_)
        fatal("non-perfect CPU requires a data cache");
}

void
Cpu::advanceTo(uint64_t c)
{
    if (c == cycle_)
        return;
    if (c < cycle_)
        panic("CPU time moved backwards");
    cycle_ = c;
    slots_used_ = 0;
    mem_used_ = false;
    written_mask_ = 0;
}

bool
Cpu::writtenThisCycle(isa::RegId reg) const
{
    return (written_mask_ >> reg.destLinear()) & 1;
}

void
Cpu::configureStallPolicy(const policy::StallPolicyConfig &p)
{
    pred_active_ = p.predictor.mode != policy::PredictorMode::Off;
    pred_penalty_ = p.predictor.penalty;
    pred_ = policy::LevelPredictor(p.predictor);
    // SSR models a scalar pipeline's forwarding network; at issue
    // widths above 1 the window is ignored (docs/MODEL.md).
    ssr_window_ = issue_width_ == 1 ? p.ssr.window : 0;
}

void
Cpu::onInstr(const isa::Instr &in, uint64_t eff_addr, uint64_t pc)
{
    if (finished_)
        panic("instruction after finish()");

    ++stats_.instructions;
    if (in.isLoad())
        ++stats_.loads;
    else if (in.isStore())
        ++stats_.stores;
    else if (in.isBranch())
        ++stats_.branches;

    // An issue slot must be free.
    if (slots_used_ >= issue_width_)
        advanceTo(cycle_ + 1);

    // True-data-dependency interlock: all sources must be valid, and
    // a load's destination must not have an earlier fill still in
    // flight (the WAW interlock). The WAW check reads fillReady_, not
    // the scoreboard: an intervening non-load write takes ownership
    // of the register value without stalling (the stale fill is
    // squashed on arrival), but the fill's destination-indexed miss
    // state stays busy until it returns, so a later load must wait.
    //
    // SSR forwarding: a source-readiness bubble no wider than the
    // window is removed (the in-flight fill is forwarded straight
    // into the consumer). The WAW floor is a miss-handling resource,
    // not a data dependence, so it is never forwarded over.
    uint64_t base = cycle_;
    if (in.isLoad())
        base = std::max(base, fillReady_[in.dst.destLinear()]);
    uint64_t earliest = base;
    unsigned ns = in.numSrcs();
    if (ns >= 1)
        earliest = std::max(earliest, sb_.readyAt(in.src1));
    if (ns >= 2)
        earliest = std::max(earliest, sb_.readyAt(in.src2));
    if (ssr_window_ && earliest > base &&
        earliest - base <= ssr_window_) {
        ++stats_.ssrForwarded;
        stats_.ssrSavedCycles += earliest - base;
        earliest = base;
    }
    if (earliest > cycle_) {
        stats_.depStallCycles += earliest - cycle_;
        advanceTo(earliest);
    }

    // Dual-issue pairing constraints within the current cycle: at most
    // one memory op, and no intra-cycle register dependence. At issue
    // width 1 slots_used_ is always 0 here (the slot check above just
    // advanced the cycle), so the single-issue hot path skips the
    // pairing state entirely.
    if (issue_width_ > 1 && slots_used_ > 0) {
        bool conflict = (in.isMem() && mem_used_) ||
                        (ns >= 1 && writtenThisCycle(in.src1)) ||
                        (ns >= 2 && writtenThisCycle(in.src2)) ||
                        (in.hasDst() && writtenThisCycle(in.dst));
        if (conflict) {
            stats_.pairLostSlots += issue_width_ - slots_used_;
            advanceTo(cycle_ + 1);
        }
    }

    auto mark_issued = [&] {
        ++slots_used_;
        if (issue_width_ > 1) {
            if (in.isMem())
                mem_used_ = true;
            if (in.hasDst())
                written_mask_ |= uint64_t{1} << in.dst.destLinear();
        }
    };

    if (in.isMem() && !perfect_) {
        core::AccessOutcome out =
            in.isLoad()
                ? cache_->load(eff_addr, in.size, cycle_,
                               in.dst.destLinear())
                : cache_->store(eff_addr, in.size, cycle_);
        if (out.issueCycle > cycle_) {
            stats_.structStallCycles += out.issueCycle - cycle_;
            advanceTo(out.issueCycle);
        }
        if (in.isLoad()) {
            sb_.setReady(in.dst, out.dataReady); // No-op for r0.
            fillReady_[in.dst.destLinear()] = out.dataReady;
        }
        mark_issued();
        if (out.procFreeAt > cycle_ + 1) {
            // Lockup cache: the processor is stalled for the rest of
            // the miss service.
            stats_.blockStallCycles += out.procFreeAt - (cycle_ + 1);
            advanceTo(out.procFreeAt);
        }
        if (in.isLoad() && pred_active_) {
            // Cache-level prediction: the issue logic scheduled
            // against the predicted level; an underprediction
            // (assumed hit, was a miss) replays the consumer window,
            // restarting issue `penalty` cycles after the load's slot.
            bool actual_hit = out.kind == core::AccessKind::Hit &&
                              !out.structStalled;
            bool predicted_hit = pred_.predictAndTrain(pc, actual_hit);
            ++stats_.predLoads;
            if (predicted_hit == actual_hit) {
                ++stats_.predHits;
                if (!actual_hit)
                    stats_.predRecovered += pred_penalty_;
            } else if (predicted_hit) {
                ++stats_.predUnder;
                if (pred_penalty_) {
                    stats_.predStallCycles += pred_penalty_;
                    advanceTo(cycle_ + (slots_used_ > 0 ? 1 : 0) +
                              pred_penalty_);
                }
            } else {
                ++stats_.predOver;
            }
        }
    } else {
        if (in.hasDst())
            sb_.setReady(in.dst, cycle_ + 1);
        mark_issued();
    }
}

const uint64_t *
Cpu::replayRun(const isa::Instr *code, size_t n,
               const uint64_t *eff_addrs, uint64_t base_pc)
{
    for (size_t i = 0; i < n; ++i) {
        const isa::Instr &in = code[i];
        uint64_t ea = 0;
        if (in.isMem())
            ea = *eff_addrs++;
        onInstr(in, ea, base_pc + i);
    }
    return eff_addrs;
}

std::vector<ReplayDecoded>
decodeForReplay(const isa::Program &program)
{
    std::vector<ReplayDecoded> out(program.size());
    for (size_t pc = 0; pc < program.size(); ++pc) {
        const isa::Instr &in = program.code()[pc];
        ReplayDecoded &d = out[pc];
        d.flags = uint8_t((in.isLoad() ? kReplayLoad : 0) |
                          (in.isStore() ? kReplayStore : 0) |
                          (in.isMem() ? kReplayMem : 0) |
                          (in.isBranch() ? kReplayBranch : 0) |
                          (in.hasDst() ? kReplayHasDst : 0));
        d.dstLin = uint8_t(in.dst.destLinear());
        d.src1Lin = uint8_t(in.src1.destLinear());
        d.src2Lin = uint8_t(in.src2.destLinear());
        d.ns = uint8_t(in.numSrcs());
        d.size = in.size;
        if (d.ns >= 1)
            d.useMask |= uint64_t{1} << d.src1Lin;
        if (d.ns >= 2)
            d.useMask |= uint64_t{1} << d.src2Lin;
        d.useMask &= ~uint64_t{1}; // r0 is hard-wired, never pending.
    }
    return out;
}

const uint64_t *
Cpu::replayRunDecoded(const ReplayDecoded *code, size_t n,
                      const uint64_t *eff_addrs, uint64_t base_pc)
{
    if (finished_)
        panic("instruction after finish()");
    if (issue_width_ != 1)
        panic("replayRunDecoded requires issue width 1");

    // Local mirrors of the per-run state (advanceTo() at width 1
    // reduces to "bump the cycle, clear the issued flag"); written
    // back before returning so finish() and the generic path stay
    // coherent.
    uint64_t cycle = cycle_;
    bool issued = slots_used_ > 0;
    uint64_t pending = replay_pending_;

    for (size_t i = 0; i < n; ++i) {
        const ReplayDecoded &in = code[i];
        ++stats_.instructions;
        stats_.loads += in.flags & kReplayLoad;
        stats_.stores += (in.flags / kReplayStore) & 1;
        stats_.branches += (in.flags / kReplayBranch) & 1;

        // An issue slot must be free.
        if (issued) {
            ++cycle;
            issued = false;
        }

        // True-data-dependency interlock. Sources are filtered by the
        // pending mask: when no source can still be in flight, the
        // scoreboard is not consulted (the common case). A load's WAW
        // check reads fillReady_ unconditionally -- an intervening
        // non-load write can overwrite the scoreboard entry but not
        // the fill time, so the mask cannot gate it; it is a
        // miss-handling resource, so SSR never forwards over it.
        uint64_t base = cycle;
        if (in.flags & kReplayLoad)
            base = std::max(base, fillReady_[in.dstLin]);
        uint64_t earliest = base;
        if (pending & in.useMask) {
            if (in.ns >= 1)
                earliest = std::max(earliest,
                                    sb_.readyAtLinear(in.src1Lin));
            if (in.ns >= 2)
                earliest = std::max(earliest,
                                    sb_.readyAtLinear(in.src2Lin));
            if (ssr_window_ && earliest > base &&
                earliest - base <= ssr_window_) {
                // SSR forwarding removes the bubble. The consulted
                // registers' scoreboard entries still lie in the
                // future (the fill has not landed), so they stay in
                // the pending mask for later consumers -- exactly as
                // onInstr() re-consults the scoreboard every time.
                ++stats_.ssrForwarded;
                stats_.ssrSavedCycles += earliest - base;
                earliest = base;
            } else {
                // Every consulted register is ready once `cycle`
                // reaches `earliest` below.
                pending &= ~in.useMask;
            }
        }
        if (earliest > cycle) {
            stats_.depStallCycles += earliest - cycle;
            cycle = earliest;
        }

        if ((in.flags & kReplayMem) && !perfect_) {
            core::AccessOutcome out =
                (in.flags & kReplayLoad)
                    ? cache_->load(*eff_addrs, in.size, cycle, in.dstLin)
                    : cache_->store(*eff_addrs, in.size, cycle);
            ++eff_addrs;
            if (out.issueCycle > cycle) {
                stats_.structStallCycles += out.issueCycle - cycle;
                cycle = out.issueCycle;
            }
            if (in.flags & kReplayLoad) {
                sb_.setReadyLinear(in.dstLin, out.dataReady);
                fillReady_[in.dstLin] = out.dataReady;
                // A ready cycle <= cycle+1 can never stall a later
                // instruction (they all issue at cycle+1 or after).
                if (out.dataReady > cycle + 1)
                    pending |= uint64_t{1} << in.dstLin;
            }
            issued = true;
            if (out.procFreeAt > cycle + 1) {
                // Lockup cache: the processor is stalled for the rest
                // of the miss service (and the issue slot state is
                // reset, exactly as advanceTo() does).
                stats_.blockStallCycles += out.procFreeAt - (cycle + 1);
                cycle = out.procFreeAt;
                issued = false;
            }
            if ((in.flags & kReplayLoad) && pred_active_) {
                // Cache-level prediction; mirrors onInstr() exactly
                // (issue restarts `penalty` cycles after the load's
                // slot on an underprediction).
                bool actual_hit =
                    out.kind == core::AccessKind::Hit &&
                    !out.structStalled;
                bool predicted_hit =
                    pred_.predictAndTrain(base_pc + i, actual_hit);
                ++stats_.predLoads;
                if (predicted_hit == actual_hit) {
                    ++stats_.predHits;
                    if (!actual_hit)
                        stats_.predRecovered += pred_penalty_;
                } else if (predicted_hit) {
                    ++stats_.predUnder;
                    if (pred_penalty_) {
                        stats_.predStallCycles += pred_penalty_;
                        if (issued) {
                            cycle = cycle + 1 + pred_penalty_;
                            issued = false;
                        } else {
                            cycle += pred_penalty_;
                        }
                    }
                } else {
                    ++stats_.predOver;
                }
            }
        } else {
            if (in.flags & kReplayMem)
                ++eff_addrs; // Perfect cache still consumes the address.
            if (in.flags & kReplayHasDst)
                sb_.setReadyLinear(in.dstLin, cycle + 1);
            issued = true;
        }
    }

    cycle_ = cycle;
    slots_used_ = issued ? 1 : 0;
    replay_pending_ = pending;
    return eff_addrs;
}

void
Cpu::finish()
{
    if (finished_)
        return;
    stats_.cycles = cycle_ + (slots_used_ > 0 ? 1 : 0);
    finished_ = true;
}

} // namespace nbl::cpu
