#include "cpu/scoreboard.hh"

// Scoreboard is header-only; this translation unit anchors it.
