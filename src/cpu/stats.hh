/**
 * @file
 * Execution statistics kept by the CPU timing model.
 *
 * The central metric is MCPI, miss (stall) cycles per instruction
 * (paper section 3.1): the model is built so the only stalls are those
 * attributable to data-cache misses, so
 * MCPI = (total cycles - ideal cycles) / instructions. On the
 * single-issue model the ideal cycle count is exactly the instruction
 * count and the stall categories below account for the difference
 * cycle-for-cycle.
 */

#ifndef NBL_CPU_STATS_HH
#define NBL_CPU_STATS_HH

#include <cstdint>
#include <string>

namespace nbl::stats
{
class Registry;
}

namespace nbl::cpu
{

/** Counters for one simulated run. */
struct CpuStats
{
    uint64_t instructions = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t branches = 0;

    /** Final cycle count, valid after Cpu::finish(). */
    uint64_t cycles = 0;

    /** Stalls from using a register before its load completed. */
    uint64_t depStallCycles = 0;
    /** Stalls from exhausted miss-handling resources. */
    uint64_t structStallCycles = 0;
    /** Lockup-cache stalls (the whole miss penalty, mc=0 modes). */
    uint64_t blockStallCycles = 0;
    /**
     * Dual-issue pairing cycles: second slot unusable for non-miss
     * reasons (dependence within the pair, two memory ops). Zero on
     * the single-issue model.
     */
    uint64_t pairLostSlots = 0;

    /**
     * Stall-reduction policy counters (src/policy/stall_policy.hh).
     * All zero -- and absent from snapshots -- when the policy axis is
     * defaulted; registered under pred.* / ssr.* by
     * stats::registerRun, not by registerStats below, so pre-policy
     * snapshot layouts are unchanged.
     */
    uint64_t predLoads = 0; ///< Loads the level predictor judged.
    uint64_t predHits = 0;  ///< Correct predictions (either level).
    /** Predicted miss, was a hit: conservative schedule, no penalty. */
    uint64_t predOver = 0;
    /** Predicted hit, was a miss: replay penalty charged. */
    uint64_t predUnder = 0;
    /** Replay-penalty cycles charged (the `pred` stall bucket). */
    uint64_t predStallCycles = 0;
    /** Penalty cycles avoided by correctly predicted misses. */
    uint64_t predRecovered = 0;
    uint64_t ssrForwarded = 0; ///< Load-use bubbles forwarded away.
    uint64_t ssrSavedCycles = 0; ///< Bubble cycles those removed.

    uint64_t
    missStallCycles() const
    {
        return depStallCycles + structStallCycles + blockStallCycles +
               predStallCycles;
    }

    /** Miss CPI on the single-issue model. */
    double
    mcpi() const
    {
        return instructions
                   ? double(missStallCycles()) / double(instructions)
                   : 0.0;
    }

    /** Fraction of miss stall cycles due to structural hazards. */
    double
    structuralFraction() const
    {
        uint64_t total = missStallCycles();
        return total ? double(structStallCycles) / double(total) : 0.0;
    }

    std::string str() const;

    /** Register the counters (docs/OBSERVABILITY.md). */
    void registerStats(stats::Registry &r) const;
};

} // namespace nbl::cpu

#endif // NBL_CPU_STATS_HH
