#include "cpu/stats.hh"

#include "stats/registry.hh"
#include "util/log.hh"

namespace nbl::cpu
{

void
CpuStats::registerStats(stats::Registry &r) const
{
    r.scalar("cpu.instructions", &instructions, "instructions", "s3.1");
    r.scalar("cpu.loads", &loads, "instructions", "s3.1");
    r.scalar("cpu.stores", &stores, "instructions", "s3.1");
    r.scalar("cpu.branches", &branches, "instructions", "s3.1");
    r.scalar("cpu.cycles", &cycles, "cycles", "s3.1");
    r.scalar("cpu.dep_stall_cycles", &depStallCycles, "cycles",
             "s3.1 (fig07)");
    r.scalar("cpu.struct_stall_cycles", &structStallCycles, "cycles",
             "s3.1 (fig07)");
    r.scalar("cpu.block_stall_cycles", &blockStallCycles, "cycles",
             "s3.1 (fig07)");
    r.scalar("cpu.pair_lost_slots", &pairLostSlots, "slots",
             "s3.2");
}

std::string
CpuStats::str() const
{
    return strfmt(
        "instrs=%llu loads=%llu stores=%llu cycles=%llu "
        "mcpi=%.4f (dep=%llu struct=%llu block=%llu)",
        static_cast<unsigned long long>(instructions),
        static_cast<unsigned long long>(loads),
        static_cast<unsigned long long>(stores),
        static_cast<unsigned long long>(cycles), mcpi(),
        static_cast<unsigned long long>(depStallCycles),
        static_cast<unsigned long long>(structStallCycles),
        static_cast<unsigned long long>(blockStallCycles));
}

} // namespace nbl::cpu
