#include "cpu/stats.hh"

#include "util/log.hh"

namespace nbl::cpu
{

std::string
CpuStats::str() const
{
    return strfmt(
        "instrs=%llu loads=%llu stores=%llu cycles=%llu "
        "mcpi=%.4f (dep=%llu struct=%llu block=%llu)",
        static_cast<unsigned long long>(instructions),
        static_cast<unsigned long long>(loads),
        static_cast<unsigned long long>(stores),
        static_cast<unsigned long long>(cycles), mcpi(),
        static_cast<unsigned long long>(depStallCycles),
        static_cast<unsigned long long>(structStallCycles),
        static_cast<unsigned long long>(blockStallCycles));
}

} // namespace nbl::cpu
