#include "model/profile.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "isa/instr.hh"
#include "isa/reg.hh"
#include "mem/main_memory.hh"
#include "util/log.hh"

namespace nbl::model
{

namespace
{

/**
 * Per-set LRU tag image, the same contract as the blocking reference
 * model (check/reference.cc): lookup hits refresh recency, fills take
 * an invalid way or evict the least recently used line, fully
 * associative (ways == 0) is one set of all lines.
 */
class LruTags
{
  public:
    LruTags(uint64_t cache_bytes, uint64_t line_bytes, unsigned ways)
        : ways_(ways ? ways : unsigned(cache_bytes / line_bytes)),
          sets_(ways ? cache_bytes / line_bytes / ways : 1),
          tag_(sets_ * ways_, 0), stamp_(sets_ * ways_, 0)
    {
        // Power-of-two set counts (every practical geometry) index
        // with mask/shift; 64-bit divisions in the per-access walk
        // would otherwise dominate a batched characterization.
        if ((sets_ & (sets_ - 1)) == 0) {
            mask_ = sets_ - 1;
            while ((uint64_t(1) << shift_) < sets_)
                ++shift_;
        }
    }

    uint64_t sets() const { return sets_; }

    uint64_t
    setOf(uint64_t line) const
    {
        return mask_ != ~uint64_t(0) ? (line & mask_) : line % sets_;
    }

    uint64_t
    tagOf(uint64_t line) const
    {
        return mask_ != ~uint64_t(0) ? (line >> shift_)
                                     : line / sets_;
    }

    bool
    lookup(uint64_t line, bool touch)
    {
        uint64_t set = setOf(line);
        uint64_t tag = tagOf(line);
        for (unsigned w = 0; w < ways_; ++w) {
            size_t i = set * ways_ + w;
            if (stamp_[i] != 0 && tag_[i] == tag) {
                if (touch)
                    stamp_[i] = ++clock_;
                return true;
            }
        }
        return false;
    }

    /** Fill an absent line; returns true if a valid line was evicted. */
    bool
    fill(uint64_t line)
    {
        uint64_t set = setOf(line);
        size_t victim = set * ways_;
        for (unsigned w = 0; w < ways_; ++w) {
            size_t i = set * ways_ + w;
            if (stamp_[i] == 0) {
                victim = i;
                break;
            }
            if (stamp_[i] < stamp_[victim])
                victim = i;
        }
        bool evicted = stamp_[victim] != 0;
        tag_[victim] = tagOf(line);
        stamp_[victim] = ++clock_;
        return evicted;
    }

  private:
    unsigned ways_;
    uint64_t sets_;
    /** ~0 when sets_ is not a power of two (divide fallback). */
    uint64_t mask_ = ~uint64_t(0);
    unsigned shift_ = 0;
    std::vector<uint64_t> tag_;
    std::vector<uint64_t> stamp_; ///< 0 = invalid, else recency.
    uint64_t clock_ = 0;
};

constexpr unsigned kNumRegs = isa::numIntRegs + isa::numFpRegs;
constexpr int32_t kNoPending = -1;

/** Classification state for one store-miss policy. */
struct ModeState
{
    explicit ModeState(const ProfileConfig &cfg, bool allocate)
        : tags(cfg.cacheBytes, cfg.lineBytes, cfg.ways), alloc(allocate)
    {
        std::fill(std::begin(pending), std::end(pending), kNoPending);
    }

    LruTags tags;
    bool alloc;
    ModeProfile out;
    /** pending[r]: index into out.events of the youngest outstanding
     *  fetch/near-hit whose data lands in register r; kNoPending once
     *  a consumer (or overwriter) was charged or r was re-produced. */
    int32_t pending[kNumRegs];
    /** Registers with a live pending window; the per-instruction
     *  window bookkeeping is skipped entirely while this is zero. */
    unsigned pendingCount = 0;
    /** Instruction index of the most recent fetch (any line): load
     *  hits further than the near window past it cannot be near hits,
     *  so the per-line map probe is skipped. */
    int64_t lastFetchIdx = INT64_MIN / 2;
    /** line -> (event index, instruction index) of its last fetch. */
    std::unordered_map<uint64_t, std::pair<uint32_t, uint64_t>>
        lastFetch;
};

inline void
setPending(ModeState &m, unsigned reg, int32_t e)
{
    m.pendingCount += unsigned(e >= 0) - unsigned(m.pending[reg] >= 0);
    m.pending[reg] = e;
}

/** Charge the first interlocking user of a pending register: a
 *  source read, or a later *load* targeting the same register (the
 *  fill-time WAW wait on fillReady_). A non-load overwriter squashes
 *  the stale fill without stalling, so it only ends the window. */
inline void
consume(ModeState &m, unsigned reg, uint64_t idx, bool charge)
{
    int32_t e = m.pending[reg];
    if (e < 0)
        return;
    MissEvent &ev = m.out.events[size_t(e)];
    if (charge && ev.useDist == 0)
        ev.useDist = uint32_t(
            std::min<uint64_t>(idx - ev.index, 0xffffffffu));
    m.pending[reg] = kNoPending;
    --m.pendingCount;
}

/**
 * Greedy non-overlapping chain over load-miss windows. Any set of
 * pairwise non-overlapping (miss, first-use) windows lower-bounds the
 * stalls -- the issue-cycle inequalities telescope (docs/MODEL.md) --
 * so a greedy maximal pick is sound; it skips zero-gain windows so a
 * wide window never blocks a later profitable one for nothing.
 */
uint64_t
chainBound(const std::vector<MissEvent> &events, uint64_t penalty,
           bool coldOnly)
{
    uint64_t stall = 0;
    uint64_t chainEnd = 0;
    for (const MissEvent &e : events) {
        if (e.kind != EventKind::LoadFetch || e.useDist == 0)
            continue;
        if (coldOnly && !e.cold)
            continue;
        if (e.index < chainEnd)
            continue;
        if (penalty <= e.useDist)
            continue;
        stall += penalty - e.useDist;
        chainEnd = e.index + e.useDist;
    }
    return stall;
}

} // namespace

uint64_t
resolvedPenalty(const ProfileConfig &cfg)
{
    if (cfg.missPenalty)
        return cfg.missPenalty;
    return mem::MainMemory().penalty(cfg.lineBytes);
}

std::string
profileKey(const ProfileConfig &cfg)
{
    return strfmt("%llu|%llu|%u|%u|%llu",
                  (unsigned long long)cfg.cacheBytes,
                  (unsigned long long)cfg.lineBytes, cfg.ways,
                  cfg.missPenalty,
                  (unsigned long long)cfg.maxInstructions);
}

namespace
{

/** One geometry's state within a batched characterization pass. */
struct Slot
{
    explicit Slot(const ProfileConfig &cfg)
        : wa(cfg, /*allocate=*/false), al(cfg, /*allocate=*/true)
    {
        p.cfg = cfg;
        p.penalty = resolvedPenalty(cfg);
        p.sets = wa.tags.sets();
        /** A near-hit candidate window: a fetch older than this many
         *  instructions has certainly filled by the time a hit
         *  reaches it (issue index >= instruction index, fills land
         *  penalty + fill extra cycles after issue; +16 covers every
         *  fill-extra in use). */
        nearWindow = p.penalty + 16;
    }

    ModeState wa;
    ModeState al;
    TraceProfile p;
    uint64_t nearWindow;
    bool waHit = false;
    bool alHit = false;
};

/** The per-instruction register-window upkeep for one mode: sources
 *  (and, for loads, the WAW-interlocked dst) end the pending window
 *  of the producing fetch. Cheap no-op while nothing is pending. */
inline void
windowStep(ModeState &m, uint64_t idx, unsigned ns, unsigned r1,
           unsigned r2, unsigned d, bool isLoad)
{
    if (m.pendingCount == 0)
        return;
    if (ns >= 1)
        consume(m, r1, idx, true);
    if (ns >= 2 && m.pendingCount)
        consume(m, r2, idx, true);
    if (d != 0 && m.pendingCount) {
        // Only a load overwriter interlocks on the in-flight fill
        // (fillReady_); any other write squashes the fill without
        // stalling.
        consume(m, d, idx, isLoad);
    }
}

/** Classify one memory access in one mode (hit precomputed). */
inline void
access(ModeState &m, bool isLoad, unsigned dst, uint64_t idx,
       uint64_t line, uint32_t set, uint16_t offset, bool cold,
       bool hit, uint64_t nearWindow)
{
    ModeProfile &o = m.out;
    if (isLoad) {
        if (hit) {
            ++o.loadHits;
            if (int64_t(idx) - m.lastFetchIdx <=
                int64_t(nearWindow)) {
                auto lf = m.lastFetch.find(line);
                if (lf != m.lastFetch.end() &&
                    idx - lf->second.second <= nearWindow) {
                    MissEvent e;
                    e.index = idx;
                    e.line = line;
                    e.set = set;
                    e.lineOffset = offset;
                    e.kind = EventKind::NearHit;
                    e.fetchRef = lf->second.first;
                    o.events.push_back(e);
                    if (dst != 0)
                        setPending(m, dst,
                                   int32_t(o.events.size() - 1));
                }
            }
        } else {
            ++o.loadMisses;
            ++o.fetches;
            o.evictions += m.tags.fill(line);
            MissEvent e;
            e.index = idx;
            e.line = line;
            e.set = set;
            e.lineOffset = offset;
            e.kind = EventKind::LoadFetch;
            e.cold = cold;
            o.events.push_back(e);
            m.lastFetch[line] = {uint32_t(o.events.size() - 1), idx};
            m.lastFetchIdx = int64_t(idx);
            if (dst != 0)
                setPending(m, dst, int32_t(o.events.size() - 1));
        }
    } else { // Store.
        if (hit) {
            ++o.storeHits;
        } else {
            ++o.storeMisses;
            if (m.alloc) {
                ++o.storeFills;
                ++o.fetches;
                o.evictions += m.tags.fill(line);
                MissEvent e;
                e.index = idx;
                e.line = line;
                e.set = set;
                e.lineOffset = offset;
                e.kind = EventKind::StoreFetch;
                e.cold = cold;
                o.events.push_back(e);
                m.lastFetch[line] = {uint32_t(o.events.size() - 1),
                                     idx};
                m.lastFetchIdx = int64_t(idx);
            }
        }
    }
}

} // namespace

std::vector<TraceProfile>
characterizeBatch(const isa::Program &program,
                  const exec::EventTrace &trace,
                  const std::vector<ProfileConfig> &cfgs)
{
    if (cfgs.empty())
        return {};
    program.validate();
    const uint64_t lineBytes = cfgs.front().lineBytes;
    const uint64_t maxInstructions = cfgs.front().maxInstructions;
    for (const ProfileConfig &cfg : cfgs) {
        if (cfg.lineBytes != lineBytes ||
            cfg.maxInstructions != maxInstructions) {
            fatal("characterizeBatch: configs must share lineBytes "
                  "and maxInstructions");
        }
    }
    if (trace.hitInstructionCap &&
        maxInstructions > trace.instructions) {
        fatal("characterize: trace of %s was capped at %llu "
              "instructions but the profile asks for up to %llu",
              program.name().c_str(),
              (unsigned long long)trace.instructions,
              (unsigned long long)maxInstructions);
    }

    const uint64_t budget =
        std::min(trace.instructions, maxInstructions);
    const bool hitCap =
        budget < trace.instructions || trace.hitInstructionCap;

    std::vector<Slot> slots;
    slots.reserve(cfgs.size());
    for (const ProfileConfig &cfg : cfgs)
        slots.emplace_back(cfg);

    /** Lines ever touched by any access (cold-miss detection;
     *  lineBytes is shared, so one set serves every slot). A line's
     *  first touch misses in every geometry and mode -- nothing could
     *  have filled it earlier -- so the set only needs updating when
     *  some slot missed. */
    std::unordered_set<uint64_t> seen;

    uint64_t loads = 0, stores = 0, branches = 0;
    int lineShift = -1;
    if ((lineBytes & (lineBytes - 1)) == 0) {
        lineShift = 0;
        while ((uint64_t(1) << lineShift) < lineBytes)
            ++lineShift;
    }
    const isa::Instr *code = program.code().data();
    const uint64_t *ea = trace.effAddrs.data();
    uint64_t idx = 0;

    for (size_t s = 0; idx < budget; ++s) {
        uint32_t len = uint32_t(
            std::min<uint64_t>(trace.segLen[s], budget - idx));
        uint32_t pc = trace.segStart[s];
        for (uint32_t k = 0; k < len; ++k, ++idx) {
            const isa::Instr &in = code[pc + k];

            const unsigned ns = in.numSrcs();
            const unsigned r1 = ns >= 1 ? in.src1.destLinear() : 0;
            const unsigned r2 = ns >= 2 ? in.src2.destLinear() : 0;
            const unsigned d =
                in.hasDst() ? in.dst.destLinear() : 0;
            const bool isLoad = in.isLoad();
            for (Slot &sl : slots) {
                windowStep(sl.wa, idx, ns, r1, r2, d, isLoad);
                windowStep(sl.al, idx, ns, r1, r2, d, isLoad);
            }

            if (in.isMem()) {
                uint64_t addr = *ea++;
                uint64_t line = lineShift >= 0
                                    ? addr >> lineShift
                                    : addr / lineBytes;
                uint16_t offset =
                    lineShift >= 0
                        ? uint16_t(addr & (lineBytes - 1))
                        : uint16_t(addr % lineBytes);
                if (isLoad)
                    ++loads;
                else
                    ++stores;
                bool anyMiss = false;
                for (Slot &sl : slots) {
                    sl.waHit = sl.wa.tags.lookup(line, true);
                    sl.alHit = sl.al.tags.lookup(line, true);
                    anyMiss |= !(sl.waHit && sl.alHit);
                }
                bool cold = anyMiss && seen.insert(line).second;
                for (Slot &sl : slots) {
                    uint32_t set = uint32_t(sl.wa.tags.setOf(line));
                    access(sl.wa, isLoad, d, idx, line, set, offset,
                           cold, sl.waHit, sl.nearWindow);
                    access(sl.al, isLoad, d, idx, line, set, offset,
                           cold, sl.alHit, sl.nearWindow);
                }
            } else if (in.isBranch()) {
                ++branches;
            }
        }
    }

    std::vector<TraceProfile> out;
    out.reserve(slots.size());
    for (Slot &sl : slots) {
        TraceProfile &p = sl.p;
        p.instructions = idx;
        p.loads = loads;
        p.stores = stores;
        p.branches = branches;
        p.hitCap = hitCap;
        for (ModeProfile *o : {&sl.wa.out, &sl.al.out}) {
            o->blockStall = p.penalty * o->fetches;
            o->chainStall = chainBound(o->events, p.penalty, false);
            o->coldChainStall =
                chainBound(o->events, p.penalty, true);
        }
        p.writeAround = std::move(sl.wa.out);
        p.allocate = std::move(sl.al.out);
        out.push_back(std::move(p));
    }
    return out;
}

TraceProfile
characterize(const isa::Program &program,
             const exec::EventTrace &trace, const ProfileConfig &cfg)
{
    return characterizeBatch(program, trace, {cfg}).front();
}

} // namespace nbl::model
