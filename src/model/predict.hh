/**
 * @file
 * Analytical per-organization MCPI predictor.
 *
 * Given one workload characterization (model/profile.hh) and one MSHR
 * organization, predict() returns three stall-cycle numbers:
 *
 *  - stallLower / stallUpper: *provable* bounds on the simulator's
 *    miss-stall cycles (docs/MODEL.md sketches the proofs). They are
 *    equal -- and exact -- for the blocking organizations, whose serial
 *    timing the profile reproduces cycle-for-cycle. These bounds join
 *    the blocking reference model as a differential-check oracle
 *    (check/differential.cc, check "model-bound").
 *
 *  - stallEstimate: a point estimate from an abstract replay of the
 *    compressed miss-event stream only (no tag, MSHR, or write-buffer
 *    machinery; cost O(misses), typically two orders of magnitude
 *    below a simulation). The estimate is clamped into the bounds and
 *    carries no guarantee beyond them -- the sweep planner
 *    (harness/sweep_planner.hh) decides from the bound width and
 *    decision margins which points still need real simulation.
 */

#ifndef NBL_MODEL_PREDICT_HH
#define NBL_MODEL_PREDICT_HH

#include "core/policy.hh"
#include "model/profile.hh"

namespace nbl::model
{

/** The machine knobs (beyond geometry) a prediction is for. */
struct PredictQuery
{
    core::MshrPolicy policy;
    unsigned fillWritePorts = 0;
    unsigned issueWidth = 1;
    bool perfectCache = false;
    /** True when the memory side is the paper's degenerate chain
     *  (L1 straight into constant-latency pipelined memory). */
    bool degenerateHierarchy = true;
};

/** One prediction: bounds + estimate, in stall cycles. */
struct Prediction
{
    /** False when the model does not cover the configuration
     *  (multi-issue, perfect cache, finite fill ports, non-degenerate
     *  hierarchy): bounds and estimate are meaningless. */
    bool supported = false;
    /** Bounds coincide and equal the simulator's stalls (blocking
     *  organizations with no fill-extra cycles). */
    bool exact = false;

    uint64_t instructions = 0;
    uint64_t stallLower = 0;
    uint64_t stallEstimate = 0;
    uint64_t stallUpper = 0;

    double
    mcpiOf(uint64_t stalls) const
    {
        return instructions ? double(stalls) / double(instructions)
                            : 0.0;
    }
    double mcpiLower() const { return mcpiOf(stallLower); }
    double mcpiEstimate() const { return mcpiOf(stallEstimate); }
    double mcpiUpper() const { return mcpiOf(stallUpper); }
    /** Bound width relative to the estimate (uncertainty score). */
    double
    uncertainty() const
    {
        double est = std::max(mcpiEstimate(), 0.02);
        return (mcpiUpper() - mcpiLower()) / est;
    }
};

/** Predict stalls for one organization over one characterization. */
Prediction predict(const TraceProfile &profile,
                   const PredictQuery &query);

} // namespace nbl::model

#endif // NBL_MODEL_PREDICT_HH
