#include "model/predict.hh"

#include <algorithm>
#include <cstring>
#include <limits>
#include <queue>
#include <vector>

namespace nbl::model
{

namespace
{

constexpr uint64_t kUnlimited = std::numeric_limits<uint64_t>::max();

/** MshrPolicy restrictions resolved against one profile's geometry. */
struct Limits
{
    uint64_t mshrs = kUnlimited;   ///< Max in-flight fetches.
    uint64_t misses = kUnlimited;  ///< Max in-flight misses.
    uint64_t perSet = kUnlimited;  ///< Max in-flight fetches per set.
    uint64_t mps = kUnlimited;     ///< Misses per sub-block field.
    unsigned sub = 1;              ///< Destination sub-blocks (<= 8).
};

uint64_t
eff(int v)
{
    return v < 0 ? kUnlimited : uint64_t(v);
}

Limits
resolveLimits(const core::MshrPolicy &pol, const TraceProfile &p)
{
    Limits l;
    l.sub = unsigned(std::clamp(pol.subBlocks, 1, 8));
    l.mps = eff(pol.missesPerSubBlock);
    if (pol.mode == core::CacheMode::Inverted) {
        // Limited only by destination fields.
        return l;
    }
    l.mshrs = eff(pol.numMshrs);
    l.misses = eff(pol.maxMisses);
    l.perSet = pol.fetchesPerSetTracksWays
                   ? (p.cfg.ways ? uint64_t(p.cfg.ways) : kUnlimited)
                   : eff(pol.fetchesPerSet);
    return l;
}

/**
 * Abstract replay of the miss-event stream: issue cycle of dynamic
 * instruction i is approximated as i + S where S is the stall budget
 * accumulated so far, fetches complete a fixed fill latency after
 * acceptance, and the organization's resource limits gate acceptance.
 * O(events x in-flight), no per-instruction work.
 */
uint64_t
miniSim(const ModeProfile &m, const TraceProfile &p, const Limits &lim,
        unsigned fillExtra)
{
    struct Flight
    {
        uint64_t complete = 0;
        uint64_t line = 0;
        uint32_t set = 0;
        uint32_t misses = 0;
        uint8_t sub[8] = {};
    };
    std::vector<Flight> fl;
    uint64_t missTotal = 0;
    uint64_t S = 0;
    const uint64_t fillLat = p.penalty + 1 + fillExtra;

    using Use = std::pair<uint64_t, uint64_t>; // (use index, ready).
    std::priority_queue<Use, std::vector<Use>, std::greater<Use>> uses;

    auto retire = [&](uint64_t now) {
        for (size_t i = 0; i < fl.size();) {
            if (fl[i].complete <= now) {
                missTotal -= fl[i].misses;
                fl[i] = fl.back();
                fl.pop_back();
            } else {
                ++i;
            }
        }
    };
    auto applyUses = [&](uint64_t upTo) {
        while (!uses.empty() && uses.top().first <= upTo) {
            auto [ui, ready] = uses.top();
            uses.pop();
            uint64_t at = ui + S;
            if (ready > at)
                S += ready - at;
        }
    };

    for (const MissEvent &e : m.events) {
        applyUses(e.index);
        uint64_t now = e.index + S;
        retire(now);

        Flight *f = nullptr;
        for (Flight &x : fl) {
            if (x.line == e.line) {
                f = &x;
                break;
            }
        }
        unsigned sub =
            lim.sub > 1 ? unsigned(uint64_t(e.lineOffset) * lim.sub /
                                   p.cfg.lineBytes)
                        : 0;
        if (sub >= 8)
            sub = 7;

        if (e.kind == EventKind::NearHit || f) {
            if (!f)
                continue; // Fetch already landed: a plain hit.
            // Secondary miss: attach when a miss slot and a
            // destination field are free, else stall until the line's
            // fetch completes (hit-under-miss behaviour).
            if (missTotal < lim.misses && f->sub[sub] < lim.mps) {
                ++f->misses;
                if (f->sub[sub] < 0xff)
                    ++f->sub[sub];
                ++missTotal;
                if (e.kind != EventKind::StoreFetch && e.useDist)
                    uses.push({e.index + e.useDist, f->complete});
            } else {
                uint64_t c = f->complete;
                if (c > now) {
                    S += c - now;
                    now = c;
                }
                retire(now);
            }
            continue;
        }

        // Primary miss: wait for structural resources, then fetch.
        for (;;) {
            retire(now);
            uint64_t setCount = 0;
            for (const Flight &x : fl) {
                if (x.set == e.set)
                    ++setCount;
            }
            if (fl.size() < lim.mshrs && missTotal < lim.misses &&
                setCount < lim.perSet)
                break;
            if (fl.empty())
                break; // Zero-progress limits; accept to terminate.
            bool needSameSet = setCount >= lim.perSet &&
                               fl.size() < lim.mshrs &&
                               missTotal < lim.misses;
            uint64_t c = kUnlimited;
            for (const Flight &x : fl) {
                if (needSameSet && x.set != e.set)
                    continue;
                c = std::min(c, x.complete);
            }
            if (c == kUnlimited || c <= now)
                c = now + 1;
            S += c - now;
            now = c;
        }
        Flight nf;
        nf.complete = now + fillLat;
        nf.line = e.line;
        nf.set = e.set;
        nf.misses = 1;
        nf.sub[sub] = 1;
        fl.push_back(nf);
        ++missTotal;
        if (e.kind == EventKind::LoadFetch && e.useDist)
            uses.push({e.index + e.useDist, nf.complete});
    }
    applyUses(kUnlimited);
    return S;
}

/**
 * Catch-all sound ceiling: single-issue in-order, degenerate chain,
 * unlimited fill ports. Every in-flight fetch completes within
 * penalty + fillExtra + 1 cycles of any instant, so (a) a memory
 * access waits at most that long for a structural resource, and (b)
 * each fetch's completion un-blocks at most one stalled instruction
 * (in-order: once one instruction waited out a fill, everything later
 * issues after it). Fetches <= loads + stores, so two windows per
 * memory reference cover every stall cycle; +2 absorbs the
 * acceptance-cycle bookkeeping.
 */
uint64_t
genericUpper(const TraceProfile &p, unsigned fillExtra)
{
    return 2 * (p.loads + p.stores) * (p.penalty + fillExtra + 2);
}

} // namespace

Prediction
predict(const TraceProfile &profile, const PredictQuery &query)
{
    Prediction r;
    r.instructions = profile.instructions;
    if (query.issueWidth != 1 || query.perfectCache ||
        !query.degenerateHierarchy || query.fillWritePorts != 0)
        return r;
    const core::MshrPolicy &pol = query.policy;
    // Zero-progress shapes the cache itself refuses (or would
    // deadlock on): leave them to the simulator.
    if (!pol.blocking() &&
        (pol.numMshrs == 0 || pol.maxMisses == 0 ||
         pol.fetchesPerSet == 0 || pol.missesPerSubBlock == 0 ||
         pol.subBlocks <= 0))
        return r;
    r.supported = true;

    const bool wma = pol.blocking()
                         ? pol.mode == core::CacheMode::BlockingWMA
                         : pol.storeMode ==
                               core::StoreMode::WriteAllocate;
    const ModeProfile &m =
        wma ? profile.allocate : profile.writeAround;
    const unsigned extra = pol.fillExtraCycles;

    if (pol.blocking()) {
        // The profile's immediate-fill pass *is* the blocking timing:
        // exact when fills carry no extra cycles.
        r.stallLower = m.blockStall;
        if (extra == 0) {
            r.exact = true;
            r.stallEstimate = r.stallUpper = m.blockStall;
        } else {
            r.stallUpper = genericUpper(profile, extra);
            r.stallEstimate = std::min(
                m.blockStall + uint64_t(extra) * m.fetches,
                r.stallUpper);
        }
        return r;
    }

    // Lower bound: the dependence chain (timing-independent
    // classification when eviction-free; cold misses only otherwise).
    r.stallLower = m.evictions == 0 ? m.chainStall : m.coldChainStall;

    // Upper bound: the blocking cache is a ceiling for eviction-free
    // write-around organizations with free fills (the monotonicity
    // floor theorem); otherwise the generic window ceiling.
    uint64_t upper = genericUpper(profile, extra);
    const bool invertedFinite =
        pol.mode == core::CacheMode::Inverted &&
        !(pol.subBlocks == 1 && pol.missesPerSubBlock < 0);
    if (pol.storeMode == core::StoreMode::WriteAround && extra == 0 &&
        !invertedFinite && profile.writeAround.evictions == 0)
        upper = std::min(upper, profile.writeAround.blockStall);
    r.stallUpper = std::max(upper, r.stallLower);

    uint64_t est = miniSim(m, profile, resolveLimits(pol, profile),
                           extra);
    r.stallEstimate = std::clamp(est, r.stallLower, r.stallUpper);
    return r;
}

} // namespace nbl::model
