/**
 * @file
 * Workload characterization for the analytical MCPI model.
 *
 * One timing-free pass over a recorded event trace (exec/event_trace.hh)
 * classifies every memory reference against an LRU tag image of one
 * cache geometry -- under both store-miss policies at once -- and keeps
 * the compressed miss-event stream the predictor (model/predict.hh)
 * needs: per-miss dynamic instruction index, cache set, first-consumer
 * distance, and the hit-on-recently-fetched-line events that can turn
 * into secondary misses under delayed fills.
 *
 * The pass is exact for the blocking organizations (a blocked processor
 * fills before the next access, which is precisely the immediate-fill
 * classification used here) and timing-independent for every
 * organization whenever the pass observes no evictions (a delayed fill
 * can only defer residency, and with no replacement pressure deferral
 * never changes a hit/miss outcome; see docs/MODEL.md). Profiles cost
 * one instruction-stream walk -- no MSHR, write-buffer, or flight
 * machinery -- so characterizing a geometry is several times cheaper
 * than simulating one point, and one profile serves every MSHR
 * organization and store policy at that geometry.
 */

#ifndef NBL_MODEL_PROFILE_HH
#define NBL_MODEL_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exec/event_trace.hh"
#include "isa/program.hh"

namespace nbl::model
{

/** The geometry/penalty slice one profile characterizes. */
struct ProfileConfig
{
    uint64_t cacheBytes = 8 * 1024;
    uint64_t lineBytes = 32;
    unsigned ways = 1;      ///< 0 = fully associative.
    /** 0 selects the pipelined-bus penalty (mem/main_memory.hh). */
    unsigned missPenalty = 0;
    uint64_t maxInstructions = 200'000'000;
};

/** Resolved miss penalty in cycles (pipelined-bus model when 0). */
uint64_t resolvedPenalty(const ProfileConfig &cfg);

/** Cache key for a profile (all ProfileConfig fields). */
std::string profileKey(const ProfileConfig &cfg);

/** What kind of reference a MissEvent records. */
enum class EventKind : uint8_t
{
    LoadFetch,  ///< Primary load miss: initiates a line fetch.
    StoreFetch, ///< Store miss under write-allocate: initiates a fetch.
    NearHit,    ///< Load hit on a line fetched within the last
                ///< ~penalty instructions: a secondary-miss candidate
                ///< under delayed fills.
};

/** One compressed miss-stream event (immediate-fill classification). */
struct MissEvent
{
    uint64_t index = 0;    ///< Dynamic instruction index, 0-based.
    uint64_t line = 0;     ///< Line address (addr / lineBytes).
    uint32_t set = 0;      ///< Cache set of the line.
    /** Instructions until the first reader *or overwriter* of the
     *  loaded register (both interlock on the fill); 0 = none seen. */
    uint32_t useDist = 0;
    /** For NearHit: index into events[] of the fetch it would attach
     *  to if that fetch were still in flight. */
    uint32_t fetchRef = 0;
    uint16_t lineOffset = 0; ///< Byte offset in the line (sub-blocks).
    EventKind kind = EventKind::LoadFetch;
    /** Globally first touch of this line (miss under *any* timing and
     *  either store policy: nothing could have fetched it earlier). */
    bool cold = false;
};

/** Classification counters + events under one store-miss policy. */
struct ModeProfile
{
    uint64_t loadHits = 0;
    uint64_t loadMisses = 0;  ///< Primary, immediate-fill.
    uint64_t storeHits = 0;
    uint64_t storeMisses = 0;
    uint64_t storeFills = 0;  ///< Store misses that fetch (allocate).
    uint64_t fetches = 0;
    uint64_t evictions = 0;

    /**
     * Exact stall cycles of the blocking organization over this
     * contents policy (mc=0 for write-around, mc=0 +wma for
     * write-allocate): penalty * fetches, with zero dependence and
     * structural stalls -- the blocked processor never runs ahead.
     */
    uint64_t blockStall = 0;

    /**
     * Sound lower bound on stall cycles for *any* organization, valid
     * when evictions == 0 (timing-independent classification): a
     * greedy non-overlapping chain of (miss, first-use) windows, each
     * contributing max(0, penalty - distance). Overlapped windows are
     * never double-counted, so the sum is forced serialization.
     */
    uint64_t chainStall = 0;

    /** The same chain restricted to cold (first-touch) loads: sound
     *  even with evictions, under any replacement and any timing. */
    uint64_t coldChainStall = 0;

    /** Miss-stream events in dynamic instruction order. */
    std::vector<MissEvent> events;
};

/** Everything the predictor needs about one (workload, geometry). */
struct TraceProfile
{
    ProfileConfig cfg;
    uint64_t penalty = 0;    ///< Resolved miss penalty.
    uint64_t sets = 1;
    uint64_t instructions = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t branches = 0;
    bool hitCap = false;

    ModeProfile writeAround;
    ModeProfile allocate;
};

/**
 * Characterize one recorded trace against one geometry. The trace must
 * cover cfg.maxInstructions (fatal if it was capped short, mirroring
 * exec::replayExact).
 */
TraceProfile characterize(const isa::Program &program,
                          const exec::EventTrace &trace,
                          const ProfileConfig &cfg);

/**
 * Characterize several geometries in one trace pass -- the lane-replay
 * idiom applied to characterization: the instruction stream is decoded
 * once and each geometry keeps its own tag images and register
 * windows. Output is element-for-element identical to calling
 * characterize() per config. All configs must share lineBytes and
 * maxInstructions (fatal otherwise); cacheBytes, ways, and missPenalty
 * may vary. A dense sweep's 12-geometry slice characterizes ~4x
 * faster batched than serially (the shared stream walk and cold-line
 * tracking amortize across geometries).
 */
std::vector<TraceProfile>
characterizeBatch(const isa::Program &program,
                  const exec::EventTrace &trace,
                  const std::vector<ProfileConfig> &cfgs);

} // namespace nbl::model

#endif // NBL_MODEL_PROFILE_HH
