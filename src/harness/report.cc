#include "harness/report.hh"

#include <cstdio>

#include "stats/registry.hh"
#include "util/log.hh"
#include "util/table.hh"

namespace nbl::harness
{

void
printHeader(const std::string &figure, const std::string &what,
            const ExperimentConfig &cfg)
{
    std::printf("==== %s: %s ====\n", figure.c_str(), what.c_str());
    mem::MainMemory memory = cfg.missPenalty
                                 ? mem::MainMemory(cfg.missPenalty)
                                 : mem::MainMemory();
    std::printf(
        "cache: %lluKB %s, %lluB lines, miss penalty %u cycles, "
        "issue width %u\n",
        static_cast<unsigned long long>(cfg.cacheBytes / 1024),
        cfg.ways == 0 ? "fully-associative"
                      : (cfg.ways == 1 ? "direct-mapped"
                                       : "set-associative"),
        static_cast<unsigned long long>(cfg.lineBytes),
        memory.penalty(cfg.lineBytes), cfg.issueWidth);
}

void
printConfigTable(const std::string &title,
                 const std::vector<std::string> &config_labels,
                 const std::vector<ConfigRow> &measured,
                 const std::vector<ConfigRow> &reference)
{
    Table t(title);
    std::vector<std::string> head = {"benchmark"};
    for (const std::string &c : config_labels) {
        head.push_back(c);
        head.push_back("x");
    }
    t.header(std::move(head));

    auto emit = [&](const ConfigRow &row, const char *tag) {
        std::vector<std::string> cells = {row.name + std::string(tag)};
        double base = row.mcpi.back();
        for (double v : row.mcpi) {
            cells.push_back(Table::num(v, 3));
            cells.push_back(base > 0 ? Table::ratio(v / base) : "-");
        }
        t.row(std::move(cells));
    };

    for (size_t i = 0; i < measured.size(); ++i) {
        emit(measured[i], "");
        if (i < reference.size() && !reference[i].mcpi.empty())
            emit(reference[i], " (paper)");
    }
    t.print();
}

void
printFlightHistogram(const std::string &title, int latency,
                     const stats::Snapshot &snap)
{
    Table t(title);
    t.header({"lat", ">0 in-flight", "", "1", "2", "3", "4", "5", "6",
              "7+", "max"});

    auto row = [&](const std::string &name, const char *what,
                   bool with_lat, uint64_t max_seen) {
        // Equivalent to LevelHistogram's fraction helpers, recomputed
        // from the registered buckets: busy = total - time at level 0,
        // and everything past bucket 6 folds into the 7+ column.
        const stats::Histogram &h = snap.histogram(name);
        uint64_t total = h.total();
        uint64_t busy = total - h.at("0");
        std::vector<std::string> cells;
        cells.push_back(with_lat ? std::to_string(latency) : "");
        cells.push_back(
            with_lat
                ? strfmt("%2.0f%%",
                         total ? 100.0 * double(busy) / double(total)
                               : 0.0)
                : "");
        cells.push_back(what);
        uint64_t below7 = 0;
        for (unsigned n = 1; n <= 6; ++n) {
            uint64_t c = h.at(std::to_string(n));
            below7 += c;
            cells.push_back(strfmt(
                "%2.0f",
                busy ? 100.0 * double(c) / double(busy) : 0.0));
        }
        cells.push_back(strfmt(
            "%2.0f", busy ? 100.0 * double(busy - below7) / double(busy)
                          : 0.0));
        cells.push_back(std::to_string(max_seen));
        t.row(std::move(cells));
    };

    row("flight.misses", "misses", true,
        snap.value("run.max_inflight_misses"));
    row("flight.fetches", "fetches", false,
        snap.value("run.max_inflight_fetches"));
    t.print();
}

} // namespace nbl::harness
