/**
 * @file
 * Predict-then-simulate sweep planning.
 *
 * The planner runs the analytical MCPI model (model/predict.hh) over
 * every point of a sweep and simulates only the points the model is
 * unsure about: wide prediction bounds, or organizations close enough
 * to a best-organization crossover that the bounds cannot call the
 * winner. Predicted points get synthesized results (provenance
 * "model"); simulated points are bit-identical to a full sweep, and
 * the planner back-substitutes them into the returned set.
 *
 * Pruning is strictly opt-in (PlanOptions.prune, which callers wire to
 * the NBL_MODEL_PRUNE environment flag): with it off, planAndRun
 * simulates every point and is result-for-result identical to
 * runPointsParallel. Planning decisions are derived from
 * characterization profiles only -- never from timing-engine state --
 * so the same plan falls out under execution, replay, and lane replay.
 */

#ifndef NBL_HARNESS_SWEEP_PLANNER_HH
#define NBL_HARNESS_SWEEP_PLANNER_HH

#include <vector>

#include "harness/parallel.hh"
#include "model/predict.hh"

namespace nbl::harness
{

/** Planner knobs. */
struct PlanOptions
{
    /** Master switch; false = simulate everything (the default, so
     *  every figure's output is byte-identical unless asked). */
    bool prune = false;
    /** Simulate when (upper - lower) / estimate exceeds this. */
    double uncertainty = 0.25;
    /** Simulate when a point's lower bound is within this margin of
     *  the best upper bound among the organizations it competes with
     *  (same workload/geometry/latency): the bounds cannot separate
     *  the crossover, so the winner must be measured. */
    double boundaryMargin = 0.10;
    /** Hard ceiling on the simulated fraction of model-covered
     *  points (unsupported points always simulate). A quarter keeps
     *  the planned sweep comfortably past 2x even though the lane
     *  engine amortizes its trace walk over fewer lanes when most of
     *  a batch is pruned. */
    double simulateBudget = 0.25;
    unsigned jobs = 0; ///< Thread-pool width (0 = defaultJobs()).
};

/** PlanOptions with prune wired to the NBL_MODEL_PRUNE env flag. */
PlanOptions planOptionsFromEnv();

/** The model-facing slice of one experiment configuration. */
model::ProfileConfig profileConfigFor(const ExperimentConfig &cfg);
model::PredictQuery predictQueryFor(const ExperimentConfig &cfg);

/** One planned point: the prediction, and how it was resolved. */
struct PlannedPoint
{
    SweepPoint point;
    model::Prediction prediction; ///< supported=false when not covered.
    bool simulated = true;  ///< False = result synthesized from model.
    ExperimentResult result;
};

/** What planAndRun did with a point set (counts over distinct
 *  experiment keys; duplicates resolve to their representative). */
struct PlanOutcome
{
    std::vector<PlannedPoint> points; ///< Input order, input size.
    size_t distinctPoints = 0;
    size_t simulatedCount = 0;  ///< Scheduled for real simulation.
    size_t prunedCount = 0;     ///< Served from the model.
    size_t unsupportedCount = 0; ///< Outside the model (simulated).
    size_t exactCount = 0;      ///< Provably exact predictions.
    size_t profileCount = 0;    ///< Distinct characterizations used.

    /** Results only, in input order. */
    std::vector<ExperimentResult> results() const;
};

/**
 * Plan and run a point set. With opts.prune false every point is
 * simulated (via runPointsParallel) and predictions are still attached
 * to supported points, so callers can report model error against a
 * full sweep at zero extra simulation cost.
 */
PlanOutcome planAndRun(Lab &lab,
                       const std::vector<SweepPoint> &points,
                       const PlanOptions &opts = {});

/**
 * runSweepParallel through the planner: the same curve set, with
 * pruned points carrying model-synthesized results.
 */
std::vector<Curve>
runSweepPlanned(Lab &lab, const std::string &workload,
                ExperimentConfig base,
                const std::vector<core::ConfigName> &cfgs,
                const PlanOptions &opts);

/** Model-vs-simulation comparison over one point set. */
struct PlanError
{
    double maxAbsErr = 0.0;  ///< Max |predicted - simulated| MCPI
                             ///< over pruned points.
    double meanAbsErr = 0.0; ///< Mean of the same.
    /** Simulated stalls outside [lower, upper] on any supported
     *  point, or not equal to them on an exact one. Always 0 unless
     *  the model is wrong (differential check "model-bound"). */
    size_t boundViolations = 0;
    /** Simulated points whose back-substituted counters differ from
     *  the full sweep's. Always 0: simulation is deterministic. */
    size_t substitutionMismatches = 0;
};

/**
 * Compare a planned outcome against the full simulation of the same
 * points (index-aligned). Checks bounds on every supported point --
 * simulated or pruned -- and prediction error on the pruned ones.
 */
PlanError compareWithFull(const PlanOutcome &outcome,
                          const std::vector<ExperimentResult> &full);

} // namespace nbl::harness

#endif // NBL_HARNESS_SWEEP_PLANNER_HH
