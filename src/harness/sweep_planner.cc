#include "harness/sweep_planner.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/env.hh"
#include "util/log.hh"

namespace nbl::harness
{

PlanOptions
planOptionsFromEnv()
{
    PlanOptions o;
    o.prune = envFlag("NBL_MODEL_PRUNE");
    return o;
}

model::ProfileConfig
profileConfigFor(const ExperimentConfig &cfg)
{
    model::ProfileConfig p;
    p.cacheBytes = cfg.cacheBytes;
    p.lineBytes = cfg.lineBytes;
    p.ways = cfg.ways;
    p.missPenalty = cfg.missPenalty;
    p.maxInstructions = cfg.maxInstructions;
    return p;
}

model::PredictQuery
predictQueryFor(const ExperimentConfig &cfg)
{
    model::PredictQuery q;
    q.policy = cfg.customPolicy ? *cfg.customPolicy
                                : core::makePolicy(cfg.config);
    q.fillWritePorts = cfg.fillWritePorts;
    q.issueWidth = cfg.issueWidth;
    q.perfectCache = cfg.perfectCache;
    q.degenerateHierarchy = cfg.hierarchy.degenerate();
    return q;
}

namespace
{

/** Cheap pre-gate mirroring model::predict's machine-level support
 *  check, so unsupported points never pay for a characterization. */
bool
modelEligible(const ExperimentConfig &cfg)
{
    // A defaulted point still simulates under the environment stall
    // policy (Lab::run substitutes it), which the model cannot see:
    // stand down entirely while the env policy is active.
    static const bool env_policy_defaulted =
        nbl::policy::stallPolicyFromEnv().defaulted();
    return cfg.issueWidth == 1 && !cfg.perfectCache &&
           cfg.hierarchy.degenerate() && cfg.fillWritePorts == 0 &&
           cfg.stallPolicy.defaulted() && env_policy_defaulted;
}

/**
 * Key of the decision group a point competes in: every configuration
 * field except the MSHR organization. Organizations sharing a group
 * are alternatives the sweep compares, so a crossover among them is a
 * decision boundary.
 */
std::string
decisionGroupKey(const SweepPoint &p)
{
    ExperimentConfig c = p.cfg;
    c.config = core::ConfigName::NoRestrict;
    c.customPolicy.reset();
    return experimentKey(p.workload, c);
}

/** Synthesize the result of a pruned point from its prediction. */
ExperimentResult
synthesizeResult(Lab &lab, const SweepPoint &p,
                 const model::TraceProfile &prof,
                 const model::Prediction &pred)
{
    ExperimentResult res;
    res.compileInfo = lab.compileInfo(p.workload, p.cfg.loadLatency);
    exec::RunOutput &run = res.run;
    run.provenance = exec::Provenance::Model;
    run.hitInstructionCap = prof.hitCap;
    run.missPenalty = unsigned(prof.penalty);
    cpu::CpuStats &c = run.cpu;
    c.instructions = pred.instructions;
    c.loads = prof.loads;
    c.stores = prof.stores;
    c.branches = prof.branches;
    c.cycles = pred.instructions + pred.stallEstimate;
    // Keep the stall partition consistent (cycles = instructions +
    // stalls): the whole estimate lands in the category the
    // organization stalls in.
    const core::MshrPolicy pol = predictQueryFor(p.cfg).policy;
    if (pol.blocking())
        c.blockStallCycles = pred.stallEstimate;
    else
        c.depStallCycles = pred.stallEstimate;
    return res;
}

} // namespace

std::vector<ExperimentResult>
PlanOutcome::results() const
{
    std::vector<ExperimentResult> out;
    out.reserve(points.size());
    for (const PlannedPoint &p : points)
        out.push_back(p.result);
    return out;
}

PlanOutcome
planAndRun(Lab &lab, const std::vector<SweepPoint> &points,
           const PlanOptions &opts)
{
    PlanOutcome out;
    out.points.resize(points.size());
    for (size_t i = 0; i < points.size(); ++i)
        out.points[i].point = points[i];

    std::vector<size_t> rep = dedupePointIndices(points);
    std::vector<size_t> uniq;
    uniq.reserve(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        if (rep[i] == i)
            uniq.push_back(i);
    }
    out.distinctPoints = uniq.size();

    // Characterize and predict every model-eligible representative.
    // Representatives sharing a (workload, latency) trace batch into
    // one characterization pass (Lab::profileBatch walks the trace
    // once for all their geometries); profiles stay cached per
    // (workload, fingerprint, geometry), so repeated plans pay
    // nothing. Batches are independent and fan out over the pool.
    std::set<std::string> profKeys;
    std::map<std::pair<std::string, int>, std::vector<size_t>>
        charGroups;
    for (size_t i : uniq) {
        if (modelEligible(points[i].cfg)) {
            profKeys.insert(
                points[i].workload +
                strfmt("|%d|", points[i].cfg.loadLatency) +
                model::profileKey(profileConfigFor(points[i].cfg)));
            charGroups[{points[i].workload, points[i].cfg.loadLatency}]
                .push_back(i);
        }
    }
    out.profileCount = profKeys.size();
    std::vector<const std::vector<size_t> *> groupList;
    groupList.reserve(charGroups.size());
    for (const auto &[key, members] : charGroups)
        groupList.push_back(&members);
    std::vector<std::shared_ptr<const model::TraceProfile>> profOf(
        points.size());
    parallelFor(
        groupList.size(),
        [&](size_t g) {
            const std::vector<size_t> &members = *groupList[g];
            std::vector<model::ProfileConfig> cfgs;
            cfgs.reserve(members.size());
            for (size_t i : members)
                cfgs.push_back(profileConfigFor(points[i].cfg));
            auto profs = lab.profileBatch(
                points[members.front()].workload,
                points[members.front()].cfg.loadLatency, cfgs);
            for (size_t j = 0; j < members.size(); ++j) {
                size_t i = members[j];
                profOf[i] = profs[j];
                out.points[i].prediction = model::predict(
                    *profs[j], predictQueryFor(points[i].cfg));
            }
        },
        opts.jobs);

    // Decide which representatives simulate. Everything does unless
    // pruning is on; then: unsupported points must, exact points never
    // need to, and of the rest the most uncertain -- by bound width or
    // by proximity to a best-organization crossover -- simulate, up to
    // the budget.
    std::vector<char> simulate(points.size(), 0);
    if (!opts.prune) {
        for (size_t i : uniq)
            simulate[i] = 1;
        for (size_t i : uniq) {
            if (out.points[i].prediction.exact)
                ++out.exactCount;
        }
    } else {
        // Group supported points into decision groups and find each
        // group's best (lowest) upper bound.
        std::map<std::string, double> groupBestUpper;
        std::map<std::string, size_t> groupSize;
        for (size_t i : uniq) {
            const model::Prediction &pr = out.points[i].prediction;
            if (!pr.supported)
                continue;
            std::string g = decisionGroupKey(points[i]);
            auto [it, inserted] =
                groupBestUpper.emplace(g, pr.mcpiUpper());
            if (!inserted)
                it->second = std::min(it->second, pr.mcpiUpper());
            ++groupSize[g];
        }

        struct Candidate
        {
            double score;
            std::string key;
            size_t idx;
        };
        std::vector<Candidate> cands;
        size_t supportedCount = 0;
        for (size_t i : uniq) {
            const model::Prediction &pr = out.points[i].prediction;
            if (!pr.supported) {
                ++out.unsupportedCount;
                simulate[i] = 1;
                continue;
            }
            ++supportedCount;
            if (pr.exact) {
                ++out.exactCount;
                continue;
            }
            std::string g = decisionGroupKey(points[i]);
            bool contested =
                groupSize[g] > 1 &&
                pr.mcpiLower() <=
                    (1.0 + opts.boundaryMargin) * groupBestUpper[g];
            double score = pr.uncertainty();
            if (score <= opts.uncertainty && !contested)
                continue;
            if (contested)
                score += 1e6; // Crossovers outrank wide bounds.
            cands.push_back(
                {score,
                 experimentKey(points[i].workload, points[i].cfg),
                 i});
        }
        std::sort(cands.begin(), cands.end(),
                  [](const Candidate &a, const Candidate &b) {
                      if (a.score != b.score)
                          return a.score > b.score;
                      return a.key < b.key;
                  });
        size_t cap = size_t(std::floor(double(supportedCount) *
                                       opts.simulateBudget));
        if (cands.size() > cap)
            cands.resize(cap);
        for (const Candidate &c : cands)
            simulate[c.idx] = 1;
    }

    // Simulate the chosen representatives in one parallel batch and
    // back-substitute; synthesize the rest from their predictions.
    std::vector<size_t> simIdx;
    std::vector<SweepPoint> simPoints;
    for (size_t i : uniq) {
        if (simulate[i]) {
            simIdx.push_back(i);
            simPoints.push_back(points[i]);
        }
    }
    out.simulatedCount = simIdx.size();
    out.prunedCount = uniq.size() - simIdx.size();
    std::vector<ExperimentResult> simResults =
        runPointsParallel(lab, simPoints, opts.jobs);
    for (size_t k = 0; k < simIdx.size(); ++k) {
        out.points[simIdx[k]].simulated = true;
        out.points[simIdx[k]].result = std::move(simResults[k]);
    }
    for (size_t i : uniq) {
        if (!simulate[i]) {
            out.points[i].simulated = false;
            out.points[i].result =
                synthesizeResult(lab, points[i], *profOf[i],
                                 out.points[i].prediction);
        }
    }

    // Expand duplicates from their representatives.
    for (size_t i = 0; i < points.size(); ++i) {
        if (rep[i] != i) {
            out.points[i].prediction = out.points[rep[i]].prediction;
            out.points[i].simulated = out.points[rep[i]].simulated;
            out.points[i].result = out.points[rep[i]].result;
        }
    }
    return out;
}

std::vector<Curve>
runSweepPlanned(Lab &lab, const std::string &workload,
                ExperimentConfig base,
                const std::vector<core::ConfigName> &cfgs,
                const PlanOptions &opts)
{
    constexpr size_t nlat = std::size(paperLatencies);
    std::vector<SweepPoint> points;
    points.reserve(cfgs.size() * nlat);
    for (size_t c = 0; c < cfgs.size(); ++c) {
        for (size_t l = 0; l < nlat; ++l) {
            ExperimentConfig e = base;
            e.config = cfgs[c];
            e.customPolicy.reset();
            e.loadLatency = paperLatencies[l];
            points.push_back({workload, e});
        }
    }
    PlanOutcome outcome = planAndRun(lab, points, opts);

    std::vector<Curve> curves(cfgs.size());
    for (size_t c = 0; c < cfgs.size(); ++c) {
        curves[c].label = core::configLabel(cfgs[c]);
        curves[c].latencies.assign(std::begin(paperLatencies),
                                   std::end(paperLatencies));
        curves[c].results.reserve(nlat);
        for (size_t l = 0; l < nlat; ++l)
            curves[c].results.push_back(
                std::move(outcome.points[c * nlat + l].result));
    }
    return curves;
}

PlanError
compareWithFull(const PlanOutcome &outcome,
                const std::vector<ExperimentResult> &full)
{
    if (outcome.points.size() != full.size())
        fatal("compareWithFull: %zu planned points vs %zu full results",
              outcome.points.size(), full.size());
    PlanError err;
    size_t prunedSeen = 0;
    double errSum = 0.0;
    for (size_t i = 0; i < full.size(); ++i) {
        const PlannedPoint &p = outcome.points[i];
        const cpu::CpuStats &sim = full[i].run.cpu;
        if (p.prediction.supported) {
            uint64_t stalls = sim.missStallCycles();
            if (stalls < p.prediction.stallLower ||
                stalls > p.prediction.stallUpper)
                ++err.boundViolations;
            if (p.prediction.exact &&
                stalls != p.prediction.stallEstimate)
                ++err.boundViolations;
        }
        if (p.simulated) {
            const cpu::CpuStats &got = p.result.run.cpu;
            if (got.cycles != sim.cycles ||
                got.instructions != sim.instructions ||
                got.depStallCycles != sim.depStallCycles ||
                got.structStallCycles != sim.structStallCycles ||
                got.blockStallCycles != sim.blockStallCycles)
                ++err.substitutionMismatches;
        } else {
            double e = std::fabs(p.prediction.mcpiEstimate() -
                                 full[i].mcpi());
            err.maxAbsErr = std::max(err.maxAbsErr, e);
            errSum += e;
            ++prunedSeen;
        }
    }
    if (prunedSeen)
        err.meanAbsErr = errSum / double(prunedSeen);
    return err;
}

} // namespace nbl::harness
