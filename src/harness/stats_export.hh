/**
 * @file
 * Structured export of a Lab's memoized experiment points.
 *
 * Serializes every (workload, config, result) triple a bench binary
 * simulated into one machine-readable document (schema
 * "nbl-stats-v1", described in docs/OBSERVABILITY.md). The bench
 * emitter (bench/bench_common.hh) writes these to files named by
 * --json= / --csv= / NBL_STATS_DIR; tools/nbl_report consumes them.
 */

#ifndef NBL_HARNESS_STATS_EXPORT_HH
#define NBL_HARNESS_STATS_EXPORT_HH

#include <string>

#include "harness/experiment.hh"

namespace nbl::harness
{

/**
 * Canonical serialization of a custom MSHR policy, identical to the
 * one experimentKey embeds. tools/nbl_report rebuilds these strings
 * (via core::makeFieldPolicy) to identify Figure-14 organizations in
 * artifacts, so the two sides must share one implementation.
 */
std::string policyKey(const core::MshrPolicy &p);

/** The ExperimentConfig as a JSON object (one line, no newline). */
std::string configJson(const ExperimentConfig &cfg);

/**
 * Every memoized point of lab as an "nbl-stats-v1" JSON document:
 * {schema, binary, scale, results: [{workload, key, config, stats}]}.
 * Results appear in experiment-key order, so the document is
 * deterministic for a deterministic binary.
 *
 * extrasJson, when non-empty, is a pre-rendered `"key": value`
 * fragment (or several, comma-separated) spliced in as additional
 * top-level members before "results". The fig21 bench uses this to
 * attach its model-pruning summary (stats/model_stats.hh) so
 * nbl-report can gate on it without any per-point results.
 */
std::string statsJson(const Lab &lab, const std::string &binary,
                      const std::string &extrasJson = std::string());

/**
 * The same data as CSV: a header row, then one row per counter per
 * point (`binary,workload,key,` + Snapshot::toCsv columns).
 */
std::string statsCsv(const Lab &lab, const std::string &binary);

/** Write text to path, fatal on I/O failure. Never touches stdout. */
void writeFileOrDie(const std::string &path, const std::string &text);

} // namespace nbl::harness

#endif // NBL_HARNESS_STATS_EXPORT_HH
