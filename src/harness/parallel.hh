/**
 * @file
 * Parallel experiment engine.
 *
 * Every figure in the reproduction is a sweep over (workload x MSHR
 * configuration x scheduled load latency), and each point is an
 * independent simulation. This module fans those points out over a
 * fixed-size thread pool sharing one Lab (which is thread-safe and
 * memoizes results) and reassembles the output in deterministic
 * order, so parallel sweeps are bit-identical to serial ones.
 *
 * The worker count defaults to std::thread::hardware_concurrency and
 * may be overridden with the NBL_JOBS environment variable (NBL_JOBS=1
 * forces serial execution).
 */

#ifndef NBL_HARNESS_PARALLEL_HH
#define NBL_HARNESS_PARALLEL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/sweep.hh"

namespace nbl::harness
{

/**
 * Fixed-size thread pool. Jobs are run in submission order by a fixed
 * set of workers; wait() blocks until every submitted job finished.
 * Exceptions escaping a job terminate the process (simulation jobs do
 * not throw; errors in this codebase use fatal()/panic()).
 */
class ThreadPool
{
  public:
    /** @param jobs Worker count; 0 = defaultJobs(). */
    explicit ThreadPool(unsigned jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** NBL_JOBS if set and positive, else hardware_concurrency. */
    static unsigned defaultJobs();

    unsigned size() const { return unsigned(workers_.size()); }

    /** Enqueue one job. */
    void submit(std::function<void()> job);

    /** Block until all submitted jobs have completed. */
    void wait();

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable work_cv_;  ///< Signals queued work / stop.
    std::condition_variable idle_cv_;  ///< Signals in-flight drained.
    std::deque<std::function<void()>> queue_;
    unsigned in_flight_ = 0;           ///< Queued + currently running.
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

/**
 * Run fn(i) for every i in [0, n), fanned out over `jobs` workers
 * (0 = defaultJobs()). Runs inline when n <= 1 or one worker.
 */
void parallelFor(size_t n, const std::function<void(size_t)> &fn,
                 unsigned jobs = 0);

/**
 * Parallel equivalent of sweepCurves: sweep MCPI over the paper's
 * load latencies for each configuration. With lane replay active
 * (lab.laneReplayActive()) the configurations at each latency advance
 * in one lockstep batch over the shared event trace and threads fan
 * out over latencies; otherwise one thread-pool job runs per
 * (config, latency) point. Results are placed by index, so the
 * returned curves are in the same deterministic order -- and, because
 * simulation is deterministic, bit-identical -- as the serial path.
 */
std::vector<Curve> runSweepParallel(Lab &lab, const std::string &workload,
                                    ExperimentConfig base,
                                    const std::vector<core::ConfigName> &cfgs,
                                    unsigned jobs = 0);

/** One arbitrary experiment point (for runPointsParallel). */
struct SweepPoint
{
    std::string workload;
    ExperimentConfig cfg;
};

/**
 * For each point, the index of the first point with an equal
 * experimentKey (its own index when it is the first). runPointsParallel
 * schedules only these representatives: the Lab memoizer would catch a
 * duplicate too, but only after the first copy completes, and two
 * copies racing through the window both burn a lane or replay slot.
 */
std::vector<size_t>
dedupePointIndices(const std::vector<SweepPoint> &points);

/**
 * Simulate every point, returning the results in input order. Points
 * with identical experiment keys are deduplicated up front
 * (dedupePointIndices) and simulated once. With lane replay active,
 * points sharing a (workload, latency) batch into one lockstep lane
 * group (Lab::runLanes) and threads parallelize across batches and
 * workloads; otherwise every point is an independent lab.run() job.
 * Because the Lab memoizes results, this also serves as a cache
 * pre-warmer: a bench binary can fan out its whole point set up front
 * and keep its original serial reporting loops, which then hit the
 * cache.
 */
std::vector<ExperimentResult>
runPointsParallel(Lab &lab, const std::vector<SweepPoint> &points,
                  unsigned jobs = 0);

} // namespace nbl::harness

#endif // NBL_HARNESS_PARALLEL_HH
