/**
 * @file
 * Experiment runner: one (workload, schedule, cache configuration)
 * simulation, plus the Lab cache that reuses workloads and compiled
 * programs across a sweep.
 */

#ifndef NBL_HARNESS_EXPERIMENT_HH
#define NBL_HARNESS_EXPERIMENT_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "compiler/compile.hh"
#include "core/policy.hh"
#include "exec/event_trace.hh"
#include "exec/machine.hh"
#include "model/profile.hh"
#include "policy/stall_policy.hh"
#include "workloads/workload.hh"

namespace nbl::harness
{

/** The scheduled load latencies simulated by the paper. */
inline constexpr int paperLatencies[] = {1, 2, 3, 6, 10, 20};

/** One experiment's knobs (defaults = the paper's baseline system). */
struct ExperimentConfig
{
    uint64_t cacheBytes = 8 * 1024;
    uint64_t lineBytes = 32;
    unsigned ways = 1;            ///< 0 = fully associative.
    core::ConfigName config = core::ConfigName::NoRestrict;
    /** Overrides `config` when set (Figure 14 field organizations). */
    std::optional<core::MshrPolicy> customPolicy;
    int loadLatency = 10;
    /** 0 selects the pipelined-bus model (16 cycles at 32 B lines). */
    unsigned missPenalty = 0;
    unsigned issueWidth = 1;
    bool perfectCache = false;    ///< Ideal run (IPC baseline).
    /** Register write ports serving fills (0 = unlimited). */
    unsigned fillWritePorts = 0;
    /** Memory side between L1 and main memory; default = the paper's
     *  degenerate chain (L1 straight into pipelined memory). */
    core::HierarchyConfig hierarchy;
    /** Stall-reduction policies (docs/MODEL.md); default = inert.
     *  Lab::run()/runLanes() substitute the environment policy
     *  (NBL_PRED_..., NBL_PF_..., NBL_SSR_... knobs) for a defaulted
     *  field before keying, so the env knobs change the key too. */
    nbl::policy::StallPolicyConfig stallPolicy;
    uint64_t maxInstructions = 200'000'000;
};

/** Result of one experiment. */
struct ExperimentResult
{
    exec::RunOutput run;
    compiler::CompileInfo compileInfo;

    /** Single-issue MCPI (stall cycles per instruction). */
    double mcpi() const { return run.cpu.mcpi(); }
};

/** Build the machine configuration an ExperimentConfig describes. */
exec::MachineConfig makeMachineConfig(const ExperimentConfig &cfg);

/**
 * Canonical cache key for one experiment point: the workload name plus
 * every ExperimentConfig field (including a resolved custom policy)
 * serialized into a string. Two points with equal keys simulate to
 * bit-identical results, so the Lab result cache may serve either from
 * the other's run.
 */
std::string experimentKey(const std::string &workload,
                          const ExperimentConfig &cfg);

/**
 * Compile (at cfg.loadLatency) and run one workload under cfg. The
 * memory image is rebuilt from the workload's initializer, so calls
 * are independent.
 */
ExperimentResult runExperiment(const workloads::Workload &workload,
                               const ExperimentConfig &cfg);

/**
 * Caches workloads, compiled programs, and experiment results so
 * sweeps do not rebuild or re-simulate them for every figure.
 *
 * Thread safety: all public member functions may be called
 * concurrently (the parallel sweep engine in harness/parallel.hh fans
 * experiment points out over a thread pool sharing one Lab). The
 * workload/program caches hand out references into node-based maps,
 * which remain stable across inserts.
 *
 * Result caching: run() memoizes its ExperimentResult keyed by
 * experimentKey(name, cfg), so a point repeated across figures within
 * one process is simulated once. Simulations are deterministic, so a
 * cached result is bit-identical to a fresh one.
 *
 * Record once, replay many: run() does not normally re-run the
 * functional interpreter per point. The first run of a (workload,
 * compiled program) pair records an exact event trace
 * (exec/event_trace.hh); every further point replays it through the
 * timing models at timing-only cost with bit-identical results.
 * Traces are keyed by the program's content fingerprint -- a
 * latency-independent identity, so two scheduled latencies that
 * compile to the same code share one recording. Set NBL_EXEC_DRIVEN
 * in the environment (or call setReplayEnabled(false) before fanning
 * work out) to force classic execution-driven simulation per point.
 */
class Lab
{
  public:
    explicit Lab(double scale = 1.0);

    const workloads::Workload &workload(const std::string &name);

    /**
     * Register a pre-built program under `name`, backed by a
     * zero-initialized memory image. The same program serves every
     * scheduled load latency (raw programs are never re-scheduled).
     * The differential fuzzer (check/differential.hh) uses this to
     * push generated programs through the Lab engine; named
     * workloads are unaffected.
     */
    void addRawProgram(const std::string &name,
                       const isa::Program &program);

    /** The program compiled at the given scheduled load latency. */
    const isa::Program &program(const std::string &name, int latency);

    compiler::CompileInfo compileInfo(const std::string &name,
                                      int latency);

    /** Run a cached workload/program pair under cfg (uses
     *  cfg.loadLatency for the schedule). Memoized; see class docs. */
    ExperimentResult run(const std::string &name,
                         const ExperimentConfig &cfg);

    /**
     * Run a batch of points of one workload, advancing them in
     * lockstep over shared event traces where possible
     * (exec/lane_replay.hh): points are grouped by (program
     * fingerprint, effective instruction budget), each group replays
     * the trace once with one config lane per point, and each lane's
     * result is bit-identical to run(). Points that are already
     * memoized, not lane-replayable (multi-issue, perfect cache), or
     * requested while lane replay is disabled fall back to run().
     * Results come back in input order and are memoized exactly as
     * run() memoizes. The sweep engines (harness/parallel.hh) batch
     * sweep points through this; one-off points should use run().
     */
    std::vector<ExperimentResult>
    runLanes(const std::string &name,
             const std::vector<ExperimentConfig> &cfgs);

    /**
     * The recorded event trace for (workload, program compiled at
     * latency), recording it on first use. maxInstructions bounds the
     * recording exactly as in exec::run; a cached trace that was
     * capped below a later, larger request is re-recorded.
     */
    std::shared_ptr<const exec::EventTrace>
    eventTrace(const std::string &name, int latency,
               uint64_t maxInstructions = 200'000'000);

    /**
     * Ensure (workload, latency) is compiled and, when replay is
     * enabled, its event trace recorded. The sweep entry points call
     * this up front so fanned-out points are replay-only.
     */
    void prewarmTrace(const std::string &name, int latency,
                      uint64_t maxInstructions = 200'000'000);

    /**
     * The analytical-model characterization of (workload, program
     * compiled at latency) against one cache geometry/penalty slice
     * (model/profile.hh), computed on first use and cached by
     * (workload, program fingerprint, profile key). One profile serves
     * every MSHR organization and store policy at that geometry, so a
     * dense organization sweep characterizes each geometry once.
     */
    std::shared_ptr<const model::TraceProfile>
    profile(const std::string &name, int latency,
            const model::ProfileConfig &cfg);

    /**
     * profile() for several geometries at once: uncached configs are
     * grouped by (lineBytes, maxInstructions) and characterized in
     * one trace pass per group (model::characterizeBatch), which is
     * several times cheaper than per-config passes on a dense sweep.
     * Returns profiles in input order; duplicates are served from one
     * characterization.
     */
    std::vector<std::shared_ptr<const model::TraceProfile>>
    profileBatch(const std::string &name, int latency,
                 const std::vector<model::ProfileConfig> &cfgs);

    /** Toggle record-once/replay-many (default on, unless the
     *  NBL_EXEC_DRIVEN environment variable is set). Not synchronized:
     *  call before fanning work out over threads. */
    void setReplayEnabled(bool on) { replay_ = on; }
    bool replayEnabled() const { return replay_; }

    /** Toggle lockstep lane batching inside runLanes() (default on;
     *  NBL_LANE_REPLAY=0 in the environment disables it). Not
     *  synchronized: call before fanning work out over threads. */
    void setLaneReplayEnabled(bool on) { lane_replay_ = on; }

    /** True when runLanes() batches: lane replay is enabled and the
     *  trace engine it feeds on is too. */
    bool laneReplayActive() const { return replay_ && lane_replay_; }

    double scale() const { return scale_; }

    /**
     * The program's content fingerprint for (workload, latency) --
     * the latency-independent identity the trace cache and the
     * service layer's persistent store key on. Compiles on first use.
     */
    uint64_t programFingerprint(const std::string &name, int latency);

    /**
     * Offer a pre-recorded trace for (workload, fingerprint), e.g.
     * one loaded from the service layer's persistent store. Adopted
     * only when no cached trace covers it already (absent, or the
     * cached recording is shorter); otherwise a no-op. The trace must
     * have been recorded from this workload's program -- the caller
     * vouches for that (the persistent store keys by fingerprint).
     */
    void injectTrace(const std::string &name, uint64_t fingerprint,
                     std::shared_ptr<const exec::EventTrace> trace);

    /**
     * Visit every cached event trace as (workload, fingerprint,
     * trace). The callback runs under the trace lock: it must not
     * call back into eventTrace()/run().
     */
    void forEachTrace(
        const std::function<void(
            const std::string &workload, uint64_t fingerprint,
            const std::shared_ptr<const exec::EventTrace> &trace)> &fn)
        const;

    /**
     * Cap the result memoizer / trace cache at `cap` entries with
     * FIFO eviction (0 = unbounded, the default). A long-lived
     * process (the nbl-labd daemon) sets these so the in-memory
     * caches cannot grow without bound; evicted points simply
     * re-simulate (or re-record) on next use. Not synchronized: call
     * before fanning work out. The NBL_LAB_RESULT_CAP and
     * NBL_LAB_TRACE_CAP environment knobs set the initial values.
     */
    void setResultCacheCap(size_t cap);
    void setTraceCacheCap(size_t cap);

    /** Entry counts, hit counts, and eviction counts of every Lab
     *  cache, exported by the daemon as the lab.cache.* counters. */
    struct CacheCounters
    {
        size_t results = 0;
        uint64_t resultHits = 0;
        uint64_t resultEvictions = 0;
        size_t traces = 0;
        uint64_t traceHits = 0;
        uint64_t traceEvictions = 0;
        size_t profiles = 0;
        uint64_t profileHits = 0;
    };

    CacheCounters cacheCounters() const;

    /** Distinct experiment points currently memoized. */
    size_t cachedResults() const;

    /**
     * Visit every memoized experiment point, in experiment-key order
     * (deterministic across runs of the same binary). The bench
     * emitter (bench/bench_common.hh) walks this to export one
     * stats snapshot per simulated point. The callback must not call
     * back into run() (the result lock is held).
     */
    void forEachResult(
        const std::function<void(const std::string &workload,
                                 const ExperimentConfig &cfg,
                                 const ExperimentResult &result)> &fn)
        const;

    /** run() calls served from the result cache (diagnostics). */
    uint64_t resultCacheHits() const;

    /** Distinct event traces currently recorded. */
    size_t recordedTraces() const;

    /** eventTrace() calls served from the trace cache. */
    uint64_t traceCacheHits() const;

    /** Distinct model characterizations currently cached. */
    size_t cachedProfiles() const;

    /** profile() calls served from the profile cache. */
    uint64_t profileCacheHits() const;

    /** Drop all memoized results (workloads/programs are kept). */
    void clearResultCache();

  private:
    struct Compiled
    {
        isa::Program program;
        compiler::CompileInfo info;
        uint64_t fingerprint = 0;
    };

    const Compiled &compiled(const std::string &name, int latency);

    /** A memoized point, with the inputs that produced it (so the
     *  export log can label artifacts without re-deriving them from
     *  the serialized key). */
    struct CachedResult
    {
        std::string workload;
        ExperimentConfig cfg;
        ExperimentResult result;
    };

    /** Insert `key` into results_ (first-in wins) and FIFO-evict down
     *  to the cap. Caller holds resultMutex_. */
    void insertResultLocked(const std::string &key,
                            const std::string &workload,
                            const ExperimentConfig &cfg,
                            const ExperimentResult &result);

    /** FIFO-evict traces_ down to the cap. Caller holds traceMutex_. */
    void evictTracesLocked();

    /** Resolve `cfg` as run()/runLanes() will simulate it: a
     *  defaulted stallPolicy picks up the environment policy read at
     *  construction. Called before keying, so env-policy runs memoize
     *  under their effective configuration. */
    ExperimentConfig effectiveConfig(const ExperimentConfig &cfg) const;

    double scale_;
    /** Environment stall policy (nbl::policy::stallPolicyFromEnv),
     *  read once at construction. */
    nbl::policy::StallPolicyConfig envPolicy_;
    bool replay_ = true;
    bool lane_replay_ = true;
    size_t result_cap_ = 0; ///< 0 = unbounded.
    size_t trace_cap_ = 0;  ///< 0 = unbounded.
    /** Guards workloads_ and programs_. */
    mutable std::mutex buildMutex_;
    /** Guards results_ and result_hits_. */
    mutable std::mutex resultMutex_;
    /** Guards traces_ and trace_hits_. */
    mutable std::mutex traceMutex_;
    /** Guards profiles_ and profile_hits_. */
    mutable std::mutex profileMutex_;
    std::map<std::string, workloads::Workload> workloads_;
    std::map<std::pair<std::string, int>, Compiled> programs_;
    /** Raw programs (addRawProgram), latency-independent. */
    std::map<std::string, Compiled> raw_;
    std::map<std::string, CachedResult> results_;
    /** Key: (workload, program fingerprint) -- see class docs. */
    std::map<std::pair<std::string, uint64_t>,
             std::shared_ptr<const exec::EventTrace>>
        traces_;
    /** Key: "workload|fingerprint|profileKey". */
    std::map<std::string, std::shared_ptr<const model::TraceProfile>>
        profiles_;
    /** Insertion order of results_ / traces_ keys (FIFO eviction). */
    std::deque<std::string> result_fifo_;
    std::deque<std::pair<std::string, uint64_t>> trace_fifo_;
    uint64_t result_hits_ = 0;
    uint64_t trace_hits_ = 0;
    uint64_t profile_hits_ = 0;
    uint64_t result_evictions_ = 0;
    uint64_t trace_evictions_ = 0;
};

} // namespace nbl::harness

#endif // NBL_HARNESS_EXPERIMENT_HH
