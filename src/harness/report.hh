/**
 * @file
 * Report helpers shared by the bench binaries: figure-style tables
 * with measured values alongside the paper's published numbers.
 */

#ifndef NBL_HARNESS_REPORT_HH
#define NBL_HARNESS_REPORT_HH

#include <string>
#include <vector>

#include "exec/machine.hh"
#include "harness/sweep.hh"

namespace nbl::stats
{
struct Snapshot;
}

namespace nbl::harness
{

/** Print a standard bench header with the system configuration. */
void printHeader(const std::string &figure, const std::string &what,
                 const ExperimentConfig &cfg);

/**
 * Print a Figure-13 style row set: MCPI and ratio-to-unrestricted per
 * configuration; when the paper value is known, print it next to the
 * measured number.
 */
struct ConfigRow
{
    std::string name;                 ///< Benchmark name.
    std::vector<double> mcpi;         ///< Per configuration.
};

void printConfigTable(const std::string &title,
                      const std::vector<std::string> &config_labels,
                      const std::vector<ConfigRow> &measured,
                      const std::vector<ConfigRow> &reference);

/**
 * Print a Figure-6 style in-flight histogram table from a run
 * snapshot (reads the flight.misses / flight.fetches histograms and
 * the run.max_inflight_* scalars).
 */
void printFlightHistogram(const std::string &title, int latency,
                          const stats::Snapshot &snap);

} // namespace nbl::harness

#endif // NBL_HARNESS_REPORT_HH
