#include "harness/parallel.hh"

#include <algorithm>
#include <map>
#include <utility>

#include "exec/lane_replay.hh"
#include "util/env.hh"
#include "util/log.hh"

namespace nbl::harness
{

unsigned
ThreadPool::defaultJobs()
{
    int64_t v = envInt("NBL_JOBS", 0);
    if (v > 0)
        return unsigned(v);
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned jobs)
{
    if (jobs == 0)
        jobs = defaultJobs();
    workers_.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_)
            panic("ThreadPool::submit after shutdown");
        queue_.push_back(std::move(job));
        ++in_flight_;
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock,
                          [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--in_flight_ == 0)
                idle_cv_.notify_all();
        }
    }
}

void
parallelFor(size_t n, const std::function<void(size_t)> &fn,
            unsigned jobs)
{
    if (jobs == 0)
        jobs = ThreadPool::defaultJobs();
    if (n <= 1 || jobs <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(unsigned(std::min<size_t>(jobs, n)));
    for (size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

std::vector<Curve>
runSweepParallel(Lab &lab, const std::string &workload,
                 ExperimentConfig base,
                 const std::vector<core::ConfigName> &cfgs, unsigned jobs)
{
    constexpr size_t nlat = std::size(paperLatencies);

    // A curve sweep is just a rectangular point set: build it in
    // (config-major, latency-minor) order and let runPointsParallel
    // batch the points of each latency into one lane group.
    std::vector<SweepPoint> points;
    points.reserve(cfgs.size() * nlat);
    for (size_t c = 0; c < cfgs.size(); ++c) {
        for (size_t l = 0; l < nlat; ++l) {
            ExperimentConfig e = base;
            e.config = cfgs[c];
            e.customPolicy.reset();
            e.loadLatency = paperLatencies[l];
            points.push_back({workload, e});
        }
    }
    std::vector<ExperimentResult> results =
        runPointsParallel(lab, points, jobs);

    std::vector<Curve> curves(cfgs.size());
    for (size_t c = 0; c < cfgs.size(); ++c) {
        curves[c].label = core::configLabel(cfgs[c]);
        curves[c].latencies.assign(std::begin(paperLatencies),
                                   std::end(paperLatencies));
        curves[c].results.assign(
            std::make_move_iterator(results.begin() + c * nlat),
            std::make_move_iterator(results.begin() + (c + 1) * nlat));
    }
    return curves;
}

std::vector<size_t>
dedupePointIndices(const std::vector<SweepPoint> &points)
{
    std::vector<size_t> rep(points.size());
    std::map<std::string, size_t> first;
    for (size_t i = 0; i < points.size(); ++i) {
        auto [it, inserted] = first.emplace(
            experimentKey(points[i].workload, points[i].cfg), i);
        rep[i] = it->second;
    }
    return rep;
}

namespace
{

std::vector<ExperimentResult>
runUniquePointsParallel(Lab &lab, const std::vector<SweepPoint> &points,
                        unsigned jobs)
{
    // Pre-compile and pre-record the distinct (workload, latency)
    // pairs -- recordings at different latencies are independent, so
    // this fans out too -- under the largest instruction cap any point
    // using the pair asks for, so one recording serves them all. The
    // jobs below are then replay-only: timing-model cost with no
    // functional execution, and no contention on the Lab build lock.
    std::map<std::pair<std::string, int>, uint64_t> pairs;
    for (const SweepPoint &p : points) {
        uint64_t &cap = pairs[{p.workload, p.cfg.loadLatency}];
        cap = std::max(cap, p.cfg.maxInstructions);
    }
    std::vector<std::pair<const std::pair<std::string, int>, uint64_t> *>
        flat;
    flat.reserve(pairs.size());
    for (auto &kv : pairs)
        flat.push_back(&kv);
    parallelFor(
        flat.size(),
        [&](size_t i) {
            lab.prewarmTrace(flat[i]->first.first, flat[i]->first.second,
                             flat[i]->second);
        },
        jobs);

    std::vector<ExperimentResult> results(points.size());

    if (lab.laneReplayActive()) {
        // Batched lockstep replay: group the lane-replayable points
        // sharing a (workload, latency) -- and hence a recorded trace
        // -- into one batch each, and fan threads out over batches
        // plus the leftover singles, not over points. Lab::runLanes
        // subdivides a batch further if effective budgets differ.
        std::map<std::pair<std::string, int>, std::vector<size_t>>
            batches;
        std::vector<size_t> singles;
        for (size_t i = 0; i < points.size(); ++i) {
            const SweepPoint &p = points[i];
            if (exec::laneReplayable(makeMachineConfig(p.cfg)))
                batches[{p.workload, p.cfg.loadLatency}].push_back(i);
            else
                singles.push_back(i);
        }
        std::vector<const std::vector<size_t> *> groups;
        std::vector<const std::string *> group_workload;
        groups.reserve(batches.size());
        group_workload.reserve(batches.size());
        for (const auto &kv : batches) {
            groups.push_back(&kv.second);
            group_workload.push_back(&kv.first.first);
        }
        parallelFor(
            groups.size() + singles.size(),
            [&](size_t j) {
                if (j < groups.size()) {
                    const std::vector<size_t> &idx = *groups[j];
                    std::vector<ExperimentConfig> cfgs;
                    cfgs.reserve(idx.size());
                    for (size_t i : idx)
                        cfgs.push_back(points[i].cfg);
                    std::vector<ExperimentResult> batch =
                        lab.runLanes(*group_workload[j], cfgs);
                    for (size_t k = 0; k < idx.size(); ++k)
                        results[idx[k]] = std::move(batch[k]);
                } else {
                    size_t i = singles[j - groups.size()];
                    results[i] =
                        lab.run(points[i].workload, points[i].cfg);
                }
            },
            jobs);
        return results;
    }

    parallelFor(
        points.size(),
        [&](size_t i) {
            results[i] = lab.run(points[i].workload, points[i].cfg);
        },
        jobs);
    return results;
}

} // namespace

std::vector<ExperimentResult>
runPointsParallel(Lab &lab, const std::vector<SweepPoint> &points,
                  unsigned jobs)
{
    // Schedule one representative per distinct experiment key; serve
    // repeats from its result (bit-identical: simulation is
    // deterministic and keys capture every input).
    std::vector<size_t> rep = dedupePointIndices(points);
    std::vector<SweepPoint> unique;
    std::vector<size_t> uniqueSlot(points.size(), size_t(-1));
    unique.reserve(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        if (rep[i] == i) {
            uniqueSlot[i] = unique.size();
            unique.push_back(points[i]);
        }
    }
    std::vector<ExperimentResult> uniqueResults =
        runUniquePointsParallel(lab, unique, jobs);
    if (unique.size() == points.size())
        return uniqueResults;
    std::vector<ExperimentResult> results(points.size());
    for (size_t i = 0; i < points.size(); ++i)
        results[i] = uniqueResults[uniqueSlot[rep[i]]];
    return results;
}

} // namespace nbl::harness
