#include "harness/parallel.hh"

#include <algorithm>
#include <map>
#include <utility>

#include "util/env.hh"
#include "util/log.hh"

namespace nbl::harness
{

unsigned
ThreadPool::defaultJobs()
{
    int64_t v = envInt("NBL_JOBS", 0);
    if (v > 0)
        return unsigned(v);
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned jobs)
{
    if (jobs == 0)
        jobs = defaultJobs();
    workers_.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_)
            panic("ThreadPool::submit after shutdown");
        queue_.push_back(std::move(job));
        ++in_flight_;
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock,
                          [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--in_flight_ == 0)
                idle_cv_.notify_all();
        }
    }
}

void
parallelFor(size_t n, const std::function<void(size_t)> &fn,
            unsigned jobs)
{
    if (jobs == 0)
        jobs = ThreadPool::defaultJobs();
    if (n <= 1 || jobs <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(unsigned(std::min<size_t>(jobs, n)));
    for (size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

std::vector<Curve>
runSweepParallel(Lab &lab, const std::string &workload,
                 ExperimentConfig base,
                 const std::vector<core::ConfigName> &cfgs, unsigned jobs)
{
    constexpr size_t nlat = std::size(paperLatencies);

    // Record once, replay many: pre-compile every (workload, latency)
    // pair and record its event trace up front (fanned out itself --
    // recordings at different latencies are independent), so the
    // per-point jobs below are replay-only: timing-model cost with no
    // functional execution, and no contention on the Lab build lock.
    parallelFor(
        nlat,
        [&](size_t l) {
            lab.prewarmTrace(workload, paperLatencies[l],
                             base.maxInstructions);
        },
        jobs);

    std::vector<Curve> curves(cfgs.size());
    for (size_t c = 0; c < cfgs.size(); ++c) {
        curves[c].label = core::configLabel(cfgs[c]);
        curves[c].latencies.assign(std::begin(paperLatencies),
                                   std::end(paperLatencies));
        curves[c].results.resize(nlat);
    }

    parallelFor(
        cfgs.size() * nlat,
        [&](size_t i) {
            size_t c = i / nlat;
            size_t l = i % nlat;
            ExperimentConfig e = base;
            e.config = cfgs[c];
            e.customPolicy.reset();
            e.loadLatency = paperLatencies[l];
            curves[c].results[l] = lab.run(workload, e);
        },
        jobs);
    return curves;
}

std::vector<ExperimentResult>
runPointsParallel(Lab &lab, const std::vector<SweepPoint> &points,
                  unsigned jobs)
{
    // Pre-compile and pre-record the distinct (workload, latency)
    // pairs (see above), under the largest instruction cap any point
    // using the pair asks for so one recording serves them all.
    std::map<std::pair<std::string, int>, uint64_t> pairs;
    for (const SweepPoint &p : points) {
        uint64_t &cap = pairs[{p.workload, p.cfg.loadLatency}];
        cap = std::max(cap, p.cfg.maxInstructions);
    }
    std::vector<std::pair<const std::pair<std::string, int>, uint64_t> *>
        flat;
    flat.reserve(pairs.size());
    for (auto &kv : pairs)
        flat.push_back(&kv);
    parallelFor(
        flat.size(),
        [&](size_t i) {
            lab.prewarmTrace(flat[i]->first.first, flat[i]->first.second,
                             flat[i]->second);
        },
        jobs);

    std::vector<ExperimentResult> results(points.size());
    parallelFor(
        points.size(),
        [&](size_t i) {
            results[i] = lab.run(points[i].workload, points[i].cfg);
        },
        jobs);
    return results;
}

} // namespace nbl::harness
