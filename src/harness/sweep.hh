/**
 * @file
 * Parameter sweeps that regenerate the paper's figures: MCPI-vs-load-
 * latency curves for a set of configurations, and the common printing
 * shapes they feed.
 */

#ifndef NBL_HARNESS_SWEEP_HH
#define NBL_HARNESS_SWEEP_HH

#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace nbl::harness
{

/** One curve: a configuration label and its per-latency results. */
struct Curve
{
    std::string label;
    std::vector<int> latencies;
    std::vector<ExperimentResult> results;

    double
    mcpiAt(int latency) const
    {
        for (size_t i = 0; i < latencies.size(); ++i) {
            if (latencies[i] == latency)
                return results[i].mcpi();
        }
        return -1.0;
    }
};

/**
 * Sweep MCPI over the paper's load latencies for each configuration.
 * `base` supplies everything except config and loadLatency.
 *
 * Fans the points out over the parallel engine (harness/parallel.hh;
 * NBL_JOBS workers, default hardware_concurrency). The simulation of
 * each point is independent and deterministic, so the result is
 * bit-identical to sweepCurvesSerial.
 */
std::vector<Curve> sweepCurves(Lab &lab, const std::string &workload,
                               ExperimentConfig base,
                               const std::vector<core::ConfigName> &cfgs);

/** The single-threaded reference implementation of sweepCurves. */
std::vector<Curve>
sweepCurvesSerial(Lab &lab, const std::string &workload,
                  ExperimentConfig base,
                  const std::vector<core::ConfigName> &cfgs);

/** The seven baseline-figure configurations (Figs 5, 9, 11, 12...). */
std::vector<core::ConfigName> baselineConfigList();

/** Baseline plus the per-set fs=1 / fs=2 configurations (Fig 15). */
std::vector<core::ConfigName> perSetConfigList();

/** Render curves as an ASCII table: rows = latency, cols = configs. */
void printCurves(const std::string &title,
                 const std::vector<Curve> &curves);

/**
 * Render curves as CSV (header row, then one row per latency) for
 * plotting tools. The bench binaries emit this too when the NBL_CSV
 * environment variable is set.
 */
std::string curvesCsv(const std::vector<Curve> &curves);

/** Render curves as an ASCII plot (the figures as actual figures). */
void plotCurves(const std::vector<Curve> &curves);

} // namespace nbl::harness

#endif // NBL_HARNESS_SWEEP_HH
