#include "harness/stats_export.hh"

#include <cstdio>

#include "core/policy.hh"
#include "stats/json.hh"
#include "stats/run_stats.hh"
#include "util/log.hh"

namespace nbl::harness
{

namespace
{

/** Prefix every line of a multi-line block with `spaces` spaces. */
std::string
indentBlock(const std::string &text, unsigned spaces)
{
    std::string pad(spaces, ' ');
    std::string out = pad;
    for (char c : text) {
        out += c;
        if (c == '\n')
            out += pad;
    }
    return out;
}

} // namespace

std::string
policyKey(const core::MshrPolicy &p)
{
    return strfmt("P%d.%d.%d.%d.%d.%d.%d.%d.%u", int(p.mode),
                  p.numMshrs, p.maxMisses, p.subBlocks,
                  p.missesPerSubBlock, p.fetchesPerSet,
                  int(p.fetchesPerSetTracksWays), int(p.storeMode),
                  p.fillExtraCycles);
}

std::string
configJson(const ExperimentConfig &cfg)
{
    std::string policy;
    if (cfg.customPolicy)
        policy = policyKey(*cfg.customPolicy);
    std::string json = strfmt(
        "{\"label\": %s, \"policy\": %s, \"cache_bytes\": %llu, "
        "\"line_bytes\": %llu, \"ways\": %u, \"load_latency\": %d, "
        "\"miss_penalty\": %u, \"issue_width\": %u, "
        "\"perfect_cache\": %s, \"fill_write_ports\": %u",
        stats::jsonQuote(cfg.customPolicy
                             ? std::string("custom")
                             : std::string(core::configLabel(cfg.config)))
            .c_str(),
        stats::jsonQuote(policy).c_str(),
        static_cast<unsigned long long>(cfg.cacheBytes),
        static_cast<unsigned long long>(cfg.lineBytes), cfg.ways,
        cfg.loadLatency, cfg.missPenalty, cfg.issueWidth,
        cfg.perfectCache ? "true" : "false", cfg.fillWritePorts);
    if (!cfg.hierarchy.degenerate()) {
        // Key present only for non-degenerate chains: committed
        // pre-hierarchy artifacts stay byte-identical.
        json += ", \"hierarchy\": " +
                stats::jsonQuote(core::hierarchyKey(cfg.hierarchy));
    }
    if (!cfg.stallPolicy.defaulted()) {
        // Same rule: key present only under a configured stall policy.
        json += ", \"stall_policy\": " +
                stats::jsonQuote(
                    nbl::policy::stallPolicyKey(cfg.stallPolicy));
    }
    json += "}";
    return json;
}

std::string
statsJson(const Lab &lab, const std::string &binary,
          const std::string &extrasJson)
{
    std::string out = "{\n";
    out += "  \"schema\": \"nbl-stats-v1\",\n";
    out += "  \"binary\": " + stats::jsonQuote(binary) + ",\n";
    out += "  \"scale\": " + stats::jsonDouble(lab.scale()) + ",\n";
    if (!extrasJson.empty())
        out += "  " + extrasJson + ",\n";
    out += "  \"results\": [";

    bool first = true;
    lab.forEachResult([&](const std::string &workload,
                          const ExperimentConfig &cfg,
                          const ExperimentResult &result) {
        if (!first)
            out += ",";
        first = false;
        out += "\n    {\n";
        out += "      \"workload\": " + stats::jsonQuote(workload) +
               ",\n";
        out += "      \"key\": " +
               stats::jsonQuote(experimentKey(workload, cfg)) + ",\n";
        out += "      \"config\": " + configJson(cfg) + ",\n";
        out += "      \"stats\": " +
               // Re-indent the snapshot under "stats": but keep its
               // first line on the key's line.
               indentBlock(stats::snapshotOfRun(result.run).toJson(2), 6)
                   .substr(6) +
               "\n";
        out += "    }";
    });

    out += "\n  ]\n}\n";
    return out;
}

std::string
statsCsv(const Lab &lab, const std::string &binary)
{
    std::string out = "binary,workload,key," + stats::Snapshot::csvHeader();
    lab.forEachResult([&](const std::string &workload,
                          const ExperimentConfig &cfg,
                          const ExperimentResult &result) {
        std::string prefix = stats::csvField(binary) + "," +
                             stats::csvField(workload) + "," +
                             stats::csvField(
                                 experimentKey(workload, cfg)) +
                             ",";
        std::string rows = stats::snapshotOfRun(result.run).toCsv();
        size_t start = 0;
        while (start < rows.size()) {
            size_t end = rows.find('\n', start);
            if (end == std::string::npos)
                end = rows.size();
            out += prefix + rows.substr(start, end - start) + "\n";
            start = end + 1;
        }
    });
    return out;
}

void
writeFileOrDie(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open '%s' for writing", path.c_str());
    if (std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
        std::fclose(f);
        fatal("short write to '%s'", path.c_str());
    }
    if (std::fclose(f) != 0)
        fatal("error closing '%s'", path.c_str());
}

} // namespace nbl::harness
