#include "harness/sweep.hh"

#include "harness/parallel.hh"
#include "util/chart.hh"
#include "util/table.hh"

namespace nbl::harness
{

std::vector<Curve>
sweepCurves(Lab &lab, const std::string &workload, ExperimentConfig base,
            const std::vector<core::ConfigName> &cfgs)
{
    return runSweepParallel(lab, workload, base, cfgs);
}

std::vector<Curve>
sweepCurvesSerial(Lab &lab, const std::string &workload,
                  ExperimentConfig base,
                  const std::vector<core::ConfigName> &cfgs)
{
    std::vector<Curve> curves;
    for (core::ConfigName cfg : cfgs) {
        Curve c;
        c.label = core::configLabel(cfg);
        for (int lat : paperLatencies) {
            ExperimentConfig e = base;
            e.config = cfg;
            e.customPolicy.reset();
            e.loadLatency = lat;
            c.latencies.push_back(lat);
            c.results.push_back(lab.run(workload, e));
        }
        curves.push_back(std::move(c));
    }
    return curves;
}

std::vector<core::ConfigName>
baselineConfigList()
{
    return {core::ConfigName::Mc0Wma, core::ConfigName::Mc0,
            core::ConfigName::Mc1, core::ConfigName::Mc2,
            core::ConfigName::Fc1, core::ConfigName::Fc2,
            core::ConfigName::NoRestrict};
}

std::vector<core::ConfigName>
perSetConfigList()
{
    return {core::ConfigName::Mc0Wma, core::ConfigName::Mc0,
            core::ConfigName::Mc1, core::ConfigName::Mc2,
            core::ConfigName::Fc1, core::ConfigName::Fc2,
            core::ConfigName::Fs1, core::ConfigName::Fs2,
            core::ConfigName::NoRestrict};
}

std::string
curvesCsv(const std::vector<Curve> &curves)
{
    size_t rows = curves.empty() ? 0 : curves[0].latencies.size();
    std::string out;
    // One ~12-char cell per (row+header, curve+key) pair; a single
    // up-front reservation keeps the appends below from reallocating.
    out.reserve((rows + 1) * (curves.size() + 1) * 16);
    out += "load_latency";
    for (const Curve &c : curves) {
        std::string label = c.label;
        for (char &ch : label) {
            if (ch == ' ' || ch == '=')
                ch = '_';
        }
        out += ',';
        out += label;
    }
    out += '\n';
    for (size_t i = 0; i < rows; ++i) {
        out += std::to_string(curves[0].latencies[i]);
        for (const Curve &c : curves) {
            out += ',';
            out += Table::num(c.results[i].mcpi(), 6);
        }
        out += '\n';
    }
    return out;
}

void
plotCurves(const std::vector<Curve> &curves)
{
    AsciiChart chart(60, 16, "scheduled load latency", "miss CPI");
    for (const Curve &c : curves) {
        std::vector<std::pair<double, double>> pts;
        for (size_t i = 0; i < c.latencies.size(); ++i)
            pts.emplace_back(double(c.latencies[i]),
                             c.results[i].mcpi());
        chart.addSeries(c.label, std::move(pts));
    }
    chart.print();
}

void
printCurves(const std::string &title, const std::vector<Curve> &curves)
{
    Table t(title);
    std::vector<std::string> head = {"load latency"};
    for (const Curve &c : curves)
        head.push_back(c.label);
    t.header(std::move(head));
    if (curves.empty())
        return;
    for (size_t i = 0; i < curves[0].latencies.size(); ++i) {
        std::vector<std::string> row = {
            std::to_string(curves[0].latencies[i])};
        for (const Curve &c : curves)
            row.push_back(Table::num(c.results[i].mcpi(), 3));
        t.row(std::move(row));
    }
    t.print();
}

} // namespace nbl::harness
