#include "harness/experiment.hh"

#include "util/log.hh"

namespace nbl::harness
{

exec::MachineConfig
makeMachineConfig(const ExperimentConfig &cfg)
{
    exec::MachineConfig mc;
    mc.geometry = mem::CacheGeometry(cfg.cacheBytes, cfg.lineBytes,
                                     cfg.ways);
    mc.policy = cfg.customPolicy ? *cfg.customPolicy
                                 : core::makePolicy(cfg.config);
    mc.memory = cfg.missPenalty ? mem::MainMemory(cfg.missPenalty)
                                : mem::MainMemory();
    mc.issueWidth = cfg.issueWidth;
    mc.perfectCache = cfg.perfectCache;
    mc.fillWritePorts = cfg.fillWritePorts;
    mc.maxInstructions = cfg.maxInstructions;
    return mc;
}

ExperimentResult
runExperiment(const workloads::Workload &workload,
              const ExperimentConfig &cfg)
{
    compiler::CompileParams cp;
    cp.loadLatency = cfg.loadLatency;
    ExperimentResult res;
    isa::Program prog = compiler::compile(workload.program, cp,
                                          &res.compileInfo);
    mem::SparseMemory data = workload.makeMemory();
    res.run = exec::run(prog, data, makeMachineConfig(cfg));
    return res;
}

const workloads::Workload &
Lab::workload(const std::string &name)
{
    auto it = workloads_.find(name);
    if (it == workloads_.end()) {
        it = workloads_
                 .emplace(name, workloads::makeWorkload(name, scale_))
                 .first;
    }
    return it->second;
}

const Lab::Compiled &
Lab::compiled(const std::string &name, int latency)
{
    auto key = std::make_pair(name, latency);
    auto it = programs_.find(key);
    if (it == programs_.end()) {
        const workloads::Workload &w = workload(name);
        compiler::CompileParams cp;
        cp.loadLatency = latency;
        Compiled c;
        c.program = compiler::compile(w.program, cp, &c.info);
        it = programs_.emplace(key, std::move(c)).first;
    }
    return it->second;
}

const isa::Program &
Lab::program(const std::string &name, int latency)
{
    return compiled(name, latency).program;
}

compiler::CompileInfo
Lab::compileInfo(const std::string &name, int latency)
{
    return compiled(name, latency).info;
}

ExperimentResult
Lab::run(const std::string &name, const ExperimentConfig &cfg)
{
    const workloads::Workload &w = workload(name);
    const Compiled &c = compiled(name, cfg.loadLatency);
    mem::SparseMemory data = w.makeMemory();
    ExperimentResult res;
    res.compileInfo = c.info;
    res.run = exec::run(c.program, data, makeMachineConfig(cfg));
    return res;
}

} // namespace nbl::harness
