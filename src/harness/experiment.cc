#include "harness/experiment.hh"

#include <algorithm>
#include <map>

#include "exec/lane_replay.hh"
#include "util/env.hh"
#include "util/log.hh"

namespace nbl::harness
{

Lab::Lab(double scale)
    : scale_(scale), envPolicy_(nbl::policy::stallPolicyFromEnv()),
      replay_(!envFlag("NBL_EXEC_DRIVEN")),
      lane_replay_(envFlag("NBL_LANE_REPLAY", true)),
      result_cap_(size_t(std::max<int64_t>(
          0, envInt("NBL_LAB_RESULT_CAP", 0)))),
      trace_cap_(size_t(std::max<int64_t>(
          0, envInt("NBL_LAB_TRACE_CAP", 0))))
{
}

exec::MachineConfig
makeMachineConfig(const ExperimentConfig &cfg)
{
    exec::MachineConfig mc;
    mc.geometry = mem::CacheGeometry(cfg.cacheBytes, cfg.lineBytes,
                                     cfg.ways);
    mc.policy = cfg.customPolicy ? *cfg.customPolicy
                                 : core::makePolicy(cfg.config);
    mc.memory = cfg.missPenalty ? mem::MainMemory(cfg.missPenalty)
                                : mem::MainMemory();
    mc.issueWidth = cfg.issueWidth;
    mc.perfectCache = cfg.perfectCache;
    mc.fillWritePorts = cfg.fillWritePorts;
    mc.hierarchy = cfg.hierarchy;
    mc.stallPolicy = cfg.stallPolicy;
    mc.maxInstructions = cfg.maxInstructions;
    return mc;
}

std::string
experimentKey(const std::string &workload, const ExperimentConfig &cfg)
{
    std::string key;
    key.reserve(workload.size() + 128);
    key += workload;
    key += strfmt("|%llu|%llu|%u|",
                  static_cast<unsigned long long>(cfg.cacheBytes),
                  static_cast<unsigned long long>(cfg.lineBytes),
                  cfg.ways);
    if (cfg.customPolicy) {
        // Serialize the resolved policy: two custom policies with the
        // same restrictions are the same experiment regardless of the
        // ConfigName they nominally override.
        const core::MshrPolicy &p = *cfg.customPolicy;
        key += strfmt("P%d.%d.%d.%d.%d.%d.%d.%d.%u", int(p.mode),
                      p.numMshrs, p.maxMisses, p.subBlocks,
                      p.missesPerSubBlock, p.fetchesPerSet,
                      int(p.fetchesPerSetTracksWays), int(p.storeMode),
                      p.fillExtraCycles);
    } else {
        key += strfmt("C%d", int(cfg.config));
    }
    key += strfmt("|%d|%u|%u|%d|%u|%llu", cfg.loadLatency,
                  cfg.missPenalty, cfg.issueWidth,
                  int(cfg.perfectCache), cfg.fillWritePorts,
                  static_cast<unsigned long long>(cfg.maxInstructions));
    if (!cfg.hierarchy.degenerate()) {
        // Appended only for non-degenerate chains so keys of every
        // pre-hierarchy experiment (and the committed artifacts named
        // after them) are unchanged.
        key += "|H";
        key += core::hierarchyKey(cfg.hierarchy);
    }
    if (!cfg.stallPolicy.defaulted()) {
        // Same rule for the stall policy: appended only when a policy
        // is configured, so pre-policy keys are unchanged.
        key += "|P";
        key += nbl::policy::stallPolicyKey(cfg.stallPolicy);
    }
    return key;
}

ExperimentResult
runExperiment(const workloads::Workload &workload,
              const ExperimentConfig &cfg)
{
    compiler::CompileParams cp;
    cp.loadLatency = cfg.loadLatency;
    ExperimentResult res;
    isa::Program prog = compiler::compile(workload.program, cp,
                                          &res.compileInfo);
    mem::SparseMemory data = workload.makeMemory();
    res.run = exec::run(prog, data, makeMachineConfig(cfg));
    return res;
}

const workloads::Workload &
Lab::workload(const std::string &name)
{
    std::lock_guard<std::mutex> lock(buildMutex_);
    auto it = workloads_.find(name);
    if (it == workloads_.end()) {
        it = workloads_
                 .emplace(name, workloads::makeWorkload(name, scale_))
                 .first;
    }
    return it->second;
}

void
Lab::addRawProgram(const std::string &name,
                   const isa::Program &program)
{
    std::lock_guard<std::mutex> lock(buildMutex_);
    workloads::Workload w;
    w.name = name; // Null init: runs see a zeroed memory image.
    workloads_.insert_or_assign(name, std::move(w));
    Compiled c;
    c.program = program;
    c.fingerprint = program.fingerprint();
    raw_.insert_or_assign(name, std::move(c));
}

const Lab::Compiled &
Lab::compiled(const std::string &name, int latency)
{
    {
        // Raw programs serve every latency from one compiled entry.
        std::lock_guard<std::mutex> lock(buildMutex_);
        auto rit = raw_.find(name);
        if (rit != raw_.end())
            return rit->second;
    }
    // Build the workload first: workload() takes buildMutex_ itself.
    const workloads::Workload &w = workload(name);
    std::lock_guard<std::mutex> lock(buildMutex_);
    auto key = std::make_pair(name, latency);
    auto it = programs_.find(key);
    if (it == programs_.end()) {
        compiler::CompileParams cp;
        cp.loadLatency = latency;
        Compiled c;
        c.program = compiler::compile(w.program, cp, &c.info);
        c.fingerprint = c.program.fingerprint();
        it = programs_.emplace(key, std::move(c)).first;
    }
    return it->second;
}

const isa::Program &
Lab::program(const std::string &name, int latency)
{
    return compiled(name, latency).program;
}

compiler::CompileInfo
Lab::compileInfo(const std::string &name, int latency)
{
    return compiled(name, latency).info;
}

std::shared_ptr<const exec::EventTrace>
Lab::eventTrace(const std::string &name, int latency,
                uint64_t maxInstructions)
{
    const workloads::Workload &w = workload(name);
    const Compiled &c = compiled(name, latency);
    auto key = std::make_pair(name, c.fingerprint);
    {
        std::lock_guard<std::mutex> lock(traceMutex_);
        auto it = traces_.find(key);
        if (it != traces_.end() &&
            !(it->second->hitInstructionCap &&
              maxInstructions > it->second->instructions)) {
            ++trace_hits_;
            return it->second;
        }
    }

    // Record outside the lock (this is the expensive functional run).
    mem::SparseMemory data = w.makeMemory();
    auto trace = std::make_shared<const exec::EventTrace>(
        exec::recordEventTrace(c.program, data, maxInstructions));

    std::lock_guard<std::mutex> lock(traceMutex_);
    auto [it, inserted] = traces_.emplace(key, trace);
    if (!inserted && it->second->instructions < trace->instructions) {
        // Racing recorders (or a capped trace superseded by a larger
        // cap): the streams are prefixes of one another, so the longer
        // recording serves every request the shorter one could.
        it->second = trace;
    }
    // Capture the kept trace BEFORE evicting: at a small cap the FIFO
    // may evict the entry just inserted, which invalidates `it`.
    std::shared_ptr<const exec::EventTrace> kept = it->second;
    if (inserted && trace_cap_ != 0) {
        trace_fifo_.push_back(key);
        evictTracesLocked();
    }
    return kept;
}

uint64_t
Lab::programFingerprint(const std::string &name, int latency)
{
    return compiled(name, latency).fingerprint;
}

void
Lab::injectTrace(const std::string &name, uint64_t fingerprint,
                 std::shared_ptr<const exec::EventTrace> trace)
{
    if (!trace)
        return;
    auto key = std::make_pair(name, fingerprint);
    std::lock_guard<std::mutex> lock(traceMutex_);
    auto [it, inserted] = traces_.emplace(key, trace);
    if (!inserted && it->second->instructions < trace->instructions)
        it->second = std::move(trace);
    if (inserted && trace_cap_ != 0) {
        trace_fifo_.push_back(key);
        evictTracesLocked();
    }
}

void
Lab::forEachTrace(
    const std::function<void(
        const std::string &, uint64_t,
        const std::shared_ptr<const exec::EventTrace> &)> &fn) const
{
    std::lock_guard<std::mutex> lock(traceMutex_);
    for (const auto &[key, trace] : traces_)
        fn(key.first, key.second, trace);
}

void
Lab::setResultCacheCap(size_t cap)
{
    std::lock_guard<std::mutex> lock(resultMutex_);
    result_cap_ = cap;
    // Rebuild the FIFO from the live map: entries inserted while the
    // cache was unbounded were not tracked (map key order stands in
    // for their insertion order).
    result_fifo_.clear();
    if (result_cap_ == 0)
        return;
    for (const auto &[key, cached] : results_)
        result_fifo_.push_back(key);
    while (results_.size() > result_cap_ && !result_fifo_.empty()) {
        results_.erase(result_fifo_.front());
        result_fifo_.pop_front();
        ++result_evictions_;
    }
}

void
Lab::setTraceCacheCap(size_t cap)
{
    std::lock_guard<std::mutex> lock(traceMutex_);
    trace_cap_ = cap;
    trace_fifo_.clear();
    if (trace_cap_ == 0)
        return;
    for (const auto &[key, trace] : traces_)
        trace_fifo_.push_back(key);
    evictTracesLocked();
}

Lab::CacheCounters
Lab::cacheCounters() const
{
    CacheCounters c;
    {
        std::lock_guard<std::mutex> lock(resultMutex_);
        c.results = results_.size();
        c.resultHits = result_hits_;
        c.resultEvictions = result_evictions_;
    }
    {
        std::lock_guard<std::mutex> lock(traceMutex_);
        c.traces = traces_.size();
        c.traceHits = trace_hits_;
        c.traceEvictions = trace_evictions_;
    }
    {
        std::lock_guard<std::mutex> lock(profileMutex_);
        c.profiles = profiles_.size();
        c.profileHits = profile_hits_;
    }
    return c;
}

void
Lab::prewarmTrace(const std::string &name, int latency,
                  uint64_t maxInstructions)
{
    if (replay_)
        eventTrace(name, latency, maxInstructions);
    else
        program(name, latency);
}

std::shared_ptr<const model::TraceProfile>
Lab::profile(const std::string &name, int latency,
             const model::ProfileConfig &cfg)
{
    const Compiled &c = compiled(name, latency);
    std::string key = strfmt("%s|%llu|", name.c_str(),
                             (unsigned long long)c.fingerprint) +
                      model::profileKey(cfg);
    {
        std::lock_guard<std::mutex> lock(profileMutex_);
        auto it = profiles_.find(key);
        if (it != profiles_.end()) {
            ++profile_hits_;
            return it->second;
        }
    }

    // Characterize outside the lock (one trace walk; the trace itself
    // is recorded on first use regardless of the replay toggle --
    // the model always works from a recorded stream).
    auto trace = eventTrace(name, latency, cfg.maxInstructions);
    auto prof = std::make_shared<const model::TraceProfile>(
        model::characterize(program(name, latency), *trace, cfg));

    std::lock_guard<std::mutex> lock(profileMutex_);
    // Racing characterizers produce identical profiles; first-in wins.
    auto [it, inserted] = profiles_.emplace(key, std::move(prof));
    return it->second;
}

std::vector<std::shared_ptr<const model::TraceProfile>>
Lab::profileBatch(const std::string &name, int latency,
                  const std::vector<model::ProfileConfig> &cfgs)
{
    const Compiled &c = compiled(name, latency);
    const std::string prefix =
        strfmt("%s|%llu|", name.c_str(),
               (unsigned long long)c.fingerprint);

    std::vector<std::string> keys;
    keys.reserve(cfgs.size());
    for (const model::ProfileConfig &cfg : cfgs)
        keys.push_back(prefix + model::profileKey(cfg));

    std::vector<std::shared_ptr<const model::TraceProfile>> out(
        cfgs.size());
    /** key -> first input index needing characterization. */
    std::map<std::string, size_t> missing;
    {
        std::lock_guard<std::mutex> lock(profileMutex_);
        for (size_t i = 0; i < cfgs.size(); ++i) {
            auto it = profiles_.find(keys[i]);
            if (it != profiles_.end()) {
                ++profile_hits_;
                out[i] = it->second;
            } else {
                missing.emplace(keys[i], i);
            }
        }
    }
    if (missing.empty())
        return out;

    // Group the uncached configs by the batch constraint (shared
    // lineBytes and maxInstructions) and characterize each group in
    // one trace pass, outside the lock.
    std::map<std::pair<uint64_t, uint64_t>, std::vector<size_t>>
        groups;
    for (const auto &[key, i] : missing)
        groups[{cfgs[i].lineBytes, cfgs[i].maxInstructions}]
            .push_back(i);
    for (const auto &[shape, members] : groups) {
        std::vector<model::ProfileConfig> batch;
        batch.reserve(members.size());
        for (size_t i : members)
            batch.push_back(cfgs[i]);
        auto trace = eventTrace(name, latency, shape.second);
        auto profs = model::characterizeBatch(program(name, latency),
                                              *trace, batch);

        std::lock_guard<std::mutex> lock(profileMutex_);
        for (size_t j = 0; j < members.size(); ++j) {
            auto prof = std::make_shared<const model::TraceProfile>(
                std::move(profs[j]));
            // First-in wins, as in profile().
            auto [it, inserted] =
                profiles_.emplace(keys[members[j]], std::move(prof));
            out[members[j]] = it->second;
        }
    }
    // Duplicate keys in the input resolve from the now-filled cache.
    for (size_t i = 0; i < cfgs.size(); ++i) {
        if (!out[i])
            out[i] = out[missing.at(keys[i])];
    }
    return out;
}

ExperimentConfig
Lab::effectiveConfig(const ExperimentConfig &cfg_in) const
{
    ExperimentConfig cfg = cfg_in;
    if (cfg.stallPolicy.defaulted())
        cfg.stallPolicy = envPolicy_;
    return cfg;
}

ExperimentResult
Lab::run(const std::string &name, const ExperimentConfig &cfg_in)
{
    const ExperimentConfig cfg = effectiveConfig(cfg_in);
    std::string key = experimentKey(name, cfg);
    {
        std::lock_guard<std::mutex> lock(resultMutex_);
        auto it = results_.find(key);
        if (it != results_.end()) {
            ++result_hits_;
            return it->second.result;
        }
    }

    const workloads::Workload &w = workload(name);
    const Compiled &c = compiled(name, cfg.loadLatency);
    ExperimentResult res;
    res.compileInfo = c.info;
    if (replay_) {
        // Record once, replay many: only the first point of this
        // (workload, program) pair pays for functional execution.
        auto trace = eventTrace(name, cfg.loadLatency,
                                cfg.maxInstructions);
        res.run = exec::replayExact(c.program, *trace,
                                    makeMachineConfig(cfg));
    } else {
        mem::SparseMemory data = w.makeMemory();
        res.run = exec::run(c.program, data, makeMachineConfig(cfg));
    }

    std::lock_guard<std::mutex> lock(resultMutex_);
    // Two threads may race to simulate the same point; results are
    // deterministic, so first-in wins and the copies are identical.
    insertResultLocked(key, name, cfg, res);
    return res;
}

std::vector<ExperimentResult>
Lab::runLanes(const std::string &name,
              const std::vector<ExperimentConfig> &cfgs_in)
{
    std::vector<ExperimentResult> out(cfgs_in.size());
    if (cfgs_in.empty())
        return out;
    std::vector<ExperimentConfig> cfgs;
    cfgs.reserve(cfgs_in.size());
    for (const ExperimentConfig &c : cfgs_in)
        cfgs.push_back(effectiveConfig(c));

    // Serve memoized points first; the leftovers either batch into
    // lanes or fall back to the per-point engine.
    std::vector<std::string> keys(cfgs.size());
    std::vector<size_t> lanes;
    for (size_t i = 0; i < cfgs.size(); ++i)
        keys[i] = experimentKey(name, cfgs[i]);
    {
        std::lock_guard<std::mutex> lock(resultMutex_);
        for (size_t i = 0; i < cfgs.size(); ++i) {
            auto it = results_.find(keys[i]);
            if (it != results_.end()) {
                ++result_hits_;
                out[i] = it->second.result;
                keys[i].clear(); // Mark done.
            }
        }
    }
    for (size_t i = 0; i < cfgs.size(); ++i) {
        if (keys[i].empty())
            continue;
        if (!laneReplayActive() ||
            !exec::laneReplayable(makeMachineConfig(cfgs[i]))) {
            out[i] = run(name, cfgs[i]);
            keys[i].clear();
        } else {
            lanes.push_back(i);
        }
    }
    if (lanes.empty())
        return out;

    // Group the lanes by (program fingerprint, effective budget):
    // every group shares one recorded stream and one lockstep budget,
    // exactly what exec::replayLanes requires. Distinct scheduled
    // latencies that compile to identical code land in one group.
    struct Group
    {
        const isa::Program *program = nullptr;
        std::shared_ptr<const exec::EventTrace> trace;
        std::vector<size_t> idx;
    };
    std::map<std::pair<uint64_t, uint64_t>, Group> groups;
    // Fetch each distinct (fingerprint, requested cap) trace once and
    // hold the shared_ptr for the whole batch: per-lane eventTrace()
    // calls under a tiny trace-cache cap could evict and re-record the
    // stream between lanes of one group.
    std::map<std::pair<uint64_t, uint64_t>,
             std::shared_ptr<const exec::EventTrace>>
        fetched;
    for (size_t i : lanes) {
        const Compiled &c = compiled(name, cfgs[i].loadLatency);
        auto fkey =
            std::make_pair(c.fingerprint, cfgs[i].maxInstructions);
        auto fit = fetched.find(fkey);
        if (fit == fetched.end()) {
            fit = fetched
                      .emplace(fkey,
                               eventTrace(name, cfgs[i].loadLatency,
                                          cfgs[i].maxInstructions))
                      .first;
        }
        const std::shared_ptr<const exec::EventTrace> &trace =
            fit->second;
        uint64_t budget =
            std::min(trace->instructions, cfgs[i].maxInstructions);
        Group &g = groups[{c.fingerprint, budget}];
        g.program = &c.program;
        // Keep the longest recording offered to the group: every lane
        // key maps to the same budget, and a longer prefix-consistent
        // stream serves every shorter request.
        if (!g.trace || g.trace->instructions < trace->instructions)
            g.trace = trace;
        g.idx.push_back(i);
        out[i].compileInfo = c.info;
    }
    for (auto &[gk, g] : groups) {
        std::vector<exec::MachineConfig> mcs;
        mcs.reserve(g.idx.size());
        for (size_t i : g.idx)
            mcs.push_back(makeMachineConfig(cfgs[i]));
        std::vector<exec::RunOutput> runs =
            exec::replayLanes(*g.program, *g.trace, mcs);
        for (size_t j = 0; j < g.idx.size(); ++j)
            out[g.idx[j]].run = std::move(runs[j]);
    }

    std::lock_guard<std::mutex> lock(resultMutex_);
    for (size_t i : lanes) {
        // Duplicate keys within the batch (or a racing thread) insert
        // once; results are deterministic, so first-in wins.
        insertResultLocked(keys[i], name, cfgs[i], out[i]);
    }
    return out;
}

void
Lab::insertResultLocked(const std::string &key,
                        const std::string &workload,
                        const ExperimentConfig &cfg,
                        const ExperimentResult &result)
{
    auto [it, inserted] =
        results_.emplace(key, CachedResult{workload, cfg, result});
    (void)it;
    if (!inserted)
        return;
    if (result_cap_ == 0)
        return;
    result_fifo_.push_back(key);
    while (results_.size() > result_cap_ && !result_fifo_.empty()) {
        results_.erase(result_fifo_.front());
        result_fifo_.pop_front();
        ++result_evictions_;
    }
}

void
Lab::evictTracesLocked()
{
    if (trace_cap_ == 0)
        return;
    while (traces_.size() > trace_cap_ && !trace_fifo_.empty()) {
        traces_.erase(trace_fifo_.front());
        trace_fifo_.pop_front();
        ++trace_evictions_;
    }
}

void
Lab::forEachResult(
    const std::function<void(const std::string &,
                             const ExperimentConfig &,
                             const ExperimentResult &)> &fn) const
{
    std::lock_guard<std::mutex> lock(resultMutex_);
    for (const auto &[key, cached] : results_)
        fn(cached.workload, cached.cfg, cached.result);
}

size_t
Lab::cachedResults() const
{
    std::lock_guard<std::mutex> lock(resultMutex_);
    return results_.size();
}

uint64_t
Lab::resultCacheHits() const
{
    std::lock_guard<std::mutex> lock(resultMutex_);
    return result_hits_;
}

size_t
Lab::recordedTraces() const
{
    std::lock_guard<std::mutex> lock(traceMutex_);
    return traces_.size();
}

uint64_t
Lab::traceCacheHits() const
{
    std::lock_guard<std::mutex> lock(traceMutex_);
    return trace_hits_;
}

size_t
Lab::cachedProfiles() const
{
    std::lock_guard<std::mutex> lock(profileMutex_);
    return profiles_.size();
}

uint64_t
Lab::profileCacheHits() const
{
    std::lock_guard<std::mutex> lock(profileMutex_);
    return profile_hits_;
}

void
Lab::clearResultCache()
{
    std::lock_guard<std::mutex> lock(resultMutex_);
    results_.clear();
    result_fifo_.clear();
    result_hits_ = 0;
}

} // namespace nbl::harness
