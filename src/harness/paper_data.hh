/**
 * @file
 * The paper's published numbers, for side-by-side comparison in the
 * bench output and EXPERIMENTS.md. All values are transcribed from
 * WRL Research Report 94/3 (Figures 4, 6, 13, 14, 18 and 19).
 */

#ifndef NBL_HARNESS_PAPER_DATA_HH
#define NBL_HARNESS_PAPER_DATA_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace nbl::harness::paper
{

/** One Figure 13 row: MCPI at load latency 10, baseline cache. */
struct Fig13Row
{
    const char *name;
    double mc0;
    double mc1;
    double mc2;
    double fc1;
    double fc2;
    double unrestricted;
};

/** All 18 rows of Figure 13, in the paper's order. */
const std::vector<Fig13Row> &fig13();

/** Find a Figure 13 row by benchmark name. */
std::optional<Fig13Row> fig13Row(const std::string &name);

/** One Figure 14 cell: doduc, latency 10, field organization. */
struct Fig14Cell
{
    int subBlocks;       ///< -1 marks the unrestricted row.
    int missesPerSub;
    double mcpi;
    double ratio;
};

/** The Figure 14 grid (explicit / implicit / hybrid MSHRs). */
const std::vector<Fig14Cell> &fig14();

/** Figure 18: tomcatv MCPI vs miss penalty at load latency 10. */
struct Fig18Row
{
    const char *config;  ///< Figure label, e.g. "mc=1".
    std::array<double, 6> mcpi; ///< Penalties 4, 8, 16, 32, 64, 128.
};

inline constexpr std::array<unsigned, 6> fig18Penalties =
    {4, 8, 16, 32, 64, 128};

const std::vector<Fig18Row> &fig18();

/** Figure 19: dual-issue scaling comparison. */
struct Fig19Row
{
    const char *name;
    double ipc;          ///< Dual-issue IPC (ideal cache).
    double scaledLat;    ///< 10 * IPC.
    double scaledPen;    ///< 16 * IPC.
    double mc0;          ///< Measured dual-issue MCPI.
    double mc1;
    double fc2;
    double unrestricted;
};

const std::vector<Fig19Row> &fig19();

/** Figure 6: doduc in-flight histograms (16-cycle penalty). */
struct Fig6Row
{
    int latency;
    int pctTimeInflight;          ///< % time with > 0 misses in flight.
    std::array<int, 7> missPct;   ///< % of that time at 1..6, 7+.
    std::array<int, 7> fetchPct;
    int maxMisses;
    int maxFetches;
};

const std::vector<Fig6Row> &fig6();

/** Figure 4: benchmark characteristics (references in millions). */
struct Fig4Row
{
    const char *name;
    double instrMin, instrMax;
    int instrMinLat, instrMaxLat;
    double loadMin, loadMax;
    int loadMinLat, loadMaxLat;
    double storeMin, storeMax;
    int storeMinLat, storeMaxLat;
};

const std::vector<Fig4Row> &fig4();

} // namespace nbl::harness::paper

#endif // NBL_HARNESS_PAPER_DATA_HH
