/**
 * @file
 * Shared stepping core for the execution-driven entry points.
 *
 * exec::run (functional + timing in lockstep), exec::recordTrace (the
 * optimistic memory-reference recorder), and exec::recordEventTrace
 * (the exact dependence-annotated recorder) all walk the same dynamic
 * instruction stream: fetch once, step the interpreter, hand the
 * result to a consumer, honor the instruction cap. This header is that
 * loop, templated over the consumer, so the cap policy and the fetch
 * discipline cannot drift between the recording and simulation paths.
 */

#ifndef NBL_EXEC_STEPPING_HH
#define NBL_EXEC_STEPPING_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "exec/interpreter.hh"
#include "isa/program.hh"
#include "util/log.hh"

namespace nbl::exec
{

/** The one cap diagnostic, shared so replay can reproduce it. */
inline void
warnInstructionCap(const isa::Program &program, uint64_t max_instructions)
{
    warn("program %s hit the %llu-instruction cap",
         program.name().c_str(),
         static_cast<unsigned long long>(max_instructions));
}

/**
 * Drive the interpreter over program from pc 0 until Halt or the
 * instruction cap, invoking per(in, pc, step) after each functional
 * step (in is the fetched instruction, step the interpreter result).
 *
 * @return true if the run was cut off by max_instructions.
 */
template <typename PerInstr>
bool
stepProgram(const isa::Program &program, Interpreter &interp,
            uint64_t max_instructions, PerInstr &&per)
{
    size_t pc = 0;
    uint64_t executed = 0;
    while (true) {
        if (executed >= max_instructions) {
            warnInstructionCap(program, max_instructions);
            return true;
        }
        // Fetch once; the interpreter and the consumer share it.
        const isa::Instr &in = program.at(pc);
        StepResult step = interp.step(in, pc);
        per(in, pc, step);
        ++executed;
        if (step.halted)
            return false;
        pc = step.nextPc;
    }
}

/**
 * Grow v ahead of a push_back in bounded chunks instead of the
 * implementation's exponential doubling: proportional (half the
 * current size) while small, clamped to max_chunk entries once large.
 * Long recordings then overshoot their final size by at most one
 * chunk instead of up to 2x.
 */
template <typename T>
inline void
chunkedReserve(std::vector<T> &v, size_t min_chunk = 4096,
               size_t max_chunk = size_t{1} << 20)
{
    if (v.size() == v.capacity())
        v.reserve(v.size() + std::clamp(v.size() / 2, min_chunk, max_chunk));
}

} // namespace nbl::exec

#endif // NBL_EXEC_STEPPING_HH
