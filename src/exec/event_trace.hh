/**
 * @file
 * Record-once / replay-many: exact event-trace replay.
 *
 * Every sweep point shares one fact the harness can exploit: the
 * dynamic instruction stream and the effective addresses of a run are
 * a function of (program, initial memory) only -- the cache
 * configuration changes *when* things happen, never *what* executes.
 * The timing side (cpu::Cpu + core::NonblockingCache) consumes nothing
 * but the fetched instruction and its effective address, so a recorded
 * (pc stream, effective-address stream) pair drives the unchanged
 * timing models to bit-identical results without re-running the
 * functional interpreter.
 *
 * Unlike the optimistic MemTrace replayer (exec/trace.hh), which drops
 * register identities and therefore under-charges dependence stalls,
 * the event trace preserves the exact instruction sequence; the
 * scoreboard sees the very same loads, uses, and WAW hazards as the
 * execution-driven run. replayExact() is exact by construction and
 * property-tested against exec::run field by field.
 *
 * Encoding: the dynamic PC stream is delta-encoded as straight-line
 * segments -- maximal runs of consecutive pcs stored as one
 * (start, length) pair, so only taken branches cost trace space.
 * Effective addresses are stored densely in reference order;
 * instruction metadata is not stored at all, it is re-fetched from the
 * Program by pc at replay time. Footprint is therefore roughly
 * 8 bytes per memory reference plus 8 bytes per taken branch,
 * independent of total instruction count for straight-line code.
 */

#ifndef NBL_EXEC_EVENT_TRACE_HH
#define NBL_EXEC_EVENT_TRACE_HH

#include <cstdint>
#include <vector>

#include "exec/machine.hh"
#include "isa/program.hh"
#include "mem/sparse_memory.hh"

namespace nbl::exec
{

/**
 * A recorded run: the delta-encoded dynamic PC stream plus the
 * effective address of every memory reference (SoA layout).
 */
struct EventTrace
{
    /** Start pc of each straight-line segment. */
    std::vector<uint32_t> segStart;
    /** Instruction count of each segment (parallel to segStart). */
    std::vector<uint32_t> segLen;
    /** Effective addresses, one per memory reference, in order. */
    std::vector<uint64_t> effAddrs;

    uint64_t instructions = 0; ///< Total dynamic instructions.
    /** The max_instructions the recording ran under. */
    uint64_t recordCap = 0;
    /** The recording was cut off by recordCap: the trace is a prefix
     *  of the full run, exact only up to recordCap instructions. */
    bool hitInstructionCap = false;

    uint64_t memoryRefs() const { return effAddrs.size(); }

    double
    referencesPerInstruction() const
    {
        return instructions
                   ? double(memoryRefs()) / double(instructions)
                   : 0.0;
    }

    /** Heap footprint of the encoded trace in bytes. */
    size_t
    bytes() const
    {
        return segStart.capacity() * sizeof(uint32_t) +
               segLen.capacity() * sizeof(uint32_t) +
               effAddrs.capacity() * sizeof(uint64_t);
    }
};

/**
 * Execute the program functionally (once) and record the event trace.
 * `data` is modified in place, exactly as by exec::run.
 */
EventTrace recordEventTrace(const isa::Program &program,
                            mem::SparseMemory &data,
                            uint64_t max_instructions = 200'000'000);

/**
 * Drive the timing models over a recorded trace: bit-identical
 * RunOutput to exec::run(program, data, config) for any config, at
 * timing-model-only cost. `program` must be the program the trace was
 * recorded from. config.maxInstructions may truncate the replay (the
 * cap behaves exactly as in exec::run); asking for *more* instructions
 * than a capped trace holds is a usage error (fatal) -- re-record
 * under the larger cap instead.
 */
RunOutput replayExact(const isa::Program &program,
                      const EventTrace &trace,
                      const MachineConfig &config);

} // namespace nbl::exec

#endif // NBL_EXEC_EVENT_TRACE_HH
