/**
 * @file
 * Trace-driven simulation support.
 *
 * The paper simulates execution-driven (section 3.2): the functional
 * program runs in lockstep with the timing model, so the *timing* of
 * each access reflects earlier stalls. The classic cheaper
 * alternative is trace-driven simulation: record the memory-access
 * stream once, then replay it through cache models.
 *
 * This module provides both halves and makes their relationship
 * precise:
 *
 *  - for a blocking cache, replay is *exact*: the access stream and
 *    the miss stream do not depend on timing, and each miss costs the
 *    full penalty (property-tested);
 *  - for a non-blocking cache, replay is an *optimistic bound*: the
 *    replayer has no register dependences, so it only charges
 *    structural stalls -- the gap between replayed and
 *    execution-driven MCPI is exactly the true-data-dependency
 *    component the paper's methodology exists to capture.
 */

#ifndef NBL_EXEC_TRACE_HH
#define NBL_EXEC_TRACE_HH

#include <cstdint>
#include <vector>

#include "core/nonblocking_cache.hh"
#include "isa/program.hh"
#include "mem/sparse_memory.hh"
#include "policy/stall_policy.hh"

namespace nbl::exec
{

/** One memory reference in a recorded trace. */
struct TraceRecord
{
    uint64_t addr;
    /** Instructions (including this one) since the previous memory
     *  reference; paces the replay clock. */
    uint32_t gap;
    /** Static program counter of the reference (index into the
     *  program) -- the cache-level predictor's table index. */
    uint32_t pc;
    uint8_t size;
    bool isLoad;
    uint8_t destLinear; ///< Destination register (loads).
};

/** A recorded memory-reference trace. */
struct MemTrace
{
    std::vector<TraceRecord> records;
    uint64_t instructions = 0; ///< Total dynamic instructions.

    double
    referencesPerInstruction() const
    {
        return instructions
                   ? double(records.size()) / double(instructions)
                   : 0.0;
    }
};

/**
 * Execute the program functionally and record its memory-reference
 * stream. `data` is modified (the program runs once).
 */
MemTrace recordTrace(const isa::Program &program,
                     mem::SparseMemory &data,
                     uint64_t max_instructions = 200'000'000);

/** Result of replaying a trace through a cache model. */
struct ReplayResult
{
    core::CacheStats cache;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t stallCycles = 0;

    /** Miss stall cycles per instruction (replay definition). */
    double
    mcpi() const
    {
        return instructions ? double(stallCycles) / double(instructions)
                            : 0.0;
    }
};

/**
 * Replay a trace through a cache configuration. Issue is paced by
 * each record's instruction gap (one instruction per cycle); blocking
 * misses and structural stalls advance the clock, register
 * dependences do not (there are none in a trace). A non-default
 * stall policy applies the prefetcher (cache-side) and the level
 * predictor's underprediction penalties; SSR is a no-op here (it
 * removes dependence bubbles, which a trace does not have).
 */
ReplayResult
replayTrace(const MemTrace &trace, const mem::CacheGeometry &geom,
            const core::MshrPolicy &policy,
            const mem::MainMemory &memory,
            const core::HierarchyConfig &hierarchy = {},
            const nbl::policy::StallPolicyConfig &stallPolicy = {});

} // namespace nbl::exec

#endif // NBL_EXEC_TRACE_HH
