#include "exec/event_trace.hh"

#include <algorithm>
#include <limits>
#include <memory>

#include "cpu/cpu.hh"
#include "exec/interpreter.hh"
#include "exec/stepping.hh"
#include "util/log.hh"

namespace nbl::exec
{

EventTrace
recordEventTrace(const isa::Program &program, mem::SparseMemory &data,
                 uint64_t max_instructions)
{
    program.validate();
    if (program.size() > std::numeric_limits<uint32_t>::max())
        fatal("recordEventTrace: program %s too large for 32-bit pcs",
              program.name().c_str());
    Interpreter interp(program, data);

    EventTrace trace;
    trace.recordCap = max_instructions;
    trace.effAddrs.reserve(4096);
    trace.segStart.reserve(1024);
    trace.segLen.reserve(1024);

    uint32_t seg_start = 0;
    uint32_t seg_len = 0;
    trace.hitInstructionCap = stepProgram(
        program, interp, max_instructions,
        [&](const isa::Instr &in, size_t pc, const StepResult &step) {
            if (seg_len == 0)
                seg_start = uint32_t(pc);
            ++seg_len;
            ++trace.instructions;
            if (in.isMem()) {
                chunkedReserve(trace.effAddrs);
                trace.effAddrs.push_back(step.effAddr);
            }
            if (step.nextPc != pc + 1) {
                // Taken branch: close the straight-line segment.
                chunkedReserve(trace.segStart);
                chunkedReserve(trace.segLen);
                trace.segStart.push_back(seg_start);
                trace.segLen.push_back(seg_len);
                seg_len = 0;
            }
        });
    if (seg_len) {
        trace.segStart.push_back(seg_start);
        trace.segLen.push_back(seg_len);
    }
    return trace;
}

RunOutput
replayExact(const isa::Program &program, const EventTrace &trace,
            const MachineConfig &config)
{
    program.validate();

    const uint64_t max_instructions = config.maxInstructions;
    if (trace.hitInstructionCap && max_instructions > trace.instructions) {
        fatal("replayExact: trace of %s was capped at %llu instructions "
              "but the replay asks for up to %llu; re-record the trace "
              "under the larger cap",
              program.name().c_str(),
              static_cast<unsigned long long>(trace.instructions),
              static_cast<unsigned long long>(max_instructions));
    }

    policy::validateStallPolicy(config.stallPolicy);

    std::unique_ptr<core::NonblockingCache> cache;
    if (!config.perfectCache) {
        cache = std::make_unique<core::NonblockingCache>(
            config.geometry, config.policy, config.memory,
            config.fillWritePorts, config.hierarchy);
        cache->configurePrefetch(config.stallPolicy.prefetch);
    }
    cpu::Cpu cpu(cache.get(), config.issueWidth, config.perfectCache);
    cpu.configureStallPolicy(config.stallPolicy);

    // The cap truncates replay exactly as it truncates execution: a
    // trace longer than the budget is cut mid-stream with the flag
    // set; a trace that was itself capped at the budget re-reports it.
    uint64_t budget = std::min(trace.instructions, max_instructions);
    bool hit_cap =
        budget < trace.instructions || trace.hitInstructionCap;

    const uint64_t *ea = trace.effAddrs.data();
    uint64_t remaining = budget;
    if (config.issueWidth == 1) {
        // Single-issue (the paper's baseline and nearly every sweep
        // point): run the pre-decoded fast path. Decoding is per
        // static instruction -- noise next to the dynamic stream.
        std::vector<cpu::ReplayDecoded> decoded =
            cpu::decodeForReplay(program);
        const cpu::ReplayDecoded *code = decoded.data();
        for (size_t s = 0; remaining > 0; ++s) {
            uint32_t len =
                uint32_t(std::min<uint64_t>(trace.segLen[s], remaining));
            ea = cpu.replayRunDecoded(code + trace.segStart[s], len, ea,
                                      trace.segStart[s]);
            remaining -= len;
        }
    } else {
        const isa::Instr *code = program.code().data();
        for (size_t s = 0; remaining > 0; ++s) {
            uint32_t len =
                uint32_t(std::min<uint64_t>(trace.segLen[s], remaining));
            ea = cpu.replayRun(code + trace.segStart[s], len, ea,
                               trace.segStart[s]);
            remaining -= len;
        }
    }
    if (hit_cap)
        warnInstructionCap(program, max_instructions);

    RunOutput out = detail::finishRun(cpu, cache.get(), hit_cap,
                                      Provenance::Replay);
    out.policyActive = !config.stallPolicy.defaulted();
    return out;
}

} // namespace nbl::exec
