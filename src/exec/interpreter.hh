/**
 * @file
 * Functional interpreter for the mini RISC ISA.
 *
 * Holds the architectural state (register values and the sparse data
 * memory) and executes one instruction at a time, producing the
 * effective address of memory operations and the next PC. The timing
 * model (cpu::Cpu) consumes this dynamic stream in lockstep, mirroring
 * the paper's execution-driven instrumentation methodology (section
 * 3.2): functional behaviour and memory behaviour are both simulated.
 */

#ifndef NBL_EXEC_INTERPRETER_HH
#define NBL_EXEC_INTERPRETER_HH

#include <array>
#include <cstdint>

#include "isa/program.hh"
#include "mem/sparse_memory.hh"

namespace nbl::exec
{

/** Result of executing one instruction functionally. */
struct StepResult
{
    uint64_t effAddr = 0;  ///< Effective address (memory ops only).
    size_t nextPc = 0;
    bool halted = false;
};

/** Architectural state + single-step execution. */
class Interpreter
{
  public:
    Interpreter(const isa::Program &program, mem::SparseMemory &memory);

    /** Execute the instruction at pc; returns address/next-pc/halt. */
    StepResult step(size_t pc);

    /**
     * Execute `in`, the already-fetched instruction at pc. Hot-loop
     * entry point: callers that also need the instruction (the timing
     * model does) fetch it once and pass it here.
     */
    StepResult step(const isa::Instr &in, size_t pc);

    uint64_t intReg(unsigned idx) const { return regs_[idx]; }
    double fpReg(unsigned idx) const;
    uint64_t
    fpRegBits(unsigned idx) const
    {
        return regs_[isa::numIntRegs + idx];
    }

    void setIntReg(unsigned idx, uint64_t v);
    void
    setFpRegBits(unsigned idx, uint64_t v)
    {
        regs_[isa::numIntRegs + idx] = v;
    }

  private:
    uint64_t readReg(isa::RegId r) const;
    void writeReg(isa::RegId r, uint64_t v);

    const isa::Program &program_;
    mem::SparseMemory &mem_;
    /**
     * Unified register file indexed by RegId::destLinear(): integer
     * registers at [0, numIntRegs), FP registers above them. The
     * single array makes readReg/writeReg branch-free; slot 0 (the
     * hard-wired integer zero register) is re-cleared after every
     * write instead of testing for it on each access.
     */
    std::array<uint64_t, isa::numIntRegs + isa::numFpRegs> regs_{};
};

} // namespace nbl::exec

#endif // NBL_EXEC_INTERPRETER_HH
