/**
 * @file
 * Batched lockstep replay: one trace pass, N config lanes.
 *
 * A sweep replays the *same* event trace once per configuration
 * point, so trace decode and stream traversal -- fetching the decoded
 * instruction, walking the straight-line segments, consuming the
 * effective-address stream -- are paid per point even though they are
 * a pure function of the workload. replayLanes() pays them once: the
 * timing state of every configuration ("lane") in a batch lives in
 * struct-of-arrays form indexed by lane, and a single pass over the
 * pre-decoded stream advances all lanes in lockstep. On top of that,
 * straight-line spans of non-memory instructions whose registers no
 * lane has pending are *fused*: a static per-pc run table (span
 * length, OR of register bits, branch count) lets the pass advance
 * every lane over the whole span in O(1), so the stream is traversed
 * per span and memory reference rather than per instruction.
 *
 * Layout (docs/PERF.md has the diagram): the CPU-side per-lane state
 * -- current cycle, issue slot, conservative pending-register mask,
 * the register scoreboard, and the per-register load fill times that
 * carry the WAW/fill-time contract (docs/MODEL.md) -- is stored in
 * flat arrays. The scoreboard and fill-time files are register-major
 * (`ready[reg * lanes + lane]`), so the common "write the destination
 * of an ALU op in every lane" step touches one contiguous run of
 * words and vectorizes; this is the PR 1 branch-free register-file
 * trick scaled from one machine to a lane batch. The cache-side state
 * (MSHR file, inverted MSHR, write buffer, tag array) is a per-lane
 * array of the unchanged core components, advanced in lockstep --
 * lanes may disagree on tag contents and fetch timing, so that state
 * cannot be shared, but only ~10% of dynamic instructions reach it.
 *
 * Per-lane results are bit-identical to exec::replayExact (and hence
 * to exec::run) by the same contract the PR 3 engine makes: the lane
 * step mirrors cpu::Cpu::replayRunDecoded() field for field, the
 * cache components are the very same code, and the property is
 * enforced by tests/test_lane_replay.cc and the differential runner's
 * exec-vs-lane cross (src/check/).
 */

#ifndef NBL_EXEC_LANE_REPLAY_HH
#define NBL_EXEC_LANE_REPLAY_HH

#include <vector>

#include "exec/event_trace.hh"
#include "exec/machine.hh"
#include "isa/program.hh"

namespace nbl::exec
{

/**
 * True when config can be a lane: the lockstep pass runs the
 * single-issue pre-decoded step with a real data cache. Multi-issue
 * and perfect-cache points fall back to replayExact().
 */
bool laneReplayable(const MachineConfig &config);

/**
 * Advance every configuration in `configs` over `trace` in one
 * lockstep pass. Returns one RunOutput per lane, in input order,
 * each bit-identical to replayExact(program, trace, configs[i]).
 *
 * Every lane must be laneReplayable() and all lanes must resolve to
 * the same effective instruction budget
 * (min(trace.instructions, maxInstructions)) -- callers group sweep
 * points accordingly (harness::Lab::runLanes). Violations are fatal:
 * they are harness bugs, not data-dependent conditions.
 */
std::vector<RunOutput> replayLanes(const isa::Program &program,
                                   const EventTrace &trace,
                                   const std::vector<MachineConfig> &configs);

} // namespace nbl::exec

#endif // NBL_EXEC_LANE_REPLAY_HH
