#include "exec/interpreter.hh"

#include <bit>

#include "util/log.hh"

namespace nbl::exec
{

using isa::Op;
using isa::RegClass;
using isa::RegId;

Interpreter::Interpreter(const isa::Program &program,
                         mem::SparseMemory &memory)
    : program_(program), mem_(memory)
{
}

uint64_t
Interpreter::readReg(RegId r) const
{
    // regs_[0] is kept zero by writeReg, so no x0 special case here.
    return regs_[r.destLinear()];
}

void
Interpreter::writeReg(RegId r, uint64_t v)
{
    // Branch-free x0 handling: store unconditionally, then restore the
    // hard-wired zero (a plain store, cheaper than a test per write).
    regs_[r.destLinear()] = v;
    regs_[0] = 0;
}

double
Interpreter::fpReg(unsigned idx) const
{
    return std::bit_cast<double>(regs_[isa::numIntRegs + idx]);
}

void
Interpreter::setIntReg(unsigned idx, uint64_t v)
{
    regs_[idx] = v;
    regs_[0] = 0;
}

StepResult
Interpreter::step(size_t pc)
{
    return step(program_.at(pc), pc);
}

StepResult
Interpreter::step(const isa::Instr &in, size_t pc)
{
    StepResult res;
    res.nextPc = pc + 1;

    auto fbin = [&](auto fn) {
        double a = std::bit_cast<double>(readReg(in.src1));
        double b = std::bit_cast<double>(readReg(in.src2));
        writeReg(in.dst, std::bit_cast<uint64_t>(fn(a, b)));
    };
    auto s64 = [](uint64_t v) { return static_cast<int64_t>(v); };

    switch (in.op) {
      case Op::Nop:
        break;
      case Op::Add:
        writeReg(in.dst, readReg(in.src1) + readReg(in.src2));
        break;
      case Op::Sub:
        writeReg(in.dst, readReg(in.src1) - readReg(in.src2));
        break;
      case Op::Mul:
        writeReg(in.dst, readReg(in.src1) * readReg(in.src2));
        break;
      case Op::And:
        writeReg(in.dst, readReg(in.src1) & readReg(in.src2));
        break;
      case Op::Or:
        writeReg(in.dst, readReg(in.src1) | readReg(in.src2));
        break;
      case Op::Xor:
        writeReg(in.dst, readReg(in.src1) ^ readReg(in.src2));
        break;
      case Op::Shl:
        writeReg(in.dst, readReg(in.src1) << (readReg(in.src2) & 63));
        break;
      case Op::Shr:
        writeReg(in.dst, readReg(in.src1) >> (readReg(in.src2) & 63));
        break;
      case Op::AddI:
        writeReg(in.dst, readReg(in.src1) + uint64_t(in.imm));
        break;
      case Op::MulI:
        writeReg(in.dst, readReg(in.src1) * uint64_t(in.imm));
        break;
      case Op::AndI:
        writeReg(in.dst, readReg(in.src1) & uint64_t(in.imm));
        break;
      case Op::ShlI:
        writeReg(in.dst, readReg(in.src1) << (in.imm & 63));
        break;
      case Op::ShrI:
        writeReg(in.dst, readReg(in.src1) >> (in.imm & 63));
        break;
      case Op::LImm:
        writeReg(in.dst, uint64_t(in.imm));
        break;
      case Op::FAdd:
        fbin([](double a, double b) { return a + b; });
        break;
      case Op::FSub:
        fbin([](double a, double b) { return a - b; });
        break;
      case Op::FMul:
        fbin([](double a, double b) { return a * b; });
        break;
      case Op::FDiv:
        fbin([](double a, double b) { return b == 0.0 ? 0.0 : a / b; });
        break;
      case Op::MovIF:
      case Op::MovFI:
        writeReg(in.dst, readReg(in.src1));
        break;
      case Op::Ld:
      case Op::Fld:
        res.effAddr = readReg(in.src1) + uint64_t(in.imm);
        writeReg(in.dst, mem_.read(res.effAddr, in.size));
        break;
      case Op::St:
      case Op::Fst:
        res.effAddr = readReg(in.src1) + uint64_t(in.imm);
        mem_.write(res.effAddr, in.size, readReg(in.src2));
        break;
      case Op::BEq:
        if (readReg(in.src1) == readReg(in.src2))
            res.nextPc = size_t(in.imm);
        break;
      case Op::BNe:
        if (readReg(in.src1) != readReg(in.src2))
            res.nextPc = size_t(in.imm);
        break;
      case Op::BLt:
        if (s64(readReg(in.src1)) < s64(readReg(in.src2)))
            res.nextPc = size_t(in.imm);
        break;
      case Op::BGe:
        if (s64(readReg(in.src1)) >= s64(readReg(in.src2)))
            res.nextPc = size_t(in.imm);
        break;
      case Op::Jmp:
        res.nextPc = size_t(in.imm);
        break;
      case Op::Halt:
        res.halted = true;
        break;
      default:
        panic("unhandled opcode %u", unsigned(in.op));
    }
    return res;
}

} // namespace nbl::exec
