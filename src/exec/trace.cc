#include "exec/trace.hh"

#include <algorithm>

#include "exec/interpreter.hh"
#include "exec/stepping.hh"
#include "util/log.hh"

namespace nbl::exec
{

MemTrace
recordTrace(const isa::Program &program, mem::SparseMemory &data,
            uint64_t max_instructions)
{
    program.validate();
    Interpreter interp(program, data);

    MemTrace trace;
    trace.records.reserve(4096);
    uint32_t gap = 0;
    stepProgram(program, interp, max_instructions,
                [&](const isa::Instr &in, size_t pc,
                    const StepResult &step) {
                    ++trace.instructions;
                    ++gap;
                    if (in.isMem()) {
                        TraceRecord rec;
                        rec.addr = step.effAddr;
                        rec.gap = gap;
                        rec.pc = uint32_t(pc);
                        rec.size = in.size;
                        rec.isLoad = in.isLoad();
                        rec.destLinear =
                            in.isLoad() ? uint8_t(in.dst.destLinear())
                                        : 0;
                        chunkedReserve(trace.records);
                        trace.records.push_back(rec);
                        gap = 0;
                    }
                });
    return trace;
}

ReplayResult
replayTrace(const MemTrace &trace, const mem::CacheGeometry &geom,
            const core::MshrPolicy &policy,
            const mem::MainMemory &memory,
            const core::HierarchyConfig &hierarchy,
            const nbl::policy::StallPolicyConfig &stallPolicy)
{
    core::NonblockingCache cache(geom, policy, memory,
                                 /*fill_write_ports=*/0, hierarchy);
    cache.configurePrefetch(stallPolicy.prefetch);
    nbl::policy::LevelPredictor pred(stallPolicy.predictor);
    bool pred_active =
        stallPolicy.predictor.mode != nbl::policy::PredictorMode::Off;
    unsigned pred_penalty = stallPolicy.predictor.penalty;

    ReplayResult res;
    res.instructions = trace.instructions;

    // A trace carries no dataflow, so the recorded destination
    // register may still be "waiting" from the replayer's point of
    // view (the real CPU's WAW interlock is what prevents that).
    // Replay is therefore destination-agnostic: destinations rotate
    // over the register space, which can never collide because far
    // fewer misses than registers are ever in flight.
    unsigned rot = 0;
    uint64_t now = 0;
    uint64_t gap_sum = 0; // paced instructions; the rest are the tail
    for (const TraceRecord &rec : trace.records) {
        gap_sum += rec.gap;
        now += rec.gap; // one instruction per cycle between accesses
        core::AccessOutcome out =
            rec.isLoad
                ? cache.load(rec.addr, rec.size, now,
                             rot++ % (isa::numIntRegs + isa::numFpRegs))
                : cache.store(rec.addr, rec.size, now);
        // Structural stalls and blocking-miss service advance the
        // clock; dependences do not exist in a trace.
        uint64_t stall = (out.issueCycle - now) +
                         (out.procFreeAt - (out.issueCycle + 1));
        res.stallCycles += stall;
        now = out.procFreeAt - 1;
        if (rec.isLoad && pred_active) {
            // Cache-level prediction, mirroring the CPU's penalty
            // arithmetic: an underprediction restarts issue
            // pred_penalty cycles later than it otherwise would.
            bool actual_hit = out.kind == core::AccessKind::Hit &&
                              !out.structStalled;
            bool predicted_hit = pred.predictAndTrain(rec.pc, actual_hit);
            if (predicted_hit && !actual_hit && pred_penalty) {
                res.stallCycles += pred_penalty;
                now += pred_penalty;
            }
        }
    }

    cache.drainAll();
    // `now` is the cycle the last access became free (its issue cycle
    // plus any blocking service), except it runs one cycle late: the
    // loop treats the initial now=0 as "last access issued at 0" when
    // no instruction has issued yet. The late start shifts every
    // access by the same constant, so stalls and miss classification
    // are unaffected; the end-of-run cycle count must deduct it. The
    // trailing non-memory instructions retire one per cycle.
    res.cycles = now + (trace.instructions - gap_sum);
    res.cache = cache.stats();
    return res;
}

} // namespace nbl::exec
