#include "exec/lane_replay.hh"

#include <algorithm>
#include <memory>

#include "cpu/cpu.hh"
#include "exec/stepping.hh"
#include "util/log.hh"

namespace nbl::exec
{

namespace
{

/** Scoreboard / fill-time rows (destLinear numbering of registers). */
constexpr size_t kRegs = isa::numIntRegs + isa::numFpRegs;

/**
 * The struct-of-arrays lane file: every per-lane scalar of the
 * single-issue replay step (cpu::Cpu::replayRunDecoded's locals and
 * the members it mirrors), one array element per lane. `issued` is
 * kept as 0/1 words so the issue-slot advance `cycle += issued` is a
 * branch-free add.
 */
struct LaneFile
{
    explicit LaneFile(size_t lanes)
        : cycle(lanes, 0), issued(lanes, 0), pending(lanes, 0),
          depStall(lanes, 0), structStall(lanes, 0),
          blockStall(lanes, 0), predStall(lanes, 0),
          predLoads(lanes, 0), predHits(lanes, 0), predOver(lanes, 0),
          predUnder(lanes, 0), predRecovered(lanes, 0),
          ssrFwd(lanes, 0), ssrSaved(lanes, 0),
          ready(kRegs * lanes, 0), fillReady(kRegs * lanes, 0)
    {
    }

    std::vector<uint64_t> cycle;
    std::vector<uint64_t> issued;
    /** Conservative superset of registers whose scoreboard entry may
     *  lie in the future (cpu::Cpu::replay_pending_, per lane). */
    std::vector<uint64_t> pending;
    std::vector<uint64_t> depStall;
    std::vector<uint64_t> structStall;
    std::vector<uint64_t> blockStall;
    /** Stall-reduction policy counters (cpu::CpuStats pred/ssr
     *  fields), all zero for lanes with a defaulted policy. */
    std::vector<uint64_t> predStall;
    std::vector<uint64_t> predLoads;
    std::vector<uint64_t> predHits;
    std::vector<uint64_t> predOver;
    std::vector<uint64_t> predUnder;
    std::vector<uint64_t> predRecovered;
    std::vector<uint64_t> ssrFwd;
    std::vector<uint64_t> ssrSaved;
    /** Scoreboard, register-major: ready[reg * lanes + lane]. */
    std::vector<uint64_t> ready;
    /** Per-register load fill times (the WAW interlock state; see
     *  docs/MODEL.md), register-major like `ready`. */
    std::vector<uint64_t> fillReady;
};

} // namespace

bool
laneReplayable(const MachineConfig &config)
{
    return config.issueWidth == 1 && !config.perfectCache;
}

std::vector<RunOutput>
replayLanes(const isa::Program &program, const EventTrace &trace,
            const std::vector<MachineConfig> &configs)
{
    const size_t nl = configs.size();
    std::vector<RunOutput> outs(nl);
    if (nl == 0)
        return outs;
    program.validate();

    // Every lane must see the same dynamic prefix: lockstep has one
    // stream cursor, so one budget. The per-config cap check matches
    // replayExact's.
    const uint64_t budget =
        std::min(trace.instructions, configs[0].maxInstructions);
    for (const MachineConfig &mc : configs) {
        if (!laneReplayable(mc))
            fatal("replayLanes: config is not lane-replayable "
                  "(issue width %u, perfect=%d)",
                  mc.issueWidth, int(mc.perfectCache));
        if (trace.hitInstructionCap &&
            mc.maxInstructions > trace.instructions) {
            fatal("replayLanes: trace of %s was capped at %llu "
                  "instructions but a lane asks for up to %llu; "
                  "re-record the trace under the larger cap",
                  program.name().c_str(),
                  static_cast<unsigned long long>(trace.instructions),
                  static_cast<unsigned long long>(mc.maxInstructions));
        }
        if (std::min(trace.instructions, mc.maxInstructions) != budget)
            fatal("replayLanes: lanes disagree on the effective "
                  "instruction budget (%llu vs %llu); group lanes by "
                  "budget before batching",
                  static_cast<unsigned long long>(budget),
                  static_cast<unsigned long long>(std::min(
                      trace.instructions, mc.maxInstructions)));
        nbl::policy::validateStallPolicy(mc.stallPolicy);
    }

    std::vector<std::unique_ptr<core::NonblockingCache>> caches;
    caches.reserve(nl);
    for (const MachineConfig &mc : configs) {
        caches.push_back(std::make_unique<core::NonblockingCache>(
            mc.geometry, mc.policy, mc.memory, mc.fillWritePorts,
            mc.hierarchy));
        caches.back()->configurePrefetch(mc.stallPolicy.prefetch);
    }

    // Per-lane stall-reduction policy state (all inert for defaulted
    // policies). Lanes in one batch may carry different policies: the
    // dynamic stream is shared, the policy reaction is per lane.
    std::vector<nbl::policy::LevelPredictor> preds;
    preds.reserve(nl);
    std::vector<uint8_t> pred_on(nl, 0);
    std::vector<uint32_t> pred_penalty(nl, 0);
    std::vector<uint32_t> ssr_window(nl, 0);
    for (size_t l = 0; l < nl; ++l) {
        const nbl::policy::StallPolicyConfig &sp =
            configs[l].stallPolicy;
        preds.emplace_back(sp.predictor);
        pred_on[l] =
            sp.predictor.mode != nbl::policy::PredictorMode::Off;
        pred_penalty[l] = sp.predictor.penalty;
        // Lanes are single-issue by contract (laneReplayable), so no
        // width gate is needed here, unlike configureStallPolicy().
        ssr_window[l] = sp.ssr.window;
    }

    const std::vector<cpu::ReplayDecoded> decoded =
        cpu::decodeForReplay(program);
    const cpu::ReplayDecoded *code = decoded.data();

    // Static run tables: for each pc, the maximal straight-line span
    // of consecutive *non-memory* instructions starting there, with
    // the OR of their source masks and (non-r0) destination bits and
    // the branch count over the span. When no lane's pending mask
    // intersects gate[pc], no instruction of the span can stall and
    // none of its scoreboard writes is observable (a non-pending
    // register's entry is never in the future, so max() against it is
    // a no-op — the engine's own invariant), which lets the whole
    // span advance every lane in O(1): cycle += span length. Index n
    // is an all-zero sentinel so `run_br[pc] - run_br[pc + L]` counts
    // branches over a clipped span in every case.
    const size_t n = decoded.size();
    std::vector<uint32_t> run_len(n + 1, 0);
    std::vector<uint64_t> run_gate(n + 1, 0);
    std::vector<uint32_t> run_br(n + 1, 0);
    for (size_t pc = n; pc-- > 0;) {
        const cpu::ReplayDecoded &in = decoded[pc];
        if (in.flags & cpu::kReplayMem)
            continue; // Memory op: span of length 0 (all zeros).
        run_len[pc] = run_len[pc + 1] + 1;
        run_gate[pc] = run_gate[pc + 1] | in.useMask;
        if ((in.flags & cpu::kReplayHasDst) && in.dstLin != 0)
            run_gate[pc] |= uint64_t{1} << in.dstLin;
        run_br[pc] =
            run_br[pc + 1] + ((in.flags / cpu::kReplayBranch) & 1);
    }

    LaneFile f(nl);
    uint64_t *const cycle = f.cycle.data();
    uint64_t *const issued = f.issued.data();
    uint64_t *const pending = f.pending.data();
    uint64_t *const ready = f.ready.data();
    uint64_t *const fill = f.fillReady.data();

    // Or of every lane's pending mask: when an instruction's source
    // mask misses it, no lane can stall on a source and the whole
    // batch takes the branch-free fast path. Conservative superset,
    // re-tightened whenever the slow paths rescan the lanes.
    uint64_t any_pending = 0;

    // The dynamic stream is identical for every lane, so the stream
    // counters are shared, accumulated once per instruction.
    uint64_t loads = 0, stores = 0, branches = 0;

    const uint64_t *ea = trace.effAddrs.data();
    uint64_t remaining = budget;
    for (size_t s = 0; remaining > 0; ++s) {
        const uint32_t base = trace.segStart[s];
        const uint32_t len =
            uint32_t(std::min<uint64_t>(trace.segLen[s], remaining));
        for (uint32_t i = 0; i < len;) {
            const uint32_t pc = base + i;
            // Fused span: every lane advances over the whole
            // straight-line non-memory run at once.
            uint32_t span = run_len[pc];
            if (span != 0 && (any_pending & run_gate[pc]) == 0) {
                span = std::min(span, len - i);
                branches += run_br[pc] - run_br[pc + span];
                const uint64_t adv = span - 1;
                for (size_t l = 0; l < nl; ++l) {
                    cycle[l] += issued[l] + adv;
                    issued[l] = 1;
                }
                i += span;
                continue;
            }
            const cpu::ReplayDecoded in = code[pc];
            ++i;
            loads += in.flags & cpu::kReplayLoad;
            stores += (in.flags / cpu::kReplayStore) & 1;
            branches += (in.flags / cpu::kReplayBranch) & 1;
            if (in.flags & cpu::kReplayMem) {
                const uint64_t addr = *ea++;
                const bool is_load = in.flags & cpu::kReplayLoad;
                uint64_t *const rdst = ready + size_t(in.dstLin) * nl;
                uint64_t *const fdst = fill + size_t(in.dstLin) * nl;
                const uint64_t dbit = uint64_t{1} << in.dstLin;
                uint64_t np = 0;
                for (size_t l = 0; l < nl; ++l) {
                    // Mirror of replayRunDecoded's memory-op step.
                    uint64_t c = cycle[l] + issued[l];
                    uint64_t p = pending[l];
                    // The WAW fill floor is part of the forwarding
                    // base: SSR forwards operand values, never an
                    // in-flight fill of the destination.
                    uint64_t base = c;
                    if (is_load)
                        base = std::max(base, fdst[l]);
                    uint64_t earliest = base;
                    if (p & in.useMask) {
                        if (in.ns >= 1)
                            earliest = std::max(
                                earliest,
                                ready[size_t(in.src1Lin) * nl + l]);
                        if (in.ns >= 2)
                            earliest = std::max(
                                earliest,
                                ready[size_t(in.src2Lin) * nl + l]);
                        if (ssr_window[l] != 0 && earliest > base &&
                            earliest - base <= ssr_window[l]) {
                            // Forwarded: the scoreboard entries of the
                            // consulted sources still lie in the
                            // future, so the pending bits must stay
                            // set (keeps any_pending conservative).
                            ++f.ssrFwd[l];
                            f.ssrSaved[l] += earliest - base;
                            earliest = base;
                        } else {
                            p &= ~in.useMask;
                        }
                    }
                    if (earliest > c) {
                        f.depStall[l] += earliest - c;
                        c = earliest;
                    }
                    core::AccessOutcome out =
                        is_load ? caches[l]->load(addr, in.size, c,
                                                  in.dstLin)
                                : caches[l]->store(addr, in.size, c);
                    if (out.issueCycle > c) {
                        f.structStall[l] += out.issueCycle - c;
                        c = out.issueCycle;
                    }
                    uint64_t iss = 1;
                    if (is_load) {
                        if (in.dstLin != 0)
                            rdst[l] = out.dataReady;
                        fdst[l] = out.dataReady;
                        if (out.dataReady > c + 1)
                            p |= dbit;
                    }
                    if (out.procFreeAt > c + 1) {
                        f.blockStall[l] += out.procFreeAt - (c + 1);
                        c = out.procFreeAt;
                        iss = 0;
                    }
                    if (is_load && pred_on[l]) {
                        const bool actual_hit =
                            out.kind == core::AccessKind::Hit &&
                            !out.structStalled;
                        const bool predicted_hit =
                            preds[l].predictAndTrain(pc, actual_hit);
                        ++f.predLoads[l];
                        if (predicted_hit == actual_hit) {
                            ++f.predHits[l];
                            if (!actual_hit)
                                f.predRecovered[l] += pred_penalty[l];
                        } else if (predicted_hit) {
                            ++f.predUnder[l];
                            if (pred_penalty[l] != 0) {
                                f.predStall[l] += pred_penalty[l];
                                if (iss) {
                                    c = c + 1 + pred_penalty[l];
                                    iss = 0;
                                } else {
                                    c += pred_penalty[l];
                                }
                            }
                        } else {
                            ++f.predOver[l];
                        }
                    }
                    cycle[l] = c;
                    issued[l] = iss;
                    pending[l] = p;
                    np |= p;
                }
                any_pending = np;
            } else {
                if (any_pending & in.useMask) {
                    // Some lane may stall on a source: consult the
                    // scoreboard lane by lane (rare).
                    const bool write_dst =
                        (in.flags & cpu::kReplayHasDst) &&
                        in.dstLin != 0;
                    uint64_t *const rdst =
                        ready + size_t(in.dstLin) * nl;
                    uint64_t np = 0;
                    for (size_t l = 0; l < nl; ++l) {
                        uint64_t c = cycle[l] + issued[l];
                        uint64_t p = pending[l];
                        if (p & in.useMask) {
                            uint64_t earliest = c;
                            if (in.ns >= 1)
                                earliest = std::max(
                                    earliest,
                                    ready[size_t(in.src1Lin) * nl + l]);
                            if (in.ns >= 2)
                                earliest = std::max(
                                    earliest,
                                    ready[size_t(in.src2Lin) * nl + l]);
                            if (ssr_window[l] != 0 && earliest > c &&
                                earliest - c <= ssr_window[l]) {
                                // Forwarded: keep the pending bits
                                // (see the memory-op step).
                                ++f.ssrFwd[l];
                                f.ssrSaved[l] += earliest - c;
                            } else {
                                p &= ~in.useMask;
                                if (earliest > c) {
                                    f.depStall[l] += earliest - c;
                                    c = earliest;
                                }
                            }
                        }
                        if (write_dst)
                            rdst[l] = c + 1;
                        cycle[l] = c;
                        issued[l] = 1;
                        pending[l] = p;
                        np |= p;
                    }
                    any_pending = np;
                } else if ((in.flags & cpu::kReplayHasDst) &&
                           in.dstLin != 0 &&
                           (any_pending &
                            (uint64_t{1} << in.dstLin)) != 0) {
                    // The destination has an in-flight fill in some
                    // lane, so this write is observable (a later
                    // consult of the still-pending register reads
                    // it): no lane can stall, but every lane must
                    // take the ALU write.
                    uint64_t *const rdst =
                        ready + size_t(in.dstLin) * nl;
                    for (size_t l = 0; l < nl; ++l) {
                        const uint64_t c = cycle[l] + issued[l];
                        cycle[l] = c;
                        rdst[l] = c + 1;
                        issued[l] = 1;
                    }
                } else {
                    // No source can stall and the destination is not
                    // pending anywhere, so the scoreboard write is
                    // dead (see the run-table comment): branch-free
                    // advance only.
                    for (size_t l = 0; l < nl; ++l) {
                        cycle[l] += issued[l];
                        issued[l] = 1;
                    }
                }
            }
        }
        remaining -= len;
    }

    const bool hit_cap =
        budget < trace.instructions || trace.hitInstructionCap;
    for (size_t l = 0; l < nl; ++l) {
        if (hit_cap)
            warnInstructionCap(program, configs[l].maxInstructions);
        cpu::CpuStats cs;
        cs.instructions = budget;
        cs.loads = loads;
        cs.stores = stores;
        cs.branches = branches;
        cs.depStallCycles = f.depStall[l];
        cs.structStallCycles = f.structStall[l];
        cs.blockStallCycles = f.blockStall[l];
        cs.predStallCycles = f.predStall[l];
        cs.predLoads = f.predLoads[l];
        cs.predHits = f.predHits[l];
        cs.predOver = f.predOver[l];
        cs.predUnder = f.predUnder[l];
        cs.predRecovered = f.predRecovered[l];
        cs.ssrForwarded = f.ssrFwd[l];
        cs.ssrSavedCycles = f.ssrSaved[l];
        cs.cycles = f.cycle[l] + (f.issued[l] ? 1 : 0);
        outs[l] = detail::finishRun(cs, caches[l].get(), hit_cap,
                                    Provenance::LaneReplay);
        outs[l].policyActive = !configs[l].stallPolicy.defaulted();
    }
    return outs;
}

} // namespace nbl::exec
