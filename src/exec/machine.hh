/**
 * @file
 * Machine: assembles interpreter + CPU timing model + data cache and
 * runs a program to completion. This is the library's main entry point
 * for timing simulation.
 */

#ifndef NBL_EXEC_MACHINE_HH
#define NBL_EXEC_MACHINE_HH

#include <cstdint>

#include "core/flight_tracker.hh"
#include "core/hierarchy.hh"
#include "core/memory_level.hh"
#include "core/nonblocking_cache.hh"
#include "core/policy.hh"
#include "cpu/stats.hh"
#include "core/mshr_file.hh"
#include "isa/program.hh"
#include "mem/cache_geometry.hh"
#include "mem/main_memory.hh"
#include "mem/sparse_memory.hh"
#include "mem/tag_array.hh"
#include "mem/write_buffer.hh"
#include "policy/stall_policy.hh"

namespace nbl::cpu
{
class Cpu;
}

namespace nbl::exec
{

/** Machine configuration for one run. */
struct MachineConfig
{
    mem::CacheGeometry geometry{8 * 1024, 32, 1}; ///< Baseline 8KB DM.
    core::MshrPolicy policy;
    mem::MainMemory memory;    ///< Default pipelined-bus latencies.
    /** Memory side between L1 and main memory (lower cache levels,
     *  channel bandwidths); default = the paper's degenerate chain. */
    core::HierarchyConfig hierarchy;
    unsigned issueWidth = 1;
    bool perfectCache = false; ///< All accesses hit (ideal run).
    /** Register-file write ports serving fills; 0 = unlimited (the
     *  paper's baseline multi-ported register file). */
    unsigned fillWritePorts = 0;
    uint64_t maxInstructions = 200'000'000;
    /** Stall-reduction policies (level prediction, spare-MSHR
     *  prefetch, SSR forwarding); default = inert, bit-identical
     *  timing (docs/MODEL.md, "Stall-reduction policies"). Fully
     *  qualified: the `policy` member above shadows the namespace. */
    nbl::policy::StallPolicyConfig stallPolicy;
};

/** How a RunOutput was produced (metadata, never a counter). Model
 *  marks analytically predicted (never simulated) results synthesized
 *  by the sweep planner (harness/sweep_planner.hh). */
enum class Provenance { Exec, Replay, LaneReplay, Model };

/** Name used in exported snapshots ("exec" / "replay" / "lane" /
 *  "model"). */
const char *provenanceName(Provenance p);

/** Everything measured during one run. */
struct RunOutput
{
    cpu::CpuStats cpu;
    core::CacheStats cache;
    core::FlightTracker tracker;
    core::MshrFileStats mshr;
    mem::WriteBuffer::Stats wbuf;
    mem::TagArray::Stats tags;
    uint64_t memFetches = 0; ///< Fetches seen by main memory.
    /** Per-level counters of the hierarchy below L1 (inactive over
     *  the degenerate chain). */
    core::HierarchySnapshot hier;
    unsigned maxInflightMisses = 0;
    unsigned maxInflightFetches = 0;
    unsigned missPenalty = 0;
    bool hitInstructionCap = false;
    Provenance provenance = Provenance::Exec;
    /** Prefetcher counters (all zero when the policy is defaulted). */
    nbl::policy::PrefetchStats pf;
    /** A non-default stall policy produced this run: pred.* / pf.* /
     *  ssr.* namespaces are registered in snapshots. */
    bool policyActive = false;

    double mcpi() const { return cpu.mcpi(); }
};

/**
 * Run program on a machine configured by config, with data as the
 * initial architectural memory (modified in place).
 */
RunOutput run(const isa::Program &program, mem::SparseMemory &data,
              const MachineConfig &config);

namespace detail
{

/**
 * Shared tail of exec::run and exec::replayExact: finish the CPU,
 * drain the cache, finalize the flight tracker, and collect every
 * RunOutput field. Keeping it in one place is what lets the replay
 * engine (exec/event_trace.hh) claim bit-identity by construction.
 */
RunOutput finishRun(cpu::Cpu &cpu, core::NonblockingCache *cache,
                    bool hit_instruction_cap, Provenance provenance);

/**
 * Same tail for engines that assemble cpu::CpuStats themselves
 * (exec/lane_replay.hh keeps per-lane CPU state in arrays, not in a
 * cpu::Cpu). `cpu` must already be finished: cycles final.
 */
RunOutput finishRun(const cpu::CpuStats &cpu,
                    core::NonblockingCache *cache,
                    bool hit_instruction_cap, Provenance provenance);

} // namespace detail

} // namespace nbl::exec

#endif // NBL_EXEC_MACHINE_HH
