#include "exec/machine.hh"

#include <algorithm>
#include <memory>

#include "cpu/cpu.hh"
#include "exec/interpreter.hh"
#include "exec/stepping.hh"
#include "util/log.hh"

namespace nbl::exec
{

const char *
provenanceName(Provenance p)
{
    switch (p) {
    case Provenance::Replay:
        return "replay";
    case Provenance::LaneReplay:
        return "lane";
    case Provenance::Model:
        return "model";
    case Provenance::Exec:
        break;
    }
    return "exec";
}

namespace detail
{

RunOutput
finishRun(cpu::Cpu &cpu, core::NonblockingCache *cache,
          bool hit_instruction_cap, Provenance provenance)
{
    cpu.finish();
    return finishRun(cpu.stats(), cache, hit_instruction_cap,
                     provenance);
}

RunOutput
finishRun(const cpu::CpuStats &cpu, core::NonblockingCache *cache,
          bool hit_instruction_cap, Provenance provenance)
{
    RunOutput out;
    out.hitInstructionCap = hit_instruction_cap;
    out.provenance = provenance;
    out.cpu = cpu;

    if (cache) {
        uint64_t last_fill = cache->drainAll();
        uint64_t end = std::max<uint64_t>(out.cpu.cycles, last_fill);
        cache->finalizeTracker(end);
        out.cache = cache->stats();
        out.tracker = cache->tracker();
        out.mshr = cache->mshrStats();
        out.wbuf = cache->writeBuffer().stats();
        out.tags = cache->tags().stats();
        out.memFetches = cache->memory().fetches();
        out.hier = cache->hierarchyStats();
        out.maxInflightMisses = cache->maxInflightMisses();
        out.maxInflightFetches = cache->maxInflightFetches();
        out.missPenalty = cache->missPenalty();
        out.pf = cache->prefetchStats();
    }
    return out;
}

} // namespace detail

RunOutput
run(const isa::Program &program, mem::SparseMemory &data,
    const MachineConfig &config)
{
    program.validate();

    policy::validateStallPolicy(config.stallPolicy);

    std::unique_ptr<core::NonblockingCache> cache;
    if (!config.perfectCache) {
        cache = std::make_unique<core::NonblockingCache>(
            config.geometry, config.policy, config.memory,
            config.fillWritePorts, config.hierarchy);
        cache->configurePrefetch(config.stallPolicy.prefetch);
    }
    cpu::Cpu cpu(cache.get(), config.issueWidth, config.perfectCache);
    cpu.configureStallPolicy(config.stallPolicy);
    Interpreter interp(program, data);

    bool hit_cap = stepProgram(
        program, interp, config.maxInstructions,
        [&](const isa::Instr &in, size_t pc, const StepResult &step) {
            cpu.onInstr(in, step.effAddr, pc);
        });

    RunOutput out = detail::finishRun(cpu, cache.get(), hit_cap,
                                      Provenance::Exec);
    out.policyActive = !config.stallPolicy.defaulted();
    return out;
}

} // namespace nbl::exec
