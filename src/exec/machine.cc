#include "exec/machine.hh"

#include <algorithm>
#include <memory>

#include "cpu/cpu.hh"
#include "exec/interpreter.hh"
#include "util/log.hh"

namespace nbl::exec
{

RunOutput
run(const isa::Program &program, mem::SparseMemory &data,
    const MachineConfig &config)
{
    program.validate();

    std::unique_ptr<core::NonblockingCache> cache;
    if (!config.perfectCache) {
        cache = std::make_unique<core::NonblockingCache>(
            config.geometry, config.policy, config.memory,
            config.fillWritePorts);
    }
    cpu::Cpu cpu(cache.get(), config.issueWidth, config.perfectCache);
    Interpreter interp(program, data);

    RunOutput out;
    size_t pc = 0;
    uint64_t executed = 0;
    const uint64_t max_instructions = config.maxInstructions;
    while (true) {
        if (executed >= max_instructions) {
            out.hitInstructionCap = true;
            warn("program %s hit the %llu-instruction cap",
                 program.name().c_str(),
                 static_cast<unsigned long long>(max_instructions));
            break;
        }
        // Fetch once; the interpreter and the timing model share it.
        const isa::Instr &in = program.at(pc);
        StepResult step = interp.step(in, pc);
        cpu.onInstr(in, step.effAddr);
        ++executed;
        if (step.halted)
            break;
        pc = step.nextPc;
    }

    cpu.finish();
    out.cpu = cpu.stats();

    if (cache) {
        uint64_t last_fill = cache->drainAll();
        uint64_t end = std::max<uint64_t>(out.cpu.cycles, last_fill);
        cache->finalizeTracker(end);
        out.cache = cache->stats();
        out.tracker = cache->tracker();
        out.maxInflightMisses = cache->maxInflightMisses();
        out.maxInflightFetches = cache->maxInflightFetches();
        out.missPenalty = cache->missPenalty();
    }
    return out;
}

} // namespace nbl::exec
