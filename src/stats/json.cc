#include "stats/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/log.hh"

namespace nbl::stats
{

bool
Json::boolean() const
{
    if (kind_ != Kind::Bool)
        fatal("json: not a boolean");
    return bool_;
}

double
Json::number() const
{
    if (kind_ != Kind::Number)
        fatal("json: not a number");
    return std::strtod(num_.c_str(), nullptr);
}

uint64_t
Json::u64() const
{
    if (kind_ != Kind::Number)
        fatal("json: not a number");
    if (num_.find_first_of(".eE") != std::string::npos ||
        (!num_.empty() && num_[0] == '-'))
        fatal("json: '%s' is not an unsigned integer", num_.c_str());
    return std::strtoull(num_.c_str(), nullptr, 10);
}

const std::string &
Json::str() const
{
    if (kind_ != Kind::String)
        fatal("json: not a string");
    return str_;
}

const std::vector<Json> &
Json::array() const
{
    if (kind_ != Kind::Array)
        fatal("json: not an array");
    return arr_;
}

const std::map<std::string, Json> &
Json::object() const
{
    if (kind_ != Kind::Object)
        fatal("json: not an object");
    return obj_;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *v = find(key);
    if (!v)
        fatal("json: missing key '%s'", key.c_str());
    return *v;
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        fatal("json: not an object (looking up '%s')", key.c_str());
    auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
}

namespace
{

/** Internal parse-failure signal; never escapes this file. */
struct JsonParseError
{
    std::string message;
};

} // namespace

/** Strict recursive-descent parser over the supported subset. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    Json
    document()
    {
        Json v = value();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        throw JsonParseError{
            strfmt("json: %s at offset %zu", what, pos_)};
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() && std::isspace(uint8_t(s_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= s_.size())
            fail("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consume(const char *lit)
    {
        size_t n = 0;
        while (lit[n])
            ++n;
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    std::string
    stringToken()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            char e = s_[pos_++];
            switch (e) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'n': out.push_back('\n'); break;
            case 't': out.push_back('\t'); break;
            case 'r': out.push_back('\r'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'u': {
                // Only the escapes jsonQuote emits (ASCII control
                // codes) are supported.
                if (pos_ + 4 > s_.size())
                    fail("bad \\u escape");
                unsigned code = unsigned(
                    std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16));
                pos_ += 4;
                if (code > 0x7f)
                    fail("non-ASCII \\u escape unsupported");
                out.push_back(char(code));
                break;
            }
            default: fail("unknown escape");
            }
        }
    }

    Json
    value()
    {
        char c = peek();
        Json v;
        if (c == '{') {
            ++pos_;
            v.kind_ = Json::Kind::Object;
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            while (true) {
                std::string key = stringToken();
                expect(':');
                v.obj_.emplace(std::move(key), value());
                char d = peek();
                ++pos_;
                if (d == '}')
                    return v;
                if (d != ',')
                    fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos_;
            v.kind_ = Json::Kind::Array;
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            while (true) {
                v.arr_.push_back(value());
                char d = peek();
                ++pos_;
                if (d == ']')
                    return v;
                if (d != ',')
                    fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            v.kind_ = Json::Kind::String;
            v.str_ = stringToken();
            return v;
        }
        if (consume("true")) {
            v.kind_ = Json::Kind::Bool;
            v.bool_ = true;
            return v;
        }
        if (consume("false")) {
            v.kind_ = Json::Kind::Bool;
            v.bool_ = false;
            return v;
        }
        if (consume("null"))
            return v;

        // Number: copy the token verbatim.
        size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(uint8_t(s_[pos_])) || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' ||
                s_[pos_] == '+'))
            ++pos_;
        if (pos_ == start)
            fail("unexpected character");
        v.kind_ = Json::Kind::Number;
        v.num_ = s_.substr(start, pos_ - start);
        return v;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

Json
Json::parse(const std::string &text)
{
    // Machine-written artifacts: malformed input is a usage error.
    try {
        return JsonParser(text).document();
    } catch (const JsonParseError &e) {
        fatal("%s", e.message.c_str());
    }
}

std::optional<Json>
Json::tryParse(const std::string &text, std::string *error)
{
    try {
        return JsonParser(text).document();
    } catch (const JsonParseError &e) {
        if (error)
            *error = e.message;
        return std::nullopt;
    }
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (uint8_t(c) < 0x20)
                out += strfmt("\\u%04x", unsigned(uint8_t(c)));
            else
                out.push_back(c);
        }
    }
    out.push_back('"');
    return out;
}

std::string
jsonDouble(double v)
{
    // JSON has no NaN/Infinity literals; a bare `nan` would make the
    // whole document unparseable. Non-finite values (derived counters
    // with a zero denominator) serialize as null and parse back as
    // quiet NaN (snapshotFromJson).
    if (!std::isfinite(v))
        return "null";
    return strfmt("%.17g", v);
}

} // namespace nbl::stats
