/**
 * @file
 * Stats registry: named scalar and histogram counters with JSON/CSV
 * serialization.
 *
 * Design rule (docs/OBSERVABILITY.md): the model's hot paths keep
 * their plain `uint64_t` members and increment them directly — the
 * registry never sits on an increment path. A component registers
 * *pointers* to those members once (typically right after a run
 * finishes, over the value structs a RunOutput carries), and
 * `Registry::snapshot()` materializes a self-contained, copyable
 * `Snapshot` by reading them. Snapshots serialize to JSON (round-trip
 * exact, see parseSnapshot) and CSV, and are what the bench emitter
 * (bench/bench_common.hh) and tools/nbl_report exchange.
 *
 * Every counter carries its unit and the paper section (WRL 94/3) it
 * maps to, so artifacts are self-describing.
 */

#ifndef NBL_STATS_REGISTRY_HH
#define NBL_STATS_REGISTRY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nbl::stats
{

/** One named scalar counter, snapshotted. */
struct Scalar
{
    std::string name;
    uint64_t value = 0;
    std::string unit;
    std::string section; ///< Paper section / figure the counter maps to.
};

/** One histogram bucket: a label (level, count, ...) and its weight. */
struct Bucket
{
    std::string label;
    uint64_t count = 0;
};

/** One named histogram, snapshotted. */
struct Histogram
{
    std::string name;
    std::string unit;    ///< Unit of the bucket *weights*.
    std::string section;
    std::vector<Bucket> buckets;

    /** Sum of all bucket weights. */
    uint64_t total() const;
    /** Weight of the bucket labelled `label` (0 if absent). */
    uint64_t at(const std::string &label) const;
};

/** One named derived metric (a ratio/rate computed from counters). */
struct Derived
{
    std::string name;
    double value = 0.0;
    std::string section;
};

/**
 * A self-contained set of counters from one run: value type, cheap to
 * copy relative to a simulation, ordered deterministically (by
 * registration order).
 */
struct Snapshot
{
    /** How the run was produced: "exec" (execution-driven), "replay"
     *  (exact event-trace replay), or "lane" (batched lockstep
     *  replay). Metadata, not a counter: countersEqual() ignores it —
     *  the bit-identity properties say all provenances must agree on
     *  everything else. tools/nbl-report surfaces it so an engine
     *  switch stays visible in drift-gate output. */
    std::string provenance;

    std::vector<Scalar> scalars;
    std::vector<Histogram> histograms;
    std::vector<Derived> derived;

    /** Scalar value by name; fatal if the name is unknown. */
    uint64_t value(const std::string &name) const;
    const Scalar *findScalar(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;
    /** Histogram by name; fatal if unknown. */
    const Histogram &histogram(const std::string &name) const;
    /** Derived metric by name; fatal if unknown. */
    double derivedValue(const std::string &name) const;

    /**
     * All counters (scalars, histograms, derived) equal, provenance
     * ignored. Derived doubles are compared bit-for-bit: they are
     * computed from equal integers by identical code, so equality is
     * exact, not approximate. NaN matches NaN (a zero-denominator
     * ratio survives the JSON round-trip as null -> NaN).
     */
    bool countersEqual(const Snapshot &other) const;

    /** Serialize as a JSON object (schema in docs/OBSERVABILITY.md). */
    std::string toJson(int indent = 0) const;

    /**
     * Serialize as CSV rows `kind,name,label,value,unit,section`
     * (no header; see csvHeader()).
     */
    std::string toCsv() const;
    static std::string csvHeader();
};

/** Parse a Snapshot back from Snapshot::toJson() output. */
Snapshot parseSnapshot(const std::string &json);

/**
 * Quote one CSV field per RFC 4180: returned verbatim unless it
 * contains a comma, double quote, CR, or LF, in which case it is
 * wrapped in double quotes with embedded quotes doubled.
 */
std::string csvField(const std::string &s);

/** Forward declaration (stats/json.hh). */
class Json;

/** Build a Snapshot from an already-parsed JSON object. */
Snapshot snapshotFromJson(const Json &obj);

/**
 * Collects registered counters and materializes Snapshots.
 *
 * Registration order is preserved and becomes the serialization
 * order. The registry borrows the pointed-to counters; they must
 * outlive the snapshot() call (they need not outlive the Snapshot).
 */
class Registry
{
  public:
    /** Register a live counter by pointer (read at snapshot time). */
    void scalar(const std::string &name, const uint64_t *counter,
                const std::string &unit, const std::string &section);

    /** Register a point-in-time value (already-computed scalar). */
    void scalarValue(const std::string &name, uint64_t value,
                     const std::string &unit,
                     const std::string &section);

    /** Start a histogram; subsequent bucket() calls append to it. */
    void histogram(const std::string &name, const std::string &unit,
                   const std::string &section);

    /** Append a bucket to the most recently started histogram. */
    void bucket(const std::string &label, uint64_t count);

    /** Register a derived metric (computed double). */
    void derived(const std::string &name, double value,
                 const std::string &section);

    void setProvenance(const std::string &p) { provenance_ = p; }

    Snapshot snapshot() const;

  private:
    struct Entry
    {
        Scalar scalar;             ///< Name/unit/section (+ value if fixed).
        const uint64_t *live = nullptr; ///< Read at snapshot time if set.
    };

    std::string provenance_;
    std::vector<Entry> entries_;
    std::vector<Histogram> histograms_;
    std::vector<Derived> derived_;
};

} // namespace nbl::stats

#endif // NBL_STATS_REGISTRY_HH
