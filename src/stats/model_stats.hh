/**
 * @file
 * The model.* stats namespace: one Snapshot summarizing a planned
 * sweep (harness/sweep_planner.hh) -- point counts, pruning decisions,
 * and predicted-vs-simulated error -- in the same nbl-stats-v1 shape
 * every other counter uses, so tools/nbl-report can load, gate, and
 * render it like any run snapshot.
 */

#ifndef NBL_STATS_MODEL_STATS_HH
#define NBL_STATS_MODEL_STATS_HH

#include <cstdint>

#include "stats/registry.hh"

namespace nbl::stats
{

/** Plain-number summary of one planned sweep. */
struct ModelSummary
{
    uint64_t points = 0;        ///< Distinct experiment points.
    uint64_t simulated = 0;     ///< Points actually simulated.
    uint64_t pruned = 0;        ///< Points served from the model.
    uint64_t unsupported = 0;   ///< Outside the model (simulated).
    uint64_t exactPoints = 0;   ///< Provably exact predictions.
    uint64_t profiles = 0;      ///< Distinct characterizations.
    uint64_t boundViolations = 0;
    uint64_t substitutionMismatches = 0;
    double maxAbsErr = 0.0;     ///< Max |predicted - simulated| MCPI.
    double meanAbsErr = 0.0;

    double
    simFraction() const
    {
        return points ? double(simulated) / double(points) : 0.0;
    }
};

/** Materialize the summary as a model.* Snapshot. */
Snapshot modelSnapshot(const ModelSummary &summary);

/** Rebuild the summary from a model.* Snapshot (fatal on a snapshot
 *  that does not carry the model.* counters). */
ModelSummary modelSummaryFromSnapshot(const Snapshot &snap);

} // namespace nbl::stats

#endif // NBL_STATS_MODEL_STATS_HH
