#include "stats/model_stats.hh"

namespace nbl::stats
{

namespace
{
constexpr const char *kSection = "model (PAPERS: analytical pruning)";
}

Snapshot
modelSnapshot(const ModelSummary &s)
{
    Registry r;
    r.setProvenance("model");
    r.scalarValue("model.points", s.points, "points", kSection);
    r.scalarValue("model.simulated", s.simulated, "points", kSection);
    r.scalarValue("model.pruned", s.pruned, "points", kSection);
    r.scalarValue("model.unsupported", s.unsupported, "points",
                  kSection);
    r.scalarValue("model.exact_points", s.exactPoints, "points",
                  kSection);
    r.scalarValue("model.profiles", s.profiles, "characterizations",
                  kSection);
    r.scalarValue("model.bound_violations", s.boundViolations,
                  "points", kSection);
    r.scalarValue("model.substitution_mismatches",
                  s.substitutionMismatches, "points", kSection);
    r.derived("model.sim_fraction", s.simFraction(), kSection);
    r.derived("model.max_abs_err", s.maxAbsErr, kSection);
    r.derived("model.mean_abs_err", s.meanAbsErr, kSection);
    return r.snapshot();
}

ModelSummary
modelSummaryFromSnapshot(const Snapshot &snap)
{
    ModelSummary s;
    s.points = snap.value("model.points");
    s.simulated = snap.value("model.simulated");
    s.pruned = snap.value("model.pruned");
    s.unsupported = snap.value("model.unsupported");
    s.exactPoints = snap.value("model.exact_points");
    s.profiles = snap.value("model.profiles");
    s.boundViolations = snap.value("model.bound_violations");
    s.substitutionMismatches =
        snap.value("model.substitution_mismatches");
    s.maxAbsErr = snap.derivedValue("model.max_abs_err");
    s.meanAbsErr = snap.derivedValue("model.mean_abs_err");
    return s;
}

} // namespace nbl::stats
