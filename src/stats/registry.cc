#include "stats/registry.hh"

#include <cmath>

#include "stats/json.hh"
#include "util/log.hh"

namespace nbl::stats
{

uint64_t
Histogram::total() const
{
    uint64_t t = 0;
    for (const Bucket &b : buckets)
        t += b.count;
    return t;
}

uint64_t
Histogram::at(const std::string &label) const
{
    for (const Bucket &b : buckets)
        if (b.label == label)
            return b.count;
    return 0;
}

const Scalar *
Snapshot::findScalar(const std::string &name) const
{
    for (const Scalar &s : scalars)
        if (s.name == name)
            return &s;
    return nullptr;
}

uint64_t
Snapshot::value(const std::string &name) const
{
    const Scalar *s = findScalar(name);
    if (!s)
        fatal("stats: unknown scalar '%s'", name.c_str());
    return s->value;
}

const Histogram *
Snapshot::findHistogram(const std::string &name) const
{
    for (const Histogram &h : histograms)
        if (h.name == name)
            return &h;
    return nullptr;
}

const Histogram &
Snapshot::histogram(const std::string &name) const
{
    const Histogram *h = findHistogram(name);
    if (!h)
        fatal("stats: unknown histogram '%s'", name.c_str());
    return *h;
}

double
Snapshot::derivedValue(const std::string &name) const
{
    for (const Derived &d : derived)
        if (d.name == name)
            return d.value;
    fatal("stats: unknown derived metric '%s'", name.c_str());
}

bool
Snapshot::countersEqual(const Snapshot &other) const
{
    if (scalars.size() != other.scalars.size() ||
        histograms.size() != other.histograms.size() ||
        derived.size() != other.derived.size())
        return false;
    for (size_t i = 0; i < scalars.size(); ++i) {
        if (scalars[i].name != other.scalars[i].name ||
            scalars[i].value != other.scalars[i].value)
            return false;
    }
    for (size_t i = 0; i < histograms.size(); ++i) {
        const Histogram &a = histograms[i];
        const Histogram &b = other.histograms[i];
        if (a.name != b.name || a.buckets.size() != b.buckets.size())
            return false;
        for (size_t j = 0; j < a.buckets.size(); ++j) {
            if (a.buckets[j].label != b.buckets[j].label ||
                a.buckets[j].count != b.buckets[j].count)
                return false;
        }
    }
    for (size_t i = 0; i < derived.size(); ++i) {
        if (derived[i].name != other.derived[i].name)
            return false;
        // Exact-equal doubles, except that any two non-finite values
        // match: JSON collapses NaN and both infinities to null (which
        // parses back as NaN), so a snapshot must still
        // countersEqual() its own round trip.
        double a = derived[i].value, b = other.derived[i].value;
        if (a != b && !(!std::isfinite(a) && !std::isfinite(b)))
            return false;
    }
    return true;
}

namespace
{

/** indent*level spaces, or empty in compact mode (indent == 0). */
std::string
pad(int indent, int level)
{
    return indent ? std::string(size_t(indent) * size_t(level), ' ')
                  : std::string();
}

} // namespace

std::string
Snapshot::toJson(int indent) const
{
    const char *nl = indent ? "\n" : "";
    std::string out = "{";
    out += nl;
    out += pad(indent, 1) + "\"provenance\": " + jsonQuote(provenance) +
           "," + nl;

    out += pad(indent, 1) + "\"scalars\": [";
    out += nl;
    for (size_t i = 0; i < scalars.size(); ++i) {
        const Scalar &s = scalars[i];
        out += pad(indent, 2) +
               strfmt("{\"name\": %s, \"value\": %llu, \"unit\": %s, "
                      "\"section\": %s}%s",
                      jsonQuote(s.name).c_str(),
                      static_cast<unsigned long long>(s.value),
                      jsonQuote(s.unit).c_str(),
                      jsonQuote(s.section).c_str(),
                      i + 1 < scalars.size() ? "," : "") +
               nl;
    }
    out += pad(indent, 1) + "],";
    out += nl;

    out += pad(indent, 1) + "\"histograms\": [";
    out += nl;
    for (size_t i = 0; i < histograms.size(); ++i) {
        const Histogram &h = histograms[i];
        out += pad(indent, 2) +
               strfmt("{\"name\": %s, \"unit\": %s, \"section\": %s, "
                      "\"buckets\": [",
                      jsonQuote(h.name).c_str(),
                      jsonQuote(h.unit).c_str(),
                      jsonQuote(h.section).c_str());
        for (size_t j = 0; j < h.buckets.size(); ++j) {
            out += strfmt("[%s, %llu]%s",
                          jsonQuote(h.buckets[j].label).c_str(),
                          static_cast<unsigned long long>(
                              h.buckets[j].count),
                          j + 1 < h.buckets.size() ? ", " : "");
        }
        out += "]}";
        out += i + 1 < histograms.size() ? "," : "";
        out += nl;
    }
    out += pad(indent, 1) + "],";
    out += nl;

    out += pad(indent, 1) + "\"derived\": [";
    out += nl;
    for (size_t i = 0; i < derived.size(); ++i) {
        const Derived &d = derived[i];
        out += pad(indent, 2) +
               strfmt("{\"name\": %s, \"value\": %s, \"section\": %s}%s",
                      jsonQuote(d.name).c_str(),
                      jsonDouble(d.value).c_str(),
                      jsonQuote(d.section).c_str(),
                      i + 1 < derived.size() ? "," : "") +
               nl;
    }
    out += pad(indent, 1) + "]";
    out += nl;
    out += pad(indent, 0) + "}";
    return out;
}

std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\r\n") == std::string::npos)
        return s;
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        if (c == '"')
            out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

std::string
Snapshot::csvHeader()
{
    return "kind,name,label,value,unit,section\n";
}

std::string
Snapshot::toCsv() const
{
    std::string out;
    for (const Scalar &s : scalars) {
        out += strfmt("scalar,%s,,%llu,%s,%s\n",
                      csvField(s.name).c_str(),
                      static_cast<unsigned long long>(s.value),
                      csvField(s.unit).c_str(),
                      csvField(s.section).c_str());
    }
    for (const Histogram &h : histograms) {
        for (const Bucket &b : h.buckets) {
            out += strfmt("histogram,%s,%s,%llu,%s,%s\n",
                          csvField(h.name).c_str(),
                          csvField(b.label).c_str(),
                          static_cast<unsigned long long>(b.count),
                          csvField(h.unit).c_str(),
                          csvField(h.section).c_str());
        }
    }
    for (const Derived &d : derived) {
        out += strfmt("derived,%s,,%s,,%s\n", csvField(d.name).c_str(),
                      jsonDouble(d.value).c_str(),
                      csvField(d.section).c_str());
    }
    return out;
}

Snapshot
snapshotFromJson(const Json &obj)
{
    Snapshot snap;
    snap.provenance = obj.at("provenance").str();
    for (const Json &s : obj.at("scalars").array()) {
        snap.scalars.push_back({s.at("name").str(), s.at("value").u64(),
                                s.at("unit").str(),
                                s.at("section").str()});
    }
    for (const Json &h : obj.at("histograms").array()) {
        Histogram hist;
        hist.name = h.at("name").str();
        hist.unit = h.at("unit").str();
        hist.section = h.at("section").str();
        for (const Json &b : h.at("buckets").array()) {
            const auto &pair = b.array();
            if (pair.size() != 2)
                fatal("stats: histogram bucket is not a [label, count] "
                      "pair");
            hist.buckets.push_back({pair[0].str(), pair[1].u64()});
        }
        snap.histograms.push_back(std::move(hist));
    }
    for (const Json &d : obj.at("derived").array()) {
        const Json &v = d.at("value");
        double value = v.isNull() ? std::nan("") : v.number();
        snap.derived.push_back(
            {d.at("name").str(), value, d.at("section").str()});
    }
    return snap;
}

Snapshot
parseSnapshot(const std::string &json)
{
    return snapshotFromJson(Json::parse(json));
}

void
Registry::scalar(const std::string &name, const uint64_t *counter,
                 const std::string &unit, const std::string &section)
{
    Entry e;
    e.scalar = {name, 0, unit, section};
    e.live = counter;
    entries_.push_back(std::move(e));
}

void
Registry::scalarValue(const std::string &name, uint64_t value,
                      const std::string &unit,
                      const std::string &section)
{
    Entry e;
    e.scalar = {name, value, unit, section};
    entries_.push_back(std::move(e));
}

void
Registry::histogram(const std::string &name, const std::string &unit,
                    const std::string &section)
{
    Histogram h;
    h.name = name;
    h.unit = unit;
    h.section = section;
    histograms_.push_back(std::move(h));
}

void
Registry::bucket(const std::string &label, uint64_t count)
{
    if (histograms_.empty())
        fatal("stats: bucket() before histogram()");
    histograms_.back().buckets.push_back({label, count});
}

void
Registry::derived(const std::string &name, double value,
                  const std::string &section)
{
    derived_.push_back({name, value, section});
}

Snapshot
Registry::snapshot() const
{
    Snapshot snap;
    snap.provenance = provenance_;
    snap.scalars.reserve(entries_.size());
    for (const Entry &e : entries_) {
        Scalar s = e.scalar;
        if (e.live)
            s.value = *e.live;
        snap.scalars.push_back(std::move(s));
    }
    snap.histograms = histograms_;
    snap.derived = derived_;
    return snap;
}

} // namespace nbl::stats
