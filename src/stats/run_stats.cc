#include "stats/run_stats.hh"

#include "exec/machine.hh"

namespace nbl::stats
{

void
registerRun(Registry &r, const exec::RunOutput &out)
{
    r.setProvenance(exec::provenanceName(out.provenance));

    r.scalarValue("run.miss_penalty", out.missPenalty, "cycles",
                  "s3.1");
    r.scalarValue("run.max_inflight_misses", out.maxInflightMisses,
                  "misses", "s4.1 (fig06)");
    r.scalarValue("run.max_inflight_fetches", out.maxInflightFetches,
                  "fetches", "s4.1 (fig06)");
    r.scalarValue("run.hit_instruction_cap",
                  out.hitInstructionCap ? 1 : 0, "flag", "s3.1");
    r.scalar("mem.fetches", &out.memFetches, "fetches", "s3.1");

    out.cpu.registerStats(r);
    out.cache.registerStats(r);
    if (out.hier.active) {
        // Per-level namespaces exist only when a hierarchy is
        // configured, so degenerate snapshots stay byte-identical.
        for (size_t i = 0; i < out.hier.levels.size(); ++i) {
            out.hier.levels[i].registerStats(
                r, static_cast<unsigned>(i) + 2);
        }
        r.scalar("chan.mem.sends", &out.hier.memChannel.sends,
                 "requests", "hierarchy");
        r.scalar("chan.mem.delayed_sends",
                 &out.hier.memChannel.delayedSends, "requests",
                 "hierarchy");
        r.scalar("chan.mem.queue_cycles",
                 &out.hier.memChannel.queueCycles, "cycles",
                 "hierarchy");
    }
    if (out.policyActive) {
        // Stall-reduction policy namespaces exist only when a
        // non-default policy ran, so policy-off snapshots stay
        // byte-identical (same pattern as the hierarchy block above).
        r.scalar("pred.loads", &out.cpu.predLoads, "loads", "policy");
        r.scalar("pred.hits", &out.cpu.predHits, "predictions",
                 "policy");
        r.scalar("pred.overpredictions", &out.cpu.predOver,
                 "predictions", "policy");
        r.scalar("pred.underpredictions", &out.cpu.predUnder,
                 "predictions", "policy");
        r.scalar("pred.stall_cycles", &out.cpu.predStallCycles,
                 "cycles", "policy");
        r.scalar("pred.cycles_recovered", &out.cpu.predRecovered,
                 "cycles", "policy");
        r.derived("pred.accuracy",
                  out.cpu.predLoads ? double(out.cpu.predHits) /
                                          double(out.cpu.predLoads)
                                    : 0.0,
                  "policy");
        r.scalar("ssr.forwarded", &out.cpu.ssrForwarded, "issues",
                 "policy");
        r.scalar("ssr.saved_cycles", &out.cpu.ssrSavedCycles,
                 "cycles", "policy");
        r.scalar("pf.issued", &out.pf.issued, "prefetches", "policy");
        r.scalar("pf.useful", &out.pf.useful, "prefetches", "policy");
        r.scalar("pf.mshr_denied", &out.pf.mshrDenied, "prefetches",
                 "policy");
        r.scalar("pf.evict_harm", &out.pf.evictHarm, "prefetches",
                 "policy");
    }
    out.mshr.registerStats(r);
    out.wbuf.registerStats(r);
    out.tags.registerStats(r);
    out.tracker.registerStats(r);

    r.derived("cpu.mcpi", out.cpu.mcpi(), "s3.1");
    r.derived("cpu.ipc",
              out.cpu.cycles ? double(out.cpu.instructions) /
                                   double(out.cpu.cycles)
                             : 0.0,
              "s3.1");
    r.derived("cpu.structural_share", out.cpu.structuralFraction(),
              "s4.1 (fig07)");
    r.derived("cache.load_miss_rate", out.cache.loadMissRate(), "s3.1");
    r.derived("cache.secondary_miss_rate",
              out.cache.secondaryMissRate(), "s4.1");
    r.derived("flight.misses.busy_fraction",
              out.tracker.misses.fractionAbove0(), "s4.1 (fig06)");
    r.derived("flight.fetches.busy_fraction",
              out.tracker.fetches.fractionAbove0(), "s4.1 (fig06)");
}

Snapshot
snapshotOfRun(const exec::RunOutput &out)
{
    Registry r;
    registerRun(r, out);
    return r.snapshot();
}

} // namespace nbl::stats
