/**
 * @file
 * Minimal JSON reader/writer for the stats subsystem.
 *
 * The observability layer (docs/OBSERVABILITY.md) emits and ingests
 * its own artifacts only, so this is deliberately a small, strict
 * subset of JSON: objects, arrays, strings, numbers, booleans, null.
 * Numbers keep their raw token so uint64 counters round-trip exactly
 * (doubles are printed with %.17g, which also round-trips).
 *
 * No external dependency: the container bakes in no JSON library, and
 * the repo's rule is to stub rather than add one.
 */

#ifndef NBL_STATS_JSON_HH
#define NBL_STATS_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace nbl::stats
{

/** One parsed JSON value (small DOM). */
class Json
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool boolean() const;
    /** The number as a double (fatal if not a number). */
    double number() const;
    /** The number as an exact uint64 (fatal if not an integer). */
    uint64_t u64() const;
    const std::string &str() const;

    const std::vector<Json> &array() const;
    /** All object members, keyed by name (fatal if not an object).
     *  The service layer iterates this to reject unknown request
     *  fields instead of silently ignoring typos. */
    const std::map<std::string, Json> &object() const;
    /** Object member, fatal if missing. */
    const Json &at(const std::string &key) const;
    /** Object member or nullptr. */
    const Json *find(const std::string &key) const;

    /**
     * Parse a complete JSON document. Fatal (util/log.hh) on any
     * syntax error: artifacts are machine-written, so malformed input
     * is a usage error, not a recoverable condition.
     */
    static Json parse(const std::string &text);

    /**
     * Non-fatal parse for input that crosses a trust boundary (the
     * service layer reads frames from arbitrary clients). Returns
     * nullopt on any syntax error, with a one-line description in
     * *error when given.
     */
    static std::optional<Json> tryParse(const std::string &text,
                                        std::string *error = nullptr);

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    /** Raw number token (exact integer round-trip). */
    std::string num_;
    std::string str_;
    std::vector<Json> arr_;
    std::map<std::string, Json> obj_;
};

/** Escape a string for embedding in a JSON document (adds quotes). */
std::string jsonQuote(const std::string &s);

/**
 * Format a double so it parses back to the identical value. JSON has
 * no non-finite literals, so NaN/inf serialize as "null"; the stats
 * reader maps null back to quiet NaN.
 */
std::string jsonDouble(double v);

} // namespace nbl::stats

#endif // NBL_STATS_JSON_HH
