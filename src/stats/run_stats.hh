/**
 * @file
 * Bridge from a finished run to the stats registry: build a complete
 * Snapshot from the value structs an exec::RunOutput carries.
 *
 * This is the one place that knows the full counter inventory of a
 * run (docs/OBSERVABILITY.md lists it). Components own their
 * registerStats methods; this file only sequences them and adds the
 * run-level scalars and derived metrics.
 */

#ifndef NBL_STATS_RUN_STATS_HH
#define NBL_STATS_RUN_STATS_HH

#include "stats/registry.hh"

namespace nbl::exec
{
struct RunOutput;
}

namespace nbl::stats
{

/**
 * Register every counter of `out` into `r` (run.* scalars, cpu.*,
 * cache.*, mshr.*, wbuf.*, tag.*, flight.* histograms, derived
 * rates) and set the provenance. The registry borrows `out`; call
 * snapshot() before it goes away.
 */
void registerRun(Registry &r, const exec::RunOutput &out);

/** One-shot: registerRun into a fresh registry and snapshot it. */
Snapshot snapshotOfRun(const exec::RunOutput &out);

} // namespace nbl::stats

#endif // NBL_STATS_RUN_STATS_HH
