#include "core/flight_tracker.hh"

#include <algorithm>

#include "stats/registry.hh"
#include "util/log.hh"

namespace nbl::core
{

void
LevelHistogram::registerStats(stats::Registry &r,
                              const std::string &name,
                              const std::string &section) const
{
    r.histogram(name, "cycles", section);
    unsigned top = std::min(max_seen_, maxLevel);
    for (unsigned l = 0; l <= top; ++l) {
        r.bucket(l == maxLevel ? std::to_string(l) + "+"
                               : std::to_string(l),
                 cycles_at_[l]);
    }
    r.scalarValue(name + ".max", max_seen_, "in flight", section);
}

void
FlightTracker::registerStats(stats::Registry &r) const
{
    misses.registerStats(r, "flight.misses", "s4.1 (fig06)");
    fetches.registerStats(r, "flight.fetches", "s4.1 (fig06)");
}

void
LevelHistogram::set(unsigned level, uint64_t now)
{
    if (finalized_)
        panic("LevelHistogram changed after finalize");
    if (now < last_time_)
        panic("LevelHistogram fed non-monotone time (%llu < %llu)",
              static_cast<unsigned long long>(now),
              static_cast<unsigned long long>(last_time_));
    unsigned bucket = level_ > maxLevel ? maxLevel : level_;
    cycles_at_[bucket] += now - last_time_;
    last_time_ = now;
    level_ = level;
    if (level_ > max_seen_)
        max_seen_ = level_;
}

void
LevelHistogram::decrement(uint64_t now)
{
    if (level_ == 0)
        panic("LevelHistogram decrement below zero");
    set(level_ - 1, now);
}

void
LevelHistogram::finalize(uint64_t end_cycle)
{
    set(level_, end_cycle);
    total_ = 0;
    for (uint64_t c : cycles_at_)
        total_ += c;
    finalized_ = true;
}

uint64_t
LevelHistogram::cyclesAt(unsigned level) const
{
    if (level > maxLevel)
        level = maxLevel;
    return cycles_at_[level];
}

uint64_t
LevelHistogram::cyclesAbove0() const
{
    uint64_t c = 0;
    for (unsigned l = 1; l <= maxLevel; ++l)
        c += cycles_at_[l];
    return c;
}

double
LevelHistogram::fractionAbove0() const
{
    if (total_ == 0)
        return 0.0;
    return double(cyclesAbove0()) / double(total_);
}

double
LevelHistogram::fractionOfBusyAt(unsigned n) const
{
    uint64_t busy = cyclesAbove0();
    if (busy == 0 || n == 0)
        return 0.0;
    return double(cyclesAt(n)) / double(busy);
}

double
LevelHistogram::fractionOfBusyAtLeast(unsigned n) const
{
    uint64_t busy = cyclesAbove0();
    if (busy == 0 || n == 0)
        return 0.0;
    uint64_t c = 0;
    for (unsigned l = n; l <= maxLevel; ++l)
        c += cycles_at_[l];
    return double(c) / double(busy);
}

} // namespace nbl::core
