#include "core/policy.hh"

#include "util/log.hh"

namespace nbl::core
{

const char *
configLabel(ConfigName name)
{
    switch (name) {
      case ConfigName::Mc0Wma: return "mc=0 +wma";
      case ConfigName::Mc0: return "mc=0";
      case ConfigName::Mc1: return "mc=1";
      case ConfigName::Mc2: return "mc=2";
      case ConfigName::Fc1: return "fc=1";
      case ConfigName::Fc2: return "fc=2";
      case ConfigName::Fs1: return "fs=1";
      case ConfigName::Fs2: return "fs=2";
      case ConfigName::InCache: return "in-cache";
      case ConfigName::NoRestrict: return "no restrict";
    }
    panic("bad ConfigName");
}

const ConfigName allConfigNames[10] = {
    ConfigName::Mc0Wma, ConfigName::Mc0,  ConfigName::Mc1,
    ConfigName::Mc2,    ConfigName::Fc1,  ConfigName::Fc2,
    ConfigName::Fs1,    ConfigName::Fs2,  ConfigName::InCache,
    ConfigName::NoRestrict,
};

bool
parseConfigLabel(const std::string &label, ConfigName *out)
{
    for (ConfigName name : allConfigNames) {
        if (label == configLabel(name)) {
            *out = name;
            return true;
        }
    }
    return false;
}

MshrPolicy
makePolicy(ConfigName name)
{
    MshrPolicy p;
    p.label = configLabel(name);
    switch (name) {
      case ConfigName::Mc0Wma:
        p.mode = CacheMode::BlockingWMA;
        p.numMshrs = 0;
        break;
      case ConfigName::Mc0:
        p.mode = CacheMode::Blocking;
        p.numMshrs = 0;
        break;
      case ConfigName::Mc1:
        // One single-destination MSHR: any second miss (even to the
        // block being fetched) stalls -- hit under miss.
        p.maxMisses = 1;
        p.missesPerSubBlock = -1;
        break;
      case ConfigName::Mc2:
        // Two single-destination MSHRs: two misses in flight, one or
        // both of which can be primary (paper section 4).
        p.maxMisses = 2;
        p.missesPerSubBlock = -1;
        break;
      case ConfigName::Fc1:
        p.numMshrs = 1;
        p.subBlocks = 1;
        p.missesPerSubBlock = -1;
        break;
      case ConfigName::Fc2:
        p.numMshrs = 2;
        p.subBlocks = 1;
        p.missesPerSubBlock = -1;
        break;
      case ConfigName::Fs1:
        p.numMshrs = -1;
        p.missesPerSubBlock = -1;
        p.fetchesPerSet = 1;
        break;
      case ConfigName::Fs2:
        p.numMshrs = -1;
        p.missesPerSubBlock = -1;
        p.fetchesPerSet = 2;
        break;
      case ConfigName::InCache:
        p.numMshrs = -1;
        p.missesPerSubBlock = -1;
        p.fetchesPerSet = 1;          // one way in the baseline cache
        p.fetchesPerSetTracksWays = true;
        // Reading the in-line MSHR information back through an
        // 8-byte cache port when the fill arrives (section 2.3).
        p.fillExtraCycles = 3;
        break;
      case ConfigName::NoRestrict:
        p.mode = CacheMode::Inverted;
        p.numMshrs = -1;
        p.missesPerSubBlock = -1;
        break;
    }
    return p;
}

MshrPolicy
makeFieldPolicy(int sub_blocks, int misses_per_sub)
{
    MshrPolicy p;
    p.numMshrs = -1;
    p.subBlocks = sub_blocks;
    p.missesPerSubBlock = misses_per_sub;
    if (misses_per_sub < 0) {
        p.label = "unlimited fields";
    } else {
        p.label = strfmt("sb=%d mps=%d", sub_blocks, misses_per_sub);
    }
    return p;
}

} // namespace nbl::core
