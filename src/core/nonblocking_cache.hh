/**
 * @file
 * Lockup-free data cache with configurable miss-handling restrictions.
 *
 * Implements the paper's memory-side model: a write-through,
 * write-around (no-write-allocate) data cache in front of a fully
 * pipelined memory, with a free write buffer. Loads that miss are
 * classified as primary, secondary, or structural-stall misses
 * according to the configured MshrPolicy (paper section 2):
 *
 *  - primary: no outstanding fetch for the block and a fetch can be
 *    started; the miss allocates an MSHR;
 *  - secondary: the block is already being fetched and a destination
 *    field is available; the miss merges into the existing fetch;
 *  - structural-stall: resources are exhausted; the processor stalls
 *    until the blocking fetch completes, then the access retries.
 *
 * Blocking modes (mc=0 and mc=0 +wma) stall the processor for the full
 * miss penalty on every load miss (and, with +wma, write miss).
 *
 * Timing is tracked without a global event queue: the memory side
 * below L1 (core/memory_level.hh) answers every fetch with its
 * arrival cycle at request time, computed recursively down the
 * configured hierarchy chain. Over the paper's degenerate chain --
 * no lower levels, fully pipelined channels -- that arrival is the
 * constant `issue + 1 + penalty`, known at issue, and fetches
 * complete in issue order. Over a deeper chain fills return out of
 * order (an L2 hit lands before an older L2 miss), so the MSHR pool
 * is kept as a completion-sorted fill-event stream. Either way,
 * completed fetches are applied lazily, in completion order, before
 * each access.
 */

#ifndef NBL_CORE_NONBLOCKING_CACHE_HH
#define NBL_CORE_NONBLOCKING_CACHE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_set>

#include "core/flight_tracker.hh"
#include "policy/stall_policy.hh"
#include "isa/reg.hh"
#include "core/hierarchy.hh"
#include "core/inverted_mshr.hh"
#include "core/memory_level.hh"
#include "core/mshr_file.hh"
#include "core/policy.hh"
#include "mem/cache_geometry.hh"
#include "mem/main_memory.hh"
#include "mem/tag_array.hh"
#include "mem/write_buffer.hh"

namespace nbl::stats
{
class Registry;
}

namespace nbl::core
{

/** How an access resolved (stores report Hit or Primary=missed). */
enum class AccessKind { Hit, Primary, Secondary };

/** Timing result of one cache access. */
struct AccessOutcome
{
    /** Cycle the access actually performed (> request on a
     *  structural stall). */
    uint64_t issueCycle;
    /** Loads: cycle the destination register becomes valid. */
    uint64_t dataReady;
    /** Earliest cycle the processor may issue the next instruction
     *  (> issueCycle + 1 only for blocking modes). */
    uint64_t procFreeAt;
    AccessKind kind;
    /** The access experienced a structural-hazard stall. */
    bool structStalled;
};

/** Aggregate counters kept by the cache. */
struct CacheStats
{
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t loadHits = 0;
    uint64_t storeHits = 0;
    uint64_t primaryMisses = 0;     ///< Load primary misses.
    uint64_t secondaryMisses = 0;   ///< Load secondary misses.
    uint64_t structStallMisses = 0; ///< Loads that structurally stalled.
    uint64_t structStallCycles = 0;
    uint64_t storeMisses = 0;
    /** Write-allocate stores merged into / starting fetches. */
    uint64_t storePrimaryMisses = 0;
    uint64_t storeSecondaryMisses = 0;
    uint64_t storeStructStalls = 0;
    uint64_t fetches = 0;           ///< Line fetches issued to memory.
    uint64_t evictions = 0;
    /**
     * Destination-field utilization: each completed fetch is bucketed
     * by the number of destination fields it carried when it filled
     * (bucket 8 = 8-or-more). The paper's section-4.1 argument for
     * small destination counts is exactly the claim that this
     * distribution concentrates at 1. Sums to `fetches` (blocking-mode
     * fetches land in bucket 1 for loads, 0 for write-allocate).
     */
    std::array<uint64_t, 9> destsPerFetch{};

    /** Register the counters (docs/OBSERVABILITY.md). */
    void registerStats(stats::Registry &r) const;

    /** Primary + secondary load miss rate (per load). */
    double
    loadMissRate() const
    {
        return loads ? double(primaryMisses + secondaryMisses) /
                           double(loads)
                     : 0.0;
    }

    double
    secondaryMissRate() const
    {
        return loads ? double(secondaryMisses) / double(loads) : 0.0;
    }
};

/** The lockup-free data cache. */
class NonblockingCache
{
  public:
    /**
     * @param geom Cache geometry (this is the L1).
     * @param policy Miss-handling restrictions.
     * @param memory Main-memory timing model (the bottom of the
     *        chain).
     * @param fill_write_ports Register-file write ports available to
     *        a returning fill: the paper's baseline fills all waiting
     *        destinations simultaneously (0 = unlimited, section
     *        3.1); a finite value staggers destinations by
     *        1/ports cycles each (the section-6 correction).
     * @param hierarchy The memory side between this cache and main
     *        memory: lower cache levels and channel bandwidths. The
     *        default (degenerate) hierarchy is the paper's model --
     *        L1 in front of fully pipelined constant-penalty memory.
     */
    NonblockingCache(const mem::CacheGeometry &geom,
                     const MshrPolicy &policy,
                     const mem::MainMemory &memory,
                     unsigned fill_write_ports = 0,
                     const HierarchyConfig &hierarchy = {});

    /**
     * Perform a load at cycle now.
     * @param addr Virtual = physical address of the access.
     * @param size Access size in bytes.
     * @param now Cycle the processor presents the access.
     * @param dest_linear Linear destination-register number.
     *
     * Inline fast path for the dominant case: nothing in flight (so
     * expiry is a no-op) and the line is resident. Hits resolve
     * identically on blocking and lockup-free policies, so no policy
     * check is needed here; everything else takes loadSlow(), which
     * is the unabridged original.
     */
    AccessOutcome
    load(uint64_t addr, unsigned size, uint64_t now,
         unsigned dest_linear)
    {
        // With the prefetcher active every hit must run the
        // pf-resident bookkeeping, so the fast path is bypassed.
        if (!pf_active_ && mshrs_.activeFetches() == 0 &&
            tags_.lookup(addr)) {
            ++stats_.loads;
            ++stats_.loadHits;
            return {now, now + 1, now + 1, AccessKind::Hit, false};
        }
        return loadSlow(addr, size, now, dest_linear);
    }

    /** Perform a store at cycle now (write-through, write-around). */
    AccessOutcome store(uint64_t addr, unsigned size, uint64_t now);

    /**
     * Apply every fill that has completed by cycle now. Inline
     * fast-return when nothing is in flight: this guards every
     * load/store, and on hit-dominated streams the fetch FIFO is
     * almost always empty.
     */
    void
    expireUpTo(uint64_t now)
    {
        if (mshrs_.activeFetches() != 0)
            expireSlow(now);
    }

    /**
     * Drain all outstanding fetches (end of run).
     * @return the completion cycle of the last fetch, or 0 if none.
     */
    uint64_t drainAll();

    /** Finish the in-flight histograms; call after drainAll(). */
    void finalizeTracker(uint64_t end_cycle) { tracker_.finalize(end_cycle); }

    /**
     * Attach the spare-MSHR prefetcher (docs/MODEL.md,
     * "Stall-reduction policies"). Prefetch candidates are issued on
     * demand primary misses and admitted only when
     * MshrFile::canAllocate() has a spare slot -- a denied candidate
     * is counted (pf.mshr_denied), never stalled. A defaulted config
     * leaves every access path bit-identical. Blocking modes never
     * start pool fetches, so the prefetcher is inert there.
     */
    void
    configurePrefetch(const nbl::policy::PrefetchConfig &cfg)
    {
        pf_cfg_ = cfg;
        pf_active_ = cfg.mode != nbl::policy::PrefetchMode::Off;
    }

    const nbl::policy::PrefetchStats &
    prefetchStats() const
    {
        return pf_;
    }

    const CacheStats &stats() const { return stats_; }
    const FlightTracker &tracker() const { return tracker_; }
    const mem::TagArray &tags() const { return tags_; }
    const MshrPolicy &policy() const { return policy_; }
    const mem::CacheGeometry &geometry() const { return geom_; }
    const mem::WriteBuffer &writeBuffer() const { return wbuf_; }
    const mem::MainMemory &memory() const { return memory_; }
    const MshrFileStats &mshrStats() const { return mshrs_.stats(); }

    /** Peak in-flight misses/fetches over the run. */
    unsigned maxInflightMisses() const;
    unsigned maxInflightFetches() const { return mshrs_.maxFetches(); }

    /**
     * Raw main-memory penalty in cycles for this cache's line size
     * (the full miss latency over a degenerate chain; a lower bound
     * on it over a hierarchy, where hits below are faster and
     * queueing/waits below are slower).
     */
    unsigned
    missPenalty() const
    {
        return memory_.penalty(geom_.lineBytes());
    }

    /** Per-level counters of the hierarchy below L1 (empty/inactive
     *  over a degenerate chain). */
    HierarchySnapshot hierarchyStats() const;

  private:
    /** expireUpTo() with the fetch FIFO known non-empty. */
    void expireSlow(uint64_t now);

    /** load() when the inline hit fast path does not apply. */
    AccessOutcome loadSlow(uint64_t addr, unsigned size, uint64_t now,
                           unsigned dest_linear);

    AccessOutcome blockingLoad(uint64_t addr, uint64_t now);
    AccessOutcome blockingFill(uint64_t addr, uint64_t now, bool is_load);

    /**
     * The shared miss path: classify the access as secondary /
     * primary / structural-stall against the MSHR resources, merge or
     * start the fetch, and return the outcome. Used by loads and by
     * write-allocate store misses (is_store selects the counters).
     */
    AccessOutcome missPath(uint64_t addr, unsigned size, uint64_t t,
                           unsigned dest_linear, bool is_store,
                           bool stalled);

    /** Non-blocking write-allocate store miss (StoreMode::WriteAllocate). */
    AccessOutcome storeAllocate(uint64_t addr, unsigned size,
                                uint64_t now);

    /** Data-ready time of the k-th destination of a fill. */
    uint64_t
    destReadyAt(uint64_t complete, unsigned k) const
    {
        if (fill_write_ports_ == 0)
            return complete;
        return complete + k / fill_write_ports_;
    }

    /** Account a structural stall from *t until `until`; retries. */
    void structStall(uint64_t &t, uint64_t until, bool &stalled);

    /** Issue prefetch candidates after a demand primary miss to blk
     *  at cycle t (pf_active_ only). */
    void issuePrefetches(uint64_t blk, uint64_t t);

    mem::CacheGeometry geom_;
    MshrPolicy policy_;
    mem::MainMemory memory_;
    /** The channel from this cache into the level below. */
    Channel down_;
    /** Borrowed views into next_'s chain, L2 first (stats). Declared
     *  before next_: buildHierarchy fills it while next_ is built. */
    std::vector<CacheLevel *> level_views_;
    /** The memory side below L1 (bottoms out in memory_). */
    std::unique_ptr<MemoryLevel> next_;
    bool hierarchy_active_ = false;
    mem::TagArray tags_;
    MshrFile mshrs_;
    std::unique_ptr<InvertedMshr> inverted_;
    mem::WriteBuffer wbuf_;
    FlightTracker tracker_;
    CacheStats stats_;
    uint64_t last_drain_cycle_ = 0;
    unsigned fill_write_ports_;
    /** Spare-MSHR prefetcher state (configurePrefetch()). Fully
     *  qualified: the policy() accessor shadows the namespace. */
    nbl::policy::PrefetchConfig pf_cfg_;
    bool pf_active_ = false;
    nbl::policy::PrefetchStats pf_;
    /** Prefetch fetches in flight never yet demanded. */
    std::unordered_set<uint64_t> pf_inflight_;
    /** Prefetched lines resident but never yet demanded. */
    std::unordered_set<uint64_t> pf_resident_;
    /** Blocks evicted by an undemanded prefetch fill. */
    std::unordered_set<uint64_t> pf_victims_;
    /** Stride detector: last demand-miss block and its delta. */
    uint64_t pf_last_blk_ = 0;
    int64_t pf_last_delta_ = 0;
    bool pf_have_last_ = false;
    /** Write-allocate stores: cycle each write-buffer destination
     *  entry frees (its fetch's fill time). */
    std::array<uint64_t, isa::numWriteBufferDests> wb_dest_free_{};
};

} // namespace nbl::core

#endif // NBL_CORE_NONBLOCKING_CACHE_HH
