/**
 * @file
 * Level-agnostic memory hierarchy below L1.
 *
 * The L1 cache (core/nonblocking_cache.hh) no longer computes a
 * fetch's completion cycle from a hard-wired constant penalty; it asks
 * the MemoryLevel below it. A chain of MemoryLevels models
 * L1 -> L2 -> ... -> memory:
 *
 *  - MainMemoryLevel wraps mem::MainMemory: a fully pipelined,
 *    constant-penalty bottom level (the paper's entire memory side);
 *  - CacheLevel is a lockup-free lower cache (L2, L3, ...) with its
 *    own geometry, line size and MSHR organization (the same
 *    MshrFile/TagArray components as L1);
 *  - Channel models the hop between adjacent levels with a finite
 *    initiation interval: requests that arrive faster than one per
 *    interval queue, and the queueing delay is returned upward as
 *    increased fill latency.
 *
 * Timing stays analytical -- there is no global event queue. A level
 * answers fetchLine() with the cycle the data arrives back at the
 * requester, computed recursively down the chain at request time.
 * What changes relative to the single-level model is that completion
 * cycles are no longer monotone in issue order: a request that hits
 * in L2 completes before an older one that missed, so the MSHR pools
 * above keep a completion-sorted fill-event stream (core/mshr_file.hh)
 * instead of a FIFO. Back-pressure arises naturally: when a lower
 * level's MSHRs or a channel slot are exhausted, the request's
 * effective start is pushed back, the upper level's fill arrives
 * later, its own MSHR is held longer -- and the processor finally
 * sees structural stalls whose root cause sits levels below
 * (docs/MODEL.md, "Memory hierarchy").
 *
 * A degenerate chain (no cache levels, all channel intervals zero) is
 * exactly `arrival = ready + memory.penalty(bytes)`: the constant-
 * penalty model, bit for bit.
 */

#ifndef NBL_CORE_MEMORY_LEVEL_HH
#define NBL_CORE_MEMORY_LEVEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/hierarchy.hh"
#include "core/mshr_file.hh"
#include "mem/cache_geometry.hh"
#include "mem/main_memory.hh"
#include "mem/tag_array.hh"

namespace nbl::stats
{
class Registry;
}

namespace nbl::core
{

/** Counters kept by one inter-level channel. */
struct ChannelStats
{
    uint64_t sends = 0;        ///< Requests carried.
    uint64_t delayedSends = 0; ///< Sends that waited for a slot.
    uint64_t queueCycles = 0;  ///< Total cycles spent waiting.
};

/**
 * The hop between two adjacent levels: a pipe that can accept one
 * request every `interval` cycles. Interval 0 is fully pipelined
 * (send() is the identity on time), the degenerate configuration.
 */
class Channel
{
  public:
    explicit Channel(unsigned interval) : interval_(interval) {}

    /** Admit a request that is ready at cycle `ready`; returns the
     *  cycle it actually enters the channel. */
    uint64_t
    send(uint64_t ready)
    {
        ++stats_.sends;
        if (interval_ == 0)
            return ready;
        uint64_t t = ready;
        if (next_free_ > t) {
            ++stats_.delayedSends;
            stats_.queueCycles += next_free_ - t;
            t = next_free_;
        }
        next_free_ = t + interval_;
        return t;
    }

    unsigned interval() const { return interval_; }
    const ChannelStats &stats() const { return stats_; }

  private:
    unsigned interval_;
    uint64_t next_free_ = 0;
    ChannelStats stats_;
};

/** Aggregate counters kept by one lower cache level. */
struct LevelStats
{
    uint64_t requests = 0;         ///< Block requests from above.
    uint64_t hits = 0;
    uint64_t primaryMisses = 0;    ///< Fetches started to the next level.
    uint64_t secondaryMisses = 0;  ///< Requests merged into a fetch.
    uint64_t structWaits = 0;      ///< Requests delayed by exhaustion.
    uint64_t structWaitCycles = 0; ///< Total cycles those requests waited.
    uint64_t evictions = 0;
    uint64_t maxInflightFetches = 0;
    /** The channel feeding this level from the level above. */
    ChannelStats inChannel;

    /** Register the counters under an "l<level>." namespace
     *  (level 2 = the first level below L1). */
    void registerStats(stats::Registry &r, unsigned level) const;
};

/** Everything the hierarchy below L1 measured during a run. */
struct HierarchySnapshot
{
    /** True when the chain is non-degenerate (counters registered). */
    bool active = false;
    std::vector<LevelStats> levels; ///< L2 first.
    /** The channel into main memory (below the last cache level, or
     *  below L1 when there are no lower levels). */
    ChannelStats memChannel;
};

/**
 * One level of the memory side below L1. Implementations compute
 * arrival times analytically and recursively; see the file comment.
 */
class MemoryLevel
{
  public:
    virtual ~MemoryLevel() = default;

    /**
     * Fetch the bytes [addr, addr + bytes): one line of the
     * *requesting* level, line-aligned there (it may span several of
     * this level's blocks, or a fraction of one).
     *
     * @param ready Cycle the request arrives at this level (already
     *        past the channel above).
     * @param count_mem_fetch Whether a fetch this request causes main
     *        memory to serve is counted in MainMemory::fetches().
     *        L1's blocking modes historically do not count theirs;
     *        fetches a lower cache level starts on its own behalf
     *        always count.
     * @return The cycle the data arrives back at the requester.
     */
    virtual uint64_t fetchLine(uint64_t addr, unsigned bytes,
                               uint64_t ready,
                               bool count_mem_fetch) = 0;
};

/** The bottom of every chain: fully pipelined constant-penalty
 *  main memory. */
class MainMemoryLevel final : public MemoryLevel
{
  public:
    explicit MainMemoryLevel(mem::MainMemory &memory) : mem_(memory) {}

    uint64_t
    fetchLine(uint64_t, unsigned bytes, uint64_t ready,
              bool count_mem_fetch) override
    {
        if (count_mem_fetch)
            mem_.countFetch();
        return ready + mem_.penalty(bytes);
    }

  private:
    mem::MainMemory &mem_;
};

/**
 * A lockup-free lower cache level (L2, L3, ...). Reuses the L1 cache's
 * components -- TagArray for residency/LRU, MshrFile for the in-flight
 * fetch pool with the full mc=/fc=/fs= restriction vocabulary -- but
 * has no processor-facing contract: exhausted resources delay the
 * *request* (returned upward as latency), they never stall anything
 * here. Requests from above arrive at non-decreasing `ready` cycles
 * (the processor issues in program order and channels are FCFS); fill
 * events from below may complete out of order, which the
 * completion-sorted MshrFile absorbs.
 *
 * Stores are not modeled below L1: every level is write-through with
 * write-around below it, and write bandwidth is free (the paper's
 * free-write-buffer assumption applied hop by hop), so stores never
 * touch lower-level tag or MSHR state. docs/MODEL.md documents this
 * contract.
 */
class CacheLevel final : public MemoryLevel
{
  public:
    /**
     * @param cfg This level's geometry, policy and latencies.
     * @param down_interval Initiation interval of the channel from
     *        this level to the next one down.
     * @param next The level below (owned).
     */
    CacheLevel(const LevelConfig &cfg, unsigned down_interval,
               std::unique_ptr<MemoryLevel> next);

    uint64_t fetchLine(uint64_t addr, unsigned bytes, uint64_t ready,
                       bool count_mem_fetch) override;

    /** Counters so far (inChannel is left empty: the feeding channel
     *  belongs to the requester above; see NonblockingCache). */
    LevelStats stats() const;

    const ChannelStats &downChannelStats() const { return down_.stats(); }

  private:
    /** Fetch [offset, offset+size) of the block at blk; returns the
     *  arrival cycle of that block at the requester. */
    uint64_t fetchBlock(uint64_t blk, unsigned offset, unsigned size,
                        uint64_t t);

    /** Apply every fill that has completed by cycle now. */
    void
    expireUpTo(uint64_t now)
    {
        if (mshrs_.activeFetches() != 0)
            expireSlow(now);
    }

    void expireSlow(uint64_t now);

    /** Account a resource wait from *t until `until`; retries. */
    void wait(uint64_t &t, uint64_t until, bool &waited);

    mem::CacheGeometry geom_;
    MshrPolicy policy_;
    unsigned hit_latency_;
    mem::TagArray tags_;
    MshrFile mshrs_;
    Channel down_;
    std::unique_ptr<MemoryLevel> next_;
    LevelStats stats_;
};

/**
 * Build the chain below L1 for `hier`, bottoming out in `memory`
 * (borrowed; must outlive the chain). Returns the level L1 talks to
 * and exposes the CacheLevels for stats collection via `cache_levels`
 * (borrowed pointers into the returned chain, innermost first).
 */
std::unique_ptr<MemoryLevel>
buildHierarchy(const HierarchyConfig &hier, mem::MainMemory &memory,
               std::vector<CacheLevel *> &cache_levels);

} // namespace nbl::core

#endif // NBL_CORE_MEMORY_LEVEL_HH
