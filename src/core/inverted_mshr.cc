#include "core/inverted_mshr.hh"

#include "util/log.hh"

namespace nbl::core
{

InvertedMshr::InvertedMshr() : entries_(isa::numDests)
{
}

void
InvertedMshr::allocate(unsigned dest, uint64_t block_addr,
                       unsigned offset, unsigned size)
{
    if (dest >= entries_.size())
        panic("inverted MSHR destination %u out of range", dest);
    Entry &e = entries_[dest];
    if (e.valid) {
        panic("inverted MSHR destination %u already waiting "
              "(missing WAW interlock?)", dest);
    }
    e.valid = true;
    e.blockAddr = block_addr;
    e.offsetInBlock = offset;
    e.size = size;
    ++active_;
    if (active_ > max_active_)
        max_active_ = active_;
}

const std::vector<unsigned> &
InvertedMshr::fill(uint64_t block_addr)
{
    filled_.clear();
    // Stop once every active entry has been seen: fills are frequent
    // (one per completed fetch) while in-flight misses are few, so
    // the probe usually touches a handful of entries, not all 64.
    unsigned left = active_;
    for (unsigned d = 0; left != 0 && d < entries_.size(); ++d) {
        Entry &e = entries_[d];
        if (!e.valid)
            continue;
        --left;
        if (e.blockAddr == block_addr) {
            e.valid = false;
            --active_;
            filled_.push_back(d);
        }
    }
    return filled_;
}

} // namespace nbl::core
