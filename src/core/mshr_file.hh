/**
 * @file
 * The pool of MSHRs backing a lockup-free cache.
 *
 * Tracks every in-flight fetch, enforces the whole-cache restrictions
 * (number of MSHRs == max fetches; max fetches per cache set), and
 * hands completed fetches back in completion order so the cache can
 * apply fills and keep the in-flight histograms exact.
 *
 * The pool is kept sorted by completion cycle -- a fill-event stream.
 * Below a multi-level hierarchy (core/memory_level.hh) completions
 * are not monotone in allocation order: a fetch that hits in L2
 * returns before an older one that missed. Insertion is stable for
 * equal completion cycles, so over a degenerate (constant-penalty)
 * chain, where completions are monotone, every allocation appends at
 * the back and the pool degenerates to the historical FIFO, bit for
 * bit.
 */

#ifndef NBL_CORE_MSHR_FILE_HH
#define NBL_CORE_MSHR_FILE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "core/mshr.hh"
#include "core/policy.hh"
#include "util/log.hh"

namespace nbl::stats
{
class Registry;
}

namespace nbl::core
{

/** Counters kept by the MSHR pool (beyond the high-water marks). */
struct MshrFileStats
{
    /**
     * Per-set fetch pressure: every fetch allocation is bucketed by
     * the number of fetches in flight *to its cache set* after the
     * allocation (bucket index 8 = 8-or-more). Bucket 1 dominating
     * means per-set limits (fs=, in-cache MSHR storage, section
     * 4.2 / Figure 15) would never bind; weight at 2+ is exactly the
     * traffic those organizations stall. Sums to the number of
     * MSHR-pool fetches (blocking-mode fetches bypass the pool).
     */
    std::array<uint64_t, 9> perSetOccupancy{};
    /** Max fetches ever in flight to one set. */
    uint64_t maxPerSet = 0;

    /** Register the counters (docs/OBSERVABILITY.md). */
    void registerStats(stats::Registry &r) const;
};

/** Pool of in-flight fetches with the paper's mc/fc/fs restrictions. */
class MshrFile
{
  public:
    MshrFile(const MshrPolicy &policy, unsigned line_bytes);

    /** Find the MSHR fetching block_addr, if any. */
    Mshr *findBlock(uint64_t block_addr);

    /** May a new fetch be started for a block in set set_index? */
    bool canAllocate(uint64_t set_index) const;

    /** May another miss (destination) be tracked at all? (mc= cap) */
    bool
    canAddMiss() const
    {
        return policy_.maxMisses < 0 ||
               active_misses_ <
                   static_cast<unsigned>(policy_.maxMisses);
    }

    /** Cycle at which the earliest-completing fetch lands, freeing
     *  its destination slots (the mc= cap's release point). */
    uint64_t
    missFreeCycle() const
    {
        if (fifo_.empty())
            panic("missFreeCycle with nothing in flight");
        return fifo_.front().completeCycle();
    }

    /**
     * Start a fetch. canAllocate must have returned true. The entry
     * is inserted in completion order, after existing entries with
     * the same completion cycle (see the file comment); the returned
     * reference is valid until the next allocation.
     */
    Mshr &allocate(uint64_t block_addr, uint64_t set_index,
                   uint64_t complete_cycle);

    /**
     * Earliest cycle at which the resource blocking a new allocation
     * in set_index frees: the earliest-completing fetch overall if the
     * MSHR count is the binding limit, else the earliest-completing
     * fetch in the set.
     */
    uint64_t allocFreeCycle(uint64_t set_index) const;

    /**
     * Pop the earliest-completing fetch if it has completed by cycle
     * now.
     * @return the completed MSHR (moved out), or nullopt.
     */
    std::optional<Mshr> popCompleted(uint64_t now);

    /** Number of in-flight fetches. */
    unsigned activeFetches() const { return unsigned(fifo_.size()); }

    /** Number of in-flight misses (destination fields in use). */
    unsigned activeMisses() const { return active_misses_; }
    void noteMissAdded() { ++active_misses_; }

    /** High-water marks, for reporting. */
    unsigned maxFetches() const { return max_fetches_seen_; }
    unsigned maxMisses() const { return max_misses_seen_; }

    const MshrFileStats &stats() const { return stats_; }
    void
    updatePeaks()
    {
        if (fifo_.size() > max_fetches_seen_)
            max_fetches_seen_ = unsigned(fifo_.size());
        if (active_misses_ > max_misses_seen_)
            max_misses_seen_ = active_misses_;
    }

  private:
    MshrPolicy policy_;
    unsigned line_bytes_;
    std::deque<Mshr> fifo_;     ///< Sorted by completion cycle (stable).
    std::unordered_map<uint64_t, unsigned> per_set_;
    unsigned active_misses_ = 0;
    unsigned max_fetches_seen_ = 0;
    unsigned max_misses_seen_ = 0;
    MshrFileStats stats_;
};

} // namespace nbl::core

#endif // NBL_CORE_MSHR_FILE_HH
