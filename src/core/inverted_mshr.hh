/**
 * @file
 * Inverted MSHR organization (paper section 2.4).
 *
 * Instead of one record per outstanding fetch, the inverted MSHR keeps
 * one record per possible destination of fetch data (every integer and
 * floating-point register plus the PC). A new miss writes the entry of
 * its destination register; when a block returns, all entries whose
 * block request address matches are filled simultaneously (the "match
 * encoder" of Figure 3). The organization imposes no limit on the
 * number of blocks being fetched or misses per block beyond the number
 * of destinations in the machine.
 */

#ifndef NBL_CORE_INVERTED_MSHR_HH
#define NBL_CORE_INVERTED_MSHR_HH

#include <cstdint>
#include <vector>

#include "isa/reg.hh"

namespace nbl::core
{

/** Per-destination miss-status file; TLB-like associative structure. */
class InvertedMshr
{
  public:
    InvertedMshr();

    /**
     * Record that destination dest is waiting on [offset, offset+size)
     * of block block_addr. The destination must not already be valid
     * (the processor's WAW interlock guarantees this).
     */
    void allocate(unsigned dest, uint64_t block_addr, unsigned offset,
                  unsigned size);

    /**
     * A block has returned: clear and report every destination waiting
     * on it (the associative probe + match encoder).
     * @return destination numbers filled, in entry order. The
     *         reference is into a reused internal buffer, valid until
     *         the next fill() call (avoids an allocation per fill on
     *         the simulation hot path).
     */
    const std::vector<unsigned> &fill(uint64_t block_addr);

    /** Is this destination waiting on an outstanding fetch? */
    bool busy(unsigned dest) const { return entries_[dest].valid; }

    /** Number of valid entries (in-flight misses). */
    unsigned activeMisses() const { return active_; }

    /** High-water mark of valid entries over the run. */
    unsigned maxMisses() const { return max_active_; }

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t blockAddr = 0;
        unsigned offsetInBlock = 0;
        unsigned size = 0;
    };

    std::vector<Entry> entries_;
    std::vector<unsigned> filled_;  ///< Reused fill() result buffer.
    unsigned active_ = 0;
    unsigned max_active_ = 0;
};

} // namespace nbl::core

#endif // NBL_CORE_INVERTED_MSHR_HH
