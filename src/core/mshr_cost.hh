/**
 * @file
 * Hardware cost model for MSHR organizations (paper section 2).
 *
 * Reproduces the paper's storage arithmetic: with a 48-bit physical
 * address and 32-byte lines, the block request address takes 43 bits
 * (+1 valid bit = 44), each destination field takes 1 valid + 6
 * destination + ~5 format = 12 bits, and explicitly addressed fields
 * add an address-in-block field sized by the bytes they can reach:
 *
 *   - basic implicit, 4 words of 8 B:    44 + 4*12           =  92 bits
 *   - implicit, 8 sub-blocks of 4 B:     44 + 8*12           = 140 bits
 *   - explicit, 4 fields:                44 + 4*(12+5)       = 112 bits
 *   - hybrid, 2 sub-blocks x 2 fields:   44 + 4*(12+4)       = 106 bits
 *
 * Traditional MSHRs carry one block-address comparator each; the
 * inverted organization carries one comparator per destination entry;
 * in-cache MSHR storage adds one transit bit per cache line.
 */

#ifndef NBL_CORE_MSHR_COST_HH
#define NBL_CORE_MSHR_COST_HH

#include <cstdint>

#include "core/policy.hh"

namespace nbl::core
{

/** Machine parameters feeding the bit arithmetic. */
struct CostParams
{
    unsigned physAddrBits = 48;
    unsigned lineBytes = 32;
    unsigned destBits = 6;    ///< Register number incl. int/fp bit.
    unsigned formatBits = 5;  ///< Width/sign-extend/etc. ("~5").
    unsigned numDests = 65;   ///< Inverted MSHR entries (64 regs + PC).
};

/** Storage and comparator cost of one organization. */
struct MshrCost
{
    uint64_t storageBits = 0;      ///< Register bits outside the cache.
    uint64_t comparators = 0;      ///< Number of address comparators.
    uint64_t comparatorBits = 0;   ///< Width of each comparator.
    uint64_t extraCacheBits = 0;   ///< e.g. transit bits, in-cache MSHRs.

    uint64_t
    totalBits() const
    {
        return storageBits + extraCacheBits;
    }
};

/** Bits to address a byte within the block (5 for 32 B lines). */
unsigned addrInBlockBits(const CostParams &p);

/** Block request address field width (43 for 48-bit PA, 32 B lines). */
unsigned blockRequestAddrBits(const CostParams &p);

/** One destination field without any explicit address (12 bits). */
unsigned implicitFieldBits(const CostParams &p);

/**
 * One destination field of a hybrid MSHR with sub_blocks positional
 * groups holding misses_per_sub fields each. A field needs explicit
 * address bits only to disambiguate within its sub-block: a purely
 * positional field (one miss per sub-block, several sub-blocks) needs
 * none, a fully explicit field (one sub-block) needs bits for the
 * whole line. sub_blocks == 1, misses_per_sub == 4 gives the paper's
 * 17-bit explicit field.
 */
unsigned hybridFieldBits(const CostParams &p, unsigned sub_blocks,
                         unsigned misses_per_sub);

/** A whole implicitly addressed MSHR with sub_blocks fields. */
MshrCost implicitMshrCost(const CostParams &p, unsigned sub_blocks);

/** A whole explicitly addressed MSHR with num_fields fields. */
MshrCost explicitMshrCost(const CostParams &p, unsigned num_fields);

/** A hybrid MSHR: sub_blocks groups x misses_per_sub fields each. */
MshrCost hybridMshrCost(const CostParams &p, unsigned sub_blocks,
                        unsigned misses_per_sub);

/** A full inverted MSHR (one entry + comparator per destination). */
MshrCost invertedMshrCost(const CostParams &p);

/** In-cache MSHR storage: transit bit per line + one comparator. */
MshrCost inCacheMshrCost(const CostParams &p, uint64_t num_lines);

/**
 * Cost of a whole MshrPolicy as configured (numMshrs copies of the
 * per-MSHR organization; unlimited values are costed at `assumed_max`
 * MSHRs / fields, defaulting to 16 fetches and one field per line
 * word, so relative comparisons stay meaningful).
 */
MshrCost policyCost(const CostParams &p, const MshrPolicy &policy,
                    unsigned assumed_max = 16);

} // namespace nbl::core

#endif // NBL_CORE_MSHR_COST_HH
