#include "core/mshr_cost.hh"

#include "util/bitops.hh"
#include "util/log.hh"

namespace nbl::core
{

unsigned
addrInBlockBits(const CostParams &p)
{
    return bitsFor(p.lineBytes);
}

unsigned
blockRequestAddrBits(const CostParams &p)
{
    return p.physAddrBits - addrInBlockBits(p);
}

unsigned
implicitFieldBits(const CostParams &p)
{
    // valid + destination + format.
    return 1 + p.destBits + p.formatBits;
}

unsigned
hybridFieldBits(const CostParams &p, unsigned sub_blocks,
                unsigned misses_per_sub)
{
    if (sub_blocks == 0 || p.lineBytes % sub_blocks != 0)
        fatal("bad sub-block count %u", sub_blocks);
    // Positional fields (one miss per sub-block, several sub-blocks)
    // carry no address; otherwise the field addresses within its
    // sub-block.
    if (misses_per_sub <= 1 && sub_blocks > 1)
        return implicitFieldBits(p);
    unsigned within = bitsFor(p.lineBytes / sub_blocks);
    return implicitFieldBits(p) + within;
}

namespace
{

MshrCost
baseMshr(const CostParams &p)
{
    MshrCost c;
    // Block valid bit + block request address, plus the associative
    // comparator over the block request address.
    c.storageBits = 1 + blockRequestAddrBits(p);
    c.comparators = 1;
    c.comparatorBits = blockRequestAddrBits(p);
    return c;
}

} // namespace

MshrCost
implicitMshrCost(const CostParams &p, unsigned sub_blocks)
{
    MshrCost c = baseMshr(p);
    c.storageBits += uint64_t(sub_blocks) * implicitFieldBits(p);
    return c;
}

MshrCost
explicitMshrCost(const CostParams &p, unsigned num_fields)
{
    MshrCost c = baseMshr(p);
    c.storageBits +=
        uint64_t(num_fields) * hybridFieldBits(p, 1, num_fields);
    return c;
}

MshrCost
hybridMshrCost(const CostParams &p, unsigned sub_blocks,
               unsigned misses_per_sub)
{
    MshrCost c = baseMshr(p);
    c.storageBits += uint64_t(sub_blocks) * misses_per_sub *
                     hybridFieldBits(p, sub_blocks, misses_per_sub);
    return c;
}

MshrCost
invertedMshrCost(const CostParams &p)
{
    MshrCost c;
    // Per destination: valid + block request address + format +
    // address in block (Figure 3), plus a comparator per entry.
    uint64_t per_entry = 1 + blockRequestAddrBits(p) + p.formatBits +
                         addrInBlockBits(p);
    c.storageBits = per_entry * p.numDests;
    c.comparators = p.numDests;
    c.comparatorBits = blockRequestAddrBits(p);
    return c;
}

MshrCost
inCacheMshrCost(const CostParams &p, uint64_t num_lines)
{
    MshrCost c;
    // One transit bit per cache line; MSHR info lives in the line
    // itself. A single comparator serves the (tag-resident) address.
    c.extraCacheBits = num_lines;
    c.comparators = 1;
    c.comparatorBits = blockRequestAddrBits(p);
    return c;
}

MshrCost
policyCost(const CostParams &p, const MshrPolicy &policy,
           unsigned assumed_max)
{
    if (policy.blocking())
        return MshrCost{};
    if (policy.mode == CacheMode::Inverted)
        return invertedMshrCost(p);

    if (policy.maxMisses >= 0) {
        // mc=N: N single-destination (explicitly addressed) MSHRs.
        MshrCost one = explicitMshrCost(p, 1);
        MshrCost c;
        c.storageBits = one.storageBits * unsigned(policy.maxMisses);
        c.comparators = unsigned(policy.maxMisses);
        c.comparatorBits = one.comparatorBits;
        return c;
    }

    unsigned mshrs = policy.numMshrs >= 0
                         ? static_cast<unsigned>(policy.numMshrs)
                         : assumed_max;
    unsigned sub = policy.subBlocks >= 1
                       ? static_cast<unsigned>(policy.subBlocks)
                       : 1;
    unsigned per_sub;
    if (policy.missesPerSubBlock >= 0) {
        per_sub = static_cast<unsigned>(policy.missesPerSubBlock);
    } else {
        // Unlimited fields costed as one per word of the sub-block.
        per_sub = (p.lineBytes / sub) / 8;
        if (per_sub == 0)
            per_sub = 1;
    }

    MshrCost one = hybridMshrCost(p, sub, per_sub);
    MshrCost c;
    c.storageBits = one.storageBits * mshrs;
    c.comparators = one.comparators * mshrs;
    c.comparatorBits = one.comparatorBits;
    return c;
}

} // namespace nbl::core
