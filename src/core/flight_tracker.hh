/**
 * @file
 * Time-weighted histograms of in-flight misses and fetches (Figure 6).
 *
 * The tracker is fed level-change events in non-decreasing time order
 * and charges each interval to the level that held during it. The
 * harness derives the paper's Figure 6 columns from the result: the
 * percentage of run time with more than zero misses in flight (MIF),
 * the distribution of that time over 1, 2, ..., 7+ in-flight, and the
 * maximum.
 */

#ifndef NBL_CORE_FLIGHT_TRACKER_HH
#define NBL_CORE_FLIGHT_TRACKER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nbl::stats
{
class Registry;
}

namespace nbl::core
{

/** One time-weighted level histogram. */
class LevelHistogram
{
  public:
    /** Levels at or above maxLevel share the final bucket. */
    static constexpr unsigned maxLevel = 64;

    LevelHistogram() : cycles_at_(maxLevel + 1, 0) {}

    /** The level changes to level at time now (now must not decrease). */
    void set(unsigned level, uint64_t now);

    /** Adjust the level by +/-1 at time now. */
    void increment(uint64_t now) { set(level_ + 1, now); }
    void decrement(uint64_t now);

    /** Charge the final interval up to end_cycle. */
    void finalize(uint64_t end_cycle);

    unsigned level() const { return level_; }
    unsigned maxSeen() const { return max_seen_; }

    /** Cycles spent with exactly this level (capped bucket at top). */
    uint64_t cyclesAt(unsigned level) const;

    /** Cycles spent with level >= 1. */
    uint64_t cyclesAbove0() const;

    /** Total cycles observed (finalize must have been called). */
    uint64_t totalCycles() const { return total_; }

    /** Fraction of total time with level >= 1 (0 if no time). */
    double fractionAbove0() const;

    /**
     * Of the time with level >= 1, the fraction spent at exactly
     * level n (Figure 6's "% of MIF" columns); n >= 1.
     */
    double fractionOfBusyAt(unsigned n) const;

    /** Fraction of busy time at level >= n (used for the 7+ column). */
    double fractionOfBusyAtLeast(unsigned n) const;

    /**
     * Register the histogram under `name` (buckets trimmed to the
     * maximum level seen; sums to totalCycles once finalized).
     */
    void registerStats(stats::Registry &r, const std::string &name,
                       const std::string &section) const;

  private:
    std::vector<uint64_t> cycles_at_;
    unsigned level_ = 0;
    unsigned max_seen_ = 0;
    uint64_t last_time_ = 0;
    uint64_t total_ = 0;
    bool finalized_ = false;
};

/** The pair of histograms reported by Figure 6. */
struct FlightTracker
{
    LevelHistogram misses;
    LevelHistogram fetches;

    void
    finalize(uint64_t end_cycle)
    {
        misses.finalize(end_cycle);
        fetches.finalize(end_cycle);
    }

    /** Register both histograms (docs/OBSERVABILITY.md). */
    void registerStats(stats::Registry &r) const;
};

} // namespace nbl::core

#endif // NBL_CORE_FLIGHT_TRACKER_HH
