#include "core/mshr.hh"

#include <algorithm>

#include "util/log.hh"

namespace nbl::core
{

Mshr::Mshr(uint64_t block_addr, uint64_t set_index,
           uint64_t complete_cycle, unsigned line_bytes,
           const MshrPolicy &policy)
    : block_addr_(block_addr), set_index_(set_index),
      complete_cycle_(complete_cycle), line_bytes_(line_bytes),
      sub_blocks_(std::max(policy.subBlocks, 1)),
      misses_per_sub_(policy.missesPerSubBlock),
      sub_counts_(static_cast<size_t>(sub_blocks_), 0)
{
    if (line_bytes_ % sub_blocks_ != 0)
        fatal("line size %u not divisible by %d sub-blocks", line_bytes_,
              sub_blocks_);
}

std::pair<unsigned, unsigned>
Mshr::subRange(unsigned offset, unsigned size) const
{
    unsigned gran = line_bytes_ / static_cast<unsigned>(sub_blocks_);
    unsigned first = offset / gran;
    unsigned last = (offset + size - 1) / gran;
    if (last >= static_cast<unsigned>(sub_blocks_))
        panic("access [%u, %u) escapes the block", offset, offset + size);
    return {first, last};
}

bool
Mshr::canAccept(unsigned offset, unsigned size) const
{
    if (misses_per_sub_ < 0)
        return true;
    auto [first, last] = subRange(offset, size);
    for (unsigned s = first; s <= last; ++s) {
        if (sub_counts_[s] >= static_cast<unsigned>(misses_per_sub_))
            return false;
    }
    return true;
}

void
Mshr::addDest(unsigned dest_linear, unsigned offset, unsigned size)
{
    auto [first, last] = subRange(offset, size);
    for (unsigned s = first; s <= last; ++s)
        ++sub_counts_[s];
    dests_.push_back(MshrDest{dest_linear, offset, size});
}

} // namespace nbl::core
