#include "core/mshr_file.hh"

#include <algorithm>
#include <optional>
#include <string>

#include "stats/registry.hh"
#include "util/log.hh"

namespace nbl::core
{

void
MshrFileStats::registerStats(stats::Registry &r) const
{
    r.scalar("mshr.max_per_set", &maxPerSet, "fetches",
             "s4.2 (fig15)");
    r.histogram("mshr.per_set_occupancy", "fetches", "s4.2 (fig15)");
    for (unsigned i = 1; i < perSetOccupancy.size(); ++i) {
        r.bucket(i + 1 < perSetOccupancy.size() ? std::to_string(i)
                                                : "8+",
                 perSetOccupancy[i]);
    }
}

MshrFile::MshrFile(const MshrPolicy &policy, unsigned line_bytes)
    : policy_(policy), line_bytes_(line_bytes)
{
}

Mshr *
MshrFile::findBlock(uint64_t block_addr)
{
    for (Mshr &m : fifo_) {
        if (m.blockAddr() == block_addr)
            return &m;
    }
    return nullptr;
}

bool
MshrFile::canAllocate(uint64_t set_index) const
{
    if (policy_.numMshrs >= 0 &&
        fifo_.size() >= static_cast<size_t>(policy_.numMshrs)) {
        return false;
    }
    if (policy_.fetchesPerSet >= 0) {
        auto it = per_set_.find(set_index);
        unsigned in_set = it == per_set_.end() ? 0 : it->second;
        if (in_set >= static_cast<unsigned>(policy_.fetchesPerSet))
            return false;
    }
    return true;
}

Mshr &
MshrFile::allocate(uint64_t block_addr, uint64_t set_index,
                   uint64_t complete_cycle)
{
    if (!canAllocate(set_index))
        panic("MshrFile::allocate without capacity");
    // Stable completion-sorted insertion: fills from a hierarchy may
    // return out of order (an L2 hit lands before an older L2 miss).
    // Monotone completions -- every degenerate constant-penalty chain
    // -- walk zero steps and append at the back, the historical FIFO.
    auto pos = fifo_.end();
    while (pos != fifo_.begin() &&
           std::prev(pos)->completeCycle() > complete_cycle) {
        --pos;
    }
    pos = fifo_.emplace(pos, block_addr, set_index, complete_cycle,
                        line_bytes_, policy_);
    unsigned in_set = ++per_set_[set_index];
    ++stats_.perSetOccupancy[std::min<unsigned>(in_set, 8)];
    stats_.maxPerSet = std::max<uint64_t>(stats_.maxPerSet, in_set);
    return *pos;
}

uint64_t
MshrFile::allocFreeCycle(uint64_t set_index) const
{
    if (fifo_.empty())
        panic("allocFreeCycle with nothing in flight");
    if (policy_.numMshrs >= 0 &&
        fifo_.size() >= static_cast<size_t>(policy_.numMshrs)) {
        return fifo_.front().completeCycle();
    }
    // Per-set limit is binding: completion order makes the first
    // match the earliest-releasing fetch in this set.
    for (const Mshr &m : fifo_) {
        if (m.setIndex() == set_index)
            return m.completeCycle();
    }
    panic("allocFreeCycle: no fetch in the blocked set");
}

std::optional<Mshr>
MshrFile::popCompleted(uint64_t now)
{
    if (fifo_.empty() || fifo_.front().completeCycle() > now)
        return std::nullopt;
    Mshr done = std::move(fifo_.front());
    fifo_.pop_front();
    auto it = per_set_.find(done.setIndex());
    if (it == per_set_.end() || it->second == 0)
        panic("per-set fetch count underflow");
    if (--it->second == 0)
        per_set_.erase(it);
    // A prefetch-initiated fetch held one miss slot for its register
    // on top of any demand destinations that merged in later
    // (NonblockingCache::issuePrefetches).
    active_misses_ -= done.numDests() + (done.isPrefetch() ? 1u : 0u);
    return done;
}

} // namespace nbl::core
