#include "core/memory_level.hh"

#include <algorithm>
#include <string>

#include "stats/registry.hh"
#include "util/log.hh"

namespace nbl::core
{

void
LevelStats::registerStats(stats::Registry &r, unsigned level) const
{
    const std::string p = strfmt("l%u.", level);
    auto name = [&](const char *s) { return p + s; };
    r.scalar(name("requests"), &requests, "requests", "hierarchy");
    r.scalar(name("hits"), &hits, "requests", "hierarchy");
    r.scalar(name("primary_misses"), &primaryMisses, "misses",
             "hierarchy");
    r.scalar(name("secondary_misses"), &secondaryMisses, "misses",
             "hierarchy");
    r.scalar(name("struct_waits"), &structWaits, "requests",
             "hierarchy");
    r.scalar(name("struct_wait_cycles"), &structWaitCycles, "cycles",
             "hierarchy");
    r.scalar(name("evictions"), &evictions, "evictions", "hierarchy");
    r.scalar(name("max_inflight_fetches"), &maxInflightFetches,
             "fetches", "hierarchy");
    r.scalar(name("chan.sends"), &inChannel.sends, "requests",
             "hierarchy");
    r.scalar(name("chan.delayed_sends"), &inChannel.delayedSends,
             "requests", "hierarchy");
    r.scalar(name("chan.queue_cycles"), &inChannel.queueCycles,
             "cycles", "hierarchy");
}

namespace
{

/** Resolve geometry-dependent policy fields exactly as L1 does. */
MshrPolicy
resolveLevelPolicy(MshrPolicy p, const mem::CacheGeometry &geom)
{
    if (p.fetchesPerSetTracksWays) {
        p.fetchesPerSet =
            geom.fullyAssociative() ? -1 : int(geom.ways());
    }
    return p;
}

} // namespace

CacheLevel::CacheLevel(const LevelConfig &cfg, unsigned down_interval,
                       std::unique_ptr<MemoryLevel> next)
    : geom_(cfg.cacheBytes, cfg.lineBytes, cfg.ways),
      policy_(resolveLevelPolicy(cfg.policy, geom_)),
      hit_latency_(cfg.hitLatency), tags_(geom_),
      mshrs_(policy_, static_cast<unsigned>(geom_.lineBytes())),
      down_(down_interval), next_(std::move(next))
{
    if (policy_.mode != CacheMode::MshrFile)
        fatal("lower cache levels must use the MshrFile mode");
    if (policy_.numMshrs == 0 || policy_.fetchesPerSet == 0)
        fatal("lower cache level with zero MSHRs (or zero fetches per "
              "set) cannot make progress");
}

void
CacheLevel::expireSlow(uint64_t now)
{
    while (auto done = mshrs_.popCompleted(now)) {
        if (tags_.fill(done->blockAddr()))
            ++stats_.evictions;
    }
}

void
CacheLevel::wait(uint64_t &t, uint64_t until, bool &waited)
{
    if (until <= t)
        panic("hierarchy resource wait that does not advance time");
    if (!waited) {
        ++stats_.structWaits;
        waited = true;
    }
    stats_.structWaitCycles += until - t;
    t = until;
    expireUpTo(t);
}

uint64_t
CacheLevel::fetchBlock(uint64_t blk, unsigned offset, unsigned size,
                       uint64_t t)
{
    expireUpTo(t);
    ++stats_.requests;
    bool waited = false;
    for (;;) {
        if (tags_.lookup(blk)) {
            // Resident (possibly only after a resource wait, during
            // which the blocking fetch completed and filled it).
            if (!waited)
                ++stats_.hits;
            return t + hit_latency_;
        }

        if (Mshr *m = mshrs_.findBlock(blk)) {
            if (m->canAccept(offset, size)) {
                // Merge into the in-flight fetch; the requester gets
                // the data when the line arrives here.
                m->addDest(0, offset, size);
                mshrs_.noteMissAdded();
                mshrs_.updatePeaks();
                ++stats_.secondaryMisses;
                return m->completeCycle();
            }
            // Destination fields exhausted: the request queues until
            // the fetch lands, after which the retry hits.
            wait(t, m->completeCycle(), waited);
            continue;
        }

        uint64_t set = geom_.fullyAssociative() ? blk
                                                : geom_.setIndex(blk);
        if (mshrs_.canAllocate(set)) {
            // Probe took hit_latency_ cycles, then the miss enters
            // the downward channel (queueing there shows up as a
            // later send) and the next level answers recursively.
            // Fetches this level starts on its own behalf always
            // count toward memory (count_mem_fetch only carries L1's
            // historical blocking-mode exemption).
            uint64_t sent = down_.send(t + hit_latency_);
            uint64_t complete = next_->fetchLine(
                blk, static_cast<unsigned>(geom_.lineBytes()), sent,
                /*count_mem_fetch=*/true);
            Mshr &m = mshrs_.allocate(blk, set, complete);
            m.addDest(0, offset, size);
            mshrs_.noteMissAdded();
            mshrs_.updatePeaks();
            ++stats_.primaryMisses;
            return complete;
        }

        // No MSHR (or per-set slot) free at this level: back-pressure.
        // The request's effective start is pushed to the earliest
        // release; the upper level simply sees a longer fill latency.
        wait(t, mshrs_.allocFreeCycle(set), waited);
    }
}

uint64_t
CacheLevel::fetchLine(uint64_t addr, unsigned bytes, uint64_t ready,
                      bool /*count_mem_fetch*/)
{
    // The requester's line may be smaller than ours (a fraction of one
    // block: offset/size select the sub-block destination fields) or
    // larger (it spans several blocks; the line is complete when the
    // last piece arrives).
    const uint64_t line = geom_.lineBytes();
    uint64_t first = geom_.blockAddr(addr);
    uint64_t last = geom_.blockAddr(addr + bytes - 1);
    uint64_t arrival = 0;
    for (uint64_t blk = first; blk <= last; blk += line) {
        uint64_t lo = std::max(blk, addr);
        uint64_t hi = std::min(blk + line, addr + uint64_t(bytes));
        arrival = std::max(
            arrival, fetchBlock(blk, unsigned(lo - blk),
                                unsigned(hi - lo), ready));
    }
    return arrival;
}

LevelStats
CacheLevel::stats() const
{
    LevelStats s = stats_;
    s.maxInflightFetches = mshrs_.maxFetches();
    return s;
}

std::unique_ptr<MemoryLevel>
buildHierarchy(const HierarchyConfig &hier, mem::MainMemory &memory,
               std::vector<CacheLevel *> &cache_levels)
{
    validateHierarchy(hier);
    cache_levels.assign(hier.levels.size(), nullptr);
    std::unique_ptr<MemoryLevel> next =
        std::make_unique<MainMemoryLevel>(memory);
    for (size_t i = hier.levels.size(); i-- > 0;) {
        unsigned down = i + 1 < hier.levels.size()
                            ? hier.levels[i + 1].channelInterval
                            : hier.memChannelInterval;
        auto level = std::make_unique<CacheLevel>(hier.levels[i], down,
                                                  std::move(next));
        cache_levels[i] = level.get();
        next = std::move(level);
    }
    return next;
}

} // namespace nbl::core
