/**
 * @file
 * Miss-handling policy vocabulary.
 *
 * An MshrPolicy captures every restriction the paper studies on
 * in-flight misses:
 *
 *  - mode: blocking cache (with or without write-miss-allocate),
 *    conventional MSHR file, or inverted MSHR;
 *  - numMshrs: the number of MSHRs == the maximum number of in-flight
 *    fetches ("fc=" curves; "mc=" curves are N MSHRs with one
 *    destination field each);
 *  - subBlocks / missesPerSubBlock: the per-MSHR destination-field
 *    organization of Figure 14 (implicit = N sub-blocks x 1 miss,
 *    explicit = 1 sub-block x K misses, hybrid = S x K);
 *  - fetchesPerSet: the in-cache MSHR-storage restriction of Figure 15
 *    ("fs=" curves).
 *
 * Named configurations replicate the labels used throughout the paper's
 * figures.
 */

#ifndef NBL_CORE_POLICY_HH
#define NBL_CORE_POLICY_HH

#include <string>

namespace nbl::core
{

/** Overall cache operating mode. */
enum class CacheMode
{
    Blocking,     ///< "mc=0": lockup cache; write-around stores free.
    BlockingWMA,  ///< "mc=0 +wma": lockup + write-miss-allocate stalls.
    MshrFile,     ///< Conventional MSHRs with the limits below.
    Inverted,     ///< Inverted MSHR: limited only by destinations.
};

/**
 * How stores that miss are handled (paper section 1 describes both
 * common non-blocking store methods).
 */
enum class StoreMode
{
    /** Write-around / no-write-allocate: the data goes straight to
     *  the next level; the cache is not filled (the baseline). */
    WriteAround,
    /**
     * Buffered write-allocate: the data waits in a write-buffer entry
     * while the line is fetched through the normal miss-handling
     * machinery. Store misses then consume MSHR resources, and the
     * write-buffer entries become destinations of fetch data (the
     * inverted MSHR's extra entries).
     */
    WriteAllocate,
};

/** Restrictions on in-flight misses; see file comment. */
struct MshrPolicy
{
    CacheMode mode = CacheMode::MshrFile;

    /** Max in-flight fetches (number of MSHRs); -1 = unlimited. */
    int numMshrs = -1;

    /**
     * Max in-flight misses (primary + secondary) to the cache as a
     * whole; -1 = unlimited. This models the "mc=" configurations: N
     * MSHRs with one destination field each can track N misses spread
     * over up to N distinct blocks (two single-field MSHRs may hold
     * the same block address, sharing one fetch).
     */
    int maxMisses = -1;

    /**
     * Destination-field organization within one MSHR: the line is
     * divided into subBlocks positional groups, each able to track
     * missesPerSubBlock misses (-1 = unlimited). subBlocks = 1 with a
     * finite missesPerSubBlock models a purely explicitly addressed
     * MSHR; missesPerSubBlock = 1 with several subBlocks models a
     * purely implicitly addressed MSHR.
     */
    int subBlocks = 1;
    int missesPerSubBlock = -1;

    /** Max in-flight fetches per cache set; -1 = unlimited. */
    int fetchesPerSet = -1;

    /**
     * In-cache MSHR storage stores the pending-miss information in
     * the waiting line itself, so the per-set fetch capacity equals
     * the associativity ("by implementing the in-cache MSHR storage
     * method in a set-associative cache, more than one fetch per set
     * could be in progress", section 4.2). When set, the cache
     * overrides fetchesPerSet with its number of ways (unlimited for
     * a fully associative cache).
     */
    bool fetchesPerSetTracksWays = false;

    /** Store handling (non-blocking modes only; the BlockingWMA mode
     *  implies fetch-on-write with a full stall). */
    StoreMode storeMode = StoreMode::WriteAround;

    /**
     * Extra cycles added to every fill, e.g. for reading in-cache
     * MSHR information through a narrow cache port (section 2.3) --
     * pair with fetchesPerSet = 1 to model in-cache MSHR storage with
     * its read-bandwidth cost.
     */
    unsigned fillExtraCycles = 0;

    /** Figure label, e.g. "mc=1" or "no restrict". */
    std::string label;

    bool
    blocking() const
    {
        return mode == CacheMode::Blocking || mode == CacheMode::BlockingWMA;
    }

    bool
    writeMissAllocate() const
    {
        return mode == CacheMode::BlockingWMA;
    }
};

/** The named configurations used by the paper's figures. */
enum class ConfigName
{
    Mc0Wma,     ///< lockup, write-miss-allocate
    Mc0,        ///< lockup
    Mc1,        ///< hit under miss: 1 MSHR x 1 destination field
    Mc2,        ///< 2 MSHRs x 1 destination field
    Fc1,        ///< 1 MSHR, unlimited destination fields
    Fc2,        ///< 2 MSHRs, unlimited destination fields
    Fs1,        ///< unlimited MSHRs, 1 fetch per cache set
    Fs2,        ///< unlimited MSHRs, 2 fetches per set
    /**
     * In-cache MSHR storage (section 2.3): the pending line itself
     * holds the MSHR information (one transit bit per line). One
     * fetch per set as with Fs1, plus extra fill cycles for reading
     * the MSHR information back through the cache port.
     */
    InCache,
    NoRestrict, ///< inverted MSHR, no restrictions
};

/** Build the policy for a named configuration. */
MshrPolicy makePolicy(ConfigName name);

/** Figure label for a named configuration (e.g. "mc=0 +wma"). */
const char *configLabel(ConfigName name);

/** Every named configuration, in enum order. */
extern const ConfigName allConfigNames[10];

/**
 * Inverse of configLabel: parse a figure label back to its ConfigName
 * ("mc=1", "no restrict", ...). Shared by the nbl-sim CLI and the
 * service request schema so the two accept the same vocabulary.
 * Returns false when the label names no configuration.
 */
bool parseConfigLabel(const std::string &label, ConfigName *out);

/**
 * Build a Figure-14 style policy: unlimited MSHRs, each organized as
 * sub_blocks x misses_per_sub destination fields (-1 = unlimited).
 */
MshrPolicy makeFieldPolicy(int sub_blocks, int misses_per_sub);

/** The seven configurations plotted in the baseline MCPI figures. */
inline constexpr ConfigName baselineConfigs[] = {
    ConfigName::Mc0Wma, ConfigName::Mc0, ConfigName::Mc1,
    ConfigName::Mc2, ConfigName::Fc1, ConfigName::Fc2,
    ConfigName::NoRestrict,
};

/** The six configurations tabulated in Figure 13. */
inline constexpr ConfigName fig13Configs[] = {
    ConfigName::Mc0, ConfigName::Mc1, ConfigName::Mc2,
    ConfigName::Fc1, ConfigName::Fc2, ConfigName::NoRestrict,
};

} // namespace nbl::core

#endif // NBL_CORE_POLICY_HH
