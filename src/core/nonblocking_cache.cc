#include "core/nonblocking_cache.hh"

#include <algorithm>
#include <string>

#include "stats/registry.hh"
#include "util/log.hh"

namespace nbl::core
{

void
CacheStats::registerStats(stats::Registry &r) const
{
    r.scalar("cache.loads", &loads, "accesses", "s3.1");
    r.scalar("cache.stores", &stores, "accesses", "s3.1");
    r.scalar("cache.load_hits", &loadHits, "accesses", "s3.1");
    r.scalar("cache.store_hits", &storeHits, "accesses", "s3.1");
    r.scalar("cache.primary_misses", &primaryMisses, "misses", "s2");
    r.scalar("cache.secondary_misses", &secondaryMisses, "misses",
             "s2");
    r.scalar("cache.struct_stall_misses", &structStallMisses, "misses",
             "s2");
    r.scalar("cache.struct_stall_cycles", &structStallCycles, "cycles",
             "s2");
    r.scalar("cache.store_misses", &storeMisses, "misses", "s3.1");
    r.scalar("cache.store_primary_misses", &storePrimaryMisses,
             "misses", "s5 (fig17)");
    r.scalar("cache.store_secondary_misses", &storeSecondaryMisses,
             "misses", "s5 (fig17)");
    r.scalar("cache.store_struct_stalls", &storeStructStalls, "misses",
             "s5 (fig17)");
    r.scalar("cache.fetches", &fetches, "fetches", "s3.1");
    r.scalar("cache.evictions", &evictions, "evictions", "s3.1");
    r.histogram("cache.dests_per_fetch", "fetches", "s4.1 (fig09)");
    for (unsigned i = 0; i < destsPerFetch.size(); ++i) {
        r.bucket(i + 1 < destsPerFetch.size() ? std::to_string(i)
                                              : "8+",
                 destsPerFetch[i]);
    }
}

namespace
{

/** Resolve geometry-dependent policy fields (in-cache storage). */
MshrPolicy
resolvePolicy(MshrPolicy p, const mem::CacheGeometry &geom)
{
    if (p.fetchesPerSetTracksWays) {
        p.fetchesPerSet =
            geom.fullyAssociative() ? -1 : int(geom.ways());
    }
    return p;
}

/** Fetch-tracking policy for the inverted organization: unlimited. */
MshrPolicy
fetchTrackingPolicy(const MshrPolicy &policy)
{
    if (policy.mode != CacheMode::Inverted)
        return policy;
    MshrPolicy p = policy;
    p.numMshrs = -1;
    p.maxMisses = -1;
    p.fetchesPerSet = -1;
    p.subBlocks = 1;
    p.missesPerSubBlock = -1;
    return p;
}

} // namespace

NonblockingCache::NonblockingCache(const mem::CacheGeometry &geom,
                                   const MshrPolicy &policy,
                                   const mem::MainMemory &memory,
                                   unsigned fill_write_ports,
                                   const HierarchyConfig &hierarchy)
    : geom_(geom), policy_(resolvePolicy(policy, geom)),
      memory_(memory),
      down_(hierarchy.levels.empty()
                ? hierarchy.memChannelInterval
                : hierarchy.levels.front().channelInterval),
      next_(buildHierarchy(hierarchy, memory_, level_views_)),
      hierarchy_active_(!hierarchy.degenerate()), tags_(geom),
      mshrs_(fetchTrackingPolicy(policy_),
             static_cast<unsigned>(geom.lineBytes())),
      fill_write_ports_(fill_write_ports)
{
    if (policy_.mode == CacheMode::Inverted)
        inverted_ = std::make_unique<InvertedMshr>();
    if (!policy_.blocking() && policy_.numMshrs == 0)
        fatal("non-blocking cache with zero MSHRs cannot make progress");
    if (policy_.fetchesPerSet == 0)
        fatal("fetchesPerSet of zero cannot make progress");
}

void
NonblockingCache::expireSlow(uint64_t now)
{
    while (auto done = mshrs_.popCompleted(now)) {
        uint64_t at = done->completeCycle();
        ++stats_.destsPerFetch[std::min<unsigned>(done->numDests(), 8)];
        // A fill is a "pure" prefetch only if no demand miss merged
        // in before it landed (the merge erases the in-flight mark).
        bool pure_pf = pf_active_ && done->isPrefetch() &&
                       pf_inflight_.erase(done->blockAddr()) > 0;
        if (auto evicted = tags_.fill(done->blockAddr())) {
            ++stats_.evictions;
            if (pf_active_) {
                pf_resident_.erase(*evicted);
                if (pure_pf)
                    pf_victims_.insert(*evicted);
            }
        }
        if (pure_pf)
            pf_resident_.insert(done->blockAddr());
        tracker_.fetches.decrement(at);
        for (unsigned i = 0; i < done->numDests(); ++i)
            tracker_.misses.decrement(at);
        if (inverted_) {
            const auto &filled = inverted_->fill(done->blockAddr());
            if (filled.size() != done->numDests())
                panic("inverted MSHR / MSHR file dest mismatch");
        }
        last_drain_cycle_ = std::max(last_drain_cycle_, at);
    }
}

uint64_t
NonblockingCache::drainAll()
{
    expireUpTo(UINT64_MAX);
    return last_drain_cycle_;
}

void
NonblockingCache::structStall(uint64_t &t, uint64_t until, bool &stalled)
{
    if (until <= t)
        panic("structural stall that does not advance time");
    if (!stalled) {
        ++stats_.structStallMisses;
        stalled = true;
    }
    stats_.structStallCycles += until - t;
    t = until;
    expireUpTo(t);
}

AccessOutcome
NonblockingCache::blockingFill(uint64_t addr, uint64_t now, bool is_load)
{
    // Lockup cache miss: the processor stalls for the full fill
    // latency while the line is fetched; all later references see it
    // filled. Blocking fetches historically are not counted in
    // MainMemory::fetches() (count_mem_fetch=false keeps that).
    uint64_t sent = down_.send(now + 1);
    uint64_t complete = next_->fetchLine(
        geom_.blockAddr(addr), static_cast<unsigned>(geom_.lineBytes()),
        sent, /*count_mem_fetch=*/false);
    if (is_load)
        ++stats_.primaryMisses;
    else
        ++stats_.storePrimaryMisses;
    ++stats_.fetches;
    ++stats_.destsPerFetch[is_load ? 1 : 0];
    tracker_.fetches.increment(now);
    tracker_.fetches.decrement(complete);
    if (is_load) {
        tracker_.misses.increment(now);
        tracker_.misses.decrement(complete);
    }
    if (tags_.fill(addr))
        ++stats_.evictions;
    last_drain_cycle_ = std::max(last_drain_cycle_, complete);
    return {now, complete, complete, AccessKind::Primary, false};
}

AccessOutcome
NonblockingCache::blockingLoad(uint64_t addr, uint64_t now)
{
    if (tags_.lookup(addr)) {
        ++stats_.loadHits;
        return {now, now + 1, now + 1, AccessKind::Hit, false};
    }
    return blockingFill(addr, now, true);
}

AccessOutcome
NonblockingCache::missPath(uint64_t addr, unsigned size, uint64_t t,
                           unsigned dest_linear, bool is_store,
                           bool stalled)
{
    while (true) {
        if (tags_.lookup(addr)) {
            // Only reachable after a structural stall: the blocking
            // fetch filled this line. Counted as a structural-stall
            // miss, not a hit.
            if (pf_active_ &&
                pf_resident_.erase(geom_.blockAddr(addr)) > 0)
                ++pf_.useful;
            return {t, t + 1, t + 1, AccessKind::Hit, stalled};
        }

        uint64_t blk = geom_.blockAddr(addr);
        unsigned off = static_cast<unsigned>(geom_.offset(addr));

        if (Mshr *m = mshrs_.findBlock(blk)) {
            if (!mshrs_.canAddMiss()) {
                // The whole-cache miss cap (mc=) is exhausted: wait
                // for the oldest fetch to free its destinations.
                structStall(t, mshrs_.missFreeCycle(), stalled);
                continue;
            }
            if (m->canAccept(off, size)) {
                unsigned slot = m->numDests();
                m->addDest(dest_linear, off, size);
                mshrs_.noteMissAdded();
                mshrs_.updatePeaks();
                // A demand miss merging into an in-flight prefetch:
                // the prefetch was useful (and is demand-owned now).
                if (pf_active_ && m->isPrefetch() &&
                    pf_inflight_.erase(blk) > 0)
                    ++pf_.useful;
                if (inverted_)
                    inverted_->allocate(dest_linear, blk, off, size);
                if (is_store)
                    ++stats_.storeSecondaryMisses;
                else
                    ++stats_.secondaryMisses;
                tracker_.misses.increment(t);
                return {t, destReadyAt(m->completeCycle(), slot),
                        t + 1, AccessKind::Secondary, stalled};
            }
            // All destination fields for this block are in use: a
            // structural-stall miss. Wait for the block to arrive,
            // after which the retry hits in the cache.
            structStall(t, m->completeCycle(), stalled);
            continue;
        }

        // Per-set fetch limits model one pending line per cache set
        // (in-cache MSHR storage). In a fully associative cache any
        // line can hold a pending fetch, so the limit is per *block*,
        // i.e. never binding.
        uint64_t set = geom_.fullyAssociative() ? blk
                                                : geom_.setIndex(addr);
        if (!mshrs_.canAddMiss()) {
            structStall(t, mshrs_.missFreeCycle(), stalled);
            continue;
        }
        if (mshrs_.canAllocate(set)) {
            // The miss leaves L1 one cycle after the probe, enters
            // the downward channel (queueing shows up as a later
            // send), and the level below answers with the arrival
            // cycle, recursively.
            uint64_t sent = down_.send(t + 1);
            uint64_t complete =
                next_->fetchLine(blk,
                                 static_cast<unsigned>(geom_.lineBytes()),
                                 sent, /*count_mem_fetch=*/true) +
                policy_.fillExtraCycles;
            Mshr &m = mshrs_.allocate(blk, set, complete);
            m.addDest(dest_linear, off, size);
            mshrs_.noteMissAdded();
            mshrs_.updatePeaks();
            if (inverted_)
                inverted_->allocate(dest_linear, blk, off, size);
            if (is_store)
                ++stats_.storePrimaryMisses;
            else
                ++stats_.primaryMisses;
            ++stats_.fetches;
            tracker_.fetches.increment(t);
            tracker_.misses.increment(t);
            if (pf_active_) {
                if (pf_victims_.erase(blk) > 0)
                    ++pf_.evictHarm;
                issuePrefetches(blk, t);
            }
            return {t, complete, t + 1, AccessKind::Primary, stalled};
        }

        // No MSHR (or per-set slot) available: structural-stall miss.
        structStall(t, mshrs_.allocFreeCycle(set), stalled);
    }
}

void
NonblockingCache::issuePrefetches(uint64_t blk, uint64_t t)
{
    int64_t stride = int64_t(geom_.lineBytes());
    if (pf_cfg_.mode == nbl::policy::PrefetchMode::Stride) {
        // Global stride detector: issue only once the same non-zero
        // block delta has been seen on two consecutive demand misses.
        int64_t delta = int64_t(blk - pf_last_blk_);
        bool confirmed =
            pf_have_last_ && delta != 0 && delta == pf_last_delta_;
        pf_last_delta_ = pf_have_last_ ? delta : 0;
        pf_last_blk_ = blk;
        pf_have_last_ = true;
        if (!confirmed)
            return;
        stride = delta;
    }
    for (unsigned k = 1; k <= pf_cfg_.degree; ++k) {
        uint64_t cand = blk + uint64_t(stride) * k;
        // Already resident or already being fetched: nothing to do.
        // The probe must not disturb LRU state (present(), not
        // lookup()): a prefetch probe is not a demand reference.
        if (tags_.present(cand) || mshrs_.findBlock(cand))
            continue;
        uint64_t set =
            geom_.fullyAssociative() ? cand : geom_.setIndex(cand);
        // Spare-MSHR contract: a prefetch may only use capacity a
        // demand miss could not want right now -- and the mc=
        // organizations express their register count as the miss cap
        // (numMshrs unlimited, maxMisses = registers), so the cap
        // gates prefetch too. Denied, never stalled.
        if (!mshrs_.canAllocate(set) || !mshrs_.canAddMiss()) {
            ++pf_.mshrDenied;
            continue;
        }
        uint64_t sent = down_.send(t + 1);
        uint64_t complete =
            next_->fetchLine(cand,
                             static_cast<unsigned>(geom_.lineBytes()),
                             sent, /*count_mem_fetch=*/true) +
            policy_.fillExtraCycles;
        Mshr &m = mshrs_.allocate(cand, set, complete);
        m.markPrefetch();
        // The register itself is the occupied resource: hold one miss
        // slot for the fetch's lifetime (released by popCompleted).
        mshrs_.noteMissAdded();
        mshrs_.updatePeaks();
        ++stats_.fetches;
        tracker_.fetches.increment(t);
        pf_victims_.erase(cand); // Fetched back; no longer harmable.
        pf_inflight_.insert(cand);
        ++pf_.issued;
    }
}

AccessOutcome
NonblockingCache::loadSlow(uint64_t addr, unsigned size, uint64_t now,
                           unsigned dest_linear)
{
    expireUpTo(now);
    ++stats_.loads;

    if (policy_.blocking())
        return blockingLoad(addr, now);

    if (tags_.lookup(addr)) {
        ++stats_.loadHits;
        if (pf_active_ && pf_resident_.erase(geom_.blockAddr(addr)) > 0)
            ++pf_.useful;
        return {now, now + 1, now + 1, AccessKind::Hit, false};
    }
    return missPath(addr, size, now, dest_linear, /*is_store=*/false,
                    false);
}

AccessOutcome
NonblockingCache::storeAllocate(uint64_t addr, unsigned size,
                                uint64_t now)
{
    // Non-blocking fetch-on-write (paper section 1, first method):
    // the data waits in a write-buffer entry while the line is
    // fetched through the normal miss machinery. A free write-buffer
    // destination entry is a resource like any other: none free is a
    // structural hazard.
    uint64_t t = now;
    bool stalled = false;
    for (;;) {
        int entry = -1;
        uint64_t soonest = UINT64_MAX;
        for (unsigned i = 0; i < isa::numWriteBufferDests; ++i) {
            if (wb_dest_free_[i] <= t) {
                entry = int(i);
                break;
            }
            soonest = std::min(soonest, wb_dest_free_[i]);
        }
        if (entry < 0) {
            structStall(t, soonest, stalled);
            continue;
        }
        AccessOutcome out = missPath(addr, size, t,
                                     isa::writeBufferDest(unsigned(entry)),
                                     /*is_store=*/true, stalled);
        if (out.kind != AccessKind::Hit)
            wb_dest_free_[unsigned(entry)] = out.dataReady;
        // The processor itself never waits on the buffered data.
        out.procFreeAt = out.issueCycle + 1;
        if (out.structStalled)
            ++stats_.storeStructStalls;
        wbuf_.push(geom_.blockAddr(addr), out.issueCycle);
        return out;
    }
}

AccessOutcome
NonblockingCache::store(uint64_t addr, unsigned size, uint64_t now)
{
    expireUpTo(now);
    ++stats_.stores;

    uint64_t blk = geom_.blockAddr(addr);
    if (tags_.lookup(addr)) {
        // Write-through: update the line and send the data onward.
        ++stats_.storeHits;
        if (pf_active_ && pf_resident_.erase(blk) > 0)
            ++pf_.useful;
        wbuf_.push(blk, now);
        return {now, now + 1, now + 1, AccessKind::Hit, false};
    }

    ++stats_.storeMisses;

    if (policy_.writeMissAllocate()) {
        // Blocking fetch-on-write: stall for the fill, then write
        // through it ("mc=0 +wma").
        AccessOutcome out = blockingFill(addr, now, false);
        wbuf_.push(blk, out.procFreeAt);
        return out;
    }

    if (!policy_.blocking() &&
        policy_.storeMode == StoreMode::WriteAllocate) {
        return storeAllocate(addr, size, now);
    }

    // Write-around: the data goes straight to the next level; the
    // cache is not filled and the processor does not stall.
    wbuf_.push(blk, now);
    return {now, now + 1, now + 1, AccessKind::Primary, false};
}

unsigned
NonblockingCache::maxInflightMisses() const
{
    return std::max(mshrs_.maxMisses(), tracker_.misses.maxSeen());
}

HierarchySnapshot
NonblockingCache::hierarchyStats() const
{
    HierarchySnapshot snap;
    snap.active = hierarchy_active_;
    if (level_views_.empty()) {
        // No lower cache levels: down_ is the channel into memory.
        snap.memChannel = down_.stats();
        return snap;
    }
    snap.levels.reserve(level_views_.size());
    for (size_t i = 0; i < level_views_.size(); ++i) {
        LevelStats s = level_views_[i]->stats();
        // Each level's feeding channel lives in the requester above.
        s.inChannel = i == 0 ? down_.stats()
                             : level_views_[i - 1]->downChannelStats();
        snap.levels.push_back(s);
    }
    snap.memChannel = level_views_.back()->downChannelStats();
    return snap;
}

} // namespace nbl::core
