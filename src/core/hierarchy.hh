/**
 * @file
 * Memory-hierarchy configuration vocabulary.
 *
 * The paper models a single data cache in front of a fully pipelined
 * constant-penalty memory, so a fetch's completion cycle is known the
 * moment it is issued. A HierarchyConfig generalizes the memory side
 * to a level-agnostic L1 -> L2 -> ... -> memory chain: each lower
 * cache level gets its own geometry, MSHR organization and line size,
 * and every hop between levels is a channel with a finite initiation
 * interval (a queueing model, not a constant), so MSHR saturation can
 * arrive from below (docs/MODEL.md, "Memory hierarchy").
 *
 * The default-constructed HierarchyConfig is *degenerate*: no lower
 * cache levels and fully pipelined channels. A degenerate chain
 * reproduces the paper's constant-penalty timing bit for bit -- that
 * equivalence is the safety net the refactor is gated on
 * (tools/check.sh's byte-identical figure stdout check).
 */

#ifndef NBL_CORE_HIERARCHY_HH
#define NBL_CORE_HIERARCHY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/policy.hh"

namespace nbl::core
{

/**
 * One cache level below L1 (L2, L3, ...). Geometry fields are plain
 * numbers, validated when the level is built (mem::CacheGeometry);
 * that keeps the config serializable without pulling geometry state
 * into every key.
 */
struct LevelConfig
{
    uint64_t cacheBytes = 64 * 1024;
    uint64_t lineBytes = 32;
    unsigned ways = 4; ///< 0 = fully associative.
    /**
     * MSHR organization of this level. Must be a non-blocking
     * MshrFile policy: the blocking modes describe a processor stall
     * contract that has no meaning below L1, and the inverted MSHR's
     * register-destination bookkeeping only exists at L1.
     */
    MshrPolicy policy;
    /** Cycles a probe of this level takes (charged on every request:
     *  it is the hit latency, and misses pay it before the fetch is
     *  sent down). */
    unsigned hitLatency = 4;
    /**
     * Initiation interval of the channel *into* this level: a new
     * miss request may enter the channel at most every
     * channelInterval cycles. 0 = fully pipelined (no queueing).
     */
    unsigned channelInterval = 0;
};

/** The memory side below L1: cache levels (innermost first), then
 *  main memory behind one last channel. */
struct HierarchyConfig
{
    /** Lower cache levels, L2 first. Empty = L1 talks to memory. */
    std::vector<LevelConfig> levels;
    /** Initiation interval of the channel into main memory (the hop
     *  below the last cache level, or below L1 when `levels` is
     *  empty). 0 = fully pipelined, the paper's model. */
    unsigned memChannelInterval = 0;

    /** True when the chain is the paper's single-level model: no
     *  lower levels, no bandwidth limit. */
    bool
    degenerate() const
    {
        return levels.empty() && memChannelInterval == 0;
    }
};

/**
 * Canonical serialization of a hierarchy (every field, including the
 * per-level policies). Equal keys describe machines with bit-identical
 * memory-side timing; the degenerate hierarchy serializes to "" so
 * existing single-level experiment keys are unchanged.
 */
std::string hierarchyKey(const HierarchyConfig &h);

/** Die unless `h` is simulatable: per-level policies are non-blocking
 *  MshrFile organizations with at least one MSHR and a usable per-set
 *  limit. Geometry is validated by mem::CacheGeometry at build time. */
void validateHierarchy(const HierarchyConfig &h);

} // namespace nbl::core

#endif // NBL_CORE_HIERARCHY_HH
