#include "core/hierarchy.hh"

#include "util/log.hh"

namespace nbl::core
{

std::string
hierarchyKey(const HierarchyConfig &h)
{
    if (h.degenerate())
        return "";
    std::string key = strfmt("M%u", h.memChannelInterval);
    for (const LevelConfig &lv : h.levels) {
        const MshrPolicy &p = lv.policy;
        key += strfmt(
            ":L%llu.%llu.%u.%u.%u"
            "P%d.%d.%d.%d.%d.%d.%d.%d.%u",
            static_cast<unsigned long long>(lv.cacheBytes),
            static_cast<unsigned long long>(lv.lineBytes), lv.ways,
            lv.hitLatency, lv.channelInterval, int(p.mode), p.numMshrs,
            p.maxMisses, p.subBlocks, p.missesPerSubBlock,
            p.fetchesPerSet, int(p.fetchesPerSetTracksWays),
            int(p.storeMode), p.fillExtraCycles);
    }
    return key;
}

void
validateHierarchy(const HierarchyConfig &h)
{
    for (size_t i = 0; i < h.levels.size(); ++i) {
        const MshrPolicy &p = h.levels[i].policy;
        if (p.mode != CacheMode::MshrFile)
            fatal("hierarchy level %zu: lower levels must use the "
                  "MshrFile mode (blocking and inverted organizations "
                  "are L1 contracts)",
                  i + 2);
        if (p.numMshrs == 0)
            fatal("hierarchy level %zu with zero MSHRs cannot make "
                  "progress", i + 2);
        if (p.fetchesPerSet == 0)
            fatal("hierarchy level %zu: fetchesPerSet of zero cannot "
                  "make progress", i + 2);
    }
}

} // namespace nbl::core
