/**
 * @file
 * A single Miss Status Holding Register (Kroft 1981).
 *
 * One MSHR tracks one outstanding fetch: the block request address and
 * a set of destination fields describing the load misses merged into
 * the fetch. The field organization (implicitly addressed, explicitly
 * addressed, or hybrid; paper sections 2.1-2.2 and Figure 14) is
 * expressed by MshrPolicy::subBlocks / missesPerSubBlock and decides
 * when a new miss to the block can be merged (secondary miss) versus
 * when it must stall the processor (structural-stall miss).
 */

#ifndef NBL_CORE_MSHR_HH
#define NBL_CORE_MSHR_HH

#include <cstdint>
#include <vector>

#include "core/policy.hh"

namespace nbl::core
{

/** One destination field: a register waiting on part of the block. */
struct MshrDest
{
    unsigned destLinear;   ///< Linear register/destination number.
    unsigned offsetInBlock;///< Byte offset of the data within the block.
    unsigned size;         ///< Access size in bytes ("format" info).
};

/** One in-flight fetch and the misses merged into it. */
class Mshr
{
  public:
    /**
     * @param block_addr Block request address.
     * @param set_index Cache set the block maps to.
     * @param complete_cycle Cycle at which the fetched block arrives.
     * @param line_bytes Cache line size (for sub-block arithmetic).
     * @param policy Field organization limits.
     */
    Mshr(uint64_t block_addr, uint64_t set_index, uint64_t complete_cycle,
         unsigned line_bytes, const MshrPolicy &policy);

    uint64_t blockAddr() const { return block_addr_; }
    uint64_t setIndex() const { return set_index_; }
    uint64_t completeCycle() const { return complete_cycle_; }

    /**
     * Could a miss covering [offset, offset + size) within the block be
     * merged as a secondary miss, or would it exhaust the destination
     * fields (a structural-stall miss)?
     */
    bool canAccept(unsigned offset, unsigned size) const;

    /** Merge a miss; canAccept must have returned true. */
    void addDest(unsigned dest_linear, unsigned offset, unsigned size);

    /** Number of misses merged into this fetch (>= 1 once used). */
    unsigned numDests() const { return unsigned(dests_.size()); }

    const std::vector<MshrDest> &dests() const { return dests_; }

    /** Mark this fetch as prefetch-initiated: it carries no
     *  destination fields unless a demand miss later merges in
     *  (src/policy/stall_policy.hh). */
    void markPrefetch() { prefetch_ = true; }
    bool isPrefetch() const { return prefetch_; }

  private:
    /** Range of sub-block slots covered by [offset, offset+size). */
    std::pair<unsigned, unsigned> subRange(unsigned offset,
                                           unsigned size) const;

    uint64_t block_addr_;
    uint64_t set_index_;
    uint64_t complete_cycle_;
    unsigned line_bytes_;
    int sub_blocks_;            ///< Positional groups (>= 1).
    int misses_per_sub_;        ///< Capacity per group; -1 = unlimited.
    std::vector<uint16_t> sub_counts_;
    std::vector<MshrDest> dests_;
    bool prefetch_ = false;
};

} // namespace nbl::core

#endif // NBL_CORE_MSHR_HH
