/**
 * @file
 * Status-message and error helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for internal invariant violations (simulator bugs); it
 * aborts. fatal() is for user errors (bad configuration); it exits with
 * an error code. warn()/inform() report conditions without stopping.
 */

#ifndef NBL_UTIL_LOG_HH
#define NBL_UTIL_LOG_HH

#include <cstdarg>
#include <string>

namespace nbl
{

/** Print a message and abort; use for internal invariant violations. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a message and exit(1); use for user/configuration errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr and continue. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace nbl

#endif // NBL_UTIL_LOG_HH
