/**
 * @file
 * Minimal ASCII table printer used by the benchmark harness to render
 * the paper's figures and tables on stdout.
 */

#ifndef NBL_UTIL_TABLE_HH
#define NBL_UTIL_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nbl
{

/**
 * Column-aligned ASCII table. Build it row by row, then render. All
 * cells are strings; numeric helpers are provided for the common
 * formats used by the harness (fixed-point MCPI values and ratios).
 */
class Table
{
  public:
    explicit Table(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void separator();

    /** Render the table to a string. */
    std::string str() const;

    /** Render the table to stdout. */
    void print() const;

    /** Format a double with the given number of decimals. */
    static std::string num(double v, int decimals = 3);

    /** Format a ratio the way Fig 13 does (e.g. "1.4", "14", "2.9"). */
    static std::string ratio(double v);

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool is_separator = false;
    };

    std::string title_;
    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

} // namespace nbl

#endif // NBL_UTIL_TABLE_HH
