/**
 * @file
 * Environment-variable parsing with consistent falsiness.
 *
 * Every knob the simulator reads from the environment goes through
 * these helpers so that `VAR=0` and `VAR=` (set but empty) mean "off"
 * everywhere, instead of the getenv()!=nullptr trap where any set
 * value -- including "0" -- enables a feature.
 */

#ifndef NBL_UTIL_ENV_HH
#define NBL_UTIL_ENV_HH

#include <cstdint>
#include <string>

namespace nbl
{

/**
 * Boolean environment flag. Unset returns `def`; set-but-empty, "0",
 * "false", "no", and "off" (case-insensitive) return false; any other
 * value returns true.
 */
bool envFlag(const char *name, bool def = false);

/**
 * Integer environment knob. Unset, empty, or unparseable returns
 * `def`; otherwise the parsed value (which may be 0 -- callers decide
 * whether 0 is meaningful or "off").
 */
int64_t envInt(const char *name, int64_t def = 0);

/**
 * Floating-point environment knob. Unset, empty, or unparseable
 * returns `def`.
 */
double envDouble(const char *name, double def = 0.0);

/**
 * String environment knob. Unset or empty returns `def` (so
 * `NBL_STATS_DIR=` disables the export instead of producing paths
 * rooted at "/").
 */
std::string envString(const char *name, const std::string &def = {});

} // namespace nbl

#endif // NBL_UTIL_ENV_HH
