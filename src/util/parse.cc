#include "util/parse.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace nbl
{

namespace
{

/** Shared tail: conversion consumed the whole string, cleanly. */
bool
fullParse(const std::string &s, const char *end)
{
    return !s.empty() && end == s.c_str() + s.size() && errno == 0;
}

} // namespace

bool
parseInt64(const std::string &s, int64_t *out)
{
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(s.c_str(), &end, 0);
    if (!fullParse(s, end))
        return false;
    *out = int64_t(v);
    return true;
}

bool
parseUint64(const std::string &s, uint64_t *out)
{
    // strtoull accepts "-1" and wraps it; reject any '-' up front
    // (after optional leading whitespace, which strtoull also skips).
    size_t i = s.find_first_not_of(" \t");
    if (i == std::string::npos || s[i] == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 0);
    if (!fullParse(s, end))
        return false;
    *out = uint64_t(v);
    return true;
}

bool
parseDouble(const std::string &s, double *out)
{
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (!fullParse(s, end) || !std::isfinite(v))
        return false;
    *out = v;
    return true;
}

} // namespace nbl
