/**
 * @file
 * ASCII line-chart renderer.
 *
 * The paper's evaluation is mostly figures; the bench binaries
 * reproduce them as tables plus, via this class, as actual plots on
 * the terminal. Series are drawn with distinct marker characters and
 * a legend; axes are linear, sized to the data.
 */

#ifndef NBL_UTIL_CHART_HH
#define NBL_UTIL_CHART_HH

#include <string>
#include <utility>
#include <vector>

namespace nbl
{

/** Multi-series scatter/line chart rendered as text. */
class AsciiChart
{
  public:
    /**
     * @param width Plot-area width in columns (without axis labels).
     * @param height Plot-area height in rows.
     */
    AsciiChart(unsigned width = 60, unsigned height = 16,
               std::string x_label = "", std::string y_label = "");

    /** Add a series; points are (x, y). Marker is assigned a-z. */
    void addSeries(const std::string &label,
                   std::vector<std::pair<double, double>> points);

    /** Render the chart (axes, points, legend). */
    std::string str() const;

    /** Render to stdout. */
    void print() const;

  private:
    struct Series
    {
        std::string label;
        std::vector<std::pair<double, double>> points;
        char marker;
    };

    unsigned width_;
    unsigned height_;
    std::string x_label_;
    std::string y_label_;
    std::vector<Series> series_;
};

} // namespace nbl

#endif // NBL_UTIL_CHART_HH
