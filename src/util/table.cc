#include "util/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/log.hh"

namespace nbl
{

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(Row{std::move(cells), false});
}

void
Table::separator()
{
    rows_.push_back(Row{{}, true});
}

std::string
Table::str() const
{
    // Compute column widths across header and all rows.
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r.cells);

    auto fmt_row = [&](const std::vector<std::string> &cells) {
        std::string out;
        for (size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            // Left-align the first column (labels), right-align data.
            if (i == 0) {
                out += cell;
                out += std::string(widths[i] - cell.size(), ' ');
            } else {
                out += std::string(widths[i] - cell.size(), ' ');
                out += cell;
            }
            if (i + 1 < widths.size())
                out += "  ";
        }
        out += "\n";
        return out;
    };

    size_t total = 0;
    for (size_t w : widths)
        total += w;
    if (!widths.empty())
        total += 2 * (widths.size() - 1);

    std::string out;
    if (!title_.empty()) {
        out += title_;
        out += "\n";
        out += std::string(std::max(title_.size(), total), '=');
        out += "\n";
    }
    if (!header_.empty()) {
        out += fmt_row(header_);
        out += std::string(total, '-');
        out += "\n";
    }
    for (const auto &r : rows_) {
        if (r.is_separator) {
            out += std::string(total, '-');
            out += "\n";
        } else {
            out += fmt_row(r.cells);
        }
    }
    return out;
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
}

std::string
Table::num(double v, int decimals)
{
    return strfmt("%.*f", decimals, v);
}

std::string
Table::ratio(double v)
{
    // The paper prints ratios with two significant figures: "1.4",
    // "2.9", "14", "11", "9.8".
    if (v >= 9.95)
        return strfmt("%.0f", v);
    return strfmt("%.1f", v);
}

} // namespace nbl
