#include "util/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/log.hh"

namespace nbl
{

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(Row{std::move(cells), false});
}

void
Table::separator()
{
    rows_.push_back(Row{{}, true});
}

std::string
Table::str() const
{
    // Compute column widths across header and all rows.
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r.cells);

    size_t total = 0;
    for (size_t w : widths)
        total += w;
    if (!widths.empty())
        total += 2 * (widths.size() - 1);

    std::string out;
    // Reserve once: every rendered line (title, rule, header, rows) is
    // at most total+1 bytes wide, so appends below never reallocate.
    out.reserve((rows_.size() + 4) *
                (std::max(total, title_.size()) + 1));

    auto fmt_row = [&](const std::vector<std::string> &cells) {
        static const std::string empty;
        for (size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell =
                i < cells.size() ? cells[i] : empty;
            // Left-align the first column (labels), right-align data.
            if (i == 0) {
                out += cell;
                out.append(widths[i] - cell.size(), ' ');
            } else {
                out.append(widths[i] - cell.size(), ' ');
                out += cell;
            }
            if (i + 1 < widths.size())
                out += "  ";
        }
        out += '\n';
    };

    if (!title_.empty()) {
        out += title_;
        out += '\n';
        out.append(std::max(title_.size(), total), '=');
        out += '\n';
    }
    if (!header_.empty()) {
        fmt_row(header_);
        out.append(total, '-');
        out += '\n';
    }
    for (const auto &r : rows_) {
        if (r.is_separator) {
            out.append(total, '-');
            out += '\n';
        } else {
            fmt_row(r.cells);
        }
    }
    return out;
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
}

std::string
Table::num(double v, int decimals)
{
    return strfmt("%.*f", decimals, v);
}

std::string
Table::ratio(double v)
{
    // The paper prints ratios with two significant figures: "1.4",
    // "2.9", "14", "11", "9.8".
    if (v >= 9.95)
        return strfmt("%.0f", v);
    return strfmt("%.1f", v);
}

} // namespace nbl
