#include "util/chart.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/log.hh"

namespace nbl
{

AsciiChart::AsciiChart(unsigned width, unsigned height,
                       std::string x_label, std::string y_label)
    : width_(std::max(width, 16u)), height_(std::max(height, 6u)),
      x_label_(std::move(x_label)), y_label_(std::move(y_label))
{
}

void
AsciiChart::addSeries(const std::string &label,
                      std::vector<std::pair<double, double>> points)
{
    char marker = static_cast<char>('a' + series_.size() % 26);
    series_.push_back(Series{label, std::move(points), marker});
}

std::string
AsciiChart::str() const
{
    if (series_.empty())
        return "(empty chart)\n";

    double xmin = 1e300, xmax = -1e300, ymin = 0.0, ymax = -1e300;
    for (const Series &s : series_) {
        for (auto [x, y] : s.points) {
            xmin = std::min(xmin, x);
            xmax = std::max(xmax, x);
            ymax = std::max(ymax, y);
        }
    }
    if (xmax <= xmin)
        xmax = xmin + 1;
    if (ymax <= ymin)
        ymax = ymin + 1;
    ymax *= 1.05; // headroom so the top point is visible

    // Plot grid.
    std::vector<std::string> grid(height_, std::string(width_, ' '));
    auto plot = [&](double x, double y, char m) {
        unsigned cx = unsigned(std::lround((x - xmin) / (xmax - xmin) *
                                           (width_ - 1)));
        unsigned cy = unsigned(std::lround((y - ymin) / (ymax - ymin) *
                                           (height_ - 1)));
        unsigned row = height_ - 1 - std::min(cy, height_ - 1);
        unsigned col = std::min(cx, width_ - 1);
        char &cell = grid[row][col];
        cell = (cell == ' ' || cell == m) ? m : '*'; // overlap marker
    };

    // Linear interpolation between consecutive points of a series so
    // curves read as lines, then overdraw the data points.
    for (const Series &s : series_) {
        for (size_t i = 0; i + 1 < s.points.size(); ++i) {
            auto [x0, y0] = s.points[i];
            auto [x1, y1] = s.points[i + 1];
            int steps = int(width_);
            for (int k = 0; k <= steps; ++k) {
                double f = double(k) / steps;
                plot(x0 + f * (x1 - x0), y0 + f * (y1 - y0),
                     s.marker);
            }
        }
    }

    // Compose with a y-axis gutter. Reserve the whole canvas up front
    // (rows + axis + legend) so the appends never reallocate.
    std::string out;
    out.reserve((height_ + 4) * (width_ + 12) +
                series_.size() * 24 + y_label_.size() +
                x_label_.size());
    if (!y_label_.empty()) {
        out += y_label_;
        out += '\n';
    }
    for (unsigned r = 0; r < height_; ++r) {
        double yv = ymin + (ymax - ymin) *
                               double(height_ - 1 - r) / (height_ - 1);
        out += strfmt("%8.3f |", yv);
        out += grid[r];
        out += '\n';
    }
    out.append(8, ' ');
    out += '+';
    out.append(width_, '-');
    out += '\n';
    out += strfmt("%8s  %-8.3g%*s%8.3g", "", xmin,
                  int(width_) - 14, "", xmax);
    if (!x_label_.empty())
        out += "  " + x_label_;
    out += "\n  legend: ";
    for (const Series &s : series_)
        out += strfmt("%c=%s  ", s.marker, s.label.c_str());
    out += "(* = overlap)\n";
    return out;
}

void
AsciiChart::print() const
{
    std::fputs(str().c_str(), stdout);
}

} // namespace nbl
