#include "util/rng.hh"

#include "util/log.hh"

namespace nbl
{

uint64_t
Rng::next()
{
    uint64_t x = state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state = x;
    return x * 0x2545f4914f6cdd1dULL;
}

uint64_t
Rng::below(uint64_t bound)
{
    if (bound == 0)
        panic("Rng::below called with zero bound");
    // Modulo bias is negligible for the bounds used by the workload
    // generators (all far below 2^32).
    return next() % bound;
}

uint64_t
Rng::range(uint64_t lo, uint64_t hi)
{
    if (lo > hi)
        panic("Rng::range with lo > hi");
    return lo + below(hi - lo + 1);
}

double
Rng::real()
{
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Rng::chance(double p)
{
    return real() < p;
}

} // namespace nbl
