/**
 * @file
 * Small bit-manipulation helpers used by the cache geometry and MSHR
 * cost models.
 */

#ifndef NBL_UTIL_BITOPS_HH
#define NBL_UTIL_BITOPS_HH

#include <cstdint>

namespace nbl
{

/** True if x is a non-zero power of two. */
constexpr bool
isPow2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Floor of log base 2; log2i(0) is defined as 0. */
constexpr unsigned
log2i(uint64_t x)
{
    unsigned n = 0;
    while (x > 1) {
        x >>= 1;
        ++n;
    }
    return n;
}

/** Number of bits needed to represent values in [0, n). */
constexpr unsigned
bitsFor(uint64_t n)
{
    if (n <= 1)
        return 0;
    unsigned b = log2i(n);
    return (uint64_t{1} << b) == n ? b : b + 1;
}

/** Round x down to a multiple of align (align must be a power of two). */
constexpr uint64_t
alignDown(uint64_t x, uint64_t align)
{
    return x & ~(align - 1);
}

/** Round x up to a multiple of align (align must be a power of two). */
constexpr uint64_t
alignUp(uint64_t x, uint64_t align)
{
    return (x + align - 1) & ~(align - 1);
}

} // namespace nbl

#endif // NBL_UTIL_BITOPS_HH
