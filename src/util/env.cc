#include "util/env.hh"

#include <cctype>
#include <cstdlib>

namespace nbl
{

namespace
{

/** Lower-cased copy for the case-insensitive false spellings. */
std::string
lowered(const char *s)
{
    std::string out;
    for (; *s; ++s)
        out.push_back(char(std::tolower(static_cast<unsigned char>(*s))));
    return out;
}

} // namespace

bool
envFlag(const char *name, bool def)
{
    const char *s = std::getenv(name);
    if (!s)
        return def;
    std::string v = lowered(s);
    if (v.empty() || v == "0" || v == "false" || v == "no" ||
        v == "off")
        return false;
    return true;
}

int64_t
envInt(const char *name, int64_t def)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return def;
    char *end = nullptr;
    long long v = std::strtoll(s, &end, 10);
    while (*end == ' ' || *end == '\t')
        ++end;
    if (end == s || *end != '\0')
        return def; // Trailing garbage = unparseable, not a prefix.
    return int64_t(v);
}

double
envDouble(const char *name, double def)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return def;
    char *end = nullptr;
    double v = std::strtod(s, &end);
    while (*end == ' ' || *end == '\t')
        ++end;
    if (end == s || *end != '\0')
        return def; // Trailing garbage = unparseable, not a prefix.
    return v;
}

std::string
envString(const char *name, const std::string &def)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return def;
    return s;
}

} // namespace nbl
