/**
 * @file
 * Deterministic pseudo-random number generator (xorshift64*).
 *
 * The simulator must be fully reproducible across runs and platforms, so
 * workload generators use this instead of std::mt19937 (whose
 * distributions are implementation-defined).
 */

#ifndef NBL_UTIL_RNG_HH
#define NBL_UTIL_RNG_HH

#include <cstdint>

namespace nbl
{

/**
 * xorshift64* generator with helpers for bounded draws. All workload
 * randomness flows through this class so that every experiment is
 * bit-reproducible.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform draw in [0, bound); bound must be non-zero. */
    uint64_t below(uint64_t bound);

    /** Uniform draw in [lo, hi] inclusive. */
    uint64_t range(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double real();

    /** Bernoulli draw with probability p of returning true. */
    bool chance(double p);

  private:
    uint64_t state;
};

} // namespace nbl

#endif // NBL_UTIL_RNG_HH
