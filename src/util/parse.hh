/**
 * @file
 * Strict full-string numeric parsing for CLI arguments.
 *
 * The C conversions the tools used before (atoi/atof, strtoull with a
 * null endptr) silently accept trailing garbage and coerce overflow,
 * so a typo like `--cache 8k` ran the default-adjacent experiment
 * instead of failing. These helpers accept a string only when the
 * ENTIRE string is one well-formed number in range; anything else --
 * empty input, trailing characters, overflow -- is a parse failure
 * the caller must handle.
 */

#ifndef NBL_UTIL_PARSE_HH
#define NBL_UTIL_PARSE_HH

#include <cstdint>
#include <string>

namespace nbl
{

/** Parse a signed decimal/hex (0x) integer; false unless the whole
 *  string converts without overflow. */
bool parseInt64(const std::string &s, int64_t *out);

/** Parse an unsigned decimal/hex (0x) integer; rejects leading '-'
 *  (strtoull would silently wrap it). */
bool parseUint64(const std::string &s, uint64_t *out);

/** Parse a finite floating-point number. */
bool parseDouble(const std::string &s, double *out);

} // namespace nbl

#endif // NBL_UTIL_PARSE_HH
