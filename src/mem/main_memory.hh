/**
 * @file
 * Timing model of main memory.
 *
 * The paper assumes a fully pipelined main memory: regardless of other
 * activity, a line fetch completes a constant number of cycles after it
 * is issued (paper section 3.1). The default penalty follows the
 * pipelined-bus model of section 5.2: 14 cycles for the first 16 bytes
 * plus 2 cycles per additional 16 bytes (16 cycles for 32-byte lines,
 * 14 for 16-byte lines). An explicit penalty override supports the
 * miss-penalty sweep of Figure 18.
 */

#ifndef NBL_MEM_MAIN_MEMORY_HH
#define NBL_MEM_MAIN_MEMORY_HH

#include <cstdint>

namespace nbl::mem
{

/** Fully pipelined constant-latency memory. */
class MainMemory
{
  public:
    /** Cycles until the first 16 bytes of a fetch return. */
    static constexpr unsigned defaultFirstChunkCycles = 14;
    /** Additional cycles per 16 bytes beyond the first. */
    static constexpr unsigned defaultPerChunkCycles = 2;
    static constexpr unsigned chunkBytes = 16;

    /** Memory with the paper's pipelined-bus latency model. */
    MainMemory() = default;

    /** Memory with a fixed, explicit miss penalty (Figure 18 sweeps). */
    explicit MainMemory(unsigned fixed_penalty)
        : fixed_penalty_(fixed_penalty)
    {}

    /** Miss penalty in cycles for fetching a line of line_bytes. */
    unsigned
    penalty(uint64_t line_bytes) const
    {
        if (fixed_penalty_ != 0)
            return fixed_penalty_;
        unsigned chunks = static_cast<unsigned>(
            (line_bytes + chunkBytes - 1) / chunkBytes);
        if (chunks == 0)
            chunks = 1;
        return defaultFirstChunkCycles +
               defaultPerChunkCycles * (chunks - 1);
    }

    /** Completion time of a fetch issued at issue_cycle. */
    uint64_t
    completeAt(uint64_t issue_cycle, uint64_t line_bytes) const
    {
        return issue_cycle + penalty(line_bytes);
    }

    /** Fetches issued (for stats). */
    uint64_t fetches() const { return fetches_; }
    void countFetch() { ++fetches_; }

  private:
    unsigned fixed_penalty_ = 0; ///< 0 selects the pipelined-bus model.
    uint64_t fetches_ = 0;
};

} // namespace nbl::mem

#endif // NBL_MEM_MAIN_MEMORY_HH
