#include "mem/cache_geometry.hh"

#include "util/bitops.hh"
#include "util/log.hh"

namespace nbl::mem
{

CacheGeometry::CacheGeometry(uint64_t size_bytes, uint64_t line_bytes,
                             unsigned ways)
    : size_(size_bytes), line_(line_bytes), ways_(ways)
{
    if (!isPow2(size_) || !isPow2(line_))
        fatal("cache size and line size must be powers of two");
    if (line_ > size_)
        fatal("cache line larger than the cache");
    if (ways_ == 0) {
        num_sets_ = 1;
    } else {
        if (size_ % (line_ * ways_) != 0)
            fatal("cache size not divisible by line size * ways");
        num_sets_ = size_ / (line_ * ways_);
        if (!isPow2(num_sets_))
            fatal("number of sets must be a power of two");
    }
    line_shift_ = log2i(line_);
    set_shift_ = log2i(num_sets_);
    set_mask_ = num_sets_ - 1;
}

std::string
CacheGeometry::str() const
{
    if (fullyAssociative()) {
        return strfmt("%lluB fully-associative, %lluB lines",
                      static_cast<unsigned long long>(size_),
                      static_cast<unsigned long long>(line_));
    }
    return strfmt("%lluB %u-way, %lluB lines, %llu sets",
                  static_cast<unsigned long long>(size_), ways_,
                  static_cast<unsigned long long>(line_),
                  static_cast<unsigned long long>(num_sets_));
}

} // namespace nbl::mem
