#include "mem/tag_array.hh"

#include "stats/registry.hh"

namespace nbl::mem
{

void
TagArray::Stats::registerStats(stats::Registry &r) const
{
    r.scalar("tag.fills", &fills, "fills", "s3.1");
    r.scalar("tag.conflict_evictions", &conflictEvictions, "evictions",
             "s4.2 (fig10)");
    r.scalar("tag.capacity_evictions", &capacityEvictions, "evictions",
             "s4.2 (fig10)");
}

TagArray::TagArray(const CacheGeometry &geom)
    : geom_(geom),
      ways_per_set_(geom.fullyAssociative()
                        ? static_cast<unsigned>(geom.numLines())
                        : geom.ways()),
      ways_(geom.numSets() * ways_per_set_)
{
}

bool
TagArray::present(uint64_t addr) const
{
    return find(addr) != nullptr;
}

std::optional<uint64_t>
TagArray::fill(uint64_t addr)
{
    ++stats_.fills;
    if (Way *w = find(addr)) {
        // Already present (e.g. two overlapping fetches of one block);
        // just refresh LRU.
        w->lru = ++lru_clock_;
        return std::nullopt;
    }

    uint64_t set = geom_.setIndex(addr);
    Way *base = &ways_[set * ways_per_set_];
    Way *victim = &base[0];
    for (unsigned w = 0; w < ways_per_set_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }

    std::optional<uint64_t> evicted;
    if (victim->valid) {
        evicted = victim->block_addr;
        // Conflict/capacity approximation (see Stats): room elsewhere
        // in the array means a same-size fully-associative cache
        // would not have evicted.
        if (valid_count_ < ways_.size())
            ++stats_.conflictEvictions;
        else
            ++stats_.capacityEvictions;
    } else {
        ++valid_count_;
    }
    victim->valid = true;
    victim->tag = geom_.tag(addr);
    victim->block_addr = geom_.blockAddr(addr);
    victim->lru = ++lru_clock_;
    return evicted;
}

void
TagArray::invalidate(uint64_t addr)
{
    if (Way *w = find(addr)) {
        w->valid = false;
        --valid_count_;
    }
}

void
TagArray::reset()
{
    for (Way &w : ways_)
        w.valid = false;
    lru_clock_ = 0;
    valid_count_ = 0;
}

} // namespace nbl::mem
