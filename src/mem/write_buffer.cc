#include "mem/write_buffer.hh"

#include <algorithm>
#include <string>

#include "stats/registry.hh"

namespace nbl::mem
{

void
WriteBuffer::Stats::registerStats(stats::Registry &r) const
{
    r.scalar("wbuf.writes", &writes, "writes", "s3.1");
    r.scalar("wbuf.merges", &merges, "writes", "s3.1");
    r.scalar("wbuf.retired", &retired, "entries", "s3.1");
    r.scalar("wbuf.max_occupancy", &maxOccupancy, "entries", "s3.1");
    r.scalar("wbuf.full_stall_cycles", &fullStallCycles, "cycles",
             "s3.1");
    r.histogram("wbuf.depth_on_push", "writes", "s3.1");
    for (unsigned i = 0; i < depthOnPush.size(); ++i) {
        r.bucket(i + 1 < depthOnPush.size() ? std::to_string(i) : "8+",
                 depthOnPush[i]);
    }
}

void
WriteBuffer::drain(uint64_t now)
{
    while (!fifo_.empty() && fifo_.front().second <= now) {
        fifo_.pop_front();
        ++stats_.retired;
    }
}

namespace
{

/** Histogram bucket for a buffer depth (top bucket is 8+). */
inline size_t
depthBucket(size_t depth)
{
    return std::min<size_t>(depth, 8);
}

} // namespace

uint64_t
WriteBuffer::push(uint64_t block_addr, uint64_t now)
{
    ++stats_.writes;
    if (retire_cycles_ == 0) {
        // Free retirement: the entry never actually occupies the
        // buffer. This is the paper's model.
        ++stats_.depthOnPush[0];
        return now;
    }

    drain(now);

    // Merge into a live entry for the same block, if any.
    for (auto &e : fifo_) {
        if (e.first == block_addr) {
            ++stats_.merges;
            ++stats_.depthOnPush[depthBucket(fifo_.size())];
            return now;
        }
    }

    uint64_t start = now;
    if (capacity_ != 0 && fifo_.size() >= capacity_) {
        // Stall until the oldest entry retires.
        uint64_t free_at = fifo_.front().second;
        stats_.fullStallCycles += free_at - now;
        start = free_at;
        drain(start);
    }

    uint64_t begin = std::max(start, next_retire_free_);
    uint64_t done = begin + retire_cycles_;
    next_retire_free_ = done;
    fifo_.emplace_back(block_addr, done);
    ++stats_.depthOnPush[depthBucket(fifo_.size())];
    stats_.maxOccupancy = std::max<uint64_t>(stats_.maxOccupancy,
                                             fifo_.size());
    return start;
}

unsigned
WriteBuffer::occupancy(uint64_t now) const
{
    unsigned n = 0;
    for (const auto &e : fifo_)
        if (e.second > now)
            ++n;
    return n;
}

} // namespace nbl::mem
