#include "mem/write_buffer.hh"

#include <algorithm>

namespace nbl::mem
{

void
WriteBuffer::drain(uint64_t now)
{
    while (!fifo_.empty() && fifo_.front().second <= now)
        fifo_.pop_front();
}

uint64_t
WriteBuffer::push(uint64_t block_addr, uint64_t now)
{
    ++stats_.writes;
    if (retire_cycles_ == 0) {
        // Free retirement: the entry never actually occupies the
        // buffer. This is the paper's model.
        return now;
    }

    drain(now);

    // Merge into a live entry for the same block, if any.
    for (auto &e : fifo_) {
        if (e.first == block_addr) {
            ++stats_.merges;
            return now;
        }
    }

    uint64_t start = now;
    if (capacity_ != 0 && fifo_.size() >= capacity_) {
        // Stall until the oldest entry retires.
        uint64_t free_at = fifo_.front().second;
        stats_.fullStallCycles += free_at - now;
        start = free_at;
        drain(start);
    }

    uint64_t begin = std::max(start, next_retire_free_);
    uint64_t done = begin + retire_cycles_;
    next_retire_free_ = done;
    fifo_.emplace_back(block_addr, done);
    stats_.maxOccupancy = std::max<uint64_t>(stats_.maxOccupancy,
                                             fifo_.size());
    return start;
}

unsigned
WriteBuffer::occupancy(uint64_t now) const
{
    unsigned n = 0;
    for (const auto &e : fifo_)
        if (e.second > now)
            ++n;
    return n;
}

} // namespace nbl::mem
