/**
 * @file
 * Cache tag array with LRU replacement.
 *
 * Supports direct-mapped, set-associative, and fully-associative
 * organizations through CacheGeometry. Only tags are stored; data is
 * functional and lives in SparseMemory.
 */

#ifndef NBL_MEM_TAG_ARRAY_HH
#define NBL_MEM_TAG_ARRAY_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/cache_geometry.hh"

namespace nbl::stats
{
class Registry;
}

namespace nbl::mem
{

/**
 * Tag store with per-set LRU. The non-blocking cache calls lookup() on
 * every access and fill() when a fetch completes.
 */
class TagArray
{
  public:
    /**
     * Tag-array occupancy counters, including the classical
     * conflict-vs-capacity *approximation*: an eviction that happens
     * while some line anywhere in the array is still invalid is
     * counted as a conflict eviction (a fully associative cache of
     * the same size would not yet have evicted anything); an eviction
     * from a completely full array is counted as capacity. Exact
     * classification would need a shadow fully-associative simulation
     * — this one-counter approximation is what Figure 10's
     * direct-mapped vs fully-associative comparison needs.
     */
    struct Stats
    {
        uint64_t fills = 0;
        uint64_t conflictEvictions = 0;
        uint64_t capacityEvictions = 0;

        /** Register the counters (docs/OBSERVABILITY.md). */
        void registerStats(stats::Registry &r) const;
    };

    explicit TagArray(const CacheGeometry &geom);

    const CacheGeometry &geometry() const { return geom_; }

    /**
     * Is the block containing addr present? Updates LRU state on a hit
     * when touch is set. Inline: this is the first step of every
     * cache access and the whole of a hit.
     */
    bool
    lookup(uint64_t addr, bool touch = true)
    {
        Way *w = find(addr);
        if (!w)
            return false;
        if (touch)
            w->lru = ++lru_clock_;
        return true;
    }

    /** Present check without LRU side effects. */
    bool present(uint64_t addr) const;

    /**
     * Install the block containing addr, evicting the LRU victim in its
     * set if the set is full.
     * @return the block address of the evicted line, if any.
     */
    std::optional<uint64_t> fill(uint64_t addr);

    /** Drop the block containing addr if present. */
    void invalidate(uint64_t addr);

    /** Invalidate everything (counters are kept). */
    void reset();

    /** Number of valid lines (O(1)). */
    uint64_t numValid() const { return valid_count_; }

    const Stats &stats() const { return stats_; }

  private:
    struct Way
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t block_addr = 0;
        uint64_t lru = 0;
    };

    Way *
    find(uint64_t addr)
    {
        uint64_t set = geom_.setIndex(addr);
        uint64_t tag = geom_.tag(addr);
        Way *base = &ways_[set * ways_per_set_];
        for (unsigned w = 0; w < ways_per_set_; ++w) {
            if (base[w].valid && base[w].tag == tag)
                return &base[w];
        }
        return nullptr;
    }

    const Way *
    find(uint64_t addr) const
    {
        return const_cast<TagArray *>(this)->find(addr);
    }

    CacheGeometry geom_;
    unsigned ways_per_set_;
    std::vector<Way> ways_;   ///< num_sets * ways_per_set_, set-major.
    uint64_t lru_clock_ = 0;
    uint64_t valid_count_ = 0;
    Stats stats_;
};

} // namespace nbl::mem

#endif // NBL_MEM_TAG_ARRAY_HH
