/**
 * @file
 * Cache tag array with LRU replacement.
 *
 * Supports direct-mapped, set-associative, and fully-associative
 * organizations through CacheGeometry. Only tags are stored; data is
 * functional and lives in SparseMemory.
 */

#ifndef NBL_MEM_TAG_ARRAY_HH
#define NBL_MEM_TAG_ARRAY_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/cache_geometry.hh"

namespace nbl::mem
{

/**
 * Tag store with per-set LRU. The non-blocking cache calls lookup() on
 * every access and fill() when a fetch completes.
 */
class TagArray
{
  public:
    explicit TagArray(const CacheGeometry &geom);

    const CacheGeometry &geometry() const { return geom_; }

    /**
     * Is the block containing addr present? Updates LRU state on a hit
     * when touch is set.
     */
    bool lookup(uint64_t addr, bool touch = true);

    /** Present check without LRU side effects. */
    bool present(uint64_t addr) const;

    /**
     * Install the block containing addr, evicting the LRU victim in its
     * set if the set is full.
     * @return the block address of the evicted line, if any.
     */
    std::optional<uint64_t> fill(uint64_t addr);

    /** Drop the block containing addr if present. */
    void invalidate(uint64_t addr);

    /** Invalidate everything. */
    void reset();

    /** Number of valid lines (for tests). */
    uint64_t numValid() const;

  private:
    struct Way
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t block_addr = 0;
        uint64_t lru = 0;
    };

    Way *find(uint64_t addr);
    const Way *find(uint64_t addr) const;

    CacheGeometry geom_;
    unsigned ways_per_set_;
    std::vector<Way> ways_;   ///< num_sets * ways_per_set_, set-major.
    uint64_t lru_clock_ = 0;
};

} // namespace nbl::mem

#endif // NBL_MEM_TAG_ARRAY_HH
