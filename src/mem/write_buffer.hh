/**
 * @file
 * Write buffer model.
 *
 * The paper places a write buffer between the write-through data cache
 * and the rest of the hierarchy and assumes writes retire for free
 * (section 3.1), so the buffer never causes stalls in the baseline
 * model. This class still tracks occupancy against a finite capacity so
 * that (a) stats on write traffic and merging are available, and (b) a
 * bounded, stalling configuration can be studied as an extension.
 */

#ifndef NBL_MEM_WRITE_BUFFER_HH
#define NBL_MEM_WRITE_BUFFER_HH

#include <array>
#include <cstdint>
#include <deque>

namespace nbl::stats
{
class Registry;
}

namespace nbl::mem
{

/**
 * FIFO write buffer with optional finite retirement bandwidth. With the
 * default settings (free retirement) it never stalls the processor,
 * matching the paper's model.
 */
class WriteBuffer
{
  public:
    struct Stats
    {
        uint64_t writes = 0;        ///< Entries pushed.
        uint64_t merges = 0;        ///< Writes merged into a live entry.
        uint64_t retired = 0;       ///< Entries drained to the next level.
        uint64_t maxOccupancy = 0;  ///< High-water mark.
        uint64_t fullStallCycles = 0;
        /**
         * Buffer depth observed by each push, *after* the push took
         * effect (bucket 8 = 8-or-deeper). Under the paper's free
         * retirement every write lands in bucket 0 — the histogram is
         * the evidence the baseline write buffer never queues.
         * Sums to `writes`.
         */
        std::array<uint64_t, 9> depthOnPush{};

        /** Register the counters (docs/OBSERVABILITY.md). */
        void registerStats(stats::Registry &r) const;
    };

    /**
     * @param entries Capacity; 0 means unbounded.
     * @param retire_cycles Cycles to retire one entry; 0 means free
     *        (retire instantly), the paper's assumption.
     */
    explicit WriteBuffer(unsigned entries = 0, unsigned retire_cycles = 0)
        : capacity_(entries), retire_cycles_(retire_cycles)
    {}

    /**
     * Record a write at time now.
     * @return the cycle at which the processor may proceed (== now
     *         unless the buffer is full under a finite configuration).
     */
    uint64_t push(uint64_t block_addr, uint64_t now);

    /** Entries still in flight at time now. */
    unsigned occupancy(uint64_t now) const;

    const Stats &stats() const { return stats_; }

  private:
    void drain(uint64_t now);

    unsigned capacity_;
    unsigned retire_cycles_;
    /** (block address, retire-complete cycle) of in-flight entries. */
    std::deque<std::pair<uint64_t, uint64_t>> fifo_;
    uint64_t next_retire_free_ = 0;
    Stats stats_;
};

} // namespace nbl::mem

#endif // NBL_MEM_WRITE_BUFFER_HH
