/**
 * @file
 * Cache geometry: address <-> (tag, set, offset) arithmetic.
 */

#ifndef NBL_MEM_CACHE_GEOMETRY_HH
#define NBL_MEM_CACHE_GEOMETRY_HH

#include <cstdint>
#include <string>

namespace nbl::mem
{

/**
 * Geometry of a cache: total size, line size, and associativity.
 * An associativity of 0 means fully associative.
 */
class CacheGeometry
{
  public:
    /**
     * @param size_bytes Total data capacity in bytes (power of two).
     * @param line_bytes Line size in bytes (power of two).
     * @param ways Associativity; 0 means fully associative.
     */
    CacheGeometry(uint64_t size_bytes, uint64_t line_bytes,
                  unsigned ways = 1);

    uint64_t sizeBytes() const { return size_; }
    uint64_t lineBytes() const { return line_; }
    unsigned ways() const { return ways_; }
    uint64_t numLines() const { return size_ / line_; }
    uint64_t numSets() const { return num_sets_; }
    bool fullyAssociative() const { return ways_ == 0; }

    /** Block (line) address: the address with the offset bits cleared. */
    uint64_t
    blockAddr(uint64_t addr) const
    {
        return addr & ~(line_ - 1);
    }

    /** Set index for an address (0 for fully associative caches). */
    uint64_t
    setIndex(uint64_t addr) const
    {
        // Sizes are powers of two (checked in the constructor), so
        // the div/mod chain is shift/mask on the tag-lookup hot path.
        // Fully associative: set_mask_ is 0, so this returns 0.
        return (addr >> line_shift_) & set_mask_;
    }

    /** Tag for an address. */
    uint64_t
    tag(uint64_t addr) const
    {
        // Fully associative: set_shift_ is 0, so this is addr / line.
        return addr >> (line_shift_ + set_shift_);
    }

    /** Byte offset within the line. */
    uint64_t
    offset(uint64_t addr) const
    {
        return addr & (line_ - 1);
    }

    /**
     * Sub-block index within the line, for an MSHR organization with
     * num_sub_blocks destination slots per line.
     */
    unsigned
    subBlock(uint64_t addr, unsigned num_sub_blocks) const
    {
        uint64_t gran = line_ / num_sub_blocks;
        return static_cast<unsigned>(offset(addr) / gran);
    }

    std::string str() const;

  private:
    uint64_t size_;
    uint64_t line_;
    unsigned ways_;
    uint64_t num_sets_;
    unsigned line_shift_ = 0;  ///< log2(line_).
    unsigned set_shift_ = 0;   ///< log2(num_sets_).
    uint64_t set_mask_ = 0;    ///< num_sets_ - 1.
};

} // namespace nbl::mem

#endif // NBL_MEM_CACHE_GEOMETRY_HH
