#include "mem/main_memory.hh"

// MainMemory is header-only today; this translation unit anchors the
// class for future extensions (banked or contended memory models).
