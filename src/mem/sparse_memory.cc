#include "mem/sparse_memory.hh"

#include <bit>
#include <cstring>

#include "util/log.hh"

namespace nbl::mem
{

uint8_t
SparseMemory::peek(uint64_t addr) const
{
    auto it = pages.find(addr / pageBytes);
    if (it == pages.end())
        return 0;
    return (*it->second)[addr % pageBytes];
}

void
SparseMemory::poke(uint64_t addr, uint8_t value)
{
    pageFor(addr)[addr % pageBytes] = value;
}

SparseMemory::Page &
SparseMemory::pageFor(uint64_t addr)
{
    auto &slot = pages[addr / pageBytes];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

uint64_t
SparseMemory::read(uint64_t addr, unsigned size) const
{
    if (size != 1 && size != 2 && size != 4 && size != 8)
        panic("SparseMemory::read with bad size %u", size);
    uint64_t v = 0;
    // Fast path: access within one page.
    uint64_t off = addr % pageBytes;
    if (off + size <= pageBytes) {
        auto it = pages.find(addr / pageBytes);
        if (it == pages.end())
            return 0;
        for (unsigned i = 0; i < size; ++i)
            v |= uint64_t((*it->second)[off + i]) << (8 * i);
        return v;
    }
    for (unsigned i = 0; i < size; ++i)
        v |= uint64_t(peek(addr + i)) << (8 * i);
    return v;
}

void
SparseMemory::write(uint64_t addr, unsigned size, uint64_t value)
{
    if (size != 1 && size != 2 && size != 4 && size != 8)
        panic("SparseMemory::write with bad size %u", size);
    uint64_t off = addr % pageBytes;
    if (off + size <= pageBytes) {
        Page &p = pageFor(addr);
        for (unsigned i = 0; i < size; ++i)
            p[off + i] = uint8_t(value >> (8 * i));
        return;
    }
    for (unsigned i = 0; i < size; ++i)
        poke(addr + i, uint8_t(value >> (8 * i)));
}

double
SparseMemory::readF64(uint64_t addr) const
{
    return std::bit_cast<double>(read(addr, 8));
}

void
SparseMemory::writeF64(uint64_t addr, double value)
{
    write(addr, 8, std::bit_cast<uint64_t>(value));
}

uint64_t
SparseMemory::checksum() const
{
    // FNV-1a over (page number, page bytes), combined order-independently
    // by summing per-page hashes.
    uint64_t total = 0;
    for (const auto &[pn, page] : pages) {
        uint64_t h = 1469598103934665603ULL ^ pn;
        for (uint8_t b : *page) {
            h ^= b;
            h *= 1099511628211ULL;
        }
        total += h;
    }
    return total;
}

uint64_t
SparseMemory::checksumRange(uint64_t start, uint64_t end) const
{
    uint64_t h = 1469598103934665603ULL;
    for (uint64_t a = start; a < end; ++a) {
        h ^= peek(a);
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace nbl::mem
