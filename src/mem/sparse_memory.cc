#include "mem/sparse_memory.hh"

#include <bit>
#include <cstring>

#include "util/log.hh"

namespace nbl::mem
{

SparseMemory::Page *
SparseMemory::findPage(uint64_t addr) const
{
    uint64_t page_no = addr / pageBytes;
    if (page_no == cached_page_no_)
        return cached_page_;
    auto it = pages.find(page_no);
    if (it == pages.end())
        return nullptr;
    cached_page_no_ = page_no;
    cached_page_ = it->second.get();
    return cached_page_;
}

uint8_t
SparseMemory::peek(uint64_t addr) const
{
    const Page *p = findPage(addr);
    return p ? (*p)[addr % pageBytes] : 0;
}

void
SparseMemory::poke(uint64_t addr, uint8_t value)
{
    pageFor(addr)[addr % pageBytes] = value;
}

SparseMemory::Page &
SparseMemory::pageFor(uint64_t addr)
{
    if (Page *p = findPage(addr))
        return *p;
    auto &slot = pages[addr / pageBytes];
    slot = std::make_unique<Page>();
    slot->fill(0);
    cached_page_no_ = addr / pageBytes;
    cached_page_ = slot.get();
    return *slot;
}

namespace
{

/** Little-endian load of size bytes (1..8) from p. */
inline uint64_t
loadLe(const uint8_t *p, unsigned size)
{
    if constexpr (std::endian::native == std::endian::little) {
        uint64_t v = 0;
        std::memcpy(&v, p, size);
        return v;
    } else {
        uint64_t v = 0;
        for (unsigned i = 0; i < size; ++i)
            v |= uint64_t(p[i]) << (8 * i);
        return v;
    }
}

/** Little-endian store of the low size bytes (1..8) of v to p. */
inline void
storeLe(uint8_t *p, unsigned size, uint64_t v)
{
    if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(p, &v, size);
    } else {
        for (unsigned i = 0; i < size; ++i)
            p[i] = uint8_t(v >> (8 * i));
    }
}

} // namespace

uint64_t
SparseMemory::read(uint64_t addr, unsigned size) const
{
    if (size != 1 && size != 2 && size != 4 && size != 8)
        panic("SparseMemory::read with bad size %u", size);
    // Fast path: access within one page.
    uint64_t off = addr % pageBytes;
    if (off + size <= pageBytes) {
        const Page *p = findPage(addr);
        return p ? loadLe(p->data() + off, size) : 0;
    }
    uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= uint64_t(peek(addr + i)) << (8 * i);
    return v;
}

void
SparseMemory::write(uint64_t addr, unsigned size, uint64_t value)
{
    if (size != 1 && size != 2 && size != 4 && size != 8)
        panic("SparseMemory::write with bad size %u", size);
    uint64_t off = addr % pageBytes;
    if (off + size <= pageBytes) {
        storeLe(pageFor(addr).data() + off, size, value);
        return;
    }
    for (unsigned i = 0; i < size; ++i)
        poke(addr + i, uint8_t(value >> (8 * i)));
}

double
SparseMemory::readF64(uint64_t addr) const
{
    return std::bit_cast<double>(read(addr, 8));
}

void
SparseMemory::writeF64(uint64_t addr, double value)
{
    write(addr, 8, std::bit_cast<uint64_t>(value));
}

uint64_t
SparseMemory::checksum() const
{
    // FNV-1a over (page number, page bytes), combined order-independently
    // by summing per-page hashes.
    uint64_t total = 0;
    for (const auto &[pn, page] : pages) {
        uint64_t h = 1469598103934665603ULL ^ pn;
        for (uint8_t b : *page) {
            h ^= b;
            h *= 1099511628211ULL;
        }
        total += h;
    }
    return total;
}

uint64_t
SparseMemory::checksumRange(uint64_t start, uint64_t end) const
{
    uint64_t h = 1469598103934665603ULL;
    for (uint64_t a = start; a < end; ++a) {
        h ^= peek(a);
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace nbl::mem
