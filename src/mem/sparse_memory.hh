/**
 * @file
 * Byte-addressable sparse functional memory.
 *
 * Holds the architectural memory state of the simulated program. It is
 * purely functional: timing lives in mem/main_memory.hh and
 * core/nonblocking_cache.hh. Pages are allocated lazily so workloads can
 * use widely separated address regions cheaply.
 */

#ifndef NBL_MEM_SPARSE_MEMORY_HH
#define NBL_MEM_SPARSE_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

namespace nbl::mem
{

/**
 * Sparse 64-bit byte-addressable memory backed by lazily allocated 4 KB
 * pages. Unwritten bytes read as zero.
 *
 * The last-touched page is cached so the common sequential-access
 * pattern skips the page-map lookup. The cache makes read() mutate
 * internal state: a SparseMemory is not safe for concurrent use, even
 * read-only (each simulation owns its memory image, so the parallel
 * sweep engine never shares one).
 */
class SparseMemory
{
  public:
    static constexpr uint64_t pageBytes = 4096;

    /** Read size bytes (1, 2, 4, or 8) little-endian, zero-extended. */
    uint64_t read(uint64_t addr, unsigned size) const;

    /** Write the low size bytes (1, 2, 4, or 8) of value little-endian. */
    void write(uint64_t addr, unsigned size, uint64_t value);

    /** Read a double stored with write64 of its bit pattern. */
    double readF64(uint64_t addr) const;

    /** Store a double's bit pattern. */
    void writeF64(uint64_t addr, double value);

    /** Number of pages currently allocated (for tests/diagnostics). */
    size_t numPages() const { return pages.size(); }

    /**
     * Checksum of all allocated pages (order independent). Used by
     * property tests to check that different schedules of the same
     * program leave identical architectural memory.
     */
    uint64_t checksum() const;

    /**
     * Checksum of an address range (inclusive start, exclusive end).
     * Unlike checksum(), ignores content outside [start, end), e.g.
     * spill slots that legitimately differ across schedules.
     */
    uint64_t checksumRange(uint64_t start, uint64_t end) const;

  private:
    using Page = std::array<uint8_t, pageBytes>;

    uint8_t peek(uint64_t addr) const;
    void poke(uint64_t addr, uint8_t value);
    Page &pageFor(uint64_t addr);

    /** The page holding addr, or nullptr if never written. Refreshes
     *  the last-touched cache on a hit. */
    Page *findPage(uint64_t addr) const;

    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages;

    // Last-touched page. Pages are heap-allocated and never freed or
    // reallocated while the map lives, so the pointer stays valid
    // across inserts (and across moves of the whole SparseMemory).
    // Only existing pages are cached: a cached "absent" entry would go
    // stale as soon as a write allocated the page.
    mutable uint64_t cached_page_no_ = ~uint64_t{0};
    mutable Page *cached_page_ = nullptr;
};

} // namespace nbl::mem

#endif // NBL_MEM_SPARSE_MEMORY_HH
