#include "workloads/workload.hh"

#include <unordered_map>

#include "util/log.hh"
#include "workloads/spec_detail.hh"

namespace nbl::workloads
{

const std::vector<std::string> &
workloadNames()
{
    // Figure 13 order.
    static const std::vector<std::string> names = {
        "alvinn", "doduc", "ear", "fpppp", "hydro2d", "mdljdp2",
        "mdljsp2", "nasa7", "ora", "su2cor", "swm256", "spice2g6",
        "tomcatv", "wave5", "compress", "eqntott", "espresso", "xlisp",
    };
    return names;
}

const std::vector<std::string> &
detailedWorkloadNames()
{
    static const std::vector<std::string> names = {
        "doduc", "eqntott", "su2cor", "tomcatv", "xlisp",
    };
    return names;
}

Workload
makeWorkload(const std::string &name, double scale)
{
    using Factory = Workload (*)(double);
    static const std::unordered_map<std::string, Factory> factories = {
        {"alvinn", detail::make_alvinn},
        {"compress", detail::make_compress},
        {"doduc", detail::make_doduc},
        {"ear", detail::make_ear},
        {"eqntott", detail::make_eqntott},
        {"espresso", detail::make_espresso},
        {"fpppp", detail::make_fpppp},
        {"hydro2d", detail::make_hydro2d},
        {"mdljdp2", detail::make_mdljdp2},
        {"mdljsp2", detail::make_mdljsp2},
        {"nasa7", detail::make_nasa7},
        {"ora", detail::make_ora},
        {"spice2g6", detail::make_spice2g6},
        {"su2cor", detail::make_su2cor},
        {"swm256", detail::make_swm256},
        {"tomcatv", detail::make_tomcatv},
        {"wave5", detail::make_wave5},
        {"xlisp", detail::make_xlisp},
    };
    auto it = factories.find(name);
    if (it == factories.end())
        fatal("unknown workload '%s'", name.c_str());
    if (scale <= 0.0)
        fatal("workload scale must be positive");
    return it->second(scale);
}

} // namespace nbl::workloads
