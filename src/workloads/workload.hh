/**
 * @file
 * Synthetic workload infrastructure.
 *
 * The paper evaluates 18 SPEC92 benchmarks compiled by the Multiflow
 * compiler and executed through an object-code translation system. We
 * have neither SPEC92 sources nor that toolchain, so each benchmark is
 * replaced by a synthetic generator that reproduces the *structural*
 * properties that drive non-blocking-load behaviour: data footprint,
 * miss rate, miss clustering, load->use dependence distance, set
 * conflicts, and instruction mix. DESIGN.md documents the substitution
 * rationale; each generator's comment cites the Figure 13 row it
 * targets.
 *
 * A Workload is a KernelProgram (compiled at each scheduled load
 * latency by the harness) plus a memory-image initializer.
 */

#ifndef NBL_WORKLOADS_WORKLOAD_HH
#define NBL_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "compiler/vir.hh"
#include "mem/sparse_memory.hh"

namespace nbl::workloads
{

/** A named region of simulated memory with a dependence-space id. */
struct Region
{
    uint64_t base = 0;
    uint64_t bytes = 0;
    int32_t space = -1;
};

/**
 * Bump allocator for simulated memory regions. Also hands out the
 * memory-dependence space ids the scheduler uses for alias analysis.
 * The area below the start address is reserved (spill area lives at
 * compiler::spillAreaBase).
 */
class AddressSpace
{
  public:
    explicit AddressSpace(uint64_t start = 0x100000) : cursor_(start) {}

    /**
     * Allocate a region.
     * @param bytes Region size.
     * @param align Base alignment (power of two). Aligning to the
     *        cache size forces regions onto the same cache sets
     *        (used by the su2cor-style conflict workloads).
     * @param phase Byte offset added after alignment.
     */
    Region alloc(uint64_t bytes, uint64_t align = 64, uint64_t phase = 0);

  private:
    uint64_t cursor_;
    int32_t next_space_ = 0;
};

/** A complete synthetic benchmark. */
struct Workload
{
    std::string name;
    compiler::KernelProgram program;
    /** Prepare the architectural memory image before a run. */
    std::function<void(mem::SparseMemory &)> init;

    /** Apply init to a fresh memory image. */
    mem::SparseMemory
    makeMemory() const
    {
        mem::SparseMemory m;
        if (init)
            init(m);
        return m;
    }
};

/** The 18 SPEC92 benchmark names, in Figure 13 order. */
const std::vector<std::string> &workloadNames();

/** The five benchmarks the paper discusses in detail. */
const std::vector<std::string> &detailedWorkloadNames();

/**
 * Build a workload by name.
 * @param name One of workloadNames().
 * @param scale Size multiplier on the dynamic instruction count
 *        (approximately; 1.0 is a few hundred thousand instructions).
 */
Workload makeWorkload(const std::string &name, double scale = 1.0);

} // namespace nbl::workloads

#endif // NBL_WORKLOADS_WORKLOAD_HH
