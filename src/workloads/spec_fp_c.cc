/**
 * @file
 * Synthetic stand-ins for SPEC92 FP benchmarks: swm256, spice2g6,
 * tomcatv, wave5. Paper rows targeted (Figure 13, latency 10):
 *
 *   swm256    mc0 0.297  mc1 0.110  mc2 0.070  inf 0.067
 *   spice2g6  mc0 1.092  mc1 0.958  mc2 0.903  inf 0.891
 *   tomcatv   mc0 1.140  mc1 0.714  mc2 0.310  fc2 0.219  inf 0.066
 *             and Figure 18's miss-penalty sweep
 *   wave5     mc0 0.277  mc1 0.194  mc2 0.132  inf 0.107
 */

#include "workloads/spec_detail.hh"

namespace nbl::workloads::detail
{

/**
 * swm256: shallow-water stencil. Two streams in phase (pairs of
 * misses) with light arithmetic, diluted by a resident phase: mc=2
 * already matches the unrestricted cache while mc=1 loses 1.6x.
 */
Workload
make_swm256(double scale)
{
    Builder b("swm256", 0x5312);

    StreamSpec sw;
    sw.streams = 2;              // pairs of misses, well separated
    sw.bytesPerStream = 96 * 1024;
    sw.strideBytes = 32;
    sw.interleaveOps = 10;
    sw.chainOps = 1;
    sw.indepOps = 8;
    sw.storeResult = true;
    addStreamKernel(b.ctx, "swm256.step", sw);

    ResidentSpec res;
    res.bytes = 2048;
    res.loads = 2;
    res.chainOps = 8;
    res.trips = 7000;
    addResidentKernel(b.ctx, "swm256.diag", res);

    return b.finish(scale, 450000);
}

/**
 * spice2g6: circuit simulation dominated by sparse-matrix pointer
 * walks: a serial chase with adjacent payload loads (same line, so
 * only fc-style secondary merging helps, and only slightly). The
 * paper's row is nearly flat: 1.092 -> 0.891 across everything.
 */
Workload
make_spice2g6(double scale)
{
    Builder b("spice2g6", 0x591C);

    ChaseSpec matrix;
    matrix.nodes = 4096;
    matrix.nodeStride = 64;   // 256 KB sparse structure
    matrix.randomOrder = true;
    matrix.payloadLoads = 2;  // element + column index: same line
    matrix.intOps = 8;
    addChaseKernel(b.ctx, "spice2g6.solve", matrix);

    ResidentSpec model;
    model.bytes = 2048;
    model.fpData = true;
    model.chainOps = 6;
    model.trips = 500;
    addResidentKernel(b.ctx, "spice2g6.model", model);

    return b.finish(scale, 400000);
}

/**
 * tomcatv: vectorized mesh generation, the paper's running numeric
 * example (Figures 12 and 18). Five unrolled streams in phase with
 * almost no arithmetic between loads: misses cluster deeply (up to
 * ~10 per iteration), every additional MSHR pays, and the
 * unrestricted cache hides nearly everything at long scheduled
 * latencies. MCPI decreases monotonically in the load latency and
 * saturates past 6 because the unrolled schedule is then fixed.
 */
Workload
make_tomcatv(double scale)
{
    Builder b("tomcatv", 0x70CA);
    b.w.program.aggressiveHoist = true; // vectorized inner loops

    StreamSpec mesh;
    mesh.streams = 5;             // x, y, rx, ry, work arrays
    mesh.bytesPerStream = 96 * 1024;
    mesh.strideBytes = 32;        // a new line per stream per iter
    mesh.echoLoads = 3;           // rest of each line: secondaries
    mesh.chainOps = 6;
    mesh.indepOps = 4;
    mesh.storeResult = true;
    addStreamKernel(b.ctx, "tomcatv.relax", mesh);

    return b.finish(scale, 500000);
}

/**
 * wave5: particle-in-cell plasma code: a paired field sweep plus a
 * resident particle push; moderate miss rate and clustering.
 */
Workload
make_wave5(double scale)
{
    Builder b("wave5", 0x3A35);

    StreamSpec field;
    field.streams = 2;           // pairs of misses
    field.bytesPerStream = 64 * 1024;
    field.strideBytes = 32;
    field.interleaveOps = 2;
    field.echoLoads = 1;
    field.chainOps = 10;
    field.indepOps = 2;
    addStreamKernel(b.ctx, "wave5.field", field);

    ResidentSpec part;
    part.bytes = 2048;
    part.loads = 2;
    part.chainOps = 8;
    part.trips = 6000;
    addResidentKernel(b.ctx, "wave5.push", part);

    return b.finish(scale, 450000);
}

} // namespace nbl::workloads::detail
