/**
 * @file
 * Internal declarations of the 18 per-benchmark generators. Each
 * make_* function builds the synthetic stand-in for one SPEC92
 * benchmark; the comments in the implementation files cite the
 * Figure 13 row each generator targets.
 */

#ifndef NBL_WORKLOADS_SPEC_DETAIL_HH
#define NBL_WORKLOADS_SPEC_DETAIL_HH

#include "workloads/archetypes.hh"
#include "workloads/workload.hh"

namespace nbl::workloads::detail
{

/** Shared scaffolding for the per-benchmark generators. */
struct Builder
{
    Workload w;
    AddressSpace as;
    std::vector<std::function<void(mem::SparseMemory &)>> inits;
    BuildCtx ctx;

    Builder(const char *name, uint64_t seed)
        : ctx{w.program, as, inits, seed}
    {
        w.name = name;
        w.program.name = name;
    }

    /** Size to roughly base_instrs * scale and seal the workload. */
    Workload
    finish(double scale, uint64_t base_instrs)
    {
        finalizeSize(w.program, uint64_t(double(base_instrs) * scale));
        w.init = combineInits(std::move(inits));
        return std::move(w);
    }
};

// spec_int.cc
Workload make_compress(double scale);
Workload make_eqntott(double scale);
Workload make_espresso(double scale);
Workload make_xlisp(double scale);

// spec_fp_a.cc
Workload make_alvinn(double scale);
Workload make_doduc(double scale);
Workload make_ear(double scale);
Workload make_fpppp(double scale);
Workload make_hydro2d(double scale);

// spec_fp_b.cc
Workload make_mdljdp2(double scale);
Workload make_mdljsp2(double scale);
Workload make_nasa7(double scale);
Workload make_ora(double scale);
Workload make_su2cor(double scale);

// spec_fp_c.cc
Workload make_swm256(double scale);
Workload make_spice2g6(double scale);
Workload make_tomcatv(double scale);
Workload make_wave5(double scale);

} // namespace nbl::workloads::detail

#endif // NBL_WORKLOADS_SPEC_DETAIL_HH
