/**
 * @file
 * Synthetic stand-ins for SPEC92 FP benchmarks: mdljdp2, mdljsp2,
 * nasa7, ora, su2cor. Paper rows targeted (Figure 13, latency 10):
 *
 *   mdljdp2  mc0 0.314  mc1 0.231  mc2 0.193  inf 0.167
 *   mdljsp2  mc0 0.154  mc1 0.088  mc2 0.057  inf 0.046
 *   nasa7    mc0 1.865  mc1 1.452  mc2 0.753  fc2 0.670  inf 0.519
 *   ora      all configurations 1.000 (fully serial misses)
 *   su2cor   mc0 1.266  mc1 1.055  mc2 0.437  fc2 0.394  inf 0.093
 *            and Figure 15: fs=1 is 2.3x inf, fs=2 is 1.3x
 */

#include "workloads/spec_detail.hh"

namespace nbl::workloads::detail
{

/**
 * mdljdp2: molecular dynamics (double precision). Staggered pair-list
 * walks with a deep dependent force computation: misses are mostly
 * isolated (mc1 close to inf) and moderately rare.
 */
Workload
make_mdljdp2(double scale)
{
    Builder b("mdljdp2", 0x3D02);

    StreamSpec pairs;
    pairs.streams = 1;           // isolated misses, deep chains
    pairs.bytesPerStream = 64 * 1024;
    pairs.strideBytes = 32;
    pairs.interleaveOps = 3;
    pairs.echoLoads = 1;
    pairs.chainOps = 14;
    pairs.indepOps = 4;
    addStreamKernel(b.ctx, "mdljdp2.force", pairs);
    addStreamKernel(b.ctx, "mdljdp2.force2", pairs);

    ResidentSpec upd;
    upd.bytes = 2048;
    upd.loads = 2;
    upd.chainOps = 10;
    upd.trips = 2600;
    addResidentKernel(b.ctx, "mdljdp2.update", upd);

    return b.finish(scale, 450000);
}

/**
 * mdljsp2: the single-precision twin; lighter arithmetic with paired
 * misses, heavily diluted by a resident update phase: rare misses
 * that overlap well (mc1 1.9x inf, mc2 1.2x).
 */
Workload
make_mdljsp2(double scale)
{
    Builder b("mdljsp2", 0x3D51);

    StreamSpec pairs;
    pairs.streams = 2;           // pairs of misses, light compute
    pairs.bytesPerStream = 32 * 1024;
    pairs.strideBytes = 32;
    pairs.interleaveOps = 8;
    pairs.chainOps = 2;
    pairs.indepOps = 6;
    addStreamKernel(b.ctx, "mdljsp2.force", pairs);

    ResidentSpec upd;
    upd.bytes = 2048;
    upd.loads = 2;
    upd.chainOps = 12;
    upd.trips = 8000;
    addResidentKernel(b.ctx, "mdljsp2.update", upd);

    return b.finish(scale, 450000);
}

/**
 * nasa7: seven numerical kernels (FFT, matrix ops, ...). Load-dense
 * unrolled sweeps over large matrices: the highest MCPI of the suite;
 * clusters of ~4 so each added MSHR pays off.
 */
Workload
make_nasa7(double scale)
{
    Builder b("nasa7", 0x4A5A);

    StreamSpec mxm;
    mxm.streams = 4;             // clusters of 4 different lines
    mxm.bytesPerStream = 96 * 1024;
    mxm.strideBytes = 32;
    mxm.interleaveOps = 2;
    mxm.chainOps = 3;
    mxm.storeResult = true;
    addStreamKernel(b.ctx, "nasa7.mxm", mxm);

    StreamSpec fft;
    fft.streams = 2;
    fft.bytesPerStream = 64 * 1024;
    fft.strideBytes = 32;
    fft.loadsPerStream = 2;      // paired: secondaries for fc=
    fft.interleaveOps = 2;
    fft.chainOps = 4;
    addStreamKernel(b.ctx, "nasa7.fft", fft);

    return b.finish(scale, 500000);
}

/**
 * ora: ray tracing through optical surfaces. Modeled as a serial
 * dependent chain where every miss is isolated and immediately used:
 * no organization can overlap anything, reproducing the striking
 * all-1.000 row of Figure 13. Body sized so one 16-cycle miss per 16
 * instructions gives MCPI 1.0.
 */
Workload
make_ora(double scale)
{
    Builder b("ora", 0x0ABA);

    ChaseSpec ray;
    ray.nodes = 8192;
    ray.nodeStride = 64;     // one node per line, 512 KB footprint
    ray.randomOrder = true;
    ray.payloadLoads = 0;
    ray.intOps = 13;         // 16 instructions per iteration
    addChaseKernel(b.ctx, "ora.trace", ray);

    return b.finish(scale, 400000);
}

/**
 * su2cor: quantum-physics lattice code. Three large arrays whose
 * bases are aligned to the cache size, so concurrent streams collide
 * in the same sets of the direct-mapped cache: misses are conflict
 * misses to *different addresses in the same set*. In-cache MSHR
 * storage (one fetch per set, fs=1) serializes them; fs=2 recovers
 * most of the loss (Figure 15); with enough MSHRs the independent
 * conflict misses overlap almost fully (inf 0.093 vs mc1 1.055).
 */
Workload
make_su2cor(double scale)
{
    Builder b("su2cor", 0x52C0);

    // Bulk lattice sweep: clustered misses to *different* sets --
    // overlappable even with one fetch per set.
    StreamSpec lattice;
    lattice.streams = 3;
    lattice.bytesPerStream = 64 * 1024;
    lattice.strideBytes = 32;   // a new line per stream per iter
    lattice.interleaveOps = 3;
    lattice.echoLoads = 1;
    lattice.chainOps = 2;
    lattice.indepOps = 4;
    addStreamKernel(b.ctx, "su2cor.gauge", lattice);

    // Update phase: arrays cache-size aligned and in phase, so its
    // concurrent misses are to different addresses in the *same set*:
    // the component that one-fetch-per-set (fs=1, in-cache MSHR
    // storage) serializes (Figure 15).
    StreamSpec conflict = lattice;
    conflict.bytesPerStream = 32 * 1024;
    conflict.align = 8 * 1024;
    conflict.samePhase = true;
    addStreamKernel(b.ctx, "su2cor.update", conflict);

    ResidentSpec prop;
    prop.bytes = 2048;
    prop.loads = 2;
    prop.chainOps = 8;
    prop.trips = 5000;
    addResidentKernel(b.ctx, "su2cor.prop", prop);

    return b.finish(scale, 450000);
}

} // namespace nbl::workloads::detail
