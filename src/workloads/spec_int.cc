/**
 * @file
 * Synthetic stand-ins for the four SPEC92 integer benchmarks.
 *
 * Figure 13 shows that for the integer codes a simple hit-under-miss
 * cache (mc=1) is within a few percent of the unrestricted cache:
 * their misses are serial (pointer chasing, hash probing) or rare.
 * Paper rows targeted (MCPI at load latency 10, baseline cache):
 *
 *   compress  mc0 0.453  mc1 0.354  ... inf 0.348   (ratios ~1.0)
 *   eqntott   mc0 0.108  mc1 0.078  ... inf 0.073
 *   espresso  mc0 0.209  mc1 0.176  ... inf 0.169
 *   xlisp     mc0 0.211  mc1 0.185  ... inf 0.176
 */

#include "workloads/spec_detail.hh"

namespace nbl::workloads::detail
{

/**
 * compress: LZW hash-table probing. Each probe's index depends on the
 * previously loaded table entry (hash chaining), so misses are serial
 * and hit-under-miss already captures everything (mc1 ratio 1.02 in
 * the paper). A large table gives the fairly high base miss rate.
 */
Workload
make_compress(double scale)
{
    Builder b("compress", 0xC04B);

    HashSpec h;
    h.tableBytes = 128 * 1024;
    h.probes = 1;
    h.dependent = true;
    h.intOps = 8;
    h.indepOps = 4;
    h.trips = 2048;
    addHashKernel(b.ctx, "compress.probe", h);

    // The input-scan phase: resident, nearly all hits.
    ResidentSpec scan;
    scan.bytes = 4096;
    scan.fpData = false;
    scan.chainOps = 6;
    scan.trips = 1500;
    addResidentKernel(b.ctx, "compress.scan", scan);

    return b.finish(scale, 400000);
}

/**
 * eqntott: bit-vector comparison loops. Resident integer compare
 * work with immediate compare-and-use, plus an occasional cold sweep
 * of the truth table: misses are rare and MCPI is dominated by true
 * data dependencies (structural stalls < 1%, section 4).
 */
Workload
make_eqntott(double scale)
{
    Builder b("eqntott", 0xE407);

    ResidentSpec cmp;
    cmp.bytes = 2048;
    cmp.fpData = false;
    cmp.loads = 2;
    cmp.chainOps = 6;
    cmp.trips = 2500;
    addResidentKernel(b.ctx, "eqntott.cmp", cmp);
    addResidentKernel(b.ctx, "eqntott.cmp2", cmp);

    StreamSpec cold;
    cold.streams = 1;
    cold.bytesPerStream = 48 * 1024;
    cold.strideBytes = 32;
    cold.fpData = false;
    cold.interleaveOps = 4;
    cold.chainOps = 10;
    cold.trips = 500;
    addStreamKernel(b.ctx, "eqntott.sweep", cold);

    return b.finish(scale, 400000);
}

/**
 * espresso: boolean-cube set operations. Mostly cache-resident
 * bitmaps with a dependent lookup loop over a mid-size table: misses
 * rare and serial enough that mc1 == inf in the paper's table.
 */
Workload
make_espresso(double scale)
{
    Builder b("espresso", 0xE59E);

    HashSpec h;
    h.tableBytes = 32 * 1024;
    h.probes = 1;
    h.dependent = true;
    h.intOps = 8;
    h.indepOps = 4;
    h.trips = 1024;
    addHashKernel(b.ctx, "espresso.lookup", h);

    ResidentSpec cube;
    cube.bytes = 4096;
    cube.fpData = false;
    cube.loads = 2;
    cube.chainOps = 6;
    cube.trips = 2500;
    addResidentKernel(b.ctx, "espresso.cube", cube);

    return b.finish(scale, 400000);
}

/**
 * xlisp: lisp interpreter. Serial cons-cell chasing over a heap that
 * fits the cache by capacity but is deliberately overlapped by the
 * symbol region in the direct-mapped index: the high conflict-miss
 * fraction of Figure 9. A fully associative cache holds the whole
 * ~8 KB working set, cutting MCPI 2-3x and flattening the curves
 * (Figure 10). Loads are a small fraction of instructions, as in
 * Figure 4 (xlisp: 143M loads vs 5612M instructions).
 */
Workload
make_xlisp(double scale)
{
    Builder b("xlisp", 0x0715);

    // The heap: random chase over ~6.3 KB starting at set 0.
    ChaseSpec heap;
    heap.nodes = 104;
    heap.nodeStride = 40;
    heap.randomOrder = true;
    heap.payloadLoads = 1;
    heap.intOps = 28;          // eval work between car/cdr loads
    heap.regionAlign = 8192;   // heap starts at set 0
    addChaseKernel(b.ctx, "xlisp.eval", heap);

    // Property-list lookups over a table well beyond the cache size:
    // random accesses that miss under *any* organization of an 8 KB
    // cache. This is why the fully associative cache of Figure 10
    // removes xlisp's conflict component but not all of its MCPI.
    HashSpec props;
    props.tableBytes = 32 * 1024;
    props.probes = 1;
    props.dependent = true;    // serial, like the rest of xlisp
    props.intOps = 20;
    props.indepOps = 4;
    props.storeBack = true;    // sequence evolves across repetitions
    props.trips = 64;
    addHashKernel(b.ctx, "xlisp.props", props);

    // Symbol table, aligned so it collides with the heap's sets in a
    // direct-mapped cache (but coexists in a fully associative one).
    StreamSpec sym;
    sym.streams = 1;
    sym.bytesPerStream = 1024;
    sym.strideBytes = 8;
    sym.fpData = false;
    sym.chainOps = 12;
    sym.align = 8192;          // same sets as the heap
    sym.samePhase = true;
    addStreamKernel(b.ctx, "xlisp.sym", sym);

    return b.finish(scale, 400000);
}

} // namespace nbl::workloads::detail
