#include "workloads/archetypes.hh"

#include <algorithm>

#include "compiler/kernel.hh"
#include "util/log.hh"
#include "util/rng.hh"

namespace nbl::workloads
{

using compiler::Kernel;
using compiler::KernelBuilder;
using compiler::VReg;

Region
AddressSpace::alloc(uint64_t bytes, uint64_t align, uint64_t phase)
{
    if (align == 0 || (align & (align - 1)) != 0)
        fatal("region alignment must be a power of two");
    // Regions are laid out contiguously with a 1088-byte (17-line)
    // pad, the way a real allocator's headers and odd sizes place
    // arrays: consecutive bases are then incongruent modulo *any*
    // power-of-two cache size, so multi-stream workloads do not
    // accidentally become same-set conflict tests at one cache size
    // or another. Callers that *want* same-set behaviour pass a large
    // alignment (the cache size): those regions are placed exactly.
    uint64_t base = (cursor_ + align - 1) & ~(align - 1);
    base += phase;
    cursor_ = base + bytes;
    if (align < 4096)
        cursor_ += 1088;
    return Region{base, bytes, next_space_++};
}

void
finalizeSize(compiler::KernelProgram &kp, uint64_t target_instrs)
{
    kp.outerReps = 1;
    uint64_t per_rep = compiler::estimateDynamicSize(kp);
    if (per_rep == 0)
        fatal("program %s is empty", kp.name.c_str());
    kp.outerReps = std::max<uint64_t>(1, target_instrs / per_rep);
}

std::function<void(mem::SparseMemory &)>
combineInits(std::vector<std::function<void(mem::SparseMemory &)>> inits)
{
    return [inits = std::move(inits)](mem::SparseMemory &m) {
        for (const auto &f : inits)
            f(m);
    };
}

void
addStreamKernel(BuildCtx &ctx, const std::string &name,
                const StreamSpec &spec)
{
    if (spec.streams == 0 || spec.loadsPerStream == 0)
        fatal("stream kernel %s: needs streams and loads", name.c_str());

    KernelBuilder b(name, ctx.kp.nextVRegId);

    // Allocate the input streams (and the output stream if any).
    // samePhase aligns every base to `align` (e.g. the cache size),
    // which puts all streams on the same cache sets as they advance.
    std::vector<Region> regions;
    for (unsigned s = 0; s < spec.streams; ++s) {
        regions.push_back(ctx.as.alloc(
            spec.bytesPerStream, spec.samePhase ? spec.align : 64));
    }
    Region out;
    if (spec.storeResult)
        out = ctx.as.alloc(spec.bytesPerStream, 64);

    // Trips: stay inside the smallest stream.
    int64_t adv = spec.strideBytes * int64_t(spec.unroll);
    int64_t span = int64_t(spec.unroll) * spec.strideBytes +
                   int64_t(std::max(spec.loadsPerStream,
                                    spec.echoLoads + 1)) *
                       8 +
                   32;
    int64_t trips = spec.trips;
    if (trips == 0)
        trips = (int64_t(spec.bytesPerStream) - span) / adv;
    if (trips < 1)
        fatal("stream kernel %s: footprint too small", name.c_str());

    b.countedLoop(0, trips);

    std::vector<VReg> ptrs;
    for (unsigned s = 0; s < spec.streams; ++s) {
        uint64_t phase = (uint64_t(s) * spec.phaseStep) % 32;
        ptrs.push_back(b.constI(int64_t(regions[s].base + phase)));
    }
    VReg outp;
    if (spec.storeResult)
        outp = b.constI(int64_t(out.base));
    VReg fone;
    if (spec.fpData)
        fone = b.constF(1.0000001);

    for (unsigned copy = 0; copy < spec.unroll; ++copy) {
        int64_t cbase = int64_t(copy) * spec.strideBytes;

        // Each load is folded into the accumulator *immediately* in
        // source order, like the paper's scalar code: at load latency
        // 1 the schedule keeps the use adjacent (all configurations
        // converge, Figure 5); at larger assumed latencies the
        // scheduler hoists later loads into the shadow.
        unsigned folds = 0;
        auto fold_into = [&](VReg &a, VReg v) {
            if (!a.valid()) {
                a = v;
            } else if (spec.fpData) {
                a = (++folds % 2) ? b.fadd(a, v) : b.fmul(a, v);
            } else {
                a = b.add(a, v);
            }
        };
        auto load_one = [&](unsigned s, int64_t off) {
            return spec.fpData
                       ? b.fload(ptrs[s], off, regions[s].space)
                       : b.load(ptrs[s], off, regions[s].space);
        };
        auto filler = [&](unsigned i) {
            if (spec.fpData)
                b.fadd(fone, fone);
            else
                b.addi(b.counter(), int64_t(i));
        };
        auto emit_store = [&](int64_t off, VReg value) {
            if (spec.fpData)
                b.fstore(outp, off, value, out.space);
            else
                b.store(outp, off, value, out.space);
        };

        VReg acc{};
        for (unsigned s = 0; s < spec.streams; ++s) {
            for (unsigned j = 0; j < spec.loadsPerStream; ++j)
                fold_into(acc, load_one(s, cbase + int64_t(j) * 8));
            for (unsigned i = 0; i < spec.interleaveOps; ++i)
                filler(i);
        }

        // Each echo round is an independent element computation over
        // the next word of every line: its loads are secondary misses
        // of the fetches the primary round started.
        for (unsigned e = 0; e < spec.echoLoads; ++e) {
            VReg acc_e{};
            for (unsigned s = 0; s < spec.streams; ++s) {
                fold_into(acc_e,
                          load_one(s, cbase + int64_t(e + 1) * 8));
            }
            if (spec.storeResult)
                emit_store(cbase + int64_t(e + 1) * 8, acc_e);
        }

        for (unsigned i = 0; i < spec.chainOps; ++i) {
            acc = spec.fpData ? b.fmul(acc, fone)
                              : b.addi(acc, 1);
        }
        for (unsigned i = 0; i < spec.indepOps; ++i)
            filler(i);

        if (spec.storeResult)
            emit_store(cbase, acc);
    }

    for (unsigned s = 0; s < spec.streams; ++s)
        b.bump(ptrs[s], adv);
    if (spec.storeResult)
        b.bump(outp, adv);

    ctx.kp.kernels.push_back(b.take());

    // Initialize stream contents.
    std::vector<Region> to_init = regions;
    bool fp = spec.fpData;
    uint64_t seed = ctx.seed ^ std::hash<std::string>{}(name);
    ctx.inits.push_back([to_init, fp, seed](mem::SparseMemory &m) {
        Rng rng(seed);
        for (const Region &r : to_init) {
            for (uint64_t a = r.base; a + 8 <= r.base + r.bytes; a += 8) {
                if (fp)
                    m.writeF64(a, 1.0 + double(rng.below(1000)) * 1e-4);
                else
                    m.write(a, 8, rng.below(1 << 20));
            }
        }
    });
}

void
addResidentKernel(BuildCtx &ctx, const std::string &name,
                  const ResidentSpec &spec)
{
    if ((spec.bytes & (spec.bytes - 1)) != 0)
        fatal("resident kernel %s: bytes must be a power of two",
              name.c_str());

    // Slack so loads at off + j*8 stay inside the initialized area.
    Region r = ctx.as.alloc(spec.bytes + 64, 64);

    KernelBuilder b(name, ctx.kp.nextVRegId);
    b.countedLoop(0, spec.trips);
    VReg base = b.constI(int64_t(r.base));
    VReg off = b.constI(0);
    VReg fone;
    if (spec.fpData)
        fone = b.constF(1.0000001);

    VReg addr = b.add(base, off);
    std::vector<VReg> vals;
    for (unsigned j = 0; j < spec.loads; ++j) {
        if (spec.fpData)
            vals.push_back(b.fload(addr, int64_t(j) * 8, r.space));
        else
            vals.push_back(b.load(addr, int64_t(j) * 8, r.space));
    }
    VReg acc = vals[0];
    for (size_t i = 1; i < vals.size(); ++i)
        acc = spec.fpData ? b.fadd(acc, vals[i]) : b.add(acc, vals[i]);
    for (unsigned i = 0; i < spec.chainOps; ++i)
        acc = spec.fpData ? b.fmul(acc, fone) : b.addi(acc, 1);
    for (unsigned i = 0; i < spec.indepOps; ++i) {
        if (spec.fpData)
            b.fadd(vals[i % vals.size()], fone);
        else
            b.addi(b.counter(), int64_t(i));
    }

    VReg next = b.andi(b.addi(off, spec.strideBytes),
                       int64_t(spec.bytes - 1) & ~int64_t(7));
    b.assign(off, next);

    ctx.kp.kernels.push_back(b.take());

    uint64_t seed = ctx.seed ^ std::hash<std::string>{}(name);
    bool fp = spec.fpData;
    ctx.inits.push_back([r, fp, seed](mem::SparseMemory &m) {
        Rng rng(seed);
        for (uint64_t a = r.base; a + 8 <= r.base + r.bytes; a += 8) {
            if (fp)
                m.writeF64(a, 1.0 + double(rng.below(1000)) * 1e-4);
            else
                m.write(a, 8, rng.below(1 << 20));
        }
    });
}

void
addChaseKernel(BuildCtx &ctx, const std::string &name,
               const ChaseSpec &spec)
{
    if (spec.nodes < 2 || spec.nodeStride < 8 * (1 + spec.payloadLoads))
        fatal("chase kernel %s: bad node layout", name.c_str());

    Region region = ctx.as.alloc(spec.nodes * spec.nodeStride,
                                 spec.regionAlign);

    KernelBuilder b(name, ctx.kp.nextVRegId);
    VReg ptr = b.constI(int64_t(region.base)); // head is node 0
    b.whileNonZero(ptr, spec.nodes);

    VReg next = b.load(ptr, 0, region.space);
    VReg acc = next;
    for (unsigned j = 0; j < spec.payloadLoads; ++j) {
        VReg p = b.load(ptr, 8 + int64_t(j) * 8, region.space);
        acc = b.add(acc, p);
    }
    for (unsigned i = 0; i < spec.intOps; ++i)
        acc = b.addi(acc, 1);
    b.assign(ptr, next);

    ctx.kp.kernels.push_back(b.take());

    uint64_t seed = ctx.seed ^ std::hash<std::string>{}(name);
    ChaseSpec s = spec;
    ctx.inits.push_back([region, s, seed](mem::SparseMemory &m) {
        // Build the chain: node slot order is either sequential or a
        // seeded permutation starting at slot 0.
        std::vector<uint64_t> order(s.nodes);
        for (uint64_t i = 0; i < s.nodes; ++i)
            order[i] = i;
        if (s.randomOrder) {
            Rng rng(seed);
            // Fisher-Yates over slots 1..n-1 (slot 0 stays the head).
            for (uint64_t i = s.nodes - 1; i > 1; --i) {
                uint64_t j = 1 + rng.below(i);
                std::swap(order[i], order[j]);
            }
        }
        for (uint64_t i = 0; i < s.nodes; ++i) {
            uint64_t slot = order[i];
            uint64_t addr = region.base + slot * s.nodeStride;
            uint64_t next_addr =
                i + 1 < s.nodes
                    ? region.base + order[i + 1] * s.nodeStride
                    : 0;
            m.write(addr, 8, next_addr);
            for (unsigned j = 0; j < s.payloadLoads; ++j)
                m.write(addr + 8 + j * 8, 8, slot + j);
        }
    });
}

void
addHashKernel(BuildCtx &ctx, const std::string &name,
              const HashSpec &spec)
{
    if ((spec.tableBytes & (spec.tableBytes - 1)) != 0)
        fatal("hash kernel %s: table size must be a power of two",
              name.c_str());

    Region table = ctx.as.alloc(spec.tableBytes, 64);

    KernelBuilder b(name, ctx.kp.nextVRegId);
    b.countedLoop(0, spec.trips);
    VReg base = b.constI(int64_t(table.base));
    VReg state = b.constI(int64_t(ctx.seed | 1));
    int64_t mask = int64_t(spec.tableBytes - 1) & ~int64_t(7);

    VReg cur = state;
    for (unsigned p = 0; p < spec.probes; ++p) {
        // xorshift-style mixing in registers (real computed indices).
        VReg t1 = b.muli(cur, 0x9E3779B97F4A7C15LL);
        VReg t2 = b.xor_(t1, b.shri(t1, 29));
        VReg off = b.andi(b.shri(t2, 7), mask);
        VReg addr = b.add(base, off);
        VReg v = b.load(addr, 0, table.space);
        for (unsigned i = 0; i < spec.indepOps; ++i)
            b.addi(t2, int64_t(i)); // shadow work, independent of v
        for (unsigned i = 0; i < spec.intOps; ++i)
            v = b.addi(v, 1);
        if (spec.storeBack)
            b.store(addr, 0, v, table.space);
        cur = spec.dependent ? b.xor_(t2, v) : t2;
    }
    b.assign(state, cur);

    ctx.kp.kernels.push_back(b.take());

    uint64_t seed = ctx.seed ^ std::hash<std::string>{}(name);
    ctx.inits.push_back([table, seed](mem::SparseMemory &m) {
        Rng rng(seed);
        for (uint64_t a = table.base; a + 8 <= table.base + table.bytes;
             a += 8) {
            m.write(a, 8, rng.next() >> 8);
        }
    });
}

} // namespace nbl::workloads
