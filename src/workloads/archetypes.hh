/**
 * @file
 * Archetype kernel builders.
 *
 * The 18 synthetic SPEC92 stand-ins are composed from three archetype
 * families, whose knobs control exactly the properties that decide how
 * much a non-blocking cache can help:
 *
 *  - stream kernels: unit- or line-strided sweeps over one or more
 *    arrays with FP/integer compute; knobs set miss rate (footprint,
 *    stride), miss clustering (streams x unroll), and dependence
 *    distance (chain vs independent ops). Cache-size-aligned bases
 *    reproduce su2cor's same-set conflict behaviour.
 *  - chase kernels: serial pointer chasing (xlisp, spice2g6, ora):
 *    every load depends on the previous one, so no organization can
 *    overlap misses; random node order defeats spatial locality.
 *  - hash kernels: computed-index probing (compress, eqntott,
 *    espresso): indices come from register arithmetic; probes can be
 *    dependent (serial) or drawn from independent streams.
 */

#ifndef NBL_WORKLOADS_ARCHETYPES_HH
#define NBL_WORKLOADS_ARCHETYPES_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "compiler/vir.hh"
#include "workloads/workload.hh"

namespace nbl::workloads
{

/** Shared state threaded through archetype builders. */
struct BuildCtx
{
    compiler::KernelProgram &kp;
    AddressSpace &as;
    std::vector<std::function<void(mem::SparseMemory &)>> &inits;
    uint64_t seed;
};

/** Multi-stream sweep (see file comment). */
struct StreamSpec
{
    unsigned streams = 2;
    uint64_t bytesPerStream = 64 * 1024;
    int64_t strideBytes = 8;      ///< Advance per (unrolled) iteration.
    unsigned loadsPerStream = 1;  ///< Loads at ptr+0, +8, ... per iter.
    bool fpData = true;
    unsigned chainOps = 2;   ///< Dependent compute ops on the loads.
    unsigned indepOps = 0;   ///< Independent compute ops (filler).
    /**
     * Independent ops emitted between the loads of consecutive
     * streams. They separate misses in the instruction stream (the
     * paper's codes have address arithmetic and bookkeeping between
     * loads), which is what lets a hit-under-miss cache overlap part
     * of each miss instead of stalling for the full penalty.
     */
    unsigned interleaveOps = 0;
    /**
     * Extra loads per stream at line offsets +8, +16, ... emitted
     * *after* all streams' primary loads (and their interleaves).
     * They revisit lines that are still in flight: configurations
     * with secondary-miss merging (fc=, no restrict) absorb them for
     * free, single-destination MSHRs (mc=) stall on them -- the
     * paper's fc1-between-mc1-and-mc2 effect for doduc.
     */
    unsigned echoLoads = 0;
    bool storeResult = false;///< Store the result to an output stream.
    unsigned unroll = 1;     ///< Body replication at build time.
    int64_t trips = 0;       ///< 0 = derive from the footprint.
    uint64_t align = 64;     ///< Base alignment of each stream.
    bool samePhase = false;  ///< All bases at phase 0 of `align`.
    /**
     * Per-stream line-phase offset in bytes (mod 32). 0 puts every
     * stream at the same phase, so all streams cross a cache-line
     * boundary on the same iteration: misses arrive in clusters of
     * `streams` (what makes mc=2/fc=2 pay off). 8 staggers the
     * crossings so misses arrive spread out (mc=1 is then enough).
     */
    unsigned phaseStep = 8;
};

/** Serial pointer chase. */
struct ChaseSpec
{
    uint64_t nodes = 4096;
    uint64_t nodeStride = 64;   ///< Spacing of node slots.
    bool randomOrder = true;    ///< Permute the chain order.
    unsigned payloadLoads = 1;  ///< Extra loads at ptr+8, +16, ...
    unsigned intOps = 4;        ///< Filler ops on the payload.
    uint64_t regionAlign = 64;
};

/**
 * Cache-resident compute loop: loads sweep a small power-of-two
 * region with the offset wrapped by a mask, so the trip count is
 * independent of the footprint. Nearly every access hits; these
 * kernels model the register-blocked compute phases that dilute a
 * benchmark's miss density.
 */
struct ResidentSpec
{
    uint64_t bytes = 2048;   ///< Power of two, well under cache size.
    unsigned loads = 1;
    bool fpData = true;
    unsigned chainOps = 4;
    unsigned indepOps = 0;
    int64_t strideBytes = 8;
    int64_t trips = 1000;
};

/** Computed-index table probing. */
struct HashSpec
{
    uint64_t tableBytes = 64 * 1024;
    unsigned probes = 1;     ///< Probes per iteration.
    bool dependent = true;   ///< Next index depends on loaded value.
    unsigned intOps = 6;     ///< Ops on the loaded value (dependent).
    unsigned indepOps = 0;   ///< Ops independent of the loaded value.
    /**
     * Store the updated value back to the probed slot. With dependent
     * probing this makes the probe sequence evolve across outer
     * repetitions (each pass sees the previous pass's updates), i.e.
     * the traffic stays genuinely cold instead of cycling.
     */
    bool storeBack = false;
    int64_t trips = 4096;
};

/** Append a stream kernel to the program. */
void addStreamKernel(BuildCtx &ctx, const std::string &name,
                     const StreamSpec &spec);

/** Append a resident compute kernel to the program. */
void addResidentKernel(BuildCtx &ctx, const std::string &name,
                       const ResidentSpec &spec);

/** Append a pointer-chase kernel to the program. */
void addChaseKernel(BuildCtx &ctx, const std::string &name,
                    const ChaseSpec &spec);

/** Append a hash-probe kernel to the program. */
void addHashKernel(BuildCtx &ctx, const std::string &name,
                   const HashSpec &spec);

/** Combine per-kernel initializers into one Workload initializer. */
std::function<void(mem::SparseMemory &)>
combineInits(std::vector<std::function<void(mem::SparseMemory &)>> inits);

/**
 * Choose KernelProgram::outerReps so the program executes roughly
 * target_instrs dynamic instructions (pre-spill estimate).
 */
void finalizeSize(compiler::KernelProgram &kp, uint64_t target_instrs);

} // namespace nbl::workloads

#endif // NBL_WORKLOADS_ARCHETYPES_HH
