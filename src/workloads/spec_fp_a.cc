/**
 * @file
 * Synthetic stand-ins for SPEC92 FP benchmarks: alvinn, doduc, ear,
 * fpppp, hydro2d. Paper rows targeted (Figure 13, MCPI at latency 10):
 *
 *   alvinn   mc0 0.494  mc1 0.398  mc2 0.371  fc2 0.367  inf 0.365
 *   doduc    mc0 0.346  mc1 0.245  mc2 0.147  fc1 0.197  fc2 0.109  inf 0.084
 *   ear      mc0 0.094  mc1 0.067  mc2 0.050  inf 0.048
 *   fpppp    mc0 0.434  mc1 0.234  mc2 0.119  fc2 0.091  inf 0.062
 *   hydro2d  mc0 0.708  mc1 0.466  mc2 0.246  fc2 0.242  inf 0.189
 *
 * Tuning levers (see archetypes.hh): miss density = footprint /
 * stride / body length; miss clustering = streams with phaseStep 0
 * (all cross a line together); dependence depth = chainOps vs
 * indepOps; dilution = resident kernels.
 */

#include "compiler/kernel.hh"
#include "workloads/spec_detail.hh"

namespace nbl::workloads::detail
{

/**
 * alvinn: back-propagation network. One long weight stream with a
 * tight dependent accumulation: misses are isolated and the consumer
 * follows closely, so even the unrestricted cache hides only ~25% of
 * the miss time and extra MSHRs barely help.
 */
Workload
make_alvinn(double scale)
{
    Builder b("alvinn", 0xA141);

    StreamSpec w;
    w.streams = 1;
    w.bytesPerStream = 128 * 1024;
    w.strideBytes = 8;
    w.chainOps = 3;    // acc = acc*w + x style chain
    w.indepOps = 4;
    addStreamKernel(b.ctx, "alvinn.fprop", w);

    return b.finish(scale, 400000);
}

/**
 * doduc: Monte Carlo reactor simulation; scalar FP code with clusters
 * of ~3 misses to *different* lines, so two primary misses (mc=2)
 * beat unlimited secondaries to one line (fc=1) -- the paper's key
 * doduc observation. Resident physics tables dilute the miss density
 * to doduc's ~9% load miss rate (Figure 8).
 */
Workload
make_doduc(double scale)
{
    Builder b("doduc", 0xD0D0);

    StreamSpec hot;
    hot.streams = 3;             // cluster of 3 different lines
    hot.bytesPerStream = 8 * 1024;
    hot.strideBytes = 32;        // a new line per stream per iter
    hot.interleaveOps = 4;       // address arithmetic between loads
    hot.chainOps = 8;
    hot.indepOps = 4;
    hot.storeResult = true;
    addStreamKernel(b.ctx, "doduc.sweep", hot);

    // A second phase whose loads come in same-line pairs: secondary
    // misses that fc-style merging absorbs but single-destination
    // MSHRs serialize (gives fc=1 its edge over mc=1, Figure 5).
    StreamSpec paired = hot;
    paired.bytesPerStream = 6 * 1024;
    paired.loadsPerStream = 2;
    paired.chainOps = 6;
    addStreamKernel(b.ctx, "doduc.paired", paired);

    ResidentSpec tables;
    tables.bytes = 2048;
    tables.loads = 2;
    tables.chainOps = 10;
    tables.indepOps = 2;
    tables.trips = 2000;
    addResidentKernel(b.ctx, "doduc.tables", tables);
    addResidentKernel(b.ctx, "doduc.tables2", tables);

    return b.finish(scale, 500000);
}

/**
 * ear: cochlea filterbank. Mostly resident filter state with a slow
 * cold input stream: low miss rate, shallow clustering (mc2 == inf).
 */
Workload
make_ear(double scale)
{
    Builder b("ear", 0xEA12);

    StreamSpec in;
    in.streams = 1;
    in.bytesPerStream = 64 * 1024;
    in.strideBytes = 8;
    in.interleaveOps = 4;
    in.chainOps = 10;
    addStreamKernel(b.ctx, "ear.input", in);

    ResidentSpec state;
    state.bytes = 2048;
    state.loads = 2;
    state.chainOps = 12;
    state.trips = 7000;
    addResidentKernel(b.ctx, "ear.filter", state);

    return b.finish(scale, 400000);
}

/**
 * fpppp: electron-integral code famous for enormous basic blocks:
 * wide clusters of independent loads (4 streams in phase) buried in
 * deep arithmetic, plus heavy register pressure (its reference counts
 * vary with the scheduled latency through spills). Strong gains from
 * every added MSHR (mc1 3.8x vs inf in the paper).
 */
Workload
make_fpppp(double scale)
{
    Builder b("fpppp", 0xF999);

    StreamSpec big;
    big.streams = 4;             // clusters of 4 different lines
    big.bytesPerStream = 24 * 1024;
    big.strideBytes = 32;
    big.interleaveOps = 3;
    big.chainOps = 18;
    big.indepOps = 2;
    big.storeResult = true;
    addStreamKernel(b.ctx, "fpppp.block", big);

    StreamSpec paired = big;
    paired.bytesPerStream = 8 * 1024;
    paired.loadsPerStream = 2;
    paired.interleaveOps = 2;
    addStreamKernel(b.ctx, "fpppp.paired", paired);

    ResidentSpec aux;
    aux.bytes = 2048;
    aux.loads = 2;
    aux.chainOps = 12;
    aux.trips = 3000;
    addResidentKernel(b.ctx, "fpppp.aux", aux);

    // The famous fpppp basic block: two wide independent reduction
    // chains over a resident table. At short scheduled latencies the
    // temporaries die quickly; at long latencies the scheduler hoists
    // both chains' loads and the allocator runs out of FP registers,
    // spilling -- the paper's Figure 4 reference-count variation.
    {
        compiler::KernelBuilder kb("fpppp.integrals",
                                   b.w.program.nextVRegId);
        kb.countedLoop(0, 150);
        compiler::VReg tbl = kb.constI(0x900000);
        compiler::VReg out = kb.constI(0x908000);
        // Twelve live coefficient registers, as a basis-function
        // evaluation would hold, squeeze the allocatable FP pool.
        std::vector<compiler::VReg> coef;
        for (int c = 0; c < 12; ++c)
            coef.push_back(kb.constF(1.0 + 0.001 * c));
        for (int chain = 0; chain < 2; ++chain) {
            compiler::VReg acc{};
            for (int j = 0; j < 16; ++j) {
                compiler::VReg v =
                    kb.fload(tbl, (chain * 16 + j) * 8, -1);
                compiler::VReg scaled = kb.fmul(v, coef[j % 12]);
                acc = acc.valid() ? kb.fadd(acc, scaled) : scaled;
            }
            kb.fstore(out, chain * 8, acc, -1);
        }
        b.w.program.kernels.push_back(kb.take());
        b.inits.push_back([](mem::SparseMemory &m) {
            for (int j = 0; j < 32; ++j)
                m.writeF64(0x900000 + j * 8, 1.0 + 1e-4 * j);
        });
    }

    return b.finish(scale, 500000);
}

/**
 * hydro2d: Navier-Stokes difference equations; paired grid streams
 * with moderate compute. Higher miss rate than doduc, clusters of ~3.
 */
Workload
make_hydro2d(double scale)
{
    Builder b("hydro2d", 0x46D0);

    StreamSpec grid;
    grid.streams = 3;            // clusters of 3 different lines
    grid.bytesPerStream = 64 * 1024;
    grid.strideBytes = 32;
    grid.interleaveOps = 4;
    grid.chainOps = 8;
    grid.indepOps = 0;
    grid.storeResult = true;
    addStreamKernel(b.ctx, "hydro2d.step", grid);

    ResidentSpec aux;
    aux.bytes = 2048;
    aux.loads = 2;
    aux.chainOps = 8;
    aux.trips = 2500;
    addResidentKernel(b.ctx, "hydro2d.aux", aux);

    return b.finish(scale, 450000);
}

} // namespace nbl::workloads::detail
