#include "service/protocol.hh"

#include <cmath>
#include <cstdio>

#include "stats/json.hh"
#include "util/log.hh"
#include "workloads/workload.hh"

namespace nbl::service
{

namespace
{

using stats::Json;

bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * Read an optional non-negative integer member. False (with *err set)
 * when present but not a non-negative integer below 2^53 -- above
 * that the double round-trip through the parser would be lossy.
 */
bool
getU64(const Json &obj, const char *name, uint64_t *out,
       std::string *err)
{
    const Json *v = obj.find(name);
    if (!v)
        return true;
    if (!v->isNumber()) {
        *err = strfmt("'%s' must be a number", name);
        return false;
    }
    double d = v->number();
    if (d < 0 || d != std::floor(d) || d > 9.0e15) {
        *err = strfmt("'%s' must be a non-negative integer", name);
        return false;
    }
    *out = uint64_t(d);
    return true;
}

bool
getBool(const Json &obj, const char *name, bool *out, std::string *err)
{
    const Json *v = obj.find(name);
    if (!v)
        return true;
    if (!v->isBool()) {
        *err = strfmt("'%s' must be a boolean", name);
        return false;
    }
    *out = v->boolean();
    return true;
}

} // namespace

bool
validateConfig(const harness::ExperimentConfig &cfg, std::string *err)
{
    if (!isPow2(cfg.cacheBytes) || !isPow2(cfg.lineBytes)) {
        *err = "cache_bytes and line_bytes must be powers of two";
        return false;
    }
    if (cfg.lineBytes > cfg.cacheBytes) {
        *err = "line_bytes larger than cache_bytes";
        return false;
    }
    if (cfg.ways != 0) {
        uint64_t lines = cfg.cacheBytes / cfg.lineBytes;
        if (lines % cfg.ways != 0 || !isPow2(lines / cfg.ways)) {
            *err = "ways must divide the line count into a "
                   "power-of-two number of sets";
            return false;
        }
    }
    if (cfg.issueWidth < 1 || cfg.issueWidth > 4) {
        *err = "issue_width must be between 1 and 4";
        return false;
    }
    if (cfg.loadLatency < 1 || cfg.loadLatency > 1000) {
        *err = "load_latency must be between 1 and 1000";
        return false;
    }
    if (cfg.maxInstructions == 0) {
        *err = "max_instructions must be positive";
        return false;
    }
    return true;
}

bool
parsePolicyKey(const std::string &key, core::MshrPolicy *out)
{
    int mode = 0, mshrs = 0, misses = 0, sub = 0, mps = 0, fps = 0;
    int tracks = 0, store = 0;
    unsigned fill = 0;
    int used = 0;
    if (std::sscanf(key.c_str(), "P%d.%d.%d.%d.%d.%d.%d.%d.%u%n",
                    &mode, &mshrs, &misses, &sub, &mps, &fps, &tracks,
                    &store, &fill, &used) != 9 ||
        size_t(used) != key.size())
        return false;
    if (mode < 0 || mode > int(core::CacheMode::Inverted))
        return false;
    if (store < 0 || store > int(core::StoreMode::WriteAllocate))
        return false;
    if (tracks != 0 && tracks != 1)
        return false;
    core::MshrPolicy p;
    p.mode = core::CacheMode(mode);
    p.numMshrs = mshrs;
    p.maxMisses = misses;
    p.subBlocks = sub;
    p.missesPerSubBlock = mps;
    p.fetchesPerSet = fps;
    p.fetchesPerSetTracksWays = tracks != 0;
    p.storeMode = core::StoreMode(store);
    p.fillExtraCycles = fill;
    p.label = "custom";
    *out = p;
    return true;
}

bool
configFromJson(const Json &obj, harness::ExperimentConfig *out,
               std::string *err)
{
    if (!obj.isObject()) {
        *err = "'config' must be an object";
        return false;
    }
    static const char *known[] = {
        "label",        "policy",          "cache_bytes",
        "line_bytes",   "ways",            "load_latency",
        "miss_penalty", "issue_width",     "perfect_cache",
        "fill_write_ports", "max_instructions", "hierarchy",
    };
    for (const auto &[name, value] : obj.object()) {
        bool ok = false;
        for (const char *k : known)
            ok = ok || name == k;
        if (!ok) {
            *err = strfmt("unknown config field '%s'", name.c_str());
            return false;
        }
    }
    if (obj.find("hierarchy")) {
        // v1 has no hierarchy-key parser; reject rather than silently
        // simulating a different machine than the client asked for.
        *err = "multi-level 'hierarchy' configs are not supported by "
               "protocol v1";
        return false;
    }

    harness::ExperimentConfig cfg;

    const Json *label = obj.find("label");
    const Json *policy = obj.find("policy");
    std::string labelStr;
    if (label) {
        if (!label->isString()) {
            *err = "'label' must be a string";
            return false;
        }
        labelStr = label->str();
    }
    std::string policyStr;
    if (policy) {
        if (!policy->isString()) {
            *err = "'policy' must be a string";
            return false;
        }
        policyStr = policy->str();
    }
    if (!policyStr.empty()) {
        core::MshrPolicy p;
        if (!parsePolicyKey(policyStr, &p)) {
            *err = strfmt("malformed policy key '%s'",
                          policyStr.c_str());
            return false;
        }
        cfg.customPolicy = p;
        if (!labelStr.empty() && labelStr != "custom") {
            *err = "'policy' requires label \"custom\" (or none)";
            return false;
        }
    } else if (!labelStr.empty()) {
        if (labelStr == "custom") {
            *err = "label \"custom\" requires a 'policy' key";
            return false;
        }
        core::ConfigName name;
        if (!core::parseConfigLabel(labelStr, &name)) {
            *err = strfmt("unknown config label '%s'",
                          labelStr.c_str());
            return false;
        }
        cfg.config = name;
    }

    uint64_t ways = cfg.ways, latency = uint64_t(cfg.loadLatency);
    uint64_t penalty = cfg.missPenalty, width = cfg.issueWidth;
    uint64_t ports = cfg.fillWritePorts;
    if (!getU64(obj, "cache_bytes", &cfg.cacheBytes, err) ||
        !getU64(obj, "line_bytes", &cfg.lineBytes, err) ||
        !getU64(obj, "ways", &ways, err) ||
        !getU64(obj, "load_latency", &latency, err) ||
        !getU64(obj, "miss_penalty", &penalty, err) ||
        !getU64(obj, "issue_width", &width, err) ||
        !getU64(obj, "fill_write_ports", &ports, err) ||
        !getU64(obj, "max_instructions", &cfg.maxInstructions, err) ||
        !getBool(obj, "perfect_cache", &cfg.perfectCache, err))
        return false;
    cfg.ways = unsigned(ways);
    cfg.loadLatency = int(latency);
    cfg.missPenalty = unsigned(penalty);
    cfg.issueWidth = unsigned(width);
    cfg.fillWritePorts = unsigned(ports);

    if (!validateConfig(cfg, err))
        return false;
    *out = cfg;
    return true;
}

bool
parseRequest(const std::string &payload, Request *out,
             std::string *errCode, std::string *errMsg,
             uint64_t *idOut)
{
    *idOut = 0;
    std::string parseErr;
    std::optional<Json> doc = Json::tryParse(payload, &parseErr);
    if (!doc) {
        *errCode = kErrBadJson;
        *errMsg = parseErr;
        return false;
    }
    if (!doc->isObject()) {
        *errCode = kErrBadJson;
        *errMsg = "request must be a JSON object";
        return false;
    }

    // Recover the correlation id first so even a rejected request
    // gets a correlatable error response.
    const Json *id = doc->find("id");
    std::string err;
    uint64_t idVal = 0;
    if (id && !getU64(*doc, "id", &idVal, &err)) {
        *errCode = kErrBadRequest;
        *errMsg = err;
        return false;
    }
    *idOut = idVal;
    out->id = idVal;

    const Json *v = doc->find("v");
    if (v) {
        if (!v->isNumber() || v->number() != kProtocolVersion) {
            *errCode = kErrBadRequest;
            *errMsg = strfmt("unsupported protocol version (speak %d)",
                             kProtocolVersion);
            return false;
        }
    }

    const Json *kind = doc->find("kind");
    if (!kind || !kind->isString()) {
        *errCode = kErrBadRequest;
        *errMsg = "missing or non-string 'kind'";
        return false;
    }
    const std::string &k = kind->str();
    if (k == "ping") {
        out->kind = Request::Kind::Ping;
        return true;
    }
    if (k == "stats") {
        out->kind = Request::Kind::Stats;
        return true;
    }
    if (k == "shutdown") {
        out->kind = Request::Kind::Shutdown;
        return true;
    }
    if (k != "run") {
        *errCode = kErrBadRequest;
        *errMsg = strfmt("unknown kind '%s'", k.c_str());
        return false;
    }

    out->kind = Request::Kind::Run;
    const Json *points = doc->find("points");
    if (!points || !points->isArray() || points->array().empty()) {
        *errCode = kErrBadRequest;
        *errMsg = "'run' requires a non-empty 'points' array";
        return false;
    }
    if (points->array().size() > 100000) {
        *errCode = kErrBadRequest;
        *errMsg = "too many points in one request (max 100000)";
        return false;
    }
    out->points.clear();
    out->points.reserve(points->array().size());
    const std::vector<std::string> &names =
        workloads::workloadNames();
    for (const Json &p : points->array()) {
        if (!p.isObject()) {
            *errCode = kErrBadRequest;
            *errMsg = "each point must be an object";
            return false;
        }
        const Json *wl = p.find("workload");
        if (!wl || !wl->isString()) {
            *errCode = kErrBadRequest;
            *errMsg = "each point needs a string 'workload'";
            return false;
        }
        PointSpec spec;
        spec.workload = wl->str();
        bool found = false;
        for (const std::string &name : workloads::workloadNames())
            found = found || name == spec.workload;
        if (!found) {
            *errCode = kErrUnknownWorkload;
            *errMsg = strfmt("unknown workload '%s'",
                             spec.workload.c_str());
            return false;
        }
        const Json *cfg = p.find("config");
        if (cfg && !configFromJson(*cfg, &spec.cfg, &err)) {
            *errCode = kErrBadRequest;
            *errMsg = err;
            return false;
        }
        for (const auto &[name, value] : p.object()) {
            if (name != "workload" && name != "config") {
                *errCode = kErrBadRequest;
                *errMsg = strfmt("unknown point field '%s'",
                                 name.c_str());
                return false;
            }
        }
        out->points.push_back(std::move(spec));
    }
    return true;
}

std::string
errorResponse(uint64_t id, const std::string &code,
              const std::string &message)
{
    return strfmt("{\"v\": %d, \"id\": %llu, \"ok\": false, "
                  "\"error\": {\"code\": %s, \"message\": %s}}",
                  kProtocolVersion, (unsigned long long)id,
                  stats::jsonQuote(code).c_str(),
                  stats::jsonQuote(message).c_str());
}

std::string
pongResponse(uint64_t id)
{
    return strfmt(
        "{\"v\": %d, \"id\": %llu, \"ok\": true, \"kind\": \"pong\"}",
        kProtocolVersion, (unsigned long long)id);
}

std::string
shutdownResponse(uint64_t id)
{
    return strfmt("{\"v\": %d, \"id\": %llu, \"ok\": true, "
                  "\"kind\": \"shutdown\"}",
                  kProtocolVersion, (unsigned long long)id);
}

} // namespace nbl::service
