/**
 * @file
 * Length-prefixed framing for the nbl-labd wire protocol
 * (docs/SERVICE.md).
 *
 * Every message -- request or response -- is one frame:
 *
 *     offset 0: 4-byte magic "NBL1"
 *     offset 4: 4-byte little-endian payload length N
 *     offset 8: N bytes of UTF-8 JSON
 *
 * The magic makes accidental clients (someone cat-ing a file into the
 * socket) fail fast with a diagnosable error instead of a misparsed
 * length, and the explicit length means neither side ever scans for a
 * delimiter inside the payload. Frames above kMaxFrameBytes are
 * rejected without allocating -- a garbage length cannot make the
 * daemon try to reserve gigabytes.
 */

#ifndef NBL_SERVICE_FRAMING_HH
#define NBL_SERVICE_FRAMING_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace nbl::service
{

/** Frame header bytes ("NBL1" + u32le length). */
inline constexpr size_t kFrameHeaderBytes = 8;

/** Wire magic; bump to invalidate every older client at once. */
inline constexpr char kFrameMagic[4] = {'N', 'B', 'L', '1'};

/** Upper bound on one frame's payload (64 MiB). */
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/** Wrap a payload in a frame header. */
std::string encodeFrame(const std::string &payload);

/**
 * Incremental frame decoder: feed() bytes as they arrive, then call
 * next() until it stops returning Frame. Once a decoder reports Bad
 * (wrong magic or oversized length) the stream is unrecoverable --
 * there is no way to resynchronize a length-prefixed stream -- and
 * every further next() returns Bad again.
 */
class FrameDecoder
{
  public:
    enum class Status
    {
        NeedMore, ///< No complete frame buffered yet.
        Frame,    ///< *payload holds the next frame's payload.
        Bad,      ///< Stream corrupt; see error().
    };

    void feed(const char *data, size_t len);

    Status next(std::string *payload);

    /** Description of the corruption after Bad. */
    const std::string &error() const { return error_; }

    /** Bytes buffered but not yet consumed (diagnostics). */
    size_t buffered() const { return buf_.size() - consumed_; }

  private:
    std::string buf_;
    size_t consumed_ = 0;
    bool bad_ = false;
    std::string error_;
};

/** Result of one blocking read. */
enum class ReadStatus
{
    Ok,    ///< *payload holds one frame's payload.
    Eof,   ///< Peer closed cleanly between frames.
    Error, ///< I/O error, truncated frame, or corrupt header.
};

/**
 * Read exactly one frame from fd (blocking). EOF in the middle of a
 * frame is an Error ("truncated frame"), EOF on a frame boundary is
 * Eof.
 */
ReadStatus readFrame(int fd, std::string *payload, std::string *error);

/** Write one framed payload to fd (blocking). False on I/O error. */
bool writeFrame(int fd, const std::string &payload);

} // namespace nbl::service

#endif // NBL_SERVICE_FRAMING_HH
