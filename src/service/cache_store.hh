/**
 * @file
 * Persistent content-addressed store for the sweep service
 * (docs/SERVICE.md).
 *
 * Two kinds of entries, both addressed by the FNV-1a hash of their
 * full key string:
 *
 *  - results/<hash>.res  -- one experiment point's serialized stats
 *    snapshot, keyed by "workload|fingerprint|experimentKey" (the
 *    same hash-the-inputs discipline the in-memory memoizer uses:
 *    equal keys simulate to bit-identical counters, so a stored
 *    payload is interchangeable with a fresh simulation);
 *  - traces/<hash>.trc   -- one recorded event trace, keyed by
 *    "workload|fingerprint", so a restarted daemon skips the
 *    functional-interpreter recording too.
 *
 * Every file starts with a format-version header and ends in a
 * checksum, and embeds its full key. Three failure classes, three
 * behaviors:
 *
 *  - unknown version  -> ignored (counted, treated as a miss): a
 *    newer or older daemon's entries are never misread;
 *  - key mismatch     -> miss (a hash collision shares the file name;
 *    the store must not serve the other key's payload);
 *  - corruption (bad checksum, malformed header, short file)
 *                     -> the file is quarantined -- renamed into
 *    quarantine/ -- so it is recomputed rather than trusted, and the
 *    broken bytes stay available for diagnosis.
 *
 * Writes go through a temp file + rename, so a crashed writer leaves
 * either the old entry or a .tmp orphan, never a torn entry.
 */

#ifndef NBL_SERVICE_CACHE_STORE_HH
#define NBL_SERVICE_CACHE_STORE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "exec/event_trace.hh"

namespace nbl::service
{

/** FNV-1a 64-bit over a string (the store's content address). */
uint64_t fnv1a64(const std::string &s);

class CacheStore
{
  public:
    /** A disabled store: every load misses, every store is a no-op. */
    CacheStore() = default;

    /** Open (creating if needed) the store rooted at dir. */
    explicit CacheStore(const std::string &dir);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** Load a result payload; nullopt on miss (in every form). */
    std::optional<std::string> loadResult(const std::string &key);

    /** Persist a result payload under key (last writer wins). */
    void storeResult(const std::string &key,
                     const std::string &payload);

    /** Load a recorded trace; nullptr on miss. */
    std::shared_ptr<const exec::EventTrace>
    loadTrace(const std::string &key);

    void storeTrace(const std::string &key,
                    const exec::EventTrace &trace);

    struct Counters
    {
        uint64_t resultHits = 0;
        uint64_t resultMisses = 0;
        uint64_t resultStores = 0;
        uint64_t traceHits = 0;
        uint64_t traceMisses = 0;
        uint64_t traceStores = 0;
        uint64_t quarantined = 0;     ///< Files moved aside as corrupt.
        uint64_t versionIgnored = 0;  ///< Stale-format entries skipped.
    };

    Counters counters() const;

  private:
    std::string resultPath(const std::string &key) const;
    std::string tracePath(const std::string &key) const;

    /** Move a broken file into quarantine/ (best effort). */
    void quarantine(const std::string &path);

    /** Atomic whole-file write (temp + rename). */
    bool writeAtomic(const std::string &path,
                     const std::string &bytes);

    std::string dir_;
    mutable std::mutex mutex_; ///< Guards counters_ only; file ops
                               ///< are atomic via rename.
    Counters counters_;
};

} // namespace nbl::service

#endif // NBL_SERVICE_CACHE_STORE_HH
