#include "service/framing.hh"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <unistd.h>

#include "util/log.hh"

namespace nbl::service
{

namespace
{

uint32_t
loadLe32(const char *p)
{
    return uint32_t(uint8_t(p[0])) | uint32_t(uint8_t(p[1])) << 8 |
           uint32_t(uint8_t(p[2])) << 16 |
           uint32_t(uint8_t(p[3])) << 24;
}

void
storeLe32(char *p, uint32_t v)
{
    p[0] = char(v & 0xff);
    p[1] = char((v >> 8) & 0xff);
    p[2] = char((v >> 16) & 0xff);
    p[3] = char((v >> 24) & 0xff);
}

/** Read exactly n bytes; short count = EOF/error. */
ssize_t
readAll(int fd, char *buf, size_t n)
{
    size_t got = 0;
    while (got < n) {
        ssize_t r = ::read(fd, buf + got, n - got);
        if (r == 0)
            break;
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        got += size_t(r);
    }
    return ssize_t(got);
}

/**
 * Write exactly n bytes, resuming at the current offset after EINTR
 * and after a full send buffer (EAGAIN/EWOULDBLOCK on a nonblocking
 * fd, waited out with poll). Failing mid-frame is not an option the
 * protocol can absorb: a truncated frame leaves the byte stream with
 * no resynchronization point, so the only recoverable errors are the
 * ones we can resume from.
 */
bool
writeAll(int fd, const char *buf, size_t n)
{
    size_t put = 0;
    while (put < n) {
        ssize_t r = ::write(fd, buf + put, n - put);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                struct pollfd pfd;
                pfd.fd = fd;
                pfd.events = POLLOUT;
                pfd.revents = 0;
                if (::poll(&pfd, 1, -1) < 0 && errno != EINTR)
                    return false;
                continue;
            }
            return false;
        }
        put += size_t(r);
    }
    return true;
}

/** Validate a header; true iff well-formed, else fills *error. */
bool
checkHeader(const char *hdr, uint32_t *len, std::string *error)
{
    if (std::memcmp(hdr, kFrameMagic, sizeof(kFrameMagic)) != 0) {
        if (error)
            *error = "bad frame magic";
        return false;
    }
    *len = loadLe32(hdr + 4);
    if (*len > kMaxFrameBytes) {
        if (error)
            *error = strfmt("frame length %u exceeds limit %u", *len,
                            kMaxFrameBytes);
        return false;
    }
    return true;
}

} // namespace

std::string
encodeFrame(const std::string &payload)
{
    if (payload.size() > kMaxFrameBytes)
        panic("encodeFrame: payload of %zu bytes exceeds frame limit",
              payload.size());
    std::string out;
    out.reserve(kFrameHeaderBytes + payload.size());
    out.append(kFrameMagic, sizeof(kFrameMagic));
    char len[4];
    storeLe32(len, uint32_t(payload.size()));
    out.append(len, sizeof(len));
    out += payload;
    return out;
}

void
FrameDecoder::feed(const char *data, size_t len)
{
    // Compact lazily: drop consumed bytes before growing the buffer.
    if (consumed_ > 0 && consumed_ == buf_.size()) {
        buf_.clear();
        consumed_ = 0;
    } else if (consumed_ > (64u << 10)) {
        buf_.erase(0, consumed_);
        consumed_ = 0;
    }
    buf_.append(data, len);
}

FrameDecoder::Status
FrameDecoder::next(std::string *payload)
{
    if (bad_)
        return Status::Bad;
    if (buf_.size() - consumed_ < kFrameHeaderBytes)
        return Status::NeedMore;
    uint32_t len = 0;
    if (!checkHeader(buf_.data() + consumed_, &len, &error_)) {
        bad_ = true;
        return Status::Bad;
    }
    if (buf_.size() - consumed_ < kFrameHeaderBytes + len)
        return Status::NeedMore;
    payload->assign(buf_, consumed_ + kFrameHeaderBytes, len);
    consumed_ += kFrameHeaderBytes + len;
    return Status::Frame;
}

ReadStatus
readFrame(int fd, std::string *payload, std::string *error)
{
    char hdr[kFrameHeaderBytes];
    ssize_t got = readAll(fd, hdr, sizeof(hdr));
    if (got == 0)
        return ReadStatus::Eof;
    if (got < 0 || size_t(got) != sizeof(hdr)) {
        if (error)
            *error = got < 0 ? strfmt("read: %s", std::strerror(errno))
                             : std::string("truncated frame header");
        return ReadStatus::Error;
    }
    uint32_t len = 0;
    if (!checkHeader(hdr, &len, error))
        return ReadStatus::Error;
    payload->resize(len);
    if (len > 0) {
        got = readAll(fd, payload->data(), len);
        if (got < 0 || size_t(got) != len) {
            if (error)
                *error = got < 0
                             ? strfmt("read: %s", std::strerror(errno))
                             : std::string("truncated frame payload");
            return ReadStatus::Error;
        }
    }
    return ReadStatus::Ok;
}

bool
writeFrame(int fd, const std::string &payload)
{
    std::string frame = encodeFrame(payload);
    return writeAll(fd, frame.data(), frame.size());
}

} // namespace nbl::service
