/**
 * @file
 * SocketServer: the daemon's transport (docs/SERVICE.md).
 *
 * Listens on a unix-domain socket (always) and optionally on a
 * loopback TCP port, accepts connections from a poll loop, and runs
 * one thread per connection. Each connection is a sequence of framed
 * requests (service/framing.hh); every frame gets exactly one framed
 * response, in order. A framing error gets a final "bad-frame" error
 * response (best effort) and the connection is closed -- framing
 * errors are not resynchronizable.
 *
 * Shutdown paths: stop() (signal-safe flag + self-pipe) from any
 * thread, or a client "shutdown" request, which is acknowledged on
 * that connection first. wait() joins everything.
 */

#ifndef NBL_SERVICE_SERVER_HH
#define NBL_SERVICE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hh"

namespace nbl::service
{

class SocketServer
{
  public:
    struct Options
    {
        /** Path of the unix-domain listening socket (required). A
         *  stale file at the path is unlinked first. */
        std::string unixPath;
        /** Also listen on 127.0.0.1:tcpPort (0 = ephemeral port,
         *  reported by tcpPort() after start()). */
        bool tcp = false;
        uint16_t tcpPort = 0;
    };

    SocketServer(LabService &service, Options opt);
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /** Bind, listen, and spawn the accept loop. False (with *err
     *  filled) when a socket cannot be set up. */
    bool start(std::string *err);

    /** Block until the server has stopped and every connection
     *  thread has been joined. */
    void wait();

    /** Ask the server to stop (idempotent, callable from connection
     *  threads). Unblocks the accept loop and every in-flight read. */
    void stop();

    bool running() const { return running_.load(); }

    /** The bound TCP port (after start(), when Options::tcp). */
    uint16_t tcpPort() const { return boundTcpPort_; }

    const std::string &unixPath() const { return opt_.unixPath; }

  private:
    void acceptLoop();
    void connection(int fd);

    LabService &service_;
    Options opt_;
    int unixFd_ = -1;
    int tcpFd_ = -1;
    int stopPipe_[2] = {-1, -1};
    uint16_t boundTcpPort_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopRequested_{false};
    std::thread acceptThread_;
    std::mutex connMutex_; ///< Guards connThreads_ and connFds_.
    std::vector<std::thread> connThreads_;
    std::set<int> connFds_;
};

} // namespace nbl::service

#endif // NBL_SERVICE_SERVER_HH
