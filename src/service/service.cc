#include "service/service.hh"

#include <algorithm>
#include <vector>

#include "harness/stats_export.hh"
#include "stats/json.hh"
#include "stats/run_stats.hh"
#include "util/env.hh"
#include "util/log.hh"

namespace nbl::service
{

std::string
resultStoreKey(const std::string &workload, uint64_t fingerprint,
               const std::string &experimentKey)
{
    return strfmt("%s|%016llx|%s", workload.c_str(),
                  (unsigned long long)fingerprint,
                  experimentKey.c_str());
}

std::string
traceStoreKey(const std::string &workload, uint64_t fingerprint)
{
    return strfmt("%s|%016llx", workload.c_str(),
                  (unsigned long long)fingerprint);
}

LabService::LabService(harness::Lab &lab, CacheStore &store)
    : lab_(lab), store_(store),
      memoCap_(size_t(
          std::max<int64_t>(0, envInt("NBL_LAB_RESULT_CAP", 0))))
{
}

void
LabService::publish(const std::string &key,
                    std::shared_ptr<const std::string> json)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = memo_.emplace(key, std::move(json));
    (void)it;
    if (inserted && memoCap_ != 0) {
        memoFifo_.push_back(key);
        while (memo_.size() > memoCap_ && !memoFifo_.empty()) {
            memo_.erase(memoFifo_.front());
            memoFifo_.pop_front();
        }
    }
    computing_.erase(key);
    cv_.notify_all();
}

void
LabService::persistNewTraces()
{
    if (!store_.enabled())
        return;
    // Collect under the Lab's trace lock, write outside it.
    std::vector<std::pair<std::string,
                          std::shared_ptr<const exec::EventTrace>>>
        fresh;
    lab_.forEachTrace([&](const std::string &wl, uint64_t fp,
                          const std::shared_ptr<const exec::EventTrace>
                              &tr) {
        std::string key = traceStoreKey(wl, fp);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!tracesPersisted_.insert(key).second)
                return;
        }
        fresh.emplace_back(std::move(key), tr);
    });
    for (const auto &[key, tr] : fresh)
        store_.storeTrace(key, *tr);
}

std::string
LabService::handleRun(const Request &req)
{
    size_t n = req.points.size();
    struct Slot
    {
        std::shared_ptr<const std::string> json;
        const char *origin = nullptr;
    };
    std::vector<Slot> slots(n);
    std::vector<std::string> keys(n), ekeys(n);
    std::vector<uint64_t> fps(n);

    // Identity first (compiles on first use, outside the service
    // lock: programFingerprint synchronizes inside the Lab).
    for (size_t i = 0; i < n; ++i) {
        const PointSpec &p = req.points[i];
        fps[i] =
            lab_.programFingerprint(p.workload, p.cfg.loadLatency);
        ekeys[i] = harness::experimentKey(p.workload, p.cfg);
        keys[i] = resultStoreKey(p.workload, fps[i], ekeys[i]);
    }

    // Triage every point: memory hit, duplicate of a point this
    // request already claimed, in flight on another connection, or
    // ours to produce.
    std::vector<size_t> mine, waiters, dups;
    std::map<std::string, size_t> claimed;
    uint64_t memoryHits = 0, diskHits = 0, inflightHits = 0,
             computed = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t i = 0; i < n; ++i) {
            auto it = memo_.find(keys[i]);
            if (it != memo_.end()) {
                slots[i] = {it->second, "memory"};
                ++memoryHits;
            } else if (claimed.count(keys[i])) {
                dups.push_back(i);
            } else if (computing_.count(keys[i])) {
                waiters.push_back(i);
            } else {
                computing_.insert(keys[i]);
                claimed[keys[i]] = i;
                mine.push_back(i);
            }
        }
    }

    // Disk probe for the claimed points; hits are published so
    // concurrent waiters get them too.
    std::vector<size_t> toCompute;
    for (size_t i : mine) {
        if (std::optional<std::string> payload =
                store_.loadResult(keys[i])) {
            auto sp = std::make_shared<const std::string>(
                std::move(*payload));
            slots[i] = {sp, "disk"};
            ++diskHits;
            publish(keys[i], sp);
        } else {
            toCompute.push_back(i);
        }
    }

    // Offer persisted traces to the Lab before simulating, once per
    // (workload, fingerprint) per process.
    for (size_t i : toCompute) {
        const PointSpec &p = req.points[i];
        std::string tkey = traceStoreKey(p.workload, fps[i]);
        bool firstProbe;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            firstProbe = tracesProbed_.insert(tkey).second;
        }
        if (!firstProbe)
            continue;
        if (std::shared_ptr<const exec::EventTrace> tr =
                store_.loadTrace(tkey)) {
            lab_.injectTrace(p.workload, fps[i], tr);
            std::lock_guard<std::mutex> lock(mutex_);
            tracesPersisted_.insert(tkey);
        }
    }

    // Group by workload and batch through the lane-replay engine.
    std::map<std::string, std::vector<size_t>> byWorkload;
    for (size_t i : toCompute)
        byWorkload[req.points[i].workload].push_back(i);
    for (const auto &[wl, idxs] : byWorkload) {
        std::vector<harness::ExperimentConfig> cfgs;
        cfgs.reserve(idxs.size());
        for (size_t i : idxs)
            cfgs.push_back(req.points[i].cfg);
        std::vector<harness::ExperimentResult> results =
            lab_.runLanes(wl, cfgs);
        for (size_t k = 0; k < idxs.size(); ++k) {
            size_t i = idxs[k];
            auto sp = std::make_shared<const std::string>(
                stats::snapshotOfRun(results[k].run).toJson(0));
            slots[i] = {sp, "computed"};
            ++computed;
            store_.storeResult(keys[i], *sp);
            publish(keys[i], sp);
        }
    }
    if (!toCompute.empty())
        persistNewTraces();

    // Intra-request duplicates share the slot their twin produced.
    for (size_t i : dups) {
        slots[i] = slots[claimed[keys[i]]];
        slots[i].origin = "inflight";
        ++inflightHits;
    }

    // Wait for points another connection is computing. If the memo
    // entry was FIFO-evicted before we woke, fall back to a direct
    // run (the Lab's own memoizer usually still has it).
    if (!waiters.empty()) {
        std::unique_lock<std::mutex> lock(mutex_);
        for (size_t i : waiters) {
            cv_.wait(lock, [&] {
                return memo_.count(keys[i]) != 0 ||
                       computing_.count(keys[i]) == 0;
            });
            auto it = memo_.find(keys[i]);
            if (it != memo_.end()) {
                slots[i] = {it->second, "inflight"};
                ++inflightHits;
                continue;
            }
            lock.unlock();
            const PointSpec &p = req.points[i];
            harness::ExperimentResult r = lab_.run(p.workload, p.cfg);
            auto sp = std::make_shared<const std::string>(
                stats::snapshotOfRun(r.run).toJson(0));
            slots[i] = {sp, "computed"};
            ++computed;
            lock.lock();
        }
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        counters_.points += n;
        counters_.memoryHits += memoryHits;
        counters_.diskHits += diskHits;
        counters_.inflightHits += inflightHits;
        counters_.computed += computed;
    }

    // Assembled with direct appends: the per-point snapshots are
    // multi-KB, and routing them through printf-style formatting
    // doubles the serialization cost of a fully-warm response.
    size_t bytes = 64;
    for (size_t i = 0; i < n; ++i)
        bytes += slots[i].json->size() + ekeys[i].size() + 160;
    std::string out;
    out.reserve(bytes);
    out += strfmt("{\"v\": %d, \"id\": %llu, \"ok\": true, "
                  "\"kind\": \"results\", \"results\": [",
                  kProtocolVersion, (unsigned long long)req.id);
    for (size_t i = 0; i < n; ++i) {
        out += i ? ",\n  {\"workload\": " : "\n  {\"workload\": ";
        out += stats::jsonQuote(req.points[i].workload);
        out += ", \"key\": ";
        out += stats::jsonQuote(ekeys[i]);
        out += ", \"cached\": \"";
        out += slots[i].origin;
        out += "\",\n   \"config\": ";
        out += harness::configJson(req.points[i].cfg);
        out += ",\n   \"stats\": ";
        out += *slots[i].json;
        out += "}";
    }
    out += "\n]}";
    return out;
}

std::string
LabService::statsResponse(uint64_t id)
{
    Counters c = counters();
    harness::Lab::CacheCounters lc = lab_.cacheCounters();
    CacheStore::Counters sc = store_.counters();
    return strfmt(
        "{\"v\": %d, \"id\": %llu, \"ok\": true, \"kind\": \"stats\",\n"
        " \"daemon\": {\"requests\": %llu, \"errors\": %llu, "
        "\"points\": %llu, \"memory_hits\": %llu, \"disk_hits\": %llu, "
        "\"inflight_hits\": %llu, \"computed\": %llu},\n"
        " \"lab\": {\"results\": %zu, \"result_hits\": %llu, "
        "\"result_evictions\": %llu, \"traces\": %zu, "
        "\"trace_hits\": %llu, \"trace_evictions\": %llu, "
        "\"profiles\": %zu, \"profile_hits\": %llu},\n"
        " \"store\": {\"enabled\": %s, \"dir\": %s, "
        "\"result_hits\": %llu, \"result_misses\": %llu, "
        "\"result_stores\": %llu, \"trace_hits\": %llu, "
        "\"trace_misses\": %llu, \"trace_stores\": %llu, "
        "\"quarantined\": %llu, \"version_ignored\": %llu}}",
        kProtocolVersion, (unsigned long long)id,
        (unsigned long long)c.requests, (unsigned long long)c.errors,
        (unsigned long long)c.points,
        (unsigned long long)c.memoryHits,
        (unsigned long long)c.diskHits,
        (unsigned long long)c.inflightHits,
        (unsigned long long)c.computed, lc.results,
        (unsigned long long)lc.resultHits,
        (unsigned long long)lc.resultEvictions, lc.traces,
        (unsigned long long)lc.traceHits,
        (unsigned long long)lc.traceEvictions, lc.profiles,
        (unsigned long long)lc.profileHits,
        store_.enabled() ? "true" : "false",
        stats::jsonQuote(store_.dir()).c_str(),
        (unsigned long long)sc.resultHits,
        (unsigned long long)sc.resultMisses,
        (unsigned long long)sc.resultStores,
        (unsigned long long)sc.traceHits,
        (unsigned long long)sc.traceMisses,
        (unsigned long long)sc.traceStores,
        (unsigned long long)sc.quarantined,
        (unsigned long long)sc.versionIgnored);
}

std::string
LabService::handle(const std::string &payload, bool *shutdown)
{
    *shutdown = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.requests;
    }
    Request req;
    std::string code, msg;
    uint64_t id = 0;
    if (!parseRequest(payload, &req, &code, &msg, &id)) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.errors;
        return errorResponse(id, code, msg);
    }
    switch (req.kind) {
    case Request::Kind::Ping:
        return pongResponse(req.id);
    case Request::Kind::Stats:
        return statsResponse(req.id);
    case Request::Kind::Shutdown:
        *shutdown = true;
        return shutdownResponse(req.id);
    case Request::Kind::Run:
        return handleRun(req);
    }
    return errorResponse(req.id, kErrInternal, "unhandled kind");
}

LabService::Counters
LabService::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

} // namespace nbl::service
