/**
 * @file
 * LabService: the daemon's request brain (docs/SERVICE.md).
 *
 * Wraps one shared harness::Lab plus a persistent CacheStore and
 * answers protocol requests. The interesting path is "run":
 *
 *  1. every point is keyed by (workload, program fingerprint,
 *     experimentKey) -- the same identity the Lab memoizer uses, so
 *     equal keys are interchangeable results;
 *  2. the in-memory memo is probed first, then the on-disk store
 *     (which survives restarts);
 *  3. identical points already being computed by *another* connection
 *     are not recomputed: the second requester blocks on a condition
 *     variable until the first publishes ("in-flight dedup");
 *  4. the points this request must actually simulate are grouped by
 *     workload and pushed through Lab::runLanes, so a sweep-shaped
 *     request gets the batched lockstep-replay engine, not N
 *     independent runs;
 *  5. freshly recorded event traces are persisted, so a restarted
 *     daemon skips even the functional-interpreter recording.
 *
 * Responses carry, per point, the serialized stats snapshot (exact
 * round-trip, docs/OBSERVABILITY.md) and where it came from
 * ("memory" | "disk" | "inflight" | "computed").
 *
 * Thread safety: handle() may be called concurrently from any number
 * of connection threads.
 */

#ifndef NBL_SERVICE_SERVICE_HH
#define NBL_SERVICE_SERVICE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "harness/experiment.hh"
#include "service/cache_store.hh"
#include "service/protocol.hh"

namespace nbl::service
{

class LabService
{
  public:
    /**
     * Both lab and store are borrowed and shared; the caller keeps
     * them alive for the service's lifetime. The in-memory response
     * memo honours the same NBL_LAB_RESULT_CAP FIFO cap the Lab's own
     * memoizer uses (0 = unbounded).
     */
    LabService(harness::Lab &lab, CacheStore &store);

    /**
     * Handle one raw frame payload, returning the response payload.
     * Never fatal on client input. *shutdown is set to true when the
     * request was an acknowledged shutdown (the server stops after
     * sending the response).
     */
    std::string handle(const std::string &payload, bool *shutdown);

    struct Counters
    {
        uint64_t requests = 0;
        uint64_t errors = 0;
        uint64_t points = 0;
        uint64_t memoryHits = 0;
        uint64_t diskHits = 0;
        uint64_t inflightHits = 0;
        uint64_t computed = 0;
    };

    Counters counters() const;

  private:
    std::string handleRun(const Request &req);
    std::string statsResponse(uint64_t id);

    /** Publish a computed/loaded payload and wake waiters. */
    void publish(const std::string &key,
                 std::shared_ptr<const std::string> json);

    /** Persist any event traces recorded since the last call. */
    void persistNewTraces();

    harness::Lab &lab_;
    CacheStore &store_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    /** storeKey -> serialized snapshot JSON. */
    std::map<std::string, std::shared_ptr<const std::string>> memo_;
    std::deque<std::string> memoFifo_;
    size_t memoCap_ = 0; ///< 0 = unbounded.
    /** Keys some connection is currently computing. */
    std::set<std::string> computing_;
    /** Trace keys already persisted or probed on disk this process. */
    std::set<std::string> tracesPersisted_;
    std::set<std::string> tracesProbed_;
    Counters counters_;
};

/**
 * The store key of one experiment point:
 * "<workload>|<fingerprint-hex>|<experimentKey>". Fingerprint is the
 * compiled program's content hash, so a workload-generator change
 * invalidates old entries instead of serving stale counters.
 */
std::string resultStoreKey(const std::string &workload,
                           uint64_t fingerprint,
                           const std::string &experimentKey);

/** The store key of one recorded trace: "<workload>|<fp-hex>". */
std::string traceStoreKey(const std::string &workload,
                          uint64_t fingerprint);

} // namespace nbl::service

#endif // NBL_SERVICE_SERVICE_HH
