#include "service/cache_store.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/log.hh"

namespace fs = std::filesystem;

namespace nbl::service
{

uint64_t
fnv1a64(const std::string &s)
{
    uint64_t h = 14695981039346656037ull;
    for (char c : s) {
        h ^= uint8_t(c);
        h *= 1099511628211ull;
    }
    return h;
}

namespace
{

/** Result-file format version line (bump on any layout change). */
constexpr const char *kResultMagic = "nbl-cas-result";
constexpr int kResultVersion = 1;

/** Trace-file magic + version (binary format). */
constexpr char kTraceMagic[8] = {'N', 'B', 'L', 'C', 'A', 'S', 'T', '1'};

std::string
hashName(const std::string &key)
{
    return strfmt("%016llx", (unsigned long long)fnv1a64(key));
}

bool
readWholeFile(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return in.good() || in.eof();
}

void
appendU64(std::string *out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out->push_back(char((v >> (8 * i)) & 0xff));
}

bool
takeU64(const std::string &bytes, size_t *pos, uint64_t *out)
{
    if (*pos + 8 > bytes.size())
        return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(uint8_t(bytes[*pos + i])) << (8 * i);
    *pos += 8;
    *out = v;
    return true;
}

/**
 * Serialize a trace:
 *   magic[8] | keyLen u64 | key | instructions | recordCap |
 *   hitCap u64 | nSegs u64 | segStart u32[] | segLen u32[] |
 *   nAddrs u64 | effAddrs u64[] | fnv64(all preceding bytes)
 */
std::string
encodeTrace(const std::string &key, const exec::EventTrace &t)
{
    std::string out(kTraceMagic, sizeof(kTraceMagic));
    appendU64(&out, key.size());
    out += key;
    appendU64(&out, t.instructions);
    appendU64(&out, t.recordCap);
    appendU64(&out, t.hitInstructionCap ? 1 : 0);
    appendU64(&out, t.segStart.size());
    for (uint32_t v : t.segStart)
        for (int i = 0; i < 4; ++i)
            out.push_back(char((v >> (8 * i)) & 0xff));
    for (uint32_t v : t.segLen)
        for (int i = 0; i < 4; ++i)
            out.push_back(char((v >> (8 * i)) & 0xff));
    appendU64(&out, t.effAddrs.size());
    for (uint64_t v : t.effAddrs)
        appendU64(&out, v);
    appendU64(&out, fnv1a64(out));
    return out;
}

enum class DecodeStatus { Ok, WrongVersion, WrongKey, Corrupt };

DecodeStatus
decodeTrace(const std::string &bytes, const std::string &key,
            exec::EventTrace *out)
{
    if (bytes.size() < sizeof(kTraceMagic) + 8)
        return DecodeStatus::Corrupt;
    if (std::memcmp(bytes.data(), kTraceMagic, sizeof(kTraceMagic)) != 0)
        return DecodeStatus::WrongVersion;
    // Checksum covers everything before the trailing 8 bytes.
    size_t bodyLen = bytes.size() - 8;
    size_t pos = bodyLen;
    uint64_t sum = 0;
    takeU64(bytes, &pos, &sum);
    if (fnv1a64(bytes.substr(0, bodyLen)) != sum)
        return DecodeStatus::Corrupt;

    pos = sizeof(kTraceMagic);
    uint64_t keyLen = 0;
    if (!takeU64(bytes, &pos, &keyLen) || pos + keyLen > bodyLen)
        return DecodeStatus::Corrupt;
    if (bytes.compare(pos, keyLen, key) != 0)
        return DecodeStatus::WrongKey;
    pos += keyLen;

    exec::EventTrace t;
    uint64_t hitCap = 0, nSegs = 0, nAddrs = 0;
    if (!takeU64(bytes, &pos, &t.instructions) ||
        !takeU64(bytes, &pos, &t.recordCap) ||
        !takeU64(bytes, &pos, &hitCap) || hitCap > 1 ||
        !takeU64(bytes, &pos, &nSegs))
        return DecodeStatus::Corrupt;
    t.hitInstructionCap = hitCap != 0;
    if (pos + nSegs * 8 > bodyLen)
        return DecodeStatus::Corrupt;
    t.segStart.resize(nSegs);
    t.segLen.resize(nSegs);
    auto takeU32 = [&](uint32_t *v) {
        uint32_t r = 0;
        for (int i = 0; i < 4; ++i)
            r |= uint32_t(uint8_t(bytes[pos + i])) << (8 * i);
        pos += 4;
        *v = r;
    };
    for (uint64_t i = 0; i < nSegs; ++i)
        takeU32(&t.segStart[i]);
    for (uint64_t i = 0; i < nSegs; ++i)
        takeU32(&t.segLen[i]);
    if (!takeU64(bytes, &pos, &nAddrs) || pos + nAddrs * 8 > bodyLen)
        return DecodeStatus::Corrupt;
    t.effAddrs.resize(nAddrs);
    for (uint64_t i = 0; i < nAddrs; ++i)
        takeU64(bytes, &pos, &t.effAddrs[i]);
    if (pos != bodyLen)
        return DecodeStatus::Corrupt;
    *out = std::move(t);
    return DecodeStatus::Ok;
}

/**
 * Result file layout (text header, binary-safe payload):
 *   "nbl-cas-result <version> <payloadBytes> <fnv64(payload)>\n"
 *   "<key>\n"
 *   <payload bytes>
 */
std::string
encodeResult(const std::string &key, const std::string &payload)
{
    std::string out =
        strfmt("%s %d %zu %016llx\n", kResultMagic, kResultVersion,
               payload.size(),
               (unsigned long long)fnv1a64(payload));
    out += key;
    out.push_back('\n');
    out += payload;
    return out;
}

DecodeStatus
decodeResult(const std::string &bytes, const std::string &key,
             std::string *payload)
{
    size_t eol = bytes.find('\n');
    if (eol == std::string::npos)
        return DecodeStatus::Corrupt;
    char magic[32];
    int version = 0;
    size_t size = 0;
    unsigned long long sum = 0;
    if (std::sscanf(bytes.substr(0, eol).c_str(), "%31s %d %zu %llx",
                    magic, &version, &size, &sum) != 4)
        return DecodeStatus::Corrupt;
    if (std::string(magic) != kResultMagic)
        return DecodeStatus::Corrupt;
    if (version != kResultVersion)
        return DecodeStatus::WrongVersion;
    size_t keyEol = bytes.find('\n', eol + 1);
    if (keyEol == std::string::npos)
        return DecodeStatus::Corrupt;
    if (bytes.compare(eol + 1, keyEol - eol - 1, key) != 0)
        return DecodeStatus::WrongKey;
    if (bytes.size() - keyEol - 1 != size)
        return DecodeStatus::Corrupt;
    std::string body = bytes.substr(keyEol + 1);
    if (fnv1a64(body) != sum)
        return DecodeStatus::Corrupt;
    *payload = std::move(body);
    return DecodeStatus::Ok;
}

} // namespace

CacheStore::CacheStore(const std::string &dir) : dir_(dir)
{
    std::error_code ec;
    fs::create_directories(fs::path(dir_) / "results", ec);
    fs::create_directories(fs::path(dir_) / "traces", ec);
    fs::create_directories(fs::path(dir_) / "quarantine", ec);
    if (ec)
        fatal("cache-store: cannot create '%s': %s", dir_.c_str(),
              ec.message().c_str());
}

std::string
CacheStore::resultPath(const std::string &key) const
{
    return (fs::path(dir_) / "results" / (hashName(key) + ".res"))
        .string();
}

std::string
CacheStore::tracePath(const std::string &key) const
{
    return (fs::path(dir_) / "traces" / (hashName(key) + ".trc"))
        .string();
}

void
CacheStore::quarantine(const std::string &path)
{
    std::error_code ec;
    fs::path dst = fs::path(dir_) / "quarantine" /
                   fs::path(path).filename();
    fs::rename(path, dst, ec);
    if (ec) // Last resort: never serve the broken file again.
        fs::remove(path, ec);
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.quarantined;
}

bool
CacheStore::writeAtomic(const std::string &path,
                        const std::string &bytes)
{
    // Unique temp name per writer so concurrent stores of the same
    // key don't clobber each other's partial file; rename makes the
    // final entry appear atomically (last writer wins).
    static std::atomic<uint64_t> seq{0};
    std::string tmp = strfmt("%s.%llu.tmp", path.c_str(),
                             (unsigned long long)seq.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(bytes.data(), std::streamsize(bytes.size()));
        if (!out.good())
            return false;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

std::optional<std::string>
CacheStore::loadResult(const std::string &key)
{
    if (!enabled())
        return std::nullopt;
    std::string path = resultPath(key);
    std::string bytes;
    if (!readWholeFile(path, &bytes)) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.resultMisses;
        return std::nullopt;
    }
    std::string payload;
    switch (decodeResult(bytes, key, &payload)) {
    case DecodeStatus::Ok: {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.resultHits;
        return payload;
    }
    case DecodeStatus::WrongVersion: {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.versionIgnored;
        ++counters_.resultMisses;
        return std::nullopt;
    }
    case DecodeStatus::WrongKey: {
        // Hash collision: the file belongs to another key.
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.resultMisses;
        return std::nullopt;
    }
    case DecodeStatus::Corrupt: {
        quarantine(path);
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.resultMisses;
        return std::nullopt;
    }
    }
    return std::nullopt;
}

void
CacheStore::storeResult(const std::string &key,
                        const std::string &payload)
{
    if (!enabled())
        return;
    if (writeAtomic(resultPath(key), encodeResult(key, payload))) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.resultStores;
    }
}

std::shared_ptr<const exec::EventTrace>
CacheStore::loadTrace(const std::string &key)
{
    if (!enabled())
        return nullptr;
    std::string path = tracePath(key);
    std::string bytes;
    if (!readWholeFile(path, &bytes)) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.traceMisses;
        return nullptr;
    }
    auto trace = std::make_shared<exec::EventTrace>();
    switch (decodeTrace(bytes, key, trace.get())) {
    case DecodeStatus::Ok: {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.traceHits;
        return trace;
    }
    case DecodeStatus::WrongVersion: {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.versionIgnored;
        ++counters_.traceMisses;
        return nullptr;
    }
    case DecodeStatus::WrongKey: {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.traceMisses;
        return nullptr;
    }
    case DecodeStatus::Corrupt: {
        quarantine(path);
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.traceMisses;
        return nullptr;
    }
    }
    return nullptr;
}

void
CacheStore::storeTrace(const std::string &key,
                       const exec::EventTrace &trace)
{
    if (!enabled())
        return;
    if (writeAtomic(tracePath(key), encodeTrace(key, trace))) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.traceStores;
    }
}

CacheStore::Counters
CacheStore::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

} // namespace nbl::service
