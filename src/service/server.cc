#include "service/server.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/framing.hh"
#include "service/protocol.hh"
#include "util/log.hh"

namespace nbl::service
{

namespace
{

void
closeIf(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

SocketServer::SocketServer(LabService &service, Options opt)
    : service_(service), opt_(std::move(opt))
{
}

SocketServer::~SocketServer()
{
    stop();
    wait();
}

bool
SocketServer::start(std::string *err)
{
    if (opt_.unixPath.empty()) {
        *err = "no unix socket path given";
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt_.unixPath.size() >= sizeof(addr.sun_path)) {
        *err = strfmt("socket path too long (max %zu bytes): %s",
                      sizeof(addr.sun_path) - 1, opt_.unixPath.c_str());
        return false;
    }
    std::strncpy(addr.sun_path, opt_.unixPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    unixFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unixFd_ < 0) {
        *err = strfmt("socket(): %s", std::strerror(errno));
        return false;
    }
    ::unlink(opt_.unixPath.c_str()); // Stale socket from a dead daemon.
    if (::bind(unixFd_, (const sockaddr *)&addr, sizeof(addr)) < 0 ||
        ::listen(unixFd_, 64) < 0) {
        *err = strfmt("bind/listen on '%s': %s", opt_.unixPath.c_str(),
                      std::strerror(errno));
        closeIf(unixFd_);
        return false;
    }

    if (opt_.tcp) {
        tcpFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tcpFd_ < 0) {
            *err = strfmt("socket(tcp): %s", std::strerror(errno));
            closeIf(unixFd_);
            return false;
        }
        int one = 1;
        ::setsockopt(tcpFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in in{};
        in.sin_family = AF_INET;
        in.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        in.sin_port = htons(opt_.tcpPort);
        if (::bind(tcpFd_, (const sockaddr *)&in, sizeof(in)) < 0 ||
            ::listen(tcpFd_, 64) < 0) {
            *err = strfmt("bind/listen on 127.0.0.1:%u: %s",
                          unsigned(opt_.tcpPort), std::strerror(errno));
            closeIf(unixFd_);
            closeIf(tcpFd_);
            return false;
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(tcpFd_, (sockaddr *)&bound, &len) == 0)
            boundTcpPort_ = ntohs(bound.sin_port);
    }

    if (::pipe(stopPipe_) < 0) {
        *err = strfmt("pipe(): %s", std::strerror(errno));
        closeIf(unixFd_);
        closeIf(tcpFd_);
        return false;
    }

    running_.store(true);
    acceptThread_ = std::thread(&SocketServer::acceptLoop, this);
    return true;
}

void
SocketServer::acceptLoop()
{
    while (!stopRequested_.load()) {
        pollfd fds[3];
        nfds_t nfds = 0;
        fds[nfds++] = {stopPipe_[0], POLLIN, 0};
        fds[nfds++] = {unixFd_, POLLIN, 0};
        if (tcpFd_ >= 0)
            fds[nfds++] = {tcpFd_, POLLIN, 0};
        int rc = ::poll(fds, nfds, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[0].revents)
            break; // stop() signalled.
        for (nfds_t i = 1; i < nfds; ++i) {
            if (!(fds[i].revents & POLLIN))
                continue;
            int conn = ::accept(fds[i].fd, nullptr, nullptr);
            if (conn < 0)
                continue;
            std::lock_guard<std::mutex> lock(connMutex_);
            if (stopRequested_.load()) {
                ::close(conn);
                continue;
            }
            connFds_.insert(conn);
            connThreads_.emplace_back(&SocketServer::connection, this,
                                      conn);
        }
    }
    closeIf(unixFd_);
    closeIf(tcpFd_);
    running_.store(false);
}

void
SocketServer::connection(int fd)
{
    while (!stopRequested_.load()) {
        std::string payload, err;
        ReadStatus st = readFrame(fd, &payload, &err);
        if (st == ReadStatus::Eof)
            break;
        if (st == ReadStatus::Error) {
            // Best effort: tell the client why before hanging up.
            // Framing errors cannot be resynchronized.
            writeFrame(fd, errorResponse(0, kErrBadFrame, err));
            break;
        }
        bool shutdown = false;
        std::string response = service_.handle(payload, &shutdown);
        if (!writeFrame(fd, response))
            break;
        if (shutdown) {
            stop();
            break;
        }
    }
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        connFds_.erase(fd);
    }
    ::close(fd);
}

void
SocketServer::stop()
{
    if (stopRequested_.exchange(true))
        return;
    if (stopPipe_[1] >= 0) {
        char b = 's';
        [[maybe_unused]] ssize_t n = ::write(stopPipe_[1], &b, 1);
    }
    // Unblock connection threads sitting in readFrame().
    std::lock_guard<std::mutex> lock(connMutex_);
    for (int fd : connFds_)
        ::shutdown(fd, SHUT_RDWR);
}

void
SocketServer::wait()
{
    if (acceptThread_.joinable())
        acceptThread_.join();
    // The accept loop has exited, so connThreads_ can only shrink.
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        threads.swap(connThreads_);
    }
    for (std::thread &t : threads)
        if (t.joinable())
            t.join();
    closeIf(stopPipe_[0]);
    closeIf(stopPipe_[1]);
    if (!opt_.unixPath.empty())
        ::unlink(opt_.unixPath.c_str());
}

} // namespace nbl::service
