/**
 * @file
 * nbl-labd request/response schema (docs/SERVICE.md).
 *
 * Every frame payload is one JSON object. Requests carry a client
 * correlation id, a kind, and (for "run") a list of experiment
 * points; responses echo the id. Parsing is strictly non-fatal: a
 * daemon must survive any byte sequence a client can send, so every
 * malformed input maps to an error *response*, never to fatal().
 *
 * The config object uses the same field names the observability
 * layer's `configJson` emits (docs/OBSERVABILITY.md), so a config
 * copied out of any nbl-stats-v1 artifact is a valid request config
 * verbatim. Missing fields take the ExperimentConfig defaults (the
 * paper's baseline system).
 */

#ifndef NBL_SERVICE_PROTOCOL_HH
#define NBL_SERVICE_PROTOCOL_HH

#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace nbl::stats
{
class Json;
}

namespace nbl::service
{

/** Protocol version spoken by this build (the "v" member). */
inline constexpr int kProtocolVersion = 1;

/** Machine-readable error codes (docs/SERVICE.md lists them). */
inline constexpr const char *kErrBadFrame = "bad-frame";
inline constexpr const char *kErrBadJson = "bad-json";
inline constexpr const char *kErrBadRequest = "bad-request";
inline constexpr const char *kErrUnknownWorkload = "unknown-workload";
inline constexpr const char *kErrUnsupported = "unsupported";
inline constexpr const char *kErrInternal = "internal";

/** One experiment point of a "run" request. */
struct PointSpec
{
    std::string workload;
    harness::ExperimentConfig cfg;
};

/** A parsed request frame. */
struct Request
{
    enum class Kind
    {
        Run,      ///< Simulate (or serve from cache) points.
        Ping,     ///< Liveness probe.
        Stats,    ///< Daemon + cache counters snapshot.
        Shutdown, ///< Stop the daemon after acknowledging.
    };

    uint64_t id = 0;
    Kind kind = Kind::Ping;
    std::vector<PointSpec> points; ///< Kind::Run only.
};

/**
 * Parse one request payload. On failure returns false and fills
 * *errCode (one of the kErr* constants) and *errMsg; *out is
 * unspecified. The request id is recovered whenever the payload was
 * at least valid JSON with a numeric "id", so error responses can
 * still correlate.
 */
bool parseRequest(const std::string &payload, Request *out,
                  std::string *errCode, std::string *errMsg,
                  uint64_t *idOut);

/**
 * Parse a config object (the `configJson` field vocabulary) into an
 * ExperimentConfig. Also validates the ranges the simulator would
 * fatal() on -- the daemon rejects those with an error response
 * instead of dying. False on failure with a description in *err.
 */
bool configFromJson(const stats::Json &obj,
                    harness::ExperimentConfig *out, std::string *err);

/**
 * Range checks for everything the simulator itself would fatal() on
 * (mem::CacheGeometry, cpu::Cpu). The daemon rejects failing configs
 * with an error response instead of dying; `nbl-sim --dry-run` runs
 * the same checks so the CLI and the protocol agree on rejection.
 * False on failure with a description in *err.
 */
bool validateConfig(const harness::ExperimentConfig &cfg,
                    std::string *err);

/**
 * Parse a serialized custom-policy key ("P<mode>.<mshrs>....", the
 * exact string `harness::policyKey` produces) back into a policy.
 * False when the string is not a well-formed policy key.
 */
bool parsePolicyKey(const std::string &key, core::MshrPolicy *out);

/** {"v":1,"id":id,"ok":false,"error":{"code":...,"message":...}} */
std::string errorResponse(uint64_t id, const std::string &code,
                          const std::string &message);

/** {"v":1,"id":id,"ok":true,"kind":"pong"} */
std::string pongResponse(uint64_t id);

/** {"v":1,"id":id,"ok":true,"kind":"shutdown"} */
std::string shutdownResponse(uint64_t id);

} // namespace nbl::service

#endif // NBL_SERVICE_PROTOCOL_HH
