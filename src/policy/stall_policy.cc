/**
 * @file
 * Stall-reduction policy serialization, validation, env knobs, and
 * the cache-level predictor (src/policy/stall_policy.hh).
 */

#include "policy/stall_policy.hh"

#include <cstdio>
#include <cstring>

#include "util/env.hh"
#include "util/log.hh"

namespace nbl::policy
{

namespace
{

/**
 * Deterministic splitmix-style mix of (pc, load sequence number) to a
 * 32-bit value, used by the Synthetic predictor. The correct-set at
 * accuracy a is { loads with mix < a * 2^32 }, nested across
 * accuracies by construction.
 */
uint32_t
syntheticMix(uint64_t pc, uint64_t load_index)
{
    uint64_t x = pc * 0x9E3779B97F4A7C15ull +
                 load_index * 0xBF58476D1CE4E5B9ull +
                 0x94D049BB133111EBull;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<uint32_t>(x);
}

const char *
predictorModeName(PredictorMode m)
{
    switch (m) {
      case PredictorMode::Off:
        return "off";
      case PredictorMode::Table:
        return "table";
      case PredictorMode::Oracle:
        return "oracle";
      case PredictorMode::Synthetic:
        return "synthetic";
    }
    return "?";
}

const char *
prefetchModeName(PrefetchMode m)
{
    switch (m) {
      case PrefetchMode::Off:
        return "off";
      case PrefetchMode::NextLine:
        return "nextline";
      case PrefetchMode::Stride:
        return "stride";
    }
    return "?";
}

bool
parsePredictorMode(const std::string &s, PredictorMode &out)
{
    if (s == "off")
        out = PredictorMode::Off;
    else if (s == "table")
        out = PredictorMode::Table;
    else if (s == "oracle")
        out = PredictorMode::Oracle;
    else if (s == "synthetic")
        out = PredictorMode::Synthetic;
    else
        return false;
    return true;
}

bool
parsePrefetchMode(const std::string &s, PrefetchMode &out)
{
    if (s == "off")
        out = PrefetchMode::Off;
    else if (s == "nextline")
        out = PrefetchMode::NextLine;
    else if (s == "stride")
        out = PrefetchMode::Stride;
    else
        return false;
    return true;
}

} // namespace

std::string
stallPolicyKey(const StallPolicyConfig &p)
{
    if (p.defaulted())
        return "";
    char buf[128];
    std::snprintf(buf, sizeof(buf), "p%s.%u.%u.%.4f+f%s.%u+s%u",
                  predictorModeName(p.predictor.mode),
                  p.predictor.tableBits, p.predictor.penalty,
                  p.predictor.accuracy,
                  prefetchModeName(p.prefetch.mode), p.prefetch.degree,
                  p.ssr.window);
    return buf;
}

void
validateStallPolicy(const StallPolicyConfig &p)
{
    if (p.predictor.tableBits > 24)
        panic("stall policy: predictor table bits %u > 24",
              p.predictor.tableBits);
    if (p.predictor.penalty > 10000)
        panic("stall policy: predictor penalty %u > 10000",
              p.predictor.penalty);
    if (!(p.predictor.accuracy >= 0.0 && p.predictor.accuracy <= 1.0))
        panic("stall policy: predictor accuracy %f outside [0, 1]",
              p.predictor.accuracy);
    if (p.prefetch.mode != PrefetchMode::Off &&
        (p.prefetch.degree < 1 || p.prefetch.degree > 64))
        panic("stall policy: prefetch degree %u outside [1, 64]",
              p.prefetch.degree);
    if (p.ssr.window > 10000)
        panic("stall policy: SSR window %u > 10000", p.ssr.window);
}

StallPolicyConfig
stallPolicyFromEnv()
{
    StallPolicyConfig p;
    std::string pm = envString("NBL_PRED_MODE", "off");
    if (!parsePredictorMode(pm, p.predictor.mode))
        panic("NBL_PRED_MODE=%s: want off|table|oracle|synthetic",
              pm.c_str());
    p.predictor.tableBits =
        unsigned(envInt("NBL_PRED_BITS", p.predictor.tableBits));
    p.predictor.penalty =
        unsigned(envInt("NBL_PRED_PENALTY", p.predictor.penalty));
    p.predictor.accuracy =
        envDouble("NBL_PRED_ACC", p.predictor.accuracy);
    std::string fm = envString("NBL_PF_MODE", "off");
    if (!parsePrefetchMode(fm, p.prefetch.mode))
        panic("NBL_PF_MODE=%s: want off|nextline|stride", fm.c_str());
    p.prefetch.degree =
        unsigned(envInt("NBL_PF_DEGREE", p.prefetch.degree));
    p.ssr.window = unsigned(envInt("NBL_SSR_WINDOW", p.ssr.window));
    validateStallPolicy(p);
    return p;
}

LevelPredictor::LevelPredictor(const PredictorConfig &cfg) : cfg_(cfg)
{
    if (cfg_.mode == PredictorMode::Table)
        table_.assign(size_t(1) << cfg_.tableBits, 2);
}

bool
LevelPredictor::predictAndTrain(uint64_t pc, bool actualHit)
{
    switch (cfg_.mode) {
      case PredictorMode::Off:
      case PredictorMode::Oracle:
        return actualHit;
      case PredictorMode::Table: {
        uint8_t &ctr = table_[pc & (table_.size() - 1)];
        bool hit = ctr >= 2;
        if (actualHit) {
            if (ctr < 3)
                ++ctr;
        } else if (ctr > 0) {
            --ctr;
        }
        return hit;
      }
      case PredictorMode::Synthetic: {
        // Threshold as uint64 so accuracy 1.0 covers every 32-bit
        // mix value.
        uint64_t thresh =
            uint64_t(cfg_.accuracy * 4294967296.0);
        bool correct = syntheticMix(pc, load_index_++) < thresh;
        return correct ? actualHit : !actualHit;
      }
    }
    return actualHit;
}

} // namespace nbl::policy
