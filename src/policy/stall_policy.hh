/**
 * @file
 * Stall-reduction policy vocabulary: cache-level prediction, spare-MSHR
 * prefetching, and SSR-style load-use forwarding.
 *
 * The paper charges every load-miss stall in full; this layer models
 * three modern mechanisms that remove part of that stall, each
 * orthogonal to the MSHR axis (docs/MODEL.md, "Stall-reduction
 * policies"):
 *
 *  - A **cache-level predictor** (Jalili & Erez 2021): the issue logic
 *    schedules against the predicted hit/miss level of each load.
 *    Underpredictions (predicted hit, actual miss) pay a fixed replay
 *    penalty, attributed to its own `pred` stall bucket so the stall
 *    partition identity stays exact.
 *  - A **next-line / stride prefetcher** that issues only through
 *    *spare* MSHRs (`MshrFile::canAllocate`), so prefetch-induced MSHR
 *    pressure per organization is directly measurable. Denied issues
 *    are counted, never stalled.
 *  - **SSR forwarding** (Su et al. 2019): a load-use interlock bubble
 *    no wider than the forwarding window is converted into a
 *    zero-bubble issue (the fill is forwarded into the consumer).
 *
 * The default-constructed StallPolicyConfig is inert: every engine's
 * timing is bit-identical to the pre-policy simulator (tools/check.sh
 * byte-identical figure stdout gate).
 */

#ifndef NBL_POLICY_STALL_POLICY_HH
#define NBL_POLICY_STALL_POLICY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nbl::policy
{

/** How the cache-level predictor forms its guess. */
enum class PredictorMode
{
    Off,    ///< No prediction; no penalties (the paper's model).
    Table,  ///< PC-indexed 2-bit saturating counters (real predictor).
    Oracle, ///< Always correct -- zero penalties, timing unchanged.
    /** Correct on a fixed pseudo-random `accuracy` fraction of loads.
     *  The correct-set at accuracy a is a superset of the correct-set
     *  at any a' < a (nested by construction), so MCPI is monotone in
     *  accuracy for timing-decoupled organizations (fig22). */
    Synthetic,
};

/** What the prefetcher issues on a demand primary miss. */
enum class PrefetchMode
{
    Off,
    NextLine, ///< Blocks blk + k*lineBytes, k = 1..degree.
    /** Global last-miss-block delta, issued once the same delta is
     *  seen twice in a row (confirmed). */
    Stride,
};

/** Cache-level predictor knobs. */
struct PredictorConfig
{
    PredictorMode mode = PredictorMode::Off;
    unsigned tableBits = 8; ///< log2(table entries), Table mode.
    /** Replay penalty (cycles) charged per underprediction. */
    unsigned penalty = 3;
    double accuracy = 1.0; ///< Synthetic mode only, in [0, 1].
};

/** Prefetcher knobs. */
struct PrefetchConfig
{
    PrefetchMode mode = PrefetchMode::Off;
    unsigned degree = 1; ///< Candidates issued per trigger, >= 1.
};

/** SSR forwarding knobs. */
struct SsrConfig
{
    /** Max load-use bubble (cycles) the forwarding network can hide.
     *  0 = off. */
    unsigned window = 0;
};

/** The full stall-reduction policy axis carried by a machine config. */
struct StallPolicyConfig
{
    PredictorConfig predictor;
    PrefetchConfig prefetch;
    SsrConfig ssr;

    /** True when the policy is inert (the paper's model, bit for
     *  bit). Knob values behind an Off mode do not matter. */
    bool
    defaulted() const
    {
        return predictor.mode == PredictorMode::Off &&
               prefetch.mode == PrefetchMode::Off && ssr.window == 0;
    }
};

/** Cache-side prefetcher counters (surfaced as pf.* stats). */
struct PrefetchStats
{
    uint64_t issued = 0;     ///< Prefetch fetches started.
    uint64_t useful = 0;     ///< Prefetched lines a demand later used.
    uint64_t mshrDenied = 0; ///< Candidates dropped: no spare MSHR.
    uint64_t evictHarm = 0;  ///< Demand misses to pf-evicted blocks.
};

/**
 * Canonical serialization of a policy. Equal keys describe identical
 * policy timing; the default policy serializes to "" so existing
 * experiment keys (and the daemon's content-addressed store) are
 * untouched.
 */
std::string stallPolicyKey(const StallPolicyConfig &p);

/** Die unless `p` is simulatable (table size sane, accuracy in
 *  [0, 1], degree >= 1 when prefetching). */
void validateStallPolicy(const StallPolicyConfig &p);

/**
 * Policy described by the NBL_PRED_MODE / NBL_PRED_BITS /
 * NBL_PRED_PENALTY / NBL_PRED_ACC / NBL_PF_MODE / NBL_PF_DEGREE /
 * NBL_SSR_WINDOW knobs (docs/PERF.md). Unset knobs keep their
 * defaults, so an empty environment returns a defaulted() config.
 */
StallPolicyConfig stallPolicyFromEnv();

/**
 * The cache-level predictor consulted by the issue logic, one
 * instance per simulated processor (engines replaying lanes keep one
 * per lane). Deterministic: identical (pc, actual) sequences produce
 * identical predictions in every engine.
 */
class LevelPredictor
{
  public:
    LevelPredictor() = default;
    explicit LevelPredictor(const PredictorConfig &cfg);

    bool active() const { return cfg_.mode != PredictorMode::Off; }

    /**
     * Predict hit/miss for the load at `pc`, then train on the actual
     * outcome.
     * @return true if the predictor said "hit".
     */
    bool predictAndTrain(uint64_t pc, bool actualHit);

  private:
    PredictorConfig cfg_;
    std::vector<uint8_t> table_; ///< 2-bit counters, Table mode.
    uint64_t load_index_ = 0;    ///< Synthetic-mode sequence number.
};

} // namespace nbl::policy

#endif // NBL_POLICY_STALL_POLICY_HH
