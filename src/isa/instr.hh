/**
 * @file
 * Instruction definition for the mini RISC ISA.
 *
 * The ISA is deliberately small: three-operand register instructions,
 * loads/stores with base+displacement addressing, and compare-and-branch
 * instructions. All instructions execute in one cycle on the modeled
 * processor (paper section 3.1); only data-cache behaviour affects
 * timing.
 */

#ifndef NBL_ISA_INSTR_HH
#define NBL_ISA_INSTR_HH

#include <cstdint>
#include <string>

#include "isa/reg.hh"

namespace nbl::isa
{

/** Operation codes. */
enum class Op : uint8_t
{
    Nop,
    // Integer ALU (dst, src1, src2).
    Add, Sub, Mul, And, Or, Xor, Shl, Shr,
    // Integer ALU with immediate (dst, src1, imm).
    AddI, MulI, AndI, ShlI, ShrI,
    // Load a 64-bit immediate (dst, imm).
    LImm,
    // Floating point (dst, src1, src2); values are IEEE double bits.
    FAdd, FSub, FMul, FDiv,
    // Int <-> FP moves (1 cycle like everything else).
    MovIF, MovFI,
    // Memory: Ld/Fld (dst, [src1 + imm]); St/Fst ([src1 + imm], src2).
    Ld, Fld, St, Fst,
    // Control: compare src1, src2 and branch to instruction index imm.
    BEq, BNe, BLt, BGe,
    // Unconditional jump to instruction index imm.
    Jmp,
    // Stop execution.
    Halt,

    NumOps
};

/** One decoded instruction. */
struct Instr
{
    Op op = Op::Nop;
    RegId dst{};       ///< Destination (loads, ALU); unused otherwise.
    RegId src1{};      ///< First source / base register.
    RegId src2{};      ///< Second source / store-data register.
    int64_t imm = 0;   ///< Immediate / displacement / branch target.
    uint8_t size = 8;  ///< Access size in bytes for memory ops.

    bool
    isLoad() const
    {
        return op == Op::Ld || op == Op::Fld;
    }

    bool
    isStore() const
    {
        return op == Op::St || op == Op::Fst;
    }

    bool
    isMem() const
    {
        return isLoad() || isStore();
    }

    bool
    isBranch() const
    {
        return op == Op::BEq || op == Op::BNe || op == Op::BLt ||
               op == Op::BGe || op == Op::Jmp;
    }

    bool
    hasDst() const
    {
        switch (op) {
          case Op::Nop:
          case Op::St:
          case Op::Fst:
          case Op::BEq:
          case Op::BNe:
          case Op::BLt:
          case Op::BGe:
          case Op::Jmp:
          case Op::Halt:
            return false;
          default:
            return true;
        }
    }

    /** Number of register sources actually read by this instruction.
     *  Table-driven and inline: this sits on the per-instruction hot
     *  path of both the interpreter and the timing model. */
    unsigned
    numSrcs() const
    {
        constexpr static uint8_t counts[size_t(Op::NumOps)] = {
            /*Nop*/ 0,
            /*Add*/ 2, /*Sub*/ 2, /*Mul*/ 2, /*And*/ 2, /*Or*/ 2,
            /*Xor*/ 2, /*Shl*/ 2, /*Shr*/ 2,
            /*AddI*/ 1, /*MulI*/ 1, /*AndI*/ 1, /*ShlI*/ 1, /*ShrI*/ 1,
            /*LImm*/ 0,
            /*FAdd*/ 2, /*FSub*/ 2, /*FMul*/ 2, /*FDiv*/ 2,
            /*MovIF*/ 1, /*MovFI*/ 1,
            /*Ld*/ 1, /*Fld*/ 1, /*St*/ 2, /*Fst*/ 2,
            /*BEq*/ 2, /*BNe*/ 2, /*BLt*/ 2, /*BGe*/ 2,
            /*Jmp*/ 0,
            /*Halt*/ 0,
        };
        return counts[size_t(op)];
    }

    /** Human-readable disassembly (for debugging and tests). */
    std::string str() const;
};

/** Mnemonic for an opcode. */
const char *opName(Op op);

} // namespace nbl::isa

#endif // NBL_ISA_INSTR_HH
