#include "isa/program.hh"

#include "util/log.hh"

namespace nbl::isa
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::AddI: return "addi";
      case Op::MulI: return "muli";
      case Op::AndI: return "andi";
      case Op::ShlI: return "shli";
      case Op::ShrI: return "shri";
      case Op::LImm: return "limm";
      case Op::FAdd: return "fadd";
      case Op::FSub: return "fsub";
      case Op::FMul: return "fmul";
      case Op::FDiv: return "fdiv";
      case Op::MovIF: return "movif";
      case Op::MovFI: return "movfi";
      case Op::Ld: return "ld";
      case Op::Fld: return "fld";
      case Op::St: return "st";
      case Op::Fst: return "fst";
      case Op::BEq: return "beq";
      case Op::BNe: return "bne";
      case Op::BLt: return "blt";
      case Op::BGe: return "bge";
      case Op::Jmp: return "jmp";
      case Op::Halt: return "halt";
      default: return "?";
    }
}

namespace
{

std::string
regStr(RegId r)
{
    return strfmt("%c%u", r.cls == RegClass::Int ? 'r' : 'f',
                  unsigned(r.idx));
}

} // namespace

std::string
Instr::str() const
{
    switch (op) {
      case Op::Nop:
      case Op::Halt:
        return opName(op);
      case Op::LImm:
        return strfmt("%s %s, %lld", opName(op), regStr(dst).c_str(),
                      static_cast<long long>(imm));
      case Op::AddI: case Op::MulI: case Op::AndI:
      case Op::ShlI: case Op::ShrI:
        return strfmt("%s %s, %s, %lld", opName(op), regStr(dst).c_str(),
                      regStr(src1).c_str(), static_cast<long long>(imm));
      case Op::MovIF: case Op::MovFI:
        return strfmt("%s %s, %s", opName(op), regStr(dst).c_str(),
                      regStr(src1).c_str());
      case Op::Ld: case Op::Fld:
        return strfmt("%s %s, %lld(%s) sz=%u", opName(op),
                      regStr(dst).c_str(), static_cast<long long>(imm),
                      regStr(src1).c_str(), unsigned(size));
      case Op::St: case Op::Fst:
        return strfmt("%s %lld(%s), %s sz=%u", opName(op),
                      static_cast<long long>(imm), regStr(src1).c_str(),
                      regStr(src2).c_str(), unsigned(size));
      case Op::BEq: case Op::BNe: case Op::BLt: case Op::BGe:
        return strfmt("%s %s, %s, @%lld", opName(op), regStr(src1).c_str(),
                      regStr(src2).c_str(), static_cast<long long>(imm));
      case Op::Jmp:
        return strfmt("jmp @%lld", static_cast<long long>(imm));
      default:
        return strfmt("%s %s, %s, %s", opName(op), regStr(dst).c_str(),
                      regStr(src1).c_str(), regStr(src2).c_str());
    }
}

bool
Program::validate(bool fail_fatal) const
{
    auto bad = [&](const std::string &why) {
        if (fail_fatal)
            fatal("program %s invalid: %s", name_.c_str(), why.c_str());
        return false;
    };

    if (code_.empty())
        return bad("empty program");

    bool has_halt = false;
    for (size_t pc = 0; pc < code_.size(); ++pc) {
        const Instr &in = code_[pc];
        if (in.op == Op::Halt)
            has_halt = true;
        if (in.isBranch()) {
            if (in.imm < 0 ||
                static_cast<size_t>(in.imm) >= code_.size()) {
                return bad(strfmt("branch target out of range at pc %zu",
                                  pc));
            }
        }
        auto check_reg = [&](RegId r) {
            unsigned limit = r.cls == RegClass::Int ? numIntRegs
                                                    : numFpRegs;
            return r.idx < limit;
        };
        if (in.hasDst() && !check_reg(in.dst))
            return bad(strfmt("bad dst register at pc %zu", pc));
        if (in.numSrcs() >= 1 && !check_reg(in.src1))
            return bad(strfmt("bad src1 register at pc %zu", pc));
        if (in.numSrcs() >= 2 && !check_reg(in.src2))
            return bad(strfmt("bad src2 register at pc %zu", pc));
        if (in.isMem()) {
            if (in.size != 1 && in.size != 2 && in.size != 4 &&
                in.size != 8) {
                return bad(strfmt("bad access size at pc %zu", pc));
            }
            if ((in.op == Op::Fld || in.op == Op::Fst) && in.size != 8 &&
                in.size != 4) {
                return bad(strfmt("fp access must be 4 or 8 bytes "
                                  "at pc %zu", pc));
            }
        }
    }
    if (!has_halt)
        return bad("no halt instruction");
    return true;
}

uint64_t
Program::fingerprint() const
{
    // FNV-1a over the semantic fields (not the raw struct bytes, which
    // would hash padding).
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    for (const Instr &in : code_) {
        mix(uint64_t(in.op) | uint64_t(in.size) << 8 |
            uint64_t(in.dst.destLinear()) << 16 |
            uint64_t(in.src1.destLinear()) << 24 |
            uint64_t(in.src2.destLinear()) << 32);
        mix(uint64_t(in.imm));
    }
    mix(code_.size());
    return h;
}

std::string
Program::str() const
{
    std::string out = strfmt("program %s (%zu instrs)\n", name_.c_str(),
                             code_.size());
    for (size_t pc = 0; pc < code_.size(); ++pc)
        out += strfmt("%5zu: %s\n", pc, code_[pc].str().c_str());
    return out;
}

} // namespace nbl::isa
