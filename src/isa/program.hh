/**
 * @file
 * Static program representation: a flat vector of instructions with
 * branch targets expressed as instruction indices.
 */

#ifndef NBL_ISA_PROGRAM_HH
#define NBL_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instr.hh"

namespace nbl::isa
{

/**
 * An executable program for the mini ISA. Programs are produced by the
 * compiler pipeline (src/compiler) and executed by the interpreter
 * (src/exec). Execution starts at instruction 0 and ends at a Halt.
 */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Append an instruction; returns its index. */
    size_t
    push(const Instr &instr)
    {
        code_.push_back(instr);
        return code_.size() - 1;
    }

    const std::vector<Instr> &code() const { return code_; }
    std::vector<Instr> &code() { return code_; }

    size_t size() const { return code_.size(); }
    const Instr &at(size_t pc) const { return code_[pc]; }

    /**
     * Check structural validity: branch targets in range, register
     * indices in range, a Halt is reachable from a linear read. Calls
     * fatal() with a description on failure when fail_fatal is set;
     * otherwise returns false.
     */
    bool validate(bool fail_fatal = true) const;

    /**
     * 64-bit FNV-1a content fingerprint over the instruction stream
     * (opcode, registers, immediate, and access size of every
     * instruction; the program name is excluded). Equal fingerprints
     * mean the programs execute the same code, so timing-independent
     * artifacts derived from one -- notably recorded event traces
     * (exec/event_trace.hh) -- may be shared with the other even when
     * they were compiled for different scheduled load latencies.
     */
    uint64_t fingerprint() const;

    /** Full disassembly listing. */
    std::string str() const;

  private:
    std::string name_;
    std::vector<Instr> code_;
};

} // namespace nbl::isa

#endif // NBL_ISA_PROGRAM_HH
