/**
 * @file
 * Register identifiers for the mini RISC ISA.
 *
 * The machine modeled by the paper has 32 integer and 32 floating-point
 * registers (paper section 3.1). The inverted-MSHR organization also
 * needs a linear "destination" numbering covering every possible target
 * of fetch data; destLinear() provides it.
 */

#ifndef NBL_ISA_REG_HH
#define NBL_ISA_REG_HH

#include <cstdint>

namespace nbl::isa
{

/** Number of integer registers in the modeled machine. */
constexpr unsigned numIntRegs = 32;
/** Number of floating-point registers in the modeled machine. */
constexpr unsigned numFpRegs = 32;
/**
 * Write-buffer entries that can wait on a fetch (destinations of
 * fetch data when stores are non-blocking write-allocate; paper
 * section 2.4 lists them among the inverted MSHR's destinations).
 */
constexpr unsigned numWriteBufferDests = 8;
/**
 * Total number of possible destinations of fetch data: all registers,
 * the program counter (instruction fetch is perfect in this study but
 * the inverted MSHR still provisions the entry), and the write-buffer
 * entries -- the paper's "between 65 and 75 entries".
 */
constexpr unsigned numDests =
    numIntRegs + numFpRegs + 1 + numWriteBufferDests;

/** Linear destination number of the program counter. */
constexpr unsigned pcDest = numIntRegs + numFpRegs;

/** Linear destination number of write-buffer entry i. */
constexpr unsigned
writeBufferDest(unsigned i)
{
    return numIntRegs + numFpRegs + 1 + i;
}

/** Register class: integer or floating point. */
enum class RegClass : uint8_t { Int, Fp };

/** A (class, index) register name. Index numIntRegs is never valid. */
struct RegId
{
    RegClass cls = RegClass::Int;
    uint8_t idx = 0;

    bool operator==(const RegId &) const = default;

    /** Linear destination number for the inverted MSHR (0..numDests-2). */
    unsigned
    destLinear() const
    {
        return cls == RegClass::Int ? idx : numIntRegs + idx;
    }
};

/** Integer register zero is hard-wired to the value 0 (like MIPS $0). */
constexpr RegId regZero{RegClass::Int, 0};

/** Make an integer register id. */
constexpr RegId
intReg(unsigned idx)
{
    return RegId{RegClass::Int, static_cast<uint8_t>(idx)};
}

/** Make a floating-point register id. */
constexpr RegId
fpReg(unsigned idx)
{
    return RegId{RegClass::Fp, static_cast<uint8_t>(idx)};
}

} // namespace nbl::isa

#endif // NBL_ISA_REG_HH
