/**
 * @file
 * Differential runner: execute one generated (program, config-set)
 * point through every engine the repo has and assert the identities
 * that make the paper's numbers trustworthy.
 *
 * Engines crossed per point:
 *  - exec::run        (execution-driven, the source of truth)
 *  - exec::replayExact (record-once/replay-many; bit-identical claim)
 *  - exec::replayLanes (batched lockstep replay: every lane-replayable
 *                       config advances in one pass; bit-identical
 *                       claim, lane for lane)
 *  - harness::Lab      (memoizing engine, serial and parallel; the
 *                       parallel pass batches through lane replay when
 *                       it is enabled, so that path is crossed too)
 *  - exec::replayTrace (optimistic trace replay; exact whenever the
 *                       exec run had no dependency stalls — the trace
 *                       drops only dataflow — and unconditionally for
 *                       blocking caches; unchecked otherwise, where
 *                       the approximation is non-monotone)
 *  - check::referenceRun (independent blocking model; exact at mc=0
 *                       and mc=0 +wma, an upper bound elsewhere)
 *
 * Invariants checked on each run (docs/MODEL.md, docs/TESTING.md):
 * the stall-partition identity, histogram conservation laws, and
 * cross-config monotonicity: adding MSHR resources never increases
 * cycles, and `no restrict` lower-bounds every finite organization.
 * The monotonicity and bound checks require an eviction-free run on
 * both sides -- with evictions the replacement stream itself depends
 * on the configuration and the paper's ordering is not a theorem --
 * and compare only configurations with equal store policy and fill
 * cost.
 */

#ifndef NBL_CHECK_DIFFERENTIAL_HH
#define NBL_CHECK_DIFFERENTIAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/generator.hh"
#include "harness/experiment.hh"
#include "isa/program.hh"

namespace nbl::check
{

/** One failed identity, with enough context to reproduce it. */
struct Divergence
{
    uint64_t seed = 0;    ///< Seed (checkSeed only; 0 otherwise).
    std::string check;    ///< Identity that failed (e.g. "exec-vs-replay").
    std::string detail;   ///< Human-readable mismatch description.
    size_t cfgIndex = 0;  ///< Index into the config vector.

    std::string str() const;
};

/** Runner knobs. */
struct CheckOptions
{
    /** Cross-check the Lab engine (serial and parallel). */
    bool lab = true;
    /** Cross-check lane-batched lockstep replay against exec, one
     *  lane per lane-replayable config. */
    bool lanes = true;
    /** Worker threads for the parallel Lab pass. */
    unsigned labJobs = 3;
    /** Instruction cap applied to every engine (bounds shrinker
     *  candidates whose loops no longer terminate). */
    uint64_t maxInstructions = 1'000'000;
};

/**
 * Run every check for one (program, configs) point. Returns the full
 * list of divergences (empty = clean). cfg.maxInstructions is
 * overridden by opts.maxInstructions so all engines replay the same
 * prefix.
 */
std::vector<Divergence>
checkProgram(const isa::Program &program,
             std::vector<harness::ExperimentConfig> cfgs,
             const CheckOptions &opts = {});

/**
 * One fuzz point end to end: generate the program and config set from
 * `seed`, run checkProgram, and stamp the seed into any divergence.
 */
std::vector<Divergence> checkSeed(uint64_t seed,
                                  const CheckOptions &opts = {});

} // namespace nbl::check

#endif // NBL_CHECK_DIFFERENTIAL_HH
