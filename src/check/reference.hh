/**
 * @file
 * Independent blocking reference model for differential checking.
 *
 * A second, deliberately simple implementation of the paper's blocking
 * cache timing (docs/MODEL.md: `mc=0` and `mc=0 +wma`), written
 * directly against the documented contract and sharing no code with
 * src/core/. The differential runner (check/differential.hh) demands
 * bit-exact agreement with the full model on every counter below for
 * the blocking configurations, and uses the `mc=0` run as an upper
 * bound on the lockup-free configurations: under the documented
 * preconditions a blocking cache can only be slower.
 *
 * The only machinery reused from the main tree is the functional
 * layer (exec::Interpreter + exec::stepProgram): the *architectural*
 * behaviour of a program is not under test here, its timing is.
 */

#ifndef NBL_CHECK_REFERENCE_HH
#define NBL_CHECK_REFERENCE_HH

#include <cstdint>

#include "isa/program.hh"
#include "mem/sparse_memory.hh"

namespace nbl::check
{

/** The machine the reference model times (blocking cache only). */
struct ReferenceConfig
{
    uint64_t cacheBytes = 8 * 1024;
    uint64_t lineBytes = 32;
    unsigned ways = 1;          ///< 0 = fully associative.
    /** Fixed miss penalty; 0 selects the pipelined-bus formula
     *  (14 + 2 cycles per 16-byte chunk beyond the first). */
    unsigned missPenalty = 0;
    /** Fetch-on-write with a full stall ("mc=0 +wma"); otherwise
     *  store misses are written around for free ("mc=0"). */
    bool writeMissAllocate = false;
    uint64_t maxInstructions = 200'000'000;
};

/**
 * Counters the reference model produces. Each corresponds to one
 * scalar of the full model's RunOutput (see referenceRun) and must
 * match it exactly on blocking configurations.
 */
struct ReferenceResult
{
    uint64_t instructions = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t branches = 0;
    uint64_t cycles = 0;
    uint64_t depStallCycles = 0;
    uint64_t blockStallCycles = 0;

    uint64_t loadHits = 0;
    uint64_t storeHits = 0;
    uint64_t loadPrimaryMisses = 0;
    uint64_t storePrimaryMisses = 0; ///< wma only; 0 for write-around.
    uint64_t storeMisses = 0;        ///< All store misses, either mode.
    uint64_t fetches = 0;
    uint64_t evictions = 0;
    bool hitInstructionCap = false;

    /** The single-issue stall partition, for the identity check
     *  (structural stalls cannot occur on a blocking cache). */
    uint64_t
    stallCycles() const
    {
        return depStallCycles + blockStallCycles;
    }
};

/**
 * Run `program` against the reference timing model. `data` is the
 * initial architectural memory, modified in place (pass a fresh
 * image, exactly as for exec::run).
 */
ReferenceResult referenceRun(const isa::Program &program,
                             mem::SparseMemory &data,
                             const ReferenceConfig &cfg);

} // namespace nbl::check

#endif // NBL_CHECK_REFERENCE_HH
