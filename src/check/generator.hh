/**
 * @file
 * Seeded random generator for differential-fuzz inputs: small mini-ISA
 * programs with controlled dependence distance, aliasing, and stride
 * mix, plus cache configurations covering all eight MSHR organizations
 * crossed with associativity, line size, and latency.
 *
 * Generalizes the ad-hoc address-pattern fuzz of
 * tests/test_cache_fuzz.cc: instead of a fixed kernel shape, whole
 * programs are drawn from a seeded distribution and executed through
 * every engine by check/differential.hh. Everything is deterministic
 * in the seed (util/rng.hh), so any failure is replayable from its
 * seed alone.
 */

#ifndef NBL_CHECK_GENERATOR_HH
#define NBL_CHECK_GENERATOR_HH

#include <vector>

#include "harness/experiment.hh"
#include "isa/program.hh"
#include "util/rng.hh"

namespace nbl::check
{

/** Program-shape knobs (defaults give a broad mix). */
struct GenParams
{
    unsigned minBodyLen = 4;   ///< Instructions per loop body.
    unsigned maxBodyLen = 40;
    unsigned maxIterations = 48;
    /** Distinct base-address anchors; fewer anchors = more aliasing. */
    unsigned anchors = 4;
    /** Data footprint the anchors and strides stay within (bytes). */
    uint64_t footprint = 16 * 1024;
    double loadWeight = 0.30;
    double storeWeight = 0.15;
    double branchWeight = 0.08;
    double strideBumpWeight = 0.12;
    /** Probability an ALU source is a recently written register
     *  (short dependence distance) rather than any data register. */
    double nearDepChance = 0.6;
};

/**
 * Generate one valid program: an LImm prologue establishing base
 * registers (drawn from a small anchor set so bases alias), a counted
 * loop of loads/stores/ALU/forward branches with stride bumps, and a
 * final Halt. Every memory access is size-aligned (sizes 1/2/4/8 on
 * 8-byte-aligned addresses), and the program passes
 * isa::Program::validate(). Dynamic length is bounded by a few
 * thousand instructions.
 */
isa::Program generateProgram(Rng &rng, const GenParams &p = {});

/**
 * Generate the configuration set one seed is checked under: a random
 * cache geometry / miss penalty shared by all points, crossed with
 * the ten named configurations (all eight MSHR organizations plus
 * both blocking modes), the Figure-14 destination-field
 * organizations, and a couple of random custom policies. Store mode
 * and fill write ports vary per draw.
 */
std::vector<harness::ExperimentConfig> generateConfigs(Rng &rng);

} // namespace nbl::check

#endif // NBL_CHECK_GENERATOR_HH
