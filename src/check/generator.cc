#include "check/generator.hh"

#include <algorithm>

#include "core/policy.hh"

namespace nbl::check
{

namespace
{

using isa::Instr;
using isa::Op;
using isa::RegId;

/** Register roles (see generateProgram): bases r1..r4, counter r5,
 *  integer data r8..r15, FP data f1..f8. */
constexpr unsigned kFirstBase = 1;
constexpr unsigned kCounter = 5;
constexpr unsigned kFirstData = 8;
constexpr unsigned kNumData = 8;
constexpr unsigned kFirstFp = 1;
constexpr unsigned kNumFp = 8;

Instr
limm(unsigned reg, int64_t value)
{
    Instr in;
    in.op = Op::LImm;
    in.dst = isa::intReg(reg);
    in.imm = value;
    return in;
}

/** Weighted access size: mostly 8, sometimes narrower. Addresses are
 *  kept 8-byte aligned, so every size is naturally aligned. FP
 *  accesses are restricted to 4 or 8 bytes (float/double). */
uint8_t
drawSize(Rng &rng, bool fp)
{
    double d = rng.real();
    if (d < 0.70)
        return 8;
    if (fp || d < 0.85)
        return 4;
    if (d < 0.95)
        return 2;
    return 1;
}

} // namespace

isa::Program
generateProgram(Rng &rng, const GenParams &p)
{
    isa::Program prog("fuzz");

    unsigned nbases = unsigned(rng.range(2, 4));
    uint64_t anchor_step =
        std::max<uint64_t>(8, (p.footprint / std::max(1u, p.anchors)) &
                                  ~uint64_t{7});

    // Prologue: base registers drawn from a small anchor set (so
    // bases alias at both line and set granularity), the loop
    // counter, and a few seeded data registers.
    for (unsigned b = 0; b < nbases; ++b) {
        uint64_t anchor = 0x1000 + rng.below(p.anchors) * anchor_step;
        uint64_t jitter = rng.below(4) * 8;
        prog.push(limm(kFirstBase + b, int64_t(anchor + jitter)));
    }
    prog.push(limm(kCounter, int64_t(rng.range(1, p.maxIterations))));
    for (unsigned d = 0; d < 3; ++d) {
        prog.push(limm(kFirstData + d, int64_t(rng.below(1 << 16))));
    }
    {
        // Seed one FP register from an integer (LImm is int-only).
        Instr mv;
        mv.op = Op::MovIF;
        mv.dst = isa::fpReg(kFirstFp);
        mv.src1 = isa::intReg(kFirstData);
        prog.push(mv);
    }

    unsigned body_len =
        unsigned(rng.range(p.minBodyLen, p.maxBodyLen));
    size_t loop_start = prog.size();
    // Absolute index of the counter decrement that ends the body:
    // forward branches may target anything up to and including it.
    size_t body_end = loop_start + body_len;

    auto base_reg = [&] {
        return isa::intReg(kFirstBase + unsigned(rng.below(nbases)));
    };
    auto data_reg = [&] {
        return isa::intReg(kFirstData + unsigned(rng.below(kNumData)));
    };
    auto fp_data_reg = [&] {
        return isa::fpReg(kFirstFp + unsigned(rng.below(kNumFp)));
    };
    // Dependence-distance control: remember the most recent load/ALU
    // destinations and draw sources from them with nearDepChance.
    unsigned recent[2] = {kFirstData, kFirstData + 1};
    auto src_reg = [&] {
        if (rng.chance(p.nearDepChance))
            return isa::intReg(recent[rng.below(2)]);
        return data_reg();
    };
    auto note_written = [&](RegId r) {
        if (r.cls == isa::RegClass::Int && r.idx >= kFirstData) {
            recent[1] = recent[0];
            recent[0] = r.idx;
        }
    };
    auto disp = [&] {
        uint64_t slots = std::min<uint64_t>(p.footprint / 8, 512);
        return int64_t(rng.below(slots) * 8);
    };

    for (unsigned i = 0; i < body_len; ++i) {
        double d = rng.real();
        Instr in;
        if (d < p.loadWeight) {
            bool fp = rng.chance(0.25);
            in.op = fp ? Op::Fld : Op::Ld;
            // Occasionally target r0: a load whose result is
            // discarded (the hard-wired zero register), probing the
            // r0 special cases in the scoreboard and replay mask.
            in.dst = fp ? RegId(fp_data_reg())
                        : (rng.chance(0.05) ? isa::regZero : data_reg());
            in.src1 = base_reg();
            in.imm = disp();
            in.size = drawSize(rng, fp);
            note_written(in.dst);
        } else if (d < p.loadWeight + p.storeWeight) {
            bool fp = rng.chance(0.25);
            in.op = fp ? Op::Fst : Op::St;
            in.src1 = base_reg();
            in.src2 = fp ? RegId(fp_data_reg()) : data_reg();
            in.imm = disp();
            in.size = drawSize(rng, fp);
        } else if (d < p.loadWeight + p.storeWeight + p.branchWeight &&
                   i + 1 < body_len) {
            // Forward conditional branch within the body (never past
            // the counter decrement, so the loop always terminates).
            static constexpr Op kBr[] = {Op::BEq, Op::BNe, Op::BLt,
                                         Op::BGe};
            in.op = kBr[rng.below(4)];
            in.src1 = rng.chance(0.3) ? isa::regZero : data_reg();
            in.src2 = rng.chance(0.3) ? isa::regZero : data_reg();
            size_t here = prog.size();
            uint64_t span = std::min<uint64_t>(body_end - here, 6);
            in.imm = int64_t(here + 1 + rng.below(span));
        } else if (d < p.loadWeight + p.storeWeight + p.branchWeight +
                           p.strideBumpWeight) {
            // Stride bump: advance a base register. Mostly forward,
            // sometimes backward; 8-aligned so accesses stay aligned.
            in.op = Op::AddI;
            in.dst = in.src1 = base_reg();
            in.imm = rng.chance(0.25)
                         ? -int64_t(rng.range(1, 8) * 8)
                         : int64_t(rng.range(1, 16) * 8);
        } else if (rng.chance(0.3)) {
            // FP ALU (FDiv included: the interpreter defines x/0).
            static constexpr Op kFp[] = {Op::FAdd, Op::FSub, Op::FMul,
                                         Op::FDiv};
            in.op = kFp[rng.below(4)];
            in.dst = fp_data_reg();
            in.src1 = fp_data_reg();
            in.src2 = fp_data_reg();
        } else if (rng.chance(0.1)) {
            in.op = rng.chance(0.5) ? Op::MovIF : Op::MovFI;
            if (in.op == Op::MovIF) {
                in.dst = fp_data_reg();
                in.src1 = src_reg();
            } else {
                in.dst = data_reg();
                in.src1 = fp_data_reg();
                note_written(in.dst);
            }
        } else if (rng.chance(0.5)) {
            static constexpr Op kAlu[] = {Op::Add, Op::Sub, Op::Mul,
                                          Op::And, Op::Or,  Op::Xor,
                                          Op::Shl, Op::Shr};
            in.op = kAlu[rng.below(8)];
            in.dst = data_reg();
            in.src1 = src_reg();
            in.src2 = src_reg();
            note_written(in.dst);
        } else {
            static constexpr Op kAluI[] = {Op::AddI, Op::MulI, Op::AndI,
                                           Op::ShlI, Op::ShrI};
            in.op = kAluI[rng.below(5)];
            in.dst = data_reg();
            in.src1 = src_reg();
            in.imm = int64_t(rng.below(64));
            note_written(in.dst);
        }
        prog.push(in);
    }

    // Close the counted loop and halt.
    {
        Instr dec;
        dec.op = Op::AddI;
        dec.dst = dec.src1 = isa::intReg(kCounter);
        dec.imm = -1;
        prog.push(dec);

        Instr back;
        back.op = Op::BNe;
        back.src1 = isa::intReg(kCounter);
        back.src2 = isa::regZero;
        back.imm = int64_t(loop_start);
        prog.push(back);

        Instr halt;
        halt.op = Op::Halt;
        prog.push(halt);
    }

    prog.validate(); // Generator bug if this ever fires.
    return prog;
}

std::vector<harness::ExperimentConfig>
generateConfigs(Rng &rng)
{
    harness::ExperimentConfig base;
    base.cacheBytes = uint64_t{512} << rng.below(4); // 512B .. 4KB.
    base.lineBytes = uint64_t{16} << rng.below(3);   // 16/32/64B.
    static constexpr unsigned kWays[] = {1, 2, 4, 0};
    do {
        base.ways = kWays[rng.below(4)];
    } while (base.ways > base.cacheBytes / base.lineBytes);
    static constexpr unsigned kPenalty[] = {0, 5, 16, 40};
    base.missPenalty = kPenalty[rng.below(4)];
    static constexpr unsigned kPorts[] = {0, 0, 1, 2};
    base.fillWritePorts = kPorts[rng.below(4)];

    std::vector<harness::ExperimentConfig> cfgs;

    // The ten named configurations: both blocking modes and all the
    // paper's MSHR restrictions (mc=/fc=/fs=/in-cache/no-restrict).
    static constexpr core::ConfigName kNamed[] = {
        core::ConfigName::Mc0Wma, core::ConfigName::Mc0,
        core::ConfigName::Mc1,    core::ConfigName::Mc2,
        core::ConfigName::Fc1,    core::ConfigName::Fc2,
        core::ConfigName::Fs1,    core::ConfigName::Fs2,
        core::ConfigName::InCache, core::ConfigName::NoRestrict};
    for (core::ConfigName name : kNamed) {
        harness::ExperimentConfig c = base;
        c.config = name;
        cfgs.push_back(c);
    }

    // Buffered write-allocate variants (stores through the write
    // buffer's destination entries) for a few organizations.
    for (core::ConfigName name :
         {core::ConfigName::Mc1, core::ConfigName::Fc2,
          core::ConfigName::NoRestrict}) {
        harness::ExperimentConfig c = base;
        core::MshrPolicy pol = core::makePolicy(name);
        pol.storeMode = core::StoreMode::WriteAllocate;
        pol.label += " +wa";
        c.customPolicy = pol;
        cfgs.push_back(c);
    }

    // The Figure-14 destination-field organizations.
    static constexpr int kFields[][2] = {{1, 1}, {1, 2}, {1, 4},
                                         {2, 1}, {4, 1}, {8, 1},
                                         {2, 2}, {4, 4}};
    for (auto [sub, per] : kFields) {
        harness::ExperimentConfig c = base;
        c.customPolicy = core::makeFieldPolicy(sub, per);
        cfgs.push_back(c);
    }

    // Hierarchy points: with probability ~1/2, rerun a few of the
    // organizations above over a non-degenerate memory side -- one or
    // two lower cache levels and/or finite channel bandwidth -- so
    // every engine cross (exec / exact replay / lane replay / trace
    // replay) and the conservation laws run against out-of-order
    // fills and back-pressure from below.
    if (rng.chance(0.5)) {
        core::HierarchyConfig hier;
        unsigned nlevels = unsigned(rng.below(3)); // 0 (channel-only),
                                                   // 1 (L2), 2 (L2+L3).
        uint64_t bytes = base.cacheBytes * 4;
        for (unsigned l = 0; l < nlevels; ++l) {
            core::LevelConfig lc;
            lc.cacheBytes = bytes << rng.below(2);
            lc.lineBytes = base.lineBytes << rng.below(2);
            static constexpr unsigned kLWays[] = {1, 2, 4, 8};
            do {
                lc.ways = kLWays[rng.below(4)];
            } while (lc.ways > lc.cacheBytes / lc.lineBytes);
            lc.policy.mode = core::CacheMode::MshrFile;
            lc.policy.numMshrs =
                rng.chance(0.3) ? -1 : int(rng.range(1, 4));
            lc.policy.maxMisses = -1;
            lc.policy.fetchesPerSet =
                rng.chance(0.7) ? -1 : int(rng.range(1, 2));
            lc.hitLatency = unsigned(rng.range(1, 5));
            lc.channelInterval = unsigned(rng.below(4));
            hier.levels.push_back(lc);
            bytes = lc.cacheBytes * 4;
        }
        hier.memChannelInterval = unsigned(rng.below(4));
        if (hier.degenerate())
            hier.memChannelInterval = unsigned(rng.range(1, 3));
        static constexpr core::ConfigName kHier[] = {
            core::ConfigName::Mc0, core::ConfigName::Mc2,
            core::ConfigName::Fs2, core::ConfigName::NoRestrict};
        for (core::ConfigName name : kHier) {
            harness::ExperimentConfig c = base;
            c.config = name;
            c.hierarchy = hier;
            cfgs.push_back(c);
        }
    }

    // Stall-policy points: with probability ~1/2, rerun a few of the
    // organizations with a random stall-reduction policy (level
    // predictor / spare-MSHR prefetch / SSR forwarding), so every
    // engine cross and the conservation laws run with the policy
    // timing paths active -- including a blocking organization, where
    // the prefetcher must be inert.
    if (rng.chance(0.5)) {
        nbl::policy::StallPolicyConfig sp;
        do {
            sp = {};
            if (rng.chance(0.6)) {
                static constexpr nbl::policy::PredictorMode kPred[] = {
                    nbl::policy::PredictorMode::Table,
                    nbl::policy::PredictorMode::Oracle,
                    nbl::policy::PredictorMode::Synthetic};
                sp.predictor.mode = kPred[rng.below(3)];
                sp.predictor.tableBits = unsigned(rng.range(2, 10));
                sp.predictor.penalty = unsigned(rng.below(6));
                sp.predictor.accuracy = rng.real();
            }
            if (rng.chance(0.5)) {
                sp.prefetch.mode =
                    rng.chance(0.5) ? nbl::policy::PrefetchMode::NextLine
                                    : nbl::policy::PrefetchMode::Stride;
                sp.prefetch.degree = unsigned(rng.range(1, 4));
            }
            if (rng.chance(0.4))
                sp.ssr.window = unsigned(rng.range(1, 6));
        } while (sp.defaulted());
        static constexpr core::ConfigName kPol[] = {
            core::ConfigName::Mc0Wma, core::ConfigName::Mc1,
            core::ConfigName::Fs2, core::ConfigName::NoRestrict};
        for (core::ConfigName name : kPol) {
            harness::ExperimentConfig c = base;
            c.config = name;
            c.stallPolicy = sp;
            cfgs.push_back(c);
        }
        // One destination-field organization under the same policy.
        harness::ExperimentConfig c = base;
        c.customPolicy = core::makeFieldPolicy(2, 2);
        c.stallPolicy = sp;
        cfgs.push_back(c);
    }

    // Two fully random custom policies.
    for (int i = 0; i < 2; ++i) {
        core::MshrPolicy pol;
        pol.mode = core::CacheMode::MshrFile;
        pol.numMshrs = rng.chance(0.3) ? -1 : int(rng.range(1, 4));
        pol.maxMisses = rng.chance(0.5) ? -1 : int(rng.range(1, 6));
        static constexpr int kSub[] = {1, 2, 4, 8};
        pol.subBlocks = kSub[rng.below(4)];
        pol.missesPerSubBlock =
            rng.chance(0.5) ? -1 : int(rng.range(1, 4));
        pol.fetchesPerSet = rng.chance(0.6) ? -1 : int(rng.range(1, 2));
        pol.fetchesPerSetTracksWays = rng.chance(0.2);
        pol.storeMode = rng.chance(0.3)
                            ? core::StoreMode::WriteAllocate
                            : core::StoreMode::WriteAround;
        pol.fillExtraCycles = unsigned(rng.below(3));
        pol.label = "random";
        harness::ExperimentConfig c = base;
        c.customPolicy = pol;
        cfgs.push_back(c);
    }

    return cfgs;
}

} // namespace nbl::check
